(* Off-heap open-addressing hash index (see hash_index.mli for the
   contract).

   Storage: the bucket array is a set of off-heap Bigarray chunks of
   [chunk_buckets] buckets each, two words per bucket —

     word 0: packed indirect reference ([empty] / [tomb] sentinels)
     word 1: key word (the int key itself, or a string hash)

   Chunking keeps rebuilds from needing one huge contiguous mapping and
   caps per-allocation size the same way the runtime's blocks do. The
   chunks are private to the index: they are not runtime blocks and are
   not registered with the block registry, so the runtime's structural
   audit (which treats unaccounted registered blocks as leaks) is
   unaffected, and the index can drop a whole store on rebuild without a
   block-free protocol — the old chunks die with the old store value.

   Probes snapshot [t.store] once (a single mutable-field read yields a
   consistent cap/mask/chunks triple) and never write, so they need no
   lock: a rebuild publishes a fresh store and in-flight probes finish
   against the old one. Racy bucket reads against a concurrent insert are
   harmless because emission requires both incarnation validation and key
   re-extraction from the live row — a torn entry can only miss, never
   fabricate a hit. *)

open Smc_offheap

type key = K_int of int | K_str of string

type key_spec =
  | Int_key of (Block.t -> int -> int)
  | Str_key of (Block.t -> int -> string)

type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let chunk_bits = 12
let chunk_buckets = 1 lsl chunk_bits (* 4096 buckets = 64 KiB per chunk *)
let chunk_mask = chunk_buckets - 1

(* Sentinels live in the ref word; key words are unconstrained. *)
let empty = -1
let tomb = -2

type store = {
  cap : int; (* total buckets, power of two, >= chunk_buckets *)
  mask : int;
  chunks : int_ba array;
}

let make_store cap =
  let n_chunks = cap lsr chunk_bits in
  let chunks =
    Array.init n_chunks (fun _ ->
        let c = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (chunk_buckets * 2) in
        for i = 0 to chunk_buckets - 1 do
          Bigarray.Array1.unsafe_set c (i * 2) empty
        done;
        c)
  in
  { cap; mask = cap - 1; chunks }

type t = {
  name : string;
  coll : Smc.Collection.t;
  spec : key_spec;
  max_load : float;
  lock : Mutex.t; (* serialises insert / sweep / rebuild *)
  mutable store : store;
  mutable occupied : int; (* buckets holding a (possibly stale) entry *)
  mutable tombstones : int;
  stale_seen : int Atomic.t; (* probe sightings of stale entries since last sweep *)
  dead_pending : int Atomic.t; (* removes since last sweep *)
  obs : Smc_obs.t;
}

(* Fibonacci-style multiplicative mix; [land max_int] clears the sign. *)
let mix k =
  let h = k * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  h land max_int

(* The key word stored in the bucket. Int keys store the key itself (word
   equality is exact); string keys store a hash, so hits re-check the
   actual string. *)
let key_word spec k =
  match (spec, k) with
  | Int_key _, K_int k -> k
  | Str_key _, K_str s -> mix (Hashtbl.hash s)
  | Int_key _, K_str _ | Str_key _, K_int _ ->
      invalid_arg "Hash_index: probe key type does not match the index key spec"

(* Placement hash derived from the key word alone, so rebuilds re-place
   entries without re-extracting keys from rows. *)
let placement spec w = match spec with Int_key _ -> mix w | Str_key _ -> w land max_int

let extract spec blk slot =
  match spec with Int_key f -> K_int (f blk slot) | Str_key f -> K_str (f blk slot)

(* Final validation on a probe hit: the live row's key must equal the
   probe key. This is what makes racy bucket reads and string-hash
   collisions safe — word agreement alone never emits a row. *)
let key_matches spec k blk slot =
  match (spec, k) with
  | Int_key f, K_int k -> f blk slot = k
  | Str_key f, K_str s -> String.equal (f blk slot) s
  | Int_key _, K_str _ | Str_key _, K_int _ -> false

let bucket_chunk s i = Array.unsafe_get s.chunks (i lsr chunk_bits)
let bucket_off i = (i land chunk_mask) * 2

let name t = t.name
let collection t = t.coll
let key_kind t = match t.spec with Int_key _ -> `Int | Str_key _ -> `Str

(* ---- probes ------------------------------------------------------- *)

let probe t k ~f =
  Smc_obs.incr t.obs Smc_obs.c_idx_probes;
  let s = t.store in
  let w = key_word t.spec k in
  let h = placement t.spec w in
  Smc.Collection.with_read t.coll (fun () ->
      let i = ref (h land s.mask) in
      let dist = ref 0 in
      let continue_ = ref true in
      while !continue_ && !dist < s.cap do
        let c = bucket_chunk s !i in
        let off = bucket_off !i in
        let r = Bigarray.Array1.unsafe_get c off in
        if r = empty then continue_ := false
        else begin
          if r <> tomb && Bigarray.Array1.unsafe_get c (off + 1) = w then begin
            match Smc.Collection.deref_opt t.coll (Smc.Ref.of_packed r) with
            | None ->
                Atomic.incr t.stale_seen;
                Smc_obs.incr t.obs Smc_obs.c_idx_stale
            | Some (blk, slot) ->
                if key_matches t.spec k blk slot then begin
                  Smc_obs.incr t.obs Smc_obs.c_idx_hits;
                  f (Smc.Ref.of_packed r) blk slot
                end
          end;
          i := (!i + 1) land s.mask;
          incr dist
        end
      done)

let probe_refs t k =
  let acc = ref [] in
  probe t k ~f:(fun r _ _ -> acc := r :: !acc);
  List.rev !acc

let contains t k =
  let exception Found in
  try
    probe t k ~f:(fun _ _ _ -> raise Found);
    false
  with Found -> true

(* ---- writes (caller holds t.lock) --------------------------------- *)

(* Insert into the first reusable bucket of the probe chain of [s]. Key
   word is written before the ref word so a bucket is never observable
   with a fresh ref and no key at all; full safety still rests on
   probe-side validation, not on this ordering. Takes the store as an
   argument so a rebuild can populate a fresh, unpublished store; returns
   whether a tombstone was reused (callers maintain the counters). *)
let store_insert spec s w packed =
  let h = placement spec w in
  let i = ref (h land s.mask) in
  let reuse = ref (-1) in
  let target = ref (-1) in
  while !target < 0 do
    let c = bucket_chunk s !i in
    let off = bucket_off !i in
    let r = Bigarray.Array1.unsafe_get c off in
    if r = empty then target := (if !reuse >= 0 then !reuse else !i)
    else begin
      if r = tomb && !reuse < 0 then reuse := !i;
      i := (!i + 1) land s.mask
    end
  done;
  let c = bucket_chunk s !target in
  let off = bucket_off !target in
  let reused = Bigarray.Array1.unsafe_get c off = tomb in
  Bigarray.Array1.unsafe_set c (off + 1) w;
  Bigarray.Array1.unsafe_set c off packed;
  reused

let insert_locked t w packed =
  if store_insert t.spec t.store w packed then t.tombstones <- t.tombstones - 1;
  t.occupied <- t.occupied + 1

(* Tombstone every stale entry in place. Valid->tombstone transitions are
   the only writes, so concurrent probes stay correct (they either see the
   entry and find it stale, or see the tombstone and skip). *)
let sweep_locked t =
  let s = t.store in
  let purged = ref 0 in
  (* Drain the churn counters up front (exchange, not a trailing reset):
     probe/remove increments landing mid-sweep carry over to the next
     trigger instead of being lost. Entries they refer to may already be
     tombstoned by this sweep, which at worst re-arms the trigger early —
     heuristic drift in the safe direction. *)
  ignore (Atomic.exchange t.stale_seen 0 : int);
  ignore (Atomic.exchange t.dead_pending 0 : int);
  Smc.Collection.with_read t.coll (fun () ->
      for i = 0 to s.cap - 1 do
        let c = bucket_chunk s i in
        let off = bucket_off i in
        let r = Bigarray.Array1.unsafe_get c off in
        if r <> empty && r <> tomb
           && Smc.Collection.deref_opt t.coll (Smc.Ref.of_packed r) = None
        then begin
          Bigarray.Array1.unsafe_set c off tomb;
          t.occupied <- t.occupied - 1;
          t.tombstones <- t.tombstones + 1;
          incr purged
        end
      done);
  Smc_obs.add t.obs Smc_obs.c_idx_tombstones !purged

let rec next_pow2 n acc = if acc >= n then acc else next_pow2 n (acc * 2)

(* Collect live entries from the old store, size a fresh one to <= half
   load, and re-place them by key word. The fresh store is FULLY populated
   before the [t.store] assignment: that single write is the publication
   point, so a lock-free probe snapshots either the old store (complete)
   or the new one (complete) — never a half-built table that would miss
   rows live all along. The old chunks stay alive for any in-flight probe
   that already snapshotted them. *)
let rebuild_locked t =
  let s = t.store in
  (* Drain churn counters up front, same rationale as [sweep_locked]. *)
  ignore (Atomic.exchange t.stale_seen 0 : int);
  ignore (Atomic.exchange t.dead_pending 0 : int);
  let live = ref [] in
  let n_live = ref 0 in
  let dropped = ref 0 in
  Smc.Collection.with_read t.coll (fun () ->
      for i = 0 to s.cap - 1 do
        let c = bucket_chunk s i in
        let off = bucket_off i in
        let r = Bigarray.Array1.unsafe_get c off in
        if r <> empty && r <> tomb then
          if Smc.Collection.deref_opt t.coll (Smc.Ref.of_packed r) = None then incr dropped
          else begin
            live := (Bigarray.Array1.unsafe_get c (off + 1), r) :: !live;
            incr n_live
          end
      done);
  let cap = next_pow2 (max chunk_buckets (4 * !n_live)) chunk_buckets in
  let fresh = make_store cap in
  List.iter (fun (w, r) -> ignore (store_insert t.spec fresh w r : bool)) !live;
  t.store <- fresh;
  t.occupied <- !n_live;
  t.tombstones <- 0;
  Smc_obs.add t.obs Smc_obs.c_idx_tombstones !dropped;
  Smc_obs.incr t.obs Smc_obs.c_idx_rebuilds

(* Pre-insert housekeeping: purge when churn says a quarter of the table
   may be stale; rebuild when occupancy (entries + tombstones) crosses the
   load factor. *)
let maintain_locked t =
  let s = t.store in
  if Atomic.get t.stale_seen + Atomic.get t.dead_pending > s.cap / 4 then sweep_locked t;
  if
    float_of_int (t.occupied + t.tombstones + 1) > t.max_load *. float_of_int s.cap
  then rebuild_locked t

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ---- maintenance hooks -------------------------------------------- *)

(* The add hook re-resolves the reference inside the critical section
   rather than trusting the (blk, slot) the collection passed: the row may
   have been relocated by a concurrent compaction since init ran, and the
   ref — stable in indirect mode — is the durable name. *)
let on_add t r _blk _slot =
  locked t (fun () ->
      Smc.Collection.with_read t.coll (fun () ->
          match Smc.Collection.deref_opt t.coll r with
          | None -> () (* removed before we got the lock; nothing to index *)
          | Some (blk, slot) ->
              let w = key_word t.spec (extract t.spec blk slot) in
              maintain_locked t;
              insert_locked t w (Smc.Ref.to_packed r);
              Smc_obs.incr t.obs Smc_obs.c_idx_inserts))

(* Removal is O(1): the entry goes stale by incarnation and is purged
   lazily. No key extraction — the row is already gone. *)
let on_remove t _r = Atomic.incr t.dead_pending

let sweep t = locked t (fun () -> sweep_locked t)
let rebuild t = locked t (fun () -> rebuild_locked t)

(* ---- lifecycle ----------------------------------------------------- *)

let attach ?(initial_capacity = chunk_buckets) ?(max_load = 0.7) ~name ~key coll =
  if max_load <= 0.0 || max_load >= 1.0 then
    invalid_arg "Hash_index.attach: max_load must be in (0, 1)";
  let cap = next_pow2 (max chunk_buckets initial_capacity) chunk_buckets in
  let t =
    {
      name;
      coll;
      spec = key;
      max_load;
      lock = Mutex.create ();
      store = make_store cap;
      occupied = 0;
      tombstones = 0;
      stale_seen = Atomic.make 0;
      dead_pending = Atomic.make 0;
      obs = coll.Smc.Collection.rt.Runtime.obs;
    }
  in
  (* Registers hooks first (rejects direct mode / duplicate names before
     any work), then bulk-loads; attach is a quiescent-point operation so
     no add can slip between the two. *)
  Smc.Collection.attach_index coll
    {
      Smc.Collection.ih_name = name;
      ih_on_add = on_add t;
      ih_on_remove = on_remove t;
      (* Keys live in fields written once at add time (the documented
         contract: do not store to indexed key fields), so stores never
         re-key an entry. *)
      ih_on_store = (fun _ ~word:_ -> ());
    };
  locked t (fun () ->
      Smc.Collection.iter coll ~f:(fun blk slot ->
          let r = Smc.Collection.ref_of_slot t.coll blk slot in
          let w = key_word t.spec (extract t.spec blk slot) in
          maintain_locked t;
          insert_locked t w (Smc.Ref.to_packed r);
          Smc_obs.incr t.obs Smc_obs.c_idx_inserts));
  t

let detach t = Smc.Collection.detach_index t.coll t.name

(* ---- introspection -------------------------------------------------- *)

type stats = { capacity : int; occupied : int; tombstones : int; memory_words : int }

let stats t =
  let s = t.store in
  {
    capacity = s.cap;
    occupied = t.occupied;
    tombstones = t.tombstones;
    memory_words = Array.fold_left (fun a c -> a + Bigarray.Array1.dim c) 0 s.chunks;
  }

let audit t =
  let s = t.store in
  let violations = ref [] in
  let bad fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let n_occ = ref 0 and n_tomb = ref 0 and n_live = ref 0 in
  Smc.Collection.with_read t.coll (fun () ->
      for i = 0 to s.cap - 1 do
        let c = bucket_chunk s i in
        let off = bucket_off i in
        let r = Bigarray.Array1.unsafe_get c off in
        if r = tomb then incr n_tomb
        else if r <> empty then begin
          incr n_occ;
          let w = Bigarray.Array1.unsafe_get c (off + 1) in
          match Smc.Collection.deref_opt t.coll (Smc.Ref.of_packed r) with
          | None -> () (* stale entry awaiting purge: legal, not counted live *)
          | Some (blk, slot) ->
              incr n_live;
              if Block.slot_state blk slot <> Constants.state_valid then
                bad "index %s bucket %d: live entry resolves to slot in state %d" t.name i
                  (Block.slot_state blk slot);
              let w' = key_word t.spec (extract t.spec blk slot) in
              if w' <> w then
                bad "index %s bucket %d: key word %d disagrees with row key word %d" t.name i
                  w w'
        end
      done);
  if !n_occ <> t.occupied then
    bad "index %s: %d occupied buckets but counter says %d" t.name !n_occ t.occupied;
  if !n_tomb <> t.tombstones then
    bad "index %s: %d tombstones but counter says %d" t.name !n_tomb t.tombstones;
  let rows = Smc.Collection.count t.coll in
  if !n_live <> rows then
    bad "index %s: %d live entries but collection %s has %d live rows" t.name !n_live
      t.coll.Smc.Collection.name rows;
  List.rev !violations
