(** Off-heap secondary hash indexes over self-managed collections.

    An index maps a key extracted from each row to the row's {!Smc.Ref.t}.
    The bucket array lives in off-heap [Bigarray] chunks private to the
    index — not on the OCaml heap, and not in the collection's memory
    context — so index storage scales like the collections it covers and
    never perturbs the runtime's block audit. An entry is two words: the
    packed indirect reference and a key word.

    Safety comes from the same machinery as any dereference: probes run
    inside an epoch critical section and validate the entry's incarnation
    against the indirection table on every hit. Entries for removed rows
    simply read as stale — {!Smc.Collection.remove} does no index work
    beyond a counter bump — and are tombstoned lazily by churn-triggered
    sweeps or dropped wholesale by load-factor-triggered rebuilds.

    Concurrency: one writer at a time (an internal mutex serialises
    inserts, sweeps, and rebuilds); probes are lock-free and may run
    concurrently with writers under the collections' usual bag-semantics
    contract — a row added concurrently may or may not be seen, and every
    emitted row is live with the probed key at emission time. Keys must not
    be mutated in place while a row is indexed. *)

type key = K_int of int | K_str of string
(** Probe keys. Int keys cover every fixed-width column (ints, dates,
    decimals-as-scaled-ints); string keys hash the interned row bytes. *)

type key_spec =
  | Int_key of (Smc_offheap.Block.t -> int -> int)
  | Str_key of (Smc_offheap.Block.t -> int -> string)
      (** How to extract the indexed key from a row location, e.g.
          [Int_key (Smc.Field.get_int f)]. *)

type t

val attach :
  ?initial_capacity:int ->
  ?max_load:float ->
  name:string ->
  key:key_spec ->
  Smc.Collection.t ->
  t
(** Creates the index, bulk-loads every live row, and registers
    maintenance hooks via {!Smc.Collection.attach_index} so subsequent
    [add]/[remove] maintain it incrementally. A quiescent-point operation
    (no concurrent mutators during the bulk load). Raises
    [Invalid_argument] on direct-mode collections or duplicate names.
    [initial_capacity] is rounded up to a power of two (default 4096);
    [max_load] defaults to [0.7]. *)

val detach : t -> unit
(** Unregisters the maintenance hooks. The index stops tracking the
    collection; further probes are allowed but see a frozen (increasingly
    stale) view. Quiescent-point operation. *)

val name : t -> string
val collection : t -> Smc.Collection.t

val key_kind : t -> [ `Int | `Str ]
(** Which {!key} constructor this index's spec extracts. *)

val probe : t -> key -> f:(Smc.Ref.t -> Smc_offheap.Block.t -> int -> unit) -> unit
(** Yields every live row whose key equals [key], inside one epoch
    critical section. Each candidate entry is validated twice: the
    reference's incarnation against the indirection table, then the key
    re-extracted from the live row against the probe key — a stale or
    recycled slot can therefore never resurrect. Bag semantics; duplicate
    keys yield multiple rows. *)

val probe_refs : t -> key -> Smc.Ref.t list
(** Convenience: collected references for [key] (probe order). *)

val contains : t -> key -> bool

(** {1 Maintenance and introspection} *)

val sweep : t -> unit
(** Tombstones every stale entry now, instead of waiting for the churn
    trigger. Writer-serialised; safe concurrently with probes. *)

val rebuild : t -> unit
(** Rebuilds the bucket store from live entries only, resizing to target
    at most half load. Writer-serialised; probes racing the swap finish
    against the old store. *)

type stats = {
  capacity : int;  (** bucket count (power of two) *)
  occupied : int;  (** buckets holding a (possibly stale) entry *)
  tombstones : int;
  memory_words : int;  (** off-heap words backing the bucket chunks *)
}

val stats : t -> stats

val audit : t -> string list
(** Structural invariant sweep; call only at a quiescent point (no
    concurrent mutators on index or collection). Checks that bucket-state
    counts match the maintained counters; that every live entry's
    incarnation matches the indirection table, its slot directory state is
    valid, and its re-extracted key matches the stored key word; and that
    live entries are exactly the collection's live rows (count equality —
    no lost inserts, no duplicates, nothing stale counted live). Returns
    violation descriptions, [[]] when clean. *)
