(** Typed field accessors over collection layouts.

    Accessors are resolved once per query (name → word offset, with a type
    check) and then perform single-word loads/stores — the OCaml analogue of
    the paper's generated code addressing fields at fixed offsets inside the
    collection's memory blocks. All getters/setters take the (block, slot)
    location produced by enumeration or {!Collection.deref}. *)

type loc = Smc_offheap.Block.t * int

val int : Smc_offheap.Layout.t -> string -> Smc_offheap.Layout.field
(** Resolves an [Int] field; [Invalid_argument] on a type mismatch. *)

val dec : Smc_offheap.Layout.t -> string -> Smc_offheap.Layout.field
val date : Smc_offheap.Layout.t -> string -> Smc_offheap.Layout.field
val bool : Smc_offheap.Layout.t -> string -> Smc_offheap.Layout.field
val float : Smc_offheap.Layout.t -> string -> Smc_offheap.Layout.field
val str : Smc_offheap.Layout.t -> string -> Smc_offheap.Layout.field
val ref_ : Smc_offheap.Layout.t -> string -> Smc_offheap.Layout.field

val get_int : Smc_offheap.Layout.field -> Smc_offheap.Block.t -> int -> int
val set_int : Smc_offheap.Layout.field -> Smc_offheap.Block.t -> int -> int -> unit

val get_dec : Smc_offheap.Layout.field -> Smc_offheap.Block.t -> int -> Smc_decimal.Decimal.t
val set_dec :
  Smc_offheap.Layout.field -> Smc_offheap.Block.t -> int -> Smc_decimal.Decimal.t -> unit

val get_date : Smc_offheap.Layout.field -> Smc_offheap.Block.t -> int -> Smc_util.Date.t
val set_date :
  Smc_offheap.Layout.field -> Smc_offheap.Block.t -> int -> Smc_util.Date.t -> unit

val get_bool : Smc_offheap.Layout.field -> Smc_offheap.Block.t -> int -> bool
val set_bool : Smc_offheap.Layout.field -> Smc_offheap.Block.t -> int -> bool -> unit

val get_float : Smc_offheap.Layout.field -> Smc_offheap.Block.t -> int -> float
val set_float : Smc_offheap.Layout.field -> Smc_offheap.Block.t -> int -> float -> unit

val get_string : Smc_offheap.Layout.field -> Smc_offheap.Block.t -> int -> string
val set_string : Smc_offheap.Layout.field -> Smc_offheap.Block.t -> int -> string -> unit

val get_char : Smc_offheap.Layout.field -> Smc_offheap.Block.t -> int -> char
(** First byte of a string field without allocating — what compiled queries
    use for one-character TPC-H attributes like returnflag. *)

val string_eq :
  Smc_offheap.Layout.field -> string -> Smc_offheap.Block.t -> int -> bool
(** [string_eq f lit] pre-packs [lit] into field words once; the returned
    predicate is a few word compares with no allocation — how compiled
    queries evaluate string equality filters. *)

val string_prefix :
  Smc_offheap.Layout.field -> string -> Smc_offheap.Block.t -> int -> bool
(** [string_prefix f needle] tests whether the stored string starts with
    [needle], by packed word compares (full words) plus one masked partial
    word — no allocation per row. Agrees with [String.starts_with] over
    {!get_string}: the empty needle always matches; a needle longer than
    the field capacity or containing a NUL byte never does. *)

val string_contains :
  Smc_offheap.Layout.field -> string -> Smc_offheap.Block.t -> int -> bool
(** [string_contains f needle] tests whether the stored string contains
    [needle], reading bytes straight out of the packed field words — no
    allocation per row. Same semantics as a substring search over
    {!get_string} (empty needle matches everything; NUL-bearing or
    over-capacity needles match nothing). *)

val set_ref :
  Smc_offheap.Layout.field -> target:Collection.t -> Smc_offheap.Block.t -> int -> Ref.t -> unit
(** Stores a reference to an object of [target]. In an [Indirect]-mode
    target the packed indirect reference is stored; in a [Direct]-mode
    target the direct pointer (§6) is stored. Raises [Invalid_argument] if
    [target]'s tabular type differs from the field's declared [Ref] type
    (§2's tabular-class typing rule). *)

val get_ref :
  Smc_offheap.Layout.field -> target:Collection.t -> Smc_offheap.Block.t -> int -> Ref.t
(** Application-level (indirect) reference for a stored ref field; null if
    the referenced object is gone. *)

val follow_loc :
  Smc_offheap.Layout.field -> target:Collection.t -> Smc_offheap.Block.t -> int -> int
(** Allocation-free {!follow}: a packed location for
    {!Collection.loc_block}/{!Collection.loc_slot}, or -1 when the
    referenced object is gone. *)

val follow :
  Smc_offheap.Layout.field ->
  target:Collection.t ->
  Smc_offheap.Block.t ->
  int ->
  loc option
(** Dereferences a stored ref field to the referenced object's current
    location (the reference-based join step of the TPC-H adaptation).
    Follows direct-pointer tombstones and patches the stored pointer to the
    new location, as §6 prescribes. [None] when the object is gone. *)
