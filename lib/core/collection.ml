open Smc_offheap

type index_hook = {
  ih_name : string;
  ih_on_add : Ref.t -> Block.t -> int -> unit;
  ih_on_remove : Ref.t -> unit;
  ih_on_store : Ref.t -> word:int -> unit;
}

(* One published mutation of a committed transaction, handed to the WAL
   hook as a batch so the log frames the whole transaction atomically. Adds
   carry their location for slot-image serialisation (the batch is emitted
   inside the commit's critical section, so locations are stable). *)
type logged_op =
  | L_add of Ref.t * Block.t * int
  | L_remove of Ref.t
  | L_store of Ref.t * int * int

type wal_hook = {
  wh_name : string;
  wh_on_add : Ref.t -> Block.t -> int -> unit;
  wh_on_remove : Ref.t -> unit;
  wh_on_store : Ref.t -> word:int -> value:int -> unit;
  wh_on_txn : txn_id:int -> logged_op list -> unit;
}

type t = {
  name : string;
  layout : Layout.t;
  ctx : Context.t;
  rt : Runtime.t;
  mutable hooks : index_hook list;
  mutable view_names : string list;
  mutable wal : wal_hook option;
  txn_lock : Mutex.t;
}

let create rt ~name ~layout ?placement ?mode ?slots_per_block ?reclaim_threshold () =
  let ctx = Context.create rt ~layout ?placement ?mode ?slots_per_block ?reclaim_threshold () in
  { name; layout; ctx; rt; hooks = []; view_names = []; wal = None; txn_lock = Mutex.create () }

let add t ~init =
  let packed = Context.alloc t.ctx in
  let r = Ref.of_packed packed in
  (match Context.resolve t.ctx packed with
  | Some (blk, slot) ->
      init blk slot;
      (match t.hooks with
      | [] -> ()
      | hooks -> List.iter (fun h -> h.ih_on_add r blk slot) hooks);
      (match t.wal with None -> () | Some w -> w.wh_on_add r blk slot)
  | None -> assert false (* a freshly allocated object cannot be dead *));
  r

let remove t r =
  match t.wal with
  | None ->
    let removed = Context.free t.ctx (Ref.to_packed r) in
    (if removed then
       match t.hooks with
       | [] -> ()
       | hooks -> List.iter (fun h -> h.ih_on_remove r) hooks);
    removed
  | Some w ->
    (* Pin the epoch across free + log append: while this domain stays in
       a critical section the freed slot cannot clear its grace period, so
       no other domain can recycle the entry and log a later incarnation's
       Add before this Remove record lands — replay order stays sound. *)
    let em = t.rt.Runtime.epoch in
    Epoch.enter_critical em;
    Fun.protect
      ~finally:(fun () -> Epoch.exit_critical em)
      (fun () ->
        let removed = Context.free t.ctx (Ref.to_packed r) in
        if removed then begin
          (match t.hooks with
          | [] -> ()
          | hooks -> List.iter (fun h -> h.ih_on_remove r) hooks);
          w.wh_on_remove r
        end;
        removed)

let store t r ~word ~value =
  if word < 0 || word >= t.layout.Layout.slot_words then
    invalid_arg "Collection.store: word offset outside the layout";
  let em = t.rt.Runtime.epoch in
  (* The transaction lock serialises the stamp against commit validation;
     the critical section keeps the resolved location stable (no concurrent
     recycle/compaction) across stamp + write + log. *)
  Mutex.lock t.txn_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.txn_lock)
    (fun () ->
      Epoch.enter_critical em;
      Fun.protect
        ~finally:(fun () -> Epoch.exit_critical em)
        (fun () ->
          match Context.resolve t.ctx (Ref.to_packed r) with
          | None -> raise Constants.Null_reference
          | Some (blk, slot) ->
            let csn = Context.next_csn t.ctx in
            (* stamp before the payload lands: a transaction validator that
               reads the old write-CSN can only have read the old word, so
               first committer still wins *)
            Context.stamp_write blk slot ~csn;
            Block.set_word blk ~slot ~word value;
            (match t.hooks with
            | [] -> ()
            | hooks -> List.iter (fun h -> h.ih_on_store r ~word) hooks);
            (match t.wal with None -> () | Some w -> w.wh_on_store r ~word ~value);
            Smc_obs.incr t.rt.Runtime.obs Smc_obs.c_bare_stores))

let attach_index t hook =
  (match t.ctx.Context.mode with
  | Context.Direct ->
      invalid_arg
        (Printf.sprintf
           "Collection.attach_index: collection %S uses direct references; \
            indexes require indirect mode (refs stable across compaction)"
           t.name)
  | Context.Indirect -> ());
  if List.exists (fun h -> String.equal h.ih_name hook.ih_name) t.hooks then
    invalid_arg
      (Printf.sprintf "Collection.attach_index: index %S already attached to %S" hook.ih_name
         t.name);
  t.hooks <- hook :: t.hooks

let detach_index t name =
  if List.exists (String.equal name) t.view_names then
    invalid_arg
      (Printf.sprintf "Collection.detach_index: %S is a materialized view on %S (use \
                       detach_view)" name t.name);
  if not (List.exists (fun h -> String.equal h.ih_name name) t.hooks) then
    invalid_arg
      (Printf.sprintf "Collection.detach_index: no index %S attached to %S" name t.name);
  t.hooks <- List.filter (fun h -> not (String.equal h.ih_name name)) t.hooks

let index_names t =
  List.rev
    (List.filter_map
       (fun h ->
         if List.exists (String.equal h.ih_name) t.view_names then None else Some h.ih_name)
       t.hooks)

(* Materialized views ride the same hook registry as indexes — same firing
   points, same exactly-once contract — but are tracked by name so the two
   attachment namespaces cannot detach each other's hooks. *)
let attach_view t hook =
  (match t.ctx.Context.mode with
  | Context.Direct ->
      invalid_arg
        (Printf.sprintf
           "Collection.attach_view: collection %S uses direct references; \
            views require indirect mode (refs stable across compaction)"
           t.name)
  | Context.Indirect -> ());
  if List.exists (fun h -> String.equal h.ih_name hook.ih_name) t.hooks then
    invalid_arg
      (Printf.sprintf "Collection.attach_view: hook %S already attached to %S" hook.ih_name
         t.name);
  t.hooks <- hook :: t.hooks;
  t.view_names <- hook.ih_name :: t.view_names

let detach_view t name =
  if not (List.exists (String.equal name) t.view_names) then
    invalid_arg
      (Printf.sprintf "Collection.detach_view: no view %S attached to %S" name t.name);
  t.view_names <- List.filter (fun n -> not (String.equal n name)) t.view_names;
  t.hooks <- List.filter (fun h -> not (String.equal h.ih_name name)) t.hooks

let view_hook_names t = List.rev t.view_names

let attach_wal t hook =
  (match t.ctx.Context.mode with
  | Context.Direct ->
      invalid_arg
        (Printf.sprintf
           "Collection.attach_wal: collection %S uses direct references; \
            WAL capture requires indirect mode (logged refs must stay \
            stable across compaction)"
           t.name)
  | Context.Indirect -> ());
  (match t.wal with
  | Some w ->
      invalid_arg
        (Printf.sprintf "Collection.attach_wal: WAL %S already attached to %S" w.wh_name t.name)
  | None -> ());
  t.wal <- Some hook

let detach_wal t =
  match t.wal with
  | None -> invalid_arg (Printf.sprintf "Collection.detach_wal: no WAL attached to %S" t.name)
  | Some _ -> t.wal <- None

let wal_name t = Option.map (fun w -> w.wh_name) t.wal

let deref_opt t r = Context.resolve t.ctx (Ref.to_packed r)

let deref t r =
  match deref_opt t r with
  | Some loc -> loc
  | None -> raise Constants.Null_reference

let mem t r = deref_opt t r <> None

let with_read t f =
  Epoch.enter_critical t.rt.Runtime.epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit_critical t.rt.Runtime.epoch) f

let iter t ~f = with_read t (fun () -> Context.iter_valid t.ctx ~f)

let iter_per_block t ~f = Context.iter_valid_per_block t.ctx ~f

let iter_scan t ~on_block = with_read t (fun () -> Context.iter_valid_hoisted t.ctx ~on_block)

let loc_block t loc = Context.block_of_loc t.ctx loc
let loc_slot loc = Constants.ptr_slot loc

let ref_of_slot t blk slot = Ref.of_packed (Context.indirect_ref_of_slot t.ctx blk slot)

let iter_refs t ~f = iter t ~f:(fun blk slot -> f (ref_of_slot t blk slot))

let fold t ~init ~f =
  let acc = ref init in
  iter t ~f:(fun blk slot -> acc := f !acc blk slot);
  !acc

let count t = Context.valid_count t.ctx

let compact t ?occupancy_threshold () = Compaction.run t.ctx ?occupancy_threshold ()

let memory_words t = Context.off_heap_words t.ctx
let block_count t = Context.block_count t.ctx
let limbo_count t = Context.stats_limbo t.ctx

(* ---- Atomic multi-op transactions -------------------------------------
   A transaction stages adds/removes/stores privately, then commits them as
   one unit: write-write conflicts are validated against the staging-time
   CSN frontier (first committer wins), the whole batch is published under
   the collection's transaction lock with a single commit CSN — so snapshot
   views observe all of it or none of it — and the attached WAL receives
   the batch as one [wh_on_txn] call, framed so recovery replays it
   atomically.

   The transaction lock is deliberately separate from the context lock:
   applying the batch calls [Context.alloc]/[Context.free], which take the
   context lock internally (reclamation queue, view publication), and OCaml
   mutexes are not reentrant. Bare [add]/[remove] calls do not take the
   transaction lock — they stay lock-free as before. The cost is that a
   bare mutation is a single-op unit with its own CSN: it can land between
   a view's frontier and a transaction's commit CSN. Bare [store]s stamp
   their CSN under the transaction lock, so validation sees them; only raw
   [Field.set_*] pokes stay invisible. Use transactions for multi-op
   consistency. *)

type staged_op =
  | S_add of (Block.t -> int -> unit)
  | S_remove of Ref.t
  | S_store of Ref.t * int * int

type txn = {
  tx_coll : t;
  tx_begin_csn : int;
  mutable tx_ops : staged_op list; (* newest first *)
  mutable tx_done : bool;
}

type txn_result = Committed of Ref.t list | Conflict

let obs_incr t c = Smc_obs.incr t.rt.Runtime.obs c

let txn t =
  (* Transactions lean on the indirection layer twice over: commit-time
     validation resolves staged references, and copy-on-write stores swing
     entries to updated copies. Direct mode has neither (same restriction
     as WAL attachment). *)
  if t.ctx.Context.mode <> Context.Indirect then
    invalid_arg
      (Printf.sprintf "Collection.txn: %S uses direct references; transactions need indirect \
                       mode" t.name);
  obs_incr t Smc_obs.c_txn_begins;
  { tx_coll = t; tx_begin_csn = Context.csn_now t.ctx; tx_ops = []; tx_done = false }

let check_open tx what =
  if tx.tx_done then
    invalid_arg (Printf.sprintf "Collection.%s: transaction already committed or aborted" what)

let stage_add tx ~init =
  check_open tx "stage_add";
  tx.tx_ops <- S_add init :: tx.tx_ops

let stage_remove tx r =
  check_open tx "stage_remove";
  tx.tx_ops <- S_remove r :: tx.tx_ops

let stage_store tx r ~word ~value =
  check_open tx "stage_store";
  if word < 0 || word >= tx.tx_coll.layout.Layout.slot_words then
    invalid_arg "Collection.stage_store: word offset outside the layout";
  tx.tx_ops <- S_store (r, word, value) :: tx.tx_ops

let abort tx =
  check_open tx "abort";
  tx.tx_done <- true;
  tx.tx_ops <- [];
  obs_incr tx.tx_coll Smc_obs.c_txn_aborts

(* Write-write validation (first committer wins): every ref this
   transaction removes or stores must still resolve, and its slot's last
   write CSN must not exceed the transaction's begin frontier — a later
   stamp means some other unit committed a write to the row after we
   staged against it. Runs inside the commit critical section, so resolved
   locations stay stable for the subsequent apply. *)
let validate_locked tx =
  let ctx = tx.tx_coll.ctx in
  let seen = Hashtbl.create 8 in
  let check r what =
    let packed = Ref.to_packed r in
    if Hashtbl.mem seen packed then
      invalid_arg
        (Printf.sprintf "Collection.commit: reference staged for %s twice in one transaction"
           what);
    Hashtbl.add seen packed ();
    match Context.resolve ctx packed with
    | None -> false
    | Some (blk, slot) ->
      Bigarray.Array1.unsafe_get blk.Block.csn_write slot <= tx.tx_begin_csn
  in
  List.for_all
    (fun op ->
      match op with
      | S_add _ -> true
      | S_remove r -> check r "removal"
      | S_store (r, _, _) -> check r "store")
    tx.tx_ops

let apply_locked tx ~csn =
  let t = tx.tx_coll in
  let ctx = t.ctx in
  let adds = ref [] and logged = ref [] in
  List.iter
    (fun op ->
      match op with
      | S_add init ->
        let packed = Context.alloc ~csn ctx in
        let r = Ref.of_packed packed in
        (match Context.resolve ctx packed with
        | Some (blk, slot) ->
          init blk slot;
          List.iter (fun h -> h.ih_on_add r blk slot) t.hooks;
          adds := r :: !adds;
          logged := L_add (r, blk, slot) :: !logged
        | None -> assert false)
      | S_remove r ->
        if not (Context.free ~csn ctx (Ref.to_packed r)) then
          (* Validation saw the row alive moments ago inside this same
             critical section; only a concurrent bare [remove] can have
             killed it since. That interleaving voids the atomicity
             contract, so fail loudly rather than publish half a batch. *)
          failwith
            (Printf.sprintf
               "Collection.commit: reference vanished between validation and apply in %S \
                (concurrent bare remove of a transactionally-written row)"
               t.name);
        List.iter (fun h -> h.ih_on_remove r) t.hooks;
        logged := L_remove r :: !logged
      | S_store (r, word, value) ->
        (* Copy-on-write: the updated row is published in a fresh slot and
           the old copy retired to limbo with death stamp [csn], so open
           snapshot views keep reading the pre-commit payload. *)
        if not (Context.store_versioned ctx (Ref.to_packed r) ~csn ~word ~value) then
          failwith
            (Printf.sprintf
               "Collection.commit: reference vanished between validation and apply in %S \
                (concurrent bare remove of a transactionally-written row)"
               t.name);
        List.iter (fun h -> h.ih_on_store r ~word) t.hooks;
        logged := L_store (r, word, value) :: !logged)
    (List.rev tx.tx_ops);
  (List.rev !adds, List.rev !logged)

(* ---- Two-phase commit primitives --------------------------------------
   [prepare] runs the first half of a commit — take the transaction lock,
   enter the epoch critical section, validate — and then *returns with both
   still held*, so a coordinator can prepare several collections and only
   publish once every one of them validated. The critical section keeps the
   validated locations stable and the lock keeps competing committers and
   view-frontier reads out, so a prepared transaction cannot be invalidated
   before [commit_prepared] lands it. Locks and critical sections are bound
   to the calling domain: prepare and finish a transaction on one domain,
   and when preparing several collections always take them in one global
   order (ascending shard id) so concurrent coordinators cannot deadlock. *)

type prepared = { pr_tx : txn; mutable pr_open : bool }

let prepare tx =
  check_open tx "prepare";
  tx.tx_done <- true;
  let t = tx.tx_coll in
  let rt = t.rt in
  Runtime.fire_txn_hook rt Runtime.Txn_staged;
  Mutex.lock t.txn_lock;
  (* One critical section around validate + apply + log: resolved
     locations stay stable, freed slots cannot clear their grace period
     before the WAL batch lands (same discipline as bare [remove]'s
     free-then-append pinning), and the commit CSN stays adjacent to
     the published stamps. *)
  Epoch.enter_critical rt.Runtime.epoch;
  if validate_locked tx then begin
    Runtime.fire_txn_hook rt Runtime.Txn_validated;
    Some { pr_tx = tx; pr_open = true }
  end
  else begin
    obs_incr t Smc_obs.c_txn_conflicts;
    Epoch.exit_critical rt.Runtime.epoch;
    Mutex.unlock t.txn_lock;
    None
  end

let finish_prepared pr =
  pr.pr_open <- false;
  let t = pr.pr_tx.tx_coll in
  Epoch.exit_critical t.rt.Runtime.epoch;
  Mutex.unlock t.txn_lock

let check_prepared pr what =
  if not pr.pr_open then
    invalid_arg (Printf.sprintf "Collection.%s: prepared transaction already finished" what)

let commit_prepared pr =
  check_prepared pr "commit_prepared";
  let tx = pr.pr_tx in
  let t = tx.tx_coll in
  Fun.protect
    ~finally:(fun () -> finish_prepared pr)
    (fun () ->
      let csn = Context.next_csn t.ctx in
      let adds, logged = apply_locked tx ~csn in
      Runtime.fire_txn_hook t.rt Runtime.Txn_applied;
      (match t.wal with None -> () | Some w -> w.wh_on_txn ~txn_id:csn logged);
      Runtime.fire_txn_hook t.rt Runtime.Txn_logged;
      obs_incr t Smc_obs.c_txn_commits;
      adds)

let abort_prepared pr =
  check_prepared pr "abort_prepared";
  (* This collection's validation passed; a sibling in the same coordinated
     commit conflicted. Count it as a conflict so the per-runtime outcome
     balance (begins = commits + aborts + conflicts) still partitions. *)
  obs_incr pr.pr_tx.tx_coll Smc_obs.c_txn_conflicts;
  finish_prepared pr

let commit tx =
  match prepare tx with
  | None -> Conflict
  | Some pr -> Committed (commit_prepared pr)

let transact t f =
  let tx = txn t in
  (match f tx with
  | () -> ()
  | exception e ->
    if not tx.tx_done then abort tx;
    raise e);
  if tx.tx_done then invalid_arg "Collection.transact: body committed or aborted the transaction"
  else commit tx

(* ---- Snapshot views ---------------------------------------------------
   A view pins (a) the current epoch, by holding a critical section for the
   view's lifetime — so limbo rows it can still see are never recycled or
   compacted away — and (b) a CSN frontier read under the transaction lock,
   so the frontier never splits a committed batch. Row visibility is then
   pure stamp arithmetic ({!Context.slot_visible_at}). Views are bound to
   the opening domain (the critical section is thread-local) and must be
   closed; [with_view] brackets the common case. *)

type view = { vw_coll : t; vw_csn : int; mutable vw_open : bool }

let snapshot_view t =
  let rt = t.rt in
  Epoch.enter_critical rt.Runtime.epoch;
  (* Store-load pairing with the compactor (see {!Runtime.t.active_views}):
     publish the view before checking for a moving phase, and wait out any
     pass already moving — its group completion drops limbo rows wholesale,
     with no per-row stamp to test against. *)
  ignore (Atomic.fetch_and_add rt.Runtime.active_views 1 : int);
  while Atomic.get rt.Runtime.in_moving_phase do
    Domain.cpu_relax ()
  done;
  Mutex.lock t.txn_lock;
  let csn = Context.csn_now t.ctx in
  Mutex.unlock t.txn_lock;
  obs_incr t Smc_obs.c_txn_views;
  { vw_coll = t; vw_csn = csn; vw_open = true }

let close_view v =
  if v.vw_open then begin
    v.vw_open <- false;
    ignore (Atomic.fetch_and_add v.vw_coll.rt.Runtime.active_views (-1) : int);
    Epoch.exit_critical v.vw_coll.rt.Runtime.epoch;
    obs_incr v.vw_coll Smc_obs.c_txn_view_closes
  end

(* A frontier vector over several collections, read while holding ALL their
   transaction locks (in list order — callers coordinating with a
   multi-collection [prepare] sequence must pass the same global order). A
   coordinated commit holds every participating lock from prepare through
   apply, so the vector cannot land between two halves of it: the views see
   all of a cross-collection transaction or none of it. Locking one
   collection at a time would not give that — the vector could straddle a
   commit that published on a later collection first. *)
let snapshot_views ts =
  List.iter
    (fun t ->
      let rt = t.rt in
      Epoch.enter_critical rt.Runtime.epoch;
      ignore (Atomic.fetch_and_add rt.Runtime.active_views 1 : int);
      while Atomic.get rt.Runtime.in_moving_phase do
        Domain.cpu_relax ()
      done)
    ts;
  List.iter (fun t -> Mutex.lock t.txn_lock) ts;
  let views =
    List.map
      (fun t ->
        let csn = Context.csn_now t.ctx in
        obs_incr t Smc_obs.c_txn_views;
        { vw_coll = t; vw_csn = csn; vw_open = true })
      ts
  in
  List.iter (fun t -> Mutex.unlock t.txn_lock) ts;
  views

let view_csn v = v.vw_csn

let check_view v what =
  if not v.vw_open then invalid_arg (Printf.sprintf "Collection.%s: view already closed" what)

let view_iter v ~f =
  check_view v "view_iter";
  Context.iter_visible v.vw_coll.ctx ~csn:v.vw_csn ~f

let view_fold v ~init ~f =
  let acc = ref init in
  view_iter v ~f:(fun blk slot -> acc := f !acc blk slot);
  !acc

let view_count v = view_fold v ~init:0 ~f:(fun acc _ _ -> acc + 1)

let with_view t f =
  let v = snapshot_view t in
  Fun.protect ~finally:(fun () -> close_view v) (fun () -> f v)
