open Smc_offheap

type index_hook = {
  ih_name : string;
  ih_on_add : Ref.t -> Block.t -> int -> unit;
  ih_on_remove : Ref.t -> unit;
}

type wal_hook = {
  wh_name : string;
  wh_on_add : Ref.t -> Block.t -> int -> unit;
  wh_on_remove : Ref.t -> unit;
}

type t = {
  name : string;
  layout : Layout.t;
  ctx : Context.t;
  rt : Runtime.t;
  mutable hooks : index_hook list;
  mutable wal : wal_hook option;
}

let create rt ~name ~layout ?placement ?mode ?slots_per_block ?reclaim_threshold () =
  let ctx = Context.create rt ~layout ?placement ?mode ?slots_per_block ?reclaim_threshold () in
  { name; layout; ctx; rt; hooks = []; wal = None }

let add t ~init =
  let packed = Context.alloc t.ctx in
  let r = Ref.of_packed packed in
  (match Context.resolve t.ctx packed with
  | Some (blk, slot) ->
      init blk slot;
      (match t.hooks with
      | [] -> ()
      | hooks -> List.iter (fun h -> h.ih_on_add r blk slot) hooks);
      (match t.wal with None -> () | Some w -> w.wh_on_add r blk slot)
  | None -> assert false (* a freshly allocated object cannot be dead *));
  r

let remove t r =
  match t.wal with
  | None ->
    let removed = Context.free t.ctx (Ref.to_packed r) in
    (if removed then
       match t.hooks with
       | [] -> ()
       | hooks -> List.iter (fun h -> h.ih_on_remove r) hooks);
    removed
  | Some w ->
    (* Pin the epoch across free + log append: while this domain stays in
       a critical section the freed slot cannot clear its grace period, so
       no other domain can recycle the entry and log a later incarnation's
       Add before this Remove record lands — replay order stays sound. *)
    let em = t.rt.Runtime.epoch in
    Epoch.enter_critical em;
    Fun.protect
      ~finally:(fun () -> Epoch.exit_critical em)
      (fun () ->
        let removed = Context.free t.ctx (Ref.to_packed r) in
        if removed then begin
          (match t.hooks with
          | [] -> ()
          | hooks -> List.iter (fun h -> h.ih_on_remove r) hooks);
          w.wh_on_remove r
        end;
        removed)

let attach_index t hook =
  (match t.ctx.Context.mode with
  | Context.Direct ->
      invalid_arg
        (Printf.sprintf
           "Collection.attach_index: collection %S uses direct references; \
            indexes require indirect mode (refs stable across compaction)"
           t.name)
  | Context.Indirect -> ());
  if List.exists (fun h -> String.equal h.ih_name hook.ih_name) t.hooks then
    invalid_arg
      (Printf.sprintf "Collection.attach_index: index %S already attached to %S" hook.ih_name
         t.name);
  t.hooks <- hook :: t.hooks

let detach_index t name =
  if not (List.exists (fun h -> String.equal h.ih_name name) t.hooks) then
    invalid_arg
      (Printf.sprintf "Collection.detach_index: no index %S attached to %S" name t.name);
  t.hooks <- List.filter (fun h -> not (String.equal h.ih_name name)) t.hooks

let index_names t = List.rev_map (fun h -> h.ih_name) t.hooks

let attach_wal t hook =
  (match t.ctx.Context.mode with
  | Context.Direct ->
      invalid_arg
        (Printf.sprintf
           "Collection.attach_wal: collection %S uses direct references; \
            WAL capture requires indirect mode (logged refs must stay \
            stable across compaction)"
           t.name)
  | Context.Indirect -> ());
  (match t.wal with
  | Some w ->
      invalid_arg
        (Printf.sprintf "Collection.attach_wal: WAL %S already attached to %S" w.wh_name t.name)
  | None -> ());
  t.wal <- Some hook

let detach_wal t =
  match t.wal with
  | None -> invalid_arg (Printf.sprintf "Collection.detach_wal: no WAL attached to %S" t.name)
  | Some _ -> t.wal <- None

let wal_name t = Option.map (fun w -> w.wh_name) t.wal

let deref_opt t r = Context.resolve t.ctx (Ref.to_packed r)

let deref t r =
  match deref_opt t r with
  | Some loc -> loc
  | None -> raise Constants.Null_reference

let mem t r = deref_opt t r <> None

let with_read t f =
  Epoch.enter_critical t.rt.Runtime.epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit_critical t.rt.Runtime.epoch) f

let iter t ~f = with_read t (fun () -> Context.iter_valid t.ctx ~f)

let iter_per_block t ~f = Context.iter_valid_per_block t.ctx ~f

let iter_scan t ~on_block = with_read t (fun () -> Context.iter_valid_hoisted t.ctx ~on_block)

let loc_block t loc = Context.block_of_loc t.ctx loc
let loc_slot loc = Constants.ptr_slot loc

let ref_of_slot t blk slot = Ref.of_packed (Context.indirect_ref_of_slot t.ctx blk slot)

let iter_refs t ~f = iter t ~f:(fun blk slot -> f (ref_of_slot t blk slot))

let fold t ~init ~f =
  let acc = ref init in
  iter t ~f:(fun blk slot -> acc := f !acc blk slot);
  !acc

let count t = Context.valid_count t.ctx

let compact t ?occupancy_threshold () = Compaction.run t.ctx ?occupancy_threshold ()

let memory_words t = Context.off_heap_words t.ctx
let block_count t = Context.block_count t.ctx
let limbo_count t = Context.stats_limbo t.ctx
