open Smc_offheap

type index_hook = {
  ih_name : string;
  ih_on_add : Ref.t -> Block.t -> int -> unit;
  ih_on_remove : Ref.t -> unit;
}

type t = {
  name : string;
  layout : Layout.t;
  ctx : Context.t;
  rt : Runtime.t;
  mutable hooks : index_hook list;
}

let create rt ~name ~layout ?placement ?mode ?slots_per_block ?reclaim_threshold () =
  let ctx = Context.create rt ~layout ?placement ?mode ?slots_per_block ?reclaim_threshold () in
  { name; layout; ctx; rt; hooks = [] }

let add t ~init =
  let packed = Context.alloc t.ctx in
  let r = Ref.of_packed packed in
  (match Context.resolve t.ctx packed with
  | Some (blk, slot) ->
      init blk slot;
      (match t.hooks with
      | [] -> ()
      | hooks -> List.iter (fun h -> h.ih_on_add r blk slot) hooks)
  | None -> assert false (* a freshly allocated object cannot be dead *));
  r

let remove t r =
  let removed = Context.free t.ctx (Ref.to_packed r) in
  (if removed then
     match t.hooks with
     | [] -> ()
     | hooks -> List.iter (fun h -> h.ih_on_remove r) hooks);
  removed

let attach_index t hook =
  (match t.ctx.Context.mode with
  | Context.Direct ->
      invalid_arg
        (Printf.sprintf
           "Collection.attach_index: collection %S uses direct references; \
            indexes require indirect mode (refs stable across compaction)"
           t.name)
  | Context.Indirect -> ());
  if List.exists (fun h -> String.equal h.ih_name hook.ih_name) t.hooks then
    invalid_arg
      (Printf.sprintf "Collection.attach_index: index %S already attached to %S" hook.ih_name
         t.name);
  t.hooks <- hook :: t.hooks

let detach_index t name =
  if not (List.exists (fun h -> String.equal h.ih_name name) t.hooks) then
    invalid_arg
      (Printf.sprintf "Collection.detach_index: no index %S attached to %S" name t.name);
  t.hooks <- List.filter (fun h -> not (String.equal h.ih_name name)) t.hooks

let index_names t = List.rev_map (fun h -> h.ih_name) t.hooks

let deref_opt t r = Context.resolve t.ctx (Ref.to_packed r)

let deref t r =
  match deref_opt t r with
  | Some loc -> loc
  | None -> raise Constants.Null_reference

let mem t r = deref_opt t r <> None

let with_read t f =
  Epoch.enter_critical t.rt.Runtime.epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit_critical t.rt.Runtime.epoch) f

let iter t ~f = with_read t (fun () -> Context.iter_valid t.ctx ~f)

let iter_per_block t ~f = Context.iter_valid_per_block t.ctx ~f

let iter_scan t ~on_block = with_read t (fun () -> Context.iter_valid_hoisted t.ctx ~on_block)

let loc_block t loc = Context.block_of_loc t.ctx loc
let loc_slot loc = Constants.ptr_slot loc

let ref_of_slot t blk slot = Ref.of_packed (Context.indirect_ref_of_slot t.ctx blk slot)

let iter_refs t ~f = iter t ~f:(fun blk slot -> f (ref_of_slot t blk slot))

let fold t ~init ~f =
  let acc = ref init in
  iter t ~f:(fun blk slot -> acc := f !acc blk slot);
  !acc

let count t = Context.valid_count t.ctx

let compact t ?occupancy_threshold () = Compaction.run t.ctx ?occupancy_threshold ()

let memory_words t = Context.off_heap_words t.ctx
let block_count t = Context.block_count t.ctx
let limbo_count t = Context.stats_limbo t.ctx
