open Smc_offheap

type loc = Block.t * int

let resolve layout name expected describe =
  let f = Layout.field layout name in
  if not (expected f.Layout.ftype) then
    invalid_arg
      (Printf.sprintf "Field: %s.%s is not a %s field" layout.Layout.type_name name describe);
  f

let int layout name =
  resolve layout name (function Layout.Int -> true | _ -> false) "Int"

let dec layout name =
  resolve layout name (function Layout.Dec -> true | _ -> false) "Dec"

let date layout name =
  resolve layout name (function Layout.Date -> true | _ -> false) "Date"

let bool layout name =
  resolve layout name (function Layout.Bool -> true | _ -> false) "Bool"

let float layout name =
  resolve layout name (function Layout.Float -> true | _ -> false) "Float"

let str layout name =
  resolve layout name (function Layout.Str _ -> true | _ -> false) "Str"

let ref_ layout name =
  resolve layout name (function Layout.Ref _ -> true | _ -> false) "Ref"

let get_int (f : Layout.field) blk slot = Block.get_word blk ~slot ~word:f.Layout.word
let set_int (f : Layout.field) blk slot v = Block.set_word blk ~slot ~word:f.Layout.word v

let get_dec = get_int
let set_dec = set_int
let get_date = get_int
let set_date = set_int

let get_bool f blk slot = get_int f blk slot <> 0
let set_bool f blk slot v = set_int f blk slot (if v then 1 else 0)

let get_float (f : Layout.field) blk slot = Block.get_float blk ~slot ~word:f.Layout.word
let set_float (f : Layout.field) blk slot v = Block.set_float blk ~slot ~word:f.Layout.word v

let get_string (f : Layout.field) blk slot = Block.get_string blk ~slot f
let set_string (f : Layout.field) blk slot s = Block.set_string blk ~slot f s

let get_char f blk slot = Char.unsafe_chr (get_int f blk slot land 0xFF)

let string_eq (f : Layout.field) literal =
  let words = Block.string_words f literal in
  let n = Array.length words in
  let base = f.Layout.word in
  fun blk slot ->
    let rec go w =
      w >= n
      || Block.get_word blk ~slot ~word:(base + w) = Array.unsafe_get words w && go (w + 1)
    in
    go 0

let bpw = Layout.str_bytes_per_word

let false_pred _ _ = false
let true_pred _ _ = true

(* Stored strings are NUL-terminated (or capacity-bounded) byte runs; a
   needle containing NUL or longer than the capacity can never match the
   round-tripped string, so those degenerate to a constant predicate rather
   than letting the packed compare match NUL padding byte-for-byte. *)
let string_prefix (f : Layout.field) needle =
  let cap = Layout.str_capacity f in
  let n = String.length needle in
  if n = 0 then true_pred
  else if n > cap || String.contains needle '\000' then false_pred
  else begin
    let words = Block.string_words f needle in
    let base = f.Layout.word in
    let full = n / bpw in
    let rem = n mod bpw in
    let mask = (1 lsl (8 * rem)) - 1 in
    fun blk slot ->
      let rec go w =
        if w < full then
          Block.get_word blk ~slot ~word:(base + w) = Array.unsafe_get words w && go (w + 1)
        else
          rem = 0
          || Block.get_word blk ~slot ~word:(base + w) land mask
             = Array.unsafe_get words w land mask
      in
      go 0
  end

let string_contains (f : Layout.field) needle =
  let cap = Layout.str_capacity f in
  let n = String.length needle in
  if n = 0 then true_pred
  else if n > cap || String.contains needle '\000' then false_pred
  else begin
    let base = f.Layout.word in
    let byte_at blk slot p =
      Block.get_word blk ~slot ~word:(base + (p / bpw)) lsr (p mod bpw * 8) land 0xFF
    in
    fun blk slot ->
      (* length of the stored string: first NUL, capacity-bounded *)
      let hlen = ref 0 in
      while !hlen < cap && byte_at blk slot !hlen <> 0 do
        incr hlen
      done;
      let hlen = !hlen in
      let rec at i j =
        j >= n || (byte_at blk slot (i + j) = Char.code (String.unsafe_get needle j) && at i (j + 1))
      in
      let rec search i = i + n <= hlen && (at i 0 || search (i + 1)) in
      search 0
  end

let set_ref (f : Layout.field) ~(target : Collection.t) blk slot r =
  (* §2's tabular typing: a Ref field names the tabular type it may point
     to; storing a reference into a differently-typed collection is a type
     error. *)
  (match f.Layout.ftype with
  | Layout.Ref expected
    when not (String.equal expected target.Collection.layout.Layout.type_name) ->
    invalid_arg
      (Printf.sprintf "Field.set_ref: field %s expects a %s, got a %s" f.Layout.name
         expected target.Collection.layout.Layout.type_name)
  | _ -> ());
  let packed = Ref.to_packed r in
  let stored =
    if packed < 0 then Constants.null_ref
    else
      match target.Collection.ctx.Context.mode with
      | Context.Indirect -> packed
      | Context.Direct -> Context.direct_ref_of target.Collection.ctx packed
  in
  Block.set_word blk ~slot ~word:f.Layout.word stored

let follow (f : Layout.field) ~(target : Collection.t) blk slot =
  let w = Block.get_word blk ~slot ~word:f.Layout.word in
  if w < 0 then None
  else
    match target.Collection.ctx.Context.mode with
    | Context.Indirect -> Context.resolve target.Collection.ctx w
    | Context.Direct -> begin
      match Context.resolve_direct target.Collection.ctx w with
      | None -> None
      | Some (tb, ts) as loc ->
        (* §6: after forwarding through a tombstone, update the stored
           pointer so future accesses go straight to the new location. *)
        if tb.Block.id <> Constants.direct_block w then begin
          let inc =
            Bigarray.Array1.unsafe_get tb.Block.slot_inc ts land Constants.direct_inc_mask
          in
          Block.set_word blk ~slot ~word:f.Layout.word
            (Constants.pack_direct ~block:tb.Block.id ~slot:ts ~inc)
        end;
        loc
    end

(* Allocation-free join step: packed (block, slot) location or -1. The
   unsafe compiled queries use this on hot paths. *)
let follow_loc (f : Layout.field) ~(target : Collection.t) blk slot =
  let w = Block.get_word blk ~slot ~word:f.Layout.word in
  match target.Collection.ctx.Context.mode with
  | Context.Indirect -> Context.resolve_loc target.Collection.ctx w
  | Context.Direct -> Context.resolve_direct_loc target.Collection.ctx w

let get_ref (f : Layout.field) ~(target : Collection.t) blk slot =
  match follow f ~target blk slot with
  | None -> Ref.null
  | Some (tb, ts) -> Ref.of_packed (Context.indirect_ref_of_slot target.Collection.ctx tb ts)
