(** Self-managed collections (§2 and §4 of the paper).

    A collection owns the memory of its objects: [add] allocates an object
    in the collection's private memory context, [remove] frees it and every
    outstanding reference to it reads as null from then on. Collections have
    bag semantics and are enumerated in memory (block) order inside epoch
    critical sections, which is what compiled queries exploit.

    Storage knobs mirror the paper's variants: row vs columnar placement
    (§4.1) and indirect vs direct reference mode (§6). *)

type index_hook = {
  ih_name : string;
  ih_on_add : Ref.t -> Smc_offheap.Block.t -> int -> unit;
      (** Fired by {!add} after the object's fields are initialised, with
          the new reference and its current location. *)
  ih_on_remove : Ref.t -> unit;
      (** Fired by {!remove} after a successful free. The reference already
          reads as null; maintenance must be deferred (lazy staleness). *)
  ih_on_store : Ref.t -> word:int -> unit;
      (** Fired after a published word store to a live row — by the bare
          {!store} inside its critical section, and by commit for each
          staged {!stage_store} (after the copy-on-write swing; the ref
          keeps its identity). Value-indexing structures use this to mark
          the row's old entry stale and re-key the new payload; key-at-add
          indexes (hash) ignore it. *)
}
(** Incremental-maintenance callbacks for an attached secondary index
    ([Smc_index] builds these; the collection layer only fires them). *)

type logged_op =
  | L_add of Ref.t * Smc_offheap.Block.t * int
  | L_remove of Ref.t
  | L_store of Ref.t * int * int
      (** One published mutation of a committed transaction, in commit
          order. Adds carry their location for slot-image serialisation;
          the batch is handed over inside the commit's critical section, so
          locations are stable while the hook runs. *)

type wal_hook = {
  wh_name : string;
  wh_on_add : Ref.t -> Smc_offheap.Block.t -> int -> unit;
      (** Fired by {!add} after field init and index hooks, with the new
          reference and its location — the WAL serialises the slot image. *)
  wh_on_remove : Ref.t -> unit;
      (** Fired by {!remove} after a successful free. *)
  wh_on_store : Ref.t -> word:int -> value:int -> unit;
      (** Fired by the bare {!store} after the stamped in-place write,
          inside its critical section. *)
  wh_on_txn : txn_id:int -> logged_op list -> unit;
      (** Fired once per committed transaction with the whole batch, inside
          the commit critical section — the WAL frames it atomically
          ([Txn_begin]/[Txn_commit]) so recovery applies all or none. *)
}
(** Redo-logging callbacks for an attached write-ahead log ([Smc_persist]
    builds these; the collection layer only fires them). At most one WAL
    may be attached at a time. *)

type t = {
  name : string;
  layout : Smc_offheap.Layout.t;
  ctx : Smc_offheap.Context.t;
  rt : Smc_offheap.Runtime.t;
  mutable hooks : index_hook list;
  mutable view_names : string list;
      (** hook names registered through {!attach_view} (newest first) —
          the same registry as indexes, partitioned by name *)
  mutable wal : wal_hook option;
  txn_lock : Mutex.t;
      (** serialises transaction commits and view-frontier reads; never
          held together with the context lock *)
}

val create :
  Smc_offheap.Runtime.t ->
  name:string ->
  layout:Smc_offheap.Layout.t ->
  ?placement:Smc_offheap.Block.placement ->
  ?mode:Smc_offheap.Context.mode ->
  ?slots_per_block:int ->
  ?reclaim_threshold:float ->
  unit ->
  t

val add : t -> init:(Smc_offheap.Block.t -> int -> unit) -> Ref.t
(** Allocates an object (zeroed), runs [init] on its (block, slot) to set
    the fields, and returns a reference. Maps directly onto the memory
    manager's alloc, as §2 prescribes. *)

val remove : t -> Ref.t -> bool
(** Frees the object; [false] if the reference was already null/dead.
    Attached index hooks fire only on a successful free. *)

val store : t -> Ref.t -> word:int -> value:int -> unit
(** Single-word in-place store, stamped with its own fresh CSN under the
    transaction lock — the non-transactional counterpart of {!stage_store}.
    Unlike a raw [Field.set_*] poke, a [store] participates in
    first-committer-wins validation: a transaction that staged against the
    row before this store commits afterwards with [Conflict]. The write is
    in place (same slot; no copy-on-write), so open snapshot views whose
    frontier predates it will still read the new payload — single-word
    writes are atomic, views stay word-consistent but not frozen, which is
    the documented contract for all bare mutations. Fires the WAL store
    hook. Raises {!Smc_offheap.Constants.Null_reference} if the reference
    is null or dead, [Invalid_argument] if [word] is outside the layout.
    Do not store to indexed key fields — index entries are keyed at add
    time. *)

val attach_index : t -> index_hook -> unit
(** Registers an index's maintenance hooks so {!add}/{!remove} keep it
    current incrementally. Attachment is a quiescent-point operation: no
    concurrent [add]/[remove] may run while the hook list changes (probes
    may). Raises [Invalid_argument] for a duplicate index name, or when the
    collection uses {!Smc_offheap.Context.Direct} references — indexes store
    [Ref.t]s and rely on indirect mode keeping them stable across
    compaction, so relocation never needs index patching. *)

val detach_index : t -> string -> unit
(** Unregisters the named index's hooks (quiescent-point operation).
    Raises [Invalid_argument] if no such index is attached. *)

val index_names : t -> string list
(** Names of currently attached indexes, in attachment order. Hooks
    registered through {!attach_view} are excluded. *)

val attach_view : t -> index_hook -> unit
(** Registers a materialized view's maintenance hooks. Views share the
    index hook registry — every mutation path that fires index hooks fires
    view hooks at the same points, exactly once per published op — but are
    tracked by name in a separate namespace: {!detach_index} refuses to
    remove a view and vice versa. Same quiescent-point and indirect-mode
    requirements as {!attach_index}; raises [Invalid_argument] on a
    duplicate hook name (across indexes and views). *)

val detach_view : t -> string -> unit
(** Unregisters the named view's hooks (quiescent-point operation).
    Raises [Invalid_argument] if no such view is attached. *)

val view_hook_names : t -> string list
(** Names of currently attached materialized views, in attachment order. *)

val attach_wal : t -> wal_hook -> unit
(** Registers a write-ahead log's redo callbacks so every {!add}/{!remove}
    is captured. Attachment is a quiescent-point operation. Raises
    [Invalid_argument] when a WAL is already attached, or when the
    collection uses {!Smc_offheap.Context.Direct} references — the log
    records [Ref.t]s and relies on indirect mode keeping them stable
    across compaction. *)

val detach_wal : t -> unit
(** Unregisters the attached WAL's callbacks (quiescent-point operation).
    Raises [Invalid_argument] if no WAL is attached. *)

val wal_name : t -> string option
(** Name of the currently attached WAL, if any. *)

val deref : t -> Ref.t -> Smc_offheap.Block.t * int
(** Current location of the object. Raises
    {!Smc_offheap.Constants.Null_reference} when the object is gone. Use
    inside {!with_read} if the location must stay stable while reading. *)

val deref_opt : t -> Ref.t -> (Smc_offheap.Block.t * int) option

val mem : t -> Ref.t -> bool
(** Whether the reference still names a live object. *)

val with_read : t -> (unit -> 'a) -> 'a
(** Runs [f] inside an epoch critical section — the amortisation unit for
    queries (§4): one enter/exit per query, not per object. Nestable. *)

val iter : t -> f:(Smc_offheap.Block.t -> int -> unit) -> unit
(** Enumerates valid slots in block order within one critical section. *)

val iter_per_block : t -> f:(Smc_offheap.Block.t -> int -> unit) -> unit
(** Like {!iter} but with one critical section per memory block instead of
    one for the whole enumeration — §4's alternative granularity, keeping
    grace periods short so reclamation can progress during long scans. *)

val iter_scan : t -> on_block:(Smc_offheap.Block.t -> int -> unit) -> unit
(** Block-hoisted enumeration: [on_block blk] is evaluated once per block,
    and the resulting closure runs for each valid slot. Compiled queries use
    this to hoist the block's raw arrays and field offsets out of the slot
    loop — the paper's direct pointer access to the collection's memory
    blocks. *)

val loc_block : t -> int -> Smc_offheap.Block.t
(** Block for a packed location from {!Field.follow_loc}. *)

val loc_slot : int -> int
(** Slot for a packed location. *)

val iter_refs : t -> f:(Ref.t -> unit) -> unit
(** Like {!iter} but yields references (built via back-pointers, as the
    paper's generated enumeration code does). *)

val fold : t -> init:'a -> f:('a -> Smc_offheap.Block.t -> int -> 'a) -> 'a

val count : t -> int
(** Live objects (O(blocks), from the per-block counters). *)

val ref_of_slot : t -> Smc_offheap.Block.t -> int -> Ref.t
(** Reference for an enumerated slot. *)

val compact : t -> ?occupancy_threshold:float -> unit -> Smc_offheap.Compaction.report
(** Runs a §5 compaction pass over the collection's context. A pass aborts
    (without moving anything) while snapshot views are open — their limbo
    rows must survive; retry after the views close. *)

(** {2 Atomic multi-op transactions}

    A transaction stages mutations privately and commits them as one unit:
    write-write conflicts are validated against the staging-time CSN
    frontier (first committer wins), the batch is published under the
    collection's transaction lock with a single commit CSN — snapshot views
    see all of it or none of it — and an attached WAL logs it as one framed
    batch that recovery replays atomically.

    Bare {!add}/{!remove} calls are their own single-op units, each with
    its own CSN, and bypass the transaction lock. A bare {!store} also
    commits as a single-op unit but takes the transaction lock for its
    stamp: serialised against commits, it participates in
    first-committer-wins validation like any other writer. Only a raw
    [Field.set_*] poke carries no CSN stamp and stays invisible to
    validation. Rows written by a transaction must not be concurrently
    bare-removed — that interleaving voids the atomicity contract and
    [commit] fails loudly ([Failure]) if it detects it. *)

type txn
(** An open transaction on one collection. Not thread-safe: stage and
    commit from one domain. *)

type txn_result =
  | Committed of Ref.t list
      (** references of the staged adds, in staging order *)
  | Conflict
      (** write-write validation failed; nothing was published, the
          transaction is closed, and the refs it staged are untouched *)

val txn : t -> txn
(** Opens a transaction whose conflict frontier is the current CSN.
    Raises [Invalid_argument] on direct-mode collections — validation and
    copy-on-write stores need the indirection layer (same restriction as
    WAL attachment). *)

val stage_add : txn -> init:(Smc_offheap.Block.t -> int -> unit) -> unit
(** Stages an allocation; [init] runs at commit on the fresh slot. *)

val stage_remove : txn -> Ref.t -> unit
(** Stages a removal. Staging the same reference twice in one transaction
    (for removal or store) is rejected at commit with [Invalid_argument]. *)

val stage_store : txn -> Ref.t -> word:int -> value:int -> unit
(** Stages a word store (the transactional counterpart of a direct field
    store; pair with [Layout] word offsets). Applied copy-on-write at
    commit ({!Smc_offheap.Context.store_versioned}): the reference keeps
    its identity but the row moves to a fresh slot, while open snapshot
    views keep reading the pre-commit payload from the retired copy. Do
    not store to indexed key fields — index entries are keyed at add
    time. *)

val commit : txn -> txn_result
(** Validates and publishes the batch, fires index hooks per op and the WAL
    hook once, and closes the transaction. *)

val abort : txn -> unit
(** Discards the staged batch and closes the transaction. *)

val transact : t -> (txn -> unit) -> txn_result
(** [transact t f] opens a transaction, runs [f] to stage its operations,
    and commits. If [f] raises, the transaction aborts and the exception
    is re-raised. *)

(** {2 Two-phase commit primitives}

    [commit] split at its validation boundary, for coordinators that must
    land transactions on {e several} collections atomically (e.g. a
    sharded collection's cross-shard transaction): prepare every
    participant, and only if {e all} validated, publish each one.

    A successful {!prepare} returns holding the collection's transaction
    lock {e and} an epoch critical section, which is what makes the split
    sound: no competing committer, bare store, or view-frontier read can
    slip in between validation and publication. Both are bound to the
    calling domain — prepare and finish on one domain, promptly. When
    preparing several collections, always take them in one global order
    (e.g. ascending shard id); concurrent coordinators using the same
    order cannot deadlock. *)

type prepared
(** A validated transaction holding its collection's commit locks. Must be
    finished with exactly one of {!commit_prepared} / {!abort_prepared}. *)

val prepare : txn -> prepared option
(** First half of {!commit}: closes the transaction, takes the commit
    locks and validates. [None] means write-write validation failed — the
    locks are already released, nothing was published, and the conflict is
    counted ([commit] would have returned [Conflict]). *)

val commit_prepared : prepared -> Ref.t list
(** Publishes the prepared batch (apply + index hooks + one framed WAL
    batch), releases the locks, and returns the staged adds' references in
    staging order. *)

val abort_prepared : prepared -> unit
(** Releases the locks without publishing anything — the coordinator's
    path when a {e sibling} collection failed validation. Counted as a
    conflict on this collection's runtime, so the transaction outcome
    balance still partitions begins. *)


(** {2 Snapshot views}

    A view pins the current epoch (it holds a critical section for its
    lifetime, so rows it can still see are never recycled or compacted
    away) and a CSN frontier read under the transaction lock (so the
    frontier never splits a committed batch). Reads against the view are
    stable: concurrent commits and bare mutations do not change what it
    yields. Views are bound to the opening domain and block the compactor's
    moving phase while open — close them promptly. *)

type view

val snapshot_view : t -> view
(** Opens a view at the current commit frontier. *)

val close_view : view -> unit
(** Releases the epoch pin; idempotent. Reading a closed view raises
    [Invalid_argument]. *)

val with_view : t -> (view -> 'a) -> 'a
(** Brackets {!snapshot_view}/{!close_view} around [f]. *)

val snapshot_views : t list -> view list
(** Views over several collections at one consistent frontier vector: the
    CSNs are read while holding {e all} the collections' transaction locks
    (taken in list order — use the same global order as multi-collection
    {!prepare} sequences). A cross-collection transaction committed
    through the prepared protocol is either visible in every returned view
    or in none. Close each view with {!close_view} as usual. *)

val view_csn : view -> int
(** The view's CSN frontier. *)

val view_iter : view -> f:(Smc_offheap.Block.t -> int -> unit) -> unit
(** Enumerates the rows visible at the view's frontier, in block order. *)

val view_fold : view -> init:'a -> f:('a -> Smc_offheap.Block.t -> int -> 'a) -> 'a
val view_count : view -> int

val memory_words : t -> int
(** Off-heap words held by the collection (blocks only). *)

val block_count : t -> int
val limbo_count : t -> int
