(* Incremental materialized aggregate views (see matview.mli for the
   contract and the delta algebra).

   State: a contribution table keyed by packed indirect reference — the
   row's filter-passing (key, aggregate inputs) as last applied — and a
   group table folding those contributions into per-aggregate cells. The
   contribution table is what makes removal possible at all (the row is
   already dead when the remove hook fires, so its values are unreadable)
   and makes every delta idempotent per reference, so a rebuild racing a
   blocked hook cannot double-count.

   Sums keep the integer and decimal contributions split so the finished
   value carries the same type tag as the engines' fold: [Int] iff every
   contribution was an [Int], else the exact decimal total. Min/Max cells
   keep the extremum, its structural multiplicity, and a dirty bit; any
   delta the cell cannot answer exactly — the extremum removed with no
   structural duplicate, or a compare-equal contribution with a different
   tag, where the engines' first-seen-in-scan-order answer depends on
   block order — marks the group dirty, and the next read re-derives
   dirty groups in one shared block-order scan, which is by construction
   the same order the engines fold in. *)

open Smc_offheap
module Value = Smc_query.Value
module Expr = Smc_query.Expr
module Source = Smc_query.Source
module Plan = Smc_query.Plan
module Aggregate = Smc_query.Aggregate
module D = Smc_decimal.Decimal

type sum_cell = {
  mutable si : int; (* sum of Int contributions *)
  mutable sd : D.t; (* exact sum of Dec contributions *)
  mutable nd : int; (* number of Dec contributions *)
}

type mm_cell = {
  maxi : bool;
  mutable cur : Value.t;
  mutable n_ext : int; (* structural multiplicity of [cur]; 0 = no rows folded *)
  mutable dirty : bool;
}

type cell = C_count | C_sum of sum_cell | C_avg of sum_cell | C_mm of mm_cell

type group = {
  g_key : Value.t list;
  mutable g_rows : int;
  g_cells : cell array;
}

type contribution = { c_key : Value.t list; c_vals : Value.t array }

type t = {
  vname : string;
  coll : Smc.Collection.t;
  keys : (string * Expr.t) list;
  aggs : (string * Source.view_agg) list;
  where : Expr.t option;
  specs : Source.view_agg array;
  extractors : (Block.t -> int -> Value.t) array;
  key_fns : (Value.t array -> Value.t) array;
  agg_fns : (Value.t array -> Value.t) option array; (* None for V_count *)
  pred : (Value.t array -> bool) option;
  schema : string array;
  lock : Mutex.t;
  groups : (Value.t list, group) Hashtbl.t;
  contribs : (int, contribution) Hashtbl.t;
  mutable frontier : int;
  mutable invalid : string option;
  obs : Smc_obs.t;
}

let name t = t.vname
let collection t = t.coll

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ---- row evaluation ------------------------------------------------ *)

let extract_row t blk slot = Array.map (fun e -> e blk slot) t.extractors
let passes t row = match t.pred with None -> true | Some p -> p row
let eval_key t row = Array.to_list (Array.map (fun f -> f row) t.key_fns)

let eval_vals t row =
  Array.map (function None -> Value.Null | Some f -> f row) t.agg_fns

(* The invertible algebra: Count always; Sum/Avg need numeric non-Null
   inputs (subtraction must be exact and the engines' fold raises on the
   rest anyway); Min/Max need non-Null inputs (a Null re-arms the engines'
   accumulator, making the result depend on scan order). *)
let non_invertible t vals =
  let bad = ref None in
  Array.iteri
    (fun i v ->
      if !bad = None then
        match (t.specs.(i), v) with
        | Source.V_count, _ -> ()
        | (Source.V_sum _ | Source.V_avg _), (Value.Int _ | Value.Dec _) -> ()
        | (Source.V_sum _ | Source.V_avg _), Value.Null ->
          bad := Some (Printf.sprintf "aggregate %d: Null sum/avg input" i)
        | (Source.V_sum _ | Source.V_avg _), _ ->
          bad := Some (Printf.sprintf "aggregate %d: non-numeric sum/avg input" i)
        | (Source.V_min _ | Source.V_max _), Value.Null ->
          bad := Some (Printf.sprintf "aggregate %d: Null min/max input" i)
        | (Source.V_min _ | Source.V_max _), _ -> ())
    vals;
  !bad

(* ---- delta application (caller holds t.lock) ----------------------- *)

let invalidate t reason =
  if t.invalid = None then begin
    t.invalid <- Some reason;
    Hashtbl.reset t.groups;
    Hashtbl.reset t.contribs;
    Smc_obs.incr t.obs Smc_obs.c_mv_invalidations
  end

let fresh_cells t =
  Array.map
    (function
      | Source.V_count -> C_count
      | Source.V_sum _ -> C_sum { si = 0; sd = D.zero; nd = 0 }
      | Source.V_avg _ -> C_avg { si = 0; sd = D.zero; nd = 0 }
      | Source.V_min _ -> C_mm { maxi = false; cur = Value.Null; n_ext = 0; dirty = false }
      | Source.V_max _ -> C_mm { maxi = true; cur = Value.Null; n_ext = 0; dirty = false })
    t.specs

let cell_add cell v =
  match cell with
  | C_count -> ()
  | C_sum s | C_avg s -> (
    match v with
    | Value.Int x -> s.si <- s.si + x
    | Value.Dec d ->
      s.sd <- D.add s.sd d;
      s.nd <- s.nd + 1
    | _ -> assert false (* guarded by [non_invertible] *))
  | C_mm m ->
    if not m.dirty then
      if m.n_ext = 0 then begin
        m.cur <- v;
        m.n_ext <- 1
      end
      else
        let c = Value.compare v m.cur in
        if if m.maxi then c > 0 else c < 0 then begin
          m.cur <- v;
          m.n_ext <- 1
        end
        else if c = 0 then
          if v = m.cur then m.n_ext <- m.n_ext + 1
          else
            (* compare-equal but tag-distinct (Int 5 vs Dec 5): the
               engines keep whichever the scan sees first — only a
               block-order re-scan can answer that *)
            m.dirty <- true

let cell_remove cell v =
  match cell with
  | C_count -> ()
  | C_sum s | C_avg s -> (
    match v with
    | Value.Int x -> s.si <- s.si - x
    | Value.Dec d ->
      s.sd <- D.sub s.sd d;
      s.nd <- s.nd - 1
    | _ -> assert false)
  | C_mm m ->
    if not m.dirty then
      if Value.compare v m.cur = 0 then
        if v = m.cur && m.n_ext > 1 then m.n_ext <- m.n_ext - 1 else m.dirty <- true

let apply_contribution t ~dir con =
  match Hashtbl.find_opt t.groups con.c_key with
  | None ->
    if dir > 0 then begin
      let g = { g_key = con.c_key; g_rows = 1; g_cells = fresh_cells t } in
      Array.iteri (fun i c -> cell_add c con.c_vals.(i)) g.g_cells;
      Hashtbl.add t.groups con.c_key g
    end
    else
      (* a −delta with no group means the tables drifted — possible only
         through a bug in a mutation path; fall back loudly, don't lie *)
      invalidate t "remove delta for an unknown group"
  | Some g ->
    if dir > 0 then begin
      g.g_rows <- g.g_rows + 1;
      Array.iteri (fun i c -> cell_add c con.c_vals.(i)) g.g_cells
    end
    else begin
      g.g_rows <- g.g_rows - 1;
      if g.g_rows <= 0 then Hashtbl.remove t.groups con.c_key
      else Array.iteri (fun i c -> cell_remove c con.c_vals.(i)) g.g_cells
    end

let touch_frontier t = t.frontier <- Context.csn_now t.coll.Smc.Collection.ctx

(* Derive the row's current contribution: [None] when the row is already
   dead (the remove hook settles that case), [Some None] when it is live
   but fails the filter, [Some (Some con)] when it contributes. *)
let derive t r =
  Smc.Collection.with_read t.coll (fun () ->
      match Smc.Collection.deref_opt t.coll r with
      | None -> None
      | Some (blk, slot) ->
        let row = extract_row t blk slot in
        Some
          (if passes t row then Some { c_key = eval_key t row; c_vals = eval_vals t row }
           else None))

let applied_delta t counter =
  Smc_obs.incr t.obs counter;
  Smc_obs.incr t.obs Smc_obs.c_mv_applied

(* ---- mutation hooks ------------------------------------------------ *)

(* Hooks run inside writers' critical sections and under the commit lock;
   they must never raise. Anything unexpected — an evaluator type error,
   a non-invertible input — downgrades to whole-view invalidation, and
   reads fall back to re-derivation. *)
let guarded t f =
  locked t (fun () ->
      if t.invalid = None then begin
        (try f () with exn -> invalidate t (Printexc.to_string exn));
        touch_frontier t
      end)

let on_add t r _blk _slot =
  guarded t (fun () ->
      let p = Smc.Ref.to_packed r in
      if not (Hashtbl.mem t.contribs p) then
        match derive t r with
        | None | Some None -> ()
        | Some (Some con) -> (
          match non_invertible t con.c_vals with
          | Some reason -> invalidate t reason
          | None ->
            Hashtbl.add t.contribs p con;
            apply_contribution t ~dir:1 con;
            applied_delta t Smc_obs.c_mv_adds))

let on_remove t r =
  guarded t (fun () ->
      let p = Smc.Ref.to_packed r in
      match Hashtbl.find_opt t.contribs p with
      | None -> () (* the row never passed the filter *)
      | Some con ->
        Hashtbl.remove t.contribs p;
        apply_contribution t ~dir:(-1) con;
        applied_delta t Smc_obs.c_mv_removes)

let on_store t r ~word:_ =
  guarded t (fun () ->
      let p = Smc.Ref.to_packed r in
      let old = Hashtbl.find_opt t.contribs p in
      match derive t r with
      | None -> () (* vanished under the store: the remove hook settles it *)
      | Some fresh ->
        if old <> fresh then
        match (match fresh with Some n -> non_invertible t n.c_vals | None -> None) with
        | Some reason -> invalidate t reason
        | None ->
          (match old with
          | Some o ->
            Hashtbl.remove t.contribs p;
            apply_contribution t ~dir:(-1) o
          | None -> ());
          (match fresh with
          | Some n ->
            Hashtbl.add t.contribs p n;
            apply_contribution t ~dir:1 n
          | None -> ());
          applied_delta t Smc_obs.c_mv_stores)

(* ---- build / re-scan / read (caller holds t.lock) ------------------ *)

(* Full incremental (re)build from live rows, in block order. Returns
   whether the state is clean; on a non-invertible input the view is left
   invalid with the tables cleared. *)
let build_locked t =
  Smc_obs.incr t.obs Smc_obs.c_mv_builds;
  t.invalid <- None;
  Hashtbl.reset t.groups;
  Hashtbl.reset t.contribs;
  Smc.Collection.iter t.coll ~f:(fun blk slot ->
      if t.invalid = None then begin
        let row = extract_row t blk slot in
        if passes t row then begin
          let con = { c_key = eval_key t row; c_vals = eval_vals t row } in
          match non_invertible t con.c_vals with
          | Some reason -> invalidate t reason
          | None ->
            let p = Smc.Ref.to_packed (Smc.Collection.ref_of_slot t.coll blk slot) in
            Hashtbl.add t.contribs p con;
            apply_contribution t ~dir:1 con
        end
      end);
  touch_frontier t;
  t.invalid = None

(* One block-order scan re-deriving every dirty Min/Max cell of the given
   groups — bounded: only dirty groups' cells are recomputed, and the
   fold is exactly the engines' (first strict improvement wins, so ties
   resolve to the first row in block order). *)
let rescan_locked t dirty =
  let targets = Hashtbl.create (List.length dirty) in
  List.iter
    (fun g ->
      Array.iter
        (function C_mm m when m.dirty -> m.n_ext <- 0 | _ -> ())
        g.g_cells;
      Hashtbl.replace targets g.g_key g)
    dirty;
  Smc.Collection.iter t.coll ~f:(fun blk slot ->
      let row = extract_row t blk slot in
      if passes t row then
        match Hashtbl.find_opt targets (eval_key t row) with
        | None -> ()
        | Some g ->
          Array.iteri
            (fun i c ->
              match c with
              | C_mm m when m.dirty ->
                let v = (Option.get t.agg_fns.(i)) row in
                if m.n_ext = 0 then begin
                  m.cur <- v;
                  m.n_ext <- 1
                end
                else
                  let cmp = Value.compare v m.cur in
                  if if m.maxi then cmp > 0 else cmp < 0 then begin
                    m.cur <- v;
                    m.n_ext <- 1
                  end
                  else if cmp = 0 && v = m.cur then m.n_ext <- m.n_ext + 1
              | _ -> ())
            g.g_cells);
  List.iter
    (fun g ->
      Array.iter (function C_mm m -> m.dirty <- false | _ -> ()) g.g_cells)
    dirty

let finish_cell g cell =
  match cell with
  | C_count -> Value.Int g.g_rows
  | C_sum s ->
    if s.nd = 0 then Value.Int s.si else Value.Dec (D.add (D.of_int s.si) s.sd)
  | C_avg s ->
    let total = if s.nd = 0 then D.of_int s.si else D.add (D.of_int s.si) s.sd in
    Value.Dec (D.div total (D.of_int g.g_rows))
  | C_mm m -> m.cur

let emit_group g =
  Array.of_list (g.g_key @ Array.to_list (Array.map (finish_cell g) g.g_cells))

let has_dirty g =
  Array.exists (function C_mm m -> m.dirty | _ -> false) g.g_cells

(* Maintained rows: resolve dirty groups first. Returns whether a re-scan
   was needed. *)
let rows_of_groups_locked t =
  let dirty = Hashtbl.fold (fun _ g acc -> if has_dirty g then g :: acc else acc) t.groups [] in
  if dirty <> [] then rescan_locked t dirty;
  let rows = Hashtbl.fold (fun _ g acc -> emit_group g :: acc) t.groups [] in
  (rows, dirty <> [])

let plan_agg_of_spec = function
  | Source.V_count -> Plan.Count
  | Source.V_sum e -> Plan.Sum e
  | Source.V_min e -> Plan.Min e
  | Source.V_max e -> Plan.Max e
  | Source.V_avg e -> Plan.Avg e

(* From-scratch evaluation of the reified plan, sharing the engines'
   aggregate cells verbatim — the fallback for an invalid view and the
   parity oracle for [audit]. May raise exactly where the engines would
   (type errors over non-invertible data). *)
let scratch_rows_locked t =
  let compiled =
    List.map
      (fun (_, spec) -> Aggregate.compile ~schema:t.schema (plan_agg_of_spec spec))
      t.aggs
  in
  let gtbl = Hashtbl.create 256 in
  let order = ref [] in
  Smc.Collection.iter t.coll ~f:(fun blk slot ->
      let row = extract_row t blk slot in
      if passes t row then begin
        let key = eval_key t row in
        let cells =
          match Hashtbl.find_opt gtbl key with
          | Some cells -> cells
          | None ->
            let cells = List.map (fun (fresh, _, _) -> fresh ()) compiled in
            Hashtbl.add gtbl key cells;
            order := key :: !order;
            cells
        in
        List.iter2 (fun (_, update, _) cell -> update cell row) compiled cells
      end);
  List.rev_map
    (fun key ->
      let cells = Hashtbl.find gtbl key in
      let finished = List.map2 (fun (_, _, finish) cell -> finish cell) compiled cells in
      Array.of_list (key @ finished))
    !order

let read t emit =
  let rows =
    locked t (fun () ->
        Smc_obs.incr t.obs Smc_obs.c_mv_reads;
        match t.invalid with
        | None ->
          let rows, rescanned = rows_of_groups_locked t in
          Smc_obs.incr t.obs
            (if rescanned then Smc_obs.c_mv_rescans else Smc_obs.c_mv_hits);
          rows
        | Some _ ->
          (* Loud fallback: one full re-derivation per read while invalid.
             Try to re-validate first — the offending rows may be gone. *)
          Smc_obs.incr t.obs Smc_obs.c_mv_rescans;
          if build_locked t then fst (rows_of_groups_locked t)
          else scratch_rows_locked t)
  in
  List.iter emit rows

let frontier t = locked t (fun () -> t.frontier)

(* ---- lifecycle ----------------------------------------------------- *)

let attach ~name:vname coll ~columns ~keys ~aggs ?where () =
  let schema = Array.of_list (List.map fst columns) in
  let known c = Array.exists (String.equal c) schema in
  let check_expr what e =
    List.iter
      (fun c ->
        if not (known c) then
          invalid_arg
            (Printf.sprintf "Matview.attach: view %S: %s references column %S outside the \
                             declared columns"
               vname what c))
      (Expr.columns e)
  in
  List.iter (fun (n, e) -> check_expr (Printf.sprintf "key %S" n) e) keys;
  List.iter
    (fun (n, spec) ->
      match spec with
      | Source.V_count -> ()
      | Source.V_sum e | Source.V_min e | Source.V_max e | Source.V_avg e ->
        check_expr (Printf.sprintf "aggregate %S" n) e)
    aggs;
  Option.iter (check_expr "the filter") where;
  let specs = Array.of_list (List.map snd aggs) in
  let t =
    {
      vname;
      coll;
      keys;
      aggs;
      where;
      specs;
      extractors = Array.of_list (List.map (fun (_, c) -> Source.extract_column c) columns);
      key_fns = Array.of_list (List.map (fun (_, e) -> Expr.compile ~schema e) keys);
      agg_fns =
        Array.map
          (function
            | Source.V_count -> None
            | Source.V_sum e | Source.V_min e | Source.V_max e | Source.V_avg e ->
              Some (Expr.compile ~schema e))
          specs;
      pred = Option.map (fun e -> Expr.compile_pred ~schema e) where;
      schema;
      lock = Mutex.create ();
      groups = Hashtbl.create 256;
      contribs = Hashtbl.create 1024;
      frontier = 0;
      invalid = None;
      obs = coll.Smc.Collection.rt.Runtime.obs;
    }
  in
  (* Hooks first (rejects direct mode / duplicate names before any work),
     then the initial build; attach is a quiescent-point operation so no
     mutation slips between the two. *)
  Smc.Collection.attach_view coll
    {
      Smc.Collection.ih_name = vname;
      ih_on_add = on_add t;
      ih_on_remove = on_remove t;
      ih_on_store = on_store t;
    };
  locked t (fun () -> ignore (build_locked t : bool));
  t

let detach t = Smc.Collection.detach_view t.coll t.vname

let info t =
  {
    Source.mv_name = t.vname;
    mv_keys = t.keys;
    mv_aggs = t.aggs;
    mv_where = t.where;
    mv_read = (fun emit -> read t emit);
    mv_frontier = (fun () -> frontier t);
    mv_collection = t.coll;
  }

(* ---- introspection -------------------------------------------------- *)

type stats = {
  st_groups : int;
  st_contributions : int;
  st_dirty_groups : int;
  st_invalid : string option;
  st_frontier : int;
}

let stats t =
  locked t (fun () ->
      {
        st_groups = Hashtbl.length t.groups;
        st_contributions = Hashtbl.length t.contribs;
        st_dirty_groups =
          Hashtbl.fold (fun _ g n -> if has_dirty g then n + 1 else n) t.groups 0;
        st_invalid = t.invalid;
        st_frontier = t.frontier;
      })

let sort_rows rows = List.sort Stdlib.compare (List.map Array.to_list rows)

let audit t =
  locked t (fun () ->
      match t.invalid with
      | Some _ -> [] (* reads re-derive; nothing maintained to cross-check *)
      | None ->
        let violations = ref [] in
        let bad fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
        (* 1. The contribution table must be exactly the live filter-passing
           rows with their current values — this is the exactly-once audit
           over every mutation path feeding the hooks. *)
        let fresh = Hashtbl.create (Hashtbl.length t.contribs) in
        Smc.Collection.iter t.coll ~f:(fun blk slot ->
            let row = extract_row t blk slot in
            if passes t row then
              let p = Smc.Ref.to_packed (Smc.Collection.ref_of_slot t.coll blk slot) in
              Hashtbl.replace fresh p { c_key = eval_key t row; c_vals = eval_vals t row });
        Hashtbl.iter
          (fun p con ->
            match Hashtbl.find_opt t.contribs p with
            | None -> bad "view %s: live row %d has no contribution (missed delta)" t.vname p
            | Some recorded ->
              if recorded <> con then
                bad "view %s: row %d contribution is stale (missed store delta)" t.vname p)
          fresh;
        Hashtbl.iter
          (fun p _ ->
            if not (Hashtbl.mem fresh p) then
              bad "view %s: contribution %d has no live row (missed remove delta)" t.vname p)
          t.contribs;
        (* 2. Group row counts against the contribution table. *)
        let per_key = Hashtbl.create (Hashtbl.length t.groups) in
        Hashtbl.iter
          (fun _ con ->
            Hashtbl.replace per_key con.c_key
              (1 + Option.value ~default:0 (Hashtbl.find_opt per_key con.c_key)))
          t.contribs;
        Hashtbl.iter
          (fun key g ->
            let expect = Option.value ~default:0 (Hashtbl.find_opt per_key key) in
            if g.g_rows <> expect then
              bad "view %s: group row count %d disagrees with %d contributions" t.vname
                g.g_rows expect)
          t.groups;
        Hashtbl.iter
          (fun key n ->
            if not (Hashtbl.mem t.groups key) && n > 0 then
              bad "view %s: %d contributions for a missing group" t.vname n)
          per_key;
        (* 3. Bit-identical multiset parity with a from-scratch evaluation. *)
        let maintained = sort_rows (fst (rows_of_groups_locked t)) in
        let scratch = sort_rows (scratch_rows_locked t) in
        if maintained <> scratch then
          bad "view %s: maintained result (%d groups) differs from a from-scratch \
               evaluation (%d groups)"
            t.vname (List.length maintained) (List.length scratch);
        List.rev !violations)
