(** Incremental materialized aggregate views.

    A view reifies one aggregate plan — group-by keys and
    [Count]/[Sum]/[Min]/[Max]/[Avg] aggregates over an optional filter —
    against a collection, and keeps the result up to date from mutation
    deltas instead of re-aggregating the scan on every read: an added row
    applies a +delta to its group, a removed row a −delta, an in-place
    store a remove+add pair. Maintenance rides the same hook registry as
    indexes ({!Smc.Collection.attach_view}), so every mutation path that
    keeps indexes current — bare ops, transactional commit, WAL replay
    ({!val:Smc_persist.Snapshot.replay_wal}) — keeps views current too, at
    the same exactly-once firing points.

    {b Delta algebra.} [Count], [Sum] and [Avg] over [Int]/[Dec] inputs
    are exactly invertible: sums are maintained as a split
    integer/fixed-point-decimal pair so the emitted value carries the same
    type tag as a from-scratch fold, and decimal arithmetic
    ({!Smc_decimal.Decimal}) is exact integer arithmetic underneath.
    [Min]/[Max] are not invertible — removing the current extremum leaves
    the runner-up unknown — so the affected {e group} is marked dirty and
    re-derived by one bounded re-scan at the next read (an extremum
    multiplicity count makes removals of duplicated extrema O(1)).

    {b Invalidation, loudly.} Inputs outside the invertible algebra — a
    [Null] aggregate input, a non-numeric [Sum]/[Avg] input — invalidate
    the whole view: maintenance stops, the invalidation counter ticks, and
    every read re-derives the result from scratch (attempting to
    re-validate first), preserving bit-identical parity with the engines
    including any type errors they would raise. The view never raises out
    of a mutation hook.

    {b Consistency.} Deltas apply atomically with the mutation that fired
    them: transactional ops apply under the commit's lock before the
    commit returns, so a read never observes a half-applied transaction's
    groups. {!frontier} reports the commit sequence number the maintained
    state reflects. Reads are serialised against maintenance by the view's
    internal lock; lock order is collection transaction lock → view lock,
    never the reverse. *)

type t

val attach :
  name:string ->
  Smc.Collection.t ->
  columns:(string * Smc_query.Source.column) list ->
  keys:(string * Smc_query.Expr.t) list ->
  aggs:(string * Smc_query.Source.view_agg) list ->
  ?where:Smc_query.Expr.t ->
  unit ->
  t
(** Registers the view's maintenance hooks and runs the initial build (one
    scan). [columns] is the same typed spec the advertising
    {!Smc_query.Source.of_smc} uses — extraction agrees by construction.
    Attachment is a quiescent-point operation (no concurrent mutations),
    like index attachment. Raises [Invalid_argument] on a duplicate hook
    name, a direct-mode collection, or an expression naming a column
    outside [columns]. If existing rows are outside the invertible algebra
    the view attaches {e invalid} (reads fall back; see module doc). *)

val detach : t -> unit
(** Unregisters the hooks (quiescent-point operation). *)

val name : t -> string
val collection : t -> Smc.Collection.t

val info : t -> Smc_query.Source.matview_info
(** The access-path descriptor to pass to {!Smc_query.Source.of_smc}'s
    [?matviews] so {!Smc_query.Planner.choose_access_paths} rewrites a
    structurally matching [GroupBy] to a [ViewRead] over this view. *)

val read : t -> (Smc_query.Value.t array -> unit) -> unit
(** Pushes the maintained result rows (key columns then aggregate columns,
    group order unspecified) — bit-identical to evaluating the reified
    plan from scratch. O(groups) when clean; dirty [Min]/[Max] groups cost
    one bounded re-scan; an invalid view re-derives everything. *)

val frontier : t -> int
(** The commit sequence number the maintained state reflects. *)

type stats = {
  st_groups : int;
  st_contributions : int;  (** rows currently contributing (passing the filter) *)
  st_dirty_groups : int;  (** groups awaiting a [Min]/[Max] re-scan *)
  st_invalid : string option;  (** why the view is invalid, if it is *)
  st_frontier : int;
}

val stats : t -> stats

val audit : t -> string list
(** Quiescent-point cross-check, one message per violation: every live row
    passing the filter has exactly the contribution the hooks recorded
    (catching missed or double-fired mutation paths), group row counts
    agree with the contribution table, and the maintained result equals a
    from-scratch evaluation of the reified plan as a multiset. An invalid
    view audits vacuously clean — reads already re-derive. *)
