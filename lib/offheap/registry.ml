(* A retired or unknown id resolves to the shared sentinel block, letting the
   hot path use an unchecked array load with no option boxing. *)

let sentinel_layout = Layout.create ~name:"__retired__" [ ("pad", Layout.Int) ]

type t = {
  sentinel : Block.t;
  mutable blocks : Block.t array; (* grow-only snapshots *)
  next : int Atomic.t;
  lock : Mutex.t;
}

(* The sentinel spans the whole addressable slot range so resolving any
   stale packed pointer stays in bounds; its slot incarnations carry the
   forward flag with a null back-pointer, so every resolution attempt
   cleanly reads as "object gone". *)
let make_sentinel () =
  let b =
    Block.create ~id:0 ~layout:sentinel_layout ~placement:Block.Row
      ~nslots:Constants.max_direct_slots
  in
  b.Block.dead <- true;
  Bigarray.Array1.fill b.Block.slot_inc Constants.forward_bit;
  b

let create () =
  let sentinel = make_sentinel () in
  {
    sentinel;
    blocks = Array.make 1024 sentinel;
    next = Atomic.make 0;
    lock = Mutex.create ();
  }

let ensure t id =
  if id >= Array.length t.blocks then begin
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        if id >= Array.length t.blocks then begin
          let next = Array.make (max (2 * Array.length t.blocks) (id + 1)) t.sentinel in
          Array.blit t.blocks 0 next 0 (Array.length t.blocks);
          t.blocks <- next
        end)
  end

let register t build =
  let id = Atomic.fetch_and_add t.next 1 in
  ensure t id;
  let block = build ~id in
  (* Publication: the array cell write is the linearisation point; readers
     resolve ids only from references created after this store. *)
  t.blocks.(id) <- block;
  block

let get_fast t id = Array.unsafe_get t.blocks id

let get t id =
  if id < 0 || id >= Array.length t.blocks then
    invalid_arg (Printf.sprintf "Registry.get: unknown block %d" id);
  let b = t.blocks.(id) in
  if b == t.sentinel then
    invalid_arg (Printf.sprintf "Registry.get: unknown block %d" id);
  b

let retire t id = if id < Array.length t.blocks then t.blocks.(id) <- t.sentinel

let count t = Atomic.get t.next

(* Audit accessor: every registered, non-retired block (dead tombstones
   included — callers filter on [Block.dead] when they only want live
   ones). *)
let iter_registered t ~f =
  let n = min (Atomic.get t.next) (Array.length t.blocks) in
  for id = 0 to n - 1 do
    let b = t.blocks.(id) in
    if b != t.sentinel then f b
  done
