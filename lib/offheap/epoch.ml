type slot = {
  epoch : int Atomic.t;
  in_critical : bool Atomic.t;
  mutable depth : int; (* nesting depth, domain-local *)
}

type t = {
  global_epoch : int Atomic.t;
  slots : slot array;
  next_thread : int Atomic.t; (* high-water mark of slots ever claimed *)
  reg_lock : Mutex.t; (* protects [free_slots] and pending drains *)
  mutable free_slots : int list; (* released slot ids available for reuse *)
  pending_release : int list Atomic.t;
      (* Slot ids whose owning domain died without calling [release_thread],
         pushed from GC finalisers. Finalisers can run while the mutator
         holds arbitrary locks, so this is a lock-free stack drained under
         [reg_lock] on the next registration. *)
  live_count : int Atomic.t;
  key : int option ref Domain.DLS.key;
  obs : Smc_obs.t option;
  mutable advance_gate : (unit -> bool) option;
      (* Fault-injection hook: when set, [try_advance] consults the gate and
         fails the advance whenever it returns false. Lets the stress harness
         starve epoch progress to exercise abort/limbo paths. *)
}

(* Weak registry of live epoch instances so [release_current_domain] (called
   from pool-worker teardown, which knows nothing about runtimes) can hand
   back whatever slots this domain claimed anywhere in the process. *)
let instances_lock = Mutex.create ()
let instances : t Weak.t list ref = ref []

let oincr obs c = match obs with Some o -> Smc_obs.incr o c | None -> ()

let create ?(max_threads = 128) ?obs () =
  let t =
    {
      global_epoch = Atomic.make 0;
      slots =
        Array.init max_threads (fun _ ->
            { epoch = Atomic.make 0; in_critical = Atomic.make false; depth = 0 });
      next_thread = Atomic.make 0;
      reg_lock = Mutex.create ();
      free_slots = [];
      pending_release = Atomic.make [];
      live_count = Atomic.make 0;
      key = Domain.DLS.new_key (fun () -> ref None);
      obs;
      advance_gate = None;
    }
  in
  let w = Weak.create 1 in
  Weak.set w 0 (Some t);
  Mutex.lock instances_lock;
  instances := w :: List.filter (fun w -> Weak.check w 0) !instances;
  Mutex.unlock instances_lock;
  t

let global t = Atomic.get t.global_epoch

let push_pending t id =
  let rec go () =
    let old = Atomic.get t.pending_release in
    if not (Atomic.compare_and_set t.pending_release old (id :: old)) then go ()
  in
  go ()

(* Caller holds [reg_lock]. A finaliser-released slot may belong to a domain
   that died mid-critical-section; force the slot quiescent so it cannot
   stall epoch advancement forever. *)
let drain_pending_locked t =
  match Atomic.exchange t.pending_release [] with
  | [] -> ()
  | ids ->
    List.iter
      (fun id ->
        let s = t.slots.(id) in
        s.depth <- 0;
        Atomic.set s.in_critical false;
        t.free_slots <- id :: t.free_slots;
        Atomic.decr t.live_count;
        oincr t.obs Smc_obs.c_thread_releases)
      ids

let thread_id t =
  let cell = Domain.DLS.get t.key in
  match !cell with
  | Some id -> id
  | None ->
    Mutex.lock t.reg_lock;
    drain_pending_locked t;
    let id =
      match t.free_slots with
      | id :: rest ->
        t.free_slots <- rest;
        id
      | [] ->
        let id = Atomic.fetch_and_add t.next_thread 1 in
        if id >= Array.length t.slots then begin
          Mutex.unlock t.reg_lock;
          failwith "Epoch: too many threads"
        end;
        id
    in
    let s = t.slots.(id) in
    s.depth <- 0;
    Atomic.set s.in_critical false;
    Atomic.set s.epoch (Atomic.get t.global_epoch);
    Atomic.incr t.live_count;
    Mutex.unlock t.reg_lock;
    cell := Some id;
    (* Best-effort safety net: if this domain dies without calling
       [release_thread], the cell's finaliser returns the slot. It runs on
       an arbitrary domain inside GC, so it only pushes to the lock-free
       pending stack. *)
    Gc.finalise
      (fun cell -> match !cell with Some id -> push_pending t id | None -> ())
      cell;
    oincr t.obs Smc_obs.c_thread_registers;
    id

let release_thread t =
  let cell = Domain.DLS.get t.key in
  match !cell with
  | None -> ()
  | Some id ->
    let s = t.slots.(id) in
    if s.depth > 0 then
      invalid_arg "Epoch.release_thread: inside a critical section";
    cell := None;
    Mutex.lock t.reg_lock;
    Atomic.set s.in_critical false;
    t.free_slots <- id :: t.free_slots;
    Atomic.decr t.live_count;
    oincr t.obs Smc_obs.c_thread_releases;
    Mutex.unlock t.reg_lock

let release_current_domain () =
  Mutex.lock instances_lock;
  let ws = !instances in
  Mutex.unlock instances_lock;
  List.iter
    (fun w ->
      match Weak.get w 0 with
      | Some t -> release_thread t
      | None -> ())
    ws

let live_threads t =
  Mutex.lock t.reg_lock;
  drain_pending_locked t;
  let n = Atomic.get t.live_count in
  Mutex.unlock t.reg_lock;
  n

let my_slot t = t.slots.(thread_id t)

(* Atomic.set/get carry the fences the paper's enter/exit pseudocode inserts
   explicitly around the session-context updates. *)
let enter_critical t =
  let s = my_slot t in
  if s.depth = 0 then begin
    Atomic.set s.epoch (Atomic.get t.global_epoch);
    Atomic.set s.in_critical true;
    oincr t.obs Smc_obs.c_crit_enters
  end;
  s.depth <- s.depth + 1

let exit_critical t =
  let s = my_slot t in
  if s.depth <= 0 then invalid_arg "Epoch.exit_critical: not in a critical section";
  s.depth <- s.depth - 1;
  if s.depth = 0 then Atomic.set s.in_critical false

let in_critical t = (my_slot t).depth > 0

let local_epoch t = Atomic.get (my_slot t).epoch

let refresh_local t =
  let s = my_slot t in
  Atomic.set s.epoch (Atomic.get t.global_epoch)

let all_reached t epoch =
  let n = min (Atomic.get t.next_thread) (Array.length t.slots) in
  let ok = ref true in
  for i = 0 to n - 1 do
    let s = t.slots.(i) in
    if Atomic.get s.in_critical && Atomic.get s.epoch < epoch then ok := false
  done;
  !ok

let try_advance t =
  let gated = match t.advance_gate with None -> true | Some g -> g () in
  let advanced =
    gated
    &&
    let e = Atomic.get t.global_epoch in
    all_reached t e && Atomic.compare_and_set t.global_epoch e (e + 1)
  in
  oincr t.obs (if advanced then Smc_obs.c_epoch_adv_ok else Smc_obs.c_epoch_adv_fail);
  advanced

let registered_threads t = min (Atomic.get t.next_thread) (Array.length t.slots)

let set_advance_gate t gate = t.advance_gate <- gate

let slot_snapshot t i =
  let s = t.slots.(i) in
  (Atomic.get s.epoch, Atomic.get s.in_critical)

let advance_until t ~target ~max_spins =
  let rec go spins =
    if Atomic.get t.global_epoch >= target then true
    else if spins >= max_spins then false
    else begin
      ignore (try_advance t : bool);
      Domain.cpu_relax ();
      go (spins + 1)
    end
  in
  go 0

let can_reclaim t ~stamp = Atomic.get t.global_epoch >= stamp + 2

let all_reached_except t epoch except =
  let n = min (Atomic.get t.next_thread) (Array.length t.slots) in
  let ok = ref true in
  for i = 0 to n - 1 do
    if i <> except then begin
      let s = t.slots.(i) in
      if Atomic.get s.in_critical && Atomic.get s.epoch < epoch then ok := false
    end
  done;
  !ok

let wait_all_reached t ?(except = -1) ~epoch ~max_spins () =
  let rec go spins =
    if all_reached_except t epoch except then true
    else if spins >= max_spins then false
    else begin
      Domain.cpu_relax ();
      go (spins + 1)
    end
  in
  go 0
