type slot = {
  epoch : int Atomic.t;
  in_critical : bool Atomic.t;
  mutable depth : int; (* nesting depth, domain-local *)
}

type t = {
  global_epoch : int Atomic.t;
  slots : slot array;
  next_thread : int Atomic.t;
  key : int option ref Domain.DLS.key;
  mutable advance_gate : (unit -> bool) option;
      (* Fault-injection hook: when set, [try_advance] consults the gate and
         fails the advance whenever it returns false. Lets the stress harness
         starve epoch progress to exercise abort/limbo paths. *)
}

let create ?(max_threads = 128) () =
  {
    global_epoch = Atomic.make 0;
    slots =
      Array.init max_threads (fun _ ->
          { epoch = Atomic.make 0; in_critical = Atomic.make false; depth = 0 });
    next_thread = Atomic.make 0;
    key = Domain.DLS.new_key (fun () -> ref None);
    advance_gate = None;
  }

let global t = Atomic.get t.global_epoch

let thread_id t =
  let cell = Domain.DLS.get t.key in
  match !cell with
  | Some id -> id
  | None ->
    let id = Atomic.fetch_and_add t.next_thread 1 in
    if id >= Array.length t.slots then failwith "Epoch: too many threads";
    cell := Some id;
    id

let my_slot t = t.slots.(thread_id t)

(* Atomic.set/get carry the fences the paper's enter/exit pseudocode inserts
   explicitly around the session-context updates. *)
let enter_critical t =
  let s = my_slot t in
  if s.depth = 0 then begin
    Atomic.set s.epoch (Atomic.get t.global_epoch);
    Atomic.set s.in_critical true
  end;
  s.depth <- s.depth + 1

let exit_critical t =
  let s = my_slot t in
  if s.depth <= 0 then invalid_arg "Epoch.exit_critical: not in a critical section";
  s.depth <- s.depth - 1;
  if s.depth = 0 then Atomic.set s.in_critical false

let in_critical t = (my_slot t).depth > 0

let local_epoch t = Atomic.get (my_slot t).epoch

let refresh_local t =
  let s = my_slot t in
  Atomic.set s.epoch (Atomic.get t.global_epoch)

let all_reached t epoch =
  let n = min (Atomic.get t.next_thread) (Array.length t.slots) in
  let ok = ref true in
  for i = 0 to n - 1 do
    let s = t.slots.(i) in
    if Atomic.get s.in_critical && Atomic.get s.epoch < epoch then ok := false
  done;
  !ok

let try_advance t =
  let gated = match t.advance_gate with None -> true | Some g -> g () in
  gated
  &&
  let e = Atomic.get t.global_epoch in
  all_reached t e && Atomic.compare_and_set t.global_epoch e (e + 1)

let registered_threads t = min (Atomic.get t.next_thread) (Array.length t.slots)

let set_advance_gate t gate = t.advance_gate <- gate

let slot_snapshot t i =
  let s = t.slots.(i) in
  (Atomic.get s.epoch, Atomic.get s.in_critical)

let advance_until t ~target ~max_spins =
  let rec go spins =
    if Atomic.get t.global_epoch >= target then true
    else if spins >= max_spins then false
    else begin
      ignore (try_advance t : bool);
      Domain.cpu_relax ();
      go (spins + 1)
    end
  in
  go 0

let can_reclaim t ~stamp = Atomic.get t.global_epoch >= stamp + 2

let all_reached_except t epoch except =
  let n = min (Atomic.get t.next_thread) (Array.length t.slots) in
  let ok = ref true in
  for i = 0 to n - 1 do
    if i <> except then begin
      let s = t.slots.(i) in
      if Atomic.get s.in_critical && Atomic.get s.epoch < epoch then ok := false
    end
  done;
  !ok

let wait_all_reached t ?(except = -1) ~epoch ~max_spins () =
  let rec go spins =
    if all_reached_except t epoch except then true
    else if spins >= max_spins then false
    else begin
      Domain.cpu_relax ();
      go (spins + 1)
    end
  in
  go 0
