(** Epoch-based memory reclamation (§3.4 of the paper).

    The system maintains a global epoch (a continuous counter, unlike
    Fraser's modulo-3 scheme — as the paper specifies) and a per-thread slot
    holding the thread-local epoch and an in-critical flag. Threads access
    off-heap objects only inside critical sections (grace periods); memory
    freed in epoch [e] may be reclaimed once the global epoch reaches
    [e + 2], because by then no thread can still be running a critical
    section that started in epoch [e].

    Epoch advancement is lazy: it is attempted from the allocator when
    reclaimable blocks are waiting (§3.5), never on critical-section exit.

    Critical sections nest; only the outermost enter/exit touch the shared
    slot, which is how queries amortise fence costs over whole block scans
    (§4). Threads are OCaml domains; each domain auto-registers a slot on
    first use via domain-local state. *)

type t

val create : ?max_threads:int -> ?obs:Smc_obs.t -> unit -> t
(** [max_threads] bounds concurrently registered domains (default 128).
    When [obs] is given, registrations, releases, critical-section entries
    and advance attempts are counted on it. *)

val global : t -> int
(** Current global epoch. *)

val thread_id : t -> int
(** Registers the calling domain if needed and returns its slot index.
    Released slot ids are recycled, so the [max_threads] bound applies to
    domains registered {e concurrently}, not over the instance's lifetime. *)

val release_thread : t -> unit
(** Returns the calling domain's slot to the free list; no-op when the
    domain never registered. Raises [Invalid_argument] inside a critical
    section. Domains that die without releasing are reclaimed best-effort
    by a GC finaliser on their registration cell. *)

val release_current_domain : unit -> unit
(** Calls {!release_thread} on every live epoch instance in the process.
    Domain-pool workers call this on teardown so pool create/shutdown
    cycles do not leak thread slots. *)

val live_threads : t -> int
(** Number of currently registered (not yet released) domains. *)

val enter_critical : t -> unit
val exit_critical : t -> unit

val in_critical : t -> bool
(** Whether the calling domain currently holds a critical section. *)

val local_epoch : t -> int
(** The calling domain's thread-local epoch (last observed global epoch). *)

val refresh_local : t -> unit
(** Re-reads the global epoch into the local slot without leaving the
    critical section. Used by the compaction thread to cross epochs while
    keeping other threads from advancing past it. *)

val try_advance : t -> bool
(** Attempts to increment the global epoch; succeeds iff every in-critical
    thread has observed the current global epoch. *)

val advance_until : t -> target:int -> max_spins:int -> bool
(** Repeatedly tries to advance until [global >= target]; gives up after
    [max_spins] failed rounds. Used in tests and the compaction driver. *)

val can_reclaim : t -> stamp:int -> bool
(** Whether memory freed at epoch [stamp] is safe to reuse
    ([global >= stamp + 2]). *)

val wait_all_reached : t -> ?except:int -> epoch:int -> max_spins:int -> unit -> bool
(** Spins until every in-critical thread's local epoch is at least [epoch];
    [false] on timeout. Compaction uses this at phase boundaries (§5.1),
    passing its own thread slot as [except] — the compaction thread
    deliberately trails one epoch behind to keep control of advancement. *)

val registered_threads : t -> int
(** Number of thread slots claimed so far (audit accessor). *)

val slot_snapshot : t -> int -> int * bool
(** Audit accessor: (local epoch, in-critical flag) of thread slot [i]. *)

val set_advance_gate : t -> (unit -> bool) option -> unit
(** Fault-injection hook: while a gate is installed, {!try_advance} fails
    whenever the gate returns [false]. [None] removes the gate. Used by the
    chaos harness to starve epoch progress; never set in production. *)
