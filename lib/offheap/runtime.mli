(** The shared runtime state of one memory manager instance: the epoch
    manager, the indirection table, the block registry, the striped locks
    serialising incarnation-word read-modify-writes, and the global
    compaction-phase flags of §5.1 ([nextRelocationEpoch], [inMovingPhase]).

    One [Runtime.t] corresponds to the paper's per-process runtime extension;
    every memory context and collection hangs off one. *)

type compaction_phase =
  | Phase_selected  (** candidates reserved, groups about to form *)
  | Phase_frozen  (** all group members carry the frozen bit *)
  | Phase_waiting  (** stepping the global epoch towards relocation *)
  | Phase_moving  (** relocation sweep in progress *)
  | Phase_completed  (** groups done, sources dead, before pointer fixup *)
      (** Compaction-pass boundaries at which the chaos harness may inject
          work (frees, epoch churn, queries) to exercise bail-out paths. *)

type txn_phase =
  | Txn_staged  (** operations staged privately, before validation *)
  | Txn_validated  (** write-write validation passed, before apply *)
  | Txn_applied  (** mutations published, before the WAL batch append *)
  | Txn_logged  (** WAL commit record appended (per group-commit policy) *)
      (** Transaction-commit boundaries at which the chaos harness may
          snapshot WAL images (crash injection) or inject concurrent work. *)

type t = {
  epoch : Epoch.t;
  ind : Indirection.t;
  registry : Registry.t;
  locks : Smc_util.Striped_lock.t;
  next_relocation_epoch : int Atomic.t;  (** -1 when no compaction pending *)
  in_moving_phase : bool Atomic.t;
  active_views : int Atomic.t;
      (** open snapshot views; non-zero vetoes the compactor's moving phase
          (limbo rows a view still reads must not be destroyed). The view
          increments then spins while [in_moving_phase]; the compactor sets
          [in_moving_phase] then checks this — the store-load pairing means
          one side always observes the other. *)
  next_context_id : int Atomic.t;
  mutable inc_quarantine_limit : int;
      (** incarnation value beyond which a slot is quarantined instead of
          reused (§3.1's overflow rule); defaults to the reference-visible
          incarnation width, lowered in tests to exercise the path *)
  quarantined_slots : int Atomic.t;
  obs : Smc_obs.t;
      (** per-domain event counters for this runtime instance; every layer
          below (epoch, indirection, context, compaction) reports here *)
  mutable on_alloc : (unit -> unit) option;
      (** fault-injection hook, fired at the start of every allocation
          attempt (including retries); [None] in production *)
  mutable on_compaction_phase : (compaction_phase -> unit) option;
      (** fault-injection hook, fired by [Compaction.run] at phase
          boundaries; [None] in production *)
  mutable on_queue_check : (Block.t -> unit) option;
      (** fault-injection hook, fired by [Context.maybe_queue] between its
          unlocked pre-check and taking the context lock; [None] in
          production *)
  mutable on_txn_phase : (txn_phase -> unit) option;
      (** fault-injection hook, fired by [Collection.transact] at commit
          boundaries; [None] in production *)
}

val create : ?max_threads:int -> unit -> t

val fire_alloc_hook : t -> unit
val fire_compaction_hook : t -> compaction_phase -> unit
val fire_queue_hook : t -> Block.t -> unit
val fire_txn_hook : t -> txn_phase -> unit

val tid : t -> int
(** The calling domain's thread slot (registers on first use). *)

val with_entry_lock : t -> int -> (unit -> 'a) -> 'a
(** Serialises read-modify-write on indirection entry [entry]. *)

val with_slot_lock : t -> block:int -> slot:int -> (unit -> 'a) -> 'a
(** Serialises read-modify-write on a block slot's incarnation word. *)
