open Constants

type report = {
  candidates : int;
  groups_formed : int;
  objects_moved : int;
  groups_skipped : int;
  blocks_retired : int;
  fixed_pointers : int;
  aborted : bool;
}

let empty_report =
  {
    candidates = 0;
    groups_formed = 0;
    objects_moved = 0;
    groups_skipped = 0;
    blocks_retired = 0;
    fixed_pointers = 0;
    aborted = false;
  }

(* A selected candidate is reserved by setting this pseudo owner, closing
   the window in which a concurrent removal could re-queue it (and an
   allocator then start writing into it) before its compaction group
   exists. The reservation is dropped when a group is skipped or the pass
   aborts; completed sources die anyway. *)
let compactor_owner = max_int

(* Blocks eligible for compaction: live, not feeding an allocator, not
   already grouped, and under-occupied. Blocks sitting in the reclamation
   queue are pulled out of it — on heavy shrinkage there may be no
   allocations coming to recycle them, which is exactly when compaction
   must shrink the footprint instead. *)
let select_candidates (ctx : Context.t) threshold =
  let result = ref [] in
  Mutex.lock ctx.lock;
  let { Context.v_blocks; v_n } = ctx.Context.view in
  for i = v_n - 1 downto 0 do
    let blk = v_blocks.(i) in
    if
      (not blk.Block.dead) && blk.Block.owner_tid < 0 && blk.Block.group = None
      && Block.occupancy blk <= threshold
    then begin
      if blk.Block.queued then begin
        blk.Block.queued <- false;
        Context.rq_remove_locked ctx blk;
        Smc_obs.incr ctx.Context.rt.Runtime.obs Smc_obs.c_rq_unqueues
      end;
      blk.Block.owner_tid <- compactor_owner;
      result := blk :: !result
    end
  done;
  Mutex.unlock ctx.lock;
  !result

(* Partition candidates into groups whose total live objects fit one target
   block, build per-block relocation lists, and publish the group. *)
let form_groups (ctx : Context.t) candidates group_size =
  let groups = ref [] in
  let rec take n acc = function
    | [] -> (List.rev acc, [])
    | rest when n = 0 -> (List.rev acc, rest)
    | b :: rest -> take (n - 1) (b :: acc) rest
  in
  let rec go = function
    | [] -> ()
    | remaining ->
      let members, rest = take group_size [] remaining in
      let sources = Array.of_list members in
      let target = Context.new_block_unpublished ctx in
      let next_slot = ref 0 in
      let overflow = ref false in
      Array.iter
        (fun (src : Block.t) ->
          let relocs = ref [] in
          let nrelocs = ref 0 in
          let by_slot = Array.make src.Block.nslots (-1) in
          for slot = 0 to src.Block.nslots - 1 do
            if (not !overflow) && Block.slot_state src slot = state_valid then begin
              if !next_slot >= target.Block.nslots then overflow := true
              else begin
                let r =
                  { Block.from_slot = slot; target; to_slot = !next_slot; status = Block.Pending }
                in
                by_slot.(slot) <- !nrelocs;
                relocs := r :: !relocs;
                incr nrelocs;
                incr next_slot
              end
            end
          done;
          src.Block.reloc <-
            Some { Block.relocs = Array.of_list (List.rev !relocs); by_slot })
        sources;
      (* A group whose live set no longer fits (objects were added? they
         cannot be — sources have no allocator; but races with our own
         estimate are possible) is dropped wholesale. *)
      if !overflow then begin
        Array.iter
          (fun (src : Block.t) ->
            src.Block.reloc <- None;
            src.Block.owner_tid <- -1)
          sources;
        target.Block.dead <- true;
        Registry.retire ctx.rt.Runtime.registry target.Block.id
      end
      else begin
        let g =
          {
            Block.sources;
            g_target = target;
            g_state = Atomic.make Block.group_pending;
            g_queries = Atomic.make 0;
          }
        in
        target.Block.group <- Some g;
        Array.iter (fun (src : Block.t) -> src.Block.group <- Some g) sources;
        Context.publish_block ctx target;
        groups := g :: !groups
      end;
      go rest
  in
  go candidates;
  List.rev !groups

let freeze_group (ctx : Context.t) (g : Block.group) =
  let rt = ctx.rt in
  let ind = rt.Runtime.ind in
  Array.iter
    (fun (src : Block.t) ->
      match src.Block.reloc with
      | None -> ()
      | Some rl ->
        Array.iter
          (fun (r : Block.relocation) ->
            let entry = Bigarray.Array1.unsafe_get src.Block.backptr r.Block.from_slot in
            if entry >= 0 then
              Runtime.with_entry_lock rt entry (fun () ->
                  if Block.slot_state src r.Block.from_slot = state_valid then begin
                    let w = Indirection.inc_word ind entry in
                    Indirection.set_inc_word ind entry (w lor frozen_bit);
                    (match ctx.mode with
                    | Context.Indirect -> ()
                    | Context.Direct ->
                      let sw =
                        Bigarray.Array1.unsafe_get src.Block.slot_inc r.Block.from_slot
                      in
                      Bigarray.Array1.unsafe_set src.Block.slot_inc r.Block.from_slot
                        (sw lor frozen_bit))
                  end
                  else r.Block.status <- Block.Failed)
            else r.Block.status <- Block.Failed)
          rl.Block.relocs)
    g.Block.sources

let unfreeze_group (ctx : Context.t) (g : Block.group) =
  let rt = ctx.rt in
  let ind = rt.Runtime.ind in
  Array.iter
    (fun (src : Block.t) ->
      (match src.Block.reloc with
      | None -> ()
      | Some rl ->
        Array.iter
          (fun (r : Block.relocation) ->
            if r.Block.status = Block.Pending || r.Block.status = Block.Failed then begin
              let entry = Bigarray.Array1.unsafe_get src.Block.backptr r.Block.from_slot in
              if entry >= 0 then
                Runtime.with_entry_lock rt entry (fun () ->
                    let w = Indirection.inc_word ind entry in
                    Indirection.set_inc_word ind entry (w land lnot frozen_bit);
                    match ctx.mode with
                    | Context.Indirect -> ()
                    | Context.Direct ->
                      let sw =
                        Bigarray.Array1.unsafe_get src.Block.slot_inc r.Block.from_slot
                      in
                      Bigarray.Array1.unsafe_set src.Block.slot_inc r.Block.from_slot
                        (sw land lnot frozen_bit))
            end)
          rl.Block.relocs);
      src.Block.reloc <- None;
      src.Block.group <- None;
      src.Block.owner_tid <- -1)
    g.Block.sources;
  g.Block.g_target.Block.group <- None

(* Abandon a group that never reached its moving state: no object has been
   moved (helpers only move in the moving state), so reverting is pure
   bookkeeping plus retiring the empty target. *)
let skip_group (ctx : Context.t) (g : Block.group) =
  Atomic.set g.Block.g_state (Block.group_done + 1) (* aborted: sources stay live *);
  unfreeze_group ctx g;
  g.Block.g_target.Block.dead <- true;
  Registry.retire ctx.rt.Runtime.registry g.Block.g_target.Block.id

let sweep_group (ctx : Context.t) (g : Block.group) =
  let rt = ctx.rt in
  let ind = rt.Runtime.ind in
  let moved = ref 0 in
  Array.iter
    (fun (src : Block.t) ->
      match src.Block.reloc with
      | None -> ()
      | Some rl ->
        Array.iter
          (fun (r : Block.relocation) ->
            let entry = Bigarray.Array1.unsafe_get src.Block.backptr r.Block.from_slot in
            if entry >= 0 then
              Runtime.with_entry_lock rt entry (fun () ->
                  match r.Block.status with
                  | Block.Moved -> incr moved
                  | Block.Pending | Block.Failed ->
                    if Block.slot_state src r.Block.from_slot = state_valid then begin
                      (* Re-freeze bailed-out objects and move them now; we
                         hold the entry lock, so no reader interleaves a
                         read-modify-write. *)
                      let w = Indirection.inc_word ind entry in
                      Indirection.set_inc_word ind entry (w lor frozen_bit);
                      r.Block.status <- Block.Pending;
                      Context.perform_relocation ctx entry r src;
                      incr moved
                    end
                    else r.Block.status <- Block.Failed))
          rl.Block.relocs)
    g.Block.sources;
  !moved

(* After the group is done: recycle the indirection entries of residual
   limbo slots and mark the emptied sources dead. In direct mode the source
   blocks stay registered as tombstones until pointer fixup completes. *)
let complete_group (ctx : Context.t) (g : Block.group) ~tid =
  let ind = ctx.rt.Runtime.ind in
  Array.iter
    (fun (src : Block.t) ->
      for slot = 0 to src.Block.nslots - 1 do
        if Block.slot_state src slot = state_limbo then begin
          let entry = Bigarray.Array1.unsafe_get src.Block.backptr slot in
          if entry >= 0 then begin
            Indirection.free ind ~tid entry;
            Bigarray.Array1.unsafe_set src.Block.backptr slot Constants.null_ref
          end;
          (* The slot dies with its source instead of being recycled by the
             allocation scan; counted so the limbo balance invariant
             (retires − quarantines − recycles − drops = Σ limbo) holds. *)
          Smc_obs.incr ctx.rt.Runtime.obs Smc_obs.c_limbo_drops
        end
      done;
      src.Block.dead <- true)
    g.Block.sources;
  Atomic.set g.Block.g_state Block.group_done;
  g.Block.g_target.Block.group <- None

(* §6: rewrite stored direct pointers into the compacted blocks. The hash
   table of compacted block ids lets the scan skip the dereference for
   pointers into untouched blocks. *)
let fixup_direct_pointers (ctx : Context.t) compacted =
  let fixed = ref 0 in
  List.iter
    (fun ((referrer : Context.t), (field : Layout.field)) ->
      Epoch.enter_critical referrer.Context.rt.Runtime.epoch;
      Fun.protect
        ~finally:(fun () -> Epoch.exit_critical referrer.Context.rt.Runtime.epoch)
        (fun () ->
          Context.iter_valid referrer ~f:(fun blk slot ->
              let w = Block.get_word blk ~slot ~word:field.Layout.word in
              if w >= 0 && Hashtbl.mem compacted (direct_block w) then begin
                let fresh =
                  match Context.resolve_direct ctx w with
                  | None -> Constants.null_ref
                  | Some (tb, ts) ->
                    let inc =
                      Bigarray.Array1.unsafe_get tb.Block.slot_inc ts land direct_inc_mask
                    in
                    pack_direct ~block:tb.Block.id ~slot:ts ~inc
                in
                Block.set_word blk ~slot ~word:field.Layout.word fresh;
                incr fixed
              end)))
    ctx.direct_referrers;
  !fixed

(* Drop dead blocks from the context's enumeration view. A fresh array is
   built and published atomically: concurrent enumerators keep their old
   snapshot (where dead blocks are skipped via the group protocol). *)
let prune_dead (ctx : Context.t) =
  Mutex.lock ctx.lock;
  let { Context.v_blocks; v_n } = ctx.Context.view in
  let live = ref [] in
  for i = v_n - 1 downto 0 do
    let blk = v_blocks.(i) in
    if not blk.Block.dead then live := blk :: !live
  done;
  let fresh = Array.of_list !live in
  ctx.Context.view <- { Context.v_blocks = fresh; v_n = Array.length fresh };
  Mutex.unlock ctx.lock

let run_pass (ctx : Context.t) ?(occupancy_threshold = 0.3) ?(max_wait_spins = 50_000_000) () =
  let rt = ctx.rt in
  let em = rt.Runtime.epoch in
  if Epoch.in_critical em then
    invalid_arg "Compaction.run: must not run inside a critical section";
  let tid = Runtime.tid rt in
  if Atomic.get rt.Runtime.active_views > 0 then
    (* An open snapshot view still reads limbo rows the moving phase would
       destroy; don't even reserve candidates — the pass would abort at the
       epoch wait anyway (the view holds a critical section). *)
    { empty_report with aborted = true }
  else begin
  let candidates = select_candidates ctx occupancy_threshold in
  let n_candidates = List.length candidates in
  if n_candidates = 0 then { empty_report with candidates = 0 }
  else begin
    Runtime.fire_compaction_hook rt Runtime.Phase_selected;
    let group_size = max 1 (int_of_float (1.0 /. occupancy_threshold)) in
    let groups = form_groups ctx candidates group_size in
    if groups = [] then { empty_report with candidates = n_candidates }
    else begin
      Epoch.enter_critical em;
      Epoch.refresh_local em;
      let e0 = Epoch.local_epoch em in
      Atomic.set rt.Runtime.next_relocation_epoch (e0 + 2);
      List.iter (freeze_group ctx) groups;
      Runtime.fire_compaction_hook rt Runtime.Phase_frozen;
      let abort () =
        Atomic.set rt.Runtime.in_moving_phase false;
        Atomic.set rt.Runtime.next_relocation_epoch (-1);
        List.iter (skip_group ctx) groups;
        Epoch.exit_critical em;
        prune_dead ctx;
        {
          empty_report with
          candidates = n_candidates;
          groups_formed = List.length groups;
          groups_skipped = List.length groups;
          aborted = true;
        }
      in
      (* Step into the freezing epoch e0+1, then the relocation epoch e0+2,
         waiting for all in-critical threads at each boundary. Our own local
         epoch trails by one so no other thread can advance past us. *)
      Runtime.fire_compaction_hook rt Runtime.Phase_waiting;
      if
        not
          (Epoch.wait_all_reached em ~except:tid ~epoch:e0 ~max_spins:max_wait_spins ()
          && Epoch.advance_until em ~target:(e0 + 1) ~max_spins:max_wait_spins)
      then abort ()
      else begin
        Epoch.refresh_local em;
        if
          not
            (Epoch.wait_all_reached em ~except:tid ~epoch:(e0 + 1) ~max_spins:max_wait_spins ()
            && Epoch.advance_until em ~target:(e0 + 2) ~max_spins:max_wait_spins
            && Epoch.wait_all_reached em ~except:tid ~epoch:(e0 + 2) ~max_spins:max_wait_spins ())
        then abort ()
        else begin
          (* Moving phase. The store of [in_moving_phase] followed by the
             load of [active_views] pairs with the snapshot-view side (incr
             [active_views], then spin while [in_moving_phase]): whichever
             order the two races resolve in, either the view spins until
             this pass finishes or aborts, or we see its count and abort —
             limbo rows the view still reads are never destroyed. Views
             that predate the pass already failed the epoch waits above. *)
          Atomic.set rt.Runtime.in_moving_phase true;
          if Atomic.get rt.Runtime.active_views > 0 then abort ()
          else begin
          Runtime.fire_compaction_hook rt Runtime.Phase_moving;
          let moved = ref 0 and skipped = ref 0 and retired = ref 0 in
          let completed = ref [] in
          List.iter
            (fun g ->
              (* Drain the group's pre-relocation readers, then transition
                 it to its moving state. *)
              let rec drain spins =
                if Atomic.get g.Block.g_queries = 0 then
                  Atomic.compare_and_set g.Block.g_state Block.group_pending
                    Block.group_moving
                  || Atomic.get g.Block.g_state = Block.group_moving
                else if spins >= max_wait_spins then false
                else begin
                  Domain.cpu_relax ();
                  drain (spins + 1)
                end
              in
              if drain 0 then begin
                moved := !moved + sweep_group ctx g;
                complete_group ctx g ~tid;
                completed := g :: !completed
              end
              else begin
                skip_group ctx g;
                incr skipped
              end)
            groups;
          Atomic.set rt.Runtime.in_moving_phase false;
          Atomic.set rt.Runtime.next_relocation_epoch (-1);
          Epoch.refresh_local em;
          Epoch.exit_critical em;
          ignore (Epoch.try_advance em : bool);
          Runtime.fire_compaction_hook rt Runtime.Phase_completed;
          (* Pointer fixup and tombstone retirement (§6). *)
          let fixed =
            if ctx.direct_referrers = [] then 0
            else begin
              let compacted = Hashtbl.create 64 in
              List.iter
                (fun (g : Block.group) ->
                  Array.iter
                    (fun (src : Block.t) -> Hashtbl.replace compacted src.Block.id ())
                    g.Block.sources)
                !completed;
              fixup_direct_pointers ctx compacted
            end
          in
          (* §6: tombstoned slots are not reclaimed while direct pointers to
             them may exist. With all registered referrers fixed up (or in
             indirect mode, where no stored direct pointers exist) the source
             blocks can be retired; a direct-mode context with no registered
             referrers keeps its tombstone blocks resolvable. *)
          let can_retire =
            ctx.Context.mode = Context.Indirect || ctx.Context.direct_referrers <> []
          in
          List.iter
            (fun (g : Block.group) ->
              Array.iter
                (fun (src : Block.t) ->
                  src.Block.reloc <- None;
                  src.Block.group <- None;
                  if can_retire then begin
                    Registry.retire rt.Runtime.registry src.Block.id;
                    incr retired
                  end)
                g.Block.sources)
            !completed;
          prune_dead ctx;
          {
            candidates = n_candidates;
            groups_formed = List.length groups;
            objects_moved = !moved;
            groups_skipped = !skipped;
            blocks_retired = !retired;
            fixed_pointers = fixed;
            aborted = false;
          }
          end
        end
      end
    end
  end
  end

let run (ctx : Context.t) ?occupancy_threshold ?max_wait_spins () =
  let report = run_pass ctx ?occupancy_threshold ?max_wait_spins () in
  let obs = ctx.Context.rt.Runtime.obs in
  if report.groups_formed > 0 then Smc_obs.incr obs Smc_obs.c_compaction_passes;
  if report.aborted then Smc_obs.incr obs Smc_obs.c_compaction_aborts;
  Smc_obs.add obs Smc_obs.c_groups_formed report.groups_formed;
  Smc_obs.add obs Smc_obs.c_groups_skipped report.groups_skipped;
  Smc_obs.add obs Smc_obs.c_objects_moved report.objects_moved;
  Smc_obs.add obs Smc_obs.c_blocks_retired report.blocks_retired;
  report

let run_if_requested (ctx : Context.t) =
  if Atomic.compare_and_set ctx.Context.compaction_requested true false then
    Some (run ctx ())
  else None

(* The paper's compaction thread: sleeps until awoken by a compaction
   request (here: polled), runs the pass, goes back to sleep. *)
let daemon ~poll_contexts ~stop ?(interval_s = 0.01) () =
  Domain.spawn (fun () ->
      let passes = ref 0 in
      while not (Atomic.get stop) do
        List.iter
          (fun ctx ->
            match run_if_requested ctx with
            | Some report -> if not report.aborted then incr passes
            | None -> ())
          (poll_contexts ());
        Unix.sleepf interval_s
      done;
      !passes)
