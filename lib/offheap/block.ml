type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type placement = Row | Columnar

type relocation_status = Pending | Moved | Failed

type relocation = {
  from_slot : int;
  target : t;
  to_slot : int;
  mutable status : relocation_status;
}

and reloc_list = { relocs : relocation array; by_slot : int array }

and group = {
  sources : t array;
  g_target : t;
  g_state : int Atomic.t;
  g_queries : int Atomic.t;
}

and t = {
  id : int;
  layout : Layout.t;
  placement : placement;
  nslots : int;
  data : int_ba;
  dir : int_ba;
  backptr : int_ba;
  slot_inc : int_ba;
  csn_born : int_ba;
  csn_write : int_ba;
  valid_count : int Atomic.t;
  limbo_count : int Atomic.t;
  mutable scan_pos : int;
  mutable owner_tid : int;
  mutable queued : bool;
  mutable queued_ready : int;
  mutable dead : bool;
  mutable reloc : reloc_list option;
  mutable group : group option;
}

let group_pending = 0
let group_moving = 1
let group_done = 2

let int_ba n =
  let ba = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.fill ba 0;
  ba

let create ~id ~layout ~placement ~nslots =
  if nslots <= 0 || nslots > Constants.max_direct_slots then
    invalid_arg "Block.create: bad slot count";
  if id >= Constants.max_direct_blocks then invalid_arg "Block.create: block id overflow";
  let backptr = int_ba nslots in
  Bigarray.Array1.fill backptr Constants.null_ref;
  {
    id;
    layout;
    placement;
    nslots;
    data = int_ba (nslots * layout.Layout.slot_words);
    dir = int_ba nslots;
    backptr;
    slot_inc = int_ba nslots;
    csn_born = int_ba nslots;
    csn_write = int_ba nslots;
    valid_count = Atomic.make 0;
    limbo_count = Atomic.make 0;
    scan_pos = 0;
    owner_tid = -1;
    queued = false;
    queued_ready = 0;
    dead = false;
    reloc = None;
    group = None;
  }

let word_index t ~slot ~word =
  match t.placement with
  | Row -> (slot * t.layout.Layout.slot_words) + word
  | Columnar -> (word * t.nslots) + slot

let get_word t ~slot ~word = Bigarray.Array1.unsafe_get t.data (word_index t ~slot ~word)

let set_word t ~slot ~word v =
  Bigarray.Array1.unsafe_set t.data (word_index t ~slot ~word) v

(* Floats keep sign, exponent and 51 of 52 mantissa bits in a 63-bit word
   (the lowest mantissa bit is dropped); exact numerics use Dec fields. *)
let get_float t ~slot ~word =
  Int64.float_of_bits (Int64.shift_left (Int64.of_int (get_word t ~slot ~word)) 1)

let set_float t ~slot ~word v =
  set_word t ~slot ~word (Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float v) 1))

(* Strings pack Layout.str_bytes_per_word (7) bytes into each 63-bit word,
   NUL-padded to the field capacity. *)
let bpw = Layout.str_bytes_per_word

let get_string t ~slot field =
  let cap = Layout.str_capacity field in
  let buf = Bytes.create cap in
  let len = ref cap in
  (try
     for w = 0 to field.Layout.words - 1 do
       let word = get_word t ~slot ~word:(field.Layout.word + w) in
       let base = w * bpw in
       for b = 0 to bpw - 1 do
         let pos = base + b in
         if pos < cap then begin
           let c = (word lsr (b * 8)) land 0xFF in
           if c = 0 then begin
             len := pos;
             raise Exit
           end;
           Bytes.unsafe_set buf pos (Char.unsafe_chr c)
         end
       done
     done
   with Exit -> ());
  Bytes.sub_string buf 0 !len

(* Pack a literal into the words a [Str] field stores, for allocation-free
   equality predicates in query code. *)
let string_words field s =
  let cap = Layout.str_capacity field in
  let n = min (String.length s) cap in
  Array.init field.Layout.words (fun w ->
      let base = w * bpw in
      let word = ref 0 in
      for b = bpw - 1 downto 0 do
        let pos = base + b in
        word := !word lsl 8;
        if pos < n then word := !word lor Char.code (String.unsafe_get s pos)
      done;
      !word)

let set_string t ~slot field s =
  let cap = Layout.str_capacity field in
  let n = min (String.length s) cap in
  for w = 0 to field.Layout.words - 1 do
    let base = w * bpw in
    let word = ref 0 in
    for b = bpw - 1 downto 0 do
      let pos = base + b in
      word := !word lsl 8;
      if pos < n then word := !word lor Char.code (String.unsafe_get s pos)
    done;
    set_word t ~slot ~word:(field.Layout.word + w) !word
  done

let dir_entry t slot = Bigarray.Array1.unsafe_get t.dir slot
let set_dir_entry t slot v = Bigarray.Array1.unsafe_set t.dir slot v
let slot_state t slot = Constants.dir_state (dir_entry t slot)

let clear_slot_words t ~slot =
  for w = 0 to t.layout.Layout.slot_words - 1 do
    set_word t ~slot ~word:w 0
  done

let copy_slot ~src ~src_slot ~dst ~dst_slot =
  for w = 0 to src.layout.Layout.slot_words - 1 do
    set_word dst ~slot:dst_slot ~word:w (get_word src ~slot:src_slot ~word:w)
  done

let occupancy t = float_of_int (Atomic.get t.valid_count) /. float_of_int t.nslots

let off_heap_words t =
  Bigarray.Array1.dim t.data + Bigarray.Array1.dim t.dir
  + Bigarray.Array1.dim t.backptr + Bigarray.Array1.dim t.slot_inc
  + Bigarray.Array1.dim t.csn_born + Bigarray.Array1.dim t.csn_write

let find_reloc t ~slot =
  match t.reloc with
  | None -> None
  | Some rl ->
    let idx = rl.by_slot.(slot) in
    if idx < 0 then None else Some rl.relocs.(idx)
