(** Memory contexts (§3.3, §3.5 of the paper).

    A context owns the set of same-type blocks backing one collection. All
    allocations for the collection go to the context's blocks, giving the
    spatial locality that makes block-order enumeration fast. Allocation is
    from thread-local blocks (one allocating thread per block at a time;
    removals may be concurrent). Freed slots become limbo slots stamped with
    the removal epoch; once a block's limbo fraction exceeds the reclamation
    threshold it enters the reclamation queue with a ready-epoch of
    [removal epoch + 2], and the allocator recycles it as a thread-local
    block when that epoch is reached — trying to advance the global epoch
    when reclaimable blocks are stuck waiting, exactly as §3.5 prescribes.

    References handed to the application are always indirect
    ({!Constants.pack_ref}: indirection entry + incarnation). In [Direct]
    mode (§6) the per-slot incarnation plane is maintained in lockstep and
    SMC-to-SMC ref fields store packed direct pointers
    ({!Constants.pack_direct}) resolved against the slot's incarnation word,
    with tombstone forwarding after compaction.

    The context also implements the block-access side of compaction (§5.2):
    enumeration processes all blocks of a compaction group consecutively,
    either pre-relocation (holding the group's query counter as a read lock)
    or post-relocation (reading the target block). *)

type mode = Indirect | Direct

type view = { v_blocks : Block.t array; v_n : int }

type t = {
  id : int;
  rt : Runtime.t;
  layout : Layout.t;
  placement : Block.placement;
  mode : mode;
  slots_per_block : int;
  reclaim_threshold : float;
  lock : Mutex.t;  (** protects view publication and the reclamation queue *)
  mutable view : view;
      (** atomically-published snapshot of the block list; read it once and
          iterate the pair — mutators never disturb a published view *)
  mutable rq_front : Block.t list;
      (** reclamation queue, pop end (oldest first) *)
  mutable rq_back : Block.t list;
      (** reclamation queue, push end (newest first); the two lists form an
          amortised-O(1) FIFO under the context lock *)
  local_block : Block.t option array;  (** per thread slot *)
  mutable direct_referrers : (t * Layout.field) list;
      (** contexts holding direct references into this one (§6 fixup) *)
  compaction_requested : bool Atomic.t;
  csn : int Atomic.t;
      (** commit sequence number — the logical clock snapshot views read
          against; see {!csn_now}/{!next_csn} *)
}

val create :
  Runtime.t ->
  layout:Layout.t ->
  ?placement:Block.placement ->
  ?mode:mode ->
  ?slots_per_block:int ->
  ?reclaim_threshold:float ->
  unit ->
  t
(** Defaults: [Row] placement, [Indirect] mode, 4096 slots per block,
    0.05 reclamation threshold (the paper's pick from Figure 6). *)

val alloc : ?csn:int -> t -> int
(** Allocates a slot, wires its indirection entry and back-pointer, zeroes
    the object words and returns a packed indirect reference. The caller
    (the collection layer's [add]) initialises fields through it. The row's
    birth CSN is [csn] when given (transaction commit), else a fresh
    {!next_csn} — stamped before the slot turns valid. *)

val free : ?csn:int -> t -> int -> bool
(** Frees the object behind a packed indirect reference: bumps the
    incarnation(s) so all outstanding references read as null, marks the
    slot limbo with the current epoch, and queues the block for reclamation
    when it crosses the threshold. Returns [false] if the reference was
    already dead. The row's death CSN is [csn] when given, else a fresh
    {!next_csn} — stamped before the slot leaves the valid state. Safe
    concurrently with enumeration and allocation. *)

(** {2 Commit sequence numbers and snapshot visibility}

    Every row carries a birth CSN and a last-write CSN in its block's stamp
    planes. A snapshot view reads at frontier [v]: valid rows born at or
    before [v] plus limbo/quarantined rows born at or before and dead after
    [v]. Stamps are always written before the directory state flips, so an
    observed state change comes with its CSN; the view's epoch critical
    section keeps visible limbo rows from being recycled underneath it. *)

val csn_now : t -> int
(** Current commit frontier: every CSN ≤ this has been assigned. *)

val next_csn : t -> int
(** Mint the next CSN (atomic increment). *)

val stamp_write : Block.t -> int -> csn:int -> unit
(** Record a write CSN on a slot (in-place [store] path); call before the
    stored words change so a view frontier between stamp and store reads
    either version but never attributes the new words to the old CSN. *)

val store_versioned : t -> int -> csn:int -> word:int -> value:int -> bool
(** Copy-on-write store for transactional commits: copies the row behind
    the packed reference into a fresh slot stamped born = write = [csn],
    applies the word update to the copy, swings the reference's
    indirection entry to it, and retires the old copy to limbo with death
    stamp [csn]. The reference keeps its identity (same entry, same
    incarnation), current readers see the new payload, and snapshot views
    at frontiers below [csn] keep reading the old copy through the limbo
    visibility rule. A pending relocation of the old copy is cancelled the
    way {!free} cancels one. Returns false when the reference no longer
    resolves. Indirect mode only — raises [Invalid_argument] in direct
    mode. *)

val slot_visible_at : Block.t -> int -> csn:int -> bool
(** Whether the slot holds a row visible at frontier [csn]. *)

val scan_block_at : Block.t -> csn:int -> f:(Block.t -> int -> unit) -> unit
(** Apply [f] to every slot of one block visible at [csn] (no group
    handling) — the snapshot-view counterpart of {!scan_block}. *)

val iter_visible : t -> csn:int -> f:(Block.t -> int -> unit) -> unit
(** Enumerates every slot visible at frontier [csn], honouring the
    compaction group protocol. Call inside a critical section that was
    entered before the frontier was read. *)

val resolve : t -> int -> (Block.t * int) option
(** Current (block, slot) behind a packed indirect reference, or [None] if
    removed. Handles the frozen/relocation cases of §5.1 (bail-out in the
    waiting phase, helping in the moving phase). Call inside a critical
    section. *)

val resolve_direct : t -> int -> (Block.t * int) option
(** Same for a stored packed direct pointer (§6), including tombstone
    forwarding. [t] is the referenced (target) context. *)

val direct_ref_of : t -> int -> int
(** Converts an indirect reference into the packed direct pointer stored in
    SMC-to-SMC ref fields; {!Constants.null_ref} if the object is gone. *)

val indirect_ref_of_slot : t -> Block.t -> int -> int
(** Builds the application-level reference for a slot reached by block
    enumeration (via the back-pointer, as the paper's generated query code
    does when yielding [ObjRef]s). *)

val iter_valid : t -> f:(Block.t -> int -> unit) -> unit
(** Enumerates every valid slot block-by-block, honouring the compaction
    group protocol. Call inside a critical section. Bag semantics: objects
    added or removed concurrently may or may not be observed. *)

val iter_valid_per_block : t -> f:(Block.t -> int -> unit) -> unit
(** Like {!iter_valid} but entering a fresh critical section per block (per
    compaction group where one exists) — §4's other critical-section
    granularity, which keeps grace periods short during long enumerations.
    Must be called {e outside} any critical section. *)

val iter_valid_hoisted : t -> on_block:(Block.t -> int -> unit) -> unit
(** Like {!iter_valid}, but [on_block] runs once per block and returns the
    per-slot body — query code hoists raw block state out of the slot loop
    (the paper's direct block access). *)

(** {2 Batch-at-a-time enumeration}

    The vectorized engine's scan primitive: surviving slot indices are
    gathered into a {e selection vector} (an int Bigarray), up to its
    capacity per batch, and the consumer fills whole column chunks from it —
    amortizing per-element costs (closure calls; on {!iter_valid_batches},
    critical-section entries) across ~1024 rows. See docs/vectorized.md. *)

type sel = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Selection vector: slot (or batch-row) indices, live prefix only. *)

val make_sel : int -> sel
(** [make_sel cap] allocates a selection vector for [cap] entries (≥ 1). *)

val scan_block_batch : ?csn:int -> Block.t -> start:int -> sel:sel -> int * int
(** Branchless gather of surviving slots of one block into [sel], beginning
    at slot [start], at most [dim sel] of them. Survival means directory
    state [valid], or visibility at the [?csn] frontier when given (same
    semantics as {!scan_block} / {!scan_block_at}). Returns
    [(count, next)]: [count] entries of [sel] are filled, and [next] is
    where the following batch must [start] ([= nslots] when the block is
    exhausted). No group handling; call inside a critical section. *)

val iter_batches :
  ?csn:int -> ?wrap:((unit -> unit) -> unit) -> t -> sel:sel -> on_batch:(Block.t -> int -> unit) -> unit
(** Drive {!scan_block_batch} over the published view under the §5.2 group
    protocol. [on_batch blk count] must consume the first [count] entries of
    [sel] before returning — the buffer is reused. Without [?wrap], call
    inside a critical section; [wrap] delimits each view element as in the
    per-block enumerators. *)

val iter_valid_batches : ?csn:int -> t -> sel:sel -> on_batch:(Block.t -> int -> unit) -> unit
(** {!iter_batches} with one fresh epoch critical section per view element,
    covering every batch of that element — gather {e and} the caller's
    column fill. The batch-at-a-time analogue of {!iter_valid_per_block}:
    the critical-section cost is paid once per block rather than once per
    row. Must be called {e outside} any critical section unless [?csn] is
    given (a snapshot view already holds its own pin, and critical sections
    nest). *)

(** {2 Parallel-enumeration support}

    A parallel query partitions one view snapshot across worker domains.
    Each worker processes view elements inside its own epoch critical
    section (one per block, so grace periods stay short); compaction groups
    are claimed through a shared {!claims} ticket so a group is handled by
    exactly one worker and never split (§5.2). The actual domain pool and
    partitioning live in [Smc_parallel]; these are the protocol pieces it
    builds on (also used by the sequential enumerators above). *)

type claims
(** Shared claim ticket for the compaction groups met by one enumeration. *)

val no_claims : unit -> claims
(** Fresh ticket; create one per enumeration and share it across workers. *)

val claim_group : claims -> Block.group -> bool
(** Atomically claim a group; [true] for exactly one caller per group. *)

val scan_view_element : claims:claims -> Block.t -> scan:(Block.t -> unit) -> unit
(** Process one element of a view snapshot under the §5.2 protocol: a live
    ungrouped block is scanned directly; the first worker to reach any
    member of a compaction group claims the whole group and scans it
    (pre-relocation under the query counter, or post-relocation from the
    target); members of an already-claimed group are skipped. Call inside a
    critical section. *)

val scan_block : Block.t -> f:(Block.t -> int -> unit) -> unit
(** Apply [f] to every valid slot of one block (no group handling). *)

val reclaim_queue_blocks : t -> Block.t list
(** Snapshot of the reclamation queue, oldest first. Callers must hold the
    context lock or be at a quiescent point (the audit's use). *)

val rq_remove_locked : t -> Block.t -> unit
(** Remove a block from the reclamation queue; caller must hold the context
    lock (the compactor pulls candidates out of the queue this way). *)

val resolve_loc : t -> int -> int
(** Allocation-free {!resolve}: packed (block, slot) per
    {!Constants.pack_ptr}, or -1 when the object is gone. *)

val resolve_direct_loc : t -> int -> int
(** Allocation-free {!resolve_direct}. *)

val block_of_loc : t -> int -> Block.t
(** Block record for a location returned by {!resolve_loc}. *)

val add_direct_referrer : t -> from:t -> Layout.field -> unit
(** Declares that [from]'s field holds direct references into [t], so
    compaction of [t] knows which contexts to scan for pointer fixup. *)

val perform_relocation : t -> int -> Block.relocation -> Block.t -> unit
(** Moves one object to its relocation target; idempotent; must hold the
    entry's stripe lock. Exposed for the compaction driver. *)

val mark_reloc_failed : Block.t -> int -> unit
(** Marks a slot's pending relocation failed (bail-out path). *)

val effective_quarantine_limit : t -> int
(** The incarnation bound at which this context quarantines slots: the
    runtime's configured limit, additionally clamped to the 27-bit
    direct-reference incarnation width in [Direct] mode. *)

val valid_count : t -> int
val block_count : t -> int
val off_heap_words : t -> int
val stats_limbo : t -> int

val request_compaction : t -> unit

val fresh_block : t -> Block.t
(** Creates and publishes a block (visible to enumerators immediately). *)

val new_block_unpublished : t -> Block.t
(** Creates a block registered globally but not yet visible to enumeration;
    compaction targets are published only once their group exists. *)

val publish_block : t -> Block.t -> unit
