(** Global block registry: maps block identifiers to blocks.

    The paper derives a block's header address from an object pointer by
    aligning blocks to their size; OCaml cannot cast addresses, so packed
    pointers carry a block id resolved through this table (this is exactly
    the representation the paper already uses for columnar layouts, §4.1).
    The table is grow-only and lock-free to read. *)

type t

val create : unit -> t

val register : t -> (id:int -> Block.t) -> Block.t
(** Allocates the next block id, builds the block with it, publishes it. *)

val get : t -> int -> Block.t
(** Raises [Invalid_argument] for an unknown or retired id. *)

val get_fast : t -> int -> Block.t
(** Unchecked resolution for ids coming from validated references; retired
    ids yield a shared dead sentinel block (whose slots are never valid). *)

val retire : t -> int -> unit
(** Drops the mapping so the block's memory can be released (after
    compaction has emptied it and all direct pointers are fixed up). *)

val count : t -> int
(** Number of ids ever issued. *)

val iter_registered : t -> f:(Block.t -> unit) -> unit
(** Audit accessor: every registered, non-retired block — dead tombstones
    included; callers filter on [Block.dead] when they only want live
    ones. *)
