(** Off-heap data blocks (§3.1–§3.2 of the paper).

    A block stores objects of exactly one layout (type stability). Its memory
    is divided into the object store, the slot directory (per-slot state:
    free / valid / limbo, plus the removal-epoch stamp), the back-pointers
    (per-slot indirection-table entry index), and a per-slot incarnation
    plane used in direct mode (§6, where the incarnation number moves from
    the indirection entry into the object's header).

    All four segments are [int] Bigarrays: allocated outside the OCaml heap,
    never scanned or moved by the garbage collector. The block record itself
    is a small heap object playing the role of the paper's block header.

    Blocks also carry the compaction state of §5: a relocation list
    (from-slot → target block/slot, with per-relocation status) and a
    compaction-group handle used by the block-access protocol of §5.2. *)

type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type placement = Row | Columnar

type relocation_status = Pending | Moved | Failed

type relocation = {
  from_slot : int;
  target : t;
  to_slot : int;
  mutable status : relocation_status;
}

and reloc_list = {
  relocs : relocation array;
  by_slot : int array;  (** from_slot → index into [relocs], or -1 *)
}

and group = {
  sources : t array;
  g_target : t;
  g_state : int Atomic.t;  (** 0 pending, 1 moving, 2 done *)
  g_queries : int Atomic.t;  (** pre-relocation readers holding the group *)
}

and t = {
  id : int;
  layout : Layout.t;
  placement : placement;
  nslots : int;
  data : int_ba;
  dir : int_ba;
  backptr : int_ba;
  slot_inc : int_ba;
  csn_born : int_ba;
      (** commit sequence number at which the slot's current row became
          visible; 0 for rows that predate CSN stamping (always visible) *)
  csn_write : int_ba;
      (** commit sequence number of the last write (store or removal) to
          the slot's current row; doubles as the removal stamp read by
          snapshot views *)
  valid_count : int Atomic.t;
  limbo_count : int Atomic.t;
  mutable scan_pos : int;  (** allocator's next slot to examine (§3.5) *)
  mutable owner_tid : int;  (** thread currently allocating here, or -1 *)
  mutable queued : bool;  (** present in the context's reclamation queue *)
  mutable queued_ready : int;  (** epoch at which queued reclamation is safe *)
  mutable dead : bool;  (** emptied by compaction; skipped by enumerators *)
  mutable reloc : reloc_list option;
  mutable group : group option;
}

val group_pending : int
val group_moving : int
val group_done : int

val create : id:int -> layout:Layout.t -> placement:placement -> nslots:int -> t
(** Fresh block, all slots free. [nslots] must fit direct-pointer packing. *)

val word_index : t -> slot:int -> word:int -> int
(** Physical index of logical [word] of [slot] under the block's placement:
    row-major for [Row], plane-major for [Columnar] (§4.1). *)

val get_word : t -> slot:int -> word:int -> int
val set_word : t -> slot:int -> word:int -> int -> unit

val get_string : t -> slot:int -> Layout.field -> string
(** Reads a NUL-padded inline string field. *)

val set_string : t -> slot:int -> Layout.field -> string -> unit
(** Truncates to the field capacity; pads with NULs. *)

val string_words : Layout.field -> string -> int array
(** The exact words {!set_string} would store for a literal — precomputed
    once, they make string equality a handful of word compares. *)

val get_float : t -> slot:int -> word:int -> float
val set_float : t -> slot:int -> word:int -> float -> unit

val dir_entry : t -> int -> int
val set_dir_entry : t -> int -> int -> unit
val slot_state : t -> int -> int
(** One of [Constants.state_free] / [state_valid] / [state_limbo]. *)

val clear_slot_words : t -> slot:int -> unit
(** Zeroes a slot's object words (fresh-object initialisation). *)

val copy_slot : src:t -> src_slot:int -> dst:t -> dst_slot:int -> unit
(** Copies all object words between same-layout blocks, translating
    placement if they differ. *)

val occupancy : t -> float
(** valid slots / total slots. *)

val off_heap_words : t -> int
(** Total off-heap words held by this block (all four segments). *)

val find_reloc : t -> slot:int -> relocation option
(** Relocation entry for [slot], if the block is scheduled for compaction. *)
