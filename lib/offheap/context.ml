open Constants

type mode = Indirect | Direct

(* One immutable snapshot of the context's block list. Mutators publish a
   fresh view record under the context lock; enumerators read the field
   once and work off a consistent (array, count) pair even while appends or
   pruning run concurrently. Appends may reuse the array (slots beyond
   [v_n] are invisible to holders of the old view); pruning always builds a
   fresh array. *)
type view = { v_blocks : Block.t array; v_n : int }

type t = {
  id : int;
  rt : Runtime.t;
  layout : Layout.t;
  placement : Block.placement;
  mode : mode;
  slots_per_block : int;
  reclaim_threshold : float;
  lock : Mutex.t;
  mutable view : view;
  mutable rq_front : Block.t list;
  mutable rq_back : Block.t list;
  local_block : Block.t option array;
  mutable direct_referrers : (t * Layout.field) list;
  compaction_requested : bool Atomic.t;
  (* Commit sequence number: the logical clock snapshot views read against.
     Bare (non-transactional) mutations take a fresh CSN per operation;
     [Collection.transact] stamps a whole batch with one CSN so a view
     frontier can never split it. *)
  csn : int Atomic.t;
}

let max_threads = 128

let create rt ~layout ?(placement = Block.Row) ?(mode = Indirect) ?(slots_per_block = 4096)
    ?(reclaim_threshold = 0.05) () =
  if slots_per_block > Constants.max_direct_slots then
    invalid_arg "Context.create: slots_per_block too large";
  {
    id = Atomic.fetch_and_add rt.Runtime.next_context_id 1;
    rt;
    layout;
    placement;
    mode;
    slots_per_block;
    reclaim_threshold;
    lock = Mutex.create ();
    view = { v_blocks = [||]; v_n = 0 };
    rq_front = [];
    rq_back = [];
    local_block = Array.make max_threads None;
    direct_referrers = [];
    compaction_requested = Atomic.make false;
    csn = Atomic.make 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let csn_now t = Atomic.get t.csn
let next_csn t = Atomic.fetch_and_add t.csn 1 + 1

let stamp_write blk slot ~csn =
  Bigarray.Array1.unsafe_set blk.Block.csn_write slot csn

let append_block_locked t blk =
  let { v_blocks; v_n } = t.view in
  let v_blocks =
    if v_n = Array.length v_blocks then begin
      let next = Array.make (max 8 (2 * Array.length v_blocks)) blk in
      Array.blit v_blocks 0 next 0 v_n;
      next
    end
    else v_blocks
  in
  v_blocks.(v_n) <- blk;
  t.view <- { v_blocks; v_n = v_n + 1 }

let obs_incr t c = Smc_obs.incr t.rt.Runtime.obs c

let new_block_unpublished t =
  obs_incr t Smc_obs.c_blocks_created;
  Registry.register t.rt.Runtime.registry (fun ~id ->
      Block.create ~id ~layout:t.layout ~placement:t.placement ~nslots:t.slots_per_block)

let publish_block t blk = with_lock t (fun () -> append_block_locked t blk)

let fresh_block t =
  let blk = new_block_unpublished t in
  publish_block t blk;
  blk

(* The reclamation queue is a two-list FIFO under the context lock: pushes
   prepend to [rq_back], pops take from [rq_front], reversing the back list
   into the front only when the front runs dry — O(1) amortised either way,
   where a naive [queue @ [blk]] append is quadratic under churn. *)
let rq_push_locked t blk = t.rq_back <- blk :: t.rq_back

let rq_normalize_locked t =
  if t.rq_front = [] then begin
    t.rq_front <- List.rev t.rq_back;
    t.rq_back <- []
  end

let rq_remove_locked t blk =
  t.rq_front <- List.filter (fun b -> b != blk) t.rq_front;
  t.rq_back <- List.filter (fun b -> b != blk) t.rq_back

let reclaim_queue_blocks t = t.rq_front @ List.rev t.rq_back

(* Pop the oldest ready block from the reclamation queue; when blocks are
   queued but not yet ready, nudge the global epoch (§3.5: lazy advance from
   the allocation function). Dead blocks — killed by compaction after they
   were queued — are drained in a loop so a dead head can never hide the
   ready blocks behind it (that stall made the allocator mint fresh blocks
   forever while recycled memory sat in the queue). When [owner] is given,
   the popped block's owner is set {e under the context lock}, closing the
   window in which [maybe_queue] on another domain could still see the block
   as unowned and re-queue it. *)
let pop_reclaimable ?owner t =
  let epoch = t.rt.Runtime.epoch in
  with_lock t (fun () ->
      let rec drain () =
        rq_normalize_locked t;
        match t.rq_front with
        | [] -> None
        | head :: rest ->
          if head.Block.dead then begin
            head.Block.queued <- false;
            t.rq_front <- rest;
            obs_incr t Smc_obs.c_rq_dead_drops;
            drain ()
          end
          else if Epoch.global epoch >= head.Block.queued_ready then begin
            head.Block.queued <- false;
            t.rq_front <- rest;
            (match owner with Some tid -> head.Block.owner_tid <- tid | None -> ());
            obs_incr t Smc_obs.c_rq_pops;
            Some head
          end
          else begin
            (* FIFO ready-epochs are monotone: nothing behind a not-yet-ready
               head can be ready either. *)
            ignore (Epoch.try_advance epoch : bool);
            None
          end
      in
      drain ())

let acquire_block t tid =
  match pop_reclaimable ~owner:tid t with
  | Some blk ->
    blk.Block.scan_pos <- 0;
    blk
  | None ->
    (* Claim ownership before the block becomes visible: once published it
       can be seen by the compactor and by [maybe_queue] on other domains. *)
    let blk = new_block_unpublished t in
    blk.Block.owner_tid <- tid;
    blk.Block.scan_pos <- 0;
    publish_block t blk;
    obs_incr t Smc_obs.c_fresh_blocks;
    blk

let maybe_queue t blk =
  (* Queue blocks whose limbo fraction crossed the reclamation threshold so
     their memory is recycled two epochs on (§3.5). *)
  let limbo = Atomic.get blk.Block.limbo_count in
  if
    (not blk.Block.queued) && (not blk.Block.dead) && blk.Block.group = None
    && blk.Block.owner_tid < 0
    && float_of_int limbo /. float_of_int blk.Block.nslots > t.reclaim_threshold
  then begin
    Runtime.fire_queue_hook t.rt blk;
    with_lock t (fun () ->
        (* Re-check the full condition: between the unlocked check above and
           here the block can be re-acquired as a thread-local allocation
           block (owner set under the lock by [pop_reclaimable]), reserved
           into a compaction group, or killed. Queuing it then would hand a
           writer's active block to reclamation. *)
        if
          (not blk.Block.queued) && (not blk.Block.dead) && blk.Block.group = None
          && blk.Block.owner_tid < 0
        then begin
          blk.Block.queued <- true;
          blk.Block.queued_ready <- Epoch.global t.rt.Runtime.epoch + 2;
          rq_push_locked t blk;
          obs_incr t Smc_obs.c_rq_pushes
        end)
  end

let release_local t tid blk =
  blk.Block.owner_tid <- -1;
  t.local_block.(tid) <- None;
  maybe_queue t blk

(* Scan the slot directory from the last allocation position for a free slot
   or a reclaimable limbo slot (§3.5). A completely full block (every slot
   valid, so no free and no limbo slot to recycle) is rejected without
   touching the directory at all. *)
let scan_for_slot t tid blk =
  if Atomic.get blk.Block.valid_count = blk.Block.nslots then None
  else begin
  let epoch = t.rt.Runtime.epoch in
  let ind = t.rt.Runtime.ind in
  let n = blk.Block.nslots in
  let rec go remaining pos =
    if remaining = 0 then None
    else begin
      let pos = if pos >= n then 0 else pos in
      let entry = Block.dir_entry blk pos in
      let state = dir_state entry in
      if state = state_free then begin
        blk.Block.scan_pos <- pos + 1;
        Some pos
      end
      else if state = state_limbo && Epoch.can_reclaim epoch ~stamp:(dir_stamp entry) then begin
        (* Grace period passed: recycle the slot and its indirection entry.
           Stale references already fail the incarnation check. *)
        let old_entry = Bigarray.Array1.unsafe_get blk.Block.backptr pos in
        if old_entry >= 0 then Indirection.free ind ~tid old_entry;
        Bigarray.Array1.unsafe_set blk.Block.backptr pos Constants.null_ref;
        ignore (Atomic.fetch_and_add blk.Block.limbo_count (-1) : int);
        obs_incr t Smc_obs.c_slot_recycles;
        blk.Block.scan_pos <- pos + 1;
        Some pos
      end
      else go (remaining - 1) (pos + 1)
    end
  in
  go n blk.Block.scan_pos
  end

let rec alloc ?csn t =
  Runtime.fire_alloc_hook t.rt;
  let tid = Runtime.tid t.rt in
  let blk =
    match t.local_block.(tid) with
    | Some blk -> blk
    | None ->
      let blk = acquire_block t tid in
      t.local_block.(tid) <- Some blk;
      blk
  in
  match scan_for_slot t tid blk with
  | None ->
    release_local t tid blk;
    alloc ?csn t
  | Some slot ->
    let ind = t.rt.Runtime.ind in
    Block.clear_slot_words blk ~slot;
    (* Stamp the row's CSN before the directory flips the slot valid: a
       snapshot view that sees [state_valid] must also see a birth stamp,
       never a stale one left by the slot's previous incarnation. *)
    let c = match csn with Some c -> c | None -> next_csn t in
    Bigarray.Array1.unsafe_set blk.Block.csn_born slot c;
    Bigarray.Array1.unsafe_set blk.Block.csn_write slot c;
    let entry = Indirection.alloc ind ~tid in
    Indirection.set_ptr ind entry (pack_ptr ~block:blk.Block.id ~slot);
    Bigarray.Array1.unsafe_set blk.Block.backptr slot entry;
    Block.set_dir_entry blk slot (dir_entry ~state:state_valid ~stamp:0);
    ignore (Atomic.fetch_and_add blk.Block.valid_count 1 : int);
    obs_incr t Smc_obs.c_allocs;
    let inc = Indirection.inc_word ind entry land inc_mask in
    pack_ref ~entry ~inc

(* The reference-visible incarnation width is 31 bits for indirect
   references but only 27 for direct ones, so a direct-mode context must
   quarantine slots at the narrower bound — otherwise a slot reused 2^27
   times hands out direct references that alias incarnation 0. *)
let effective_quarantine_limit t =
  match t.mode with
  | Indirect -> t.rt.Runtime.inc_quarantine_limit
  | Direct -> min t.rt.Runtime.inc_quarantine_limit Constants.direct_inc_mask

(* Mark the slot limbo, stamped with the current global epoch — or
   quarantine it permanently when its incarnation is about to exhaust the
   reference-visible width (§3.1's overflow rule). *)
let retire_slot t blk slot ~new_inc =
  ignore (Atomic.fetch_and_add blk.Block.valid_count (-1) : int);
  obs_incr t Smc_obs.c_retires;
  (* Direct references validate against the slot's own incarnation word, and
     entries migrate between slots — so in direct mode the slot incarnation
     (already bumped by [free]) is bounded independently of the entry's. *)
  let overflow =
    new_inc land inc_mask >= effective_quarantine_limit t
    || (match t.mode with
       | Indirect -> false
       | Direct ->
         let sw = Bigarray.Array1.unsafe_get blk.Block.slot_inc slot in
         sw land inc_mask >= effective_quarantine_limit t)
  in
  if overflow then begin
    Block.set_dir_entry blk slot (dir_entry ~state:state_quarantined ~stamp:0);
    ignore (Atomic.fetch_and_add t.rt.Runtime.quarantined_slots 1 : int);
    obs_incr t Smc_obs.c_quarantines
  end
  else begin
    let epoch = Epoch.global t.rt.Runtime.epoch in
    Block.set_dir_entry blk slot (dir_entry ~state:state_limbo ~stamp:epoch);
    ignore (Atomic.fetch_and_add blk.Block.limbo_count 1 : int);
    maybe_queue t blk
  end

(* Freeing a frozen object must tell the compactor: the relocation sweep
   re-checks slot validity so a dead slot is not resurrected. *)
let mark_reloc_failed blk slot =
  match Block.find_reloc blk ~slot with
  | None -> ()
  | Some r -> if r.Block.status = Block.Pending then r.Block.status <- Block.Failed

let free ?csn t packed =
  if packed < 0 then false
  else begin
    let entry = ref_entry packed and inc = ref_inc packed in
    let ind = t.rt.Runtime.ind in
    Runtime.with_entry_lock t.rt entry (fun () ->
        let w = Indirection.inc_word ind entry in
        if w land inc_mask <> inc then false
        else begin
          let p = Indirection.ptr ind entry in
          let blk = Registry.get t.rt.Runtime.registry (ptr_block p) in
          let slot = ptr_slot p in
          (* Death stamp before the directory flips to limbo/quarantined:
             a view at frontier [v] keeps reading rows with write > v. *)
          let c = match csn with Some c -> c | None -> next_csn t in
          Bigarray.Array1.unsafe_set blk.Block.csn_write slot c;
          if w land frozen_bit <> 0 then mark_reloc_failed blk slot;
          (* Bump the incarnation (clearing protocol flags): all outstanding
             references now read as null. In direct mode the slot's own
             incarnation word is kept in lockstep (§6 keeps it in the object
             header). *)
          let new_inc = ((w land lnot flags_mask) + 1) land lnot flags_mask in
          Indirection.set_inc_word ind entry new_inc;
          (match t.mode with
          | Indirect -> ()
          | Direct ->
            let sw = Bigarray.Array1.unsafe_get blk.Block.slot_inc slot in
            Bigarray.Array1.unsafe_set blk.Block.slot_inc slot
              (((sw land lnot flags_mask) + 1) land lnot flags_mask));
          retire_slot t blk slot ~new_inc;
          obs_incr t Smc_obs.c_frees;
          true
        end)
  end

(* Copy-on-write store for transactional commits: re-point the reference's
   indirection entry at a fresh copy of the row carrying the updated word,
   and retire the old copy to limbo with death stamp [csn]. Open snapshot
   views at frontiers below [csn] keep reading the old copy through the
   ordinary limbo-visibility rule; the reference (same entry, same
   incarnation) reaches the new copy, so live and stored refs are
   unaffected. Indirect mode only — there is no entry to swing in direct
   mode. Returns false when the reference no longer resolves. *)
let store_versioned t packed ~csn ~word ~value =
  if t.mode <> Indirect then invalid_arg "Context.store_versioned: indirect mode only";
  if packed < 0 then false
  else begin
    (* The fresh slot first, outside any entry lock: [alloc] may take the
       context lock or create blocks. Its private entry [e2] is published
       to no one; we own both the slot and the entry outright. *)
    let fresh = alloc ~csn t in
    let ind = t.rt.Runtime.ind in
    let e1 = ref_entry packed and inc = ref_inc packed in
    let e2 = ref_entry fresh in
    let swapped =
      Runtime.with_entry_lock t.rt e1 (fun () ->
          let w = Indirection.inc_word ind e1 in
          if w land inc_mask <> inc then false
          else begin
            let p1 = Indirection.ptr ind e1 in
            let src_blk = Registry.get t.rt.Runtime.registry (ptr_block p1) in
            let src_slot = ptr_slot p1 in
            let p2 = Indirection.ptr ind e2 in
            let dst_blk = Registry.get t.rt.Runtime.registry (ptr_block p2) in
            let dst_slot = ptr_slot p2 in
            (* A pending relocation of the old copy is cancelled exactly as
               [free] cancels one for a dying frozen object: the compactor
               re-checks the status and bails. *)
            if w land frozen_bit <> 0 then begin
              mark_reloc_failed src_blk src_slot;
              Indirection.set_inc_word ind e1 (w land lnot frozen_bit)
            end;
            Block.copy_slot ~src:src_blk ~src_slot ~dst:dst_blk ~dst_slot;
            Block.set_word dst_blk ~slot:dst_slot ~word value;
            (* [alloc ~csn] already stamped the new copy born = write = csn:
               the version interval starts at this commit, so frontiers
               below [csn] see only the limbo original. Swap the pointers
               and back-pointers — [packed] now reaches the updated copy,
               the private entry owns the old one. *)
            Indirection.set_ptr ind e1 p2;
            Indirection.set_ptr ind e2 p1;
            Bigarray.Array1.unsafe_set dst_blk.Block.backptr dst_slot e1;
            Bigarray.Array1.unsafe_set src_blk.Block.backptr src_slot e2;
            true
          end)
    in
    if swapped then begin
      (* Retire the old copy through the ordinary free path (limbo, death
         stamp [csn], grace period). [e2]'s incarnation bump is harmless —
         the reference never escaped. *)
      ignore (free ~csn t fresh : bool);
      true
    end
    else begin
      ignore (free t fresh : bool);
      false
    end
  end

(* Perform one relocation under the entry stripe lock: copy the object
   words, publish the target slot, switch the indirection pointer, tombstone
   the source in direct mode. Idempotent through the status field. Readers
   in the moving phase run exactly this to help the compaction thread
   (case (c) of §5.1). *)
let perform_relocation t entry (r : Block.relocation) src =
  let ind = t.rt.Runtime.ind in
  if r.Block.status = Block.Pending then begin
    let tgt = r.Block.target in
    let dst_slot = r.Block.to_slot in
    (* The paper sets the lock bit for the copy's duration; under the stripe
       lock it is redundant but kept for protocol observability. *)
    let w0 = Indirection.inc_word ind entry in
    Indirection.set_inc_word ind entry (w0 lor lock_bit);
    Block.copy_slot ~src ~src_slot:r.Block.from_slot ~dst:tgt ~dst_slot;
    Bigarray.Array1.unsafe_set tgt.Block.backptr dst_slot entry;
    (* Carry the slot incarnation over so stored direct references keep
       matching after the move. *)
    Bigarray.Array1.unsafe_set tgt.Block.slot_inc dst_slot
      (Bigarray.Array1.unsafe_get src.Block.slot_inc r.Block.from_slot land lnot flags_mask);
    (* The CSN stamps travel with the row: a relocated row must stay
       visible to exactly the frontiers that saw it at the source. *)
    Bigarray.Array1.unsafe_set tgt.Block.csn_born dst_slot
      (Bigarray.Array1.unsafe_get src.Block.csn_born r.Block.from_slot);
    Bigarray.Array1.unsafe_set tgt.Block.csn_write dst_slot
      (Bigarray.Array1.unsafe_get src.Block.csn_write r.Block.from_slot);
    Block.set_dir_entry tgt dst_slot (dir_entry ~state:state_valid ~stamp:0);
    ignore (Atomic.fetch_and_add tgt.Block.valid_count 1 : int);
    Indirection.set_ptr ind entry (pack_ptr ~block:tgt.Block.id ~slot:dst_slot);
    (* Unfreeze/unlock; in direct mode the source slot becomes a tombstone
       with the forwarding flag set in the same store (§6). *)
    let w = Indirection.inc_word ind entry in
    Indirection.set_inc_word ind entry (w land lnot (frozen_bit lor lock_bit));
    (match t.mode with
    | Indirect -> ()
    | Direct ->
      let sw = Bigarray.Array1.unsafe_get src.Block.slot_inc r.Block.from_slot in
      Bigarray.Array1.unsafe_set src.Block.slot_inc r.Block.from_slot
        ((sw land lnot (frozen_bit lor lock_bit)) lor forward_bit));
    r.Block.status <- Block.Moved
  end

(* §5.1's dereference_object frozen path: distinguish the freezing epoch
   (case a), the waiting phase (case b: bail the object out) and the moving
   phase (case c: help relocate). *)
let resolve_frozen t entry =
  let rt = t.rt in
  let ind = rt.Runtime.ind in
  let here () =
    let p = Indirection.ptr ind entry in
    Some (Registry.get rt.Runtime.registry (ptr_block p), ptr_slot p)
  in
  if Epoch.local_epoch rt.Runtime.epoch <> Atomic.get rt.Runtime.next_relocation_epoch then
    here ()
  else if not (Atomic.get rt.Runtime.in_moving_phase) then begin
    Runtime.with_entry_lock rt entry (fun () ->
        let w = Indirection.inc_word ind entry in
        if w land frozen_bit <> 0 then begin
          let p = Indirection.ptr ind entry in
          let blk = Registry.get rt.Runtime.registry (ptr_block p) in
          mark_reloc_failed blk (ptr_slot p);
          Indirection.set_inc_word ind entry (w land lnot frozen_bit)
        end);
    here ()
  end
  else begin
    Runtime.with_entry_lock rt entry (fun () ->
        let w = Indirection.inc_word ind entry in
        if w land frozen_bit <> 0 then begin
          let p = Indirection.ptr ind entry in
          let blk = Registry.get rt.Runtime.registry (ptr_block p) in
          let bail () =
            mark_reloc_failed blk (ptr_slot p);
            Indirection.set_inc_word ind entry (w land lnot frozen_bit);
            obs_incr t Smc_obs.c_reloc_bails
          in
          match Block.find_reloc blk ~slot:(ptr_slot p) with
          | Some r -> begin
            (* Help only once the group has actually entered its moving
               state; otherwise bail the object out as in the waiting
               phase, keeping pre-relocation group reads consistent. *)
            match blk.Block.group with
            | Some g when Atomic.get g.Block.g_state = Block.group_moving ->
              perform_relocation t entry r blk;
              obs_incr t Smc_obs.c_reloc_helps
            | Some _ | None -> bail ()
          end
          | None -> bail ()
        end);
    here ()
  end

let resolve t packed =
  if packed < 0 then None
  else begin
    let p = Indirection.live_ptr t.rt.Runtime.ind (ref_entry packed) (ref_inc packed) in
    if p >= 0 then Some (Registry.get_fast t.rt.Runtime.registry (ptr_block p), ptr_slot p)
    else if p = -1 then None
    else resolve_frozen t (ref_entry packed)
  end

(* Stored SMC-to-SMC direct pointer resolution (§6): fast path is a single
   masked comparison against the slot's incarnation word; tombstones forward
   through the back-pointer; frozen slots fall back to the entry protocol. *)
let resolve_direct t packed =
  if packed < 0 then None
  else begin
    let registry = t.rt.Runtime.registry in
    let inc = direct_inc packed in
    let rec follow block_id slot hops =
      if hops > 8 then None
      else begin
        let blk = Registry.get_fast registry block_id in
        let w = Bigarray.Array1.unsafe_get blk.Block.slot_inc slot in
        if w land (flags_mask lor direct_inc_mask) = inc then Some (blk, slot)
        else if w land direct_inc_mask <> inc then None
        else if w land forward_bit <> 0 then begin
          let entry = Bigarray.Array1.unsafe_get blk.Block.backptr slot in
          if entry < 0 then None
          else begin
            let p = Indirection.ptr t.rt.Runtime.ind entry in
            follow (ptr_block p) (ptr_slot p) (hops + 1)
          end
        end
        else begin
          let entry = Bigarray.Array1.unsafe_get blk.Block.backptr slot in
          if entry < 0 then None else resolve_frozen t entry
        end
      end
    in
    follow (direct_block packed) (direct_slot packed) 0
  end

(* Allocation-free resolution: returns a packed (block, slot) location, or
   -1 when the object is gone. This is what the generated unsafe query code
   uses on its hot join paths. *)
let resolve_loc t packed =
  if packed < 0 then -1
  else begin
    let p = Indirection.live_ptr t.rt.Runtime.ind (ref_entry packed) (ref_inc packed) in
    if p >= -1 then p
    else begin
      match resolve_frozen t (ref_entry packed) with
      | Some (blk, slot) -> pack_ptr ~block:blk.Block.id ~slot
      | None -> -1
    end
  end

let resolve_direct_loc t packed =
  if packed < 0 then -1
  else begin
    let blk = Registry.get_fast t.rt.Runtime.registry (direct_block packed) in
    let slot = direct_slot packed in
    let w = Bigarray.Array1.unsafe_get blk.Block.slot_inc slot in
    if w land (flags_mask lor direct_inc_mask) = direct_inc packed then
      pack_ptr ~block:blk.Block.id ~slot
    else begin
      match resolve_direct t packed with
      | Some (b, s) -> pack_ptr ~block:b.Block.id ~slot:s
      | None -> -1
    end
  end

let block_of_loc t loc = Registry.get_fast t.rt.Runtime.registry (ptr_block loc)

let direct_ref_of t packed =
  match resolve t packed with
  | None -> Constants.null_ref
  | Some (blk, slot) ->
    let inc = Bigarray.Array1.unsafe_get blk.Block.slot_inc slot land direct_inc_mask in
    pack_direct ~block:blk.Block.id ~slot ~inc

let indirect_ref_of_slot t blk slot =
  let entry = Bigarray.Array1.unsafe_get blk.Block.backptr slot in
  if entry < 0 then Constants.null_ref
  else begin
    let inc = Indirection.inc_word t.rt.Runtime.ind entry land inc_mask in
    pack_ref ~entry ~inc
  end

let scan_block blk ~f =
  let n = blk.Block.nslots in
  for slot = 0 to n - 1 do
    if Constants.dir_state (Bigarray.Array1.unsafe_get blk.Block.dir slot) = state_valid then
      f blk slot
  done

(* Snapshot visibility at CSN frontier [csn]: a valid row is visible when it
   was born at or before the frontier; a limbo/quarantined row is still
   visible when it was born before and died after — removal stamps
   ([stamp_write]/[free]) are written before the directory flip, so a state
   observed as dead always comes with its death CSN. Free slots carry no
   row. Epoch pinning (the view holds a critical section opened before the
   frontier was read) keeps visible limbo rows from being recycled. *)
let slot_visible_at blk slot ~csn =
  let state = Constants.dir_state (Bigarray.Array1.unsafe_get blk.Block.dir slot) in
  if state = state_valid then Bigarray.Array1.unsafe_get blk.Block.csn_born slot <= csn
  else if state = state_limbo || state = state_quarantined then
    Bigarray.Array1.unsafe_get blk.Block.csn_born slot <= csn
    && Bigarray.Array1.unsafe_get blk.Block.csn_write slot > csn
  else false

let scan_block_at blk ~csn ~f =
  let n = blk.Block.nslots in
  for slot = 0 to n - 1 do
    if slot_visible_at blk slot ~csn then f blk slot
  done

(* Compaction-group claim tickets (§5.2). An enumeration — sequential or
   partitioned across domains — must process each group exactly once and as
   a whole. The ticket is a CAS-maintained list of claimed groups shared by
   every worker of one enumeration: the first worker to reach any member of
   a group wins the claim and scans the whole group; everyone else skips
   the group's blocks. Groups are few (compaction forms a handful at a
   time), so a list is cheaper than a hash table here. *)
type claims = Block.group list Atomic.t

let no_claims () = Atomic.make []

let claim_group claims g =
  let rec go () =
    let seen = Atomic.get claims in
    if List.memq g seen then false
    else if Atomic.compare_and_set claims seen (g :: seen) then true
    else go ()
  in
  go ()

let group_claimed claims g = List.memq g (Atomic.get claims)

(* Block-access protocol of §5.2: the claiming enumeration processes the
   whole group — either pre-relocation under the group's query counter
   (waiting phase) or post-relocation from the target block. An aborted
   group reverts to plain source scanning. *)
let scan_group g ~scan =
  let scan_sources () = Array.iter scan g.Block.sources in
  let rec attempt () =
    let state = Atomic.get g.Block.g_state in
    if state = Block.group_done then scan g.Block.g_target
    else if state = Block.group_moving then begin
      let rec wait () =
        let s = Atomic.get g.Block.g_state in
        if s = Block.group_moving then begin
          Domain.cpu_relax ();
          wait ()
        end
        else s
      in
      if wait () = Block.group_done then scan g.Block.g_target else scan_sources ()
    end
    else if state = Block.group_pending then begin
      ignore (Atomic.fetch_and_add g.Block.g_queries 1 : int);
      if Atomic.get g.Block.g_state <> Block.group_pending then begin
        ignore (Atomic.fetch_and_add g.Block.g_queries (-1) : int);
        attempt ()
      end
      else
        Fun.protect
          ~finally:(fun () -> ignore (Atomic.fetch_and_add g.Block.g_queries (-1) : int))
          scan_sources
    end
    else scan_sources () (* aborted *)
  in
  attempt ()

(* One element of a view snapshot, under the claim protocol: grouped blocks
   go through the ticket, ungrouped live blocks are scanned directly. *)
let scan_view_element ~claims blk ~scan =
  match blk.Block.group with
  | Some g -> if claim_group claims g then scan_group g ~scan
  | None -> if not blk.Block.dead then scan blk

(* [wrap] delimits each independently-consistent unit of the enumeration: a
   single live block, or a whole compaction group (whose members must be
   processed in the same thread-local epoch, §5.2). *)
let iter_blocks_scanned ?(wrap = fun f -> f ()) t ~scan =
  let { v_blocks = blocks; v_n = n } = t.view in
  let claims = no_claims () in
  for i = 0 to n - 1 do
    let blk = blocks.(i) in
    match blk.Block.group with
    | Some g -> if not (group_claimed claims g) then wrap (fun () -> scan_view_element ~claims blk ~scan)
    | None -> if not blk.Block.dead then wrap (fun () -> scan blk)
  done

let iter_valid t ~f = iter_blocks_scanned t ~scan:(fun blk -> scan_block blk ~f)

let iter_visible t ~csn ~f = iter_blocks_scanned t ~scan:(fun blk -> scan_block_at blk ~csn ~f)

(* §4: the query compiler chooses the critical-section granularity — the
   whole query (default; allows holding raw pointers in intermediates) or a
   single memory block (shorter grace periods, so the memory manager can
   advance epochs and reclaim concurrently with long enumerations). Each
   block — or whole compaction group — is scanned in its own critical
   section here. *)
let iter_valid_per_block t ~f =
  let epoch = t.rt.Runtime.epoch in
  let wrap body =
    Epoch.enter_critical epoch;
    Fun.protect ~finally:(fun () -> Epoch.exit_critical epoch) body
  in
  iter_blocks_scanned ~wrap t ~scan:(fun blk -> scan_block blk ~f)

(* Block-hoisted enumeration: [on_block] runs once per block and returns the
   per-slot body, so generated-style query code can hoist the block's raw
   data array, placement arithmetic and field offsets out of the loop —
   direct pointer access into the block, as in the paper's §4 listing. *)
let iter_valid_hoisted t ~on_block =
  iter_blocks_scanned t ~scan:(fun blk ->
      let body = on_block blk in
      let dir = blk.Block.dir in
      let n = blk.Block.nslots in
      for slot = 0 to n - 1 do
        if Constants.dir_state (Bigarray.Array1.unsafe_get dir slot) = state_valid then
          body slot
      done)

(* Batch-at-a-time enumeration (ROADMAP item 4): gather the surviving slot
   indices of a block into a selection vector — an int Bigarray, the
   convention shared with [Smc_query.Batch] — so a vectorized consumer can
   fill whole column chunks per batch instead of paying a closure call (and,
   on the per-block path, a critical-section entry plus incarnation
   validation) per element. The gather loop is branchless: every candidate
   slot is written at the output cursor, which advances only when the slot
   survives the directory (or CSN-visibility) test. *)
type sel = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let make_sel cap = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max 1 cap)

let scan_block_batch ?csn blk ~start ~sel =
  let cap = Bigarray.Array1.dim sel in
  let n = blk.Block.nslots in
  let k = ref 0 in
  let slot = ref start in
  (match csn with
  | None ->
    let dir = blk.Block.dir in
    while !k < cap && !slot < n do
      let s = !slot in
      Bigarray.Array1.unsafe_set sel !k s;
      k := !k + Bool.to_int (Constants.dir_state (Bigarray.Array1.unsafe_get dir s) = state_valid);
      slot := s + 1
    done
  | Some csn ->
    while !k < cap && !slot < n do
      let s = !slot in
      Bigarray.Array1.unsafe_set sel !k s;
      k := !k + Bool.to_int (slot_visible_at blk s ~csn);
      slot := s + 1
    done);
  (!k, !slot)

(* Drive [scan_block_batch] over a whole view snapshot. [on_batch blk count]
   sees the first [count] entries of [sel] filled with surviving slots of
   [blk]; it must consume (or copy) them before returning — the buffer is
   reused for the next batch. [wrap] delimits each view element exactly as
   in [iter_blocks_scanned]. *)
let iter_batches ?csn ?wrap t ~sel ~on_batch =
  iter_blocks_scanned ?wrap t ~scan:(fun blk ->
      let n = blk.Block.nslots in
      let start = ref 0 in
      while !start < n do
        let count, next = scan_block_batch ?csn blk ~start:!start ~sel in
        if count > 0 then on_batch blk count;
        start := next
      done)

(* The §4 amortization the vectorized engine is built on: one epoch critical
   section per view element (block or whole compaction group), with every
   batch of that element — gather *and* the caller's column fill — inside
   it. Compare [iter_valid_per_block], which pays the same critical section
   per block but still a closure call per row. *)
let iter_valid_batches ?csn t ~sel ~on_batch =
  let epoch = t.rt.Runtime.epoch in
  let wrap body =
    Epoch.enter_critical epoch;
    Fun.protect ~finally:(fun () -> Epoch.exit_critical epoch) body
  in
  iter_batches ?csn ~wrap t ~sel ~on_batch

let add_direct_referrer t ~from field =
  with_lock t (fun () -> t.direct_referrers <- (from, field) :: t.direct_referrers)

let fold_live_blocks t ~init ~f =
  let { v_blocks = blocks; v_n = n } = t.view in
  let acc = ref init in
  for i = 0 to n - 1 do
    let blk = blocks.(i) in
    if not blk.Block.dead then acc := f !acc blk
  done;
  !acc

let valid_count t =
  fold_live_blocks t ~init:0 ~f:(fun acc blk -> acc + Atomic.get blk.Block.valid_count)

let block_count t = fold_live_blocks t ~init:0 ~f:(fun acc _ -> acc + 1)

let off_heap_words t =
  fold_live_blocks t ~init:0 ~f:(fun acc blk -> acc + Block.off_heap_words blk)

let stats_limbo t =
  fold_live_blocks t ~init:0 ~f:(fun acc blk -> acc + Atomic.get blk.Block.limbo_count)

let request_compaction t = Atomic.set t.compaction_requested true
