(* Compaction-pass boundaries at which the chaos harness may inject work
   (frees, epoch churn, queries) to exercise the bail-out/retry paths. *)
type compaction_phase =
  | Phase_selected (* candidates reserved, groups about to form *)
  | Phase_frozen (* all group members carry the frozen bit *)
  | Phase_waiting (* stepping the global epoch towards relocation *)
  | Phase_moving (* relocation sweep in progress *)
  | Phase_completed (* groups done, sources dead, before pointer fixup *)

(* Transaction-commit boundaries at which the chaos harness may inject
   crashes (snapshot the WAL image) or concurrent work. *)
type txn_phase =
  | Txn_staged (* operations staged privately, before validation *)
  | Txn_validated (* write-write validation passed, before apply *)
  | Txn_applied (* mutations published, before the WAL batch append *)
  | Txn_logged (* WAL commit record appended (per group-commit policy) *)

type t = {
  epoch : Epoch.t;
  ind : Indirection.t;
  registry : Registry.t;
  locks : Smc_util.Striped_lock.t;
  next_relocation_epoch : int Atomic.t;
  in_moving_phase : bool Atomic.t;
  active_views : int Atomic.t;
  (* Open snapshot views across the runtime. A non-zero count vetoes the
     compactor's moving phase (which destroys limbo rows a view may still
     read); the view side increments and then spins while [in_moving_phase]
     is set, the compactor sets [in_moving_phase] and then checks this —
     the store-load pairing means one of them always sees the other. *)
  next_context_id : int Atomic.t;
  mutable inc_quarantine_limit : int;
  quarantined_slots : int Atomic.t;
  obs : Smc_obs.t;
  mutable on_alloc : (unit -> unit) option;
      (* Fault-injection hook, fired at the start of every allocation
         attempt (including retries after a block release). *)
  mutable on_compaction_phase : (compaction_phase -> unit) option;
      (* Fault-injection hook, fired by Compaction.run at phase
         boundaries. *)
  mutable on_queue_check : (Block.t -> unit) option;
      (* Fault-injection hook, fired by Context.maybe_queue between its
         unlocked pre-check and taking the context lock — the TOCTOU
         window a writer re-acquiring the block races through. *)
  mutable on_txn_phase : (txn_phase -> unit) option;
      (* Fault-injection hook, fired by Collection.transact at commit
         boundaries; the crash harness snapshots WAL images here. *)
}

let create ?max_threads () =
  let obs = Smc_obs.create ~label:"runtime" () in
  {
    epoch = Epoch.create ?max_threads ~obs ();
    ind = Indirection.create ~obs ();
    registry = Registry.create ();
    locks = Smc_util.Striped_lock.create ~stripes:256 ();
    next_relocation_epoch = Atomic.make (-1);
    in_moving_phase = Atomic.make false;
    active_views = Atomic.make 0;
    next_context_id = Atomic.make 0;
    inc_quarantine_limit = Constants.inc_mask;
    quarantined_slots = Atomic.make 0;
    obs;
    on_alloc = None;
    on_compaction_phase = None;
    on_queue_check = None;
    on_txn_phase = None;
  }

let fire_alloc_hook t = match t.on_alloc with None -> () | Some f -> f ()

let fire_compaction_hook t phase =
  Smc_obs.incr t.obs Smc_obs.c_compaction_phases;
  match t.on_compaction_phase with None -> () | Some f -> f phase

let fire_queue_hook t blk =
  match t.on_queue_check with None -> () | Some f -> f blk

let fire_txn_hook t phase = match t.on_txn_phase with None -> () | Some f -> f phase

let tid t = Epoch.thread_id t.epoch

let with_entry_lock t entry f = Smc_util.Striped_lock.with_lock t.locks entry f

let with_slot_lock t ~block ~slot f =
  Smc_util.Striped_lock.with_lock t.locks ((block lsl 20) lxor slot) f
