(** The global indirection table (§3.2 of the paper).

    Object references do not point at memory slots directly; they point at an
    entry in this table, which holds (a) the object's incarnation word —
    incarnation number plus the frozen/lock/forward protocol bits — and (b) a
    packed pointer to the object's current block and slot. The indirection
    makes compaction possible: relocating an object updates one table entry
    instead of every reference in the application.

    Entries live in off-heap chunks (int Bigarrays), so the table itself adds
    no garbage-collection load. Freed entries recycle through per-thread
    caches backed by a global free list; an entry is recycled only when its
    slot is reclaimed (two epochs after removal), so any stale reference held
    across the grace period still sees a bumped incarnation and reads as
    null. In direct mode (§6) the incarnation moves into the block and the
    table entry keeps only the pointer. *)

type t

val create : ?chunk_bits:int -> ?obs:Smc_obs.t -> unit -> t
(** [chunk_bits] sets entries per chunk to [2^chunk_bits] (default 16).
    When [obs] is given, entry mints/recycles/frees are counted on it. *)

val alloc : t -> tid:int -> int
(** Allocates an entry index for thread slot [tid]. The entry's incarnation
    word is preserved from its previous life (it only ever increases). *)

val free : t -> tid:int -> int -> unit
(** Returns an entry to thread [tid]'s cache for reuse. *)

val inc_word : t -> int -> int
(** Current incarnation word (incarnation + flag bits). *)

val live_ptr : t -> int -> int -> int
(** [live_ptr t entry inc] fuses the incarnation check with the pointer
    load: the packed pointer on a clean match, [-1] when dead, [min_int]
    when protocol flags are set (slow path required). *)

val set_inc_word : t -> int -> int -> unit
(** Raw store; callers serialise read-modify-write via striped locks. *)

val ptr : t -> int -> int
(** Packed block+slot pointer ({!Constants.pack_ptr}). *)

val set_ptr : t -> int -> int -> unit

val capacity : t -> int
(** Total entries ever materialised (for memory accounting). *)

val restore_reserve : t -> capacity:int -> unit
(** Restore-time only: materialise chunks for entries [0, capacity) and
    raise the never-used watermark to at least [capacity], so entry indices
    named by a snapshot or WAL can be assigned verbatim without colliding
    with freshly minted entries. The table must not be shared yet. *)

val words : t -> int
(** Off-heap words consumed by the table. *)

val iter_free : t -> f:(int -> unit) -> unit
(** Audit accessor: every recycled-but-unallocated entry (global free stack
    plus per-thread caches). Only meaningful at a quiescent point — an
    invariant sweep uses it to prove no free entry is still reachable from a
    slot back-pointer. *)

val free_total : t -> int
(** Audit accessor: number of entries currently sitting in free stores. *)
