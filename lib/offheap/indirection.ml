type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type chunk = { inc : int_ba; ptr : int_ba }

type cache = { mutable items : int array; mutable count : int }

type t = {
  chunk_bits : int;
  chunk_mask : int;
  mutable chunks : chunk array; (* grow-only; old snapshots stay valid *)
  bump : int Atomic.t; (* next never-used entry index *)
  grow_lock : Mutex.t;
  free_lock : Mutex.t;
  mutable free_list : int array; (* global stack of recycled entries *)
  mutable free_count : int;
  caches : cache array; (* per thread-slot recycled-entry caches *)
  obs : Smc_obs.t option;
}

let oincr obs c = match obs with Some o -> Smc_obs.incr o c | None -> ()

let cache_refill = 256
let cache_spill = 1024
let max_threads = 128

let make_chunk n =
  let inc = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  let ptr = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.fill inc 0;
  Bigarray.Array1.fill ptr Constants.null_ref;
  { inc; ptr }

let create ?(chunk_bits = 16) ?obs () =
  let n = 1 lsl chunk_bits in
  {
    chunk_bits;
    chunk_mask = n - 1;
    chunks = [| make_chunk n |];
    bump = Atomic.make 0;
    grow_lock = Mutex.create ();
    free_lock = Mutex.create ();
    free_list = Array.make 4096 0;
    free_count = 0;
    caches = Array.init max_threads (fun _ -> { items = Array.make cache_spill 0; count = 0 });
    obs;
  }

let chunk_of t idx = t.chunks.(idx lsr t.chunk_bits)

let ensure_chunk t idx =
  let ci = idx lsr t.chunk_bits in
  if ci >= Array.length t.chunks then begin
    Mutex.lock t.grow_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.grow_lock)
      (fun () ->
        while ci >= Array.length t.chunks do
          let old = t.chunks in
          let next = Array.make (Array.length old + 1) old.(0) in
          Array.blit old 0 next 0 (Array.length old);
          next.(Array.length old) <- make_chunk (1 lsl t.chunk_bits);
          t.chunks <- next
        done)
  end

let pop_global t cache =
  Mutex.lock t.free_lock;
  let took =
    let n = min cache_refill t.free_count in
    Array.blit t.free_list (t.free_count - n) cache.items 0 n;
    t.free_count <- t.free_count - n;
    n
  in
  Mutex.unlock t.free_lock;
  cache.count <- took;
  took > 0

let alloc t ~tid =
  let cache = t.caches.(tid) in
  if cache.count > 0 || pop_global t cache then begin
    cache.count <- cache.count - 1;
    oincr t.obs Smc_obs.c_entries_recycled;
    cache.items.(cache.count)
  end
  else begin
    let idx = Atomic.fetch_and_add t.bump 1 in
    ensure_chunk t idx;
    oincr t.obs Smc_obs.c_entries_minted;
    idx
  end

let push_global t cache =
  Mutex.lock t.free_lock;
  let keep = cache.count / 2 in
  let spill = cache.count - keep in
  if t.free_count + spill > Array.length t.free_list then begin
    let next = Array.make (max (2 * Array.length t.free_list) (t.free_count + spill)) 0 in
    Array.blit t.free_list 0 next 0 t.free_count;
    t.free_list <- next
  end;
  Array.blit cache.items keep t.free_list t.free_count spill;
  t.free_count <- t.free_count + spill;
  Mutex.unlock t.free_lock;
  cache.count <- keep

let free t ~tid entry =
  let cache = t.caches.(tid) in
  if cache.count >= cache_spill then push_global t cache;
  cache.items.(cache.count) <- entry;
  cache.count <- cache.count + 1;
  oincr t.obs Smc_obs.c_entries_freed

let inc_word t idx =
  Bigarray.Array1.unsafe_get (chunk_of t idx).inc (idx land t.chunk_mask)

(* Fused liveness check + pointer load: one chunk resolution for the hot
   dereference path. Returns the packed pointer when the incarnation
   matches and no protocol flags are set, [-1] when the object is dead, and
   [min_int] when frozen/locked/forwarded (caller takes the slow path). *)
let live_ptr t idx inc =
  let c = chunk_of t idx in
  let off = idx land t.chunk_mask in
  let w = Bigarray.Array1.unsafe_get c.inc off in
  if w land (Constants.flags_mask lor Constants.inc_mask) = inc then
    Bigarray.Array1.unsafe_get c.ptr off
  else if w land Constants.inc_mask = inc then min_int
  else -1

let set_inc_word t idx v =
  Bigarray.Array1.unsafe_set (chunk_of t idx).inc (idx land t.chunk_mask) v

let ptr t idx = Bigarray.Array1.unsafe_get (chunk_of t idx).ptr (idx land t.chunk_mask)

let set_ptr t idx v =
  Bigarray.Array1.unsafe_set (chunk_of t idx).ptr (idx land t.chunk_mask) v

let capacity t = Atomic.get t.bump

(* Restore-time only: raise the never-used watermark so the entry indices
   named by a snapshot (and by WAL records logged after it) can be assigned
   verbatim without ever colliding with freshly minted entries. The table
   must still be private to the restoring thread. *)
let restore_reserve t ~capacity:cap =
  if cap > 0 then begin
    ensure_chunk t (cap - 1);
    let rec raise_to () =
      let cur = Atomic.get t.bump in
      if cur < cap && not (Atomic.compare_and_set t.bump cur cap) then raise_to ()
    in
    raise_to ()
  end

let words t = 2 * Array.length t.chunks * (1 lsl t.chunk_bits)

(* Audit accessors: enumerate every recycled-but-unallocated entry (global
   free stack plus the per-thread caches) so an invariant sweep can prove
   that no free entry is still reachable from a slot back-pointer. Only
   meaningful at a quiescent point. *)
let iter_free t ~f =
  Mutex.lock t.free_lock;
  for i = 0 to t.free_count - 1 do
    f t.free_list.(i)
  done;
  Mutex.unlock t.free_lock;
  Array.iter
    (fun cache ->
      for i = 0 to cache.count - 1 do
        f cache.items.(i)
      done)
    t.caches

let free_total t =
  Mutex.lock t.free_lock;
  let n = t.free_count in
  Mutex.unlock t.free_lock;
  Array.fold_left (fun acc cache -> acc + cache.count) n t.caches
