(** Plain-text table rendering for experiment output. Every benchmark prints
    its figure/table through this module so EXPERIMENTS.md rows can be pasted
    verbatim. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Rows must have as many cells as there are columns. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** Convenience: formats a single pre-joined row using ['|'] separators. *)

val to_string : t -> string
val print : t -> unit

val to_json : t -> string
(** The table as one JSON object [{"title", "columns", "rows"}], cells as
    the same strings {!to_string} renders — for machine-readable benchmark
    artifacts. *)

val cell_float : float -> string
(** Standard float formatting used across benches. *)
