type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns in %S"
         (List.length cells) (List.length t.columns) t.title);
  t.rows <- cells :: t.rows

let add_rowf t fmt =
  Printf.ksprintf
    (fun s -> add_row t (List.map String.trim (String.split_on_char '|' s)))
    fmt

let cell_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 100.0 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.3f" x

let to_string t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let render row =
    Buffer.add_string buf (String.concat "  " (List.mapi pad row));
    Buffer.add_char buf '\n'
  in
  render t.columns;
  Buffer.add_string buf (String.make (Array.fold_left ( + ) (2 * (ncols - 1)) widths) '-');
  Buffer.add_char buf '\n';
  List.iter render rows;
  Buffer.contents buf

let print t = print_string (to_string t); flush stdout

(* Hand-rolled JSON so the artifact writer needs no dependencies. Cells are
   kept as the exact strings the plain-text renderer shows. *)
let json_escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_json t =
  let buf = Buffer.create 1024 in
  let strings sep xs emit =
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf sep;
        emit x)
      xs
  in
  Buffer.add_string buf "{\"title\":";
  json_escape buf t.title;
  Buffer.add_string buf ",\"columns\":[";
  strings "," t.columns (json_escape buf);
  Buffer.add_string buf "],\"rows\":[";
  strings ","
    (List.rev t.rows)
    (fun row ->
      Buffer.add_char buf '[';
      strings "," row (json_escape buf);
      Buffer.add_char buf ']');
  Buffer.add_string buf "]}";
  Buffer.contents buf
