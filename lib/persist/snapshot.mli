(** Block-image snapshots of self-managed collections.

    Because SMC objects live in type-stable, self-describing off-heap
    blocks, a collection is made durable by streaming those blocks
    {e verbatim} — object store, slot directory, back-pointers and
    incarnation plane — plus the collection's indirection-table slice.
    There is no per-object serialisation step: the write path is a
    sequence of word copies, and the restore path rebuilds blocks,
    registry, indirection and free-list state from the images and
    re-attaches declared indexes by rebuilding them from live rows.

    File layout: 8 magic bytes, then checksummed sections
    ([len][crc32][payload]): a manifest (format version, collection name,
    self-describing layout spec + schema hash, storage knobs, block/row
    counts, WAL cut point, index declarations, git revision, timestamp),
    the indirection incarnation slice, and one section per block. Every
    section is verified against its CRC before any field is interpreted;
    damage raises {!Pio.Corrupt} with a descriptive message.

    Consistency contract: {!write} is a {e mutator-quiescent} operation on
    the snapshotted collection — same contract as the invariant audit.
    Concurrent readers are fine; in indirect mode concurrent {e
    compaction} is also fine (blocks are claimed through the §5.2 group
    protocol, and references are entry-stable so relocation does not
    invalidate stored ref fields). Direct mode additionally requires a
    compaction-quiescent point, because stored direct pointers are
    canonicalised (tombstones collapsed) as the image is written.

    Restrictions, by design: references {e between} collections cannot be
    captured by a single-collection snapshot — foreign [Ref] fields are
    nulled on restore and documented as unsupported. Incarnation words are
    preserved verbatim, so references that were stale before the snapshot
    stay stale after restore. *)

type manifest = {
  version : int;
  collection : string;
  type_name : string;
  schema_hash : int;  (** CRC-32 of the serialised layout spec *)
  placement : Smc_offheap.Block.placement;
  mode : Smc_offheap.Context.mode;
  slots_per_block : int;
  reclaim_threshold : float;
  block_count : int;
  row_count : int;
  quarantined : int;
  ind_capacity : int;
  wal_name : string;  (** [""] when no WAL was attached *)
  wal_lsn : int;  (** first LSN {e not} covered by the snapshot; -1 if none *)
  indexes : (string * string) list;  (** declared (index name, column) pairs *)
  git_rev : string;
  timestamp : float;  (** unix seconds at write time *)
}

val write :
  ?wal:Wal.t ->
  ?indexes:(string * string) list ->
  path:string ->
  Smc.Collection.t ->
  manifest * int
(** Snapshots the collection to [path] and returns the manifest plus bytes
    written. When [wal] is given it is flushed and its current LSN
    recorded as the recovery cut point, so replay skips records the image
    already contains. [indexes] declares (name, column) pairs to re-attach
    on restore; each column must be a fixed-width or string field of the
    layout. Raises [Invalid_argument] on bad index declarations, or in
    direct mode when compaction is in progress (see the module contract). *)

val read_manifest : string -> manifest
(** Reads and verifies just the manifest section. *)

type restored = {
  r_rt : Smc_offheap.Runtime.t;
  r_coll : Smc.Collection.t;
  r_indexes : (string * Smc_index.Hash_index.t) list;
      (** rebuilt from live rows, in manifest order *)
  r_manifest : manifest;
  r_bytes : int;  (** snapshot bytes read *)
  r_replayed : int;  (** WAL records applied over the image *)
  r_torn_dropped : int;  (** torn final WAL records discarded (0 or 1) *)
}

val replay_wal : Smc.Collection.t -> path:string -> cut:int -> int * int
(** Replays the log tail (records at or after LSN [cut]; [cut = -1] means
    the log's base) over the collection, applying bare records directly
    and transaction frames atomically on their commit record — an
    unterminated or orphaned frame is discarded as a unit. Every applied
    op fires the collection's attached index/view hooks exactly once, at
    the same points as the live mutation paths, so maintenance structures
    attached {e before} the replay stay current through it; {!restore}
    replays before reattaching indexes, so its replay fires none. Returns
    [(applied, torn_dropped)]. Raises {!Pio.Corrupt} on mid-log corruption
    or a snapshot/log gap. Single-threaded recovery use only: no
    concurrent mutators, probes or compaction. *)

val restore : ?wal:string -> path:string -> unit -> restored
(** Reads the image back into a fresh runtime and collection: blocks are
    rebuilt with their object stores, slot directories and incarnation
    words intact, the indirection slice is replayed so every persisted
    reference resolves to the same entry and incarnation, limbo slots
    collapse to free, quarantined slots stay quarantined, and unreferenced
    entries seed the free stores. When [wal] names a log file, its tail
    (records at or after the manifest's cut point) is replayed before the
    free stores are seeded; a torn final record is discarded and counted.
    Declared indexes are re-attached (bulk-rebuilt from live rows).

    Raises {!Pio.Corrupt} on any checksum mismatch, structural
    inconsistency (counts that disagree with the images, unknown slot
    states, out-of-range entries), WAL/snapshot gaps, or mid-log
    corruption. The result has {e not} been audited — run
    [Smc_check.Persist_check] (or [Smc_check.Audit] +
    [Smc_check.Obs_check]) for the full invariant sweep. *)
