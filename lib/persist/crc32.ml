let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc bytes ~pos ~len =
  let table = Lazy.force table in
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    let byte = Char.code (Bytes.unsafe_get bytes i) in
    crc := Array.unsafe_get table ((!crc lxor byte) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc

let digest bytes ~pos ~len = update 0xFFFFFFFF bytes ~pos ~len lxor 0xFFFFFFFF

let digest_string s =
  digest (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
