(** Binary IO primitives shared by the snapshot and WAL formats.

    Everything on disk is little-endian: ints are 8-byte words (an OCaml
    [int] sign-extended through [Int64]), strings are length-prefixed raw
    bytes. Data travels in {e sections} — [len][crc32][payload] — built in
    a [Buffer] and checksummed as a unit, so readers verify integrity
    before interpreting a single field. *)

exception Corrupt of string
(** Raised by every reader on truncation, checksum mismatch, or a field
    that cannot be what it claims. The message names the file and the
    section, so a failed restore is diagnosable. *)

val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** [corrupt fmt ...] raises {!Corrupt} with a formatted message. *)

(** {1 Writing} *)

val add_int : Buffer.t -> int -> unit
val add_str : Buffer.t -> string -> unit
val add_float : Buffer.t -> float -> unit

val write_section : out_channel -> Buffer.t -> int
(** Writes [len][crc][payload] and returns the bytes written (header
    included). The buffer is not cleared. *)

(** {1 Reading} *)

type reader = { bytes : Bytes.t; mutable pos : int; what : string }

val read_section : in_channel -> what:string -> ?max_len:int -> unit -> reader * int
(** Reads one section, verifies its checksum and returns a cursor over the
    payload plus the bytes consumed. Raises {!Corrupt} on truncation, an
    implausible length, or a checksum mismatch. *)

val get_int : reader -> int
val get_float : reader -> float
val get_str : reader -> string
val expect_end : reader -> unit
(** Raises {!Corrupt} unless the cursor consumed the whole payload. *)
