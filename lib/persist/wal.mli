(** Write-ahead redo log for a self-managed collection.

    An append-only log of the collection's mutations between snapshots:
    [add] records carry the new object's indirection entry, incarnation
    and full slot image (logical field order, placement-independent);
    [remove] records carry the entry and incarnation being freed; [store]
    records (logged explicitly via {!log_store}) capture an in-place field
    update. Replaying the log tail over the last snapshot reconstructs the
    collection exactly — entry indices and incarnations are reproduced
    verbatim, so references stored inside objects keep resolving.

    Committed transactions arrive through the [wh_on_txn] hook as one
    batch and are framed atomically: a [Txn_begin] record carrying the
    declared op count, the body records (same wire format as bare ops), and
    a [Txn_commit] record — all appended under one mutex hold, so neither a
    bare record nor a snapshot cut can land inside the frame. Replay
    ({!Snapshot.replay_wal}) buffers a frame and applies it only on its
    commit record; an unterminated frame — crash before the commit record
    reached disk — is discarded as a unit.

    Records are captured through {!Smc.Collection.attach_wal} hooks, so
    they may be appended from any domain; a mutex serialises appends.
    Group commit: records accumulate in the channel buffer and are flushed
    and [fsync]ed in batches under the {!sync_policy} — [Every n] is the
    classic group commit, [Always] pays one fsync per record, [Manual]
    syncs only on {!flush}/{!close}.

    On-disk format: 8 magic bytes, a checksummed header section (log name,
    base LSN), then one checksummed record per mutation. Recovery
    ({!scan}) verifies every checksum; a truncated or corrupt {e final}
    record is a torn tail — dropped and counted — while corruption with
    further records behind it raises {!Pio.Corrupt} (the shared corruption
    exception of this library). *)

type sync_policy =
  | Always  (** flush + fsync after every record *)
  | Every of int  (** flush + fsync once per [n] records (group commit) *)
  | Manual  (** sync only on {!flush} and {!close} *)

type t

val create : ?sync:sync_policy -> ?base:int -> path:string -> name:string -> unit -> t
(** Creates (truncating) a log at [path]. [base] (default 0) is the LSN of
    the first record — rotate a log after a snapshot by creating the next
    one with [~base:(lsn old)]. Default [sync] is [Every 256]. *)

val attach : t -> Smc.Collection.t -> unit
(** Registers redo hooks via {!Smc.Collection.attach_wal} so every
    [add]/[remove] is captured. Raises [Invalid_argument] on direct-mode
    collections or when the collection already has a WAL. *)

val detach : t -> Smc.Collection.t -> unit

val log_store : t -> Smc.Collection.t -> Smc.Ref.t -> word:int -> value:int -> unit
(** Logs an in-place store of logical word [word] of the object behind the
    reference — call it after mutating a live object's scalar field.
    Raises [Invalid_argument] on a null/dead reference. *)

val flush : t -> unit
(** Forces buffered records to disk (flush + fsync). *)

val lsn : t -> int
(** LSN of the next record to be appended (base + records written). *)

val name : t -> string

val path : t -> string

val close : t -> unit
(** {!flush} then closes the file. The writer must not be used after. *)

(** {1 Recovery} *)

type record =
  | Add of { entry : int; inc : int; words : int array }
  | Remove of { entry : int; inc : int }
  | Store of { entry : int; inc : int; word : int; value : int }
  | Txn_begin of { txn_id : int; n_ops : int }
      (** opens a transaction frame declaring its body length *)
  | Txn_commit of { txn_id : int }
      (** seals the frame; the body is atomic from here *)

type log_info = {
  li_name : string;
  li_base : int;  (** LSN of the first record in the file *)
  li_records : int;  (** intact records delivered to [f] *)
  li_torn_dropped : int;  (** 1 if a torn final record was discarded *)
}

val scan : path:string -> f:(lsn:int -> record -> unit) -> log_info
(** Streams every intact record in order. A truncated or checksum-failed
    final record is discarded (torn tail); the same damage followed by
    further bytes raises {!Pio.Corrupt}, as does a bad magic or header. *)
