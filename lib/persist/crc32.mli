(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).

    Every section of a snapshot file and every WAL record carries one of
    these digests, so a flipped bit anywhere in the payload is detected
    before any of it is interpreted. Table-driven, no dependencies. *)

val digest : Bytes.t -> pos:int -> len:int -> int
(** Finalised CRC of [len] bytes starting at [pos], in [0, 2^32). *)

val digest_string : string -> int
