exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let add_int buf v = Buffer.add_int64_le buf (Int64.of_int v)

let add_str buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let add_float buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)

let write_section oc buf =
  let payload = Buffer.to_bytes buf in
  let len = Bytes.length payload in
  let crc = Crc32.digest payload ~pos:0 ~len in
  let header = Buffer.create 16 in
  add_int header len;
  add_int header crc;
  Buffer.output_buffer oc header;
  output_bytes oc payload;
  16 + len

type reader = { bytes : Bytes.t; mutable pos : int; what : string }

let really_read ic n ~what =
  let b = Bytes.create n in
  (try really_input ic b 0 n
   with End_of_file -> corrupt "%s: truncated (wanted %d more bytes)" what n);
  b

let int_of_bytes b off = Int64.to_int (Bytes.get_int64_le b off)

let read_section ic ~what ?(max_len = 1 lsl 31) () =
  let header = really_read ic 16 ~what in
  let len = int_of_bytes header 0 in
  let crc = int_of_bytes header 8 in
  if len < 0 || len > max_len then corrupt "%s: implausible section length %d" what len;
  let payload = really_read ic len ~what in
  let actual = Crc32.digest payload ~pos:0 ~len in
  if actual <> crc then
    corrupt "%s: checksum mismatch (stored %08x, computed %08x)" what crc actual;
  ({ bytes = payload; pos = 0; what }, 16 + len)

let get_int r =
  if r.pos + 8 > Bytes.length r.bytes then corrupt "%s: truncated int field" r.what;
  let v = int_of_bytes r.bytes r.pos in
  r.pos <- r.pos + 8;
  v

let get_float r =
  if r.pos + 8 > Bytes.length r.bytes then corrupt "%s: truncated float field" r.what;
  let v = Int64.float_of_bits (Bytes.get_int64_le r.bytes r.pos) in
  r.pos <- r.pos + 8;
  v

let get_str r =
  let n = get_int r in
  if n < 0 || r.pos + n > Bytes.length r.bytes then
    corrupt "%s: truncated string field (claimed %d bytes)" r.what n;
  let s = Bytes.sub_string r.bytes r.pos n in
  r.pos <- r.pos + n;
  s

let expect_end r =
  if r.pos <> Bytes.length r.bytes then
    corrupt "%s: %d trailing bytes after payload" r.what (Bytes.length r.bytes - r.pos)
