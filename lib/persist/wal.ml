open Smc_offheap

let magic = "SMCWAL01"

type sync_policy = Always | Every of int | Manual

type t = {
  path : string;
  name : string;
  oc : out_channel;
  sync : sync_policy;
  lock : Mutex.t;
  mutable next_lsn : int;
  mutable unsynced : int;
  mutable obs : Smc_obs.t option; (* the attached collection's runtime counters *)
  mutable closed : bool;
}

let op_add = 1
let op_remove = 2
let op_store = 3
let op_txn_begin = 4
let op_txn_commit = 5

let oincr t c = match t.obs with Some o -> Smc_obs.incr o c | None -> ()

let create ?(sync = Every 256) ?(base = 0) ~path ~name () =
  (match sync with
  | Every n when n <= 0 -> invalid_arg "Wal.create: Every n requires n > 0"
  | _ -> ());
  let oc = open_out_bin path in
  output_string oc magic;
  let header = Buffer.create 64 in
  Pio.add_str header name;
  Pio.add_int header base;
  ignore (Pio.write_section oc header : int);
  (* Make the magic + header durable before handing the log out. Leaving
     them in the channel buffer (with [unsynced = 0], so [flush]/[close] on
     an empty log are no-ops) meant a crash after [create] could leave a
     file shorter than the magic on disk — which recovery treats as hard
     [Pio.Corrupt] instead of an empty log. *)
  Out_channel.flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  { path; name; oc; sync; lock = Mutex.create (); next_lsn = base; unsynced = 0;
    obs = None; closed = false }

let sync_locked t =
  if t.unsynced > 0 then begin
    Out_channel.flush t.oc;
    Unix.fsync (Unix.descr_of_out_channel t.oc);
    t.unsynced <- 0;
    oincr t Smc_obs.c_persist_wal_syncs
  end

let append_locked t payload =
  if t.closed then invalid_arg "Wal: log is closed";
  ignore (Pio.write_section t.oc payload : int);
  t.next_lsn <- t.next_lsn + 1;
  t.unsynced <- t.unsynced + 1;
  oincr t Smc_obs.c_persist_wal_appends

let apply_policy_locked t =
  match t.sync with
  | Always -> sync_locked t
  | Every n -> if t.unsynced >= n then sync_locked t
  | Manual -> ()

let append t payload =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      append_locked t payload;
      apply_policy_locked t)

let flush t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> if not t.closed then sync_locked t)

let lsn t =
  Mutex.lock t.lock;
  let v = t.next_lsn in
  Mutex.unlock t.lock;
  v

let name t = t.name
let path t = t.path

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if not t.closed then begin
        sync_locked t;
        close_out t.oc;
        t.closed <- true
      end)

let add_payload (coll : Smc.Collection.t) r blk slot =
  let packed = Smc.Ref.to_packed r in
  let sw = coll.Smc.Collection.layout.Layout.slot_words in
  let payload = Buffer.create (32 + (8 * sw)) in
  Pio.add_int payload op_add;
  Pio.add_int payload (Constants.ref_entry packed);
  Pio.add_int payload (Constants.ref_inc packed);
  Pio.add_int payload sw;
  for w = 0 to sw - 1 do
    Pio.add_int payload (Block.get_word blk ~slot ~word:w)
  done;
  payload

let remove_payload r =
  let packed = Smc.Ref.to_packed r in
  let payload = Buffer.create 32 in
  Pio.add_int payload op_remove;
  Pio.add_int payload (Constants.ref_entry packed);
  Pio.add_int payload (Constants.ref_inc packed);
  payload

let store_payload r ~word ~value =
  let packed = Smc.Ref.to_packed r in
  let payload = Buffer.create 48 in
  Pio.add_int payload op_store;
  Pio.add_int payload (Constants.ref_entry packed);
  Pio.add_int payload (Constants.ref_inc packed);
  Pio.add_int payload word;
  Pio.add_int payload value;
  payload

let log_add t coll r blk slot = append t (add_payload coll r blk slot)
let log_remove t r = append t (remove_payload r)

let log_store t (coll : Smc.Collection.t) r ~word ~value =
  if not (Smc.Collection.mem coll r) then
    invalid_arg "Wal.log_store: reference is null or dead";
  if word < 0 || word >= coll.Smc.Collection.layout.Layout.slot_words then
    invalid_arg "Wal.log_store: word offset outside the layout";
  append t (store_payload r ~word ~value)

(* A committed transaction's batch: Txn_begin (carrying the declared op
   count), the body records, Txn_commit — appended under ONE mutex hold, so
   no bare append and no snapshot cut ([Snapshot.write] reads the LSN under
   this same mutex) can land inside the frame. The body reuses the bare
   payload builders; replay distinguishes framed from bare records purely
   by position. *)
let log_txn t (coll : Smc.Collection.t) ~txn_id ops =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let header = Buffer.create 32 in
      Pio.add_int header op_txn_begin;
      Pio.add_int header txn_id;
      Pio.add_int header (List.length ops);
      append_locked t header;
      List.iter
        (fun (op : Smc.Collection.logged_op) ->
          append_locked t
            (match op with
            | Smc.Collection.L_add (r, blk, slot) -> add_payload coll r blk slot
            | Smc.Collection.L_remove r -> remove_payload r
            | Smc.Collection.L_store (r, word, value) -> store_payload r ~word ~value))
        ops;
      let footer = Buffer.create 16 in
      Pio.add_int footer op_txn_commit;
      Pio.add_int footer txn_id;
      append_locked t footer;
      apply_policy_locked t)

let attach t (coll : Smc.Collection.t) =
  Smc.Collection.attach_wal coll
    {
      Smc.Collection.wh_name = t.name;
      wh_on_add = (fun r blk slot -> log_add t coll r blk slot);
      wh_on_remove = (fun r -> log_remove t r);
      (* the collection fires this inside the store's critical section with
         the row alive, so skip log_store's liveness precheck *)
      wh_on_store = (fun r ~word ~value -> append t (store_payload r ~word ~value));
      wh_on_txn = (fun ~txn_id ops -> log_txn t coll ~txn_id ops);
    };
  t.obs <- Some coll.Smc.Collection.rt.Runtime.obs

let detach _t coll = Smc.Collection.detach_wal coll

(* ------------------------------------------------------------------ *)
(* Recovery *)

type record =
  | Add of { entry : int; inc : int; words : int array }
  | Remove of { entry : int; inc : int }
  | Store of { entry : int; inc : int; word : int; value : int }
  | Txn_begin of { txn_id : int; n_ops : int }
  | Txn_commit of { txn_id : int }

type log_info = {
  li_name : string;
  li_base : int;
  li_records : int;
  li_torn_dropped : int;
}

let parse_record (r : Pio.reader) =
  let op = Pio.get_int r in
  let record =
    if op = op_add then begin
      let entry = Pio.get_int r in
      let inc = Pio.get_int r in
      let n = Pio.get_int r in
      if n < 0 || n > 1 lsl 20 then Pio.corrupt "%s: implausible add width %d" r.Pio.what n;
      let words = Array.init n (fun _ -> Pio.get_int r) in
      Add { entry; inc; words }
    end
    else if op = op_remove then begin
      let entry = Pio.get_int r in
      let inc = Pio.get_int r in
      Remove { entry; inc }
    end
    else if op = op_store then begin
      let entry = Pio.get_int r in
      let inc = Pio.get_int r in
      let word = Pio.get_int r in
      let value = Pio.get_int r in
      Store { entry; inc; word; value }
    end
    else if op = op_txn_begin then begin
      let txn_id = Pio.get_int r in
      let n_ops = Pio.get_int r in
      if n_ops < 0 || n_ops > 1 lsl 30 then
        Pio.corrupt "%s: implausible transaction op count %d" r.Pio.what n_ops;
      Txn_begin { txn_id; n_ops }
    end
    else if op = op_txn_commit then begin
      let txn_id = Pio.get_int r in
      Txn_commit { txn_id }
    end
    else Pio.corrupt "%s: unknown record op %d" r.Pio.what op
  in
  Pio.expect_end r;
  record

(* A record that cannot be read intact *terminates* the log. If it reaches
   end-of-file it is a torn tail — the crash hit mid-append — and is
   silently discarded, exactly once. The same damage with further bytes
   behind it cannot be a torn append and is hard corruption. *)
let scan ~path ~f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let size = in_channel_length ic in
      let what = Printf.sprintf "WAL %s" path in
      let m = Bytes.create (String.length magic) in
      (try really_input ic m 0 (String.length magic)
       with End_of_file -> Pio.corrupt "%s: shorter than the magic" what);
      if not (String.equal (Bytes.to_string m) magic) then
        Pio.corrupt "%s: bad magic %S" what (Bytes.to_string m);
      let header, _ = Pio.read_section ic ~what:(what ^ " header") () in
      let li_name = Pio.get_str header in
      let li_base = Pio.get_int header in
      Pio.expect_end header;
      let records = ref 0 in
      let torn = ref 0 in
      let torn_tail () = torn := 1 in
      let rec go lsn =
        let start = pos_in ic in
        if start < size then begin
          if size - start < 16 then torn_tail ()
          else begin
            let header = Bytes.create 16 in
            really_input ic header 0 16;
            let len = Int64.to_int (Bytes.get_int64_le header 0) in
            let crc = Int64.to_int (Bytes.get_int64_le header 8) in
            if len < 0 || len > 1 lsl 30 then
              (* an implausible length field can't prove there are records
                 behind it: treat as a torn final append *)
              torn_tail ()
            else if size - (start + 16) < len then torn_tail ()
            else begin
              let payload = Bytes.create len in
              really_input ic payload 0 len;
              let actual = Crc32.digest payload ~pos:0 ~len in
              if actual <> crc then begin
                if start + 16 + len = size then torn_tail ()
                else
                  Pio.corrupt
                    "%s: record %d checksum mismatch (stored %08x, computed %08x) with \
                     records behind it"
                    what lsn crc actual
              end
              else begin
                let r = { Pio.bytes = payload; pos = 0; what = Printf.sprintf "%s record %d" what lsn } in
                f ~lsn (parse_record r);
                incr records;
                go (lsn + 1)
              end
            end
          end
        end
      in
      go li_base;
      { li_name; li_base; li_records = !records; li_torn_dropped = !torn })
