open Smc_offheap
module BA1 = Bigarray.Array1

let magic = "SMCSNAP1"
let format_version = 1

type manifest = {
  version : int;
  collection : string;
  type_name : string;
  schema_hash : int;
  placement : Block.placement;
  mode : Context.mode;
  slots_per_block : int;
  reclaim_threshold : float;
  block_count : int;
  row_count : int;
  quarantined : int;
  ind_capacity : int;
  wal_name : string;
  wal_lsn : int;
  indexes : (string * string) list;
  git_rev : string;
  timestamp : float;
}

(* ------------------------------------------------------------------ *)
(* Layout spec: the self-describing schema embedded in the manifest    *)

let tag_int = 0
let tag_dec = 1
let tag_date = 2
let tag_bool = 3
let tag_float = 4
let tag_str = 5
let tag_ref = 6

let layout_spec_string (layout : Layout.t) =
  let buf = Buffer.create 256 in
  Pio.add_str buf layout.Layout.type_name;
  Pio.add_int buf (Array.length layout.Layout.fields);
  Array.iter
    (fun (f : Layout.field) ->
      Pio.add_str buf f.Layout.name;
      match f.Layout.ftype with
      | Layout.Int -> Pio.add_int buf tag_int
      | Layout.Dec -> Pio.add_int buf tag_dec
      | Layout.Date -> Pio.add_int buf tag_date
      | Layout.Bool -> Pio.add_int buf tag_bool
      | Layout.Float -> Pio.add_int buf tag_float
      | Layout.Str cap ->
        Pio.add_int buf tag_str;
        Pio.add_int buf cap
      | Layout.Ref target ->
        Pio.add_int buf tag_ref;
        Pio.add_str buf target)
    layout.Layout.fields;
  Buffer.contents buf

let layout_of_spec_string ~what s =
  let r = { Pio.bytes = Bytes.unsafe_of_string s; pos = 0; what } in
  let type_name = Pio.get_str r in
  let n = Pio.get_int r in
  if n <= 0 || n > 10_000 then Pio.corrupt "%s: implausible field count %d" what n;
  let spec =
    List.init n (fun _ ->
        let name = Pio.get_str r in
        let tag = Pio.get_int r in
        let ftype =
          if tag = tag_int then Layout.Int
          else if tag = tag_dec then Layout.Dec
          else if tag = tag_date then Layout.Date
          else if tag = tag_bool then Layout.Bool
          else if tag = tag_float then Layout.Float
          else if tag = tag_str then Layout.Str (Pio.get_int r)
          else if tag = tag_ref then Layout.Ref (Pio.get_str r)
          else Pio.corrupt "%s: unknown field type tag %d" what tag
        in
        (name, ftype))
  in
  Pio.expect_end r;
  try Layout.create ~name:type_name spec
  with Invalid_argument m -> Pio.corrupt "%s: layout rejected (%s)" what m

let foreign_ref_fields (layout : Layout.t) =
  Array.to_list layout.Layout.fields
  |> List.filter (fun (f : Layout.field) ->
         match f.Layout.ftype with
         | Layout.Ref target -> not (String.equal target layout.Layout.type_name)
         | _ -> false)

let self_ref_fields (layout : Layout.t) =
  Array.to_list layout.Layout.fields
  |> List.filter (fun (f : Layout.field) ->
         match f.Layout.ftype with
         | Layout.Ref target -> String.equal target layout.Layout.type_name
         | _ -> false)

(* ------------------------------------------------------------------ *)
(* Manifest section — written twice (placeholder, then patched in place
   once the block count is known), so serialisation must be a pure
   function of the record producing a byte-length that does not depend on
   the counts. *)

let manifest_to_buffer ~spec m =
  let buf = Buffer.create 512 in
  Pio.add_int buf m.version;
  Pio.add_str buf m.collection;
  Pio.add_str buf spec;
  Pio.add_int buf m.schema_hash;
  Pio.add_int buf (match m.placement with Block.Row -> 0 | Block.Columnar -> 1);
  Pio.add_int buf (match m.mode with Context.Indirect -> 0 | Context.Direct -> 1);
  Pio.add_int buf m.slots_per_block;
  Pio.add_float buf m.reclaim_threshold;
  Pio.add_int buf m.block_count;
  Pio.add_int buf m.row_count;
  Pio.add_int buf m.quarantined;
  Pio.add_int buf m.ind_capacity;
  Pio.add_str buf m.wal_name;
  Pio.add_int buf m.wal_lsn;
  Pio.add_int buf (List.length m.indexes);
  List.iter
    (fun (name, column) ->
      Pio.add_str buf name;
      Pio.add_str buf column)
    m.indexes;
  Pio.add_str buf m.git_rev;
  Pio.add_float buf m.timestamp;
  buf

let parse_manifest (r : Pio.reader) =
  let what = r.Pio.what in
  let version = Pio.get_int r in
  if version <> format_version then
    Pio.corrupt "%s: unsupported format version %d (this build reads %d)" what version
      format_version;
  let collection = Pio.get_str r in
  let spec = Pio.get_str r in
  let schema_hash = Pio.get_int r in
  let computed = Crc32.digest_string spec in
  if computed <> schema_hash then
    Pio.corrupt "%s: schema hash mismatch (stored %08x, computed %08x)" what schema_hash
      computed;
  let layout = layout_of_spec_string ~what:(what ^ " layout") spec in
  let placement =
    match Pio.get_int r with
    | 0 -> Block.Row
    | 1 -> Block.Columnar
    | p -> Pio.corrupt "%s: unknown placement %d" what p
  in
  let mode =
    match Pio.get_int r with
    | 0 -> Context.Indirect
    | 1 -> Context.Direct
    | m -> Pio.corrupt "%s: unknown reference mode %d" what m
  in
  let slots_per_block = Pio.get_int r in
  if slots_per_block <= 0 || slots_per_block > Constants.max_direct_slots then
    Pio.corrupt "%s: implausible slots_per_block %d" what slots_per_block;
  let reclaim_threshold = Pio.get_float r in
  let block_count = Pio.get_int r in
  let row_count = Pio.get_int r in
  let quarantined = Pio.get_int r in
  let ind_capacity = Pio.get_int r in
  if block_count < 0 || row_count < 0 || quarantined < 0 || ind_capacity < 0 then
    Pio.corrupt "%s: negative counts" what;
  let wal_name = Pio.get_str r in
  let wal_lsn = Pio.get_int r in
  let n_indexes = Pio.get_int r in
  if n_indexes < 0 || n_indexes > 10_000 then
    Pio.corrupt "%s: implausible index count %d" what n_indexes;
  let indexes =
    List.init n_indexes (fun _ ->
        let name = Pio.get_str r in
        let column = Pio.get_str r in
        (name, column))
  in
  let git_rev = Pio.get_str r in
  let timestamp = Pio.get_float r in
  Pio.expect_end r;
  ( {
      version;
      collection;
      type_name = layout.Layout.type_name;
      schema_hash;
      placement;
      mode;
      slots_per_block;
      reclaim_threshold;
      block_count;
      row_count;
      quarantined;
      ind_capacity;
      wal_name;
      wal_lsn;
      indexes;
      git_rev;
      timestamp;
    },
    layout )

let git_rev () =
  match Sys.getenv_opt "SMC_GIT_REV" with
  | Some r -> r
  | None -> (
    let read_line_of f =
      try
        let ic = open_in f in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> String.trim (input_line ic))
      with _ -> ""
    in
    let rec find_git dir =
      let cand = Filename.concat dir ".git" in
      if Sys.file_exists cand then Some cand
      else
        let parent = Filename.dirname dir in
        if String.equal parent dir then None else find_git parent
    in
    match find_git (Sys.getcwd ()) with
    | None -> "unknown"
    | Some git ->
      let head = read_line_of (Filename.concat git "HEAD") in
      if String.length head > 5 && String.equal (String.sub head 0 5) "ref: " then begin
        let r =
          read_line_of (Filename.concat git (String.sub head 5 (String.length head - 5)))
        in
        if String.equal r "" then "unknown" else r
      end
      else if String.equal head "" then "unknown"
      else head)

(* ------------------------------------------------------------------ *)
(* Writer *)

(* Stored direct pointers are canonicalised into the serialised image:
   tombstone chains collapse to the object's current location, so the
   restored file never references a dead forwarding block. Requires the
   compaction-quiescent precondition checked in [write]. *)
let direct_patches ~(ctx : Context.t) (blk : Block.t) self_refs =
  if self_refs = [] then []
  else begin
    let patches = ref [] in
    let dir = blk.Block.dir in
    for slot = 0 to blk.Block.nslots - 1 do
      if Constants.dir_state (BA1.unsafe_get dir slot) = Constants.state_valid then
        List.iter
          (fun (f : Layout.field) ->
            let w = Block.get_word blk ~slot ~word:f.Layout.word in
            if w >= 0 then begin
              let loc = Context.resolve_direct_loc ctx w in
              let v =
                if loc < 0 then Constants.null_ref
                else begin
                  let tb = Context.block_of_loc ctx loc in
                  let ts = Constants.ptr_slot loc in
                  let inc = BA1.get tb.Block.slot_inc ts land Constants.direct_inc_mask in
                  Constants.pack_direct ~block:tb.Block.id ~slot:ts ~inc
                end
              in
              patches := (Block.word_index blk ~slot ~word:f.Layout.word, v) :: !patches
            end)
          self_refs
    done;
    List.rev !patches
  end

let serialize_block ~(ctx : Context.t) buf (blk : Block.t) self_refs =
  Buffer.clear buf;
  let n = blk.Block.nslots in
  let dir = blk.Block.dir
  and backptr = blk.Block.backptr
  and slot_inc = blk.Block.slot_inc
  and data = blk.Block.data in
  let valid = ref 0 and quar = ref 0 in
  for s = 0 to n - 1 do
    let st = Constants.dir_state (BA1.unsafe_get dir s) in
    if st = Constants.state_valid then incr valid
    else if st = Constants.state_quarantined then incr quar
  done;
  Pio.add_int buf blk.Block.id;
  Pio.add_int buf n;
  Pio.add_int buf !valid;
  Pio.add_int buf !quar;
  for s = 0 to n - 1 do
    Pio.add_int buf (BA1.unsafe_get dir s)
  done;
  for s = 0 to n - 1 do
    Pio.add_int buf (BA1.unsafe_get backptr s)
  done;
  for s = 0 to n - 1 do
    Pio.add_int buf (BA1.unsafe_get slot_inc s land lnot Constants.flags_mask)
  done;
  let dn = BA1.dim data in
  for i = 0 to dn - 1 do
    Pio.add_int buf (BA1.unsafe_get data i)
  done;
  let patches = direct_patches ~ctx blk self_refs in
  Pio.add_int buf (List.length patches);
  List.iter
    (fun (phys, v) ->
      Pio.add_int buf phys;
      Pio.add_int buf v)
    patches;
  (!valid, !quar)

let write ?wal ?(indexes = []) ~path (coll : Smc.Collection.t) =
  let ctx = coll.Smc.Collection.ctx in
  let rt = coll.Smc.Collection.rt in
  let layout = coll.Smc.Collection.layout in
  List.iter
    (fun (name, column) ->
      match Layout.field_opt layout column with
      | None ->
        invalid_arg
          (Printf.sprintf "Snapshot.write: index %S names unknown column %S" name column)
      | Some f -> (
        match f.Layout.ftype with
        | Layout.Float | Layout.Ref _ ->
          invalid_arg
            (Printf.sprintf "Snapshot.write: index %S on column %S: unsupported key type"
               name column)
        | _ -> ()))
    indexes;
  if indexes <> [] && ctx.Context.mode = Context.Direct then
    invalid_arg "Snapshot.write: indexes require indirect mode";
  let spec = layout_spec_string layout in
  let schema_hash = Crc32.digest_string spec in
  let timestamp = Unix.gettimeofday () in
  let epoch = rt.Runtime.epoch in
  Epoch.enter_critical epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit_critical epoch) @@ fun () ->
  (* Epoch barrier: wait (bounded) for every other in-critical thread to
     reach the current global epoch, so critical sections that began before
     the snapshot point have drained. Mutators on this collection must be
     quiescent by contract; this barrier covers in-flight readers. *)
  ignore
    (Epoch.wait_all_reached epoch
       ~except:(Epoch.thread_id epoch)
       ~epoch:(Epoch.global epoch) ~max_spins:1_000_000 ()
      : bool);
  let wal_name, wal_lsn =
    match wal with
    | Some w ->
      Wal.flush w;
      (Wal.name w, Wal.lsn w)
    | None -> ("", -1)
  in
  let view =
    Mutex.lock ctx.Context.lock;
    let v = ctx.Context.view in
    Mutex.unlock ctx.Context.lock;
    v
  in
  let self_refs = self_ref_fields layout in
  (if ctx.Context.mode = Context.Direct && self_refs <> [] then begin
     let grouped = ref false in
     for i = 0 to view.Context.v_n - 1 do
       if view.Context.v_blocks.(i).Block.group <> None then grouped := true
     done;
     if !grouped || Atomic.get rt.Runtime.in_moving_phase then
       invalid_arg
         "Snapshot.write: a direct-mode snapshot requires a compaction-quiescent point \
          (stored direct pointers are canonicalised while writing)"
   end);
  let base =
    {
      version = format_version;
      collection = coll.Smc.Collection.name;
      type_name = layout.Layout.type_name;
      schema_hash;
      placement = ctx.Context.placement;
      mode = ctx.Context.mode;
      slots_per_block = ctx.Context.slots_per_block;
      reclaim_threshold = ctx.Context.reclaim_threshold;
      block_count = 0;
      row_count = 0;
      quarantined = 0;
      ind_capacity = Indirection.capacity rt.Runtime.ind;
      wal_name;
      wal_lsn;
      indexes;
      git_rev = git_rev ();
      timestamp;
    }
  in
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  output_string oc magic;
  let manifest_pos = pos_out oc in
  ignore (Pio.write_section oc (manifest_to_buffer ~spec base) : int);
  let ind = rt.Runtime.ind in
  let cap = base.ind_capacity in
  let ibuf = Buffer.create ((8 * cap) + 16) in
  for e = 0 to cap - 1 do
    Pio.add_int ibuf (Indirection.inc_word ind e land Constants.inc_mask)
  done;
  ignore (Pio.write_section oc ibuf : int);
  let blocks = ref 0 and rows = ref 0 and quar = ref 0 in
  let bbuf = Buffer.create (1 lsl 16) in
  let claims = Context.no_claims () in
  let scan blk =
    let v, q = serialize_block ~ctx bbuf blk self_refs in
    ignore (Pio.write_section oc bbuf : int);
    incr blocks;
    rows := !rows + v;
    quar := !quar + q
  in
  for i = 0 to view.Context.v_n - 1 do
    Context.scan_view_element ~claims view.Context.v_blocks.(i) ~scan
  done;
  let m = { base with block_count = !blocks; row_count = !rows; quarantined = !quar } in
  let end_pos = pos_out oc in
  seek_out oc manifest_pos;
  ignore (Pio.write_section oc (manifest_to_buffer ~spec m) : int);
  Out_channel.flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  Smc_obs.incr rt.Runtime.obs Smc_obs.c_persist_snapshots;
  Smc_obs.add rt.Runtime.obs Smc_obs.c_persist_snapshot_bytes end_pos;
  (m, end_pos)

let read_manifest path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let what = Printf.sprintf "snapshot %s" path in
      let m = Bytes.create (String.length magic) in
      (try really_input ic m 0 (String.length magic)
       with End_of_file -> Pio.corrupt "%s: shorter than the magic" what);
      if not (String.equal (Bytes.to_string m) magic) then
        Pio.corrupt "%s: bad magic %S" what (Bytes.to_string m);
      let r, _ = Pio.read_section ic ~what:(what ^ " manifest") () in
      fst (parse_manifest r))

(* ------------------------------------------------------------------ *)
(* Restorer *)

type restored = {
  r_rt : Runtime.t;
  r_coll : Smc.Collection.t;
  r_indexes : (string * Smc_index.Hash_index.t) list;
  r_manifest : manifest;
  r_bytes : int;
  r_replayed : int;
  r_torn_dropped : int;
}

let read_words r n =
  Array.init n (fun _ -> Pio.get_int r)

let load_block ~(ctx : Context.t) ~cap ~entry_seen (r : Pio.reader) map =
  let what = r.Pio.what in
  let old_id = Pio.get_int r in
  if Hashtbl.mem map old_id then Pio.corrupt "%s: duplicate block id %d" what old_id;
  let n = Pio.get_int r in
  if n <> ctx.Context.slots_per_block then
    Pio.corrupt "%s: block has %d slots but the manifest layout uses %d" what n
      ctx.Context.slots_per_block;
  let claimed_valid = Pio.get_int r in
  let claimed_quar = Pio.get_int r in
  let dirw = read_words r n in
  let bpw = read_words r n in
  let siw = read_words r n in
  let blk = Context.new_block_unpublished ctx in
  let dn = BA1.dim blk.Block.data in
  let datw = read_words r dn in
  let npatch = Pio.get_int r in
  if npatch < 0 || npatch > dn then Pio.corrupt "%s: implausible patch count %d" what npatch;
  for _ = 1 to npatch do
    let phys = Pio.get_int r in
    let v = Pio.get_int r in
    if phys < 0 || phys >= dn then Pio.corrupt "%s: patch outside the object store" what;
    datw.(phys) <- v
  done;
  Pio.expect_end r;
  let ind = ctx.Context.rt.Runtime.ind in
  let valid = ref 0 and quar = ref 0 in
  for s = 0 to n - 1 do
    let st = Constants.dir_state dirw.(s) in
    let live = st = Constants.state_valid || st = Constants.state_quarantined in
    if live then begin
      let e = bpw.(s) in
      if e < 0 || e >= cap then
        Pio.corrupt "%s: slot %d references indirection entry %d outside [0, %d)" what s e
          cap;
      if Bytes.get entry_seen e <> '\000' then
        Pio.corrupt "%s: indirection entry %d referenced by two slots" what e;
      Bytes.set entry_seen e '\001';
      BA1.set blk.Block.backptr s e;
      Indirection.set_ptr ind e (Constants.pack_ptr ~block:blk.Block.id ~slot:s);
      if st = Constants.state_valid then begin
        Block.set_dir_entry blk s (Constants.dir_entry ~state:Constants.state_valid ~stamp:0);
        incr valid
      end
      else begin
        Block.set_dir_entry blk s
          (Constants.dir_entry ~state:Constants.state_quarantined ~stamp:0);
        incr quar
      end
    end
    else if st = Constants.state_free || st = Constants.state_limbo then begin
      (* limbo collapses to free: the restored runtime starts at epoch 0
         with no outstanding references into the grace period *)
      Block.set_dir_entry blk s (Constants.dir_entry ~state:Constants.state_free ~stamp:0);
      BA1.set blk.Block.backptr s Constants.null_ref
    end
    else Pio.corrupt "%s: slot %d has unknown state %d" what s st;
    BA1.set blk.Block.slot_inc s (siw.(s) land lnot Constants.flags_mask)
  done;
  for i = 0 to dn - 1 do
    BA1.set blk.Block.data i datw.(i)
  done;
  if !valid <> claimed_valid || !quar <> claimed_quar then
    Pio.corrupt "%s: slot directory disagrees with recorded counts (%d/%d valid, %d/%d \
                 quarantined)"
      what !valid claimed_valid !quar claimed_quar;
  Atomic.set blk.Block.valid_count !valid;
  Hashtbl.add map old_id blk;
  Context.publish_block ctx blk;
  (!valid, !quar)

(* Foreign Ref fields cannot survive a single-collection snapshot (their
   target collection is not in the file) and are nulled; direct-mode self
   references are remapped from old block ids to the freshly minted ones. *)
let fixup_refs ~(ctx : Context.t) (layout : Layout.t) map =
  let foreign = foreign_ref_fields layout in
  let self = self_ref_fields layout in
  let remap_self = ctx.Context.mode = Context.Direct && self <> [] in
  if foreign <> [] || remap_self then begin
    let { Context.v_blocks; v_n } = ctx.Context.view in
    for i = 0 to v_n - 1 do
      let blk = v_blocks.(i) in
      let dir = blk.Block.dir in
      for slot = 0 to blk.Block.nslots - 1 do
        if Constants.dir_state (BA1.unsafe_get dir slot) = Constants.state_valid then begin
          List.iter
            (fun (f : Layout.field) ->
              Block.set_word blk ~slot ~word:f.Layout.word Constants.null_ref)
            foreign;
          if remap_self then
            List.iter
              (fun (f : Layout.field) ->
                let w = Block.get_word blk ~slot ~word:f.Layout.word in
                if w >= 0 then begin
                  let old_b = Constants.direct_block w in
                  match Hashtbl.find_opt map old_b with
                  | Some (nb : Block.t) ->
                    Block.set_word blk ~slot ~word:f.Layout.word
                      (Constants.pack_direct ~block:nb.Block.id
                         ~slot:(Constants.direct_slot w) ~inc:(Constants.direct_inc w))
                  | None ->
                    Pio.corrupt
                      "snapshot: stored direct reference into unknown block %d" old_b
                end)
              self
        end
      done
    done
  end

(* Replaying an add reproduces the original allocation verbatim: a fresh
   slot is allocated normally, then rewired to the *logged* indirection
   entry and incarnation, so references stored anywhere else keep
   resolving. The entry cannot collide with the allocator's mints — the
   watermark was reserved above every entry the log names — and cannot be
   sitting in the free stores, which at this point only hold entries the
   replay itself minted and discarded (all above the reservation). *)
let replay_wal (coll : Smc.Collection.t) ~path ~cut =
  let rt = coll.Smc.Collection.rt in
  let ctx = coll.Smc.Collection.ctx in
  let layout = coll.Smc.Collection.layout in
  let ind = rt.Runtime.ind in
  let what = Printf.sprintf "WAL %s" path in
  let max_entry = ref (-1) in
  let info =
    Wal.scan ~path ~f:(fun ~lsn:_ record ->
        match record with
        | Wal.Add { entry; _ } | Wal.Remove { entry; _ } | Wal.Store { entry; _ } ->
          if entry < 0 then Pio.corrupt "%s: negative indirection entry" what;
          if entry > !max_entry then max_entry := entry
        | Wal.Txn_begin _ | Wal.Txn_commit _ -> ())
  in
  let cut = if cut < 0 then info.Wal.li_base else cut in
  if info.Wal.li_base > cut then
    Pio.corrupt
      "%s: recovery gap — the snapshot covers LSNs below %d but the log starts at %d" what
      cut info.Wal.li_base;
  Indirection.restore_reserve ind
    ~capacity:(max (Indirection.capacity ind) (!max_entry + 1));
  let tid = Runtime.tid rt in
  let foreign = foreign_ref_fields layout in
  let sw = layout.Layout.slot_words in
  let apply_add ~lsn entry inc words =
    if Array.length words <> sw then
      Pio.corrupt "%s: record %d carries %d words for a %d-word layout" what lsn
        (Array.length words) sw;
    let packed = Context.alloc ctx in
    match Context.resolve ctx packed with
    | None -> assert false (* a freshly allocated object cannot be dead *)
    | Some (blk, slot) ->
      for w = 0 to sw - 1 do
        Block.set_word blk ~slot ~word:w words.(w)
      done;
      List.iter
        (fun (f : Layout.field) ->
          Block.set_word blk ~slot ~word:f.Layout.word Constants.null_ref)
        foreign;
      let minted = Constants.ref_entry packed in
      if minted <> entry then begin
        BA1.set blk.Block.backptr slot entry;
        Indirection.free ind ~tid minted
      end;
      Indirection.set_ptr ind entry (Constants.pack_ptr ~block:blk.Block.id ~slot);
      Indirection.set_inc_word ind entry (inc land Constants.inc_mask);
      (* Same firing point as the live add path: fields initialised, the
         logged identity rewired. [restore] replays before any index is
         reattached, so there the list is empty; a caller that attaches
         hooks first (view replay-on-recovery) sees each op exactly once. *)
      (match coll.Smc.Collection.hooks with
      | [] -> ()
      | hooks ->
        let r = Smc.Ref.of_packed (Constants.pack_ref ~entry ~inc) in
        List.iter (fun h -> h.Smc.Collection.ih_on_add r blk slot) hooks)
  in
  let apply_remove ~lsn entry inc =
    let packed = Constants.pack_ref ~entry ~inc in
    match Context.resolve ctx packed with
    | None ->
      Pio.corrupt "%s: record %d removes a dead object (entry %d, incarnation %d)" what lsn
        entry inc
    | Some (blk, slot) ->
      if not (Context.free ctx packed) then
        Pio.corrupt "%s: record %d free failed (entry %d)" what lsn entry;
      (* Collapse the limbo slot immediately: replay is single-threaded on
         a private runtime, so the grace period is vacuous. The entry is
         NOT recycled into the free stores — the log dictates its future,
         and whatever it leaves unused is seeded afterwards. *)
      if Block.slot_state blk slot = Constants.state_limbo then begin
        Block.set_dir_entry blk slot
          (Constants.dir_entry ~state:Constants.state_free ~stamp:0);
        BA1.set blk.Block.backptr slot Constants.null_ref;
        ignore (Atomic.fetch_and_add blk.Block.limbo_count (-1) : int);
        Smc_obs.incr rt.Runtime.obs Smc_obs.c_slot_recycles
      end;
      (* After the free, like the live remove path (lazy staleness). *)
      (match coll.Smc.Collection.hooks with
      | [] -> ()
      | hooks ->
        let r = Smc.Ref.of_packed packed in
        List.iter (fun h -> h.Smc.Collection.ih_on_remove r) hooks)
  in
  let apply_store ~lsn entry inc word value =
    let packed = Constants.pack_ref ~entry ~inc in
    match Context.resolve ctx packed with
    | None ->
      Pio.corrupt "%s: record %d stores into a dead object (entry %d)" what lsn entry
    | Some (blk, slot) ->
      if word < 0 || word >= sw then
        Pio.corrupt "%s: record %d stores outside the layout (word %d)" what lsn word;
      Block.set_word blk ~slot ~word value;
      (match coll.Smc.Collection.hooks with
      | [] -> ()
      | hooks ->
        let r = Smc.Ref.of_packed packed in
        List.iter (fun h -> h.Smc.Collection.ih_on_store r ~word) hooks)
  in
  let applied = ref 0 in
  let apply_op ~lsn record =
    (match record with
    | Wal.Add { entry; inc; words } -> apply_add ~lsn entry inc words
    | Wal.Remove { entry; inc } -> apply_remove ~lsn entry inc
    | Wal.Store { entry; inc; word; value } -> apply_store ~lsn entry inc word value
    | Wal.Txn_begin _ | Wal.Txn_commit _ -> assert false);
    incr applied
  in
  (* Transaction frames are buffered and applied only when their commit
     record arrives with the declared body complete — so an unterminated
     frame (crash before the commit record reached disk) is discarded as a
     unit, never partially applied. A frame can be left unterminated
     mid-log too: the commit append crashed torn, was dropped at the next
     recovery, and the reopened log appended clean records after it. Such
     an orphan body is recognised when anything other than its own commit
     follows a complete body, and skipped; the clean tail still replays.
     (If the body itself was also truncated, its remainder is absorbed as
     buffered ops and dropped with the frame — indistinguishable by
     construction, and equally uncommitted.) A commit record that has no
     matching open frame, or arrives before the declared body is complete,
     cannot be produced by the single-mutex-hold append discipline and is
     hard corruption. *)
  let pending : (int * int * (int * Wal.record) list ref * int ref) option ref = ref None in
  let skipped = ref 0 in
  let skip_pending () =
    match !pending with
    | None -> ()
    | Some _ ->
      pending := None;
      incr skipped
  in
  let committed = ref 0 in
  ignore
    (Wal.scan ~path ~f:(fun ~lsn record ->
         if lsn >= cut then begin
           match record with
           | Wal.Txn_begin { txn_id; n_ops } ->
             skip_pending ();
             pending := Some (txn_id, n_ops, ref [], ref 0)
           | Wal.Txn_commit { txn_id } -> (
             match !pending with
             | Some (id, declared, ops, count) when id = txn_id && !count = declared ->
               List.iter (fun (lsn, r) -> apply_op ~lsn r) (List.rev !ops);
               pending := None;
               incr committed
             | Some (id, declared, _, count) ->
               Pio.corrupt
                 "%s: record %d commits transaction %d but the open frame is %d with %d of \
                  %d body records"
                 what lsn txn_id id !count declared
             | None ->
               Pio.corrupt "%s: record %d commits transaction %d with no open frame" what
                 lsn txn_id)
           | Wal.Add _ | Wal.Remove _ | Wal.Store _ -> (
             match !pending with
             | Some (_, declared, ops, count) when !count < declared ->
               ops := (lsn, record) :: !ops;
               incr count
             | Some _ ->
               (* complete body, but something other than its commit behind
                  it: the frame is an uncommitted orphan — drop it, keep
                  replaying the clean tail *)
               skip_pending ();
               apply_op ~lsn record
             | None -> apply_op ~lsn record)
         end)
      : Wal.log_info);
  skip_pending ();
  Smc_obs.add rt.Runtime.obs Smc_obs.c_persist_wal_replayed !applied;
  Smc_obs.add rt.Runtime.obs Smc_obs.c_persist_torn_drops info.Wal.li_torn_dropped;
  Smc_obs.add rt.Runtime.obs Smc_obs.c_txn_replayed !committed;
  Smc_obs.add rt.Runtime.obs Smc_obs.c_txn_replay_skips !skipped;
  (!applied, info.Wal.li_torn_dropped)

(* Every indirection entry not referenced by a live slot and not already in
   the free stores is handed to them, so the restored allocator recycles
   entries instead of minting forever and the entry-accounting audit
   (used + free = capacity) holds. *)
let seed_free_entries (rt : Runtime.t) (ctx : Context.t) =
  let ind = rt.Runtime.ind in
  let cap = Indirection.capacity ind in
  if cap > 0 then begin
    let state = Bytes.make cap '\000' in
    Indirection.iter_free ind ~f:(fun e -> if e >= 0 && e < cap then Bytes.set state e '\001');
    let { Context.v_blocks; v_n } = ctx.Context.view in
    for i = 0 to v_n - 1 do
      let blk = v_blocks.(i) in
      if not blk.Block.dead then
        for s = 0 to blk.Block.nslots - 1 do
          let e = BA1.get blk.Block.backptr s in
          if e >= 0 && e < cap then Bytes.set state e '\001'
        done
    done;
    let tid = Runtime.tid rt in
    for e = 0 to cap - 1 do
      if Bytes.get state e = '\000' then Indirection.free ind ~tid e
    done
  end

let reattach_indexes (coll : Smc.Collection.t) m =
  List.map
    (fun (name, column) ->
      let f =
        match Layout.field_opt coll.Smc.Collection.layout column with
        | Some f -> f
        | None ->
          Pio.corrupt "snapshot manifest: index %S names unknown column %S" name column
      in
      let key =
        match f.Layout.ftype with
        | Layout.Str _ ->
          Smc_index.Hash_index.Str_key (fun blk slot -> Block.get_string blk ~slot f)
        | Layout.Int | Layout.Dec | Layout.Date | Layout.Bool ->
          Smc_index.Hash_index.Int_key
            (fun blk slot -> Block.get_word blk ~slot ~word:f.Layout.word)
        | Layout.Float | Layout.Ref _ ->
          Pio.corrupt "snapshot manifest: index %S on column %S has an unsupported key type"
            name column
      in
      (name, Smc_index.Hash_index.attach ~name ~key coll))
    m.indexes

let restore ?wal ~path () =
  let what = Printf.sprintf "snapshot %s" path in
  let ic = open_in_bin path in
  let m, rt, coll, bytes =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let bytes = ref 0 in
        let mg = Bytes.create (String.length magic) in
        (try really_input ic mg 0 (String.length magic)
         with End_of_file -> Pio.corrupt "%s: shorter than the magic" what);
        if not (String.equal (Bytes.to_string mg) magic) then
          Pio.corrupt "%s: bad magic %S" what (Bytes.to_string mg);
        bytes := !bytes + String.length magic;
        let mr, n = Pio.read_section ic ~what:(what ^ " manifest") () in
        bytes := !bytes + n;
        let m, layout = parse_manifest mr in
        let rt = Runtime.create () in
        let coll =
          Smc.Collection.create rt ~name:m.collection ~layout ~placement:m.placement
            ~mode:m.mode ~slots_per_block:m.slots_per_block
            ~reclaim_threshold:m.reclaim_threshold ()
        in
        let ctx = coll.Smc.Collection.ctx in
        let ind = rt.Runtime.ind in
        let cap = m.ind_capacity in
        let ir, n = Pio.read_section ic ~what:(what ^ " indirection") () in
        bytes := !bytes + n;
        if Bytes.length ir.Pio.bytes <> 8 * cap then
          Pio.corrupt "%s: indirection section holds %d bytes, manifest promises %d entries"
            what (Bytes.length ir.Pio.bytes) cap;
        Indirection.restore_reserve ind ~capacity:cap;
        for e = 0 to cap - 1 do
          let w = Pio.get_int ir in
          if w < 0 || w > Constants.inc_mask then
            Pio.corrupt "%s: entry %d has implausible incarnation %d" what e w;
          Indirection.set_inc_word ind e w
        done;
        let map = Hashtbl.create (max 16 m.block_count) in
        let entry_seen = Bytes.make (max cap 1) '\000' in
        let rows = ref 0 and quar = ref 0 in
        for i = 0 to m.block_count - 1 do
          let br, n = Pio.read_section ic ~what:(Printf.sprintf "%s block %d" what i) () in
          bytes := !bytes + n;
          let v, q = load_block ~ctx ~cap ~entry_seen br map in
          rows := !rows + v;
          quar := !quar + q
        done;
        if pos_in ic <> in_channel_length ic then
          Pio.corrupt "%s: %d trailing bytes after the last block" what
            (in_channel_length ic - pos_in ic);
        if !rows <> m.row_count then
          Pio.corrupt "%s: restored %d rows, manifest promises %d" what !rows m.row_count;
        if !quar <> m.quarantined then
          Pio.corrupt "%s: restored %d quarantined slots, manifest promises %d" what !quar
            m.quarantined;
        fixup_refs ~ctx layout map;
        (* Credit the event counters with the restored population so the
           derived-invariant balances (allocs - frees = valid, frees =
           retires, quarantine agreement) hold on the new runtime. *)
        let obs = rt.Runtime.obs in
        Smc_obs.add obs Smc_obs.c_allocs (!rows + !quar);
        Smc_obs.add obs Smc_obs.c_frees !quar;
        Smc_obs.add obs Smc_obs.c_retires !quar;
        Smc_obs.add obs Smc_obs.c_quarantines !quar;
        ignore (Atomic.fetch_and_add rt.Runtime.quarantined_slots !quar : int);
        Smc_obs.incr obs Smc_obs.c_persist_restores;
        Smc_obs.add obs Smc_obs.c_persist_restore_bytes !bytes;
        (m, rt, coll, !bytes))
  in
  let replayed, torn =
    match wal with
    | None -> (0, 0)
    | Some wpath -> replay_wal coll ~path:wpath ~cut:m.wal_lsn
  in
  seed_free_entries rt coll.Smc.Collection.ctx;
  let indexes = reattach_indexes coll m in
  {
    r_rt = rt;
    r_coll = coll;
    r_indexes = indexes;
    r_manifest = m;
    r_bytes = bytes;
    r_replayed = replayed;
    r_torn_dropped = torn;
  }
