type t = {
  name : string;
  schema : string array;
  scan : (Value.t array -> unit) -> unit;
}

(* The parallel knob: [domains] ≥ 2 extracts rows with a block-partitioned
   parallel scan (each worker builds a private row list, lists are spliced
   on the caller) and pushes them to [emit] sequentially — consumers stay
   single-threaded. Absent, or ≤ 1, the source scans exactly as before.
   Row order across blocks is unspecified in the parallel case. *)
let of_smc ?pool ?domains coll ~columns =
  let schema = Array.of_list (List.map fst columns) in
  let extractors = Array.of_list (List.map snd columns) in
  let extract blk slot = Array.map (fun e -> e blk slot) extractors in
  let parallel = match domains with Some d when d > 1 -> true | _ -> false in
  let scan emit =
    if parallel then
      List.iter emit
        (Smc_parallel.Par_scan.fold_valid_par ?pool ?domains coll.Smc.Collection.ctx
           ~init:(fun () -> [])
           ~f:(fun acc blk slot -> extract blk slot :: acc)
           ~combine:(fun a b -> List.rev_append b a))
    else Smc.Collection.iter coll ~f:(fun blk slot -> emit (extract blk slot))
  in
  { name = coll.Smc.Collection.name; schema; scan }

let of_array ~name ~schema rows =
  { name; schema = Array.of_list schema; scan = (fun emit -> Array.iter emit rows) }

let of_fun ~name ~schema scan = { name; schema = Array.of_list schema; scan }

let column_index t col =
  let rec go i =
    if i >= Array.length t.schema then raise Not_found
    else if String.equal t.schema.(i) col then i
    else go (i + 1)
  in
  go 0
