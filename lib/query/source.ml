type index_info = {
  ix_name : string;
  ix_column : string;
  ix_probe : Value.t -> (Value.t array -> unit) -> unit;
  ix_accepts : Value.t -> bool;
}

type t = {
  name : string;
  schema : string array;
  scan : (Value.t array -> unit) -> unit;
  indexes : index_info list;
}

(* Constant values the planner may route through an index of the given key
   kind. The conversion mirrors the key encoding: ints and dates (epoch
   days) are int keys, strings are string keys; anything else — Null,
   decimals, booleans — is unindexable ([ix_accepts] = false), so the
   planner leaves such predicates on the scan path and the IndexJoin
   executors fall back to a hash build for such left keys (Null joins
   Null under HashJoin's structural equality; an index probe could never
   reproduce that). *)
let key_of_value kind v =
  match (kind, v) with
  | `Int, Value.Int n -> Some (Smc_index.Hash_index.K_int n)
  | `Int, Value.Date d -> Some (Smc_index.Hash_index.K_int d)
  | `Str, Value.Str s -> Some (Smc_index.Hash_index.K_str s)
  | _ -> None

(* The parallel knob: [domains] ≥ 2 extracts rows with a block-partitioned
   parallel scan (each worker builds a private row list, lists are spliced
   on the caller) and pushes them to [emit] sequentially — consumers stay
   single-threaded. Absent, or ≤ 1, the source scans exactly as before.
   Row order across blocks is unspecified in the parallel case.

   [view] runs every scan against an open snapshot view instead of current
   state: the plan reads one stable CSN frontier regardless of concurrent
   committers. The view must stay open while the source is consumed, and
   index access paths are rejected — index probes validate against current
   state and would disagree with the frozen frontier. *)
let of_smc ?pool ?domains ?view ?(indexes = []) coll ~columns =
  (match view with
  | Some v when indexes <> [] ->
    ignore (Smc.Collection.view_csn v : int);
    invalid_arg
      (Printf.sprintf
         "Source.of_smc: collection %S: snapshot views and index access paths are \
          mutually exclusive (probes read current state, not the view frontier)"
         coll.Smc.Collection.name)
  | _ -> ());
  let schema = Array.of_list (List.map fst columns) in
  let extractors = Array.of_list (List.map snd columns) in
  let extract blk slot = Array.map (fun e -> e blk slot) extractors in
  let parallel = match domains with Some d when d > 1 -> true | _ -> false in
  let csn = Option.map Smc.Collection.view_csn view in
  let scan emit =
    if parallel then
      List.iter emit
        (Smc_parallel.Par_scan.fold_valid_par ?pool ?domains ?csn coll.Smc.Collection.ctx
           ~init:(fun () -> [])
           ~f:(fun acc blk slot -> extract blk slot :: acc)
           ~combine:(fun a b -> List.rev_append b a))
    else
      match view with
      | Some v -> Smc.Collection.view_iter v ~f:(fun blk slot -> emit (extract blk slot))
      | None -> Smc.Collection.iter coll ~f:(fun blk slot -> emit (extract blk slot))
  in
  let schema_pos col =
    let rec go i =
      if i >= Array.length schema then None
      else if String.equal schema.(i) col then Some i
      else go (i + 1)
    in
    go 0
  in
  let indexes =
    List.map
      (fun (col, ix) ->
        (* A mispaired association would make IndexScan/IndexJoin silently
           answer from the wrong collection; reject it here, where the
           claim is made. The wrong-column half of the contract can't be
           checked structurally, but the probe-side value re-check below
           keeps it from ever emitting a non-matching row. *)
        if Smc_index.Hash_index.collection ix != coll then
          invalid_arg
            (Printf.sprintf
               "Source.of_smc: index %S is attached to collection %S, not %S"
               (Smc_index.Hash_index.name ix)
               (Smc_index.Hash_index.collection ix).Smc.Collection.name
               coll.Smc.Collection.name);
        let ci =
          match schema_pos col with
          | Some i -> i
          | None ->
            invalid_arg
              (Printf.sprintf
                 "Source.of_smc: index %S declared on column %S, which is not in the source schema"
                 (Smc_index.Hash_index.name ix) col)
        in
        let kind = Smc_index.Hash_index.key_kind ix in
        {
          ix_name = Smc_index.Hash_index.name ix;
          ix_column = col;
          ix_probe =
            (fun v emit ->
              match key_of_value kind v with
              | None -> ()
              | Some key ->
                Smc_index.Hash_index.probe ix key ~f:(fun _r blk slot ->
                    let row = extract blk slot in
                    (* Structural re-check against the declared column:
                       key words alias across types ([Int n] and [Date n]
                       both encode as [n]), and the probe only sees the
                       word. Mirroring HashJoin's structural match keeps
                       index paths from ever over-matching the scan
                       plan. *)
                    if row.(ci) = v then emit row));
          ix_accepts = (fun v -> key_of_value kind v <> None);
        })
      indexes
  in
  { name = coll.Smc.Collection.name; schema; scan; indexes }

let of_array ~name ~schema rows =
  {
    name;
    schema = Array.of_list schema;
    scan = (fun emit -> Array.iter emit rows);
    indexes = [];
  }

let of_fun ~name ~schema scan =
  { name; schema = Array.of_list schema; scan; indexes = [] }

let column_index t col =
  let rec go i =
    if i >= Array.length t.schema then raise Not_found
    else if String.equal t.schema.(i) col then i
    else go (i + 1)
  in
  go 0

let find_index t col =
  List.find_opt (fun ix -> String.equal ix.ix_column col) t.indexes
