module Block = Smc_offheap.Block
module Layout = Smc_offheap.Layout
module Context = Smc_offheap.Context
module Runtime = Smc_offheap.Runtime

type index_info = {
  ix_name : string;
  ix_column : string;
  ix_probe : Value.t -> (Value.t array -> unit) -> unit;
  ix_accepts : Value.t -> bool;
}

type text_info = {
  tx_name : string;
  tx_column : string;
  tx_probe : Smc_text.Sa_index.op -> string -> (Value.t array -> unit) -> unit;
}

(* Aggregate spec mirror of [Plan.agg]. Source sits below Plan in the
   dependency order, so a materialized view describes its reified plan in
   these terms and [Planner] translates when matching a [GroupBy] node. *)
type view_agg =
  | V_count
  | V_sum of Expr.t
  | V_min of Expr.t
  | V_max of Expr.t
  | V_avg of Expr.t

type matview_info = {
  mv_name : string;  (** view name (diagnostics, codegen) *)
  mv_keys : (string * Expr.t) list;  (** the reified plan's group-by keys *)
  mv_aggs : (string * view_agg) list;  (** the reified plan's aggregates *)
  mv_where : Expr.t option;  (** the filter under the aggregate, if any *)
  mv_read : (Value.t array -> unit) -> unit;
      (** push the maintained result rows (key columns then aggregate
          columns, group order unspecified) — bit-identical to evaluating
          the reified plan from scratch at the view's frontier *)
  mv_frontier : unit -> int;  (** CSN frontier the maintained state reflects *)
  mv_collection : Smc.Collection.t;  (** backing collection (identity check) *)
}

(* Typed column spec: naming the field's layout kind (instead of handing
   over an opaque closure) is what lets the batch path fill unboxed column
   chunks and the vectorized engine pick typed kernels. [C_fn] keeps the
   old escape hatch — computed or Null-bearing columns — at boxed-vector
   speed. *)
type column =
  | C_int of Layout.field
  | C_dec of Layout.field
  | C_date of Layout.field
  | C_bool of Layout.field
  | C_char of Layout.field  (** 1-byte char field surfaced as a 1-char [Str] *)
  | C_str of Layout.field
  | C_fn of (Block.t -> int -> Value.t)

type t = {
  name : string;
  schema : string array;
  kinds : Batch.kind array;
  scan : (Value.t array -> unit) -> unit;
  scan_batches : (rows:int -> ?cols:bool array -> (Batch.t -> unit) -> unit) option;
  obs : Smc_obs.t option;
  indexes : index_info list;
  texts : text_info list;
  matviews : matview_info list;
}

let kind_of_column = function
  | C_int _ -> Batch.K_int
  | C_dec _ -> Batch.K_dec
  | C_date _ -> Batch.K_date
  | C_bool _ -> Batch.K_bool
  | C_char _ -> Batch.K_char
  | C_str _ -> Batch.K_str
  | C_fn _ -> Batch.K_any

(* Row extractor for one column — the boxed path Volcano/Fuse scan with.
   Char columns box through the shared 1-char string table; structural
   equality with [String.make 1 c] is preserved. *)
let extractor_of_column = function
  | C_int f -> fun blk slot -> Value.Int (Smc.Field.get_int f blk slot)
  | C_dec f -> fun blk slot -> Value.Dec (Smc.Field.get_dec f blk slot)
  | C_date f -> fun blk slot -> Value.Date (Smc.Field.get_date f blk slot)
  | C_bool f -> fun blk slot -> Value.Bool (Smc.Field.get_bool f blk slot)
  | C_char f -> fun blk slot -> Value.Str (Batch.char_str (Smc.Field.get_int f blk slot))
  | C_str f -> fun blk slot -> Value.Str (Smc.Field.get_string f blk slot)
  | C_fn fn -> fn

let extract_column = extractor_of_column

(* Dense word gather, placement arithmetic hoisted out of the loop — the
   paper's direct block access, amortized over a whole selection. *)
let fill_words blk ~word slots n (dst : int array) =
  let data = blk.Block.data in
  match blk.Block.placement with
  | Block.Row ->
    let sw = blk.Block.layout.Layout.slot_words in
    for i = 0 to n - 1 do
      let s = Bigarray.Array1.unsafe_get slots i in
      Array.unsafe_set dst i (Bigarray.Array1.unsafe_get data ((s * sw) + word))
    done
  | Block.Columnar ->
    let base = word * blk.Block.nslots in
    for i = 0 to n - 1 do
      let s = Bigarray.Array1.unsafe_get slots i in
      Array.unsafe_set dst i (Bigarray.Array1.unsafe_get data (base + s))
    done

let fill_column col vec blk slots n =
  match (col, vec) with
  | C_int f, Batch.V_int dst | C_dec f, Batch.V_dec dst | C_date f, Batch.V_date dst ->
    fill_words blk ~word:f.Layout.word slots n dst
  | C_char f, Batch.V_char dst ->
    let word = f.Layout.word in
    for i = 0 to n - 1 do
      let s = Bigarray.Array1.unsafe_get slots i in
      Array.unsafe_set dst i (Block.get_word blk ~slot:s ~word land 0xFF)
    done
  | C_bool f, Batch.V_bool dst ->
    let word = f.Layout.word in
    for i = 0 to n - 1 do
      let s = Bigarray.Array1.unsafe_get slots i in
      Array.unsafe_set dst i (Block.get_word blk ~slot:s ~word <> 0)
    done
  | C_str f, Batch.V_str dst ->
    for i = 0 to n - 1 do
      let s = Bigarray.Array1.unsafe_get slots i in
      Array.unsafe_set dst i (Smc.Field.get_string f blk s)
    done
  | C_fn fn, Batch.V_val dst ->
    for i = 0 to n - 1 do
      let s = Bigarray.Array1.unsafe_get slots i in
      Array.unsafe_set dst i (fn blk s)
    done
  | _ -> assert false (* storage was created from [kind_of_column] *)

(* Constant values the planner may route through an index of the given key
   kind. The conversion mirrors the key encoding: ints and dates (epoch
   days) are int keys, strings are string keys; anything else — Null,
   decimals, booleans — is unindexable ([ix_accepts] = false), so the
   planner leaves such predicates on the scan path and the IndexJoin
   executors fall back to a hash build for such left keys (Null joins
   Null under HashJoin's structural equality; an index probe could never
   reproduce that). *)
let key_of_value kind v =
  match (kind, v) with
  | `Int, Value.Int n -> Some (Smc_index.Hash_index.K_int n)
  | `Int, Value.Date d -> Some (Smc_index.Hash_index.K_int d)
  | `Str, Value.Str s -> Some (Smc_index.Hash_index.K_str s)
  | _ -> None

(* The parallel knob: [domains] ≥ 2 extracts rows with a block-partitioned
   parallel scan (each worker builds a private row list, lists are spliced
   on the caller) and pushes them to [emit] sequentially — consumers stay
   single-threaded. Absent, or ≤ 1, the source scans exactly as before.
   Row order across blocks is unspecified in the parallel case.

   [view] runs every scan against an open snapshot view instead of current
   state: the plan reads one stable CSN frontier regardless of concurrent
   committers. The view must stay open while the source is consumed, and
   index access paths are rejected — index probes validate against current
   state and would disagree with the frozen frontier. *)
let of_smc ?pool ?domains ?view ?(indexes = []) ?(text_indexes = []) ?(matviews = []) coll
    ~columns =
  (match view with
  | Some v when indexes <> [] || text_indexes <> [] || matviews <> [] ->
    ignore (Smc.Collection.view_csn v : int);
    invalid_arg
      (Printf.sprintf
         "Source.of_smc: collection %S: snapshot views and index access paths are \
          mutually exclusive (probes read current state, not the view frontier)"
         coll.Smc.Collection.name)
  | _ -> ());
  List.iter
    (fun mv ->
      (* Same claims-checked-where-made discipline as indexes and text
         indexes: a view maintained over a different collection would
         silently answer the aggregate from the wrong rows. *)
      if mv.mv_collection != coll then
        invalid_arg
          (Printf.sprintf
             "Source.of_smc: materialized view %S is maintained over collection %S, not %S"
             mv.mv_name mv.mv_collection.Smc.Collection.name coll.Smc.Collection.name))
    matviews;
  let schema = Array.of_list (List.map fst columns) in
  let cols = Array.of_list (List.map snd columns) in
  let kinds = Array.map kind_of_column cols in
  let extractors = Array.map extractor_of_column cols in
  let extract blk slot = Array.map (fun e -> e blk slot) extractors in
  let parallel = match domains with Some d when d > 1 -> true | _ -> false in
  let csn = Option.map Smc.Collection.view_csn view in
  let ctx = coll.Smc.Collection.ctx in
  let obs = ctx.Context.rt.Runtime.obs in
  let scan emit =
    if parallel then
      List.iter emit
        (Smc_parallel.Par_scan.fold_valid_par ?pool ?domains ?csn ctx
           ~init:(fun () -> [])
           ~f:(fun acc blk slot -> extract blk slot :: acc)
           ~combine:(fun a b -> List.rev_append b a))
    else
      match view with
      | Some v -> Smc.Collection.view_iter v ~f:(fun blk slot -> emit (extract blk slot))
      | None -> Smc.Collection.iter coll ~f:(fun blk slot -> emit (extract blk slot))
  in
  (* Batch scan: whole column chunks are gathered per block inside one
     epoch critical section ([Context.iter_valid_batches]) — the
     per-element critical-section and validation cost of the row path is
     paid once per ~1024 rows. The emitted batch is reused (loan
     contract); the parallel path materializes per-worker batches instead
     and hands them to [emit] sequentially, in unspecified order.

     The fill order follows the placement. Row-placed blocks interleave a
     slot's words in one cache line, so filling column-by-column would
     re-stream the whole block once per column; instead one pass over the
     selection gathers every wanted word-backed column per slot. Columnar
     blocks store each word contiguously, so there the per-column passes
     are the streaming-friendly order. [mask] (from the consumer's
     [?cols]) drops the columns the plan never reads — unfilled columns
     keep their storage but their contents are unspecified. *)
  let make_fill b mask =
    let want c = match mask with None -> true | Some m -> m.(c) in
    let int_dst c =
      match b.Batch.cols.(c) with
      | Batch.V_int a | Batch.V_dec a | Batch.V_date a | Batch.V_char a -> a
      | _ -> assert false
    in
    let wordsl = ref [] and othersl = ref [] in
    Array.iteri
      (fun c col ->
        if want c then
          match col with
          | C_int f | C_dec f | C_date f ->
            wordsl := (int_dst c, f.Layout.word, false) :: !wordsl
          | C_char f -> wordsl := (int_dst c, f.Layout.word, true) :: !wordsl
          | C_bool _ | C_str _ | C_fn _ -> othersl := c :: !othersl)
      cols;
    let words = Array.of_list (List.rev !wordsl) in
    let others = Array.of_list (List.rev !othersl) in
    let nw = Array.length words in
    fun blk slots n ->
      (match blk.Block.placement with
      | Block.Row ->
        let data = blk.Block.data in
        let sw = blk.Block.layout.Layout.slot_words in
        for i = 0 to n - 1 do
          let s = Bigarray.Array1.unsafe_get slots i in
          let base = s * sw in
          for w = 0 to nw - 1 do
            let dst, word, is_char = Array.unsafe_get words w in
            let v = Bigarray.Array1.unsafe_get data (base + word) in
            Array.unsafe_set dst i (if is_char then v land 0xFF else v)
          done
        done
      | Block.Columnar ->
        let data = blk.Block.data in
        let ns = blk.Block.nslots in
        for w = 0 to nw - 1 do
          let dst, word, is_char = Array.unsafe_get words w in
          let base = word * ns in
          if is_char then
            for i = 0 to n - 1 do
              let s = Bigarray.Array1.unsafe_get slots i in
              Array.unsafe_set dst i (Bigarray.Array1.unsafe_get data (base + s) land 0xFF)
            done
          else
            for i = 0 to n - 1 do
              let s = Bigarray.Array1.unsafe_get slots i in
              Array.unsafe_set dst i (Bigarray.Array1.unsafe_get data (base + s))
            done
        done);
      Array.iter (fun c -> fill_column cols.(c) b.Batch.cols.(c) blk slots n) others;
      Batch.set_identity b n;
      Smc_obs.incr obs Smc_obs.c_vec_batches;
      Smc_obs.add obs Smc_obs.c_vec_batch_rows n
  in
  let scan_batches ~rows ?cols:mask emit =
    let cap = max rows 1 in
    if parallel then begin
      let per_worker =
        Smc_parallel.Par_scan.fold_batches_par ?pool ?domains ?csn ctx ~sel_cap:cap
          ~init:(fun () -> ref [])
          ~on_batch:(fun acc blk slots n ->
            let b = Batch.create ~kinds ~cap:n in
            make_fill b mask blk slots n;
            acc := b :: !acc)
          ~combine:(fun a b ->
            a := List.rev_append !b !a;
            a)
      in
      List.iter emit !per_worker
    end
    else begin
      let b = Batch.create ~kinds ~cap in
      let fill = make_fill b mask in
      let slots = Context.make_sel cap in
      Context.iter_valid_batches ?csn ctx ~sel:slots ~on_batch:(fun blk n ->
          fill blk slots n;
          emit b)
    end
  in
  let schema_pos col =
    let rec go i =
      if i >= Array.length schema then None
      else if String.equal schema.(i) col then Some i
      else go (i + 1)
    in
    go 0
  in
  let indexes =
    List.map
      (fun (col, ix) ->
        (* A mispaired association would make IndexScan/IndexJoin silently
           answer from the wrong collection; reject it here, where the
           claim is made. The wrong-column half of the contract can't be
           checked structurally, but the probe-side value re-check below
           keeps it from ever emitting a non-matching row. *)
        if Smc_index.Hash_index.collection ix != coll then
          invalid_arg
            (Printf.sprintf
               "Source.of_smc: index %S is attached to collection %S, not %S"
               (Smc_index.Hash_index.name ix)
               (Smc_index.Hash_index.collection ix).Smc.Collection.name
               coll.Smc.Collection.name);
        let ci =
          match schema_pos col with
          | Some i -> i
          | None ->
            invalid_arg
              (Printf.sprintf
                 "Source.of_smc: index %S declared on column %S, which is not in the source schema"
                 (Smc_index.Hash_index.name ix) col)
        in
        let kind = Smc_index.Hash_index.key_kind ix in
        {
          ix_name = Smc_index.Hash_index.name ix;
          ix_column = col;
          ix_probe =
            (fun v emit ->
              match key_of_value kind v with
              | None -> ()
              | Some key ->
                Smc_index.Hash_index.probe ix key ~f:(fun _r blk slot ->
                    let row = extract blk slot in
                    (* Structural re-check against the declared column:
                       key words alias across types ([Int n] and [Date n]
                       both encode as [n]), and the probe only sees the
                       word. Mirroring HashJoin's structural match keeps
                       index paths from ever over-matching the scan
                       plan. *)
                    if row.(ci) = v then emit row));
          ix_accepts = (fun v -> key_of_value kind v <> None);
        })
      indexes
  in
  let texts =
    List.map
      (fun (col, tx) ->
        (* Same claims-checked-where-made discipline as [indexes]: a text
           index attached to a different collection would silently answer
           from the wrong rows. *)
        if Smc_text.Sa_index.collection tx != coll then
          invalid_arg
            (Printf.sprintf
               "Source.of_smc: text index %S is attached to collection %S, not %S"
               (Smc_text.Sa_index.name tx)
               (Smc_text.Sa_index.collection tx).Smc.Collection.name
               coll.Smc.Collection.name);
        let ci =
          match schema_pos col with
          | Some i -> i
          | None ->
            invalid_arg
              (Printf.sprintf
                 "Source.of_smc: text index %S declared on column %S, which is not in the \
                  source schema"
                 (Smc_text.Sa_index.name tx) col)
        in
        {
          tx_name = Smc_text.Sa_index.name tx;
          tx_column = col;
          tx_probe =
            (fun op needle emit ->
              Smc_text.Sa_index.probe tx op needle ~f:(fun _r blk slot ->
                  let row = extract blk slot in
                  (* Structural re-check against the declared column,
                     mirroring [ix_probe]: the probe validated the field
                     the index was attached over, this re-tests the value
                     the scan plan would see, so a mispaired column/index
                     association never over-matches. *)
                  let s =
                    match row.(ci) with Value.Str s -> s | v -> Value.to_string v
                  in
                  let ok =
                    match op with
                    | Smc_text.Sa_index.Prefix -> Expr.string_starts_with ~prefix:needle s
                    | Smc_text.Sa_index.Substring -> Expr.string_contains ~needle s
                    | Smc_text.Sa_index.Substring_ci -> Expr.string_contains_ci ~needle s
                  in
                  if ok then emit row));
        })
      text_indexes
  in
  {
    name = coll.Smc.Collection.name;
    schema;
    kinds;
    scan;
    scan_batches = Some scan_batches;
    obs = Some obs;
    indexes;
    texts;
    matviews;
  }

let of_array ~name ~schema rows =
  let schema = Array.of_list schema in
  {
    name;
    schema;
    kinds = Array.map (fun _ -> Batch.K_any) schema;
    scan = (fun emit -> Array.iter emit rows);
    scan_batches = None;
    obs = None;
    indexes = [];
    texts = [];
    matviews = [];
  }

let of_fun ~name ~schema scan =
  let schema = Array.of_list schema in
  {
    name;
    schema;
    kinds = Array.map (fun _ -> Batch.K_any) schema;
    scan;
    scan_batches = None;
    obs = None;
    indexes = [];
    texts = [];
    matviews = [];
  }

let column_index t col =
  let rec go i =
    if i >= Array.length t.schema then raise Not_found
    else if String.equal t.schema.(i) col then i
    else go (i + 1)
  in
  go 0

let find_index t col =
  List.find_opt (fun ix -> String.equal ix.ix_column col) t.indexes

let find_text t col = List.find_opt (fun tx -> String.equal tx.tx_column col) t.texts

(* Matching a [GroupBy] shape against an advertised view is structural:
   Expr.t is a pure data AST, so OCaml's polymorphic equality decides
   whether the plan's keys/aggregates/filter are the reified ones. *)
let find_matview t ~keys ~aggs ~where =
  List.find_opt
    (fun mv -> mv.mv_keys = keys && mv.mv_aggs = aggs && mv.mv_where = where)
    t.matviews
