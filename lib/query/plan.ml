type dir = Asc | Desc

type agg =
  | Count
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Avg of Expr.t

type t =
  | Scan of Source.t
  | IndexScan of { src : Source.t; index : Source.index_info; value : Value.t }
  | TextScan of {
      src : Source.t;
      text : Source.text_info;
      op : Smc_text.Sa_index.op;
      needle : string;
    }
  | ViewRead of { src : Source.t; matview : Source.matview_info }
  | Where of Expr.t * t
  | Select of (string * Expr.t) list * t
  | HashJoin of { left : t; right : t; on : (string * string) list }
  | IndexJoin of { left : t; src : Source.t; index : Source.index_info; left_col : string }
  | GroupBy of { keys : (string * Expr.t) list; aggs : (string * agg) list; input : t }
  | OrderBy of (Expr.t * dir) list * t
  | Limit of int * t
  | Distinct of t

let joined_schema ls rs =
  let combined = Array.append ls rs in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      if Hashtbl.mem seen c then
        invalid_arg ("Plan.schema: duplicate column in join output: " ^ c);
      Hashtbl.add seen c ())
    combined;
  combined

let rec schema = function
  | Scan src | IndexScan { src; _ } | TextScan { src; _ } -> src.Source.schema
  | ViewRead { matview; _ } ->
    Array.of_list
      (List.map fst matview.Source.mv_keys @ List.map fst matview.Source.mv_aggs)
  | Where (_, p) | OrderBy (_, p) | Limit (_, p) | Distinct p -> schema p
  | Select (cols, _) -> Array.of_list (List.map fst cols)
  | GroupBy { keys; aggs; _ } ->
    Array.of_list (List.map fst keys @ List.map fst aggs)
  | HashJoin { left; right; _ } -> joined_schema (schema left) (schema right)
  | IndexJoin { left; src; _ } -> joined_schema (schema left) src.Source.schema

(* Eager column validation: unknown references fail at plan construction,
   naming the operator and the input schema, instead of surfacing as an
   [Expr.compile] error deep inside Interp/Fuse at run time. *)

let check_columns op input_schema cols =
  List.iter
    (fun c ->
      if not (Array.exists (String.equal c) input_schema) then
        invalid_arg
          (Printf.sprintf "Plan.%s: unknown column %S (input columns: %s)" op c
             (String.concat ", " (Array.to_list input_schema))))
    cols

let agg_columns = function
  | Count -> []
  | Sum e | Min e | Max e | Avg e -> Expr.columns e

let scan src = Scan src

let index_scan src ~column ~value =
  match Source.find_index src column with
  | None ->
    invalid_arg
      (Printf.sprintf "Plan.index_scan: source %s has no index on column %S"
         src.Source.name column)
  | Some index ->
    if not (index.Source.ix_accepts value) then
      invalid_arg
        (Printf.sprintf "Plan.index_scan: index %s cannot hold constant %s"
           index.Source.ix_name (Value.to_string value));
    IndexScan { src; index; value }

let text_scan src ~column ~op ~needle =
  match Source.find_text src column with
  | None ->
    invalid_arg
      (Printf.sprintf "Plan.text_scan: source %s has no text index on column %S"
         src.Source.name column)
  | Some text -> TextScan { src; text; op; needle }

(* Translate Plan aggregates into Source's mirror type (Source sits below
   Plan, so the view advertises its reified plan in [Source.view_agg]). *)
let view_agg_of_agg = function
  | Count -> Source.V_count
  | Sum e -> Source.V_sum e
  | Min e -> Source.V_min e
  | Max e -> Source.V_max e
  | Avg e -> Source.V_avg e

let view_read src ~keys ~aggs ~where =
  let vaggs = List.map (fun (n, a) -> (n, view_agg_of_agg a)) aggs in
  match Source.find_matview src ~keys ~aggs:vaggs ~where with
  | None ->
    invalid_arg
      (Printf.sprintf
         "Plan.view_read: source %s advertises no materialized view matching the \
          requested aggregate shape"
         src.Source.name)
  | Some matview -> ViewRead { src; matview }

let where e p =
  check_columns "Where" (schema p) (Expr.columns e);
  Where (e, p)

let select cols p =
  check_columns "Select" (schema p) (List.concat_map (fun (_, e) -> Expr.columns e) cols);
  Select (cols, p)

let join ~on left right =
  check_columns "HashJoin(left)" (schema left) (List.map fst on);
  check_columns "HashJoin(right)" (schema right) (List.map snd on);
  HashJoin { left; right; on }

let index_join ~on:(left_col, right_col) left src =
  check_columns "IndexJoin(left)" (schema left) [ left_col ];
  match Source.find_index src right_col with
  | None ->
    invalid_arg
      (Printf.sprintf "Plan.index_join: source %s has no index on column %S"
         src.Source.name right_col)
  | Some index -> IndexJoin { left; src; index; left_col }

let group_by ~keys ~aggs input =
  let s = schema input in
  check_columns "GroupBy(keys)" s (List.concat_map (fun (_, e) -> Expr.columns e) keys);
  check_columns "GroupBy(aggs)" s (List.concat_map (fun (_, a) -> agg_columns a) aggs);
  GroupBy { keys; aggs; input }

let order_by specs p =
  check_columns "OrderBy" (schema p) (List.concat_map (fun (e, _) -> Expr.columns e) specs);
  OrderBy (specs, p)

let limit n p = Limit (n, p)
let distinct p = Distinct p

let rec validate = function
  | Scan _ -> ()
  | IndexScan { src; index; _ } ->
    check_columns "IndexScan" src.Source.schema [ index.Source.ix_column ]
  | TextScan { src; text; _ } ->
    check_columns "TextScan" src.Source.schema [ text.Source.tx_column ]
  | ViewRead { src; matview } ->
    (* the view's reified plan reads the source's columns *)
    check_columns "ViewRead" src.Source.schema
      (List.concat_map (fun (_, e) -> Expr.columns e) matview.Source.mv_keys
      @ List.concat_map
          (fun (_, a) ->
            match a with
            | Source.V_count -> []
            | Source.V_sum e | Source.V_min e | Source.V_max e | Source.V_avg e ->
              Expr.columns e)
          matview.Source.mv_aggs
      @
      match matview.Source.mv_where with None -> [] | Some e -> Expr.columns e)
  | Where (e, p) ->
    validate p;
    check_columns "Where" (schema p) (Expr.columns e)
  | Select (cols, p) ->
    validate p;
    check_columns "Select" (schema p) (List.concat_map (fun (_, e) -> Expr.columns e) cols)
  | HashJoin { left; right; on } ->
    validate left;
    validate right;
    check_columns "HashJoin(left)" (schema left) (List.map fst on);
    check_columns "HashJoin(right)" (schema right) (List.map snd on)
  | IndexJoin { left; src; index; left_col } ->
    validate left;
    check_columns "IndexJoin(left)" (schema left) [ left_col ];
    check_columns "IndexJoin" src.Source.schema [ index.Source.ix_column ]
  | GroupBy { keys; aggs; input } ->
    validate input;
    let s = schema input in
    check_columns "GroupBy(keys)" s (List.concat_map (fun (_, e) -> Expr.columns e) keys);
    check_columns "GroupBy(aggs)" s (List.concat_map (fun (_, a) -> agg_columns a) aggs)
  | OrderBy (specs, p) ->
    validate p;
    check_columns "OrderBy" (schema p) (List.concat_map (fun (e, _) -> Expr.columns e) specs)
  | Limit (_, p) | Distinct p -> validate p
