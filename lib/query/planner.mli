(** Access-path selection over logical plans.

    Sources built with [Source.of_smc ~indexes] advertise attached hash
    indexes; this pass lowers the plan shapes they can answer onto them:

    - [Where (col = const, Scan src)] — including an eligible equality
      conjunct inside an [And] tree — becomes {!Plan.IndexScan} when
      [src] has an index on [col] that can hold the constant. The whole
      predicate (matched conjunct included) is kept as a residual filter
      over the probe output, so the rewritten plan filters exactly like
      the scan plan even if a probe over-matches;
    - [Where (Contains (col, s), Scan src)] and [StartsWith] likewise —
      including as a conjunct inside an [And] tree — become
      {!Plan.TextScan} when [src] advertises a text index on [col]
      (built with [Source.of_smc ~text_indexes]) and the needle is
      non-empty. Equality conjuncts win when both apply; the whole
      predicate again stays as a residual filter;
    - a single-key [HashJoin] whose right (build) side is a scan of an
      indexed source becomes {!Plan.IndexJoin} (index nested-loop join),
      skipping the build phase entirely. The executors preserve
      HashJoin's structural-equality semantics: probed rows are re-checked
      against the left key, and left keys the index cannot hold (Null,
      decimals, booleans) fall back to a lazily built hash table.

    The pass is explicit: callers opt in per plan, so the same logical
    plan can be run both ways and compared. Rewrites preserve the bag of
    result rows but not row order (index probes yield hash order); order
    is only meaningful under [OrderBy] anyway. *)

val choose_access_paths : Plan.t -> Plan.t

val uses_index : Plan.t -> bool
(** Whether any index access path appears in the plan (test/bench
    diagnostic). *)
