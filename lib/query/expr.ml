type t =
  | Col of string
  | Const of Value.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t
  | Eq of t * t
  | Ne of t * t
  | Lt of t * t
  | Le of t * t
  | Gt of t * t
  | Ge of t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Between of t * t * t
  | Contains of t * string
  | ContainsCI of t * string
  | StartsWith of t * string

let int n = Const (Value.Int n)
let dec s = Const (Value.Dec (Smc_decimal.Decimal.of_string s))
let str s = Const (Value.Str s)
let date s = Const (Value.Date (Smc_util.Date.of_string s))
let bool b = Const (Value.Bool b)

(* Byte-loop substring/prefix tests: no [String.sub] per candidate
   position, so predicate evaluation allocates nothing per row. *)
let string_starts_with ~prefix s =
  let n = String.length prefix in
  String.length s >= n
  &&
  let rec go j =
    j >= n || (String.unsafe_get s j = String.unsafe_get prefix j && go (j + 1))
  in
  go 0

let string_contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else begin
    let at i =
      let rec go j =
        j >= n
        || (String.unsafe_get haystack (i + j) = String.unsafe_get needle j && go (j + 1))
      in
      go 0
    in
    let rec go i = i + n <= h && (at i || go (i + 1)) in
    go 0
  end

(* ASCII-case-insensitive substring test, same allocation-free shape:
   both sides are folded byte-wise through [A-Z] -> [a-z]. Bytes outside
   ASCII are compared verbatim (no locale/Unicode folding). *)
let lower_byte c =
  if c >= 'A' && c <= 'Z' then Char.unsafe_chr (Char.code c + 32) else c

let string_contains_ci ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else begin
    let at i =
      let rec go j =
        j >= n
        || (lower_byte (String.unsafe_get haystack (i + j))
              = lower_byte (String.unsafe_get needle j)
           && go (j + 1))
      in
      go 0
    in
    let rec go i = i + n <= h && (at i || go (i + 1)) in
    go 0
  end

let rec compile ~schema expr =
  let resolve name =
    let rec go i =
      if i >= Array.length schema then
        invalid_arg ("Expr.compile: unknown column " ^ name)
      else if String.equal schema.(i) name then i
      else go (i + 1)
    in
    go 0
  in
  let bin ctor a b =
    let fa = compile ~schema a and fb = compile ~schema b in
    fun row -> ctor (fa row) (fb row)
  in
  let cmp op a b =
    let fa = compile ~schema a and fb = compile ~schema b in
    fun row -> Value.Bool (op (Value.compare (fa row) (fb row)) 0)
  in
  match expr with
  | Col name ->
    let i = resolve name in
    fun row -> row.(i)
  | Const v -> fun _ -> v
  | Add (a, b) -> bin Value.add a b
  | Sub (a, b) -> bin Value.sub a b
  | Mul (a, b) -> bin Value.mul a b
  | Div (a, b) -> bin Value.div a b
  | Neg a ->
    let fa = compile ~schema a in
    fun row -> Value.neg (fa row)
  | Eq (a, b) -> cmp ( = ) a b
  | Ne (a, b) -> cmp ( <> ) a b
  | Lt (a, b) -> cmp ( < ) a b
  | Le (a, b) -> cmp ( <= ) a b
  | Gt (a, b) -> cmp ( > ) a b
  | Ge (a, b) -> cmp ( >= ) a b
  | And (a, b) ->
    let fa = compile ~schema a and fb = compile ~schema b in
    fun row -> Value.Bool (Value.to_bool (fa row) && Value.to_bool (fb row))
  | Or (a, b) ->
    let fa = compile ~schema a and fb = compile ~schema b in
    fun row -> Value.Bool (Value.to_bool (fa row) || Value.to_bool (fb row))
  | Not a ->
    let fa = compile ~schema a in
    fun row -> Value.Bool (not (Value.to_bool (fa row)))
  | Between (x, lo, hi) ->
    let fx = compile ~schema x and flo = compile ~schema lo and fhi = compile ~schema hi in
    fun row ->
      let v = fx row in
      Value.Bool (Value.compare v (flo row) >= 0 && Value.compare v (fhi row) <= 0)
  | Contains (a, needle) ->
    let fa = compile ~schema a in
    fun row ->
      (match fa row with
      | Value.Str s -> Value.Bool (string_contains ~needle s)
      | v -> Value.Bool (string_contains ~needle (Value.to_string v)))
  | ContainsCI (a, needle) ->
    let fa = compile ~schema a in
    fun row ->
      (match fa row with
      | Value.Str s -> Value.Bool (string_contains_ci ~needle s)
      | v -> Value.Bool (string_contains_ci ~needle (Value.to_string v)))
  | StartsWith (a, prefix) ->
    let fa = compile ~schema a in
    fun row ->
      (match fa row with
      | Value.Str s -> Value.Bool (string_starts_with ~prefix s)
      | v -> Value.Bool (string_starts_with ~prefix (Value.to_string v)))

let compile_pred ~schema expr =
  let f = compile ~schema expr in
  fun row -> Value.to_bool (f row)

let rec to_string = function
  | Col c -> c
  | Const v -> Value.to_string v
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (to_string a) (to_string b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_string a) (to_string b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_string a) (to_string b)
  | Div (a, b) -> Printf.sprintf "(%s / %s)" (to_string a) (to_string b)
  | Neg a -> Printf.sprintf "(- %s)" (to_string a)
  | Eq (a, b) -> Printf.sprintf "(%s = %s)" (to_string a) (to_string b)
  | Ne (a, b) -> Printf.sprintf "(%s <> %s)" (to_string a) (to_string b)
  | Lt (a, b) -> Printf.sprintf "(%s < %s)" (to_string a) (to_string b)
  | Le (a, b) -> Printf.sprintf "(%s <= %s)" (to_string a) (to_string b)
  | Gt (a, b) -> Printf.sprintf "(%s > %s)" (to_string a) (to_string b)
  | Ge (a, b) -> Printf.sprintf "(%s >= %s)" (to_string a) (to_string b)
  | And (a, b) -> Printf.sprintf "(%s && %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (to_string a) (to_string b)
  | Not a -> Printf.sprintf "(not %s)" (to_string a)
  | Between (x, lo, hi) ->
    Printf.sprintf "(%s between %s and %s)" (to_string x) (to_string lo) (to_string hi)
  | Contains (a, s) -> Printf.sprintf "(%s contains %S)" (to_string a) s
  | ContainsCI (a, s) -> Printf.sprintf "(%s contains_ci %S)" (to_string a) s
  | StartsWith (a, s) -> Printf.sprintf "(%s starts_with %S)" (to_string a) s

let columns expr =
  let acc = ref [] in
  let rec go = function
    | Col c -> acc := c :: !acc
    | Const _ -> ()
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b)
    | Eq (a, b) | Ne (a, b) | Lt (a, b) | Le (a, b) | Gt (a, b) | Ge (a, b)
    | And (a, b) | Or (a, b) ->
      go a;
      go b
    | Neg a | Not a | Contains (a, _) | ContainsCI (a, _) | StartsWith (a, _) -> go a
    | Between (x, lo, hi) ->
      go x;
      go lo;
      go hi
  in
  go expr;
  List.rev !acc
