(** Query-plan → compiled native code, via source emission + Dynlink.

    The paper's system modifies the C# compiler to expand LINQ queries over
    SMCs into generated imperative functions. This module performs the same
    staging at runtime: {!to_ocaml_source} renders the fused loop nest
    {!Fuse} would execute — predicates, projections, group keys and
    aggregate updates inlined as direct code, not closure chains — as a
    self-contained OCaml module; {!prepare} compiles it with
    [ocamlopt -shared] against the host build's .cmi files, loads it with
    [Dynlink.loadfile_private], and receives the query function back through
    {!Codegen_abi}. Compiled plans are cached by the digest of their source,
    so re-running a plan shape (even over a different collection, or with
    different constants — both enter as runtime arguments) reuses the
    plugin.

    Results are bit-identical to {!Fuse.collect}: the emitted code
    transliterates {!Expr.compile}, {!Aggregate.compile} and {!Fuse}'s
    operator loops case by case, preserving evaluation order and raises.
    When compilation is impossible — bytecode host, no [ocamlopt] on PATH,
    unlocatable .cmi directories, a compile/load failure, or an [IndexJoin]
    in the plan (its keyed per-row probe does not fit the scan-closure
    ABI) — execution silently falls back to {!Fuse} and the outcome says
    why. Requests, compiles, cache hits and fallbacks are counted under the
    plan's source runtime ([cg_*] counters; every request lands in exactly
    one of the other three buckets).

    Environment knobs: [SMC_CG_OCAMLOPT] (compiler path), [SMC_CG_INCLUDE]
    (colon-separated extra [-I] dirs), [SMC_CG_TMPDIR] (scratch dir),
    [SMC_CG_KEEP] (keep generated files for inspection). *)

exception Unsupported of string
(** Raised by {!to_ocaml_source} for plans the compiled path does not
    cover (IndexJoin). {!prepare}/{!run} catch it and fall back. *)

val to_ocaml_source : Plan.t -> string
(** The complete plugin module for the plan: scalar helper prelude, the
    [query] function (scans and index probes abstracted as a closure
    array, constants as a [Value.t array]), and the {!Codegen_abi}
    registration keyed by the source digest. *)

val available : unit -> bool
(** Whether the compiled path can work in this process: native code,
    [ocamlopt] found, .cmi directories located. *)

type outcome =
  | Native of string  (** executed by a Dynlink-loaded plugin; plan digest *)
  | Fallback of string  (** executed by {!Fuse}; the reason why *)

val prepare : Plan.t -> ((Value.t array -> unit) -> unit) * outcome
(** Compile (or fetch from cache, or fall back) and return a runner that
    can be invoked many times. *)

val run : Plan.t -> f:(Value.t array -> unit) -> unit
val collect : Plan.t -> Value.t array list

val operator_count : Plan.t -> int
(** Number of operators in the plan (for tests and plan statistics). *)
