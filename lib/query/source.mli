(** Query sources: anything that can produce rows of tagged values.

    A source wraps a scan over an SMC collection (inside a critical section,
    in block order) or over any in-memory sequence — the query engine is
    agnostic, like LINQ-to-objects. A source over an SMC collection can also
    advertise attached {!Smc_index.Hash_index}es as alternative access
    paths; {!Planner} uses them to lower equality predicates and join build
    sides to index probes. *)

type index_info = {
  ix_name : string;  (** index name (diagnostics, codegen) *)
  ix_column : string;  (** the source column the index keys on *)
  ix_probe : Value.t -> (Value.t array -> unit) -> unit;
      (** push every live row whose declared column is structurally equal
          to the value (each probe hit is re-checked against the
          extracted column, so key-word aliasing across types — [Int n]
          vs [Date n] — never over-matches); emits nothing for values the
          index cannot hold (wrong type, [Null]) *)
  ix_accepts : Value.t -> bool;
      (** whether a constant of this shape can be routed to the index;
          executors must fall back to scan-equality for rejected values *)
}

type text_info = {
  tx_name : string;  (** text index name (diagnostics, codegen) *)
  tx_column : string;  (** the source string column the index covers *)
  tx_probe : Smc_text.Sa_index.op -> string -> (Value.t array -> unit) -> unit;
      (** push every live row whose declared column matches the
          (operator, needle) pair — suffix-array candidates are
          incarnation-validated and text-re-checked by the index, then the
          extracted row value is re-tested here, so a text path and a scan
          path produce identical row bags *)
}

(** Aggregate spec mirror of [Plan.agg] ([Source] sits below [Plan] in the
    dependency order): a materialized view describes its reified plan in
    these terms and {!Planner} translates when matching a [GroupBy] node. *)
type view_agg =
  | V_count
  | V_sum of Expr.t
  | V_min of Expr.t
  | V_max of Expr.t
  | V_avg of Expr.t

type matview_info = {
  mv_name : string;  (** view name (diagnostics, codegen) *)
  mv_keys : (string * Expr.t) list;  (** the reified plan's group-by keys *)
  mv_aggs : (string * view_agg) list;  (** the reified plan's aggregates *)
  mv_where : Expr.t option;  (** the filter under the aggregate, if any *)
  mv_read : (Value.t array -> unit) -> unit;
      (** push the maintained result rows (key columns then aggregate
          columns, group order unspecified) — bit-identical to evaluating
          the reified plan from scratch at the view's frontier *)
  mv_frontier : unit -> int;  (** CSN frontier the maintained state reflects *)
  mv_collection : Smc.Collection.t;  (** backing collection (identity check) *)
}

type t = {
  name : string;
  schema : string array;
  kinds : Batch.kind array;  (** static column kinds; [K_any] = opaque *)
  scan : (Value.t array -> unit) -> unit;  (** push a full scan *)
  scan_batches : (rows:int -> ?cols:bool array -> (Batch.t -> unit) -> unit) option;
      (** push the scan as reused column chunks of ≤ [rows] rows (the loan
          contract of {!Batch}); [None] when the source has no batch path
          and the vectorized engine must re-batch the row scan. [cols]
          (indexed like [schema]) marks the columns the consumer will read:
          unmarked columns keep their storage in the batch but are not
          filled — their contents are unspecified. Omitted = fill all. *)
  obs : Smc_obs.t option;  (** counter instance of the backing runtime *)
  indexes : index_info list;  (** access paths advertised to the planner *)
  texts : text_info list;  (** substring/prefix access paths *)
  matviews : matview_info list;  (** maintained aggregate access paths *)
}

(** Typed column spec. Naming the field's layout kind lets the batch path
    fill unboxed column chunks with hoisted placement arithmetic and the
    vectorized engine pick typed kernels; [C_fn] is the escape hatch for
    computed or Null-bearing columns, scanned at boxed-vector speed. *)
type column =
  | C_int of Smc_offheap.Layout.field
  | C_dec of Smc_offheap.Layout.field
  | C_date of Smc_offheap.Layout.field
  | C_bool of Smc_offheap.Layout.field
  | C_char of Smc_offheap.Layout.field
      (** 1-byte char field surfaced as a 1-char [Str] value *)
  | C_str of Smc_offheap.Layout.field
  | C_fn of (Smc_offheap.Block.t -> int -> Value.t)

val of_smc :
  ?pool:Smc_parallel.Pool.t ->
  ?domains:int ->
  ?view:Smc.Collection.view ->
  ?indexes:(string * Smc_index.Hash_index.t) list ->
  ?text_indexes:(string * Smc_text.Sa_index.t) list ->
  ?matviews:matview_info list ->
  Smc.Collection.t ->
  columns:(string * column) list ->
  t
(** Scans the collection inside one critical section, extracting the named
    columns from each valid slot. The batch path ([scan_batches]) gathers
    surviving slots per block with {!Smc_offheap.Context.scan_block_batch}
    and fills whole column chunks inside one epoch critical section per
    block. With [?domains] ≥ 2 the extraction runs
    as a block-partitioned parallel scan ({!Smc_parallel.Par_scan}) and the
    rows are pushed to the consumer sequentially afterwards — downstream
    operators never see concurrency, but row order across blocks becomes
    unspecified. Default is the sequential scan, unchanged.

    [?view] pins every scan (sequential or parallel) to an open snapshot
    view's CSN frontier ({!Smc.Collection.snapshot_view}): queries over the
    source read one commit boundary, stable under concurrent committers.
    The view must stay open while the source is consumed. Mutually
    exclusive with [?indexes] (probes validate against current state, which
    can disagree with the frozen frontier) — raises [Invalid_argument] when
    both are given.

    [?indexes] advertises attached hash indexes as access paths: each
    [(col, ix)] pair asserts that [ix]'s key extractor agrees with the
    [col] column extractor on every row (int/date columns need an
    [Int_key], strings a [Str_key]). Raises [Invalid_argument] when [ix]
    is attached to a different collection than the one being scanned, or
    when [col] is not in the declared schema — a mispaired association
    would otherwise silently answer queries from the wrong rows. Probe
    results are extracted with the same [columns] closures as the scan
    and re-checked against the probe value, so an index path and a scan
    path produce identical rows for matching keys.

    [?text_indexes] advertises attached {!Smc_text.Sa_index}es the same
    way, as substring/prefix access paths ([texts]); the same attachment
    and schema checks apply, with the same [Invalid_argument]s, and probe
    hits are re-tested against the extracted column value. Mutually
    exclusive with [?view] like [?indexes].

    [?matviews] advertises maintained aggregate results (built by
    [Smc_matview.Matview.info]) so {!Planner.choose_access_paths} can
    rewrite a structurally matching [GroupBy] to a [ViewRead] leaf.
    Raises [Invalid_argument] when a view is maintained over a different
    collection than the one being scanned. Mutually exclusive with
    [?view]: a view read reflects the maintained frontier, not a frozen
    snapshot. *)

val extract_column : column -> Smc_offheap.Block.t -> int -> Value.t
(** The extraction closure a column spec compiles to — the exact closure
    [of_smc]'s scan and probe paths use, exported so maintenance
    structures (materialized views) extract row values in verbatim
    agreement with the sources that advertise them. Call only on a live
    (block, slot) inside a critical section. *)

val of_array : name:string -> schema:string list -> Value.t array array -> t

val of_fun : name:string -> schema:string list -> ((Value.t array -> unit) -> unit) -> t

val column_index : t -> string -> int
(** Raises [Not_found]. *)

val find_index : t -> string -> index_info option
(** The advertised access path keyed on the given column, if any. *)

val find_text : t -> string -> text_info option
(** The advertised text access path over the given column, if any. *)

val find_matview :
  t ->
  keys:(string * Expr.t) list ->
  aggs:(string * view_agg) list ->
  where:Expr.t option ->
  matview_info option
(** The advertised view whose reified plan (keys, aggregates, filter) is
    structurally equal to the given shape, if any. *)
