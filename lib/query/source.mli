(** Query sources: anything that can produce rows of tagged values.

    A source wraps a scan over an SMC collection (inside a critical section,
    in block order) or over any in-memory sequence — the query engine is
    agnostic, like LINQ-to-objects. *)

type t = {
  name : string;
  schema : string array;
  scan : (Value.t array -> unit) -> unit;  (** push a full scan *)
}

val of_smc :
  ?pool:Smc_parallel.Pool.t ->
  ?domains:int ->
  Smc.Collection.t ->
  columns:(string * (Smc_offheap.Block.t -> int -> Value.t)) list ->
  t
(** Scans the collection inside one critical section, extracting the named
    columns from each valid slot. With [?domains] ≥ 2 the extraction runs
    as a block-partitioned parallel scan ({!Smc_parallel.Par_scan}) and the
    rows are pushed to the consumer sequentially afterwards — downstream
    operators never see concurrency, but row order across blocks becomes
    unspecified. Default is the sequential scan, unchanged. *)

val of_array : name:string -> schema:string list -> Value.t array array -> t

val of_fun : name:string -> schema:string list -> ((Value.t array -> unit) -> unit) -> t

val column_index : t -> string -> int
(** Raises [Not_found]. *)
