let group_key key_fns row = List.map (fun f -> f row) key_fns

(* Compile the plan to a function that pushes every result row into [emit].
   Compilation happens once; running the returned closure executes the
   fused pipeline. *)
let rec compile plan =
  match plan with
  | Plan.Scan src -> src.Source.scan
  | Plan.IndexScan { index; value; _ } -> fun emit -> index.Source.ix_probe value emit
  | Plan.TextScan { text; op; needle; _ } ->
    fun emit -> text.Source.tx_probe op needle emit
  | Plan.ViewRead { matview; _ } -> fun emit -> matview.Source.mv_read emit
  | Plan.Where (pred, input) ->
    let upstream = compile input in
    let test = Expr.compile_pred ~schema:(Plan.schema input) pred in
    fun emit -> upstream (fun row -> if test row then emit row)
  | Plan.Select (cols, input) ->
    let upstream = compile input in
    let schema = Plan.schema input in
    let fns = Array.of_list (List.map (fun (_, e) -> Expr.compile ~schema e) cols) in
    fun emit -> upstream (fun row -> emit (Array.map (fun f -> f row) fns))
  | Plan.HashJoin { left; right; on } ->
    let lschema = Plan.schema left and rschema = Plan.schema right in
    let lkeys = List.map (fun (lc, _) -> Expr.compile ~schema:lschema (Expr.Col lc)) on in
    let rkeys = List.map (fun (_, rc) -> Expr.compile ~schema:rschema (Expr.Col rc)) on in
    let build = compile right in
    let probe = compile left in
    fun emit ->
      let table = Hashtbl.create 1024 in
      build (fun row -> Hashtbl.add table (group_key rkeys row) row);
      probe (fun l ->
          List.iter
            (fun r -> emit (Array.append l r))
            (Hashtbl.find_all table (group_key lkeys l)))
  | Plan.IndexJoin { left; src; index; left_col } ->
    (* Index nested-loop join: the probe side fuses straight into the
       index lookup; there is no build phase to pipeline-break on. Left
       keys the index cannot hold (Null, decimals, booleans) still join
       under HashJoin's structural equality, so they route through a hash
       table built lazily on first such key — per run, since the compiled
       pipeline may execute more than once. *)
    let lkey = Expr.compile ~schema:(Plan.schema left) (Expr.Col left_col) in
    let ci = Source.column_index src index.Source.ix_column in
    let probe = compile left in
    fun emit ->
      let fallback =
        lazy
          (let tbl = Hashtbl.create 1024 in
           src.Source.scan (fun r -> Hashtbl.add tbl r.(ci) r);
           tbl)
      in
      probe (fun l ->
          let k = lkey l in
          if index.Source.ix_accepts k then
            index.Source.ix_probe k (fun r -> emit (Array.append l r))
          else
            List.iter
              (fun r -> emit (Array.append l r))
              (Hashtbl.find_all (Lazy.force fallback) k))
  | Plan.GroupBy { keys; aggs; input } ->
    let schema = Plan.schema input in
    let key_fns = List.map (fun (_, e) -> Expr.compile ~schema e) keys in
    let compiled = List.map (fun (_, a) -> Aggregate.compile ~schema a) aggs in
    let upstream = compile input in
    fun emit ->
      let groups = Hashtbl.create 256 in
      let order = ref [] in
      upstream (fun row ->
          let key = group_key key_fns row in
          let cells =
            match Hashtbl.find_opt groups key with
            | Some cells -> cells
            | None ->
              let cells = List.map (fun (fresh, _, _) -> fresh ()) compiled in
              Hashtbl.add groups key cells;
              order := key :: !order;
              cells
          in
          List.iter2 (fun (_, update, _) cell -> update cell row) compiled cells);
      List.iter
        (fun key ->
          let cells = Hashtbl.find groups key in
          let finished =
            List.map2 (fun (_, _, finish) cell -> finish cell) compiled cells
          in
          emit (Array.of_list (key @ finished)))
        (List.rev !order)
  | Plan.OrderBy (specs, input) ->
    let schema = Plan.schema input in
    let fns = List.map (fun (e, d) -> (Expr.compile ~schema e, d)) specs in
    let upstream = compile input in
    let compare_rows a b =
      let rec go = function
        | [] -> 0
        | (f, d) :: rest ->
          let c = Value.compare (f a) (f b) in
          let c = match d with Plan.Asc -> c | Plan.Desc -> -c in
          if c <> 0 then c else go rest
      in
      go fns
    in
    fun emit ->
      let rows = ref [] in
      upstream (fun row -> rows := row :: !rows);
      List.iter emit (List.stable_sort compare_rows (List.rev !rows))
  | Plan.Distinct input ->
    let upstream = compile input in
    fun emit ->
      let seen = Hashtbl.create 256 in
      upstream (fun row ->
          let key = Array.to_list row in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            emit row
          end)
  | Plan.Limit (n, input) ->
    let upstream = compile input in
    fun emit ->
      let taken = ref 0 in
      (* No early termination in a push pipeline without exceptions; use one
         locally, which is how push engines implement LIMIT. *)
      let exception Done in
      (try
         upstream (fun row ->
             if !taken < n then begin
               emit row;
               incr taken;
               if !taken >= n then raise Done
             end)
       with Done -> ())

let run plan ~f = (compile plan) f

let collect plan =
  let out = ref [] in
  run plan ~f:(fun row -> out := row :: !out);
  List.rev !out
