let indent n = String.make (2 * n) ' '

(* Emit the loop nest top-down: every non-blocking operator contributes a
   line inside its upstream loop body; blocking operators split the
   function into phases, exactly like the fused pipeline executes. *)
let to_ocaml_source plan =
  let buf = Buffer.create 1024 in
  let line depth fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (indent depth ^ s ^ "\n")) fmt in
  let fresh =
    let n = ref 0 in
    fun prefix ->
      incr n;
      Printf.sprintf "%s%d" prefix !n
  in
  (* [emit plan depth k] writes code that binds each produced row and then
     runs [k depth row_var] in the innermost position. *)
  let rec emit plan depth k =
    match plan with
    | Plan.Scan src ->
      let row = fresh "row" in
      line depth "(* scan %s: enumerate valid slots in block order inside one" src.Source.name;
      line depth "   critical section (enter_critical_section / exit) *)";
      line depth "Collection.iter %s ~f:(fun blk slot ->" src.Source.name;
      line (depth + 1) "let %s = (blk, slot) in" row;
      k (depth + 1) row;
      line depth ");"
    | Plan.IndexScan { src; index; value } ->
      let row = fresh "row" in
      line depth "(* index scan %s.%s via %s: probe the off-heap hash index inside one"
        src.Source.name index.Source.ix_column index.Source.ix_name;
      line depth "   critical section; every hit is incarnation-validated *)";
      line depth "Hash_index.probe %s (key %s) ~f:(fun ref blk slot ->"
        index.Source.ix_name (Value.to_string value);
      line (depth + 1) "let %s = (blk, slot) in" row;
      k (depth + 1) row;
      line depth ");"
    | Plan.Where (pred, input) ->
      emit input depth (fun d row ->
          line d "if %s then begin" (Expr.to_string pred);
          k (d + 1) row;
          line d "end;")
    | Plan.Select (cols, input) ->
      emit input depth (fun d row ->
          let out = fresh "proj" in
          line d "let %s = (%s) in" out
            (String.concat ", " (List.map (fun (_, e) -> Expr.to_string e) cols));
          ignore row;
          k d out)
    | Plan.HashJoin { left; right; on } ->
      let table = fresh "join_tbl" in
      line depth "let %s = Hashtbl.create 1024 in" table;
      emit right depth (fun d row ->
          line d "Hashtbl.add %s (%s) %s;" table
            (String.concat ", " (List.map snd on))
            row);
      emit left depth (fun d row ->
          let m = fresh "matched" in
          line d "List.iter (fun %s ->" m;
          line (d + 1) "(* joined row: %s x %s *)" row m;
          k (d + 1) (Printf.sprintf "(%s, %s)" row m);
          line d ") (Hashtbl.find_all %s (%s));" table
            (String.concat ", " (List.map fst on)))
    | Plan.IndexJoin { left; src; index; left_col } ->
      emit left depth (fun d row ->
          let m = fresh "matched" in
          line d "(* index nested-loop join: probe %s.%s via %s, no build phase;"
            src.Source.name index.Source.ix_column index.Source.ix_name;
          line d "   hits are re-checked against %s structurally; non-indexable keys"
            left_col;
          line d "   (Null, decimals) fall back to a lazily built hash table *)";
          line d "Hash_index.probe %s (key %s) ~f:(fun ref blk slot ->"
            index.Source.ix_name left_col;
          line (d + 1) "let %s = (blk, slot) in" m;
          k (d + 1) (Printf.sprintf "(%s, %s)" row m);
          line d ");")
    | Plan.GroupBy { keys; aggs; input } ->
      let table = fresh "groups" in
      line depth "let %s = Hashtbl.create 256 in" table;
      emit input depth (fun d row ->
          ignore row;
          line d "let key = (%s) in"
            (String.concat ", " (List.map (fun (_, e) -> Expr.to_string e) keys));
          line d "let cells = find_or_add %s key in" table;
          List.iter
            (fun (name, agg) ->
              match agg with
              | Plan.Count -> line d "cells.%s <- cells.%s + 1;" name name
              | Plan.Sum e -> line d "cells.%s <- cells.%s + %s;" name name (Expr.to_string e)
              | Plan.Min e -> line d "cells.%s <- min cells.%s %s;" name name (Expr.to_string e)
              | Plan.Max e -> line d "cells.%s <- max cells.%s %s;" name name (Expr.to_string e)
              | Plan.Avg e ->
                line d "cells.%s_sum <- cells.%s_sum + %s; cells.%s_n <- cells.%s_n + 1;"
                  name name (Expr.to_string e) name name)
            aggs);
      let g = fresh "group" in
      line depth "Hashtbl.iter (fun key cells ->";
      line (depth + 1) "let %s = (key, cells) in" g;
      k (depth + 1) g;
      line depth ") %s;" table
    | Plan.OrderBy (specs, input) ->
      let acc = fresh "sorted" in
      line depth "let %s = ref [] in" acc;
      emit input depth (fun d row -> line d "%s := %s :: !%s;" acc row acc);
      line depth "List.iter (fun row ->"
      ;
      line (depth + 1) "(* sorted by %s *)"
        (String.concat ", "
           (List.map
              (fun (e, dir) ->
                Expr.to_string e ^ match dir with Plan.Asc -> " asc" | Plan.Desc -> " desc")
              specs));
      k (depth + 1) "row";
      line depth ") (List.sort compare_rows !%s);" acc
    | Plan.Distinct input ->
      let seen = fresh "seen"  in
      line depth "let %s = Hashtbl.create 256 in" seen;
      emit input depth (fun d row ->
          line d "if not (Hashtbl.mem %s %s) then begin" seen row;
          line (d + 1) "Hashtbl.add %s %s ();" seen row;
          k (d + 1) row;
          line d "end;")
    | Plan.Limit (n, input) ->
      let cnt = fresh "taken" in
      line depth "let %s = ref 0 in" cnt;
      emit input depth (fun d row ->
          line d "if !%s < %d then begin incr %s;" cnt n cnt;
          k (d + 1) row;
          line d "end;")
  in
  line 0 "(* generated query function *)";
  line 0 "let query () =";
  line 1 "enter_critical_section ();";
  emit plan 1 (fun d row -> line d "yield %s;" row);
  line 1 "exit_critical_section ()";
  Buffer.contents buf

let rec operator_count = function
  | Plan.Scan _ | Plan.IndexScan _ -> 1
  | Plan.Where (_, p) | Plan.Select (_, p) | Plan.OrderBy (_, p) | Plan.Limit (_, p)
  | Plan.Distinct p ->
    1 + operator_count p
  | Plan.GroupBy { input; _ } -> 1 + operator_count input
  | Plan.HashJoin { left; right; _ } -> 1 + operator_count left + operator_count right
  | Plan.IndexJoin { left; _ } -> 1 + operator_count left
