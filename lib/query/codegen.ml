(* Query-plan → compiled native code, via source emission + Dynlink.

   The paper's system modifies the C# compiler to expand LINQ queries over
   SMCs into generated imperative functions. Here the same staging runs at
   runtime: a plan is rendered to a self-contained OCaml module — the fused
   loop nest {!Fuse} would execute, but with predicates, projections, key
   extraction and aggregate updates emitted as direct code instead of
   closure chains — compiled with [ocamlopt -shared] against the host
   build's own .cmi files, and loaded into the running process with
   [Dynlink.loadfile_private]. The plugin hands its query function back
   through {!Codegen_abi}, typed by structure ([compiled_fn]).

   Exactness: the emitted code transliterates {!Expr.compile},
   {!Aggregate.compile} and {!Fuse.compile} case by case — same [Value]
   operations, same evaluation order (list/array literals are let-bound
   left-to-right, since OCaml literals evaluate right-to-left), same
   hash-table/ordering structures — so results are bit-identical to Fuse,
   including raises. Two details keep the plugin decoupled from any one
   collection: scans and index probes enter as a closure array, and
   constants as a [Value.t array], both indexed by emission order. The
   compiled function is cached by the digest of its source, so plans that
   differ only in constants or in the collection they scan share one
   plugin.

   Fallback rules (docs/vectorized.md): bytecode hosts, a missing
   toolchain, unlocatable .cmi directories, compile or load failures, and
   the one unsupported operator (IndexJoin — its per-row probe does not fit
   the uniform scan ABI) all fall back to {!Fuse}, reported in
   [prepare]'s outcome and counted under [cg_fallbacks]. *)

type compiled_fn =
  ((Value.t array -> unit) -> unit) array ->
  Value.t array ->
  (Value.t array -> unit) ->
  unit

exception Unsupported of string

(* Pipeline leaves, in emission order — the host builds the [sources]
   closure array from these with the exact closures Fuse would use. *)
type leaf =
  | L_scan of Source.t
  | L_probe of Source.index_info * Value.t
  | L_text of Source.text_info * Smc_text.Sa_index.op * string
  | L_view of Source.matview_info

let indent n = String.make (2 * n) ' '

(* ------------------------------------------------------------------ *)
(* Rendering *)

(* Renders the body of [query] and collects leaves + constants. The
   continuation style mirrors the fused pipeline: every non-blocking
   operator contributes code inside its upstream loop body; blocking
   operators (group-by, order-by, join build) split the nest into phases.
   Convention: continuations emit ';'-terminated statements, and each
   binder closes its block with an explicit [()]. *)
let render plan =
  let buf = Buffer.create 4096 in
  let line depth fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (indent depth ^ s ^ "\n")) fmt
  in
  let fresh =
    let n = ref 0 in
    fun prefix ->
      incr n;
      Printf.sprintf "%s%d" prefix !n
  in
  let leaves = ref [] and nleaves = ref 0 in
  let add_leaf l =
    let i = !nleaves in
    incr nleaves;
    leaves := l :: !leaves;
    i
  in
  let consts = ref [] and nconsts = ref 0 in
  let add_const v =
    let i = !nconsts in
    incr nconsts;
    consts := v :: !consts;
    i
  in
  let limit_exns = ref [] in
  (* Scalar expression over row variable [row]: same Value operations, in
     the same shapes, as the closures Expr.compile builds — so evaluation
     order and raises match. *)
  let rec gx schema row e =
    let g e = gx schema row e in
    let resolve name =
      let rec go i =
        if i >= Array.length schema then
          invalid_arg ("Expr.compile: unknown column " ^ name)
        else if String.equal schema.(i) name then i
        else go (i + 1)
      in
      go 0
    in
    let cmp op a b = Printf.sprintf "(V.Bool (V.compare %s %s %s 0))" (g a) (g b) op in
    match e with
    | Expr.Col name -> Printf.sprintf "(Array.get %s %d)" row (resolve name)
    | Expr.Const v -> Printf.sprintf "(Array.get consts %d)" (add_const v)
    | Expr.Add (a, b) -> Printf.sprintf "(V.add %s %s)" (g a) (g b)
    | Expr.Sub (a, b) -> Printf.sprintf "(V.sub %s %s)" (g a) (g b)
    | Expr.Mul (a, b) -> Printf.sprintf "(V.mul %s %s)" (g a) (g b)
    | Expr.Div (a, b) -> Printf.sprintf "(V.div %s %s)" (g a) (g b)
    | Expr.Neg a -> Printf.sprintf "(V.neg %s)" (g a)
    | Expr.Eq (a, b) -> cmp "=" a b
    | Expr.Ne (a, b) -> cmp "<>" a b
    | Expr.Lt (a, b) -> cmp "<" a b
    | Expr.Le (a, b) -> cmp "<=" a b
    | Expr.Gt (a, b) -> cmp ">" a b
    | Expr.Ge (a, b) -> cmp ">=" a b
    | Expr.And (a, b) ->
      Printf.sprintf "(V.Bool (V.to_bool %s && V.to_bool %s))" (g a) (g b)
    | Expr.Or (a, b) ->
      Printf.sprintf "(V.Bool (V.to_bool %s || V.to_bool %s))" (g a) (g b)
    | Expr.Not a -> Printf.sprintf "(V.Bool (not (V.to_bool %s)))" (g a)
    | Expr.Between (x, lo, hi) ->
      let v = fresh "bv" in
      Printf.sprintf
        "(let %s = %s in V.Bool (V.compare %s %s >= 0 && V.compare %s %s <= 0))"
        v (g x) v (g lo) v (g hi)
    | Expr.Contains (a, needle) ->
      Printf.sprintf "(V.Bool (string_contains ~needle:%S (str_of %s)))" needle (g a)
    | Expr.ContainsCI (a, needle) ->
      Printf.sprintf "(V.Bool (string_contains_ci ~needle:%S (str_of %s)))" needle (g a)
    | Expr.StartsWith (a, prefix) ->
      Printf.sprintf "(V.Bool (starts_with %S (str_of %s)))" prefix (g a)
  in
  (* Ordered [Value.t list] literal: let-bound so effects (raises) run
     left-to-right like List.map over compiled key functions. *)
  let glist schema row exprs =
    match exprs with
    | [] -> "[]"
    | _ ->
      let bound = List.map (fun e -> (fresh "kv", gx schema row e)) exprs in
      Printf.sprintf "(%s[%s])"
        (String.concat "" (List.map (fun (v, src) -> Printf.sprintf "let %s = %s in " v src) bound))
        (String.concat "; " (List.map fst bound))
  in
  let rec emit plan depth k =
    match plan with
    | Plan.Scan src ->
      let i = add_leaf (L_scan src) in
      let row = fresh "row" in
      line depth "(* scan %s: valid slots in block order, one epoch critical" src.Source.name;
      line depth "   section per block on the batch path *)";
      line depth "Array.get sources %d (fun %s ->" i row;
      k (depth + 1) row;
      line (depth + 1) "());";
      ignore (Plan.schema plan)
    | Plan.IndexScan { src; index; value } ->
      let i = add_leaf (L_probe (index, value)) in
      let row = fresh "row" in
      line depth "(* index scan %s.%s via %s: off-heap hash probe, hits" src.Source.name
        index.Source.ix_column index.Source.ix_name;
      line depth "   incarnation-validated and re-checked structurally *)";
      line depth "Array.get sources %d (fun %s ->" i row;
      k (depth + 1) row;
      line (depth + 1) "());"
    | Plan.TextScan { src; text; op; needle } ->
      (* The needle rides in the leaf closure, not the rendered source:
         plans differing only in needle share one compiled plugin, exactly
         like L_probe constants. *)
      let i = add_leaf (L_text (text, op, needle)) in
      let row = fresh "row" in
      line depth "(* text scan %s.%s via %s (%s): suffix-array probe, hits"
        src.Source.name text.Source.tx_column text.Source.tx_name
        (match op with
        | Smc_text.Sa_index.Prefix -> "prefix"
        | Smc_text.Sa_index.Substring -> "substring"
        | Smc_text.Sa_index.Substring_ci -> "substring-ci");
      line depth "   incarnation-validated and text-re-checked *)";
      line depth "Array.get sources %d (fun %s ->" i row;
      k (depth + 1) row;
      line (depth + 1) "());"
    | Plan.ViewRead { src; matview } ->
      (* The maintained view result is a host-side closure like the other
         leaves; only the view's identity shapes the rendered plan. *)
      let i = add_leaf (L_view matview) in
      let row = fresh "row" in
      line depth "(* view read %s.%s: maintained aggregate groups, O(groups) *)"
        src.Source.name matview.Source.mv_name;
      line depth "Array.get sources %d (fun %s ->" i row;
      k (depth + 1) row;
      line (depth + 1) "());"
    | Plan.Where (pred, input) ->
      let schema = Plan.schema input in
      emit input depth (fun d row ->
          line d "if V.to_bool %s then begin" (gx schema row pred);
          k (d + 1) row;
          line (d + 1) "()";
          line d "end;")
    | Plan.Select (cols, input) ->
      let schema = Plan.schema input in
      emit input depth (fun d row ->
          let out = fresh "proj" in
          let bound = List.map (fun (_, e) -> (fresh "pv", gx schema row e)) cols in
          line d "let %s = (%s[| %s |]) in" out
            (String.concat ""
               (List.map (fun (v, src) -> Printf.sprintf "let %s = %s in " v src) bound))
            (String.concat "; " (List.map fst bound));
          k d out)
    | Plan.HashJoin { left; right; on } ->
      let lschema = Plan.schema left and rschema = Plan.schema right in
      let lkeys = List.map (fun (lc, _) -> Expr.Col lc) on in
      let rkeys = List.map (fun (_, rc) -> Expr.Col rc) on in
      let table = fresh "join_tbl" in
      line depth "let %s = Hashtbl.create 1024 in" table;
      emit right depth (fun d row ->
          line d "Hashtbl.add %s %s %s;" table (glist rschema row rkeys) row);
      emit left depth (fun d lrow ->
          let m = fresh "matched" and out = fresh "row" in
          line d "List.iter";
          line (d + 1) "(fun %s ->" m;
          line (d + 2) "let %s = Array.append %s %s in" out lrow m;
          k (d + 2) out;
          line (d + 2) "())";
          line (d + 1) "(Hashtbl.find_all %s %s);" table (glist lschema lrow lkeys))
    | Plan.IndexJoin _ ->
      (* The per-left-row keyed probe (with its ix_accepts split and lazy
         hash fallback) does not fit the uniform scan closure ABI. *)
      raise (Unsupported "IndexJoin is not compiled; executed by Fuse")
    | Plan.GroupBy { keys; aggs; input } ->
      let schema = Plan.schema input in
      let na = List.length aggs in
      let groups = fresh "groups" and order = fresh "order" in
      let counts = fresh "counts" and accs = fresh "accs" in
      line depth "let %s = Hashtbl.create 256 in" groups;
      line depth "let %s = ref [] in" order;
      emit input depth (fun d row ->
          let key = fresh "key" in
          line d "let %s = %s in" key (glist schema row (List.map snd keys));
          line d "let (%s, %s) =" counts accs;
          line (d + 1) "match Hashtbl.find_opt %s %s with" groups key;
          line (d + 1) "| Some c -> c";
          line (d + 1) "| None ->";
          line (d + 2) "let c = (Array.make %d 0, Array.make %d V.Null) in" na na;
          line (d + 2) "Hashtbl.add %s %s c;" groups key;
          line (d + 2) "%s := %s :: !%s;" order key order;
          line (d + 2) "c";
          line d "in";
          (* per-agg updates transliterate Aggregate.compile's cells *)
          List.iteri
            (fun j (_, agg) ->
              let acc = Printf.sprintf "(Array.get %s %d)" accs j in
              let cnt = Printf.sprintf "(Array.get %s %d)" counts j in
              match agg with
              | Plan.Count -> line d "Array.set %s %d (%s + 1);" counts j cnt
              | Plan.Sum e ->
                line d "(let v = %s in" (gx schema row e);
                line d " Array.set %s %d (if %s = V.Null then v else V.add %s v));" accs j
                  acc acc
              | Plan.Min e ->
                line d "(let v = %s in" (gx schema row e);
                line d " if %s = V.Null || V.compare v %s < 0 then Array.set %s %d v);" acc
                  acc accs j
              | Plan.Max e ->
                line d "(let v = %s in" (gx schema row e);
                line d " if %s = V.Null || V.compare v %s > 0 then Array.set %s %d v);" acc
                  acc accs j
              | Plan.Avg e ->
                line d "(let v = %s in" (gx schema row e);
                line d " Array.set %s %d (%s + 1);" counts j cnt;
                line d " Array.set %s %d (if %s = V.Null then v else V.add %s v));" accs j
                  acc acc)
            aggs)
      ;
      let key = fresh "key" and out = fresh "row" in
      let finish =
        List.mapi
          (fun j (_, agg) ->
            let acc = Printf.sprintf "(Array.get %s %d)" accs j in
            let cnt = Printf.sprintf "(Array.get %s %d)" counts j in
            match agg with
            | Plan.Count -> Printf.sprintf "(V.Int %s)" cnt
            | Plan.Sum _ | Plan.Min _ | Plan.Max _ -> acc
            | Plan.Avg _ ->
              Printf.sprintf "(if %s = 0 then V.Null else V.div (promote_dec %s) (V.Int %s))"
                cnt acc cnt)
          aggs
      in
      line depth "List.iter";
      line (depth + 1) "(fun %s ->" key;
      line (depth + 2) "let (%s, %s) = Hashtbl.find %s %s in" counts accs groups key;
      line (depth + 2) "let %s = Array.of_list (%s @ [ %s ]) in" out key
        (String.concat "; " finish);
      k (depth + 2) out;
      line (depth + 2) "())";
      line (depth + 1) "(List.rev !%s);" order
    | Plan.OrderBy (specs, input) ->
      let schema = Plan.schema input in
      let rows = fresh "sorted" and cmp = fresh "cmp" in
      line depth "let %s = ref [] in" rows;
      emit input depth (fun d row -> line d "%s := %s :: !%s;" rows row rows);
      line depth "let %s a b =" cmp;
      let rec gen_cmp specs d =
        match specs with
        | [] -> line d "0"
        | (e, dir) :: rest ->
          line d "let c = V.compare %s %s in" (gx schema "a" e) (gx schema "b" e);
          (match dir with Plan.Asc -> () | Plan.Desc -> line d "let c = -c in");
          line d "if c <> 0 then c";
          line d "else begin";
          gen_cmp rest (d + 1);
          line d "end"
      in
      gen_cmp specs (depth + 1);
      line depth "in";
      let out = fresh "row" in
      line depth "List.iter";
      line (depth + 1) "(fun %s ->" out;
      k (depth + 2) out;
      line (depth + 2) "())";
      line (depth + 1) "(List.stable_sort %s (List.rev !%s));" cmp rows
    | Plan.Distinct input ->
      let seen = fresh "seen" in
      line depth "let %s = Hashtbl.create 256 in" seen;
      emit input depth (fun d row ->
          let key = fresh "dkey" in
          line d "let %s = Array.to_list %s in" key row;
          line d "if not (Hashtbl.mem %s %s) then begin" seen key;
          line (d + 1) "Hashtbl.add %s %s ();" seen key;
          k (d + 1) row;
          line (d + 1) "()";
          line d "end;")
    | Plan.Limit (n, input) ->
      let taken = fresh "taken" in
      let exn = String.capitalize_ascii (fresh "done_") in
      limit_exns := exn :: !limit_exns;
      line depth "let %s = ref 0 in" taken;
      line depth "(try";
      emit input (depth + 1) (fun d row ->
          line d "if !%s < %d then begin" taken n;
          k (d + 1) row;
          line (d + 1) "incr %s;" taken;
          line (d + 1) "if !%s >= %d then raise %s" taken n exn;
          line d "end;");
      line (depth + 1) "()";
      line depth "with %s -> ());" exn
  in
  emit plan 1 (fun d row -> line d "__emit %s;" row);
  line 1 "()";
  (Buffer.contents buf, List.rev !leaves, Array.of_list (List.rev !consts), List.rev !limit_exns)

(* Full plugin module around a rendered body. The prelude transliterates
   the scalar helpers the emitted expressions rely on (Expr's string ops,
   Aggregate's Avg promotion); everything else resolves against the host's
   own smc_query units through their .cmi files. *)
let assemble ~digest ~limit_exns body =
  let b = Buffer.create 8192 in
  let add s = Buffer.add_string b (s ^ "\n") in
  add (Printf.sprintf "(* Generated by Smc_query.Codegen — plan digest %s." digest);
  add "   Compiled with ocamlopt -shared, loaded with Dynlink.loadfile_private;";
  add "   symbols resolve against the host executable's own smc_query units. *)";
  add "[@@@warning \"-a\"]";
  add "";
  (* the library wrapper modules (Smc_query, Smc_decimal) are alias-only
     and may not be linked into the host executable; reference the real
     (mangled) units, whose implementations are always present *)
  add "module V = Smc_query__Value";
  add "";
  add "let promote_dec = function V.Int x -> V.Dec (Smc_decimal__Decimal.of_int x) | v -> v";
  add "";
  add "let string_contains ~needle haystack =";
  add "  let n = String.length needle and h = String.length haystack in";
  add "  if n = 0 then true";
  add "  else begin";
  add "    let at i =";
  add "      let rec go j =";
  add "        j >= n";
  add "        || (String.unsafe_get haystack (i + j) = String.unsafe_get needle j && go (j + 1))";
  add "      in";
  add "      go 0";
  add "    in";
  add "    let rec go i = i + n <= h && (at i || go (i + 1)) in";
  add "    go 0";
  add "  end";
  add "";
  add "let lower_byte c =";
  add "  if c >= 'A' && c <= 'Z' then Char.unsafe_chr (Char.code c + 32) else c";
  add "";
  add "let string_contains_ci ~needle haystack =";
  add "  let n = String.length needle and h = String.length haystack in";
  add "  if n = 0 then true";
  add "  else begin";
  add "    let at i =";
  add "      let rec go j =";
  add "        j >= n";
  add "        || (lower_byte (String.unsafe_get haystack (i + j))";
  add "              = lower_byte (String.unsafe_get needle j)";
  add "           && go (j + 1))";
  add "      in";
  add "      go 0";
  add "    in";
  add "    let rec go i = i + n <= h && (at i || go (i + 1)) in";
  add "    go 0";
  add "  end";
  add "";
  add "let starts_with prefix s =";
  add "  let n = String.length prefix in";
  add "  String.length s >= n";
  add "  &&";
  add "  let rec go j = j >= n || (String.unsafe_get s j = String.unsafe_get prefix j && go (j + 1)) in";
  add "  go 0";
  add "";
  add "let str_of = function V.Str s -> s | v -> V.to_string v";
  add "";
  List.iter (fun e -> add (Printf.sprintf "exception %s" e)) limit_exns;
  if limit_exns <> [] then add "";
  add "let query (sources : ((V.t array -> unit) -> unit) array)";
  add "    (consts : V.t array) (__emit : V.t array -> unit) : unit =";
  Buffer.add_string b body;
  add "";
  add (Printf.sprintf "let () = Smc_query__Codegen_abi.register %S (Obj.repr query)" digest);
  Buffer.contents b

let to_ocaml_source plan =
  let body, _, _, limit_exns = render plan in
  let digest = Digest.to_hex (Digest.string body) in
  assemble ~digest ~limit_exns body

(* ------------------------------------------------------------------ *)
(* Toolchain + compile + load *)

let find_ocamlopt () =
  match Sys.getenv_opt "SMC_CG_OCAMLOPT" with
  | Some p -> if Sys.file_exists p then Some p else None
  | None ->
    let dirs =
      String.split_on_char ':' (Option.value (Sys.getenv_opt "PATH") ~default:"")
    in
    let try_name n =
      List.find_map
        (fun d ->
          if String.equal d "" then None
          else
            let p = Filename.concat d n in
            if Sys.file_exists p then Some p else None)
        dirs
    in
    (match try_name "ocamlopt.opt" with Some p -> Some p | None -> try_name "ocamlopt")

let absolute p = if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p

(* The plugin type-checks against the same .cmi files this executable was
   built from: walk up from the executable to the dune _build root, then
   include every library's .objs dir (byte for .cmi, native for .cmx so
   cross-module inlining stays available). *)
let find_build_root () =
  let marker = Filename.concat "lib" (Filename.concat "query" ".smc_query.objs") in
  let rec up dir =
    if Sys.file_exists (Filename.concat dir marker) then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent
  in
  up (Filename.dirname (absolute Sys.executable_name))

let objs_dirs root =
  let out = ref [] in
  let lib = Filename.concat root "lib" in
  if Sys.file_exists lib && Sys.is_directory lib then
    Array.iter
      (fun sub ->
        let d = Filename.concat lib sub in
        if Sys.is_directory d then
          Array.iter
            (fun e ->
              if Filename.check_suffix e ".objs" then
                List.iter
                  (fun v ->
                    let p = Filename.concat (Filename.concat d e) v in
                    if Sys.file_exists p then out := p :: !out)
                  [ "byte"; "native" ])
            (Sys.readdir d))
      (Sys.readdir lib);
  !out

let toolchain =
  lazy
    (if not Dynlink.is_native then
       Error "bytecode host: Dynlink cannot load native plugins"
     else
       match find_ocamlopt () with
       | None -> Error "ocamlopt not found on PATH (set SMC_CG_OCAMLOPT)"
       | Some oc ->
         let extra =
           match Sys.getenv_opt "SMC_CG_INCLUDE" with
           | Some s -> List.filter (fun d -> d <> "") (String.split_on_char ':' s)
           | None -> []
         in
         (match find_build_root () with
          | Some root -> Ok (oc, extra @ objs_dirs root)
          | None ->
            if extra <> [] then Ok (oc, extra)
            else
              Error
                "cannot locate the build's .cmi directories (set SMC_CG_INCLUDE)"))

let available () = match Lazy.force toolchain with Ok _ -> true | Error _ -> false

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with _ -> ""

let compile_and_load ~digest source =
  match Lazy.force toolchain with
  | Error reason -> Error reason
  | Ok (ocamlopt, incs) ->
    let dir =
      match Sys.getenv_opt "SMC_CG_TMPDIR" with
      | Some d -> d
      | None -> Filename.get_temp_dir_name ()
    in
    let base =
      Filename.concat dir
        (Printf.sprintf "smc_cg_%d_%s" (Unix.getpid ()) (String.sub digest 0 12))
    in
    let ml = base ^ ".ml" and cmxs = base ^ ".cmxs" and log = base ^ ".log" in
    let cleanup () =
      if Sys.getenv_opt "SMC_CG_KEEP" = None then
        List.iter
          (fun ext -> try Sys.remove (base ^ ext) with Sys_error _ -> ())
          [ ".ml"; ".cmi"; ".cmx"; ".o"; ".cmxs"; ".log" ]
    in
    Fun.protect ~finally:cleanup (fun () ->
        let oc = open_out ml in
        output_string oc source;
        close_out oc;
        let cmd =
          Printf.sprintf "%s -shared -w -a %s -o %s %s > %s 2>&1"
            (Filename.quote ocamlopt)
            (String.concat " " (List.map (fun d -> "-I " ^ Filename.quote d) incs))
            (Filename.quote cmxs) (Filename.quote ml) (Filename.quote log)
        in
        if Sys.command cmd <> 0 then
          Error (Printf.sprintf "ocamlopt failed: %s" (String.trim (read_file log)))
        else
          match Dynlink.loadfile_private cmxs with
          | exception Dynlink.Error e -> Error (Dynlink.error_message e)
          | () ->
            (match Codegen_abi.take digest with
             | Some o -> Ok (Obj.obj o : compiled_fn)
             | None -> Error "plugin loaded but registered nothing"))

(* ------------------------------------------------------------------ *)
(* Cache + execution *)

let cache : (string, compiled_fn) Hashtbl.t = Hashtbl.create 8
let cache_lock = Mutex.create ()

type outcome = Native of string | Fallback of string

let rec plan_obs plan =
  let src_obs (s : Source.t) = s.Source.obs in
  match plan with
  | Plan.Scan s -> src_obs s
  | Plan.IndexScan { src; _ } | Plan.TextScan { src; _ } | Plan.ViewRead { src; _ } ->
    src_obs src
  | Plan.Where (_, p) | Plan.Select (_, p) | Plan.OrderBy (_, p) | Plan.Limit (_, p)
  | Plan.Distinct p ->
    plan_obs p
  | Plan.GroupBy { input; _ } -> plan_obs input
  | Plan.HashJoin { left; right; _ } -> (
    match plan_obs left with Some o -> Some o | None -> plan_obs right)
  | Plan.IndexJoin { left; src; _ } -> (
    match plan_obs left with Some o -> Some o | None -> src_obs src)

let leaf_closure = function
  | L_scan src -> src.Source.scan
  | L_probe (index, value) -> fun emit -> index.Source.ix_probe value emit
  | L_text (text, op, needle) -> fun emit -> text.Source.tx_probe op needle emit
  | L_view matview -> matview.Source.mv_read

let prepare plan =
  let obs = plan_obs plan in
  let bump c = match obs with Some o -> Smc_obs.incr o c | None -> () in
  bump Smc_obs.c_cg_requests;
  match render plan with
  | exception Unsupported reason ->
    bump Smc_obs.c_cg_fallbacks;
    ((fun f -> Fuse.run plan ~f), Fallback reason)
  | body, leaves, consts, limit_exns ->
    let digest = Digest.to_hex (Digest.string body) in
    let fetch () =
      Mutex.lock cache_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock cache_lock)
        (fun () ->
          match Hashtbl.find_opt cache digest with
          | Some fn -> Ok (fn, true)
          | None ->
            (match compile_and_load ~digest (assemble ~digest ~limit_exns body) with
             | Ok fn ->
               Hashtbl.replace cache digest fn;
               Ok (fn, false)
             | Error reason -> Error reason))
    in
    (match fetch () with
     | Ok (fn, hit) ->
       bump (if hit then Smc_obs.c_cg_cache_hits else Smc_obs.c_cg_compiles);
       let sources = Array.of_list (List.map leaf_closure leaves) in
       ((fun f -> fn sources consts f), Native digest)
     | Error reason ->
       bump Smc_obs.c_cg_fallbacks;
       ((fun f -> Fuse.run plan ~f), Fallback reason))

let run plan ~f =
  let runner, _ = prepare plan in
  runner f

let collect plan =
  let out = ref [] in
  run plan ~f:(fun row -> out := row :: !out);
  List.rev !out

let rec operator_count = function
  | Plan.Scan _ | Plan.IndexScan _ | Plan.TextScan _ | Plan.ViewRead _ -> 1
  | Plan.Where (_, p) | Plan.Select (_, p) | Plan.OrderBy (_, p) | Plan.Limit (_, p)
  | Plan.Distinct p ->
    1 + operator_count p
  | Plan.GroupBy { input; _ } -> 1 + operator_count input
  | Plan.HashJoin { left; right; _ } -> 1 + operator_count left + operator_count right
  | Plan.IndexJoin { left; _ } -> 1 + operator_count left
