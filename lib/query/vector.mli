(** Vectorized batch-at-a-time plan evaluator.

    The fourth execution engine over the same {!Plan.t} as {!Interp}
    (Volcano), {!Fuse} and {!Codegen}: operators process column chunks
    ({!Batch.t}, default 1024 rows) instead of a per-row closure chain.
    Sources with a batch path ({!Source.t.scan_batches}) fill unboxed
    column chunks straight from the off-heap blocks — one epoch critical
    section per block — and filters refine the chunk's selection vector
    with branchless loops; row-only sources and row-at-a-time operators
    (joins, sorts, distinct, index probes) are bridged through a
    re-batcher, so every plan the other engines accept runs here too.

    Results are bit-identical to {!Fuse.collect} on the same plan, in the
    same row order: typed kernels are used only where they provably
    reproduce the scalar {!Value}/{!Expr}/{!Aggregate} semantics
    (including raises), and everything else falls back to the scalar code
    evaluated over the batch. The only visible difference: a plan that
    raises mid-scan may raise at a different row of a chunk, because
    sub-expressions evaluate column-by-column.

    Filter selectivity is observable via the [vec_filter_rows_*] counters;
    batch production via [vec_batches]/[vec_batch_rows] (see
    docs/observability.md). *)

val default_batch_rows : int
(** = {!Batch.default_rows}. *)

val run : ?batch_rows:int -> Plan.t -> f:(Value.t array -> unit) -> unit
(** Evaluate the plan, pushing each result row. [batch_rows] (default
    {!default_batch_rows}, clamped to ≥ 1) sets the chunk capacity —
    exercise 1 to force single-row chunks in tests. *)

val collect : ?batch_rows:int -> Plan.t -> Value.t array list
(** [run] into a list, in emission order. *)
