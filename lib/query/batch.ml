(* Column chunks for the vectorized engine (docs/vectorized.md).

   A batch is a loan: operators receive it, read or refine it, and must not
   retain it past the emit callback — producers reuse the same storage for
   the next chunk. Columns are typed unboxed arrays where the source knows
   the field type (the off-heap layouts always do), or boxed [Value.t]
   arrays for opaque columns; [sel] is the selection vector — an int
   Bigarray whose first [len] entries are the indices of the surviving
   rows, in ascending row order. Filters shrink [sel] without touching the
   column storage, so a cut row costs nothing to drop and nothing to skip:
   downstream operators gather through [sel]. *)

module Context = Smc_offheap.Context

type sel = Context.sel

(* Column-kind lattice. A column's kind is static — fixed by the source
   layout or derived by the expression compiler — so each operator picks
   its typed kernel once, at plan-compile time, never per batch. [K_any]
   means boxed ([V_val]) storage and routes through the row-at-a-time
   fallback, which reuses the scalar [Expr]/[Value] code paths verbatim:
   exactness by construction. *)
type kind = K_int | K_dec | K_date | K_bool | K_char | K_str | K_any

(* Unboxed ints carry Dec (fixed-point), Date (epoch days) and Char (byte
   codes) columns too — same word the off-heap block stores. *)
type vec =
  | V_int of int array
  | V_dec of int array
  | V_date of int array
  | V_bool of bool array
  | V_char of int array
  | V_str of string array
  | V_val of Value.t array

type t = { cols : vec array; sel : sel; mutable len : int }

let default_rows = 1024

let kind_of_vec = function
  | V_int _ -> K_int
  | V_dec _ -> K_dec
  | V_date _ -> K_date
  | V_bool _ -> K_bool
  | V_char _ -> K_char
  | V_str _ -> K_str
  | V_val _ -> K_any

(* Shared 1-char string table: boxing a Char column must not allocate a
   fresh string per row. Structural equality with [Value.Str] stays exact. *)
let char_strings = Array.init 256 (fun c -> String.make 1 (Char.chr c))
let char_str c = Array.unsafe_get char_strings (c land 0xFF)

let box_vec v i =
  match v with
  | V_int a -> Value.Int (Array.unsafe_get a i)
  | V_dec a -> Value.Dec (Array.unsafe_get a i)
  | V_date a -> Value.Date (Array.unsafe_get a i)
  | V_bool a -> Value.Bool (Array.unsafe_get a i)
  | V_char a -> Value.Str (char_str (Array.unsafe_get a i))
  | V_str a -> Value.Str (Array.unsafe_get a i)
  | V_val a -> Array.unsafe_get a i

let vec_len = function
  | V_int a | V_dec a | V_date a | V_char a -> Array.length a
  | V_bool a -> Array.length a
  | V_str a -> Array.length a
  | V_val a -> Array.length a

let make_vec kind cap =
  match kind with
  | K_int -> V_int (Array.make cap 0)
  | K_dec -> V_dec (Array.make cap 0)
  | K_date -> V_date (Array.make cap 0)
  | K_bool -> V_bool (Array.make cap false)
  | K_char -> V_char (Array.make cap 0)
  | K_str -> V_str (Array.make cap "")
  | K_any -> V_val (Array.make cap Value.Null)

let create ~kinds ~cap =
  let cap = max cap 1 in
  { cols = Array.map (fun k -> make_vec k cap) kinds; sel = Context.make_sel cap; len = 0 }

let set_identity t n =
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set t.sel i i
  done;
  t.len <- n

(* Boxed row at selection position [i] (not a physical row index). *)
let row t i =
  let r = Bigarray.Array1.unsafe_get t.sel i in
  Array.map (fun v -> box_vec v r) t.cols

let iter_rows t ~f =
  for i = 0 to t.len - 1 do
    f (row t i)
  done

(* Re-batcher: pack boxed rows back into [V_val] batches so row-at-a-time
   operators (joins, sorts, index probes) can keep feeding vectorized
   consumers. The returned batch is reused across emits — same loan
   contract as every other producer. *)
let rebatcher ~ncols ~rows ~emit =
  let cap = max rows 1 in
  let store = Array.init ncols (fun _ -> Array.make cap Value.Null) in
  let b =
    { cols = Array.map (fun a -> V_val a) store; sel = Context.make_sel cap; len = 0 }
  in
  let n = ref 0 in
  let flush () =
    if !n > 0 then begin
      (* re-identity every emit: a downstream filter may have compacted
         [sel] in place on the previous loan of this same batch *)
      set_identity b !n;
      emit b;
      n := 0
    end
  in
  let push (row : Value.t array) =
    let i = !n in
    for c = 0 to ncols - 1 do
      Array.unsafe_set (Array.unsafe_get store c) i (Array.unsafe_get row c)
    done;
    n := i + 1;
    if !n = cap then flush ()
  in
  (push, flush)
