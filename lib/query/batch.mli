(** Column chunks for the vectorized engine.

    A batch holds one ~1024-row chunk of a plan's intermediate result as an
    array of column vectors plus a {e selection vector}: an int Bigarray
    whose first [len] entries index the surviving rows, ascending. Filters
    refine [sel] in place — branchless write-then-conditionally-advance —
    and never move column data; downstream operators gather through [sel].

    Batches are loans: a producer passes the same storage to its emit
    callback for every chunk, so consumers must finish with (or copy out
    of) a batch before returning. See docs/vectorized.md. *)

type sel = Smc_offheap.Context.sel

type kind = K_int | K_dec | K_date | K_bool | K_char | K_str | K_any
(** Static column kind: fixed by the source layout or derived by the
    expression compiler, so operators pick their typed kernel once per
    plan, never per batch. [K_any] = boxed storage + row-at-a-time
    fallback through the scalar [Expr]/[Value] code (exact by
    construction). *)

type vec =
  | V_int of int array
  | V_dec of int array  (** fixed-point, {!Smc_decimal.Decimal.t} words *)
  | V_date of int array  (** epoch days *)
  | V_bool of bool array
  | V_char of int array  (** byte codes; boxed through a shared string table *)
  | V_str of string array
  | V_val of Value.t array

type t = { cols : vec array; sel : sel; mutable len : int }

val default_rows : int
(** Chunk capacity used by the engine: 1024. *)

val kind_of_vec : vec -> kind
val vec_len : vec -> int
val make_vec : kind -> int -> vec

val char_str : int -> string
(** 1-char string for a byte code, from the shared table (no allocation). *)

val box_vec : vec -> int -> Value.t
(** Boxed value at a {e physical} row index of a column vector. *)

val create : kinds:kind array -> cap:int -> t
(** Fresh batch with per-kind column storage and an empty selection. *)

val set_identity : t -> int -> unit
(** Make the first [n] selection entries the identity and set [len := n] —
    a freshly filled chunk where all rows survive. *)

val row : t -> int -> Value.t array
(** Boxed row at selection {e position} [i] (0 ≤ i < len). *)

val iter_rows : t -> f:(Value.t array -> unit) -> unit
(** Box and visit every surviving row, in selection order. *)

val rebatcher :
  ncols:int -> rows:int -> emit:(t -> unit) -> (Value.t array -> unit) * (unit -> unit)
(** [rebatcher ~ncols ~rows ~emit] returns [(push, flush)]: [push] packs
    boxed rows into reused [V_val] batches of [rows] capacity, emitting
    each full chunk; [flush] emits the final partial chunk. How
    row-at-a-time operators keep feeding vectorized consumers. *)
