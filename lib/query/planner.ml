(* Access-path selection: a single bottom-up rewrite that lowers logical
   shapes onto the index paths sources advertise. Deliberately a separate,
   explicit pass — plans run unchanged unless the caller opts in, which is
   what lets the test suite compare indexed and scan-only executions of the
   same logical plan. *)

(* Flatten a conjunction into its conjuncts. *)
let rec conjuncts = function
  | Expr.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* [col = const] in either orientation, as an (column, value) pair. *)
let eq_const = function
  | Expr.Eq (Expr.Col c, Expr.Const v) | Expr.Eq (Expr.Const v, Expr.Col c) -> Some (c, v)
  | _ -> None

(* A substring/prefix test over a bare column, as (column, op, needle).
   Empty needles are not routed: they match every row, so the probe would
   be a slower full scan. *)
let text_const = function
  | Expr.Contains (Expr.Col c, s) when s <> "" -> Some (c, Smc_text.Sa_index.Substring, s)
  | Expr.ContainsCI (Expr.Col c, s) when s <> "" ->
    Some (c, Smc_text.Sa_index.Substring_ci, s)
  | Expr.StartsWith (Expr.Col c, s) when s <> "" -> Some (c, Smc_text.Sa_index.Prefix, s)
  | _ -> None

(* Pick the first conjunct the source can answer with an index probe. The
   whole predicate — matched equality included — stays behind as a
   residual filter over the probe's output: the probe is an access path,
   not the authority on the predicate. Re-checking the matched conjunct
   is cheap relative to the probe and belt-and-braces against the cases
   where a probe and the logical predicate can disagree (key words alias
   across value types; a column/index association that violates the
   [Source.of_smc] agreement contract). *)
let rewrite_where pred src =
  let rec find_eq = function
    | [] -> None
    | e :: rest ->
      (match eq_const e with
      | Some (c, v) ->
        (match Source.find_index src c with
        | Some index when index.Source.ix_accepts v ->
          Some (Plan.IndexScan { src; index; value = v })
        | _ -> find_eq rest)
      | None -> find_eq rest)
  in
  let rec find_text = function
    | [] -> None
    | e :: rest ->
      (match text_const e with
      | Some (c, op, needle) ->
        (match Source.find_text src c with
        | Some text -> Some (Plan.TextScan { src; text; op; needle })
        | None -> find_text rest)
      | None -> find_text rest)
  in
  let cs = conjuncts pred in
  (* Equality probes first: a hash/suffix tie would be rare, and the
     equality path is the more selective one when both apply. *)
  match (match find_eq cs with Some b -> Some b | None -> find_text cs) with
  | None -> None
  | Some base -> Some (Plan.Where (pred, base))

(* A [GroupBy] whose shape is exactly a view's reified plan — same keys,
   same aggregates, same filter (or no filter), over a bare scan of the
   advertising source — reads the maintained result instead of
   re-aggregating. The match is structural on the Expr ASTs, so spelling
   the query differently (commuted conjuncts, renamed output columns)
   deliberately does NOT match: the view answers exactly the plan it
   reified, nothing it would have to prove equivalent. *)
let rewrite_group_by ~keys ~aggs input =
  let shape =
    match input with
    | Plan.Scan src -> Some (src, None)
    | Plan.Where (pred, Plan.Scan src) -> Some (src, Some pred)
    | _ -> None
  in
  match shape with
  | None -> None
  | Some (src, where) ->
    let vaggs = List.map (fun (n, a) -> (n, Plan.view_agg_of_agg a)) aggs in
    (match Source.find_matview src ~keys ~aggs:vaggs ~where with
    | Some matview -> Some (Plan.ViewRead { src; matview })
    | None -> None)

let rec choose_access_paths plan =
  match plan with
  | Plan.Scan _ | Plan.IndexScan _ | Plan.TextScan _ | Plan.ViewRead _ -> plan
  | Plan.Where (pred, input) ->
    (match choose_access_paths input with
    | Plan.Scan src as input' ->
      (match rewrite_where pred src with
      | Some rewritten -> rewritten
      | None -> Plan.Where (pred, input'))
    | input' -> Plan.Where (pred, input'))
  | Plan.Select (cols, p) -> Plan.Select (cols, choose_access_paths p)
  | Plan.HashJoin { left; right; on } ->
    let left = choose_access_paths left in
    (match (right, on) with
    | Plan.Scan src, [ (left_col, right_col) ] ->
      (match Source.find_index src right_col with
      | Some index -> Plan.IndexJoin { left; src; index; left_col }
      | None -> Plan.HashJoin { left; right = choose_access_paths right; on })
    | _ -> Plan.HashJoin { left; right = choose_access_paths right; on })
  | Plan.IndexJoin { left; src; index; left_col } ->
    Plan.IndexJoin { left = choose_access_paths left; src; index; left_col }
  | Plan.GroupBy { keys; aggs; input } ->
    (* The view match runs against the ORIGINAL input shape: a lower
       rewrite (e.g. the filter lowering to a TextScan) would hide the
       [Where (pred, Scan src)] pattern the view reified. *)
    (match rewrite_group_by ~keys ~aggs input with
    | Some rewritten -> rewritten
    | None -> Plan.GroupBy { keys; aggs; input = choose_access_paths input })
  | Plan.OrderBy (specs, p) -> Plan.OrderBy (specs, choose_access_paths p)
  | Plan.Limit (n, p) -> Plan.Limit (n, choose_access_paths p)
  | Plan.Distinct p -> Plan.Distinct (choose_access_paths p)

let rec uses_index = function
  | Plan.IndexScan _ | Plan.IndexJoin _ | Plan.TextScan _ | Plan.ViewRead _ -> true
  | Plan.Scan _ -> false
  | Plan.Where (_, p)
  | Plan.Select (_, p)
  | Plan.OrderBy (_, p)
  | Plan.Limit (_, p)
  | Plan.Distinct p ->
    uses_index p
  | Plan.GroupBy { input; _ } -> uses_index input
  | Plan.HashJoin { left; right; _ } -> uses_index left || uses_index right
