(* Hand-off table between the host and Dynlink-loaded query plugins.

   A generated plugin cannot return a value from [Dynlink.loadfile_private] —
   loading runs its top-level and yields unit — so the plugin's last
   definition deposits its compiled query function here, keyed by the plan
   digest the host compiled it under, and the host takes it right after the
   load returns. Values cross as [Obj.t]: the host knows the static type it
   emitted the plugin against ({!Codegen}'s [compiled_fn]) and is the only
   reader. Entries are removed on [take] so a failed hand-off is observable
   (the table never masks a stale registration from an earlier load). *)

let table : (string, Obj.t) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

let register key v =
  Mutex.lock lock;
  Hashtbl.replace table key v;
  Mutex.unlock lock

let take key =
  Mutex.lock lock;
  let v = Hashtbl.find_opt table key in
  Hashtbl.remove table key;
  Mutex.unlock lock;
  v
