(* Vectorized batch-at-a-time engine (docs/vectorized.md).

   The fourth evaluator: the same [Plan.t] as Volcano/Fuse/Codegen, but
   operators process ~1024-row column chunks ([Batch.t]) instead of calling
   a closure chain per row. Filters refine the batch's selection vector in
   place with branchless write-then-conditionally-advance loops; arithmetic
   runs over unboxed int words (Dec fixed-point, Date epoch days, Char byte
   codes share the int representation the blocks store).

   Exactness contract: every result row is bit-identical to Fuse's, in the
   same order. Typed kernels exist only where they provably reproduce the
   scalar [Value]/[Expr]/[Aggregate] semantics (including raises); every
   other expression or operator falls back to the scalar code itself,
   evaluated row-at-a-time over the batch — so vectorization can never
   change what a plan means, only what it costs. The one visible
   difference: a plan that raises mid-scan may raise at a different row,
   because a chunk evaluates sub-expressions column-by-column, not
   row-by-row. *)

module D = Smc_decimal.Decimal

type pipe = {
  schema : string array;
  kinds : Batch.kind array;
  run : (Batch.t -> unit) -> unit;
  obs : Smc_obs.t option;
}

let resolve schema name =
  let rec go i =
    if i >= Array.length schema then invalid_arg ("Expr.compile: unknown column " ^ name)
    else if String.equal schema.(i) name then i
    else go (i + 1)
  in
  go 0

let int_like = function
  | Batch.K_int | Batch.K_dec | Batch.K_date | Batch.K_char -> true
  | _ -> false

let int_array_of_vec = function
  | Batch.V_int a | Batch.V_dec a | Batch.V_date a | Batch.V_char a -> a
  | _ -> assert false

let box_of_kind = function
  | Batch.K_int -> fun n -> Value.Int n
  | Batch.K_dec -> fun n -> Value.Dec n
  | Batch.K_date -> fun n -> Value.Date n
  | Batch.K_char -> fun n -> Value.Str (Batch.char_str n)
  | _ -> assert false

(* ---- expression compilation (value context) ------------------------- *)

(* A compiled expression yields, per batch, an accessor by selection
   *position* (0 ≤ i < len). Positions stay stable while a filter compacts
   [sel] in place (the write cursor never passes the read cursor), so the
   same accessor shape serves filters and materializers. *)
type ev =
  | E_scalar of Value.t
  | E_ints of Batch.kind * (Batch.t -> int -> int)  (* unboxed int-like *)
  | E_boxed of (Batch.t -> int -> Value.t)  (* scalar-code fallback *)

let boxed_col_prep ci bt =
  let v = bt.Batch.cols.(ci) in
  let sel = bt.Batch.sel in
  fun i -> Batch.box_vec v (Bigarray.Array1.unsafe_get sel i)

(* Row-at-a-time fallback: gather only the referenced columns into a small
   boxed row and run [Expr.compile] itself — semantics (and raises) are the
   scalar engine's by construction. *)
let fallback_ev ~schema e =
  let cols =
    List.fold_left (fun acc c -> if List.mem c acc then acc else c :: acc) [] (Expr.columns e)
    |> List.rev
  in
  let sub_schema = Array.of_list cols in
  let f = Expr.compile ~schema:sub_schema e in
  let accs = Array.of_list (List.map (fun c -> boxed_col_prep (resolve schema c)) cols) in
  E_boxed
    (fun bt ->
      let gs = Array.map (fun a -> a bt) accs in
      fun i -> f (Array.map (fun g -> g i) gs))

let boxed_of_ev = function
  | E_scalar v -> fun _ _ -> v
  | E_boxed g -> g
  | E_ints (k, prep) ->
    let box = box_of_kind k in
    fun bt ->
      let g = prep bt in
      fun i -> box (g i)

(* An int-like side for a typed comparison/grouping kernel: the kind plus
   an unboxed accessor. [None] = this operand cannot enter a typed kernel.
   [dates] admits Date/Char sides (valid for compares and keys, not for
   arithmetic — [Value.arith] only accepts Int/Dec). *)
let num_side ~dates = function
  | E_ints (k, p)
    when k = Batch.K_int || k = Batch.K_dec
         || (dates && (k = Batch.K_date || k = Batch.K_char)) ->
    Some (k, p)
  | E_scalar (Value.Int n) -> Some (Batch.K_int, fun _ _ -> n)
  | E_scalar (Value.Dec d) -> Some (Batch.K_dec, fun _ _ -> d)
  | E_scalar (Value.Date d) when dates -> Some (Batch.K_date, fun _ _ -> d)
  | _ -> None

(* Int→Dec promotion, exactly [Value]'s [D.of_int] scaling. *)
let promote_side k p =
  if k = Batch.K_int then fun bt ->
    let g = p bt in
    fun i -> D.of_int (g i)
  else p

let rec compile_value ~schema ~kinds e : ev =
  (* Typed arithmetic exists only for Int/Dec operands — exactly the domain
     of [Value.arith]; everything else (Dates, Strs, Null…) must raise
     through the scalar code, so it falls back. *)
  let arith int_op dec_op a b =
    let ea = compile_value ~schema ~kinds a and eb = compile_value ~schema ~kinds b in
    match (num_side ~dates:false ea, num_side ~dates:false eb) with
    | Some (Batch.K_int, pa), Some (Batch.K_int, pb) ->
      E_ints
        ( Batch.K_int,
          fun bt ->
            let ga = pa bt and gb = pb bt in
            fun i -> int_op (ga i) (gb i) )
    | Some (ka, pa), Some (kb, pb) ->
      let pa = promote_side ka pa and pb = promote_side kb pb in
      E_ints
        ( Batch.K_dec,
          fun bt ->
            let ga = pa bt and gb = pb bt in
            fun i -> dec_op (ga i) (gb i) )
    | _ -> fallback_ev ~schema e
  in
  match e with
  | Expr.Col name ->
    let ci = resolve schema name in
    (match kinds.(ci) with
    | (Batch.K_int | Batch.K_dec | Batch.K_date | Batch.K_char) as k ->
      E_ints
        ( k,
          fun bt ->
            let arr = int_array_of_vec bt.Batch.cols.(ci) in
            let sel = bt.Batch.sel in
            fun i -> Array.unsafe_get arr (Bigarray.Array1.unsafe_get sel i) )
    | _ -> E_boxed (boxed_col_prep ci))
  | Expr.Const v -> E_scalar v
  | Expr.Add (a, b) -> arith ( + ) D.add a b
  | Expr.Sub (a, b) -> arith ( - ) D.sub a b
  | Expr.Mul (a, b) -> arith ( * ) D.mul a b
  | Expr.Div (a, b) -> arith ( / ) D.div a b
  | Expr.Neg a -> (
    match compile_value ~schema ~kinds a with
    | E_ints ((Batch.K_int | Batch.K_dec) as k, prep) ->
      E_ints
        ( k,
          fun bt ->
            let g = prep bt in
            fun i -> -g i )
    | E_scalar (Value.Int n) -> E_scalar (Value.Int (-n))
    | E_scalar (Value.Dec d) -> E_scalar (Value.Dec (D.neg d))
    | _ -> fallback_ev ~schema e)
  | _ -> fallback_ev ~schema e

let kind_of_ev = function
  | E_scalar (Value.Int _) -> Batch.K_int
  | E_scalar (Value.Dec _) -> Batch.K_dec
  | E_scalar (Value.Date _) -> Batch.K_date
  | E_scalar (Value.Bool _) -> Batch.K_bool
  | E_scalar (Value.Str _) -> Batch.K_str
  | E_scalar Value.Null -> Batch.K_any
  | E_ints (k, _) -> k
  | E_boxed _ -> Batch.K_any

(* ---- filters (predicate context) ------------------------------------ *)

(* Refine [sel] in place keeping positions where [keep] holds; branchless
   write-then-conditionally-advance. The write cursor never passes the read
   cursor, so accessors by position remain valid during compaction. *)
let refine bt keep =
  let sel = bt.Batch.sel in
  let n = bt.Batch.len in
  let k = ref 0 in
  for i = 0 to n - 1 do
    let s = Bigarray.Array1.unsafe_get sel i in
    Bigarray.Array1.unsafe_set sel !k s;
    k := !k + Bool.to_int (keep i)
  done;
  bt.Batch.len <- !k

type cmp_op = O_eq | O_ne | O_lt | O_le | O_gt | O_ge

let op_test = function
  | O_eq -> fun c -> c = 0
  | O_ne -> fun c -> c <> 0
  | O_lt -> fun c -> c < 0
  | O_le -> fun c -> c <= 0
  | O_gt -> fun c -> c > 0
  | O_ge -> fun c -> c >= 0

(* Mirror the operator across operand swap: [compare a b ⊛ 0] ⇔
   [compare b a ⊛' 0]. Exact because [Value.compare] is antisymmetric on
   every non-raising pair — and swapped operands only ever enter typed
   kernels, which never raise. *)
let flip_op = function
  | O_eq -> O_eq
  | O_ne -> O_ne
  | O_lt -> O_gt
  | O_le -> O_ge
  | O_gt -> O_lt
  | O_ge -> O_le

(* Hot path: raw column word against an unboxed constant — one branchless
   loop per operator, no closures, no per-row allocation. *)
let filter_col_const ci op k0 bt =
  let arr = int_array_of_vec bt.Batch.cols.(ci) in
  let sel = bt.Batch.sel in
  let n = bt.Batch.len in
  let k = ref 0 in
  (match op with
  | O_eq ->
    for i = 0 to n - 1 do
      let s = Bigarray.Array1.unsafe_get sel i in
      Bigarray.Array1.unsafe_set sel !k s;
      k := !k + Bool.to_int (Array.unsafe_get arr s = k0)
    done
  | O_ne ->
    for i = 0 to n - 1 do
      let s = Bigarray.Array1.unsafe_get sel i in
      Bigarray.Array1.unsafe_set sel !k s;
      k := !k + Bool.to_int (Array.unsafe_get arr s <> k0)
    done
  | O_lt ->
    for i = 0 to n - 1 do
      let s = Bigarray.Array1.unsafe_get sel i in
      Bigarray.Array1.unsafe_set sel !k s;
      k := !k + Bool.to_int (Array.unsafe_get arr s < k0)
    done
  | O_le ->
    for i = 0 to n - 1 do
      let s = Bigarray.Array1.unsafe_get sel i in
      Bigarray.Array1.unsafe_set sel !k s;
      k := !k + Bool.to_int (Array.unsafe_get arr s <= k0)
    done
  | O_gt ->
    for i = 0 to n - 1 do
      let s = Bigarray.Array1.unsafe_get sel i in
      Bigarray.Array1.unsafe_set sel !k s;
      k := !k + Bool.to_int (Array.unsafe_get arr s > k0)
    done
  | O_ge ->
    for i = 0 to n - 1 do
      let s = Bigarray.Array1.unsafe_get sel i in
      Bigarray.Array1.unsafe_set sel !k s;
      k := !k + Bool.to_int (Array.unsafe_get arr s >= k0)
    done);
  bt.Batch.len <- !k

(* Range fast path: one pass for Between(col, lo, hi), inclusive. *)
let filter_col_between ci lo hi bt =
  let arr = int_array_of_vec bt.Batch.cols.(ci) in
  let sel = bt.Batch.sel in
  let n = bt.Batch.len in
  let k = ref 0 in
  for i = 0 to n - 1 do
    let s = Bigarray.Array1.unsafe_get sel i in
    Bigarray.Array1.unsafe_set sel !k s;
    let v = Array.unsafe_get arr s in
    k := !k + Bool.to_int (v >= lo && v <= hi)
  done;
  bt.Batch.len <- !k

(* Constant word for comparing a typed int-like column against a constant,
   under [Value.compare]'s Int/Dec promotion. None = the scalar comparison
   would not be a same-representation int compare, so the fast loop does
   not apply (it may be the char/Null special case, or a type error that
   must raise through the fallback). *)
let const_word col_kind v =
  match (col_kind, v) with
  | Batch.K_int, Value.Int n -> Some n
  | Batch.K_dec, Value.Dec d -> Some d
  | Batch.K_dec, Value.Int n -> Some (D.of_int n)
  | Batch.K_date, Value.Date d -> Some d
  | _ -> None

(* [Value.compare] of a 1-char string (Char column) against a string
   constant, on byte codes: first-byte order, then length as the
   tiebreak — exactly [String.compare] on a 1-char left operand. *)
let char_cmp_const s =
  if String.length s = 0 then fun _ -> 1
  else begin
    let c0 = Char.code s.[0] in
    let tail = if String.length s = 1 then 0 else -1 in
    fun c ->
      let d = Int.compare c c0 in
      if d <> 0 then d else tail
  end

let rebuild op a b =
  match op with
  | O_eq -> Expr.Eq (a, b)
  | O_ne -> Expr.Ne (a, b)
  | O_lt -> Expr.Lt (a, b)
  | O_le -> Expr.Le (a, b)
  | O_gt -> Expr.Gt (a, b)
  | O_ge -> Expr.Ge (a, b)

let rec compile_filter ~schema ~kinds pred : Batch.t -> unit =
  let value e = compile_value ~schema ~kinds e in
  (* Scalar fallback: [Expr.compile]'s own evaluation over the surviving
     rows only — the rows the row engines would evaluate it on. *)
  let boxed_keep e =
    let g = boxed_of_ev (value e) in
    fun bt ->
      let gv = g bt in
      refine bt (fun i -> Value.to_bool (gv i))
  in
  let col_kind = function
    | Expr.Col name ->
      let ci = resolve schema name in
      Some (ci, kinds.(ci))
    | _ -> None
  in
  let cmp op0 a0 b0 =
    (* Put the column on the left; fall back with the ORIGINAL operands so
       type-error messages keep their operand order. *)
    let op, a, b =
      match (a0, b0) with
      | Expr.Const _, Expr.Col _ -> (flip_op op0, b0, a0)
      | _ -> (op0, a0, b0)
    in
    let orig () = boxed_keep (rebuild op0 a0 b0) in
    match (col_kind a, b) with
    | Some (ci, k), Expr.Const v when int_like k -> (
      match const_word k v with
      | Some w -> filter_col_const ci op w
      | None -> (
        match (k, v) with
        | Batch.K_char, Value.Str s ->
          let cmp_c = char_cmp_const s in
          let test = op_test op in
          fun bt ->
            let arr = int_array_of_vec bt.Batch.cols.(ci) in
            let sel = bt.Batch.sel in
            refine bt (fun i ->
                test (cmp_c (Array.unsafe_get arr (Bigarray.Array1.unsafe_get sel i))))
        | _, Value.Null ->
          (* A typed column is never Null, so [Value.compare v Null] = 1
             for every row: the whole chunk passes or fails at once. *)
          let keep = op_test op 1 in
          fun bt -> if not keep then bt.Batch.len <- 0
        | _ -> orig ()))
    | _ -> (
      (* Generic unboxed tier: accessor closures over int-like sides, with
         Int→Dec promotion. Same-kind Date/Char compares are raw int
         compares too ([Int.compare] epoch days; byte order = 1-char
         [String.compare]). Anything else falls back. *)
      match (num_side ~dates:true (value a), num_side ~dates:true (value b)) with
      | Some (ka, pa), Some (kb, pb)
        when ka = kb
             || (ka = Batch.K_int && kb = Batch.K_dec)
             || (ka = Batch.K_dec && kb = Batch.K_int) ->
        let pa, pb =
          if ka = kb then (pa, pb) else (promote_side ka pa, promote_side kb pb)
        in
        let test = op_test op in
        fun bt ->
          let ga = pa bt and gb = pb bt in
          refine bt (fun i -> test (Int.compare (ga i) (gb i)))
      | _ -> orig ())
  in
  (* Typed substring/prefix kernels over string and char columns. A K_str
     column's vec is always [V_str] and never holds Null, so the scalar
     Contains/StartsWith semantics collapse to the allocation-free byte
     loops from [Expr]. A K_char column boxes as a 1-char [Str]: the empty
     needle matches everything, a 1-byte needle is byte equality, anything
     longer matches nothing. Other kinds keep the boxed fallback (its
     [Value.to_string] coercions, verbatim). *)
  let text_filter e col needle ~is_prefix =
    let ci = resolve schema col in
    match kinds.(ci) with
    | Batch.K_str ->
      let test =
        if is_prefix then Expr.string_starts_with ~prefix:needle
        else Expr.string_contains ~needle
      in
      fun bt ->
        let arr =
          match bt.Batch.cols.(ci) with Batch.V_str a -> a | _ -> assert false
        in
        let sel = bt.Batch.sel in
        refine bt (fun i ->
            test (Array.unsafe_get arr (Bigarray.Array1.unsafe_get sel i)))
    | Batch.K_char ->
      let n = String.length needle in
      if n = 0 then fun _ -> ()
      else if n > 1 then fun bt -> bt.Batch.len <- 0
      else begin
        let c0 = Char.code needle.[0] in
        fun bt ->
          let arr = int_array_of_vec bt.Batch.cols.(ci) in
          let sel = bt.Batch.sel in
          refine bt (fun i ->
              Array.unsafe_get arr (Bigarray.Array1.unsafe_get sel i) = c0)
      end
    | _ -> boxed_keep e
  in
  match pred with
  | Expr.And (a, b) ->
    (* Sequential refinement preserves &&'s short-circuit: [b] only ever
       evaluates on rows where [a] held. *)
    let fa = compile_filter ~schema ~kinds a and fb = compile_filter ~schema ~kinds b in
    fun bt ->
      fa bt;
      if bt.Batch.len > 0 then fb bt
  | Expr.Eq (a, b) -> cmp O_eq a b
  | Expr.Ne (a, b) -> cmp O_ne a b
  | Expr.Lt (a, b) -> cmp O_lt a b
  | Expr.Le (a, b) -> cmp O_le a b
  | Expr.Gt (a, b) -> cmp O_gt a b
  | Expr.Ge (a, b) -> cmp O_ge a b
  | Expr.Between (x, lo, hi) -> (
    (* ≡ And (Ge (x, lo), Le (x, hi)) for our pure expressions — including
       raises and short-circuit: a row cut by the lower bound never meets
       the upper one, exactly like the scalar &&. *)
    match (col_kind x, lo, hi) with
    | Some (ci, k), Expr.Const vlo, Expr.Const vhi when int_like k -> (
      match (const_word k vlo, const_word k vhi) with
      | Some wlo, Some whi -> filter_col_between ci wlo whi
      | _ -> compile_filter ~schema ~kinds (Expr.And (Expr.Ge (x, lo), Expr.Le (x, hi))))
    | _ -> compile_filter ~schema ~kinds (Expr.And (Expr.Ge (x, lo), Expr.Le (x, hi))))
  | Expr.Contains (Expr.Col col, needle) as e -> text_filter e col needle ~is_prefix:false
  | Expr.StartsWith (Expr.Col col, needle) as e -> text_filter e col needle ~is_prefix:true
  | other -> boxed_keep other

(* ---- aggregation ----------------------------------------------------- *)

(* Typed cells where the update provably matches [Aggregate]'s boxed cell,
   generic cells (the scalar code itself) everywhere else. *)
type gen_cell = { mutable count : int; mutable acc : Value.t }

type vcell =
  | VC_num of { mutable n : int; mutable s : int }  (* Count/Sum/Avg over Int or Dec *)
  | VC_ext of { mutable n : int; mutable m : int }  (* Min/Max over int-like *)
  | VC_gen of gen_cell  (* the scalar Aggregate cell, verbatim *)

type agg_kernel = {
  ak_fresh : unit -> vcell;
  ak_prep : Batch.t -> vcell -> int -> unit;
  ak_finish : vcell -> Value.t;
}

let promote_dec = function Value.Int x -> Value.Dec (D.of_int x) | v -> v

let generic_kernel update finish prep_g =
  {
    ak_fresh = (fun () -> VC_gen { count = 0; acc = Value.Null });
    ak_prep =
      (fun bt ->
        let g = prep_g bt in
        fun cell i ->
          match cell with VC_gen c -> update c (g i) | _ -> assert false);
    ak_finish = (function VC_gen c -> finish c | _ -> assert false);
  }

let compile_agg ~schema ~kinds agg : agg_kernel =
  let value e = compile_value ~schema ~kinds e in
  match agg with
  | Plan.Count ->
    {
      ak_fresh = (fun () -> VC_num { n = 0; s = 0 });
      ak_prep =
        (fun _ cell _ -> match cell with VC_num c -> c.n <- c.n + 1 | _ -> assert false);
      ak_finish = (function VC_num c -> Value.Int c.n | _ -> assert false);
    }
  | Plan.Sum e | Plan.Avg e -> (
    let is_avg = match agg with Plan.Avg _ -> true | _ -> false in
    match value e with
    | E_ints ((Batch.K_int | Batch.K_dec) as k, prep) ->
      (* Null never enters a typed column, so the scalar cell's
         Null-to-first-value transition collapses to a plain running sum;
         Int overflow wraps exactly like [( + )] in [Value.add]. *)
      let box = if k = Batch.K_int then fun s -> Value.Int s else fun s -> Value.Dec s in
      {
        ak_fresh = (fun () -> VC_num { n = 0; s = 0 });
        ak_prep =
          (fun bt ->
            let g = prep bt in
            fun cell i ->
              match cell with
              | VC_num c ->
                c.n <- c.n + 1;
                c.s <- c.s + g i
              | _ -> assert false);
        ak_finish =
          (function
          | VC_num c ->
            if c.n = 0 then Value.Null
            else if is_avg then Value.div (promote_dec (box c.s)) (Value.Int c.n)
            else box c.s
          | _ -> assert false);
      }
    | ev ->
      (* [Aggregate]'s cell verbatim: Sum over a Date column is legal for a
         single row and raises on the second — the generic path keeps that
         quirk bit-exact. *)
      generic_kernel
        (fun c v ->
          c.count <- c.count + 1;
          c.acc <- (if c.acc = Value.Null then v else Value.add c.acc v))
        (fun c ->
          if not is_avg then c.acc
          else if c.count = 0 then Value.Null
          else Value.div (promote_dec c.acc) (Value.Int c.count))
        (boxed_of_ev ev))
  | Plan.Min e | Plan.Max e -> (
    let want = match agg with Plan.Min _ -> -1 | _ -> 1 in
    match value e with
    | E_ints (k, prep) when int_like k ->
      let box = box_of_kind k in
      {
        ak_fresh = (fun () -> VC_ext { n = 0; m = 0 });
        ak_prep =
          (fun bt ->
            let g = prep bt in
            fun cell i ->
              match cell with
              | VC_ext c ->
                let v = g i in
                if c.n = 0 || Int.compare v c.m = want then c.m <- v;
                c.n <- c.n + 1
              | _ -> assert false);
        ak_finish =
          (function
          | VC_ext c -> if c.n = 0 then Value.Null else box c.m
          | _ -> assert false);
      }
    | ev ->
      generic_kernel
        (fun c v ->
          if c.acc = Value.Null || Value.compare v c.acc = want then c.acc <- v)
        (fun c -> c.acc)
        (boxed_of_ev ev))

(* ---- operators -------------------------------------------------------- *)

let all_any n = Array.make n Batch.K_any

let rows_of pipe emit = pipe.run (fun bt -> Batch.iter_rows bt ~f:emit)

(* Bridge a row producer back into the batch stream — used below every
   row-at-a-time operator (joins, sorts, distinct, index probes). *)
let batches_of ~ncols ~rows produce emit =
  let push, flush = Batch.rebatcher ~ncols ~rows ~emit in
  produce push;
  flush ()

let first_obs a b = match a with Some _ -> a | None -> b

(* Columns a subtree's consumer will actually read, threaded down to the
   scan so it can skip filling the rest ([Source.scan_batches ?cols]).
   [All] = every column materializes (the top-level row boxing, and every
   row-bridged operator, read whole rows). Only projections narrow it:
   Select and GroupBy read exactly their expressions' columns — and they
   evaluate every expression on every surviving row, like Fuse, so nothing
   an expression could raise on is ever skipped. *)
type need = All | Only of string list

let need_union need cols =
  match need with
  | All -> All
  | Only have ->
    Only (List.fold_left (fun acc c -> if List.mem c acc then acc else c :: acc) have cols)

let agg_columns = function
  | Plan.Count -> []
  | Plan.Sum e | Plan.Avg e | Plan.Min e | Plan.Max e -> Expr.columns e

let rec compile ~batch_rows ~need plan : pipe =
  match plan with
  | Plan.Scan src ->
    let run =
      match src.Source.scan_batches with
      | Some sb ->
        let mask =
          match need with
          | All -> None
          | Only cols ->
            Some (Array.map (fun c -> List.mem c cols) src.Source.schema)
        in
        fun emit -> sb ~rows:batch_rows ?cols:mask emit
      | None ->
        fun emit ->
          batches_of ~ncols:(Array.length src.Source.schema) ~rows:batch_rows
            src.Source.scan emit
    in
    { schema = src.Source.schema; kinds = src.Source.kinds; run; obs = src.Source.obs }
  | Plan.IndexScan { src; index; value } ->
    (* Probe hits arrive boxed from the index path, so the batch is all
       [K_any] and residual predicates above this node route through the
       fallback filter — semantics-exact by construction. *)
    let ncols = Array.length src.Source.schema in
    {
      schema = src.Source.schema;
      kinds = all_any ncols;
      run =
        (fun emit ->
          batches_of ~ncols ~rows:batch_rows
            (fun push -> index.Source.ix_probe value push)
            emit);
      obs = src.Source.obs;
    }
  | Plan.TextScan { src; text; op; needle } ->
    (* Same re-batching shape as IndexScan: suffix-array hits arrive as
       boxed rows, so the batch is all [K_any] and the residual predicate
       runs through the fallback filter. *)
    let ncols = Array.length src.Source.schema in
    {
      schema = src.Source.schema;
      kinds = all_any ncols;
      run =
        (fun emit ->
          batches_of ~ncols ~rows:batch_rows
            (fun push -> text.Source.tx_probe op needle push)
            emit);
      obs = src.Source.obs;
    }
  | Plan.ViewRead { src; matview } ->
    (* Maintained view rows arrive boxed (one row per group), re-batched
       like probe leaves; result sets are small, so the all-[K_any] batch
       costs nothing measurable. *)
    let schema =
      Array.of_list
        (List.map fst matview.Source.mv_keys @ List.map fst matview.Source.mv_aggs)
    in
    let ncols = Array.length schema in
    {
      schema;
      kinds = all_any ncols;
      run =
        (fun emit ->
          batches_of ~ncols ~rows:batch_rows
            (fun push -> matview.Source.mv_read push)
            emit);
      obs = src.Source.obs;
    }
  | Plan.Where (pred, input) ->
    let up = compile ~batch_rows ~need:(need_union need (Expr.columns pred)) input in
    let filt = compile_filter ~schema:up.schema ~kinds:up.kinds pred in
    let run emit =
      up.run (fun bt ->
          let before = bt.Batch.len in
          filt bt;
          (match up.obs with
          | Some o ->
            Smc_obs.add o Smc_obs.c_vec_filter_rows_in before;
            Smc_obs.add o Smc_obs.c_vec_filter_rows_kept bt.Batch.len;
            Smc_obs.add o Smc_obs.c_vec_filter_rows_dropped (before - bt.Batch.len)
          | None -> ());
          if bt.Batch.len > 0 then emit bt)
    in
    { up with run }
  | Plan.Select (cols, input) ->
    let up =
      compile ~batch_rows
        ~need:(need_union (Only []) (List.concat_map (fun (_, e) -> Expr.columns e) cols))
        input
    in
    let evs =
      Array.of_list
        (List.map (fun (_, e) -> compile_value ~schema:up.schema ~kinds:up.kinds e) cols)
    in
    let kinds = Array.map kind_of_ev evs in
    let out = Batch.create ~kinds ~cap:batch_rows in
    let fill ev vec bt n =
      match (ev, vec) with
      | E_ints (_, prep), (Batch.V_int a | Batch.V_dec a | Batch.V_date a | Batch.V_char a)
        ->
        let g = prep bt in
        for i = 0 to n - 1 do
          Array.unsafe_set a i (g i)
        done
      | E_boxed prep, Batch.V_val a ->
        let g = prep bt in
        for i = 0 to n - 1 do
          Array.unsafe_set a i (g i)
        done
      | E_scalar (Value.Int v), Batch.V_int a
      | E_scalar (Value.Dec v), Batch.V_dec a
      | E_scalar (Value.Date v), Batch.V_date a ->
        Array.fill a 0 n v
      | E_scalar (Value.Bool v), Batch.V_bool a -> Array.fill a 0 n v
      | E_scalar (Value.Str v), Batch.V_str a -> Array.fill a 0 n v
      | E_scalar Value.Null, Batch.V_val a -> Array.fill a 0 n Value.Null
      | _ -> assert false
    in
    let run emit =
      up.run (fun bt ->
          let n = bt.Batch.len in
          Array.iteri (fun c ev -> fill ev out.Batch.cols.(c) bt n) evs;
          Batch.set_identity out n;
          emit out)
    in
    { schema = Array.of_list (List.map fst cols); kinds; run; obs = up.obs }
  | Plan.GroupBy { keys; aggs; input } ->
    let up =
      compile ~batch_rows
        ~need:
          (need_union (Only [])
             (List.concat_map (fun (_, e) -> Expr.columns e) keys
             @ List.concat_map (fun (_, a) -> agg_columns a) aggs))
        input
    in
    let key_evs =
      Array.of_list
        (List.map (fun (_, e) -> compile_value ~schema:up.schema ~kinds:up.kinds e) keys)
    in
    let kernels =
      Array.of_list
        (List.map (fun (_, a) -> compile_agg ~schema:up.schema ~kinds:up.kinds a) aggs)
    in
    let nkeys = Array.length key_evs and naggs = Array.length kernels in
    let out_schema = Array.of_list (List.map fst keys @ List.map fst aggs) in
    (* Unboxed grouping when every key is int-like: structural equality of
       the packed int key coincides with structural equality of the boxed
       key list, because each position's kind is fixed and boxing is
       injective per kind. Char-only keys (TPC-H Q1) pack into a single
       tagged int — zero allocation per row. *)
    let int_key_sides =
      let ok = ref (nkeys > 0) in
      let sides =
        Array.map
          (fun ev ->
            match num_side ~dates:true ev with
            | Some s -> s
            | None ->
              ok := false;
              (Batch.K_any, fun _ _ -> 0))
          key_evs
      in
      if !ok then Some sides else None
    in
    let finish_row boxed_key cells =
      Array.append (Array.of_list boxed_key)
        (Array.init naggs (fun a -> kernels.(a).ak_finish cells.(a)))
    in
    let run emit =
      let push_groups =
        match int_key_sides with
        | Some sides
          when nkeys <= 8 && Array.for_all (fun (k, _) -> k = Batch.K_char) sides ->
          (* char-packed: the whole key fits one int *)
          let groups : (int, Value.t list * vcell array) Hashtbl.t = Hashtbl.create 64 in
          let order = ref [] in
          up.run (fun bt ->
              let n = bt.Batch.len in
              let upds = Array.map (fun k -> k.ak_prep bt) kernels in
              let gs = Array.map (fun (_, p) -> p bt) sides in
              for i = 0 to n - 1 do
                let key = ref 0 in
                for j = 0 to nkeys - 1 do
                  key := (!key lsl 8) lor (gs.(j) i land 0xFF)
                done;
                let key = !key in
                let cells =
                  match Hashtbl.find_opt groups key with
                  | Some (_, cells) -> cells
                  | None ->
                    let cells = Array.map (fun k -> k.ak_fresh ()) kernels in
                    let boxed =
                      List.init nkeys (fun j -> Value.Str (Batch.char_str (gs.(j) i)))
                    in
                    Hashtbl.add groups key (boxed, cells);
                    order := key :: !order;
                    cells
                in
                for a = 0 to naggs - 1 do
                  upds.(a) cells.(a) i
                done
              done);
          fun push ->
            List.iter
              (fun key ->
                let boxed, cells = Hashtbl.find groups key in
                push (finish_row boxed cells))
              (List.rev !order)
        | Some sides ->
          let groups : (int array, Value.t list * vcell array) Hashtbl.t =
            Hashtbl.create 256
          in
          let order = ref [] in
          let boxers = Array.map (fun (k, _) -> box_of_kind k) sides in
          up.run (fun bt ->
              let n = bt.Batch.len in
              let upds = Array.map (fun k -> k.ak_prep bt) kernels in
              let gs = Array.map (fun (_, p) -> p bt) sides in
              for i = 0 to n - 1 do
                let key = Array.init nkeys (fun j -> gs.(j) i) in
                let cells =
                  match Hashtbl.find_opt groups key with
                  | Some (_, cells) -> cells
                  | None ->
                    let cells = Array.map (fun k -> k.ak_fresh ()) kernels in
                    let boxed = List.init nkeys (fun j -> boxers.(j) key.(j)) in
                    Hashtbl.add groups key (boxed, cells);
                    order := key :: !order;
                    cells
                in
                for a = 0 to naggs - 1 do
                  upds.(a) cells.(a) i
                done
              done);
          fun push ->
            List.iter
              (fun key ->
                let boxed, cells = Hashtbl.find groups key in
                push (finish_row boxed cells))
              (List.rev !order)
        | None ->
          (* Boxed keys — exactly Fuse's [group_key] list, covering Null,
             strings, mixed kinds and the zero-key aggregate. *)
          let groups : (Value.t list, vcell array) Hashtbl.t = Hashtbl.create 256 in
          let order = ref [] in
          up.run (fun bt ->
              let n = bt.Batch.len in
              let upds = Array.map (fun k -> k.ak_prep bt) kernels in
              let gs = Array.map (fun ev -> boxed_of_ev ev bt) key_evs in
              for i = 0 to n - 1 do
                let key = Array.to_list (Array.map (fun g -> g i) gs) in
                let cells =
                  match Hashtbl.find_opt groups key with
                  | Some cells -> cells
                  | None ->
                    let cells = Array.map (fun k -> k.ak_fresh ()) kernels in
                    Hashtbl.add groups key cells;
                    order := key :: !order;
                    cells
                in
                for a = 0 to naggs - 1 do
                  upds.(a) cells.(a) i
                done
              done);
          fun push ->
            List.iter
              (fun key -> push (finish_row key (Hashtbl.find groups key)))
              (List.rev !order)
      in
      batches_of ~ncols:(nkeys + naggs) ~rows:batch_rows push_groups emit
    in
    { schema = out_schema; kinds = all_any (nkeys + naggs); run; obs = up.obs }
  | Plan.HashJoin { left; right; on } ->
    let lp = compile ~batch_rows ~need:All left
    and rp = compile ~batch_rows ~need:All right in
    let lkeys = List.map (fun (lc, _) -> resolve lp.schema lc) on in
    let rkeys = List.map (fun (_, rc) -> resolve rp.schema rc) on in
    let schema = Plan.schema plan in
    let ncols = Array.length schema in
    let run emit =
      batches_of ~ncols ~rows:batch_rows
        (fun push ->
          let table = Hashtbl.create 1024 in
          rows_of rp (fun row ->
              Hashtbl.add table (List.map (fun ci -> row.(ci)) rkeys) row);
          rows_of lp (fun l ->
              List.iter
                (fun r -> push (Array.append l r))
                (Hashtbl.find_all table (List.map (fun ci -> l.(ci)) lkeys))))
        emit
    in
    { schema; kinds = all_any ncols; run; obs = first_obs lp.obs rp.obs }
  | Plan.IndexJoin { left; src; index; left_col } ->
    let lp = compile ~batch_rows ~need:All left in
    let li = resolve lp.schema left_col in
    let ci = Source.column_index src index.Source.ix_column in
    let schema = Plan.schema plan in
    let ncols = Array.length schema in
    let run emit =
      batches_of ~ncols ~rows:batch_rows
        (fun push ->
          let fallback =
            lazy
              (let tbl = Hashtbl.create 1024 in
               src.Source.scan (fun r -> Hashtbl.add tbl r.(ci) r);
               tbl)
          in
          rows_of lp (fun l ->
              let k = l.(li) in
              if index.Source.ix_accepts k then
                index.Source.ix_probe k (fun r -> push (Array.append l r))
              else
                List.iter
                  (fun r -> push (Array.append l r))
                  (Hashtbl.find_all (Lazy.force fallback) k)))
        emit
    in
    { schema; kinds = all_any ncols; run; obs = first_obs lp.obs src.Source.obs }
  | Plan.OrderBy (specs, input) ->
    let up = compile ~batch_rows ~need:All input in
    let fns = List.map (fun (e, d) -> (Expr.compile ~schema:up.schema e, d)) specs in
    let compare_rows a b =
      let rec go = function
        | [] -> 0
        | (f, d) :: rest ->
          let c = Value.compare (f a) (f b) in
          let c = match d with Plan.Asc -> c | Plan.Desc -> -c in
          if c <> 0 then c else go rest
      in
      go fns
    in
    let ncols = Array.length up.schema in
    let run emit =
      batches_of ~ncols ~rows:batch_rows
        (fun push ->
          let rows = ref [] in
          rows_of up (fun row -> rows := row :: !rows);
          List.iter push (List.stable_sort compare_rows (List.rev !rows)))
        emit
    in
    { up with kinds = all_any ncols; run }
  | Plan.Distinct input ->
    let up = compile ~batch_rows ~need:All input in
    let ncols = Array.length up.schema in
    let run emit =
      batches_of ~ncols ~rows:batch_rows
        (fun push ->
          let seen = Hashtbl.create 256 in
          rows_of up (fun row ->
              let key = Array.to_list row in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                push row
              end))
        emit
    in
    { up with kinds = all_any ncols; run }
  | Plan.Limit (n, input) ->
    let up = compile ~batch_rows ~need input in
    let run emit =
      let taken = ref 0 in
      let exception Done in
      try
        up.run (fun bt ->
            let remaining = n - !taken in
            if remaining <= 0 then raise Done;
            if bt.Batch.len > remaining then bt.Batch.len <- remaining;
            if bt.Batch.len > 0 then begin
              taken := !taken + bt.Batch.len;
              emit bt
            end;
            if !taken >= n then raise Done)
      with Done -> ()
    in
    { up with run }

let default_batch_rows = Batch.default_rows

let run ?(batch_rows = default_batch_rows) plan ~f =
  let p = compile ~batch_rows:(max batch_rows 1) ~need:All plan in
  rows_of p f

let collect ?batch_rows plan =
  let out = ref [] in
  run ?batch_rows plan ~f:(fun row -> out := row :: !out);
  List.rev !out
