(** Registry through which Dynlink-loaded query plugins hand their compiled
    function back to the host (see {!Codegen} and docs/vectorized.md).

    Generated plugin source ends with
    [Smc_query.Codegen_abi.register "<digest>" (Obj.repr query)]; the host
    calls {!take} with the same digest immediately after
    [Dynlink.loadfile_private] returns. *)

val register : string -> Obj.t -> unit
(** Called by plugin top-level code at load time. *)

val take : string -> Obj.t option
(** Remove and return the registration, if the plugin made one. *)
