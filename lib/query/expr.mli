(** Scalar expressions over named columns.

    Expressions are compiled once against a schema (column names resolve to
    row indices) into closures — the per-query specialisation step that
    stands in for the paper's C# compiler expansion of LINQ lambdas. *)

type t =
  | Col of string
  | Const of Value.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t
  | Eq of t * t
  | Ne of t * t
  | Lt of t * t
  | Le of t * t
  | Gt of t * t
  | Ge of t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Between of t * t * t  (** inclusive *)
  | Contains of t * string  (** SQL LIKE '%s%' *)
  | ContainsCI of t * string  (** ASCII-case-insensitive [Contains] *)
  | StartsWith of t * string

val int : int -> t
val dec : string -> t
(** Decimal constant from a literal like ["0.05"]. *)

val str : string -> t
val date : string -> t
(** Date constant from ["YYYY-MM-DD"]. *)

val bool : bool -> t

val string_contains : needle:string -> string -> bool
(** Allocation-free substring test ([Contains] semantics: the empty needle
    matches everything). Shared by the engines' scalar paths. *)

val string_starts_with : prefix:string -> string -> bool
(** Allocation-free prefix test ([StartsWith] semantics). *)

val string_contains_ci : needle:string -> string -> bool
(** ASCII-case-insensitive {!string_contains} ([ContainsCI] semantics):
    bytes in [A-Z] fold to [a-z] on both sides, everything else compares
    verbatim — no locale or Unicode case folding. *)

val compile : schema:string array -> t -> Value.t array -> Value.t
(** Raises [Invalid_argument] for unknown columns. *)

val compile_pred : schema:string array -> t -> Value.t array -> bool

val to_string : t -> string
(** Readable rendering for {!Codegen}. *)

val columns : t -> string list
(** Column names referenced (with duplicates). *)
