(** Logical query plans — the language-integrated query AST.

    The structure mirrors the LINQ operator set used by the paper's TPC-H
    adaptation: scans over collections, predicate filters, projections,
    equi hash joins, grouped aggregation, ordering, and limits — plus two
    physical index access paths ([IndexScan], [IndexJoin]) that {!Planner}
    introduces over sources advertising attached hash indexes. A plan can
    be evaluated by {!Interp} (pull-based Volcano iterators — the
    LINQ-to-objects comparison point) or {!Fuse} (a fused push pipeline —
    the query-compilation analogue), and rendered as imperative source by
    {!Codegen}.

    The smart constructors validate column references eagerly: an unknown
    column in a predicate, projection, grouping, or ordering raises
    [Invalid_argument] naming the operator, the column, and the input
    schema at plan-construction time, rather than erroring deep inside an
    evaluator at run time. *)

type dir = Asc | Desc

type agg =
  | Count
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Avg of Expr.t  (** decimal average regardless of input tag *)

type t =
  | Scan of Source.t
  | IndexScan of { src : Source.t; index : Source.index_info; value : Value.t }
      (** rows of [src] whose indexed column equals [value], via one index
          probe instead of a full scan; same schema and bag of rows as
          [Where (col = value, Scan src)], row order unspecified *)
  | TextScan of {
      src : Source.t;
      text : Source.text_info;
      op : Smc_text.Sa_index.op;
      needle : string;
    }
      (** rows of [src] whose indexed string column matches [(op, needle)]
          ([Prefix] = starts-with, [Substring] = contains), via a
          suffix-array probe instead of a full scan; same schema and bag of
          rows as the equivalent [Where (StartsWith/Contains, Scan src)],
          row order unspecified *)
  | ViewRead of { src : Source.t; matview : Source.matview_info }
      (** the maintained result of the view's reified aggregate plan
          ([GroupBy (keys, aggs)] over [Where (mv_where)] over [Scan src]),
          read in O(groups) instead of re-aggregating the whole scan; same
          schema and bag of rows as evaluating that plan from scratch,
          group order unspecified *)
  | Where of Expr.t * t
  | Select of (string * Expr.t) list * t
  | HashJoin of { left : t; right : t; on : (string * string) list }
      (** inner equi-join; result schema is left columns then right columns *)
  | IndexJoin of { left : t; src : Source.t; index : Source.index_info; left_col : string }
      (** index nested-loop join: for each left row, probe [src]'s index
          with the [left_col] value instead of building a hash table on the
          right side; same bag of rows as the equivalent single-key
          [HashJoin], match order unspecified *)
  | GroupBy of { keys : (string * Expr.t) list; aggs : (string * agg) list; input : t }
  | OrderBy of (Expr.t * dir) list * t
  | Limit of int * t
  | Distinct of t  (** duplicate elimination over whole rows *)

val schema : t -> string array
(** Output column names. Raises [Invalid_argument] on name collisions in a
    join's combined schema. *)

val scan : Source.t -> t

val index_scan : Source.t -> column:string -> value:Value.t -> t
(** Raises [Invalid_argument] when the source has no index on [column] or
    the index cannot hold [value]. {!Planner.choose_access_paths} builds
    these automatically from eligible [Where] shapes. *)

val text_scan :
  Source.t -> column:string -> op:Smc_text.Sa_index.op -> needle:string -> t
(** Raises [Invalid_argument] when the source has no text index on
    [column]. {!Planner.choose_access_paths} builds these automatically
    from [Contains]/[StartsWith] conjuncts in eligible [Where] shapes. *)

val view_read :
  Source.t ->
  keys:(string * Expr.t) list ->
  aggs:(string * agg) list ->
  where:Expr.t option ->
  t
(** Raises [Invalid_argument] when the source advertises no materialized
    view whose reified plan matches the given shape structurally.
    {!Planner.choose_access_paths} builds these automatically from
    eligible [GroupBy] shapes. *)

val view_agg_of_agg : agg -> Source.view_agg
(** Translation into {!Source.view_agg}, the mirror type materialized
    views describe their reified plans in. *)

val where : Expr.t -> t -> t
val select : (string * Expr.t) list -> t -> t
val join : on:(string * string) list -> t -> t -> t

val index_join : on:string * string -> t -> Source.t -> t
(** [index_join ~on:(left_col, right_col) left src] — raises
    [Invalid_argument] when [src] has no index on [right_col]. *)

val group_by : keys:(string * Expr.t) list -> aggs:(string * agg) list -> t -> t
val order_by : (Expr.t * dir) list -> t -> t
val limit : int -> t -> t
val distinct : t -> t

val validate : t -> unit
(** Re-runs the smart constructors' column checks over a whole tree (for
    plans built with the raw constructors). Raises [Invalid_argument] on
    the first unknown column, naming the operator. *)
