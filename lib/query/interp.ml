(* Each operator compiles to an [open_] function producing a cursor
   [unit -> row option]. Blocking operators (join build, group-by, sort)
   materialise at open, as Volcano engines do. *)

let group_key key_fns row = List.map (fun f -> f row) key_fns

let rec open_cursor plan =
  match plan with
  | Plan.Scan src ->
    (* Pull adapter over the push source: materialise the base rows. *)
    let rows = ref [] in
    src.Source.scan (fun row -> rows := row :: !rows);
    let remaining = ref (List.rev !rows) in
    fun () ->
      (match !remaining with
      | [] -> None
      | row :: rest ->
        remaining := rest;
        Some row)
  | Plan.IndexScan { index; value; _ } ->
    (* Pull adapter over the index probe, mirroring the Scan adapter: the
       probe (one critical section, incarnation-validated hits) fills the
       row list the cursor drains. *)
    let rows = ref [] in
    index.Source.ix_probe value (fun row -> rows := row :: !rows);
    let remaining = ref (List.rev !rows) in
    fun () ->
      (match !remaining with
      | [] -> None
      | row :: rest ->
        remaining := rest;
        Some row)
  | Plan.TextScan { text; op; needle; _ } ->
    (* Same pull adapter over the suffix-array probe. *)
    let rows = ref [] in
    text.Source.tx_probe op needle (fun row -> rows := row :: !rows);
    let remaining = ref (List.rev !rows) in
    fun () ->
      (match !remaining with
      | [] -> None
      | row :: rest ->
        remaining := rest;
        Some row)
  | Plan.ViewRead { matview; _ } ->
    (* Same pull adapter over the maintained view result. *)
    let rows = ref [] in
    matview.Source.mv_read (fun row -> rows := row :: !rows);
    let remaining = ref (List.rev !rows) in
    fun () ->
      (match !remaining with
      | [] -> None
      | row :: rest ->
        remaining := rest;
        Some row)
  | Plan.Where (pred, input) ->
    let next = open_cursor input in
    let test = Expr.compile_pred ~schema:(Plan.schema input) pred in
    let rec pull () =
      match next () with
      | None -> None
      | Some row -> if test row then Some row else pull ()
    in
    pull
  | Plan.Select (cols, input) ->
    let next = open_cursor input in
    let schema = Plan.schema input in
    let fns = Array.of_list (List.map (fun (_, e) -> Expr.compile ~schema e) cols) in
    fun () ->
      (match next () with
      | None -> None
      | Some row -> Some (Array.map (fun f -> f row) fns))
  | Plan.HashJoin { left; right; on } ->
    let lschema = Plan.schema left and rschema = Plan.schema right in
    let lkeys =
      List.map (fun (lc, _) -> Expr.compile ~schema:lschema (Expr.Col lc)) on
    in
    let rkeys =
      List.map (fun (_, rc) -> Expr.compile ~schema:rschema (Expr.Col rc)) on
    in
    (* Build side: materialise the right input into a hash table. *)
    let table = Hashtbl.create 1024 in
    let rnext = open_cursor right in
    let rec build () =
      match rnext () with
      | None -> ()
      | Some row ->
        Hashtbl.add table (group_key rkeys row) row;
        build ()
    in
    build ();
    let lnext = open_cursor left in
    let pending = ref [] in
    let current_left = ref None in
    let rec pull () =
      match !pending with
      | row :: rest ->
        pending := rest;
        let l = Option.get !current_left in
        Some (Array.append l row)
      | [] ->
        (match lnext () with
        | None -> None
        | Some l ->
          current_left := Some l;
          pending := Hashtbl.find_all table (group_key lkeys l);
          pull ())
    in
    pull
  | Plan.IndexJoin { left; src; index; left_col } ->
    (* Index nested-loop join: no build phase — each left row probes the
       attached index, one critical section per probe. Left keys the
       index cannot hold (Null, decimals, booleans) still join under
       HashJoin's structural equality — e.g. Null matches Null — so they
       route through a hash table built lazily, only if such a key
       actually appears. *)
    let lkey = Expr.compile ~schema:(Plan.schema left) (Expr.Col left_col) in
    let ci = Source.column_index src index.Source.ix_column in
    let fallback =
      lazy
        (let tbl = Hashtbl.create 1024 in
         src.Source.scan (fun r -> Hashtbl.add tbl r.(ci) r);
         tbl)
    in
    let lnext = open_cursor left in
    let pending = ref [] in
    let current_left = ref None in
    let rec pull () =
      match !pending with
      | row :: rest ->
        pending := rest;
        let l = Option.get !current_left in
        Some (Array.append l row)
      | [] ->
        (match lnext () with
        | None -> None
        | Some l ->
          current_left := Some l;
          let k = lkey l in
          (if index.Source.ix_accepts k then begin
             let matches = ref [] in
             index.Source.ix_probe k (fun r -> matches := r :: !matches);
             pending := List.rev !matches
           end
           else pending := Hashtbl.find_all (Lazy.force fallback) k);
          pull ())
    in
    pull
  | Plan.GroupBy { keys; aggs; input } ->
    let schema = Plan.schema input in
    let key_fns = List.map (fun (_, e) -> Expr.compile ~schema e) keys in
    let compiled = List.map (fun (_, a) -> Aggregate.compile ~schema a) aggs in
    let groups = Hashtbl.create 256 in
    let order = ref [] in
    let next = open_cursor input in
    let rec consume () =
      match next () with
      | None -> ()
      | Some row ->
        let key = group_key key_fns row in
        let cells =
          match Hashtbl.find_opt groups key with
          | Some cells -> cells
          | None ->
            let cells = List.map (fun (fresh, _, _) -> fresh ()) compiled in
            Hashtbl.add groups key cells;
            order := key :: !order;
            cells
        in
        List.iter2 (fun (_, update, _) cell -> update cell row) compiled cells;
        consume ()
    in
    consume ();
    let remaining = ref (List.rev !order) in
    fun () ->
      (match !remaining with
      | [] -> None
      | key :: rest ->
        remaining := rest;
        let cells = Hashtbl.find groups key in
        let finished = List.map2 (fun (_, _, finish) cell -> finish cell) compiled cells in
        Some (Array.of_list (key @ finished)))
  | Plan.OrderBy (specs, input) ->
    let schema = Plan.schema input in
    let fns = List.map (fun (e, d) -> (Expr.compile ~schema e, d)) specs in
    let next = open_cursor input in
    let rows = ref [] in
    let rec consume () =
      match next () with
      | None -> ()
      | Some row ->
        rows := row :: !rows;
        consume ()
    in
    consume ();
    let compare_rows a b =
      let rec go = function
        | [] -> 0
        | (f, d) :: rest ->
          let c = Value.compare (f a) (f b) in
          let c = match d with Plan.Asc -> c | Plan.Desc -> -c in
          if c <> 0 then c else go rest
      in
      go fns
    in
    let sorted = List.stable_sort compare_rows (List.rev !rows) in
    let remaining = ref sorted in
    fun () ->
      (match !remaining with
      | [] -> None
      | row :: rest ->
        remaining := rest;
        Some row)
  | Plan.Distinct input ->
    let next = open_cursor input in
    let seen = Hashtbl.create 256 in
    let rec pull () =
      match next () with
      | None -> None
      | Some row ->
        let key = Array.to_list row in
        if Hashtbl.mem seen key then pull ()
        else begin
          Hashtbl.add seen key ();
          Some row
        end
    in
    pull
  | Plan.Limit (n, input) ->
    let next = open_cursor input in
    let taken = ref 0 in
    fun () ->
      if !taken >= n then None
      else begin
        match next () with
        | None -> None
        | Some row ->
          incr taken;
          Some row
      end

let run plan ~f =
  let next = open_cursor plan in
  let rec go () =
    match next () with
    | None -> ()
    | Some row ->
      f row;
      go ()
  in
  go ()

let collect plan =
  let out = ref [] in
  run plan ~f:(fun row -> out := row :: !out);
  List.rev !out
