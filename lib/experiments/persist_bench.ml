(* Persistence throughput on TPC-H lineitem: block-image snapshot write,
   restore, and WAL tail replay — each timed once (these are IO-bound
   whole-collection passes, not microbenchmarks), each gated by the full
   invariant sweep and Q1/Q6 bit-identity on the recovered instance. *)

open Smc_util
module D = Smc_tpch.Db_smc
module Snapshot = Smc_persist.Snapshot
module Wal = Smc_persist.Wal

type point = {
  stage : string;
  rows : int;
  bytes : int;
  ms : float;
  mb_s : float;
  krows_s : float;
}

let time f = Timing.time_it f

let point ~stage ~rows ~bytes ms =
  {
    stage;
    rows;
    bytes;
    ms;
    mb_s = (if bytes = 0 || ms <= 0.0 then 0.0 else float bytes /. 1048576.0 /. (ms /. 1e3));
    krows_s = (if ms <= 0.0 then 0.0 else float rows /. 1e3 /. (ms /. 1e3));
  }

(* Clone a live row into a fresh one by copying its raw slot words: what an
   application re-insert looks like to the redo log. *)
let clone_row (coll : Smc.Collection.t) src_blk src_slot =
  let sw = coll.Smc.Collection.layout.Smc_offheap.Layout.slot_words in
  Smc.Collection.add coll ~init:(fun blk slot ->
      for w = 0 to sw - 1 do
        Smc_offheap.Block.set_word blk ~slot ~word:w
          (Smc_offheap.Block.get_word src_blk ~slot:src_slot ~word:w)
      done)

let churn ~wal (db : D.t) ~remove_step ~clones =
  let li = db.D.lineitems in
  let removed = ref 0 in
  let i = ref 0 in
  Array.iter
    (fun r ->
      incr i;
      if !i mod remove_step = 0 && Smc.Collection.remove li r then incr removed)
    db.D.lineitem_refs;
  (* a handful of logged in-place stores on surviving rows *)
  let stores = ref 0 in
  (match wal with
  | None -> ()
  | Some w ->
    Array.iter
      (fun r ->
        if !stores < 64 && Smc.Collection.mem li r then begin
          let blk, slot = Smc.Collection.deref li r in
          let word = db.D.lf.D.l_linenumber.Smc_offheap.Layout.word in
          let v = Smc_offheap.Block.get_word blk ~slot ~word in
          Smc_offheap.Block.set_word blk ~slot ~word v;
          Wal.log_store w li r ~word ~value:v;
          incr stores
        end)
      db.D.lineitem_refs);
  let cloned = ref 0 in
  (try
     Smc.Collection.iter li ~f:(fun blk slot ->
         if !cloned < clones then begin
           ignore (clone_row li blk slot : Smc.Ref.t);
           incr cloned
         end
         else raise Exit)
   with Exit -> ());
  (!removed, !stores, !cloned)

let run ?(sf = 0.1) ?dir () =
  let keep_dir, dir =
    match dir with
    | Some d -> (true, d)
    | None ->
      let d = Filename.temp_file "smc_persist_bench" "" in
      Sys.remove d;
      Unix.mkdir d 0o755;
      (false, d)
  in
  let snap_path = Filename.concat dir "lineitem.smcsnap" in
  let wal_path = Filename.concat dir "lineitem.wal" in
  let ds = Smc_tpch.Dbgen.generate ~sf () in
  let db = D.load ds in
  let li = db.D.lineitems in
  let wal = Wal.create ~path:wal_path ~name:"lineitem" () in
  Wal.attach wal li;
  (* Pre-snapshot churn lands in the image; its log records sit below the
     cut and must be skipped by replay. *)
  let (_ : int * int * int) = churn ~wal:(Some wal) db ~remove_step:41 ~clones:512 in
  let indexes = [ ("lineitem_by_shipdate", "l_shipdate") ] in
  let (m, snap_bytes), snap_ms = time (fun () -> Snapshot.write ~wal ~indexes ~path:snap_path li) in
  (* Post-cut churn lives only in the log tail. *)
  let removed, stores, cloned = churn ~wal:(Some wal) db ~remove_step:97 ~clones:256 in
  Wal.flush wal;
  let live_rows = Smc.Collection.count li in
  let restored_plain, restore_ms = time (fun () -> Snapshot.restore ~path:snap_path ()) in
  let r, replay_total_ms =
    time (fun () -> Snapshot.restore ~wal:wal_path ~path:snap_path ())
  in
  let replay_ms = Float.max (replay_total_ms -. restore_ms) 0.001 in
  let points =
    [
      point ~stage:"snapshot" ~rows:m.Snapshot.row_count ~bytes:snap_bytes snap_ms;
      point ~stage:"restore" ~rows:restored_plain.Snapshot.r_manifest.Snapshot.row_count
        ~bytes:restored_plain.Snapshot.r_bytes restore_ms;
      point ~stage:"wal replay" ~rows:r.Snapshot.r_replayed ~bytes:0 replay_ms;
    ]
  in
  let coll' = r.Snapshot.r_coll in
  let db' = { db with D.rt = r.Snapshot.r_rt; D.lineitems = coll' } in
  let violations = ref [] in
  let note fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  if r.Snapshot.r_torn_dropped <> 0 then
    note "persist: unexpected torn-tail drop on a cleanly closed log";
  if r.Snapshot.r_replayed < removed + stores + cloned then
    note "persist: replay applied %d records, expected at least %d" r.Snapshot.r_replayed
      (removed + stores + cloned);
  let restored_rows = Smc.Collection.count coll' in
  if restored_rows <> live_rows then
    note "persist: restored %d live rows, original has %d" restored_rows live_rows;
  if not (Smc_tpch.Results.equal_q1 (Smc_tpch.Q_smc.q1 db) (Smc_tpch.Q_smc.q1 db')) then
    note "persist: Q1 differs between original and recovered collection";
  if not (Smc_decimal.Decimal.equal (Smc_tpch.Q_smc.q6 db) (Smc_tpch.Q_smc.q6 db')) then
    note "persist: Q6 differs between original and recovered collection";
  violations :=
    !violations
    @ Smc_check.Audit.check_once r.Snapshot.r_rt ~contexts:[ coll'.Smc.Collection.ctx ]
    @ Smc_check.Obs_check.check r.Snapshot.r_rt ~contexts:[ coll'.Smc.Collection.ctx ]
    @ Smc_check.Index_check.check (List.map snd r.Snapshot.r_indexes);
  Wal.close wal;
  if not keep_dir then begin
    (try Sys.remove snap_path with Sys_error _ -> ());
    (try Sys.remove wal_path with Sys_error _ -> ());
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end;
  (points, !violations)

let table points =
  let t =
    Table.create ~title:"Persistence throughput (TPC-H lineitem)"
      ~columns:[ "stage"; "rows"; "MB"; "ms"; "MB/s"; "krows/s" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.stage;
          string_of_int p.rows;
          Printf.sprintf "%.1f" (float p.bytes /. 1048576.0);
          Printf.sprintf "%.1f" p.ms;
          (if p.bytes = 0 then "-" else Printf.sprintf "%.1f" p.mb_s);
          Printf.sprintf "%.1f" p.krows_s;
        ])
    points;
  t
