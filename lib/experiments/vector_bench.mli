(** Four-engine comparison on TPC-H Q1/Q6 (docs/vectorized.md).

    Runs the same Q1/Q6 plans ({!Linq_vs_compiled.q1_plan} /
    {!Linq_vs_compiled.q6_plan}) over the same SMC lineitem source through
    all four engines — Volcano ({!Smc_query.Interp}), the fused push
    pipeline ({!Smc_query.Fuse}), the vectorized batch engine
    ({!Smc_query.Vector}) and the Dynlink-compiled plan
    ({!Smc_query.Codegen}) — and reports median wall time, source-row
    throughput and speedup relative to Fuse.

    Self-checking: every engine's rows must be bit-identical to the
    Volcano reference; the compiled plan must execute through a loaded
    plugin or its point carries an explicit "skipped: ..." note (bytecode
    host, no ocamlopt, ...); the run finishes with the structural audit
    and the Obs counter balances. Violations are returned; empty means
    every gate held. *)

type point = {
  query : string;  (** ["Q1"] | ["Q6"] *)
  engine : string;  (** ["Volcano"] | ["Fuse"] | ["Vector"] | ["Compiled"] *)
  ms : float;  (** median wall time; [nan] when the engine was skipped *)
  krows_s : float;  (** source rows per second through the plan *)
  vs_fuse : float;  (** throughput relative to Fuse (>1 = faster); [nan] when skipped *)
  identical : bool;  (** rows bit-identical to the Volcano reference *)
  note : string;  (** compile outcome, skip reason, or [""] *)
}

val run : ?sf:float -> unit -> point list * string list
(** Default [sf] 0.1 (the issue's headline configuration). *)

val table : point list -> Smc_util.Table.t
