(** Incremental materialized views vs from-scratch aggregation (and the
    view-maintenance self-check).

    Aggregates a synthetic [rows]-row table per group key two ways — the
    written GroupBy plan (full re-scan) and the
    {!Smc_query.Planner}-rewritten {!Smc_query.Plan.ViewRead} over the
    maintained view — on all four engines, verifying both return the
    same bag of rows, and gates a repeated-read workload on a speedup
    floor. Churn phases (bare removes, value stores, group-key stores,
    transactional batches) re-verify four-engine parity after every
    phase; a crash-recovery phase replays the run's WAL into a fresh
    collection whose view is attached before replay and checks the
    recovered view bit-for-bit against the live one. Finishes with
    {!Smc_check.Matview_check}, {!Smc_check.Audit} and
    {!Smc_check.Obs_check} sweeps over both runtimes: the returned
    violations list is empty iff every invariant held. *)

type point = {
  phase : string;
  engine : string;
  groups : int;
  scan_ms : float;
  view_ms : float;
  speedup : float;
  identical : bool;  (** view plan returned exactly the scan plan's rows *)
}

val run : ?rows:int -> ?dir:string -> unit -> point list * string list
(** Default: 1M rows. [dir] keeps the WAL/snapshot artifacts (default: a
    temporary directory, removed after the run). *)

val table : point list -> Smc_util.Table.t
