open Smc_util

type point = { variant : string; threads : int; streams_per_min : float }

let measure ops ~lock ~threads ~pairs_per_thread ~batch =
  let t0 = Unix.gettimeofday () in
  Workload.domains_run threads (fun i ->
      let prng = Prng.create ~seed:(Int64.of_int (i + 17)) () in
      for _ = 1 to pairs_per_thread do
        match lock with
        | Some m ->
          Mutex.lock m;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock m)
            (fun () -> Smc_tpch.Refresh.run_stream_pair ops ~prng ~batch)
        | None -> Smc_tpch.Refresh.run_stream_pair ops ~prng ~batch
      done);
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let streams = float_of_int (2 * pairs_per_thread * threads) in
  streams /. (ms /. 60_000.0)

let run ?(sf = 0.02) ?(pairs_per_thread = 3) ?(thread_counts = [ 1; 2; 4 ]) () =
  let ds = Smc_tpch.Dbgen.generate ~sf () in
  let initial = Array.length ds.Smc_tpch.Row.lineitems in
  let batch = max 1 (initial / 1000) in
  List.concat_map
    (fun threads ->
      (* Fresh stores per thread count so wear does not accumulate across
         configurations. *)
      let configs =
        [
          ("List", Smc_tpch.Refresh.vector_ops ds, Some (Mutex.create ()));
          ("C. Dictionary", Smc_tpch.Refresh.dict_ops ds, None);
          ("SMC", Smc_tpch.Refresh.smc_ops (Smc_tpch.Db_smc.load ds) ds, None);
          (* Beyond the paper: the same stream pairs as atomic multi-op
             transactions (docs/transactions.md) — the price of all-or-
             nothing refresh halves relative to bare SMC ops. *)
          ("SMC txn", Smc_tpch.Refresh.smc_txn_ops (Smc_tpch.Db_smc.load ds) ds, None);
        ]
      in
      List.map
        (fun (variant, ops, lock) ->
          Gc.full_major ();
          let streams_per_min = measure ops ~lock ~threads ~pairs_per_thread ~batch in
          { variant; threads; streams_per_min })
        configs)
    thread_counts

let table points =
  let t =
    Table.create ~title:"Figure 8: refresh stream throughput (streams per minute)"
      ~columns:[ "variant"; "threads"; "streams/min" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [ p.variant; string_of_int p.threads; Printf.sprintf "%.1f" p.streams_per_min ])
    points;
  t
