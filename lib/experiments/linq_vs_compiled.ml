open Smc_util
module Q = Smc_query
module V = Smc_query.Value

type point = { query : string; engine : string; ms : float; vs_compiled_pct : float }

let median_ms f = Stats.median (Timing.repeat ~warmup:1 3 (fun () -> ignore (Sys.opaque_identity (f ()))))

let lineitem_source (db : Smc_tpch.Db_smc.t) =
  let lf = db.Smc_tpch.Db_smc.lf in
  Q.Source.of_smc db.Smc_tpch.Db_smc.lineitems
    ~columns:
      Q.Source.
        [
          ("shipdate", C_date lf.Smc_tpch.Db_smc.l_shipdate);
          ("discount", C_dec lf.Smc_tpch.Db_smc.l_discount);
          ("quantity", C_dec lf.Smc_tpch.Db_smc.l_quantity);
          ("price", C_dec lf.Smc_tpch.Db_smc.l_extendedprice);
          ("tax", C_dec lf.Smc_tpch.Db_smc.l_tax);
          ("returnflag", C_char lf.Smc_tpch.Db_smc.l_returnflag);
          ("linestatus", C_char lf.Smc_tpch.Db_smc.l_linestatus);
        ]

let q6_plan src =
  let lo = Smc_tpch.Results.q6_date in
  let hi = Smc_util.Date.add_months lo 12 in
  Q.Plan.(
    group_by ~keys:[]
      ~aggs:[ ("revenue", Sum Q.Expr.(Mul (Col "price", Col "discount"))) ]
      (where
         Q.Expr.(
           And
             ( And (Ge (Col "shipdate", Const (V.Date lo)), Lt (Col "shipdate", Const (V.Date hi))),
               And (Between (Col "discount", dec "0.05", dec "0.07"), Lt (Col "quantity", int 24))
             ))
         (scan src)))

let q1_plan src =
  let cutoff =
    Smc_util.Date.add_days (Smc_util.Date.of_ymd 1998 12 1) (-Smc_tpch.Results.q1_delta_days)
  in
  Q.Plan.(
    group_by
      ~keys:[ ("rf", Q.Expr.Col "returnflag"); ("ls", Q.Expr.Col "linestatus") ]
      ~aggs:
        [
          ("sum_qty", Sum (Q.Expr.Col "quantity"));
          ("sum_price", Sum (Q.Expr.Col "price"));
          ( "sum_disc_price",
            Sum Q.Expr.(Mul (Col "price", Sub (dec "1.00", Col "discount"))) );
          ("n", Count);
        ]
      (where Q.Expr.(Le (Col "shipdate", Const (V.Date cutoff))) (scan src)))

let run ?(sf = 0.05) () =
  let ds = Smc_tpch.Dbgen.generate ~sf () in
  let db = Smc_tpch.Db_smc.load ds in
  let list_db = Smc_tpch.Db_managed.of_vectors ds in
  let src = lineitem_source db in
  let entries =
    [
      (* The paper's direct claim: LINQ over managed collections costs
         40–400% more than compiled code over the same collections. *)
      ( "Q6",
        [
          ("compiled (managed List)", fun () -> Obj.repr (Smc_tpch.Q_managed.q6 list_db));
          ("LINQ (Seq over List)", fun () -> Obj.repr (Smc_tpch.Q_linq.q6 list_db));
          ("compiled (SMC, hand-fused)", fun () -> Obj.repr (Smc_tpch.Q_smc.q6 ~unsafe:true db));
          ("fused pipeline (SMC)", fun () -> Obj.repr (Q.Fuse.collect (q6_plan src)));
          ("Volcano (SMC)", fun () -> Obj.repr (Q.Interp.collect (q6_plan src)));
        ] );
      ( "Q1",
        [
          ("compiled (managed List)", fun () -> Obj.repr (Smc_tpch.Q_managed.q1 list_db));
          ("LINQ (Seq over List)", fun () -> Obj.repr (Smc_tpch.Q_linq.q1 list_db));
          ("compiled (SMC, hand-fused)", fun () -> Obj.repr (Smc_tpch.Q_smc.q1 ~unsafe:true db));
          ("fused pipeline (SMC)", fun () -> Obj.repr (Q.Fuse.collect (q1_plan src)));
          ("Volcano (SMC)", fun () -> Obj.repr (Q.Interp.collect (q1_plan src)));
        ] );
      ( "Q3",
        [
          ("compiled (managed List)", fun () -> Obj.repr (Smc_tpch.Q_managed.q3 list_db));
          ("LINQ (Seq over List)", fun () -> Obj.repr (Smc_tpch.Q_linq.q3 list_db));
        ] );
    ]
  in
  List.concat_map
    (fun (query, engines) ->
      (* Measure every engine exactly once; the first is the 100% base. *)
      let timed = List.map (fun (engine, f) -> (engine, median_ms f)) engines in
      match timed with
      | [] -> []
      | (_, base) :: _ ->
        List.map
          (fun (engine, ms) -> { query; engine; ms; vs_compiled_pct = 100.0 *. ms /. base })
          timed)
    entries

let table points =
  let t =
    Table.create ~title:"E9: LINQ-style vs compiled query evaluation"
      ~columns:[ "query"; "engine"; "ms"; "vs compiled (%)" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [ p.query; p.engine; Printf.sprintf "%.2f" p.ms; Printf.sprintf "%.0f" p.vs_compiled_pct ])
    points;
  t
