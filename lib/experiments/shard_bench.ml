(* Sharded-collection scaling driver, swept over shard counts: group-commit
   throughput with one WAL per shard (sync Always, so commits are bounded
   by log-sync latency — the cost sharding overlaps), then per-shard-
   parallel snapshot and restore. The sweep is also a correctness gate:
   every shard count must answer the probe queries on all four engines
   bit-identically to an unsharded collection holding the same rows, the
   restored sharding must hold exactly the live rows (per-shard WAL tails
   replayed), and every shard runtime must pass the structural audit and
   counter balances, plus the coordinator's shard/request partitions. *)

open Smc_util
open Smc_offheap
module C = Smc.Collection
module Pool = Smc_parallel.Pool
module Shard = Smc_shard.Shard
module Wal = Smc_persist.Wal
module Q = Smc_query
module V = Smc_query.Value

type point = {
  shards : int;
  stage : string;  (** ["txn commit"] | ["snapshot"] | ["restore"] *)
  rows : int;
  bytes : int;
  ms : float;
  krows_s : float;
  mb_s : float;
}

let kv_layout = Layout.create ~name:"kv" [ ("k", Layout.Int); ("v", Layout.Int) ]
let fk = Smc.Field.int kv_layout "k"
let fv = Smc.Field.int kv_layout "v"

(* Deterministic values with a sprinkle of negatives so the filter probe
   keeps a small, stable selection. *)
let value_of k = ((k * 37) land 0xffff) - 1234

let point ~shards ~stage ~rows ~bytes ms =
  {
    shards;
    stage;
    rows;
    bytes;
    ms;
    krows_s = (if ms <= 0.0 then 0.0 else float rows /. 1e3 /. (ms /. 1e3));
    mb_s = (if bytes = 0 || ms <= 0.0 then 0.0 else float bytes /. 1048576.0 /. (ms /. 1e3));
  }

let columns = [ ("k", Q.Source.C_int fk); ("v", Q.Source.C_int fv) ]

(* Probe plans with a total order on the output, so parity is plain list
   equality. [g = k - (k/16)*16] stands in for [k mod 16]. *)
let plans src =
  let k = Q.Expr.Col "k" and v = Q.Expr.Col "v" in
  let g = Q.Expr.Sub (k, Q.Expr.Mul (Q.Expr.Div (k, Q.Expr.int 16), Q.Expr.int 16)) in
  [
    ( "groupby",
      Q.Plan.order_by
        [ (Q.Expr.Col "g", Q.Plan.Asc) ]
        (Q.Plan.group_by
           ~keys:[ ("g", g) ]
           ~aggs:[ ("n", Q.Plan.Count); ("sv", Q.Plan.Sum v) ]
           (Q.Plan.scan src)) );
    ( "filter",
      Q.Plan.order_by
        [ (k, Q.Plan.Asc); (v, Q.Plan.Asc) ]
        (Q.Plan.select
           [ ("k", k); ("v", v) ]
           (Q.Plan.where (Q.Expr.Lt (v, Q.Expr.int 0)) (Q.Plan.scan src))) );
  ]

let engines =
  [
    ("Volcano", fun plan -> Q.Interp.collect plan);
    ("Fuse", fun plan -> Q.Fuse.collect plan);
    ("Vector", fun plan -> Q.Vector.collect plan);
    ( "Compiled",
      fun plan ->
        match Q.Codegen.prepare plan with
        | runner, Q.Codegen.Native _ ->
          let out = ref [] in
          runner (fun row -> out := row :: !out);
          List.rev !out
        | _, Q.Codegen.Fallback _ ->
          (* The fallback executes through Fuse; parity still holds or the
             gate below reports it. *)
          Q.Fuse.collect plan );
  ]

let rows_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun ra rb -> Array.length ra = Array.length rb && Array.for_all2 V.equal ra rb)
       a b

let dump_sorted sh =
  Shard.fold sh ~init:[]
    ~f:(fun _ coll ->
      C.fold coll ~init:[] ~f:(fun acc blk slot ->
          (Smc.Field.get_int fk blk slot, Smc.Field.get_int fv blk slot) :: acc))
    ~combine:( @ )
  |> List.sort compare

let add_kv_init k v blk slot =
  Smc.Field.set_int fk blk slot k;
  Smc.Field.set_int fv blk slot v

let run ?(shard_counts = [ 1; 2; 4; 8 ]) ?(txns = 240) ?(ops_per_txn = 8) ?dir () =
  let keep_dir, base_dir =
    match dir with
    | Some d -> (true, d)
    | None ->
      let d = Filename.temp_file "smc_shard_bench" "" in
      Sys.remove d;
      Unix.mkdir d 0o755;
      (false, d)
  in
  let violations = ref [] in
  let note fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let points = ref [] in
  List.iter
    (fun n ->
      let dir = Filename.concat base_dir (string_of_int n) in
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let sh = Shard.create ~shards:n ~name:"kv" ~layout:kv_layout ~slots_per_block:256 () in
      let (_ : Wal.t array) = Shard.attach_wals ~sync:Wal.Always sh ~dir in
      let pool = Pool.create ~size:(max 0 (n - 1)) () in
      (* Partition the key space by owning shard so every writer commits
         only to its own shard: the sweep measures per-shard group commit,
         not cross-shard lock contention. *)
      let txns_per_shard = max 1 (txns / n) in
      let keys_needed = txns_per_shard * ops_per_txn in
      let buckets = Array.make n [||] in
      let acc = Array.make n [] and filled = ref 0 and next = ref 0 in
      while !filled < n do
        let k = !next in
        incr next;
        let s = Shard.shard_of sh ~key:k in
        if List.length acc.(s) < keys_needed then begin
          acc.(s) <- k :: acc.(s);
          if List.length acc.(s) = keys_needed then begin
            buckets.(s) <- Array.of_list (List.rev acc.(s));
            incr filled
          end
        end
      done;
      (* ---- Stage 1: transaction commit throughput ---- *)
      let (), load_ms =
        Timing.time_it (fun () ->
            Pool.run pool ~workers:n (fun w ->
                let keys = buckets.(w) in
                for t = 0 to txns_per_shard - 1 do
                  match
                    Shard.transact sh (fun tx ->
                        for o = 0 to ops_per_txn - 1 do
                          let k = keys.((t * ops_per_txn) + o) in
                          Shard.stage_add tx ~key:k ~init:(add_kv_init k (value_of k))
                        done)
                  with
                  | Shard.Committed _ -> ()
                  | Shard.Conflict -> failwith "shard_bench: unexpected load conflict"
                done))
      in
      let loaded = n * keys_needed in
      points := point ~shards:n ~stage:"txn commit" ~rows:loaded ~bytes:0 load_ms :: !points;
      (* A few cross-shard batches (not timed) so the sweep exercises the
         two-phase path, plus one forced conflict for the outcome balance. *)
      (match
         Shard.transact sh (fun tx ->
             for k = 1_000_000 to 1_000_000 + (2 * n) - 1 do
               Shard.stage_add tx ~key:k ~init:(add_kv_init k (value_of k))
             done)
       with
      | Shard.Committed _ -> ()
      | Shard.Conflict -> note "shards=%d: cross-shard put conflicted unexpectedly" n);
      (match
         Shard.transact sh (fun tx ->
             Shard.stage_add tx ~key:2_000_000 ~init:(add_kv_init 2_000_000 1))
       with
      | Shard.Committed [ r ] ->
        (* Force a first-committer-wins loss: a chaos hook slips a bare
           store onto the same row inside the prepare window (after the
           sub-transaction's begin CSN, before validation). *)
        let fired = ref false in
        let outcome =
          Smc_check.Chaos.with_txn_hook
            (Shard.runtime sh (Shard.sref_shard r))
            ~hook:(fun phase ->
              if phase = Runtime.Txn_staged && not !fired then begin
                fired := true;
                Shard.store sh r ~word:fv.Layout.word ~value:3
              end)
            (fun () ->
              Shard.transact sh (fun tx ->
                  Shard.stage_store tx r ~word:fv.Layout.word ~value:2))
        in
        (match outcome with
        | Shard.Conflict -> ()
        | Shard.Committed _ -> note "shards=%d: stale transaction committed over a bare store" n)
      | _ -> note "shards=%d: conflict-probe setup failed" n);
      (* ---- Parity gate: four engines vs an unsharded reference ---- *)
      let live = dump_sorted sh in
      let ref_rt = Runtime.create () in
      let ref_coll =
        C.create ref_rt ~name:"kv_ref" ~layout:kv_layout ~slots_per_block:256 ()
      in
      List.iter (fun (k, v) -> ignore (C.add ref_coll ~init:(add_kv_init k v) : Smc.Ref.t)) live;
      let src_sh = Shard.source sh ~columns in
      let src_ref = Q.Source.of_smc ref_coll ~columns in
      List.iter
        (fun ((pname, plan_sh), (_, plan_ref)) ->
          let reference = Q.Interp.collect plan_ref in
          List.iter
            (fun (ename, run_engine) ->
              if not (rows_equal reference (run_engine plan_sh)) then
                note "shards=%d: %s/%s differs from the unsharded reference" n pname ename)
            engines)
        (List.combine (plans src_sh) (plans src_ref));
      (* ---- Stage 2: per-shard-parallel snapshot ---- *)
      let manifests, snap_ms = Timing.time_it (fun () -> Shard.snapshot ~pool sh ~dir) in
      let snap_bytes = Array.fold_left (fun a (_, b) -> a + b) 0 manifests in
      let live_rows = Shard.count sh in
      points :=
        point ~shards:n ~stage:"snapshot" ~rows:live_rows ~bytes:snap_bytes snap_ms :: !points;
      (* Post-cut work lives only in the per-shard WAL tails. *)
      for k = 3_000_000 to 3_000_000 + 31 do
        ignore (Shard.add sh ~key:k ~init:(add_kv_init k (value_of k)) : Shard.sref)
      done;
      Array.iter Wal.flush (Shard.wals sh);
      let live = dump_sorted sh in
      (* ---- Stage 3: per-shard-parallel restore (with WAL replay) ---- *)
      let r, restore_ms =
        Timing.time_it (fun () -> Shard.restore ~pool ~dir ~name:"kv" ~shards:n ())
      in
      points :=
        point ~shards:n ~stage:"restore" ~rows:(Shard.count r.Shard.r_shard)
          ~bytes:r.Shard.r_bytes restore_ms
        :: !points;
      if r.Shard.r_replayed < 32 then
        note "shards=%d: WAL tails replayed %d records, expected at least 32" n
          r.Shard.r_replayed;
      if r.Shard.r_torn_dropped <> 0 then
        note "shards=%d: unexpected torn-tail drop on cleanly flushed logs" n;
      if dump_sorted r.Shard.r_shard <> live then
        note "shards=%d: restored rows differ from the live sharding" n;
      (* ---- Audits and counter balances ---- *)
      for i = 0 to n - 1 do
        let check_instance label rt (coll : C.t) =
          let contexts = [ coll.C.ctx ] in
          List.iter
            (fun v -> note "shards=%d %s[%d]: %s" n label i v)
            (Smc_check.Audit.check_once rt ~contexts
            @ Smc_check.Obs_check.check rt ~contexts)
        in
        check_instance "shard" (Shard.runtime sh i) (Shard.collection sh i);
        check_instance "restored" (Shard.runtime r.Shard.r_shard i)
          (Shard.collection r.Shard.r_shard i)
      done;
      List.iter
        (fun v -> note "shards=%d coordinator: %s" n v)
        (Smc_check.Obs_check.check_shard (Shard.obs sh));
      Array.iter Wal.close (Shard.wals sh);
      Pool.shutdown pool;
      if not keep_dir then begin
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end;
      Gc.compact ())
    shard_counts;
  if not keep_dir then (try Unix.rmdir base_dir with Unix.Unix_error _ -> ());
  (List.rev !points, List.rev !violations)

(* Throughput of each stage relative to its 1-shard baseline, when the
   sweep included one. *)
let speedup points p =
  let base =
    List.find_opt (fun q -> q.shards = 1 && String.equal q.stage p.stage) points
  in
  match base with
  | Some b when b.ms > 0.0 && p.ms > 0.0 && p.shards <> 1 ->
    (* same work at every shard count, so wall-time ratio is the
       throughput ratio *)
    Some (b.ms /. p.ms)
  | _ -> None

let table points =
  let t =
    Table.create ~title:"Sharded scaling (per-shard WAL group commit, snapshot, restore)"
      ~columns:[ "shards"; "stage"; "rows"; "MB"; "ms"; "krows/s"; "MB/s"; "vs 1 shard" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          string_of_int p.shards;
          p.stage;
          string_of_int p.rows;
          (if p.bytes = 0 then "-" else Printf.sprintf "%.2f" (float p.bytes /. 1048576.0));
          Printf.sprintf "%.1f" p.ms;
          Printf.sprintf "%.1f" p.krows_s;
          (if p.bytes = 0 then "-" else Printf.sprintf "%.1f" p.mb_s);
          (match speedup points p with Some x -> Printf.sprintf "%.2fx" x | None -> "-");
        ])
    points;
  t
