(* Four-engine comparison on TPC-H Q1/Q6: the tagged-value Volcano
   interpreter, the fused push pipeline, the vectorized batch engine and
   the Dynlink-compiled plan — same plans, same SMC lineitem source.

   The run is also a correctness gate: every engine's rows must be
   bit-identical (Value.equal, same order) to the Volcano reference, the
   compiled path must actually execute through a loaded plugin (or report
   exactly why it was skipped), and the runtime must pass the structural
   audit and counter balances afterwards. Violations are returned; empty
   means every gate held. *)

open Smc_util
module Q = Smc_query
module V = Smc_query.Value

type point = {
  query : string;  (** ["Q1"] | ["Q6"] *)
  engine : string;  (** ["Volcano"] | ["Fuse"] | ["Vector"] | ["Compiled"] *)
  ms : float;  (** median wall time; [nan] when the engine was skipped *)
  krows_s : float;  (** source rows per second through the plan *)
  vs_fuse : float;  (** throughput relative to Fuse (>1 = faster); [nan] when skipped *)
  identical : bool;  (** rows bit-identical to the Volcano reference *)
  note : string;  (** compile outcome, skip reason, or [""] *)
}

let median_ms f =
  Stats.median (Timing.repeat ~warmup:1 3 (fun () -> ignore (Sys.opaque_identity (f ()))))

let rows_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun ra rb -> Array.length ra = Array.length rb && Array.for_all2 V.equal ra rb)
       a b

let run ?(sf = 0.1) () =
  let ds = Smc_tpch.Dbgen.generate ~sf () in
  let db = Smc_tpch.Db_smc.load ds in
  let src = Linq_vs_compiled.lineitem_source db in
  let rows = Array.length ds.Smc_tpch.Row.lineitems in
  let violations = ref [] in
  let note_violation fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let points = ref [] in
  let bench query plan =
    let reference = Q.Interp.collect plan in
    if reference = [] then note_violation "%s: empty reference result" query;
    let fuse_ms = median_ms (fun () -> Q.Fuse.collect plan) in
    let emit engine ms identical note =
      points :=
        {
          query;
          engine;
          ms;
          krows_s = (if Float.is_nan ms then Float.nan else float rows /. ms);
          vs_fuse = (if Float.is_nan ms then Float.nan else fuse_ms /. ms);
          identical;
          note;
        }
        :: !points;
      if not identical then note_violation "%s/%s: rows differ from the Volcano reference" query engine
    in
    let timed engine f note =
      let identical = rows_equal reference (f ()) in
      emit engine (median_ms f) identical note
    in
    timed "Volcano" (fun () -> Q.Interp.collect plan) "";
    timed "Fuse" (fun () -> Q.Fuse.collect plan) "";
    timed "Vector" (fun () -> Q.Vector.collect plan) "";
    (* Prepare once so the compile (or the decision to skip) happens outside
       the timed region; the runner is the cached plugin function. *)
    (match Q.Codegen.prepare plan with
    | runner, Q.Codegen.Native digest ->
      let collect () =
        let out = ref [] in
        runner (fun row -> out := row :: !out);
        List.rev !out
      in
      timed "Compiled" collect (Printf.sprintf "dynlink %s" (String.sub digest 0 12))
    | _, Q.Codegen.Fallback reason ->
      (* Report the skip explicitly rather than timing the Fuse fallback as
         if it were compiled code. *)
      emit "Compiled" Float.nan true (Printf.sprintf "skipped: %s" reason))
  in
  bench "Q6" (Linq_vs_compiled.q6_plan src);
  bench "Q1" (Linq_vs_compiled.q1_plan src);
  let contexts =
    List.map
      (fun (c : Smc.Collection.t) -> c.Smc.Collection.ctx)
      Smc_tpch.Db_smc.
        [
          db.regions; db.nations; db.suppliers; db.parts; db.partsupps; db.customers;
          db.orders; db.lineitems;
        ]
  in
  violations :=
    !violations
    @ Smc_check.Audit.check_once db.Smc_tpch.Db_smc.rt ~contexts
    @ Smc_check.Obs_check.check db.Smc_tpch.Db_smc.rt ~contexts;
  (List.rev !points, List.rev !violations)

let table points =
  let t =
    Table.create ~title:"Vectorized batch engine vs Volcano/Fuse/Compiled (TPC-H)"
      ~columns:[ "query"; "engine"; "ms"; "krows/s"; "vs Fuse"; "identical"; "note" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.query;
          p.engine;
          (if Float.is_nan p.ms then "-" else Printf.sprintf "%.2f" p.ms);
          (if Float.is_nan p.ms then "-" else Printf.sprintf "%.0f" p.krows_s);
          (if Float.is_nan p.vs_fuse then "-" else Printf.sprintf "%.2fx" p.vs_fuse);
          (if p.identical then "yes" else "NO");
          p.note;
        ])
    points;
  t
