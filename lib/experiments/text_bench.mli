(** Suffix-array text access paths vs full scans (and text-index
    self-check).

    Runs rare-substring, fixed-prefix and substring-plus-residual
    selections over a synthetic [rows]-document corpus, each measured as
    the written scan plan and as the {!Smc_query.Planner}-rewritten
    {!Smc_query.Plan.TextScan} plan across all four engines, verifying
    both return the same bag of rows and that the high-selectivity probe
    clears a speedup floor. A churn phase removes rows (their unique head
    tokens must stop matching), overwrites surviving rows through the
    store hook (old text must miss, new text must hit from the pending
    log, then survive a forced merge-rebuild), re-verifies parity, and
    finishes with {!Smc_check.Text_check}, {!Smc_check.Audit} and
    {!Smc_check.Obs_check} sweeps: the returned violations list is empty
    iff every invariant held. *)

type point = {
  case : string;
  engine : string;
  rows_out : int;
  scan_ms : float;
  idx_ms : float;
  speedup : float;
  identical : bool;  (** text plan returned exactly the scan plan's rows *)
}

val run : ?rows:int -> unit -> point list * string list
(** Default: 1M documents. *)

val table : point list -> Smc_util.Table.t
