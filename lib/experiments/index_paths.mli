(** Indexed vs full-scan access-path comparison (and index self-check).

    Runs point selection, duplicated-key equi-selection (with a residual
    conjunct), and small-probe equi-joins — synthetic at [rows] items and
    TPC-H lineitem ⋈ orders at scale factor [sf] — each measured as the
    written scan plan and as the {!Smc_query.Planner}-rewritten index
    plan, verifying both return the same bag of rows. A churn phase then
    removes, probes (removed keys must miss), re-adds and sweeps, and the
    run finishes with {!Smc_check.Index_check}, {!Smc_check.Audit} and
    {!Smc_check.Obs_check} sweeps: the returned violations list is empty
    iff every invariant held. *)

type point = {
  case : string;
  engine : string;
  rows_out : int;
  scan_ms : float;
  idx_ms : float;
  speedup : float;
  identical : bool;  (** indexed plan returned exactly the scan plan's rows *)
}

val run : ?rows:int -> ?sf:float -> unit -> point list * string list
(** Defaults: 1M synthetic rows, TPC-H sf 0.01. *)

val table : point list -> Smc_util.Table.t
