(** Query scaling — parallel TPC-H Q1/Q6 over a shared domain pool.

    A Fig 7-style scaling sweep for query execution rather than allocation:
    the sequential unsafe kernels are the baseline, then the same kernels
    run as block-partitioned parallel scans ({!Smc_tpch.Q_smc.q1_par} /
    {!Smc_tpch.Q_smc.q6_par}) at each requested domain count, all drawing
    workers from one reusable pool so no run pays [Domain.spawn]. Speedup
    is relative to the sequential baseline of the same query. Note the
    parallel points can only scale up to the machine's core count
    regardless of the requested domains. *)

type point = { query : string; variant : string; domains : int; ms : float; speedup : float }

val run : ?sf:float -> ?domain_counts:int list -> unit -> point list
(** Defaults: [sf = 0.05], [domain_counts = [1; 2; 4; 8]]. *)

val table : point list -> Smc_util.Table.t
