(* Incremental materialized views vs from-scratch aggregation.

   A synthetic measurement table: [rows] rows spread over a fixed set of
   group keys, aggregated per key (count/sum/min/max/avg) by the same
   logical GroupBy plan run two ways — as written (full re-scan and
   re-aggregation) and through [Planner.choose_access_paths] (a ViewRead
   over the maintained view, O(groups) per read) — on all four engines,
   verifying the rewritten plan returns exactly the scan plan's rows.
   The repeated-read workload gates the view path on a speedup floor.

   Churn phases then drive every maintenance delta — bare removes, stores
   to the aggregate input (remove+add on one group), stores to the group
   key (contribution migration between groups), transactional batches of
   all three kinds, and extremum removals that force dirty-group
   re-scans — re-verifying four-engine parity after each phase. A WAL
   records the whole history; a crash-recovery phase replays it into a
   fresh collection whose view is attached *before* replay, so the
   recovered view is fed purely by replay deltas and must agree with the
   live one bit-for-bit. Matview_check, Audit and Obs_check close the
   run: the returned violations list is empty iff every invariant held. *)

open Smc_util
module Q = Smc_query
module V = Smc_query.Value
module MV = Smc_matview.Matview
module Wal = Smc_persist.Wal
module Snapshot = Smc_persist.Snapshot

type point = {
  phase : string;
  engine : string;
  groups : int;
  scan_ms : float;
  view_ms : float;
  speedup : float;
  identical : bool;
}

let median_ms f =
  Stats.median (Timing.repeat ~warmup:1 3 (fun () -> ignore (Sys.opaque_identity (f ()))))

let sorted_rows rows = List.sort Stdlib.compare rows

let same_rows a b =
  List.equal (fun x y -> Array.for_all2 V.equal x y) (sorted_rows a) (sorted_rows b)

(* ---- fixture -------------------------------------------------------- *)

let n_groups = 64
let key_of i = (i * 2654435761) land (n_groups - 1)
let val_of i = 1 + ((i * 0x9E3779B1) land 0xFFFF)

let layout =
  Smc_offheap.Layout.create ~name:"meas"
    [ ("k", Smc_offheap.Layout.Int); ("v", Smc_offheap.Layout.Int) ]

let fk = Smc.Field.int layout "k"
let fv = Smc.Field.int layout "v"
let columns = [ ("k", Q.Source.C_int fk); ("v", Q.Source.C_int fv) ]
let keys = [ ("k", Q.Expr.Col "k") ]

let plan_aggs =
  [
    ("n", Q.Plan.Count);
    ("s", Q.Plan.Sum (Q.Expr.Col "v"));
    ("mn", Q.Plan.Min (Q.Expr.Col "v"));
    ("mx", Q.Plan.Max (Q.Expr.Col "v"));
    ("av", Q.Plan.Avg (Q.Expr.Col "v"));
  ]

let view_aggs = List.map (fun (n, a) -> (n, Q.Plan.view_agg_of_agg a)) plan_aggs

let add_meas coll k v =
  Smc.Collection.add coll ~init:(fun blk slot ->
      Smc.Field.set_int fk blk slot k;
      Smc.Field.set_int fv blk slot v)

(* ---- run ------------------------------------------------------------ *)

let run ?(rows = 1_000_000) ?dir () =
  let rt = Smc_offheap.Runtime.create () in
  let coll = Smc.Collection.create rt ~name:"meas" ~layout () in
  let own_dir = dir = None in
  let dir =
    match dir with
    | Some d ->
      if not (Sys.file_exists d) then Sys.mkdir d 0o755;
      d
    | None -> Filename.temp_file "smc_mv_bench" ""
  in
  if own_dir then begin
    Sys.remove dir;
    Sys.mkdir dir 0o700
  end;
  let wal_path = Filename.concat dir "meas.wal" in
  let snap_path = Filename.concat dir "meas.smcsnap" in
  let wal = Wal.create ~path:wal_path ~name:"meas" () in
  Wal.attach wal coll;
  let (_ : Snapshot.manifest * int) = Snapshot.write ~wal ~path:snap_path coll in
  let mv = MV.attach ~name:"meas_by_k" coll ~columns ~keys ~aggs:view_aggs () in
  let refs = Array.make rows Smc.Ref.null in
  for i = 0 to rows - 1 do
    refs.(i) <- add_meas coll (key_of i) (val_of i)
  done;
  let src_plain = Q.Source.of_smc coll ~columns in
  let src_mv = Q.Source.of_smc coll ~columns ~matviews:[ MV.info mv ] in
  let scan_plan = Q.Plan.group_by ~keys ~aggs:plan_aggs (Q.Plan.scan src_plain) in
  let view_plan =
    let p =
      Q.Planner.choose_access_paths
        (Q.Plan.group_by ~keys ~aggs:plan_aggs (Q.Plan.scan src_mv))
    in
    (match p with Q.Plan.ViewRead _ -> () | _ -> assert false);
    p
  in
  let engines =
    [
      ("Volcano", Q.Interp.collect);
      ("Fuse", Q.Fuse.collect);
      ("Vector", fun p -> Q.Vector.collect p);
      ("Compiled", Q.Codegen.collect);
    ]
  in
  let violations = ref [] in
  let vf fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let points = ref [] in
  (* Four-engine parity at a phase boundary; the measured point rides the
     named engine so every phase contributes one timing row per engine. *)
  let phase_points phase =
    List.iter
      (fun (engine, collect) ->
        let scan_rows = collect scan_plan and view_rows = collect view_plan in
        let scan_ms = median_ms (fun () -> collect scan_plan) in
        let view_ms = median_ms (fun () -> collect view_plan) in
        points :=
          {
            phase;
            engine;
            groups = List.length view_rows;
            scan_ms;
            view_ms;
            speedup = (if view_ms > 0.0 then scan_ms /. view_ms else infinity);
            identical = same_rows scan_rows view_rows;
          }
          :: !points)
      engines
  in
  phase_points "build";
  (* The repeated-read gate: a query-dominated workload re-reads the same
     aggregate many times between mutations — the maintained O(groups)
     read must leave the O(rows) re-aggregation far behind. The floor
     scales down with the corpus like the other access-path gates. *)
  let repeated_reads = 50 in
  let view_rep =
    median_ms (fun () ->
        for _ = 1 to repeated_reads do
          ignore (Sys.opaque_identity (Q.Fuse.collect view_plan))
        done)
  in
  let scan_rep =
    median_ms (fun () ->
        for _ = 1 to repeated_reads do
          ignore (Sys.opaque_identity (Q.Fuse.collect scan_plan))
        done)
  in
  let rep_speedup = if view_rep > 0.0 then scan_rep /. view_rep else infinity in
  let floor = if rows >= 500_000 then 100.0 else 3.0 in
  if rep_speedup < floor then
    vf "repeated-read view speedup %.1fx below the %.0fx floor" rep_speedup floor;
  points :=
    {
      phase = "repeated reads";
      engine = "Fuse";
      groups = List.length (Q.Fuse.collect view_plan);
      scan_ms = scan_rep;
      view_ms = view_rep;
      speedup = rep_speedup;
      identical = true;
    }
    :: !points;
  (* ---- churn: every maintenance delta, parity after each phase ------ *)
  (* Bare removes (a stride, including group extrema → dirty re-scans). *)
  let i = ref 0 in
  while !i < rows do
    ignore (Smc.Collection.remove coll refs.(!i) : bool);
    i := !i + 97
  done;
  phase_points "removes";
  (* Stores to the aggregate input: remove+add deltas on one group. *)
  let i = ref 1 in
  while !i < rows do
    if !i mod 97 <> 0 then
      Smc.Collection.store coll refs.(!i) ~word:fv.Smc_offheap.Layout.word
        ~value:(1 + ((!i * 7919) land 0xFFFF));
    i := !i + 199
  done;
  phase_points "value stores";
  (* Stores to the group key: contributions migrate between groups. *)
  let i = ref 2 in
  while !i < rows do
    if !i mod 97 <> 0 then
      Smc.Collection.store coll refs.(!i) ~word:fk.Smc_offheap.Layout.word
        ~value:((!i * 31) land (n_groups - 1));
    i := !i + 211
  done;
  phase_points "key stores";
  (* Transactional batches: adds, removes and stores land as one delta
     batch under the commit lock. *)
  let i = ref 3 in
  while !i < rows do
    let tx = Smc.Collection.txn coll in
    let k = !i in
    Smc.Collection.stage_add tx ~init:(fun blk slot ->
        Smc.Field.set_int fk blk slot (key_of k);
        Smc.Field.set_int fv blk slot (val_of (k + 1)));
    if k mod 97 <> 0 && (k + 211) mod 97 <> 0 && k + 211 < rows then
      Smc.Collection.stage_remove tx refs.(k + 211);
    if k mod 97 <> 0 then
      Smc.Collection.stage_store tx refs.(k) ~word:fv.Smc_offheap.Layout.word
        ~value:(1 + (k land 0x7FFF));
    (match Smc.Collection.commit tx with
    | Smc.Collection.Committed _ -> ()
    | Smc.Collection.Conflict -> vf "unexpected transaction conflict at %d" k);
    i := !i + 1009
  done;
  phase_points "txn batches";
  (* ---- crash recovery: replay the full history into a fresh view ---- *)
  Wal.close wal;
  let rt2 = Smc_offheap.Runtime.create () in
  let coll2 = Smc.Collection.create rt2 ~name:"meas" ~layout () in
  let mv2 = MV.attach ~name:"meas_by_k" coll2 ~columns ~keys ~aggs:view_aggs () in
  let (_applied, torn) = Snapshot.replay_wal coll2 ~path:wal_path ~cut:(-1) in
  if torn <> 0 then vf "replay dropped %d torn-tail records from a clean close" torn;
  let mv2_rows =
    let out = ref [] in
    MV.read mv2 (fun row -> out := Array.copy row :: !out);
    !out
  in
  let live_rows = Q.Fuse.collect view_plan in
  if not (same_rows mv2_rows live_rows) then
    vf "recovered view diverges from the live view (%d vs %d groups)"
      (List.length mv2_rows) (List.length live_rows);
  let src2 = Q.Source.of_smc coll2 ~columns in
  let scratch2 =
    Q.Interp.collect (Q.Plan.group_by ~keys ~aggs:plan_aggs (Q.Plan.scan src2))
  in
  if not (same_rows mv2_rows scratch2) then
    vf "recovered view diverges from re-aggregating the recovered rows";
  points :=
    {
      phase = "recovery replay";
      engine = "Fuse";
      groups = List.length mv2_rows;
      scan_ms = 0.0;
      view_ms = 0.0;
      speedup = 1.0;
      identical = same_rows mv2_rows live_rows && same_rows mv2_rows scratch2;
    }
    :: !points;
  if own_dir then begin
    (try Sys.remove wal_path with Sys_error _ -> ());
    (try Sys.remove snap_path with Sys_error _ -> ());
    try Sys.rmdir dir with Sys_error _ -> ()
  end;
  let final =
    !violations
    @ Smc_check.Matview_check.check [ mv; mv2 ]
    @ Smc_check.Audit.check_once rt ~contexts:[ coll.Smc.Collection.ctx ]
    @ Smc_check.Obs_check.check rt ~contexts:[ coll.Smc.Collection.ctx ]
    @ Smc_check.Audit.check_once rt2 ~contexts:[ coll2.Smc.Collection.ctx ]
    @ Smc_check.Obs_check.check rt2 ~contexts:[ coll2.Smc.Collection.ctx ]
  in
  (List.rev !points, List.rev final)

let table points =
  let t =
    Table.create ~title:"Materialized views: maintained reads vs re-aggregation"
      ~columns:[ "phase"; "engine"; "groups"; "scan ms"; "view ms"; "speedup"; "identical" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.phase;
          p.engine;
          string_of_int p.groups;
          Printf.sprintf "%.3f" p.scan_ms;
          Printf.sprintf "%.3f" p.view_ms;
          Printf.sprintf "%.1fx" p.speedup;
          string_of_bool p.identical;
        ])
    points;
  t
