open Smc_util

type point = { query : string; variant : string; domains : int; ms : float; speedup : float }

(* Minimum of several runs, as in Fig 11: the most noise-robust point
   estimate for a deterministic computation on a shared machine. *)
let best_ms f = Stats.min (Timing.repeat ~warmup:2 5 (fun () -> ignore (Sys.opaque_identity (f ()))))

let run ?(sf = 0.05) ?(domain_counts = [ 1; 2; 4; 8 ]) () =
  let ds = Smc_tpch.Dbgen.generate ~sf () in
  let db = Smc_tpch.Db_smc.load ds in
  (* One pool sized for the widest configuration, shared by every run — the
     whole point of the pool is that queries reuse its domains, so the
     measurements exclude [Domain.spawn]. *)
  let max_domains = List.fold_left max 1 domain_counts in
  let pool = Smc_parallel.Pool.create ~size:(max_domains - 1) () in
  Fun.protect
    ~finally:(fun () -> Smc_parallel.Pool.shutdown pool)
    (fun () ->
      let queries =
        [
          ( "Q1",
            (fun () -> ignore (Smc_tpch.Q_smc.q1 ~unsafe:true db : Smc_tpch.Results.q1)),
            fun domains ->
              ignore (Smc_tpch.Q_smc.q1_par ~pool ~domains db : Smc_tpch.Results.q1) );
          ( "Q6",
            (fun () -> ignore (Smc_tpch.Q_smc.q6 ~unsafe:true db : Smc_tpch.Results.q6)),
            fun domains ->
              ignore (Smc_tpch.Q_smc.q6_par ~pool ~domains db : Smc_tpch.Results.q6) );
        ]
      in
      List.concat_map
        (fun (query, seq, par) ->
          let seq_ms = best_ms seq in
          { query; variant = "SMC (unsafe, seq)"; domains = 1; ms = seq_ms; speedup = 1.0 }
          :: List.map
               (fun domains ->
                 let ms = best_ms (fun () -> par domains) in
                 { query; variant = "SMC (parallel)"; domains; ms; speedup = seq_ms /. ms })
               domain_counts)
        queries)

let table points =
  let t =
    Table.create ~title:"Query scaling: parallel Q1/Q6 vs the sequential unsafe kernels"
      ~columns:[ "query"; "variant"; "domains"; "ms"; "speedup" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.query;
          p.variant;
          string_of_int p.domains;
          Printf.sprintf "%.2f" p.ms;
          Printf.sprintf "%.2f" p.speedup;
        ])
    points;
  t
