(* Indexed vs full-scan access paths.

   Workload 1 (synthetic, [rows] items): point selection on a unique int
   key, equi-selection on a 16-way duplicated group key, and a small-probe
   equi-join against the full table — each run twice from the same logical
   plan: once as written (full scan / hash join) and once through
   [Planner.choose_access_paths] (IndexScan / IndexJoin). Workload 2
   (TPC-H): lineitem ⋈ orders through an index on o_orderkey. Both check
   the indexed plan returns exactly the scan plan's rows, then a churn
   phase (remove / probe-removed / re-add / sweep) exercises staleness
   before the final audits — so a bench run is also the index self-check
   workload. *)

open Smc_util
module Q = Smc_query
module V = Smc_query.Value
module H = Smc_index.Hash_index

type point = {
  case : string;
  engine : string;
  rows_out : int;
  scan_ms : float;
  idx_ms : float;
  speedup : float;
  identical : bool;
}

let median_ms f =
  Stats.median (Timing.repeat ~warmup:1 3 (fun () -> ignore (Sys.opaque_identity (f ()))))

let sorted_rows rows = List.sort Stdlib.compare rows

let same_rows a b =
  List.equal (fun x y -> Array.for_all2 V.equal x y) (sorted_rows a) (sorted_rows b)

let measure ~case ~engine ~collect ~scan_plan ~idx_plan =
  let scan_rows = collect scan_plan and idx_rows = collect idx_plan in
  let scan_ms = median_ms (fun () -> collect scan_plan) in
  let idx_ms = median_ms (fun () -> collect idx_plan) in
  {
    case;
    engine;
    rows_out = List.length idx_rows;
    scan_ms;
    idx_ms;
    speedup = (if idx_ms > 0.0 then scan_ms /. idx_ms else infinity);
    identical = same_rows scan_rows idx_rows;
  }

(* ---- synthetic items table ---------------------------------------- *)

let group_fanout = 16

let run_synthetic ~rows =
  let rt = Smc_offheap.Runtime.create () in
  let layout =
    Smc_offheap.Layout.create ~name:"items"
      [ ("k", Smc_offheap.Layout.Int); ("grp", Smc_offheap.Layout.Int); ("v", Smc_offheap.Layout.Int) ]
  in
  let items = Smc.Collection.create rt ~name:"items" ~layout () in
  let fk = Smc.Field.int layout "k"
  and fg = Smc.Field.int layout "grp"
  and fv = Smc.Field.int layout "v" in
  let refs = Array.make rows Smc.Ref.null in
  for i = 0 to rows - 1 do
    refs.(i) <-
      Smc.Collection.add items ~init:(fun blk slot ->
          Smc.Field.set_int fk blk slot i;
          Smc.Field.set_int fg blk slot (i / group_fanout);
          Smc.Field.set_int fv blk slot (i * 3))
  done;
  let ix_k = H.attach ~name:"items_by_k" ~key:(H.Int_key (Smc.Field.get_int fk)) items in
  let ix_g = H.attach ~name:"items_by_grp" ~key:(H.Int_key (Smc.Field.get_int fg)) items in
  let src =
    Q.Source.of_smc items
      ~indexes:[ ("k", ix_k); ("grp", ix_g) ]
      ~columns:[ ("k", Q.Source.C_int fk); ("grp", Q.Source.C_int fg); ("v", Q.Source.C_int fv) ]
  in
  let indexed plan =
    let p = Q.Planner.choose_access_paths plan in
    assert (Q.Planner.uses_index p);
    p
  in
  (* Point selection: one row out of [rows]. *)
  let point_plan = Q.Plan.(where Q.Expr.(Eq (Col "k", int (rows / 2))) (scan src)) in
  (* Equi-selection on the duplicated key plus a residual conjunct the
     index cannot answer — the rewrite must keep it as a filter. *)
  let equi_plan =
    Q.Plan.(
      where
        Q.Expr.(And (Eq (Col "grp", int (rows / (2 * group_fanout))), Ge (Col "v", int 0)))
        (scan src))
  in
  (* Small probe side joining against the full table. *)
  let probe_rows = min 1000 rows in
  let left =
    Q.Source.of_array ~name:"wanted" ~schema:[ "wk" ]
      (Array.init probe_rows (fun i -> [| V.Int (i * (rows / probe_rows)) |]))
  in
  let join_plan = Q.Plan.(join ~on:[ ("wk", "k") ] (scan left) (scan src)) in
  let points =
    [
      measure ~case:"point k=const" ~engine:"Fuse" ~collect:Q.Fuse.collect
        ~scan_plan:point_plan ~idx_plan:(indexed point_plan);
      measure ~case:"point k=const" ~engine:"Volcano" ~collect:Q.Interp.collect
        ~scan_plan:point_plan ~idx_plan:(indexed point_plan);
      measure ~case:"equi grp=const (+residual)" ~engine:"Fuse" ~collect:Q.Fuse.collect
        ~scan_plan:equi_plan ~idx_plan:(indexed equi_plan);
      measure ~case:"join wanted⋈items" ~engine:"Fuse" ~collect:Q.Fuse.collect
        ~scan_plan:join_plan ~idx_plan:(indexed join_plan);
    ]
  in
  (* Churn phase: remove ~1% of the keys, verify probes for removed keys
     miss (stale entries must never resurrect), re-add them with fresh
     rows, sweep, and audit. *)
  let resurrections = ref 0 in
  let step = 97 in
  let removed = ref [] in
  let i = ref 0 in
  while !i < rows do
    if Smc.Collection.remove items refs.(!i) then removed := !i :: !removed;
    i := !i + step
  done;
  List.iter
    (fun k -> if H.contains ix_k (H.K_int k) then incr resurrections)
    !removed;
  List.iter
    (fun k ->
      refs.(k) <-
        Smc.Collection.add items ~init:(fun blk slot ->
            Smc.Field.set_int fk blk slot k;
            Smc.Field.set_int fg blk slot (k / group_fanout);
            Smc.Field.set_int fv blk slot (k * 3)))
    !removed;
  H.sweep ix_k;
  H.sweep ix_g;
  let violations =
    (if !resurrections > 0 then
       [ Printf.sprintf "index items_by_k: %d probes of removed keys hit" !resurrections ]
     else [])
    @ Smc_check.Index_check.check [ ix_k; ix_g ]
    @ Smc_check.Audit.check_once rt ~contexts:[ items.Smc.Collection.ctx ]
    @ Smc_check.Obs_check.check rt ~contexts:[ items.Smc.Collection.ctx ]
  in
  (points, violations)

(* ---- TPC-H: lineitem ⋈ orders through an orderkey index ------------ *)

let run_tpch ~sf =
  let ds = Smc_tpch.Dbgen.generate ~sf () in
  let db = Smc_tpch.Db_smc.load ds in
  let orf = db.Smc_tpch.Db_smc.orf and lf = db.Smc_tpch.Db_smc.lf in
  let ix_ok =
    H.attach ~name:"orders_by_orderkey"
      ~key:(H.Int_key (Smc.Field.get_int orf.Smc_tpch.Db_smc.o_orderkey))
      db.Smc_tpch.Db_smc.orders
  in
  let orders_src =
    Q.Source.of_smc db.Smc_tpch.Db_smc.orders
      ~indexes:[ ("orderkey", ix_ok) ]
      ~columns:
        [
          ("orderkey", Q.Source.C_int orf.Smc_tpch.Db_smc.o_orderkey);
          ("odate", Q.Source.C_date orf.Smc_tpch.Db_smc.o_orderdate);
        ]
  in
  let li_src =
    Q.Source.of_smc db.Smc_tpch.Db_smc.lineitems
      ~columns:
        [
          ( "okey",
            Q.Source.C_fn
              (fun b s ->
                match
                  Smc.Field.follow lf.Smc_tpch.Db_smc.l_order
                    ~target:db.Smc_tpch.Db_smc.orders b s
                with
                | Some (ob, os) -> V.Int (Smc.Field.get_int orf.Smc_tpch.Db_smc.o_orderkey ob os)
                | None -> V.Null) );
          ("price", Q.Source.C_dec lf.Smc_tpch.Db_smc.l_extendedprice);
          ("sdate", Q.Source.C_date lf.Smc_tpch.Db_smc.l_shipdate);
        ]
  in
  (* Selective probe side (late shipdates) joined to orders: the classic
     shape where an index nested-loop join skips the build of the full
     orders hash table. *)
  let cutoff = Smc_util.Date.of_ymd 1998 9 1 in
  let join_plan =
    Q.Plan.(
      group_by ~keys:[]
        ~aggs:[ ("n", Count); ("sum_price", Sum (Q.Expr.Col "price")) ]
        (join
           ~on:[ ("okey", "orderkey") ]
           (where Q.Expr.(Ge (Col "sdate", Const (V.Date cutoff))) (scan li_src))
           (scan orders_src)))
  in
  let idx_plan = Q.Planner.choose_access_paths join_plan in
  assert (Q.Planner.uses_index idx_plan);
  let p =
    measure ~case:"tpch lineitem⋈orders" ~engine:"Fuse" ~collect:Q.Fuse.collect
      ~scan_plan:join_plan ~idx_plan
  in
  let contexts =
    List.map
      (fun (c : Smc.Collection.t) -> c.Smc.Collection.ctx)
      [
        db.Smc_tpch.Db_smc.regions;
        db.Smc_tpch.Db_smc.nations;
        db.Smc_tpch.Db_smc.suppliers;
        db.Smc_tpch.Db_smc.parts;
        db.Smc_tpch.Db_smc.partsupps;
        db.Smc_tpch.Db_smc.customers;
        db.Smc_tpch.Db_smc.orders;
        db.Smc_tpch.Db_smc.lineitems;
      ]
  in
  let violations =
    Smc_check.Index_check.check [ ix_ok ]
    @ Smc_check.Audit.check_once db.Smc_tpch.Db_smc.rt ~contexts
  in
  ([ p ], violations)

let run ?(rows = 1_000_000) ?(sf = 0.01) () =
  let syn_points, syn_violations = run_synthetic ~rows in
  let tpch_points, tpch_violations = run_tpch ~sf in
  (syn_points @ tpch_points, syn_violations @ tpch_violations)

let table points =
  let t =
    Table.create ~title:"Index access paths: indexed vs full-scan"
      ~columns:[ "case"; "engine"; "rows out"; "scan ms"; "index ms"; "speedup"; "identical" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.case;
          p.engine;
          string_of_int p.rows_out;
          Printf.sprintf "%.3f" p.scan_ms;
          Printf.sprintf "%.3f" p.idx_ms;
          Printf.sprintf "%.1fx" p.speedup;
          string_of_bool p.identical;
        ])
    points;
  t
