(** §7's LINQ-vs-compiled observation (E9 in DESIGN.md).

    The paper notes that evaluating the queries through LINQ instead of
    compiled C# costs 40–400% more. The closest analogue here is
    {!Smc_tpch.Q_linq}: lazy Seq pipelines over the managed List, compared
    against the compiled managed queries — the same collections, only the
    evaluation model differs. The table also reports the generic engines
    over an SMC source (fused push pipeline and the tagged-value Volcano
    interpreter, which bounds the interpreted cost model from above). *)

type point = { query : string; engine : string; ms : float; vs_compiled_pct : float }

val run : ?sf:float -> unit -> point list
val table : point list -> Smc_util.Table.t

(** The lineitem column bindings and Q1/Q6 plan shapes, shared with
    {!Vector_bench} so every engine comparison measures the same plans. *)

val lineitem_source : Smc_tpch.Db_smc.t -> Smc_query.Source.t
val q1_plan : Smc_query.Source.t -> Smc_query.Plan.t
val q6_plan : Smc_query.Source.t -> Smc_query.Plan.t
