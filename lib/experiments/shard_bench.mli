(** Sharded-collection scaling driver: group-commit throughput with one
    WAL per shard (sync [Always]), then per-shard-parallel snapshot and
    restore, swept over shard counts. Self-checking: four-engine query
    parity against an unsharded reference, restored-rows equality (WAL
    tails replayed), structural audits and counter balances on every
    shard runtime, and the coordinator's [shard_*]/[srv_*] partitions. *)

type point = {
  shards : int;
  stage : string;  (** ["txn commit"] | ["snapshot"] | ["restore"] *)
  rows : int;
  bytes : int;  (** snapshot bytes; [0] for the commit stage *)
  ms : float;
  krows_s : float;
  mb_s : float;
}

val run :
  ?shard_counts:int list ->
  ?txns:int ->
  ?ops_per_txn:int ->
  ?dir:string ->
  unit ->
  point list * string list
(** Returns the measured points and the violations (empty = all gates
    passed). [txns] (default 240) is the total transaction budget per
    shard count, split evenly across shards; [ops_per_txn] defaults to 8.
    When [dir] is given, snapshot/WAL files are written under it and
    kept; otherwise a temporary directory is used and removed. *)

val speedup : point list -> point -> float option
(** Throughput of a point relative to the 1-shard baseline of its stage,
    when the sweep included one. *)

val table : point list -> Smc_util.Table.t
