(** Snapshot / restore / WAL-replay throughput on TPC-H lineitem.

    Loads TPC-H at scale factor [sf], churns the lineitem collection
    (removes plus logged in-place stores) with a WAL attached, snapshots
    it, churns further so the log tail carries real work, then measures
    three stages: snapshot write, snapshot restore, and restore with WAL
    replay. Throughput is reported in MB/s over the image bytes and krows/s
    over the affected rows.

    The run is also a correctness gate: the replayed instance must pass
    {!Smc_check.Audit}, {!Smc_check.Obs_check} and
    {!Smc_check.Index_check} (a shipdate index is re-attached from the
    manifest), report exactly the live row count, and answer Q1 and Q6
    bit-identically to the original collection. Violations are returned;
    empty means every gate held. *)

type point = {
  stage : string;  (** ["snapshot"] | ["restore"] | ["wal replay"] *)
  rows : int;  (** rows written / restored / replayed *)
  bytes : int;  (** image bytes through this stage (0 for replay) *)
  ms : float;
  mb_s : float;  (** image megabytes per second; 0 when bytes is 0 *)
  krows_s : float;
}

val run : ?sf:float -> ?dir:string -> unit -> point list * string list
(** Default [sf] 0.1. Artifacts are written to [dir] (default: a fresh
    directory under the system temp dir) and deleted afterwards unless the
    directory was supplied by the caller. *)

val table : point list -> Smc_util.Table.t
