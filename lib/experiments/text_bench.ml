(* Suffix-array text access paths vs full scans.

   A synthetic document table: each row carries a fixed-width unique head
   token ("doc%07d") followed by pseudo-random filler tokens, with a rare
   marker token ("zqxj") planted in ~1/10000 rows. Substring and prefix
   selections run twice from the same logical plan — as written (full
   scan with the byte-loop predicate) and through
   [Planner.choose_access_paths] (TextScan over the suffix array) — on
   all four engines, verifying the rewritten plan returns exactly the
   scan plan's rows. A churn phase then removes rows (their head tokens
   must stop matching — staleness must never resurrect), overwrites
   surviving rows' text through the store hook (old text must miss, new
   text must hit from the pending log), forces a merge-rebuild and
   re-verifies parity, so a bench run is also the text-index self-check
   workload. *)

open Smc_util
module Q = Smc_query
module V = Smc_query.Value
module T = Smc_text.Sa_index

type point = {
  case : string;
  engine : string;
  rows_out : int;
  scan_ms : float;
  idx_ms : float;
  speedup : float;
  identical : bool;
}

let median_ms f =
  Stats.median (Timing.repeat ~warmup:1 3 (fun () -> ignore (Sys.opaque_identity (f ()))))

let sorted_rows rows = List.sort Stdlib.compare rows

let same_rows a b =
  List.equal (fun x y -> Array.for_all2 V.equal x y) (sorted_rows a) (sorted_rows b)

let measure ~case ~engine ~collect ~scan_plan ~idx_plan =
  let scan_rows = collect scan_plan and idx_rows = collect idx_plan in
  let scan_ms = median_ms (fun () -> collect scan_plan) in
  let idx_ms = median_ms (fun () -> collect idx_plan) in
  {
    case;
    engine;
    rows_out = List.length idx_rows;
    scan_ms;
    idx_ms;
    speedup = (if idx_ms > 0.0 then scan_ms /. idx_ms else infinity);
    identical = same_rows scan_rows idx_rows;
  }

(* ---- corpus --------------------------------------------------------- *)

let tokens =
  [| "alpha"; "bravo"; "china"; "delta"; "early"; "forge"; "grain"; "hotel";
     "igloo"; "knife"; "lemon"; "motor"; "noble"; "ocean"; "piano"; "river";
     "sugar"; "tango"; "umbra"; "vigor"; "wheat"; "yacht"; "amber"; "blaze";
     "cedar"; "dough"; "ember"; "flint"; "gleam"; "haven"; "ivory"; "karma" |]

(* The rare marker: tokens are separated by spaces and none contains it,
   so it can neither occur in filler nor straddle a token boundary. *)
let marker = "zqxj"
let marker_step = 9973

let head_token i = Printf.sprintf "doc%07d" i
let upd_token i = Printf.sprintf "upd%07d" i

let doc_text i =
  let h = (i * 2654435761) land 0x3FFFFFFF in
  Printf.sprintf "%s %s %s%s" (head_token i)
    tokens.(h land 31)
    tokens.((h lsr 5) land 31)
    (if i mod marker_step = 0 then " " ^ marker else "")

let store_string coll (f : Smc_offheap.Layout.field) r s =
  let words = Smc_offheap.Block.string_words f s in
  Array.iteri
    (fun i w -> Smc.Collection.store coll r ~word:(f.Smc_offheap.Layout.word + i) ~value:w)
    words

(* ---- run ------------------------------------------------------------ *)

let run ?(rows = 1_000_000) () =
  let rt = Smc_offheap.Runtime.create () in
  let layout =
    Smc_offheap.Layout.create ~name:"docs"
      [ ("id", Smc_offheap.Layout.Int); ("txt", Smc_offheap.Layout.Str 42) ]
  in
  let docs = Smc.Collection.create rt ~name:"docs" ~layout () in
  let fid = Smc.Field.int layout "id" and ftxt = Smc.Field.str layout "txt" in
  let refs = Array.make rows Smc.Ref.null in
  for i = 0 to rows - 1 do
    refs.(i) <-
      Smc.Collection.add docs ~init:(fun blk slot ->
          Smc.Field.set_int fid blk slot i;
          Smc.Field.set_string ftxt blk slot (doc_text i))
  done;
  let tix = T.attach ~name:"docs_by_txt" ~column:"txt" docs in
  let src =
    Q.Source.of_smc docs
      ~text_indexes:[ ("txt", tix) ]
      ~columns:[ ("id", Q.Source.C_int fid); ("txt", Q.Source.C_str ftxt) ]
  in
  let indexed plan =
    let p = Q.Planner.choose_access_paths plan in
    assert (Q.Planner.uses_index p);
    p
  in
  let violations = ref [] in
  let vf fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (* Rare substring: ~rows/10k hits out of [rows]. *)
  let sub_plan = Q.Plan.(where Q.Expr.(Contains (Col "txt", marker)) (scan src)) in
  (* Prefix over the fixed-width head tokens: "doc00042" matches exactly
     ids 4200-4299 (the width pins every other id's digits away). *)
  let prefix = "doc00042" in
  let pre_plan = Q.Plan.(where Q.Expr.(StartsWith (Col "txt", prefix)) (scan src)) in
  (* Conjunction with a residual the index cannot answer — the rewrite
     must keep it as a filter over the probe. *)
  let mix_plan =
    Q.Plan.(
      where
        Q.Expr.(And (Contains (Col "txt", marker), Ge (Col "id", int (rows / 2))))
        (scan src))
  in
  let engines =
    [
      ("Volcano", Q.Interp.collect);
      ("Fuse", Q.Fuse.collect);
      ("Vector", fun p -> Q.Vector.collect p);
      ("Compiled", Q.Codegen.collect);
    ]
  in
  let points =
    List.concat_map
      (fun (engine, collect) ->
        [
          measure ~case:("substring " ^ marker) ~engine ~collect ~scan_plan:sub_plan
            ~idx_plan:(indexed sub_plan);
          measure ~case:("prefix " ^ prefix) ~engine ~collect ~scan_plan:pre_plan
            ~idx_plan:(indexed pre_plan);
        ])
      engines
    @ [
        measure ~case:"substring (+residual)" ~engine:"Fuse" ~collect:Q.Fuse.collect
          ~scan_plan:mix_plan ~idx_plan:(indexed mix_plan);
        measure ~case:"substring (+residual)" ~engine:"Vector"
          ~collect:(fun p -> Q.Vector.collect p)
          ~scan_plan:mix_plan ~idx_plan:(indexed mix_plan);
      ]
  in
  (* The high-selectivity gate: a needle hitting ~1/10k rows must beat the
     full scan by a wide margin. The floor scales down with the corpus —
     at smoke sizes the scan is only a few hundred microseconds. *)
  let floor = if rows >= 500_000 then 100.0 else 3.0 in
  List.iter
    (fun p ->
      if String.equal p.engine "Fuse" && String.equal p.case ("substring " ^ marker) then
        if p.speedup < floor then
          vf "text path speedup %.1fx below the %.0fx floor (%s/%s)" p.speedup floor
            p.case p.engine)
    points;
  (* ---- churn: removals must go stale, stores must re-key ------------- *)
  let removed = ref [] in
  let i = ref 0 in
  while !i < rows do
    if Smc.Collection.remove docs refs.(!i) then removed := !i :: !removed;
    i := !i + 97
  done;
  List.iter
    (fun k ->
      if T.contains_match tix T.Prefix (head_token k) then
        vf "removed row %d still matches its head token" k)
    !removed;
  let updated = ref [] in
  let i = ref 1 in
  while !i < rows do
    (* Skip the removed stride (multiples of 97): stores need a live row. *)
    if !i mod 97 <> 0 then begin
      store_string docs ftxt refs.(!i) (Printf.sprintf "%s %s" (upd_token !i) marker);
      updated := !i :: !updated
    end;
    i := !i + 199
  done;
  (* New text must hit straight from the pending log; the old head token
     must read as a miss (the arena entry went stale via the re-check). *)
  List.iter
    (fun k ->
      if not (T.contains_match tix T.Prefix (upd_token k)) then
        vf "updated row %d not findable by its new head token (pending path)" k;
      if T.contains_match tix T.Prefix (head_token k) then
        vf "updated row %d still matches its old head token" k)
    !updated;
  T.rebuild tix;
  List.iter
    (fun k ->
      if not (T.contains_match tix T.Prefix (upd_token k)) then
        vf "updated row %d not findable after the merge-rebuild" k)
    !updated;
  (* Post-churn parity: the rewritten plan must still match the scan. *)
  let post = Q.Fuse.collect sub_plan and post_ix = Q.Fuse.collect (indexed sub_plan) in
  if not (same_rows post post_ix) then
    vf "post-churn substring parity: indexed plan diverged from the scan";
  (* Similarity smoke: a live row's own text must surface itself. *)
  let probe_row = 3 in
  (match T.top_k_similar tix ~k:3 (doc_text probe_row) with
  | [] -> vf "top_k_similar returned nothing for a live row's own text"
  | (_, score) :: _ when score <= 0 -> vf "top_k_similar best score not positive"
  | _ -> ());
  let final =
    !violations
    @ Smc_check.Text_check.check [ tix ]
    @ Smc_check.Audit.check_once rt ~contexts:[ docs.Smc.Collection.ctx ]
    @ Smc_check.Obs_check.check rt ~contexts:[ docs.Smc.Collection.ctx ]
  in
  (points, List.rev final)

let table points =
  let t =
    Table.create ~title:"Text access paths: suffix-array probes vs full scans"
      ~columns:[ "case"; "engine"; "rows out"; "scan ms"; "text ms"; "speedup"; "identical" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.case;
          p.engine;
          string_of_int p.rows_out;
          Printf.sprintf "%.3f" p.scan_ms;
          Printf.sprintf "%.3f" p.idx_ms;
          Printf.sprintf "%.1fx" p.speedup;
          string_of_bool p.identical;
        ])
    points;
  t
