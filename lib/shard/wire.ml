(* The serving loop's frame format: length-prefixed binary messages over a
   byte stream. A frame is a 4-byte little-endian payload length followed
   by the payload; a payload is a 1-byte opcode followed by 8-byte
   little-endian integer fields (an error payload carries UTF-8 message
   bytes instead). Requests speak the key/value vocabulary the server
   executes against a sharded collection; [Shed] is the explicit
   admission-control reply, distinct from [Err] so clients can tell
   overload from failure and retry accordingly. *)

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

type request =
  | Ping
  | Add of { key : int; value : int }
  | Get of { shard : int; packed : int }
  | Remove of { shard : int; packed : int }
  | Store of { shard : int; packed : int; value : int }
  | Txn_put of (int * int) list  (** atomic cross-shard batch of (key, value) adds *)
  | Count
  | Sum

type reply =
  | Ok_unit
  | Ok_int of int
  | Ok_pair of int * int
  | Ok_refs of (int * int) list
  | Err of string
  | Shed

let max_frame = 1 lsl 20

(* ------------------------------------------------------------------ *)
(* Framing *)

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd b !off (len - !off) in
    if n = 0 then fail "write returned 0";
    off := !off + n
  done

(* [false] on clean EOF before the first byte; [Protocol_error] on EOF
   mid-buffer — a peer must not disappear inside a frame. *)
let read_exactly fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < len do
    let n = Unix.read fd b !off (len - !off) in
    if n = 0 then
      if !off = 0 then eof := true else fail "connection closed mid-frame"
    else off := !off + n
  done;
  not !eof

let write_frame fd payload =
  let len = Bytes.length payload in
  if len > max_frame then fail "frame too large (%d bytes)" len;
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.blit payload 0 b 4 len;
  write_all fd b

let read_frame fd =
  let hdr = Bytes.create 4 in
  if not (read_exactly fd hdr) then None
  else begin
    let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
    if len < 0 || len > max_frame then fail "implausible frame length %d" len;
    let payload = Bytes.create len in
    if not (read_exactly fd payload) then fail "connection closed mid-frame";
    Some payload
  end

(* ------------------------------------------------------------------ *)
(* Payload encoding *)

let add_op buf op = Buffer.add_char buf (Char.chr op)
let add_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

type cursor = { bytes : Bytes.t; mutable pos : int }

let get_op c =
  if c.pos >= Bytes.length c.bytes then fail "payload too short for opcode";
  let op = Char.code (Bytes.get c.bytes c.pos) in
  c.pos <- c.pos + 1;
  op

let get_i64 c =
  if c.pos + 8 > Bytes.length c.bytes then fail "payload too short for int field";
  let v = Int64.to_int (Bytes.get_int64_le c.bytes c.pos) in
  c.pos <- c.pos + 8;
  v

let expect_end c =
  if c.pos <> Bytes.length c.bytes then
    fail "%d trailing bytes after payload" (Bytes.length c.bytes - c.pos)

let to_bytes buf = Buffer.to_bytes buf

let encode_request r =
  let buf = Buffer.create 32 in
  (match r with
  | Ping -> add_op buf 1
  | Add { key; value } ->
    add_op buf 2;
    add_i64 buf key;
    add_i64 buf value
  | Get { shard; packed } ->
    add_op buf 3;
    add_i64 buf shard;
    add_i64 buf packed
  | Remove { shard; packed } ->
    add_op buf 4;
    add_i64 buf shard;
    add_i64 buf packed
  | Store { shard; packed; value } ->
    add_op buf 5;
    add_i64 buf shard;
    add_i64 buf packed;
    add_i64 buf value
  | Txn_put pairs ->
    add_op buf 6;
    add_i64 buf (List.length pairs);
    List.iter
      (fun (k, v) ->
        add_i64 buf k;
        add_i64 buf v)
      pairs
  | Count -> add_op buf 7
  | Sum -> add_op buf 8);
  to_bytes buf

let decode_request b =
  let c = { bytes = b; pos = 0 } in
  let r =
    match get_op c with
    | 1 -> Ping
    | 2 ->
      let key = get_i64 c in
      let value = get_i64 c in
      Add { key; value }
    | 3 ->
      let shard = get_i64 c in
      let packed = get_i64 c in
      Get { shard; packed }
    | 4 ->
      let shard = get_i64 c in
      let packed = get_i64 c in
      Remove { shard; packed }
    | 5 ->
      let shard = get_i64 c in
      let packed = get_i64 c in
      let value = get_i64 c in
      Store { shard; packed; value }
    | 6 ->
      let n = get_i64 c in
      if n < 0 || n > max_frame / 16 then fail "implausible batch size %d" n;
      Txn_put
        (List.init n (fun _ ->
             let k = get_i64 c in
             let v = get_i64 c in
             (k, v)))
    | 7 -> Count
    | 8 -> Sum
    | op -> fail "unknown request opcode %d" op
  in
  expect_end c;
  r

let encode_reply r =
  let buf = Buffer.create 32 in
  (match r with
  | Ok_unit -> add_op buf 1
  | Ok_int v ->
    add_op buf 2;
    add_i64 buf v
  | Ok_pair (a, b) ->
    add_op buf 3;
    add_i64 buf a;
    add_i64 buf b
  | Ok_refs refs ->
    add_op buf 4;
    add_i64 buf (List.length refs);
    List.iter
      (fun (s, p) ->
        add_i64 buf s;
        add_i64 buf p)
      refs
  | Err msg ->
    add_op buf 5;
    Buffer.add_string buf msg
  | Shed -> add_op buf 6);
  to_bytes buf

let decode_reply b =
  let c = { bytes = b; pos = 0 } in
  let r =
    match get_op c with
    | 1 -> Ok_unit
    | 2 -> Ok_int (get_i64 c)
    | 3 ->
      let a = get_i64 c in
      let b = get_i64 c in
      Ok_pair (a, b)
    | 4 ->
      let n = get_i64 c in
      if n < 0 || n > max_frame / 16 then fail "implausible ref-list size %d" n;
      Ok_refs
        (List.init n (fun _ ->
             let s = get_i64 c in
             let p = get_i64 c in
             (s, p)))
    | 5 ->
      let msg = Bytes.sub_string c.bytes c.pos (Bytes.length c.bytes - c.pos) in
      c.pos <- Bytes.length c.bytes;
      Err msg
    | 6 -> Shed
    | op -> fail "unknown reply opcode %d" op
  in
  expect_end c;
  r
