(* Blocking client for the serving loop: one request frame out, one reply
   frame back, over a Unix-domain socket. *)

type t = { fd : Unix.file_descr }

let connect ~path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let request t req =
  Wire.write_frame t.fd (Wire.encode_request req);
  match Wire.read_frame t.fd with
  | Some payload -> Wire.decode_reply payload
  | None -> raise (Wire.Protocol_error "server closed the connection")

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
