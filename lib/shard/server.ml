(* The serving front-end: one accept loop on a Unix-domain socket,
   connections handed to the domain pool, requests executed against a
   sharded key/value collection. Admission control bounds the requests in
   flight across all connections; anything over the cap is answered with
   an explicit [Shed] frame instead of queueing without bound — the client
   can tell overload from failure and retry.

   Counter discipline (checked by [Obs_check.check_shard]): every decoded
   request frame is answered exactly one way — [srv_requests] =
   [srv_replies] + [srv_errors] + [srv_shed]. *)

open Smc_offheap
module C = Smc.Collection
module Pool = Smc_parallel.Pool

let kv_layout = Layout.create ~name:"kv" [ ("k", Layout.Int); ("v", Layout.Int) ]

let kv_shard ?shards ?slots_per_block () =
  Shard.create ?shards ~name:"kv" ~layout:kv_layout ?slots_per_block ()

type t = {
  shard : Shard.t;
  fk : Layout.field;
  fv : Layout.field;
  sock : Unix.file_descr;
  path : string;
  pool : Pool.t;
  own_pool : bool;
  obs : Smc_obs.t;
  max_inflight : int;
  inflight : int Atomic.t;
  stopping : bool Atomic.t;
  mutable accept_d : unit Domain.t option;
  conns_lock : Mutex.t;
  mutable conns : unit Pool.promise list;
}

let field layout name =
  match Layout.field_opt layout name with
  | Some f when f.Layout.ftype = Layout.Int -> f
  | _ ->
    invalid_arg
      (Printf.sprintf "Server.start: layout %S has no int field %S — the server speaks the \
                       key/value vocabulary (see Server.kv_layout)"
         layout.Layout.type_name name)

(* ------------------------------------------------------------------ *)
(* Request execution — runs on the pool worker serving the connection. *)

let execute t (req : Wire.request) : Wire.reply =
  let sh = t.shard in
  let check_shard s = s >= 0 && s < Shard.n_shards sh in
  match req with
  | Wire.Ping -> Wire.Ok_unit
  | Wire.Add { key; value } ->
    let r =
      Shard.add sh ~key ~init:(fun blk slot ->
          Smc.Field.set_int t.fk blk slot key;
          Smc.Field.set_int t.fv blk slot value)
    in
    Wire.Ok_pair (Shard.sref_shard r, Smc.Ref.to_packed (Shard.sref_ref r))
  | Wire.Get { shard; packed } ->
    if not (check_shard shard) then Wire.Err "no such shard"
    else begin
      let coll = Shard.collection sh shard in
      C.with_read coll (fun () ->
          match C.deref_opt coll (Smc.Ref.of_packed packed) with
          | None -> Wire.Err "null reference"
          | Some (blk, slot) ->
            Wire.Ok_pair (Smc.Field.get_int t.fk blk slot, Smc.Field.get_int t.fv blk slot))
    end
  | Wire.Remove { shard; packed } ->
    if not (check_shard shard) then Wire.Err "no such shard"
    else
      Wire.Ok_int
        (if Shard.remove sh { Shard.sr_shard = shard; sr_ref = Smc.Ref.of_packed packed }
         then 1
         else 0)
  | Wire.Store { shard; packed; value } ->
    if not (check_shard shard) then Wire.Err "no such shard"
    else begin
      match
        Shard.store sh
          { Shard.sr_shard = shard; sr_ref = Smc.Ref.of_packed packed }
          ~word:t.fv.Layout.word ~value
      with
      | () -> Wire.Ok_unit
      | exception Constants.Null_reference -> Wire.Err "null reference"
    end
  | Wire.Txn_put pairs -> (
    match
      Shard.transact sh (fun tx ->
          List.iter
            (fun (key, value) ->
              Shard.stage_add tx ~key ~init:(fun blk slot ->
                  Smc.Field.set_int t.fk blk slot key;
                  Smc.Field.set_int t.fv blk slot value))
            pairs)
    with
    | Shard.Committed refs ->
      Wire.Ok_refs
        (List.map
           (fun r -> (Shard.sref_shard r, Smc.Ref.to_packed (Shard.sref_ref r)))
           refs)
    | Shard.Conflict -> Wire.Err "conflict")
  | Wire.Count -> Wire.Ok_int (Shard.count sh)
  | Wire.Sum ->
    Wire.Ok_int
      (Shard.fold sh ~init:0
         ~f:(fun _ coll ->
           C.fold coll ~init:0 ~f:(fun acc blk slot -> acc + Smc.Field.get_int t.fv blk slot))
         ~combine:( + ))

(* ------------------------------------------------------------------ *)
(* Connection handling *)

let handle_request t req =
  Smc_obs.incr t.obs Smc_obs.c_srv_requests;
  (* Admission: claim an in-flight slot before executing; over the cap, the
     request is shed without touching the shards. *)
  let claimed = Atomic.fetch_and_add t.inflight 1 in
  let reply =
    if claimed >= t.max_inflight then Wire.Shed
    else match execute t req with r -> r | exception e -> Wire.Err (Printexc.to_string e)
  in
  ignore (Atomic.fetch_and_add t.inflight (-1) : int);
  (match reply with
  | Wire.Shed -> Smc_obs.incr t.obs Smc_obs.c_srv_shed
  | Wire.Err _ -> Smc_obs.incr t.obs Smc_obs.c_srv_errors
  | Wire.Ok_unit | Wire.Ok_int _ | Wire.Ok_pair _ | Wire.Ok_refs _ ->
    Smc_obs.incr t.obs Smc_obs.c_srv_replies);
  reply

let serve_conn t fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let rec loop () =
        match Wire.read_frame fd with
        | None -> () (* client disconnected *)
        | Some payload ->
          let reply =
            match Wire.decode_request payload with
            | req -> handle_request t req
            | exception Wire.Protocol_error msg ->
              Smc_obs.incr t.obs Smc_obs.c_srv_requests;
              Smc_obs.incr t.obs Smc_obs.c_srv_errors;
              Wire.Err ("protocol error: " ^ msg)
          in
          Wire.write_frame fd (Wire.encode_reply reply);
          loop ()
      in
      try loop () with Wire.Protocol_error _ | Unix.Unix_error _ -> ())

let accept_loop t =
  let rec loop () =
    match Unix.accept t.sock with
    | exception Unix.Unix_error _ -> () (* listener closed by [stop] *)
    | fd, _ ->
      if Atomic.get t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        Smc_obs.incr t.obs Smc_obs.c_srv_conns;
        let p = Pool.submit t.pool (fun () -> serve_conn t fd) in
        Mutex.lock t.conns_lock;
        t.conns <- p :: t.conns;
        Mutex.unlock t.conns_lock;
        loop ()
      end
  in
  loop ();
  (* This domain ran connection handlers inline when the pool has no
     workers; hand back the epoch thread slots it registered on the shard
     runtimes, like pool workers do on shutdown. *)
  Epoch.release_current_domain ()

let start ?(max_inflight = 64) ?pool ~path shard =
  if max_inflight < 0 then invalid_arg "Server.start: max_inflight must be >= 0";
  let fk = field (Shard.layout shard) "k" in
  let fv = field (Shard.layout shard) "v" in
  let pool, own_pool =
    match pool with Some p -> (p, false) | None -> (Pool.create (), true)
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind sock (Unix.ADDR_UNIX path);
     Unix.listen sock 64
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      shard;
      fk;
      fv;
      sock;
      path;
      pool;
      own_pool;
      obs = Shard.obs shard;
      max_inflight;
      inflight = Atomic.make 0;
      stopping = Atomic.make false;
      accept_d = None;
      conns_lock = Mutex.create ();
      conns = [];
    }
  in
  t.accept_d <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let socket_path t = t.path

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Closing the listener does not wake a thread already parked in
       accept(2) on Linux; poke the acceptor awake with a throwaway
       connection — it sees [stopping] set and drops it — and also
       shut the listener down, which covers the path having been
       unlinked or replaced underneath us (the connect would then miss
       the live listener). *)
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
         (fun () -> try Unix.connect fd (Unix.ADDR_UNIX t.path) with Unix.Unix_error _ -> ())
     with Unix.Unix_error _ -> ());
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (match t.accept_d with None -> () | Some d -> Domain.join d);
    t.accept_d <- None;
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    Mutex.lock t.conns_lock;
    let conns = t.conns in
    t.conns <- [];
    Mutex.unlock t.conns_lock;
    List.iter (fun p -> try Pool.await p with _ -> ()) conns;
    if t.own_pool then Pool.shutdown t.pool;
    try Unix.unlink t.path with Unix.Unix_error _ -> ()
  end
