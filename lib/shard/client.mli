(** Blocking client for the serving loop. *)

type t

val connect : path:string -> t
(** Connects to a {!Server}'s Unix-domain socket. *)

val request : t -> Wire.request -> Wire.reply
(** One round trip. Raises {!Wire.Protocol_error} on a malformed reply or
    a connection closed mid-exchange. *)

val close : t -> unit
