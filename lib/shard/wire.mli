(** Frame format of the serving loop.

    A frame is a 4-byte little-endian payload length followed by the
    payload; a payload is a 1-byte opcode followed by 8-byte little-endian
    integer fields (error payloads carry message bytes instead). Frames
    are capped at {!max_frame} bytes. See docs/sharding.md for the full
    frame catalogue. *)

exception Protocol_error of string
(** Malformed frame or payload: implausible length, truncated fields,
    unknown opcode, EOF inside a frame. *)

type request =
  | Ping
  | Add of { key : int; value : int }
      (** route by [key]'s hash, insert a (key, value) row *)
  | Get of { shard : int; packed : int }  (** read a row by routed reference *)
  | Remove of { shard : int; packed : int }
  | Store of { shard : int; packed : int; value : int }
      (** in-place update of the value field *)
  | Txn_put of (int * int) list
      (** atomic batch of (key, value) inserts — lands on every owning
          shard or on none (two-phase commit) *)
  | Count  (** live rows across all shards *)
  | Sum  (** fan-out sum of the value field across all shards *)

type reply =
  | Ok_unit
  | Ok_int of int
  | Ok_pair of int * int
      (** [Add]: (shard, packed reference); [Get]: (key, value) *)
  | Ok_refs of (int * int) list  (** [Txn_put]: routed references in batch order *)
  | Err of string  (** the request failed (null reference, conflict, ...) *)
  | Shed
      (** admission control refused the request — the server is at its
          in-flight cap; back off and retry *)

val max_frame : int

val write_frame : Unix.file_descr -> Bytes.t -> unit
val read_frame : Unix.file_descr -> Bytes.t option
(** [None] on clean EOF before the first byte. *)

val encode_request : request -> Bytes.t
val decode_request : Bytes.t -> request
val encode_reply : reply -> Bytes.t
val decode_reply : Bytes.t -> reply
