(* Hash-partitioned collections: one logical collection spread over N
   per-shard memory contexts, each with its own runtime (epoch manager,
   reclamation, counters), its own transaction lock, and — when persistence
   is attached — its own WAL and snapshot file. Single operations route by
   key hash; transactions spanning shards commit through the collection
   layer's two-phase primitives (prepare everything in ascending shard
   order, publish only if every shard validated); queries fan out one
   per-shard source and merge in shard order, so every engine sees one
   ordinary [Source.t].

   Giving each shard a whole runtime rather than one context in a shared
   runtime is deliberate: epoch advancement, reclamation queues, CSN planes
   and counter stripes all stay shard-private, so shards never contend on
   anything but the work the caller actually spreads across them. *)

open Smc_offheap
module C = Smc.Collection
module Pool = Smc_parallel.Pool
module Source = Smc_query.Source
module Wal = Smc_persist.Wal
module Snapshot = Smc_persist.Snapshot

type t = {
  name : string;
  layout : Layout.t;
  colls : C.t array;
  rts : Runtime.t array;
  obs : Smc_obs.t; (* coordinator counters: routes, txn outcomes, fan-outs *)
  mutable wals : Wal.t array; (* [||] until [attach_wals] *)
}

type sref = { sr_shard : int; sr_ref : Smc.Ref.t }

let n_shards t = Array.length t.colls
let collection t i = t.colls.(i)
let runtime t i = t.rts.(i)
let obs t = t.obs
let name t = t.name
let layout t = t.layout
let sref_shard r = r.sr_shard
let sref_ref r = r.sr_ref

let shard_name name i = Printf.sprintf "%s.%d" name i

let create ?(shards = 4) ~name ~layout ?placement ?mode ?slots_per_block ?reclaim_threshold
    () =
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  let rts = Array.init shards (fun _ -> Runtime.create ()) in
  let colls =
    Array.init shards (fun i ->
        C.create rts.(i) ~name:(shard_name name i) ~layout ?placement ?mode ?slots_per_block
          ?reclaim_threshold ())
  in
  { name; layout; colls; rts; obs = Smc_obs.create ~label:(name ^ ".shard") (); wals = [||] }

(* SplitMix64 finalizer over the routing key: adjacent keys land on
   unrelated shards, so range-clustered key spaces still spread evenly. *)
let mix k =
  let k = Int64.of_int k in
  let k = Int64.mul (Int64.logxor k (Int64.shift_right_logical k 30)) 0xbf58476d1ce4e5b9L in
  let k = Int64.mul (Int64.logxor k (Int64.shift_right_logical k 27)) 0x94d049bb133111ebL in
  Int64.to_int (Int64.logxor k (Int64.shift_right_logical k 31)) land max_int

let shard_of t ~key =
  let n = Array.length t.colls in
  if n = 1 then 0 else mix key mod n

(* ---- Routed single operations ---------------------------------------- *)

let add t ~key ~init =
  Smc_obs.incr t.obs Smc_obs.c_shard_routes;
  let s = shard_of t ~key in
  { sr_shard = s; sr_ref = C.add t.colls.(s) ~init }

let remove t r =
  Smc_obs.incr t.obs Smc_obs.c_shard_routes;
  C.remove t.colls.(r.sr_shard) r.sr_ref

let store t r ~word ~value =
  Smc_obs.incr t.obs Smc_obs.c_shard_routes;
  C.store t.colls.(r.sr_shard) r.sr_ref ~word ~value

let mem t r = C.mem t.colls.(r.sr_shard) r.sr_ref
let deref_opt t r = C.deref_opt t.colls.(r.sr_shard) r.sr_ref

let count t = Array.fold_left (fun acc c -> acc + C.count c) 0 t.colls
let memory_words t = Array.fold_left (fun acc c -> acc + C.memory_words c) 0 t.colls

let compact t ?occupancy_threshold () =
  Array.map (fun c -> C.compact c ?occupancy_threshold ()) t.colls

(* ---- Cross-shard transactions -----------------------------------------
   Staging routes each op to its owning shard; commit opens one collection
   transaction per participating shard, stages the per-shard slices, then
   runs two-phase commit over the per-shard transaction locks: prepare in
   ascending shard order (validate holding lock + epoch pin), and only if
   every shard validated, publish each prepared half. A conflict on any
   shard aborts every prepared sibling before anything was published, so
   the cross-shard batch is all-or-nothing in memory.

   Durability is per-shard: each shard's WAL frames its slice atomically,
   but there is no cross-shard commit record — a crash between two shards'
   log syncs can recover one shard's slice without the other's. See
   docs/sharding.md for the contract. *)

type staged =
  | St_add of int * (Block.t -> int -> unit)
  | St_remove of sref
  | St_store of sref * int * int

type txn = { tx_sh : t; mutable tx_ops : staged list (* newest first *); mutable tx_done : bool }

type txn_result = Committed of sref list | Conflict

let txn t = { tx_sh = t; tx_ops = []; tx_done = false }

let check_open tx what =
  if tx.tx_done then
    invalid_arg (Printf.sprintf "Shard.%s: transaction already committed or aborted" what)

let stage_add tx ~key ~init =
  check_open tx "stage_add";
  tx.tx_ops <- St_add (shard_of tx.tx_sh ~key, init) :: tx.tx_ops

let stage_remove tx r =
  check_open tx "stage_remove";
  tx.tx_ops <- St_remove r :: tx.tx_ops

let stage_store tx r ~word ~value =
  check_open tx "stage_store";
  tx.tx_ops <- St_store (r, word, value) :: tx.tx_ops

let abort tx =
  check_open tx "abort";
  tx.tx_done <- true;
  tx.tx_ops <- []

let commit tx =
  check_open tx "commit";
  tx.tx_done <- true;
  let t = tx.tx_sh in
  Smc_obs.incr t.obs Smc_obs.c_shard_txns;
  let n = Array.length t.colls in
  let by_shard = Array.make n [] in
  let ops = List.rev tx.tx_ops (* staging order *) in
  List.iter
    (fun op ->
      let s =
        match op with
        | St_add (s, _) -> s
        | St_remove r | St_store (r, _, _) -> r.sr_shard
      in
      if s < 0 || s >= n then invalid_arg "Shard.commit: reference from a different sharding";
      by_shard.(s) <- op :: by_shard.(s))
    ops;
  let participating = ref [] in
  for s = n - 1 downto 0 do
    if by_shard.(s) <> [] then participating := s :: !participating
  done;
  match !participating with
  | [] ->
    Smc_obs.incr t.obs Smc_obs.c_shard_txn_commits;
    Committed []
  | shards ->
    let subs =
      List.map
        (fun s ->
          let sub = C.txn t.colls.(s) in
          List.iter
            (fun op ->
              match op with
              | St_add (_, init) -> C.stage_add sub ~init
              | St_remove r -> C.stage_remove sub r.sr_ref
              | St_store (r, word, value) -> C.stage_store sub r.sr_ref ~word ~value)
            (List.rev by_shard.(s));
          (s, sub))
        shards
    in
    (* Phase 1: validate every shard in ascending order, accumulating the
       held locks. On the first conflict, release every prepared sibling
       unpublished and close the sub-transactions that were never reached. *)
    let rec prep acc = function
      | [] -> Some (List.rev acc)
      | (s, sub) :: rest -> (
        match C.prepare sub with
        | Some pr -> prep ((s, pr) :: acc) rest
        | None ->
          List.iter (fun (_, pr) -> C.abort_prepared pr) (List.rev acc);
          List.iter (fun (_, sub) -> C.abort sub) rest;
          None)
    in
    (match prep [] subs with
    | None ->
      Smc_obs.incr t.obs Smc_obs.c_shard_txn_conflicts;
      Conflict
    | Some prepared ->
      (* Phase 2: publish. Every shard validated under a lock it still
         holds, so no publish can fail validation now. *)
      let refs_by_shard = Array.make n [] in
      List.iter (fun (s, pr) -> refs_by_shard.(s) <- C.commit_prepared pr) prepared;
      Smc_obs.incr t.obs Smc_obs.c_shard_txn_commits;
      if List.length shards > 1 then Smc_obs.incr t.obs Smc_obs.c_shard_txn_multi;
      (* Weave the per-shard add refs back into overall staging order. *)
      let srefs =
        List.filter_map
          (fun op ->
            match op with
            | St_add (s, _) -> (
              match refs_by_shard.(s) with
              | r :: rest ->
                refs_by_shard.(s) <- rest;
                Some { sr_shard = s; sr_ref = r }
              | [] -> assert false)
            | St_remove _ | St_store _ -> None)
          ops
      in
      Committed srefs)

let transact t f =
  let tx = txn t in
  (match f tx with
  | () -> ()
  | exception e ->
    if not tx.tx_done then abort tx;
    raise e);
  if tx.tx_done then invalid_arg "Shard.transact: body committed or aborted the transaction"
  else commit tx

(* ---- Consistent views -------------------------------------------------
   One frontier per shard, read while holding every shard's transaction
   lock in ascending order ({!C.snapshot_views}) — the same order commit
   prepares in, so a cross-shard transaction is visible in all of the
   per-shard views or in none of them. *)

type view = C.view array

let view t = Array.of_list (C.snapshot_views (Array.to_list t.colls))
let close_view v = Array.iter C.close_view v
let shard_view v i = v.(i)

let with_view t f =
  let v = view t in
  Fun.protect ~finally:(fun () -> close_view v) (fun () -> f v)

(* ---- Fan-out queries -------------------------------------------------- *)

(* Per-shard jobs, optionally spread over a pool; results in shard order. *)
let par_map ?pool jobs =
  match pool with
  | None -> Array.map (fun f -> f ()) jobs
  | Some p ->
    let ps = Array.map (fun f -> Pool.submit p f) jobs in
    Array.map Pool.await ps

let fold ?pool t ~init ~f ~combine =
  Smc_obs.incr t.obs Smc_obs.c_shard_fanouts;
  let parts = par_map ?pool (Array.mapi (fun i coll () -> f i coll) t.colls) in
  Array.fold_left combine init parts

let source ?pool ?domains ?view t ~columns =
  let per =
    Array.mapi
      (fun i coll ->
        let view = Option.map (fun v -> v.(i)) view in
        Source.of_smc ?pool ?domains ?view coll ~columns)
      t.colls
  in
  let s0 = per.(0) in
  let scan push =
    Smc_obs.incr t.obs Smc_obs.c_shard_fanouts;
    Array.iter (fun (s : Source.t) -> s.Source.scan push) per
  in
  (* The merged batch path concatenates the per-shard batch streams in
     shard order — the same row order as the merged [scan], so the
     vectorized engine answers bit-identically to the row engines. *)
  let scan_batches =
    if Array.for_all (fun (s : Source.t) -> s.Source.scan_batches <> None) per then
      Some
        (fun ~rows ?cols consume ->
          Smc_obs.incr t.obs Smc_obs.c_shard_fanouts;
          Array.iter
            (fun (s : Source.t) ->
              match s.Source.scan_batches with
              | Some sb -> sb ~rows ?cols consume
              | None -> assert false)
            per)
    else None
  in
  { s0 with Source.name = t.name; scan; scan_batches; indexes = [] }

(* ---- Per-shard persistence --------------------------------------------
   One WAL and one snapshot file per shard, so group commit, snapshot
   writes and restore run per-shard-parallel: N files stream (and fsync)
   concurrently instead of one. *)

let snap_path dir name i = Filename.concat dir (Printf.sprintf "%s.%d.smcsnap" name i)
let wal_path dir name i = Filename.concat dir (Printf.sprintf "%s.%d.wal" name i)

let attach_wals ?sync t ~dir =
  if t.wals <> [||] then invalid_arg "Shard.attach_wals: WALs already attached";
  let wals =
    Array.init (Array.length t.colls) (fun i ->
        Wal.create ?sync ~path:(wal_path dir t.name i) ~name:(shard_name t.name i) ())
  in
  Array.iteri (fun i wal -> Wal.attach wal t.colls.(i)) wals;
  t.wals <- wals;
  wals

let wals t = t.wals

let snapshot ?pool t ~dir =
  let jobs =
    Array.mapi
      (fun i coll () ->
        let wal = if Array.length t.wals = 0 then None else Some t.wals.(i) in
        Snapshot.write ?wal ~path:(snap_path dir t.name i) coll)
      t.colls
  in
  par_map ?pool jobs

type restored = {
  r_shard : t;
  r_bytes : int;
  r_replayed : int;
  r_torn_dropped : int;
}

let restore ?pool ~dir ~name ~shards () =
  if shards < 1 then invalid_arg "Shard.restore: shards must be >= 1";
  let jobs =
    Array.init shards (fun i () ->
        let path = snap_path dir name i in
        let wal =
          let w = wal_path dir name i in
          if Sys.file_exists w then Some w else None
        in
        Snapshot.restore ?wal ~path ())
  in
  let rs = par_map ?pool jobs in
  let t =
    {
      name;
      layout = rs.(0).Snapshot.r_coll.C.layout;
      colls = Array.map (fun r -> r.Snapshot.r_coll) rs;
      rts = Array.map (fun r -> r.Snapshot.r_rt) rs;
      obs = Smc_obs.create ~label:(name ^ ".shard") ();
      wals = [||];
    }
  in
  {
    r_shard = t;
    r_bytes = Array.fold_left (fun acc r -> acc + r.Snapshot.r_bytes) 0 rs;
    r_replayed = Array.fold_left (fun acc r -> acc + r.Snapshot.r_replayed) 0 rs;
    r_torn_dropped = Array.fold_left (fun acc r -> acc + r.Snapshot.r_torn_dropped) 0 rs;
  }
