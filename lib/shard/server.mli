(** The serving front-end over a sharded collection.

    One accept loop on a Unix-domain socket; each accepted connection is
    handed to the domain pool, which reads length-prefixed {!Wire} frames
    and executes them against the sharded key/value collection. Admission
    control bounds the requests in flight across all connections: over the
    cap, a request is answered with an explicit [Shed] frame without
    touching the shards.

    Counters land on the shard's coordinator instance ({!Shard.obs}):
    [srv_conns], and [srv_requests] partitioned into [srv_replies] +
    [srv_errors] + [srv_shed] — checked by
    [Smc_check.Obs_check.check_shard]. *)

type t

val kv_layout : Smc_offheap.Layout.t
(** The vocabulary's layout: two int fields, [k] and [v]. *)

val kv_shard : ?shards:int -> ?slots_per_block:int -> unit -> Shard.t
(** A fresh sharded key/value collection the server can serve. *)

val start : ?max_inflight:int -> ?pool:Smc_parallel.Pool.t -> path:string -> Shard.t -> t
(** Binds a Unix-domain socket at [path] (an existing file is replaced)
    and spawns the accept domain. The shard's layout must carry int fields
    [k] and [v] ({!kv_layout}); raises [Invalid_argument] otherwise.
    [max_inflight] (default 64) is the admission cap — [0] sheds every
    request, which is how the shed path is tested deterministically. When
    [pool] is omitted a private default-size pool is created and shut down
    by {!stop}; on a pool with no workers, connections are served inline
    on the accept domain (sequentially — fine for tests and single-core
    machines, the frames and counters are identical). *)

val socket_path : t -> string

val stop : t -> unit
(** Closes the listener, joins the accept domain, and awaits the
    connection handlers — clients should disconnect first, or [stop]
    blocks until they do. Idempotent. *)
