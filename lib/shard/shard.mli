(** Hash-partitioned collections over per-shard runtimes.

    One logical collection spread across N shards, each an ordinary
    {!Smc.Collection.t} with its own runtime — private epoch manager,
    reclamation queues, CSN plane, counters, and (when attached) its own
    WAL and snapshot file. The shard of an object is decided once, by the
    hash of the routing key its writer supplies; references ({!sref})
    remember their shard, so later operations need no re-hash.

    Cross-shard transactions commit through the collection layer's
    two-phase primitives: every participating shard validates while
    holding its commit locks (taken in ascending shard id order), and the
    batch publishes only if all of them validated — all-or-nothing in
    memory. Durability is per-shard: each shard's WAL frames its slice
    atomically, but there is no cross-shard commit record (see
    docs/sharding.md).

    Queries fan out one per-shard source and merge in shard order behind
    one ordinary {!Smc_query.Source.t}, so all four engines run unchanged
    and answer bit-identically to the same rows in one unsharded
    collection. *)

open Smc_offheap

type t

type sref = { sr_shard : int; sr_ref : Smc.Ref.t }
(** A routed reference: the owning shard plus the per-shard reference. *)

val create :
  ?shards:int ->
  name:string ->
  layout:Layout.t ->
  ?placement:Block.placement ->
  ?mode:Context.mode ->
  ?slots_per_block:int ->
  ?reclaim_threshold:float ->
  unit ->
  t
(** [shards] defaults to 4; every shard gets the same storage knobs.
    Raises [Invalid_argument] when [shards < 1]. *)

val n_shards : t -> int
val name : t -> string
val layout : t -> Layout.t

val shard_of : t -> key:int -> int
(** The shard a routing key hashes to (SplitMix64 finalizer mod N). *)

val collection : t -> int -> Smc.Collection.t
(** Shard [i]'s underlying collection — for reads, per-shard audits, or
    attaching per-shard machinery not wrapped here. *)

val runtime : t -> int -> Runtime.t
val obs : t -> Smc_obs.t
(** The coordinator's own counter instance ([shard_*] ids); per-shard
    events land on the shard runtimes' instances as usual. *)

val sref_shard : sref -> int
val sref_ref : sref -> Smc.Ref.t

(** {2 Routed single operations} — each its own single-op unit on the
    owning shard, exactly like the unsharded calls they wrap. *)

val add : t -> key:int -> init:(Block.t -> int -> unit) -> sref
val remove : t -> sref -> bool
val store : t -> sref -> word:int -> value:int -> unit
val mem : t -> sref -> bool
val deref_opt : t -> sref -> (Block.t * int) option

val count : t -> int
val memory_words : t -> int
val compact : t -> ?occupancy_threshold:float -> unit -> Compaction.report array

(** {2 Cross-shard transactions} *)

type txn
(** Stages operations routed to their owning shards; not thread-safe. *)

type txn_result = Committed of sref list | Conflict
(** [Committed] carries the staged adds' routed references in staging
    order. [Conflict] means some shard failed first-committer-wins
    validation — nothing was published on any shard. *)

val txn : t -> txn
val stage_add : txn -> key:int -> init:(Block.t -> int -> unit) -> unit
val stage_remove : txn -> sref -> unit
val stage_store : txn -> sref -> word:int -> value:int -> unit

val commit : txn -> txn_result
(** Two-phase commit over the participating shards' transaction locks, in
    ascending shard id order. Single-shard batches degrade to the ordinary
    one-collection commit path under the hood. *)

val abort : txn -> unit
val transact : t -> (txn -> unit) -> txn_result

(** {2 Consistent views} *)

type view
(** One snapshot view per shard at a consistent frontier vector: a
    cross-shard transaction is visible in all per-shard views or none
    (frontiers are read holding every shard's transaction lock). *)

val view : t -> view
val close_view : view -> unit
val with_view : t -> (view -> 'a) -> 'a

val shard_view : view -> int -> Smc.Collection.view
(** Shard [i]'s member view, e.g. for per-shard view iteration. *)

(** {2 Fan-out queries} *)

val fold :
  ?pool:Smc_parallel.Pool.t ->
  t ->
  init:'a ->
  f:(int -> Smc.Collection.t -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a
(** [f i coll] computes shard [i]'s partial result (on a pool worker when
    [pool] is given); partials are combined left-to-right in shard order. *)

val source :
  ?pool:Smc_parallel.Pool.t ->
  ?domains:int ->
  ?view:view ->
  t ->
  columns:(string * Smc_query.Source.column) list ->
  Smc_query.Source.t
(** The merged source: scans (row and batch paths alike) concatenate the
    per-shard scans in shard order, so engines that consume either path
    see the same row order. [?pool]/[?domains] parallelise each member
    scan exactly as {!Smc_query.Source.of_smc} does; [?view] pins every
    member to the consistent frontier vector. No indexes are advertised —
    cross-shard index access paths are future work. *)

(** {2 Per-shard persistence} *)

val attach_wals : ?sync:Smc_persist.Wal.sync_policy -> t -> dir:string -> Smc_persist.Wal.t array
(** Creates and attaches one WAL per shard ([<dir>/<name>.<i>.wal]).
    Raises [Invalid_argument] when WALs are already attached. *)

val wals : t -> Smc_persist.Wal.t array
(** [[||]] until {!attach_wals}. *)

val snapshot :
  ?pool:Smc_parallel.Pool.t -> t -> dir:string -> (Smc_persist.Snapshot.manifest * int) array
(** Writes one snapshot file per shard ([<dir>/<name>.<i>.smcsnap]),
    in parallel over [pool] when given; attached WALs record their cut
    points as in {!Smc_persist.Snapshot.write}. Mutator-quiescent, like
    the single-collection write. *)

type restored = {
  r_shard : t;
  r_bytes : int;  (** snapshot bytes read across all shards *)
  r_replayed : int;  (** WAL records replayed across all shards *)
  r_torn_dropped : int;  (** torn final records discarded across all shards *)
}

val restore : ?pool:Smc_parallel.Pool.t -> dir:string -> name:string -> shards:int -> unit -> restored
(** Restores every shard from [<dir>/<name>.<i>.smcsnap], replaying
    [<name>.<i>.wal] tails when those files exist — in parallel over
    [pool] when given. The result has fresh runtimes and no WALs
    attached. *)
