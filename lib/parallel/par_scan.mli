(** Parallel block enumeration over a memory context (§5.2).

    One call takes a single snapshot of the context's published block view
    and partitions it across the pool's worker domains (plus the caller)
    through an atomic index dispenser. Each view element is processed
    inside its own epoch critical section — §4's per-block granularity, so
    grace periods stay short while the scan runs — and compaction groups
    are claimed atomically so exactly one worker scans a group, whole.

    Accumulation is strictly per-worker: [init ()] makes a private
    accumulator in each worker, [combine] merges them on the calling domain
    once all workers finished. Enumeration order across workers is
    unspecified; semantics are the same bag semantics as
    {!Smc_offheap.Context.iter_valid} (objects added or removed
    concurrently may or may not be observed).

    [?pool] defaults to {!Pool.default}; [?domains] caps the workers used
    for this call (0 or absent = the pool's full width). With one worker —
    or a single-block view — everything runs sequentially on the caller,
    with no pool round-trip.

    [?csn] filters slots by snapshot visibility at that CSN frontier
    instead of current directory state — pass
    {!Smc.Collection.view_csn} to run the scan against an open snapshot
    view. The view must stay open (its owning domain holds the epoch pin)
    for the scan's whole duration. *)

open Smc_offheap

val fold_valid_par :
  ?pool:Pool.t ->
  ?domains:int ->
  ?csn:int ->
  Context.t ->
  init:(unit -> 'acc) ->
  f:('acc -> Block.t -> int -> 'acc) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc

val iter_valid_par :
  ?pool:Pool.t -> ?domains:int -> ?csn:int -> Context.t -> f:(Block.t -> int -> unit) -> unit
(** [f] runs concurrently in several domains — it must be domain-safe
    (e.g. accumulate into atomics). Prefer {!fold_valid_par}. *)

val fold_hoisted_par :
  ?pool:Pool.t ->
  ?domains:int ->
  ?csn:int ->
  Context.t ->
  init:(unit -> 'acc) ->
  on_block:('acc -> Block.t -> int -> unit) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc
(** Parallel analogue of {!Smc_offheap.Context.iter_valid_hoisted}:
    [on_block acc blk] runs once per block in the worker that drew the
    block and returns the per-slot body, closed over the worker's private
    accumulator and the block's hoisted raw state. *)

val iter_hoisted_par :
  ?pool:Pool.t -> ?domains:int -> ?csn:int -> Context.t -> on_block:(Block.t -> int -> unit) -> unit
(** Hoisted iteration without accumulators; [on_block] must be domain-safe. *)

val fold_batches_par :
  ?pool:Pool.t ->
  ?domains:int ->
  ?csn:int ->
  Context.t ->
  sel_cap:int ->
  init:(unit -> 'acc) ->
  on_batch:('acc -> Block.t -> Context.sel -> int -> unit) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc
(** Parallel analogue of {!Smc_offheap.Context.iter_valid_batches}: each
    worker owns a private selection vector of [sel_cap] entries and calls
    [on_batch acc blk sel count] for every batch of the view elements it
    draws, inside that element's critical section. [on_batch] must consume
    the first [count] entries of [sel] before returning — the buffer is the
    worker's and is reused for its next batch. *)
