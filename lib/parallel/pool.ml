(* A reusable pool of worker domains. Domains are expensive to spawn
   (~tens of microseconds plus a GC ramp-up), far too expensive to pay per
   query, so the pool spawns lazily — one worker per outstanding demand, up
   to the size cap — and keeps them parked on a condition variable between
   queries. The calling domain always participates in [run], so a pool of
   size 0 degrades to plain sequential execution. *)

type 'a outcome = Done of 'a | Failed of exn

type 'a promise = {
  p_lock : Mutex.t;
  p_cond : Condition.t;
  mutable p_state : 'a outcome option;
}

type t = {
  size : int; (* worker-domain cap; parallelism in [run] is size + 1 *)
  lock : Mutex.t;
  work_available : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable n_workers : int;
  mutable outstanding : int; (* tasks submitted but not yet finished *)
  mutable stopping : bool;
  obs : Smc_obs.t option;
}

let default_size () = max 0 (Domain.recommended_domain_count () - 1)

let create ?size ?obs () =
  let size = match size with Some s -> max 0 s | None -> default_size () in
  {
    size;
    lock = Mutex.create ();
    work_available = Condition.create ();
    tasks = Queue.create ();
    workers = [];
    n_workers = 0;
    outstanding = 0;
    stopping = false;
    obs;
  }

let size t = t.size

let spawned t =
  Mutex.lock t.lock;
  let n = t.n_workers in
  Mutex.unlock t.lock;
  n

(* Workers drain the queue before honouring a shutdown so every promise
   issued before [shutdown] is fulfilled. Tasks never raise: [submit] wraps
   the user function so the exception travels through the promise. *)
let worker_loop t =
  let rec next () =
    Mutex.lock t.lock;
    let rec take () =
      if not (Queue.is_empty t.tasks) then Some (Queue.pop t.tasks)
      else if t.stopping then None
      else begin
        Condition.wait t.work_available t.lock;
        take ()
      end
    in
    let task = take () in
    Mutex.unlock t.lock;
    match task with
    | None ->
      (* This worker domain is about to die: hand back every epoch thread
         slot it registered, so pool create/shutdown cycles do not exhaust
         the epoch manager's slot array. *)
      Smc_offheap.Epoch.release_current_domain ()
    | Some f ->
      f ();
      next ()
  in
  next ()

let fulfil p outcome =
  Mutex.lock p.p_lock;
  p.p_state <- Some outcome;
  Condition.broadcast p.p_cond;
  Mutex.unlock p.p_lock

let submit t f =
  let p = { p_lock = Mutex.create (); p_cond = Condition.create (); p_state = None } in
  let task () =
    let outcome = try Done (f ()) with e -> Failed e in
    (* Retire the demand before publishing the result: a caller that awaits
       this promise and immediately submits again must see the pool as able
       to reuse this worker, not spawn another. *)
    Mutex.lock t.lock;
    t.outstanding <- t.outstanding - 1;
    Mutex.unlock t.lock;
    fulfil p outcome
  in
  (match t.obs with Some o -> Smc_obs.incr o Smc_obs.c_pool_tasks | None -> ());
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  if t.size = 0 then begin
    (* No worker will ever exist, so a queued task could never run and
       [await] would block forever. Degrade to sequential execution on the
       caller — the same size-0 contract [run] has. *)
    t.outstanding <- t.outstanding + 1;
    Mutex.unlock t.lock;
    task ();
    p
  end
  else begin
  Queue.push task t.tasks;
  t.outstanding <- t.outstanding + 1;
  (* Lazy spawning: grow only while outstanding demand (queued + running
     tasks) exceeds the workers already spawned — an existing worker that is
     parked, or about to finish its task, will pick the work up. A pool
     serving strictly sequential submits therefore spawns one domain, not
     [size]; a pool that is never used spawns nothing. *)
  if t.n_workers < t.size && t.outstanding > t.n_workers then begin
    t.n_workers <- t.n_workers + 1;
    t.workers <- Domain.spawn (fun () -> worker_loop t) :: t.workers
  end;
  Condition.signal t.work_available;
  Mutex.unlock t.lock;
  p
  end

let await p =
  Mutex.lock p.p_lock;
  let rec wait () =
    match p.p_state with
    | Some outcome -> outcome
    | None ->
      Condition.wait p.p_cond p.p_lock;
      wait ()
  in
  let outcome = wait () in
  Mutex.unlock p.p_lock;
  match outcome with Done v -> v | Failed e -> raise e

let run t ~workers f =
  let workers = max 1 workers in
  let extra = min (workers - 1) t.size in
  let promises = List.init extra (fun i -> submit t (fun () -> f (i + 1))) in
  let mine = try Done (f 0) with e -> Failed e in
  (* Await every helper even when one failed, so no worker is still touching
     shared state when [run] returns; then re-raise the first failure. *)
  let outcomes = List.map (fun p -> try Done (await p) with e -> Failed e) promises in
  List.iter (function Done () -> () | Failed e -> raise e) (mine :: outcomes)

let effective_workers t ~requested = 1 + min (max 1 requested - 1) t.size

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  let workers = t.workers in
  t.workers <- [];
  t.n_workers <- 0;
  Mutex.unlock t.lock;
  List.iter Domain.join workers

(* One process-wide default pool, created on first use and torn down at
   exit so worker domains never outlive the program's shutdown sequence.
   Exactly one at_exit handler is ever registered, and it shuts down
   whatever the *current* default is at exit time — registering a fresh
   handler per recreation would accumulate one closure per
   default/shutdown cycle, each pinning its (long shut-down) pool. *)
let default_lock = Mutex.create ()
let default_pool = ref None
let default_exit_handlers_count = ref 0

let default () =
  Mutex.lock default_lock;
  let p =
    match !default_pool with
    | Some p when not p.stopping -> p
    | _ ->
      let p = create () in
      default_pool := Some p;
      if !default_exit_handlers_count = 0 then begin
        incr default_exit_handlers_count;
        at_exit (fun () ->
            Mutex.lock default_lock;
            let current = !default_pool in
            Mutex.unlock default_lock;
            match current with
            | Some p when not p.stopping -> shutdown p
            | _ -> ())
      end;
      p
  in
  Mutex.unlock default_lock;
  p

let default_exit_handlers () =
  Mutex.lock default_lock;
  let n = !default_exit_handlers_count in
  Mutex.unlock default_lock;
  n
