(* Parallel block enumeration (§5.2 of the paper).

   One enumeration takes a single snapshot of the context's published block
   view and partitions it across workers through an atomic index dispenser
   — dynamic (work-stealing-ish) assignment, so a worker that drew dense
   blocks does not stall the others. Every view element is processed inside
   its own epoch critical section (the paper's per-block critical-section
   granularity from §4: grace periods stay short, so the memory manager can
   advance epochs and reclaim concurrently with a long parallel scan), and
   compaction groups are claimed through a shared [Context.claims] ticket:
   exactly one worker scans a group, as a whole, pre- or post-relocation.

   Results combine per-worker: each worker folds into a private accumulator
   made by [init ()], and the caller combines them once every worker is
   done — no cross-domain sharing on the hot path. *)

open Smc_offheap

let with_block_critical epoch body =
  Epoch.enter_critical epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit_critical epoch) body

(* The shared worker skeleton: pull view indices from [next] until the
   snapshot is exhausted, processing each element under the claim protocol
   in its own critical section. [scan] receives whole blocks. *)
let drive ?pool ?(domains = 0) (ctx : Context.t) ~init ~scan ~combine =
  let { Context.v_blocks = blocks; v_n = n } = ctx.Context.view in
  let epoch = ctx.Context.rt.Runtime.epoch in
  let obs = ctx.Context.rt.Runtime.obs in
  Smc_obs.incr obs Smc_obs.c_par_scans;
  let claims = Context.no_claims () in
  let run_worker next acc =
    Smc_obs.incr obs Smc_obs.c_par_workers;
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let blk = blocks.(i) in
        (* Skip work that needs no critical section at all. *)
        (match blk.Block.group with
        | None when blk.Block.dead -> ()
        | _ ->
          with_block_critical epoch (fun () ->
              Context.scan_view_element ~claims blk ~scan:(fun b -> scan acc b)));
        go ()
      end
    in
    go ()
  in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let workers = if domains <= 0 then Pool.size pool + 1 else Pool.effective_workers pool ~requested:domains in
  if workers <= 1 || n <= 1 then begin
    (* Sequential fast path: no dispenser, no pool round-trip. *)
    let acc = init () in
    let next = Atomic.make 0 in
    run_worker next acc;
    acc
  end
  else begin
    let next = Atomic.make 0 in
    let results = Array.make workers None in
    Pool.run pool ~workers (fun w ->
        let acc = init () in
        run_worker next acc;
        results.(w) <- Some acc);
    let acc = ref None in
    Array.iter
      (function
        | None -> ()
        | Some r -> (
          match !acc with
          | None -> acc := Some r
          | Some a -> acc := Some (combine a r)))
      results;
    match !acc with Some a -> a | None -> init ()
  end

(* With [?csn], slots are filtered by snapshot visibility at that frontier
   instead of current directory state — the parallel read path of a
   [Collection.snapshot_view]. The view's owning domain holds the epoch
   pin for the scan's whole duration, so visible limbo rows cannot be
   recycled under any worker. *)
let scan_slots ?csn blk ~f =
  match csn with
  | None -> Context.scan_block blk ~f
  | Some csn -> Context.scan_block_at blk ~csn ~f

let fold_valid_par ?pool ?domains ?csn ctx ~init ~f ~combine =
  let r =
    drive ?pool ?domains ctx
      ~init:(fun () -> ref (init ()))
      ~scan:(fun r blk -> scan_slots ?csn blk ~f:(fun b slot -> r := f !r b slot))
      ~combine:(fun a b ->
        a := combine !a !b;
        a)
  in
  !r

let iter_valid_par ?pool ?domains ?csn ctx ~f =
  drive ?pool ?domains ctx
    ~init:(fun () -> ())
    ~scan:(fun () blk -> scan_slots ?csn blk ~f)
    ~combine:(fun () () -> ())

(* Block-hoisted parallel enumeration: [on_block] runs once per block in
   the owning worker and returns the per-slot body closed over the worker's
   private accumulator and the block's raw state — the parallel analogue of
   [Context.iter_valid_hoisted]. *)
let fold_hoisted_par ?pool ?domains ?csn ctx ~init ~on_block ~combine =
  drive ?pool ?domains ctx ~init
    ~scan:(fun acc blk ->
      let body = on_block acc blk in
      match csn with
      | None ->
        let dir = blk.Block.dir in
        let nslots = blk.Block.nslots in
        for slot = 0 to nslots - 1 do
          if Constants.dir_state (Bigarray.Array1.unsafe_get dir slot) = Constants.state_valid
          then body slot
        done
      | Some csn ->
        for slot = 0 to blk.Block.nslots - 1 do
          if Context.slot_visible_at blk slot ~csn then body slot
        done)
    ~combine

(* Batched parallel enumeration: each worker owns a private selection
   vector and drives [Context.scan_block_batch] over the view elements it
   draws — the parallel analogue of [Context.iter_valid_batches], with the
   same per-element critical-section granularity supplied by [drive]. *)
let fold_batches_par ?pool ?domains ?csn ctx ~sel_cap ~init ~on_batch ~combine =
  let acc, _ =
    drive ?pool ?domains ctx
      ~init:(fun () -> (init (), Context.make_sel sel_cap))
      ~scan:(fun (acc, sel) blk ->
        let n = blk.Block.nslots in
        let start = ref 0 in
        while !start < n do
          let count, next = Context.scan_block_batch ?csn blk ~start:!start ~sel in
          if count > 0 then on_batch acc blk sel count;
          start := next
        done)
      ~combine:(fun (a, sel) (b, _) -> (combine a b, sel))
  in
  acc

let iter_hoisted_par ?pool ?domains ?csn ctx ~on_block =
  fold_hoisted_par ?pool ?domains ?csn ctx
    ~init:(fun () -> ())
    ~on_block:(fun () blk -> on_block blk)
    ~combine:(fun () () -> ())
