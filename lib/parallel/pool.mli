(** A reusable, lazily-spawned pool of worker domains.

    [Domain.spawn] is far too expensive to pay per query, so parallel query
    execution draws workers from a pool that persists across queries.
    Workers are spawned on demand, up to the size cap, and parked on a
    condition variable in between. The calling domain always takes part in
    {!run}, so a pool of size 0 (the default on a single-core machine)
    degrades to plain sequential execution with no domains spawned at
    all. *)

type t

type 'a promise

val create : ?size:int -> ?obs:Smc_obs.t -> unit -> t
(** [size] is the number of {e worker} domains the pool may spawn; total
    parallelism in {!run} is [size + 1] (the caller participates).
    Defaults to [Domain.recommended_domain_count () - 1]. When [obs] is
    given, submitted tasks are counted on it. Worker domains release their
    epoch thread slots on teardown, so repeated create/shutdown cycles do
    not exhaust the epoch manager's slot array. *)

val size : t -> int
(** The worker-domain cap this pool was created with. *)

val spawned : t -> int
(** Worker domains spawned so far (0 after {!shutdown}). Spawning is
    demand-driven: a pool serving strictly sequential submits spawns at
    most one domain regardless of [size]. *)

val submit : t -> (unit -> 'a) -> 'a promise
(** Enqueue one task; spawns a worker only when outstanding demand (queued
    plus running tasks) exceeds the workers already spawned and the cap
    allows. On a size-0 pool the task runs synchronously on the caller —
    the same degradation {!run} has — so [await] never blocks forever.
    Raises [Invalid_argument] after {!shutdown}. *)

val await : 'a promise -> 'a
(** Block until the task finishes; re-raises the task's exception. *)

val run : t -> workers:int -> (int -> unit) -> unit
(** [run t ~workers f] executes [f w] for [w = 0 .. n-1] concurrently,
    where [n = min workers (size t + 1)]; [f 0] runs on the calling domain.
    Returns once {e all} calls finished, then re-raises the first
    exception, if any. *)

val effective_workers : t -> requested:int -> int
(** The [n] that {!run} would use for [~workers:requested]. *)

val shutdown : t -> unit
(** Graceful shutdown: queued tasks are drained, then every worker domain
    is joined. Idempotent; subsequent {!submit}s raise. *)

val default : unit -> t
(** The process-wide shared pool, created on first use (default size) and
    shut down automatically at exit. Recreating the default after a
    {!shutdown} reuses one process-wide exit handler — cycles do not
    accumulate handlers. *)

val default_exit_handlers : unit -> int
(** How many at_exit handlers the default-pool lifecycle has registered so
    far — at most 1, however many default/shutdown cycles ran (regression
    hook). *)
