(** Off-heap suffix-array text index over one string column of a
    self-managed collection.

    The index owns a private [Bigarray] byte arena holding each indexed
    row's column text (NUL-terminated), per-entry tables mapping arena
    entries back to packed {!Smc.Ref.t}s, and a sorted suffix array over
    the arena — so [prefix] and [substring] probes are two binary searches
    plus a range walk, instead of a full scan. Like {!Smc_index.Hash_index}
    the storage is private off-heap memory: not runtime blocks, not
    registered with the block registry, dropped wholesale when a rebuild
    publishes a fresh store.

    Safety is the hash index's discipline taken to a value index: probes
    run inside one epoch critical section and every candidate is validated
    twice before emission — the reference's incarnation against the
    indirection table, then the column text re-extracted from the live row
    against the probe predicate. A removed or overwritten row's arena entry
    therefore reads as stale/miss and can never resurrect.

    Maintenance is log-structured: [add]s and column [store]s append the
    row's reference to a pending log that probes scan linearly (checking
    the live text directly); removals only bump a churn counter. When churn
    crosses a threshold a merge-rebuild collects the still-live entries,
    re-extracts their current text, and builds a complete fresh
    arena + suffix array which is published with a single store-field
    write — the fully-populate-before-swap rule, so lock-free probes see
    either the old store or the new one, never a half-built array.

    Concurrency: one writer at a time (internal mutex); probes are
    lock-free and may run concurrently with writers under bag semantics —
    rows added concurrently may or may not be seen, and every emitted row
    is live and matching at emission time. *)

type op = Prefix | Substring | Substring_ci
(** Probe operators: [Prefix] matches rows whose column text starts with
    the needle; [Substring] matches rows whose text contains it;
    [Substring_ci] is [Substring] under ASCII case folding ([A-Z] = [a-z],
    other bytes verbatim). The empty needle matches every row under all
    three. The arena stores case-folded bytes, so all operators run at
    full index speed: the range search uses the folded needle and every
    candidate is re-tested against the live row's original-case text. *)

type t

val attach : ?churn_limit:int -> name:string -> column:string -> Smc.Collection.t -> t
(** Creates the index over the named [Str] column, bulk-loads every live
    row, and registers maintenance hooks via {!Smc.Collection.attach_index}
    so subsequent [add]/[remove]/[store] maintain it incrementally. A
    quiescent-point operation (no concurrent mutators during the bulk
    load). Raises [Invalid_argument] on direct-mode collections, duplicate
    index names, or a column that is not a string field. [churn_limit]
    overrides the pending+dead threshold that triggers a merge-rebuild
    (default [max 64 (entries / 4)]). *)

val detach : t -> unit
(** Unregisters the maintenance hooks; further probes see a frozen
    (increasingly stale) view. Quiescent-point operation. *)

val name : t -> string
val collection : t -> Smc.Collection.t

val column : t -> string
(** Name of the indexed string column. *)

val probe : t -> op -> string -> f:(Smc.Ref.t -> Smc_offheap.Block.t -> int -> unit) -> unit
(** Yields every live row whose column text matches [(op, needle)], inside
    one epoch critical section. Candidates come from the suffix-array
    range and from the pending log, deduplicated per probe (a row with
    several matching suffixes, or present in both the array and the log,
    is emitted once); each is incarnation-validated and its text
    re-extracted and re-tested before emission. Bag semantics; emission
    order is unspecified. *)

val probe_refs : t -> op -> string -> Smc.Ref.t list
(** Convenience: collected references (probe order). *)

val contains_match : t -> op -> string -> bool
(** Whether any live row matches. *)

val top_k_similar : t -> k:int -> string -> (Smc.Ref.t * int) list
(** Fragment-similarity lookup: scores every candidate row by how many
    distinct 3-byte fragments (q-grams) of [query] occur in its current
    column text, validates the candidates live, and returns the top [k]
    as [(ref, score)] sorted by descending score. Queries shorter than
    3 bytes degrade to a single-fragment (substring) score. *)

(** {1 Maintenance and introspection} *)

val rebuild : t -> unit
(** Forces a merge-rebuild now (pending log folded in, stale entries
    dropped, fresh suffix array published). Writer-serialised; probes
    racing the swap finish against the old store. *)

val maintain : t -> unit
(** Runs the churn check (and a rebuild if over threshold) — what the
    write hooks do on every append. Useful after remove-heavy phases,
    since removals alone never take the writer lock. *)

type stats = {
  entries : int;  (** arena entries (may include stale ones) *)
  suffixes : int;  (** suffix-array size = total indexed bytes *)
  pending : int;  (** refs in the pending log awaiting merge *)
  arena_bytes : int;
  memory_words : int;  (** off-heap words across arena + tables + array *)
}

val stats : t -> stats

val audit : t -> string list
(** Structural invariant sweep; call only at a quiescent point. Checks the
    suffix array is sorted and covers exactly the arena's suffixes, the
    entry tables are mutually consistent, and every live row of the
    collection is findable — its reference is in the pending log, or its
    arena entry's text equals its current column text. (A live row whose
    arena text went stale {e must} therefore be in the pending log: the
    store hook guarantees it.) Returns violation descriptions, [[]] when
    clean. *)
