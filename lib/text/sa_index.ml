(* Off-heap suffix-array text index (see sa_index.mli for the contract).

   Storage: one published [store] value holds everything a probe needs —

     arena    : byte arena of NUL-terminated entry texts, back to back
     ent_ref  : packed indirect reference per entry
     ent_off  : arena byte offset of each entry's first byte (ascending)
     ent_len  : entry text length in bytes (NUL excluded)
     sa       : absolute arena offsets of every suffix, sorted
                lexicographically (suffixes end at their entry's NUL, so
                none crosses an entry boundary)
     pending  : packed refs appended by write hooks since the last rebuild

   The arrays are private off-heap Bigarrays: not runtime blocks, not
   registered with the block registry, so the structural audit is
   unaffected and a rebuild drops the old store without any free protocol.

   The pending log lives INSIDE the store record on purpose: plain OCaml
   mutable fields give no cross-field ordering, so a probe reading a
   separate [t.pending] could pair a pre-rebuild array with a post-rebuild
   (emptied) log and miss rows live all along. With the log in the record,
   the single [t.store <- ...] write is the only publication point — a
   lock-free probe snapshots one consistent (array, log) pair, complete
   under bag semantics. Appending to the log publishes a new record that
   shares the arrays.

   Probes never trust the arena: a candidate's text is re-extracted from
   the live row (inside the probe's critical section, after incarnation
   validation) and re-tested against the predicate. The arena only narrows
   the candidate set; stale bytes can only cause a miss, never a hit. *)

open Smc_offheap

type op = Prefix | Substring | Substring_ci

type byte_ba = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type store = {
  arena : byte_ba;
  ent_ref : int_ba;
  ent_off : int_ba;
  ent_len : int_ba;
  n_entries : int;
  sa : int_ba;
  n_sa : int;
  pending : int list; (* newest first *)
  n_pending : int;
}

type t = {
  name : string;
  coll : Smc.Collection.t;
  field : Layout.field;
  col_name : string;
  churn_limit : int option;
  lock : Mutex.t; (* serialises appends and rebuilds *)
  mutable store : store;
  stale_seen : int Atomic.t; (* probe sightings of stale entries since last rebuild *)
  dead_pending : int Atomic.t; (* removes since last rebuild *)
  obs : Smc_obs.t;
}

let int_ba n : int_ba = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n
let byte_ba n : byte_ba = Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout n

let empty_store =
  {
    arena = byte_ba 0;
    ent_ref = int_ba 0;
    ent_off = int_ba 0;
    ent_len = int_ba 0;
    n_entries = 0;
    sa = int_ba 0;
    n_sa = 0;
    pending = [];
    n_pending = 0;
  }

let name t = t.name
let collection t = t.coll
let column t = t.col_name

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ---- scalar predicate over the live row's text --------------------- *)

(* Same semantics as the query layer's Contains/StartsWith (Expr lives
   above this library, so the byte loops are restated here): the empty
   needle matches everything. *)
let text_starts_with ~prefix s =
  let n = String.length prefix in
  String.length s >= n
  &&
  let rec go j = j >= n || (String.unsafe_get s j = String.unsafe_get prefix j && go (j + 1)) in
  go 0

let text_contains ~needle s =
  let n = String.length needle and h = String.length s in
  if n = 0 then true
  else begin
    let at i =
      let rec go j =
        j >= n || (String.unsafe_get s (i + j) = String.unsafe_get needle j && go (j + 1))
      in
      go 0
    in
    let rec go i = i + n <= h && (at i || go (i + 1)) in
    go 0
  end

(* ASCII case folding, byte-wise: [A-Z] -> [a-z], everything else verbatim
   (same contract as the query layer's ContainsCI). The arena stores folded
   bytes — see [rebuild_locked] — so one suffix array serves both the
   case-sensitive and case-insensitive operators: searching with a folded
   needle yields every position where the folded text matches, a superset
   of the case-sensitive matches, and the live-text re-check against the
   original-case predicate decides. *)
let lower_byte c =
  if c >= 'A' && c <= 'Z' then Char.unsafe_chr (Char.code c + 32) else c

let lower_code c = if c >= 65 && c <= 90 then c + 32 else c

let text_contains_ci ~needle s =
  let n = String.length needle and h = String.length s in
  if n = 0 then true
  else begin
    let at i =
      let rec go j =
        j >= n
        || (lower_byte (String.unsafe_get s (i + j)) = lower_byte (String.unsafe_get needle j)
           && go (j + 1))
      in
      go 0
    in
    let rec go i = i + n <= h && (at i || go (i + 1)) in
    go 0
  end

let matches op needle s =
  match op with
  | Prefix -> text_starts_with ~prefix:needle s
  | Substring -> text_contains ~needle s
  | Substring_ci -> text_contains_ci ~needle s

(* ---- suffix comparisons ------------------------------------------- *)

(* Full lexicographic order of two arena suffixes; entries are
   NUL-terminated, round-tripped column strings never contain an interior
   NUL ([Block.get_string] stops at the first), so 0 is a safe terminator
   and the shorter suffix sorts first. *)
let compare_suffixes (arena : byte_ba) a b =
  if a = b then 0
  else begin
    let rec go i =
      let ca = Bigarray.Array1.unsafe_get arena (a + i) in
      let cb = Bigarray.Array1.unsafe_get arena (b + i) in
      if ca <> cb then compare ca cb else if ca = 0 then 0 else go (i + 1)
    in
    go 0
  end

(* Suffix vs needle, in the needle-truncated order the range search uses:
   -1 when the suffix's first bytes sort below the needle (including the
   suffix running out at its NUL), 0 when the needle is a prefix of the
   suffix, +1 when they sort above. *)
let compare_suffix_needle (arena : byte_ba) off needle =
  let n = String.length needle in
  let rec go j =
    if j >= n then 0
    else
      let c = Bigarray.Array1.unsafe_get arena (off + j) in
      let nc = Char.code (String.unsafe_get needle j) in
      if c <> nc then compare c nc else go (j + 1)
  in
  go 0

(* First index in [0, n) whose suffix compares >= (resp. >) the needle. *)
let search_bound s needle ~upper =
  let lo = ref 0 and hi = ref s.n_sa in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = compare_suffix_needle s.arena (Bigarray.Array1.unsafe_get s.sa mid) needle in
    if c < 0 || (upper && c = 0) then lo := mid + 1 else hi := mid
  done;
  !lo

(* Entry owning an arena offset: greatest e with ent_off.(e) <= off
   (offsets are ascending by construction). *)
let entry_of_offset s off =
  let lo = ref 0 and hi = ref (s.n_entries - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if Bigarray.Array1.unsafe_get s.ent_off mid <= off then lo := mid else hi := mid - 1
  done;
  !lo

(* ---- probes -------------------------------------------------------- *)

let probe t op needle ~f =
  Smc_obs.incr t.obs Smc_obs.c_txt_probes;
  let s = t.store in
  let obs = t.obs in
  Smc.Collection.with_read t.coll (fun () ->
      let seen = Hashtbl.create 16 in
      (* One candidate sighting ends exactly one way — hit, stale, miss,
         or dup — which is the probe-side partition Obs_check balances. *)
      let candidate packed =
        Smc_obs.incr obs Smc_obs.c_txt_candidates;
        if Hashtbl.mem seen packed then Smc_obs.incr obs Smc_obs.c_txt_dups
        else begin
          Hashtbl.add seen packed ();
          let r = Smc.Ref.of_packed packed in
          match Smc.Collection.deref_opt t.coll r with
          | None ->
            Atomic.incr t.stale_seen;
            Smc_obs.incr obs Smc_obs.c_txt_stale
          | Some (blk, slot) ->
            if matches op needle (Smc.Field.get_string t.field blk slot) then begin
              Smc_obs.incr obs Smc_obs.c_txt_hits;
              f r blk slot
            end
            else Smc_obs.incr obs Smc_obs.c_txt_misses
        end
      in
      if String.length needle = 0 then
        (* Every row matches the empty needle; walk entries, not suffixes
           (an empty-text entry has no suffix at all). *)
        for e = 0 to s.n_entries - 1 do
          candidate (Bigarray.Array1.unsafe_get s.ent_ref e)
        done
      else begin
        (* The arena is case-folded, so the range search always runs on the
           folded needle; for case-sensitive operators that widens the
           candidate range (folded matches ⊇ exact matches) and the
           live-text re-check above narrows it back. *)
        let folded = String.map lower_byte needle in
        let lo = search_bound s folded ~upper:false in
        let hi = search_bound s folded ~upper:true in
        for i = lo to hi - 1 do
          let off = Bigarray.Array1.unsafe_get s.sa i in
          let e = entry_of_offset s off in
          (* A Prefix probe only accepts the suffix that starts the entry;
             interior suffixes witness containment, not prefixhood. *)
          if op <> Prefix || Bigarray.Array1.unsafe_get s.ent_off e = off then
            candidate (Bigarray.Array1.unsafe_get s.ent_ref e)
        done
      end;
      List.iter candidate s.pending)

let probe_refs t op needle =
  let acc = ref [] in
  probe t op needle ~f:(fun r _ _ -> acc := r :: !acc);
  List.rev !acc

let contains_match t op needle =
  let exception Found in
  try
    probe t op needle ~f:(fun _ _ _ -> raise Found);
    false
  with Found -> true

(* ---- top-k fragment similarity ------------------------------------ *)

let qgram = 3

let fragments_of query =
  let n = String.length query in
  let tbl = Hashtbl.create 16 in
  if n = 0 then []
  else if n < qgram then begin
    Hashtbl.replace tbl query ();
    [ query ]
  end
  else begin
    for i = 0 to n - qgram do
      let g = String.sub query i qgram in
      if not (Hashtbl.mem tbl g) then Hashtbl.replace tbl g ()
    done;
    Hashtbl.fold (fun g () acc -> g :: acc) tbl []
  end

let score_of frags text =
  List.fold_left (fun acc g -> if text_contains ~needle:g text then acc + 1 else acc) 0 frags

let top_k_similar t ~k query =
  Smc_obs.incr t.obs Smc_obs.c_txt_probes;
  let s = t.store in
  let obs = t.obs in
  let frags = fragments_of query in
  let out = ref [] in
  Smc.Collection.with_read t.coll (fun () ->
      let seen = Hashtbl.create 64 in
      (* Candidates are narrowed by the suffix array per fragment, then
         scored against the live text — same hit/stale/miss/dup partition
         as [probe], with "matches" meaning a positive score. *)
      let candidate packed =
        Smc_obs.incr obs Smc_obs.c_txt_candidates;
        if Hashtbl.mem seen packed then Smc_obs.incr obs Smc_obs.c_txt_dups
        else begin
          Hashtbl.add seen packed ();
          let r = Smc.Ref.of_packed packed in
          match Smc.Collection.deref_opt t.coll r with
          | None ->
            Atomic.incr t.stale_seen;
            Smc_obs.incr obs Smc_obs.c_txt_stale
          | Some (blk, slot) ->
            let score = score_of frags (Smc.Field.get_string t.field blk slot) in
            if score > 0 then begin
              Smc_obs.incr obs Smc_obs.c_txt_hits;
              out := (r, packed, score) :: !out
            end
            else Smc_obs.incr obs Smc_obs.c_txt_misses
        end
      in
      List.iter
        (fun g ->
          let g = String.map lower_byte g in
          let lo = search_bound s g ~upper:false in
          let hi = search_bound s g ~upper:true in
          for i = lo to hi - 1 do
            let off = Bigarray.Array1.unsafe_get s.sa i in
            candidate (Bigarray.Array1.unsafe_get s.ent_ref (entry_of_offset s off))
          done)
        frags;
      List.iter candidate s.pending);
  let ranked =
    List.sort
      (fun (_, pa, sa_) (_, pb, sb) -> if sa_ <> sb then compare sb sa_ else compare pa pb)
      !out
  in
  let rec take n = function
    | (r, _, sc) :: rest when n > 0 -> (r, sc) :: take (n - 1) rest
    | _ -> []
  in
  take k ranked

(* ---- rebuild ------------------------------------------------------- *)

let churn_limit t s = match t.churn_limit with Some l -> l | None -> max 64 (s.n_entries / 4)

(* Merge-rebuild: fold the pending log into the array, dropping entries
   whose row died or whose text moved on. Candidates are the old entries
   plus the log (deduplicated); each survivor's text is re-extracted from
   the live row inside the critical section. The fresh store — arena,
   tables, sorted suffix array — is FULLY populated before the [t.store]
   assignment: that single write is the publication point, so a lock-free
   probe snapshots either the old store (complete) or the new one
   (complete), never a half-built array. The old arrays stay alive for any
   in-flight probe that already snapshotted them. *)
let rebuild_locked t =
  let s = t.store in
  (* Drain churn counters up front (exchange, not a trailing reset):
     increments landing mid-rebuild carry over to the next trigger instead
     of being lost. *)
  ignore (Atomic.exchange t.stale_seen 0 : int);
  ignore (Atomic.exchange t.dead_pending 0 : int);
  let cand = Hashtbl.create (max 64 (s.n_entries + s.n_pending)) in
  for e = 0 to s.n_entries - 1 do
    let p = Bigarray.Array1.unsafe_get s.ent_ref e in
    if not (Hashtbl.mem cand p) then Hashtbl.replace cand p ()
  done;
  List.iter (fun p -> if not (Hashtbl.mem cand p) then Hashtbl.replace cand p ()) s.pending;
  let live = ref [] in
  let n_live = ref 0 and bytes = ref 0 and dropped = ref 0 in
  Smc.Collection.with_read t.coll (fun () ->
      Hashtbl.iter
        (fun p () ->
          match Smc.Collection.deref_opt t.coll (Smc.Ref.of_packed p) with
          | None -> incr dropped
          | Some (blk, slot) ->
            let text = Smc.Field.get_string t.field blk slot in
            live := (p, text) :: !live;
            incr n_live;
            bytes := !bytes + String.length text)
        cand);
  let n = !n_live in
  let arena = byte_ba (!bytes + n) in
  let ent_ref = int_ba n and ent_off = int_ba n and ent_len = int_ba n in
  let off = ref 0 in
  List.iteri
    (fun e (p, text) ->
      let len = String.length text in
      Bigarray.Array1.unsafe_set ent_ref e p;
      Bigarray.Array1.unsafe_set ent_off e !off;
      Bigarray.Array1.unsafe_set ent_len e len;
      for j = 0 to len - 1 do
        (* case-folded arena: one suffix array answers both Substring and
           Substring_ci ranges; probes re-check the original-case live
           text, so folding can only widen candidate sets, never corrupt
           results *)
        Bigarray.Array1.unsafe_set arena (!off + j)
          (lower_code (Char.code (String.unsafe_get text j)))
      done;
      Bigarray.Array1.unsafe_set arena (!off + len) 0;
      off := !off + len + 1)
    (List.rev !live);
  let n_sa = !bytes in
  (* Sort a heap scratch array (Array.sort over a Bigarray would box every
     swap through the comparator anyway), then blit into the off-heap
     array the store publishes. *)
  let scratch = Array.make n_sa 0 in
  let si = ref 0 in
  for e = 0 to n - 1 do
    let o = Bigarray.Array1.unsafe_get ent_off e in
    for j = 0 to Bigarray.Array1.unsafe_get ent_len e - 1 do
      scratch.(!si) <- o + j;
      incr si
    done
  done;
  Array.sort (fun a b -> compare_suffixes arena a b) scratch;
  let sa = int_ba n_sa in
  for i = 0 to n_sa - 1 do
    Bigarray.Array1.unsafe_set sa i (Array.unsafe_get scratch i)
  done;
  t.store <-
    { arena; ent_ref; ent_off; ent_len; n_entries = n; sa; n_sa; pending = []; n_pending = 0 };
  Smc_obs.add t.obs Smc_obs.c_txt_dropped !dropped;
  Smc_obs.incr t.obs Smc_obs.c_txt_rebuilds

let maintain_locked t =
  let s = t.store in
  if s.n_pending + Atomic.get t.dead_pending > churn_limit t s then rebuild_locked t

let rebuild t = locked t (fun () -> rebuild_locked t)
let maintain t = locked t (fun () -> maintain_locked t)

(* ---- maintenance hooks --------------------------------------------- *)

(* Appending publishes a new store record sharing the arrays — the single
   publication point again. The ref alone is logged (no text): the probe
   re-extracts the live text anyway, so a pending entry is always exactly
   as fresh as the row itself. *)
let append_pending_locked t packed =
  let s = t.store in
  t.store <- { s with pending = packed :: s.pending; n_pending = s.n_pending + 1 };
  Smc_obs.incr t.obs Smc_obs.c_txt_adds;
  maintain_locked t

let on_add t r _blk _slot =
  locked t (fun () ->
      Smc.Collection.with_read t.coll (fun () ->
          (* removed before we got the lock → nothing to index *)
          if Smc.Collection.deref_opt t.coll r <> None then
            append_pending_locked t (Smc.Ref.to_packed r)))

(* Removal is O(1): entries go stale by incarnation and are dropped by the
   next rebuild. No text extraction — the row is already gone. *)
let on_remove t _r =
  Atomic.incr t.dead_pending;
  Smc_obs.incr t.obs Smc_obs.c_txt_removes

(* A store re-keys the row iff it hit the indexed column's words. The ref
   keeps its identity across the write (including the transactional
   copy-on-write path), so the old arena entry goes stale through the
   probe's text re-check, and the pending append makes the new text
   findable. *)
let on_store t r ~word =
  if word >= t.field.Layout.word && word < t.field.Layout.word + t.field.Layout.words then
    locked t (fun () -> append_pending_locked t (Smc.Ref.to_packed r))

(* ---- lifecycle ------------------------------------------------------ *)

let attach ?churn_limit ~name ~column coll =
  let field = Smc.Field.str coll.Smc.Collection.layout column in
  (match churn_limit with
  | Some l when l <= 0 -> invalid_arg "Sa_index.attach: churn_limit must be positive"
  | _ -> ());
  let t =
    {
      name;
      coll;
      field;
      col_name = column;
      churn_limit;
      lock = Mutex.create ();
      store = empty_store;
      stale_seen = Atomic.make 0;
      dead_pending = Atomic.make 0;
      obs = coll.Smc.Collection.rt.Runtime.obs;
    }
  in
  (* Hooks first (rejects direct mode / duplicate names before any work),
     then the bulk load; attach is a quiescent-point operation so no add
     can slip between the two. The load stages every live row through the
     pending log and runs one merge-rebuild — the same path incremental
     maintenance takes. *)
  Smc.Collection.attach_index coll
    {
      Smc.Collection.ih_name = name;
      ih_on_add = on_add t;
      ih_on_remove = on_remove t;
      ih_on_store = on_store t;
    };
  locked t (fun () ->
      Smc.Collection.iter coll ~f:(fun blk slot ->
          let r = Smc.Collection.ref_of_slot coll blk slot in
          let s = t.store in
          t.store <-
            { s with pending = Smc.Ref.to_packed r :: s.pending; n_pending = s.n_pending + 1 };
          Smc_obs.incr t.obs Smc_obs.c_txt_adds);
      rebuild_locked t);
  t

let detach t = Smc.Collection.detach_index t.coll t.name

(* ---- introspection -------------------------------------------------- *)

type stats = {
  entries : int;
  suffixes : int;
  pending : int;
  arena_bytes : int;
  memory_words : int;
}

let stats t =
  let s = t.store in
  let words_of_bytes b = (b + 7) / 8 in
  {
    entries = s.n_entries;
    suffixes = s.n_sa;
    pending = s.n_pending;
    arena_bytes = Bigarray.Array1.dim s.arena;
    memory_words =
      words_of_bytes (Bigarray.Array1.dim s.arena)
      + (3 * s.n_entries) + s.n_sa;
  }

let audit t =
  let s = t.store in
  let violations = ref [] in
  let bad fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  (* entry tables: offsets ascending, back to back, NUL-terminated *)
  let expect_off = ref 0 in
  for e = 0 to s.n_entries - 1 do
    let o = Bigarray.Array1.get s.ent_off e and l = Bigarray.Array1.get s.ent_len e in
    if o <> !expect_off then
      bad "text index %s entry %d: offset %d, expected %d" t.name e o !expect_off;
    if l < 0 then bad "text index %s entry %d: negative length %d" t.name e l;
    if o + l < Bigarray.Array1.dim s.arena && Bigarray.Array1.get s.arena (o + l) <> 0 then
      bad "text index %s entry %d: missing NUL terminator" t.name e;
    expect_off := o + l + 1
  done;
  (* suffix array: right size, sorted, covers each suffix exactly once *)
  let total = ref 0 in
  for e = 0 to s.n_entries - 1 do
    total := !total + Bigarray.Array1.get s.ent_len e
  done;
  if s.n_sa <> !total then
    bad "text index %s: suffix array has %d offsets but entries hold %d bytes" t.name s.n_sa
      !total;
  let marks = Bytes.make (Bigarray.Array1.dim s.arena) '\000' in
  for i = 0 to s.n_sa - 1 do
    let off = Bigarray.Array1.get s.sa i in
    if off < 0 || off >= Bigarray.Array1.dim s.arena then
      bad "text index %s sa[%d]: offset %d outside the arena" t.name i off
    else begin
      if Bytes.get marks off <> '\000' then
        bad "text index %s sa[%d]: offset %d listed twice" t.name i off;
      Bytes.set marks off '\001';
      if Bigarray.Array1.get s.arena off = 0 then
        bad "text index %s sa[%d]: offset %d points at a terminator" t.name i off
    end;
    if i > 0 && compare_suffixes s.arena (Bigarray.Array1.get s.sa (i - 1)) off > 0 then
      bad "text index %s: suffix array out of order at %d" t.name i
  done;
  (* every live row findable: in the pending log, or an entry whose arena
     text equals the row's current text (a live row whose arena text went
     stale must be pending — the store hook guarantees it) *)
  let by_ref = Hashtbl.create (max 16 s.n_entries) in
  for e = 0 to s.n_entries - 1 do
    Hashtbl.replace by_ref (Bigarray.Array1.get s.ent_ref e) e
  done;
  let pend = Hashtbl.create (max 16 s.n_pending) in
  List.iter (fun p -> Hashtbl.replace pend p ()) s.pending;
  let arena_text e =
    let o = Bigarray.Array1.get s.ent_off e and l = Bigarray.Array1.get s.ent_len e in
    String.init l (fun j -> Char.chr (Bigarray.Array1.get s.arena (o + j)))
  in
  Smc.Collection.iter t.coll ~f:(fun blk slot ->
      let r = Smc.Collection.ref_of_slot t.coll blk slot in
      let p = Smc.Ref.to_packed r in
      if not (Hashtbl.mem pend p) then begin
        match Hashtbl.find_opt by_ref p with
        | None -> bad "text index %s: live row %d is neither indexed nor pending" t.name p
        | Some e ->
          (* the arena stores case-folded bytes; compare folded forms *)
          let cur = Smc.Field.get_string t.field blk slot in
          if not (String.equal (arena_text e) (String.map lower_byte cur)) then
            bad "text index %s entry %d: arena text %S stale for live row (now %S, not pending)"
              t.name e (arena_text e) cur
      end);
  List.rev !violations
