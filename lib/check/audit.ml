(* Whole-runtime invariant sweeps.

   An audit walks every registered block and every passed context at a
   quiescent point — no other domain mutating, the caller outside any
   critical section — and checks that the independently-maintained pieces of
   runtime state still agree: slot directories against valid/limbo counters,
   back-pointers against indirection entries, free stores against reachable
   entries, limbo stamps and reclamation-queue ready-epochs against what the
   epoch manager permits, quarantine accounting against the directory, and
   (statefully, across audits) monotonicity of every incarnation word.

   Checks accumulate violations as strings rather than failing fast, so one
   broken invariant reports all of its consequences in a single sweep. *)

open Smc_offheap

type violation = string

exception Audit_failure of violation list

let vf out fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt

(* ------------------------------------------------------------------ *)
(* Per-block structural checks (live blocks of a known context)        *)
(* ------------------------------------------------------------------ *)

let check_block ~out ~(ctx : Context.t) (blk : Block.t) =
  let rt = ctx.Context.rt in
  let ind = rt.Runtime.ind in
  let global = Epoch.global rt.Runtime.epoch in
  let limit = Context.effective_quarantine_limit ctx in
  let direct = ctx.Context.mode = Context.Direct in
  let id = blk.Block.id in
  let valid = ref 0 and limbo = ref 0 in
  for slot = 0 to blk.Block.nslots - 1 do
    let e = Block.dir_entry blk slot in
    let state = Constants.dir_state e in
    let bp = Bigarray.Array1.get blk.Block.backptr slot in
    let check_backptr () =
      if bp < 0 then
        vf out "block %d slot %d: occupied slot with null back-pointer" id slot
      else begin
        let p = Indirection.ptr ind bp in
        if Constants.ptr_block p <> id || Constants.ptr_slot p <> slot then
          vf out "block %d slot %d: indirection entry %d points at block %d slot %d"
            id slot bp (Constants.ptr_block p) (Constants.ptr_slot p)
      end
    in
    if state = Constants.state_valid then begin
      incr valid;
      check_backptr ();
      if bp >= 0 then begin
        let w = Indirection.inc_word ind bp in
        if w land Constants.flags_mask <> 0 then
          vf out "block %d slot %d: entry %d carries protocol flags %#x at a quiescent point"
            id slot bp (w land Constants.flags_mask);
        if w land Constants.inc_mask >= rt.Runtime.inc_quarantine_limit then
          vf out "block %d slot %d: live entry incarnation %d at/over quarantine limit %d"
            id slot (w land Constants.inc_mask) rt.Runtime.inc_quarantine_limit
      end;
      if direct then begin
        let sw = Bigarray.Array1.get blk.Block.slot_inc slot in
        if sw land Constants.flags_mask <> 0 then
          vf out "block %d slot %d: slot incarnation carries protocol flags %#x on a valid slot"
            id slot (sw land Constants.flags_mask);
        if sw land Constants.inc_mask >= limit then
          vf out "block %d slot %d: direct slot incarnation %d at/over effective limit %d \
                  (stored direct references would alias)"
            id slot (sw land Constants.inc_mask) limit
      end
    end
    else if state = Constants.state_limbo then begin
      incr limbo;
      check_backptr ();
      let stamp = Constants.dir_stamp e in
      if stamp > global then
        vf out "block %d slot %d: limbo removal stamp %d is ahead of global epoch %d"
          id slot stamp global
    end
    else if state = Constants.state_quarantined then begin
      if bp < 0 then
        vf out "block %d slot %d: quarantined slot lost its indirection entry" id slot
    end
    else if bp >= 0 then
      vf out "block %d slot %d: free slot still holds indirection entry %d" id slot bp
  done;
  let vc = Atomic.get blk.Block.valid_count in
  let lc = Atomic.get blk.Block.limbo_count in
  if vc <> !valid then
    vf out "block %d: valid_count %d but the directory has %d valid slots" id vc !valid;
  if lc <> !limbo then
    vf out "block %d: limbo_count %d but the directory has %d limbo slots" id lc !limbo

(* ------------------------------------------------------------------ *)
(* Per-context inventory: view, reclamation queue, local blocks        *)
(* ------------------------------------------------------------------ *)

let check_context ~out (ctx : Context.t) =
  let rt = ctx.Context.rt in
  let global = Epoch.global rt.Runtime.epoch in
  Mutex.lock ctx.Context.lock;
  let queue = Context.reclaim_queue_blocks ctx in
  let view = ctx.Context.view in
  Mutex.unlock ctx.Context.lock;
  List.iter
    (fun (b : Block.t) ->
      if not b.Block.queued then
        vf out "block %d: sits in the reclamation queue but is not flagged queued" b.Block.id;
      if b.Block.queued_ready > global + 2 then
        vf out "block %d: queued_ready %d exceeds global epoch + grace period (%d)"
          b.Block.id b.Block.queued_ready (global + 2);
      (* A queued block must be reclaimable as-is: not killed by compaction
         (a dead head would stall every ready block behind it), not owned by
         an allocating thread, not reserved into a compaction group. *)
      if b.Block.dead then
        vf out "block %d: dead block sitting in the reclamation queue" b.Block.id;
      if b.Block.owner_tid >= 0 then
        vf out "block %d: queued for reclamation while owned by thread slot %d"
          b.Block.id b.Block.owner_tid;
      if b.Block.group <> None then
        vf out "block %d: queued for reclamation while in a compaction group" b.Block.id)
    queue;
  let seen = Hashtbl.create 64 in
  for i = 0 to view.Context.v_n - 1 do
    let b = view.Context.v_blocks.(i) in
    if Hashtbl.mem seen b.Block.id then
      vf out "block %d appears twice in the context view" b.Block.id;
    Hashtbl.replace seen b.Block.id ();
    if not b.Block.dead then begin
      (match Registry.get rt.Runtime.registry b.Block.id with
      | b' -> if b' != b then vf out "block %d: view holds a block the registry does not" b.Block.id
      | exception Invalid_argument _ ->
        vf out "block %d: live block in view but retired from the registry" b.Block.id);
      if b.Block.group <> None then
        vf out "block %d: compaction group still attached at a quiescent point" b.Block.id;
      if b.Block.queued && not (List.memq b queue) then
        vf out "block %d: flagged queued but missing from the reclamation queue" b.Block.id;
      check_block ~out ~ctx b
    end
  done;
  Array.iteri
    (fun i ob ->
      match ob with
      | None -> ()
      | Some (b : Block.t) ->
        if b.Block.owner_tid <> i then
          vf out "block %d: local block of thread slot %d has owner_tid %d" b.Block.id i
            b.Block.owner_tid;
        if b.Block.dead then vf out "block %d: dead block held as a local block" b.Block.id;
        if not (Hashtbl.mem seen b.Block.id) then
          vf out "block %d: local block of thread slot %d is not in the context view" b.Block.id i)
    ctx.Context.local_block;
  seen

(* ------------------------------------------------------------------ *)
(* Runtime-level checks: registry sweep, free stores, epoch manager    *)
(* ------------------------------------------------------------------ *)

let check_runtime_level ~out (rt : Runtime.t) ~views =
  let ind = rt.Runtime.ind in
  (* Free stores: no duplicates, and no free entry reachable from a slot. *)
  let free = Hashtbl.create 1024 in
  Indirection.iter_free ind ~f:(fun e ->
      if Hashtbl.mem free e then
        vf out "indirection entry %d appears twice in the free stores (double free)" e;
      Hashtbl.replace free e ());
  (* Back-pointer injectivity over live blocks: one entry backs one slot. *)
  let used = Hashtbl.create 4096 in
  let quarantined = ref 0 in
  let live_unseen = ref [] in
  Registry.iter_registered rt.Runtime.registry ~f:(fun (blk : Block.t) ->
      if (not blk.Block.dead) && not (List.exists (fun s -> Hashtbl.mem s blk.Block.id) views)
      then live_unseen := blk.Block.id :: !live_unseen;
      for slot = 0 to blk.Block.nslots - 1 do
        let st = Block.slot_state blk slot in
        if st = Constants.state_quarantined then incr quarantined;
        if (not blk.Block.dead) && st <> Constants.state_free then begin
          let bp = Bigarray.Array1.get blk.Block.backptr slot in
          if bp >= 0 then begin
            if bp >= Indirection.capacity ind then
              vf out "block %d slot %d: back-pointer %d beyond table capacity %d" blk.Block.id
                slot bp (Indirection.capacity ind)
            else begin
              (match Hashtbl.find_opt used bp with
              | Some (ob, os) ->
                vf out "indirection entry %d backs both block %d slot %d and block %d slot %d"
                  bp ob os blk.Block.id slot
              | None -> Hashtbl.replace used bp (blk.Block.id, slot));
              if Hashtbl.mem free bp then
                vf out "indirection entry %d is in a free store but block %d slot %d still \
                        points at it"
                  bp blk.Block.id slot
            end
          end
        end
      done);
  if !live_unseen <> [] then
    List.iter
      (fun id -> vf out "block %d: live and registered but in no audited context view (leak?)" id)
      !live_unseen;
  let cap = Indirection.capacity ind in
  let used_n = Hashtbl.length used and free_n = Hashtbl.length free in
  if used_n + free_n > cap then
    vf out "indirection accounting: %d entries in use + %d free exceeds the %d ever allocated"
      used_n free_n cap;
  (* The quarantine counter counts every quarantine ever; blocks retired by
     compaction may carry some away, so registered blocks bound it below. *)
  let q = Atomic.get rt.Runtime.quarantined_slots in
  if !quarantined > q then
    vf out "quarantine accounting: %d quarantined slots in registered blocks but the counter \
            says %d"
      !quarantined q;
  (* Compaction-phase flags must be at rest. *)
  if Atomic.get rt.Runtime.in_moving_phase then
    vf out "in_moving_phase still set at a quiescent point";
  if Atomic.get rt.Runtime.next_relocation_epoch <> -1 then
    vf out "next_relocation_epoch %d still published at a quiescent point"
      (Atomic.get rt.Runtime.next_relocation_epoch);
  (* Epoch manager: local epochs never ahead of global; nobody in a critical
     section while we sweep (the audit contract). *)
  let em = rt.Runtime.epoch in
  let global = Epoch.global em in
  for i = 0 to Epoch.registered_threads em - 1 do
    let local, in_crit = Epoch.slot_snapshot em i in
    if local > global then
      vf out "thread slot %d: local epoch %d is ahead of global epoch %d" i local global;
    if in_crit then
      vf out "thread slot %d: still inside a critical section during an audit sweep" i
  done

(* ------------------------------------------------------------------ *)
(* Stateful tracker: monotonicity across successive audits             *)
(* ------------------------------------------------------------------ *)

type t = {
  rt : Runtime.t;
  mutable last_global : int;
  mutable last_quarantined : int;
  mutable last_capacity : int;
  entry_incs : (int, int) Hashtbl.t;  (* entry index -> last flag-stripped word *)
  slot_incs : (int, int) Hashtbl.t;  (* packed (block, slot) -> last word *)
}

let create rt =
  {
    rt;
    last_global = Epoch.global rt.Runtime.epoch;
    last_quarantined = Atomic.get rt.Runtime.quarantined_slots;
    last_capacity = Indirection.capacity rt.Runtime.ind;
    entry_incs = Hashtbl.create 4096;
    slot_incs = Hashtbl.create 4096;
  }

let observe_monotone ~out t =
  let rt = t.rt in
  let global = Epoch.global rt.Runtime.epoch in
  if global < t.last_global then
    vf out "global epoch went backwards: %d -> %d" t.last_global global;
  t.last_global <- global;
  let q = Atomic.get rt.Runtime.quarantined_slots in
  if q < t.last_quarantined then
    vf out "quarantined-slot counter went backwards: %d -> %d" t.last_quarantined q;
  t.last_quarantined <- q;
  let cap = Indirection.capacity rt.Runtime.ind in
  if cap < t.last_capacity then
    vf out "indirection capacity shrank: %d -> %d" t.last_capacity cap;
  t.last_capacity <- cap;
  for e = 0 to cap - 1 do
    let w = Indirection.inc_word rt.Runtime.ind e land lnot Constants.flags_mask in
    (match Hashtbl.find_opt t.entry_incs e with
    | Some prev when w < prev ->
      vf out "indirection entry %d: incarnation went backwards: %d -> %d" e prev w
    | _ -> ());
    Hashtbl.replace t.entry_incs e w
  done;
  (* Block ids are never reused, so (block, slot) is a stable key even as
     blocks die and are replaced by compaction. *)
  Registry.iter_registered rt.Runtime.registry ~f:(fun (blk : Block.t) ->
      for slot = 0 to blk.Block.nslots - 1 do
        let sw = Bigarray.Array1.get blk.Block.slot_inc slot land lnot Constants.flags_mask in
        let key = Constants.pack_ptr ~block:blk.Block.id ~slot in
        (match Hashtbl.find_opt t.slot_incs key with
        | Some prev when sw < prev ->
          vf out "block %d slot %d: slot incarnation went backwards: %d -> %d" blk.Block.id
            slot prev sw
        | _ -> ());
        Hashtbl.replace t.slot_incs key sw
      done)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let check_runtime t ~contexts =
  let out = ref [] in
  let views = List.map (fun ctx -> check_context ~out ctx) contexts in
  check_runtime_level ~out t.rt ~views;
  observe_monotone ~out t;
  List.rev !out

let check_exn t ~contexts =
  match check_runtime t ~contexts with
  | [] -> ()
  | violations -> raise (Audit_failure violations)

let check_once rt ~contexts = check_runtime (create rt) ~contexts

let report violations =
  String.concat "\n" (List.map (fun v -> "  - " ^ v) violations)

let () =
  Printexc.register_printer (function
    | Audit_failure vs ->
      Some (Printf.sprintf "Audit_failure (%d violations):\n%s" (List.length vs) (report vs))
    | _ -> None)
