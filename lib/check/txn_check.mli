(** Model checking for atomic transactions and snapshot-isolation reads.

    Drives seeded multi-op transactions against a plain-OCaml reference
    model that is updated only at commit, and checks:

    - {b Atomicity under crashes} — the chaos transaction hook copies the
      WAL file at every commit-phase boundary (staged / validated /
      applied / logged); each image is recovered and must reproduce the
      model at a whole-transaction boundary, never a partial batch. With
      the checker's [Always] sync policy the expected boundary is exact:
      pre-transaction before [Txn_logged], post-transaction at it.
    - {b Isolation} — snapshot views opened before a commit keep reading
      the pre-commit state after it lands; forced write-write conflict
      pairs resolve first-committer-wins with the loser invisible to
      rows, index probes and crash images.
    - {b Structural sanity} — runtime audit, Obs counter balances, index
      sweep, CSN-stamp invariants, and a final whole-log recovery diff.

    Violations are recorded, not raised, so harnesses can aggregate
    across seeds. Single-domain: the checker is its own mutator; the
    multi-domain interleavings are the stress harness's job, which calls
    {!check_quiescent} at its checkpoints. *)

type config = {
  txns : int;
  max_ops : int;
  slots_per_block : int;
  crash_every : int;  (** capture + recover WAL crash images every n txns; 0 disables *)
  view_every : int;  (** hold a snapshot view across every nth commit; 0 disables *)
  conflict_every : int;  (** force a write-write conflict pair every nth txn; 0 disables *)
  abort_every : int;  (** stage-then-abort every nth txn; 0 disables *)
  compact_every : int;  (** run a compaction pass every nth txn; 0 disables *)
  bare_every : int;  (** interleave a bare op every nth txn; 0 disables *)
}

val default_config : config

type t

val create : ?config:config -> ?seed:int64 -> unit -> t
(** Fresh runtime, collection (two int fields: key, payload), attached
    hash index on [key], WAL at [Always] sync, and an empty base snapshot
    cut at LSN 0 — recovery state is a pure function of the log bytes.
    Temp files are cleaned up at process exit. *)

val run : t -> unit
(** Drives [config.txns] transactions with all enabled probes. Callable
    repeatedly before {!finish} for longer runs. *)

val finish : t -> string list
(** Final sweeps (audit, obs balances, index, stamps) plus a whole-log
    recovery diff against the model; closes the WAL and returns all
    recorded violations, oldest first. Idempotent. *)

val violations : t -> string list
(** Violations recorded so far, without finishing. *)

val stats : t -> string
(** One-line run summary (commits / conflicts / crash recoveries / ...). *)

val run_violations : ?config:config -> ?seed:int64 -> unit -> string list
(** [create] + [run] + [finish] in one call; [[]] means every property
    held. *)

val check_quiescent : Smc.Collection.t -> string list
(** CSN-stamp invariants over any collection at a quiescent point: valid
    slots' stamps are ordered ([born <= write <= frontier]) and a view
    opened now enumerates exactly the rows the current-state scan does.
    Usable from the stress harness alongside {!Audit} and {!Obs_check}. *)
