(** Round-trip verification of the persistence layer.

    Two entry points. {!restore_verified} restores a snapshot (plus
    optional WAL tail) and immediately runs the full invariant sweep on
    the result — {!Audit.check_once}, {!Obs_check.check} and
    {!Index_check.check} over the re-attached indexes — so a restored
    image is never trusted unaudited. {!round_trip} goes further: it
    snapshots a live collection, restores the image, and checks that the
    restored rows are {e exactly} the original ones (a multiset
    comparison of raw slot words, incarnations included in indirect
    mode), on top of the same audits.

    Foreign [Ref] fields are excluded from the row comparison — the
    snapshot format nulls them by design (see {!Smc_persist.Snapshot}).
    In direct mode self-references are also masked, because block ids are
    reassigned on restore; in indirect mode they are entry-stable and
    compared verbatim.

    Same quiescent-point contract as {!Audit}: no concurrent mutators on
    either runtime while checking. *)

val restore_verified :
  ?wal:string -> path:string -> unit -> Smc_persist.Snapshot.restored * string list
(** Restores and sweeps. The violation list is empty when the restored
    runtime passes every structural, counter-balance and index check.
    Corruption raises {!Smc_persist.Pio.Corrupt} as usual. *)

val round_trip :
  ?wal:Smc_persist.Wal.t ->
  ?indexes:(string * string) list ->
  path:string ->
  Smc.Collection.t ->
  string list
(** Snapshots [coll] to [path] (recording the WAL cut point when [wal] is
    attached), restores it — replaying the WAL tail if one was given —
    and returns all violations: audit findings on the restored runtime
    plus any row-level difference between the original and restored
    populations. Empty means the round trip is exact. *)
