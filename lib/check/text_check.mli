(** Structural invariant sweep over attached suffix-array text indexes.

    Runs {!Smc_text.Sa_index.audit} on each index: arena/entry-table
    mutual consistency, suffix-array sortedness and coverage (every arena
    suffix marked exactly once, in order), and live-row findability —
    every live row of the indexed collection is reachable through the
    pending log or a current arena entry whose text matches the row's
    column. Same quiescent-point contract as {!Audit}; the stress harness
    runs this at every checkpoint alongside the runtime audit,
    {!Index_check}, and {!Obs_check}. *)

val check : Smc_text.Sa_index.t list -> string list
(** Violations found, empty when every index is consistent. *)

val check_exn : Smc_text.Sa_index.t list -> unit
(** Raises {!Audit.Audit_failure} with the violations, if any. *)
