(* Fault injection for the off-heap runtime.

   Three hook points, all compiled into the production code as optional
   closures that default to [None]:

   - the epoch advance gate ([Epoch.set_advance_gate]): starving advancement
     forces allocation onto fresh blocks while reclaimable ones wait, and
     drives compaction into its epoch-wait abort paths;
   - the allocation hook ([Runtime.on_alloc]): fired at the start of every
     allocation attempt, including retries — the one point where raising is
     always safe, modelling an allocation failure;
   - the compaction-phase hook ([Runtime.on_compaction_phase]): fired at the
     §5.1 phase boundaries, letting a test inject frees, lookups or epoch
     churn exactly between freeze / wait / move / complete.

   Installers are bracketed: the hook is removed on exit even if the wrapped
   thunk raises, so a failed stress iteration cannot poison the next one. *)

open Smc_offheap

exception Injected_failure of string

let with_epoch_gate rt ~gate f =
  Epoch.set_advance_gate rt.Runtime.epoch (Some gate);
  Fun.protect ~finally:(fun () -> Epoch.set_advance_gate rt.Runtime.epoch None) f

let with_flaky_epoch rt ~prng ~fail_one_in f =
  if fail_one_in <= 0 then invalid_arg "Chaos.with_flaky_epoch";
  with_epoch_gate rt ~gate:(fun () -> Smc_util.Prng.int prng fail_one_in <> 0) f

let with_stuck_epoch rt f = with_epoch_gate rt ~gate:(fun () -> false) f

let with_alloc_hook rt ~hook f =
  rt.Runtime.on_alloc <- Some hook;
  Fun.protect ~finally:(fun () -> rt.Runtime.on_alloc <- None) f

let with_alloc_failures rt ~prng ~fail_one_in f =
  if fail_one_in <= 0 then invalid_arg "Chaos.with_alloc_failures";
  let injected = ref 0 in
  let r =
    with_alloc_hook rt
      ~hook:(fun () ->
        if Smc_util.Prng.int prng fail_one_in = 0 then begin
          incr injected;
          raise (Injected_failure "alloc")
        end)
      f
  in
  (r, !injected)

let with_compaction_hook rt ~hook f =
  rt.Runtime.on_compaction_phase <- Some hook;
  Fun.protect ~finally:(fun () -> rt.Runtime.on_compaction_phase <- None) f

let with_txn_hook rt ~hook f =
  rt.Runtime.on_txn_phase <- Some hook;
  Fun.protect ~finally:(fun () -> rt.Runtime.on_txn_phase <- None) f
