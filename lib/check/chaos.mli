(** Fault injection for the off-heap runtime.

    Bracketed installers for the three failure hooks compiled into the
    manager: the epoch advance gate, the per-allocation-attempt hook, and
    the compaction phase-boundary hook. Each installer removes its hook on
    exit even when the wrapped thunk raises. *)

open Smc_offheap

exception Injected_failure of string
(** Raised by the failure-injecting hooks; stress drivers treat it as a
    failed operation and carry on. *)

val with_epoch_gate : Runtime.t -> gate:(unit -> bool) -> (unit -> 'a) -> 'a
(** While the thunk runs, [Epoch.try_advance] fails whenever [gate ()] is
    false. *)

val with_flaky_epoch :
  Runtime.t -> prng:Smc_util.Prng.t -> fail_one_in:int -> (unit -> 'a) -> 'a
(** Epoch advancement fails with probability [1/fail_one_in]. *)

val with_stuck_epoch : Runtime.t -> (unit -> 'a) -> 'a
(** Epoch advancement never succeeds while the thunk runs. *)

val with_alloc_hook : Runtime.t -> hook:(unit -> unit) -> (unit -> 'a) -> 'a
(** [hook] fires at the start of every allocation attempt (retries
    included). Raising from it aborts the allocation safely. *)

val with_alloc_failures :
  Runtime.t -> prng:Smc_util.Prng.t -> fail_one_in:int -> (unit -> 'a) -> 'a * int
(** Allocation attempts raise {!Injected_failure} with probability
    [1/fail_one_in]. Returns the thunk's result and the injection count. *)

val with_compaction_hook :
  Runtime.t -> hook:(Runtime.compaction_phase -> unit) -> (unit -> 'a) -> 'a
(** [hook] fires on the compacting thread at every §5.1 phase boundary. *)

val with_txn_hook : Runtime.t -> hook:(Runtime.txn_phase -> unit) -> (unit -> 'a) -> 'a
(** [hook] fires on the committing thread at every transaction-commit
    boundary (staged / validated / applied / logged) — the crash harness
    snapshots WAL images there. *)
