(** Structural invariant sweep over attached hash indexes.

    Runs {!Smc_index.Hash_index.audit} on each index: bucket-state counts
    vs the maintained counters, incarnation validity and key agreement of
    every live entry, and live-entry count == the collection's live rows
    (nothing stale counted live, nothing lost, nothing duplicated). Same
    quiescent-point contract as {!Audit}; the stress harness runs this at
    every checkpoint alongside the runtime audit and {!Obs_check}. *)

val check : Smc_index.Hash_index.t list -> string list
(** Violations found, empty when every index is consistent. *)

val check_exn : Smc_index.Hash_index.t list -> unit
(** Raises {!Audit.Audit_failure} with the violations, if any. *)
