(* Model-checking atomic transactions and snapshot isolation.

   The checker drives seeded multi-op transactions (adds / removes /
   in-place stores over a two-int-field layout) against a plain OCaml
   model that is updated only when a commit reports success, and asserts
   three families of properties:

   - Atomicity under crashes: with a WAL attached at [Always] sync, the
     chaos transaction hook ({!Chaos.with_txn_hook}) copies the log file
     at each commit-phase boundary — staged / validated / applied /
     logged — producing the exact byte image a crash at that boundary
     would leave behind. Each image is recovered with
     {!Persist_check.restore_verified} and its row population diffed
     against the model: every image must equal the model either just
     before or just after the transaction (all-or-nothing), and with
     [Always] sync the boundary determines which one exactly (the batch
     is appended and fsynced between [Txn_applied] and [Txn_logged]).

   - Isolation: a snapshot view opened before a commit must read the
     pre-commit model, and must keep reading it — byte for byte — after
     the commit lands. Forced write-write conflict pairs (two
     transactions staging a store to the same row from the same begin
     frontier) must resolve first-committer-wins: exactly one commits,
     and the loser's write is never observable in the rows, the model
     diff, the index, or any crash image.

   - Structural sanity: the runtime audit, the Obs counter balances, the
     index sweep, and the CSN-stamp invariants of {!check_quiescent} all
     hold at the end of the run, and a full recovery of the whole log
     reproduces the final model exactly.

   Like {!Model}, the checker records violations rather than raising, so
   a harness can aggregate across seeds and configurations. *)

open Smc_offheap
module Wal = Smc_persist.Wal
module Snapshot = Smc_persist.Snapshot

type config = {
  txns : int;  (** transactions to drive *)
  max_ops : int;  (** max staged ops per transaction *)
  slots_per_block : int;
  crash_every : int;  (** capture + recover WAL crash images every n txns *)
  view_every : int;  (** hold a snapshot view across every nth commit *)
  conflict_every : int;  (** force a write-write conflict pair every nth txn *)
  abort_every : int;  (** stage-then-abort every nth txn *)
  compact_every : int;  (** run a compaction pass every nth txn *)
  bare_every : int;  (** interleave a bare (non-transactional) op every nth txn *)
}

let default_config =
  {
    txns = 200;
    max_ops = 6;
    slots_per_block = 64;
    crash_every = 8;
    view_every = 5;
    conflict_every = 9;
    abort_every = 7;
    compact_every = 25;
    bare_every = 4;
  }

type stats = {
  mutable commits : int;
  mutable conflicts : int;
  mutable aborts : int;
  mutable crash_images : int;
  mutable crash_recoveries : int;
  mutable views_checked : int;
  mutable compactions : int;
  mutable bare_ops : int;
}

let layout =
  Layout.create ~name:"txn_obj" [ ("key", Layout.Int); ("payload", Layout.Int) ]

let f_key = Smc.Field.int layout "key"
let f_payload = Smc.Field.int layout "payload"

type t = {
  rt : Runtime.t;
  coll : Smc.Collection.t;
  index : Smc_index.Hash_index.t;
  wal : Wal.t;
  wal_path : string;
  snap_path : string;
  audit : Audit.t;
  prng : Smc_util.Prng.t;
  cfg : config;
  live : (int, int * Smc.Ref.t) Hashtbl.t;  (* key -> (payload, ref) *)
  mutable next_key : int;
  stats : stats;
  mutable violations : string list;
  mutable n_violations : int;
  mutable finished : bool;
}

let max_recorded_violations = 200

let viol t fmt =
  Printf.ksprintf
    (fun s ->
      t.n_violations <- t.n_violations + 1;
      if t.n_violations <= max_recorded_violations then t.violations <- s :: t.violations)
    fmt

let tmp_file ext =
  let f = Filename.temp_file "smc_txn_check" ext in
  at_exit (fun () -> try Sys.remove f with Sys_error _ -> ());
  f

let create ?(config = default_config) ?seed () =
  let rt = Runtime.create () in
  let coll =
    Smc.Collection.create rt ~name:"txn_check" ~layout
      ~slots_per_block:config.slots_per_block ()
  in
  let wal_path = tmp_file ".smcwal" in
  let snap_path = tmp_file ".smcsnap" in
  let wal = Wal.create ~sync:Wal.Always ~path:wal_path ~name:"txn_check" () in
  Wal.attach wal coll;
  (* Empty base image cut at LSN 0: every crash image replays the whole
     log over it, so recovery state is a pure function of the log bytes. *)
  ignore (Snapshot.write ~wal ~indexes:[ ("ix_key", "key") ] ~path:snap_path coll
           : Snapshot.manifest * int);
  let index =
    Smc_index.Hash_index.attach ~name:"ix_key"
      ~key:(Smc_index.Hash_index.Int_key (Smc.Field.get_int f_key))
      coll
  in
  {
    rt;
    coll;
    index;
    wal;
    wal_path;
    snap_path;
    audit = Audit.create rt;
    prng = Smc_util.Prng.create ?seed ();
    cfg = config;
    live = Hashtbl.create 1024;
    next_key = 1;
    stats =
      {
        commits = 0;
        conflicts = 0;
        aborts = 0;
        crash_images = 0;
        crash_recoveries = 0;
        views_checked = 0;
        compactions = 0;
        bare_ops = 0;
      };
    violations = [];
    n_violations = 0;
    finished = false;
  }

(* ---- Model and collection dumps ------------------------------------- *)

let model_dump t =
  Hashtbl.fold (fun k (p, _) acc -> (k, p) :: acc) t.live []
  |> List.sort compare

let coll_dump coll =
  Smc.Collection.fold coll ~init:[] ~f:(fun acc blk slot ->
      (Smc.Field.get_int f_key blk slot, Smc.Field.get_int f_payload blk slot) :: acc)
  |> List.sort compare

let view_dump v =
  Smc.Collection.view_fold v ~init:[] ~f:(fun acc blk slot ->
      (Smc.Field.get_int f_key blk slot, Smc.Field.get_int f_payload blk slot) :: acc)
  |> List.sort compare

let dump_to_string rows =
  String.concat ";"
    (List.map (fun (k, p) -> Printf.sprintf "%d:%d" k p) rows)

let diff_summary ~got ~want =
  let missing = List.filter (fun r -> not (List.mem r got)) want in
  let extra = List.filter (fun r -> not (List.mem r want)) got in
  Printf.sprintf "missing=[%s] extra=[%s]" (dump_to_string missing) (dump_to_string extra)

(* ---- Staged-effect bookkeeping --------------------------------------- *)

type effect_ =
  | E_add of int * int  (* key, payload — ref learned from the commit *)
  | E_remove of int  (* key *)
  | E_store of int * int  (* key, new payload *)

let apply_effects_to_assoc rows effects =
  List.fold_left
    (fun rows e ->
      match e with
      | E_add (k, p) -> (k, p) :: rows
      | E_remove k -> List.filter (fun (k', _) -> k' <> k) rows
      | E_store (k, p) -> List.map (fun (k', p') -> if k' = k then (k', p) else (k', p')) rows)
    rows effects
  |> List.sort compare

let apply_effects_to_model t effects refs =
  (* [refs] are the commit's returned add references, in stage order. *)
  let refs = ref refs in
  List.iter
    (fun e ->
      match e with
      | E_add (k, p) -> (
        match !refs with
        | r :: rest ->
          refs := rest;
          Hashtbl.replace t.live k (p, r)
        | [] -> viol t "commit returned fewer add references than staged adds")
      | E_remove k -> Hashtbl.remove t.live k
      | E_store (k, p) -> (
        match Hashtbl.find_opt t.live k with
        | Some (_, r) -> Hashtbl.replace t.live k (p, r)
        | None -> viol t "store effect for key %d not in model" k))
    effects;
  if !refs <> [] then viol t "commit returned more add references than staged adds"

(* ---- Crash-image capture and recovery -------------------------------- *)

let copy_file src dst =
  let ic = open_in_bin src in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let oc = open_out_bin dst in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          let buf = Bytes.create 65536 in
          let rec loop () =
            let n = input ic buf 0 (Bytes.length buf) in
            if n > 0 then begin
              output oc buf 0 n;
              loop ()
            end
          in
          loop ()))

let phase_name = function
  | Runtime.Txn_staged -> "staged"
  | Runtime.Txn_validated -> "validated"
  | Runtime.Txn_applied -> "applied"
  | Runtime.Txn_logged -> "logged"

(* Recover one crash image and diff it against the commit-boundary models.
   [pre] is the model just before the transaction (bare ops included —
   they are appended and synced individually, before the batch), [post]
   just after. With [Always] sync the expected boundary is exact: the
   batch hits the disk between [Txn_applied] and [Txn_logged]. *)
let verify_crash_image t ~txn_no ~phase ~img ~pre ~post =
  t.stats.crash_recoveries <- t.stats.crash_recoveries + 1;
  match Persist_check.restore_verified ~wal:img ~path:t.snap_path () with
  | exception Smc_persist.Pio.Corrupt msg ->
    viol t "txn %d: crash image at %s boundary fails recovery: %s" txn_no (phase_name phase)
      msg
  | restored, violations ->
    List.iter
      (fun v ->
        viol t "txn %d: crash image at %s boundary: restored-state violation: %s" txn_no
          (phase_name phase) v)
      violations;
    let got = coll_dump restored.Snapshot.r_coll in
    let expect = match phase with Runtime.Txn_logged -> post | _ -> pre in
    if got <> expect then
      viol t "txn %d: crash at %s boundary recovered to neither-boundary state (%s)" txn_no
        (phase_name phase)
        (diff_summary ~got ~want:expect);
    (* The atomicity property proper: no image may show a partial batch,
       whatever the sync policy. Redundant under [Always] given the exact
       check above, but kept separate so the failure reads correctly. *)
    if got <> pre && got <> post then
      viol t "txn %d: crash at %s boundary recovered a PARTIAL transaction (%s vs pre)" txn_no
        (phase_name phase)
        (diff_summary ~got ~want:pre)

(* ---- Transaction driving --------------------------------------------- *)

let fresh_key t =
  let k = t.next_key in
  t.next_key <- k + 1;
  k

let random_live_key t ~excluded =
  let n = Hashtbl.length t.live in
  if n = 0 then None
  else begin
    let keys =
      Hashtbl.fold
        (fun k _ acc -> if List.mem k excluded then acc else k :: acc)
        t.live []
    in
    match keys with
    | [] -> None
    | _ -> Some (List.nth keys (Smc_util.Prng.int t.prng (List.length keys)))
  end

(* Stage a random batch. Returns the staged effects in stage order. Refs
   already touched by this transaction are excluded from later picks —
   staging the same reference twice is an [Invalid_argument] at commit by
   contract, which has its own dedicated test. *)
let stage_random_batch t tx ~n_ops =
  let effects = ref [] and touched = ref [] in
  for _ = 1 to n_ops do
    let d = Smc_util.Prng.int t.prng 100 in
    if d < 50 || Hashtbl.length t.live = 0 then begin
      let k = fresh_key t in
      let p = Smc_util.Prng.int t.prng 1_000_000 in
      Smc.Collection.stage_add tx ~init:(fun blk slot ->
          Smc.Field.set_int f_key blk slot k;
          Smc.Field.set_int f_payload blk slot p);
      effects := E_add (k, p) :: !effects
    end
    else
      match random_live_key t ~excluded:!touched with
      | None -> ()
      | Some k ->
        let _, r = Hashtbl.find t.live k in
        touched := k :: !touched;
        if d < 75 then begin
          Smc.Collection.stage_remove tx r;
          effects := E_remove k :: !effects
        end
        else begin
          let p = Smc_util.Prng.int t.prng 1_000_000 in
          Smc.Collection.stage_store tx r ~word:f_payload.Layout.word ~value:p;
          effects := E_store (k, p) :: !effects
        end
  done;
  List.rev !effects

(* One scripted write-write conflict: two transactions begin at the same
   frontier and stage a store to the same row; the first commit must win,
   the second must report [Conflict], and the loser's payload must never
   become visible anywhere. *)
let drive_conflict_pair t ~txn_no =
  match random_live_key t ~excluded:[] with
  | None -> ()
  | Some k ->
    let p0, r = Hashtbl.find t.live k in
    let p1 = p0 + 1_000_001 and p2 = p0 + 2_000_002 in
    let tx1 = Smc.Collection.txn t.coll in
    let tx2 = Smc.Collection.txn t.coll in
    Smc.Collection.stage_store tx1 r ~word:f_payload.Layout.word ~value:p1;
    Smc.Collection.stage_store tx2 r ~word:f_payload.Layout.word ~value:p2;
    (match Smc.Collection.commit tx1 with
    | Smc.Collection.Committed [] ->
      t.stats.commits <- t.stats.commits + 1;
      Hashtbl.replace t.live k (p1, r)
    | Smc.Collection.Committed _ ->
      viol t "txn %d: conflict-pair winner returned add references for a store-only batch"
        txn_no
    | Smc.Collection.Conflict ->
      viol t "txn %d: first committer of a conflict pair reported Conflict" txn_no);
    (match Smc.Collection.commit tx2 with
    | Smc.Collection.Conflict -> t.stats.conflicts <- t.stats.conflicts + 1
    | Smc.Collection.Committed _ ->
      viol t "txn %d: second committer of a write-write conflict pair committed" txn_no);
    (* Loser invisibility: the row reads the winner's payload, and the
       index still routes the key to exactly that row. *)
    (match Smc.Collection.deref_opt t.coll r with
    | Some (blk, slot) ->
      let p = Smc.Field.get_int f_payload blk slot in
      if p = p2 then viol t "txn %d: conflict loser's payload is visible in the row" txn_no
      else if p <> p1 then
        viol t "txn %d: conflict winner's payload lost (row reads %d, want %d)" txn_no p p1
    | None -> viol t "txn %d: conflict-pair row vanished" txn_no);
    (match Smc_index.Hash_index.probe_refs t.index (Smc_index.Hash_index.K_int k) with
    | [ r' ] when Smc.Ref.equal r' r -> ()
    | refs ->
      viol t "txn %d: index probe after conflict pair returned %d refs (want the winner's 1)"
        txn_no (List.length refs))

(* A bare (non-transactional) op between transactions: single-op commit
   units with their own CSN, logged as bare WAL records — recovery has to
   interleave them correctly with transaction frames. *)
let drive_bare_op t =
  t.stats.bare_ops <- t.stats.bare_ops + 1;
  if Hashtbl.length t.live > 0 && Smc_util.Prng.bool t.prng then
    match random_live_key t ~excluded:[] with
    | None -> ()
    | Some k ->
      let _, r = Hashtbl.find t.live k in
      if not (Smc.Collection.remove t.coll r) then viol t "bare remove of live key %d failed" k;
      Hashtbl.remove t.live k
  else begin
    let k = fresh_key t in
    let p = Smc_util.Prng.int t.prng 1_000_000 in
    let r =
      Smc.Collection.add t.coll ~init:(fun blk slot ->
          Smc.Field.set_int f_key blk slot k;
          Smc.Field.set_int f_payload blk slot p)
    in
    Hashtbl.replace t.live k (p, r)
  end

let drive_txn t ~txn_no =
  let cfg = t.cfg in
  if cfg.bare_every > 0 && txn_no mod cfg.bare_every = 0 then drive_bare_op t;
  if cfg.conflict_every > 0 && txn_no mod cfg.conflict_every = 0 then
    drive_conflict_pair t ~txn_no
  else begin
    let pre = model_dump t in
    (* Occasional empty transaction: commits, logs an empty frame, changes
       nothing. *)
    let n_ops =
      if Smc_util.Prng.int t.prng 20 = 0 then 0 else 1 + Smc_util.Prng.int t.prng cfg.max_ops
    in
    let tx = Smc.Collection.txn t.coll in
    let effects = stage_random_batch t tx ~n_ops in
    if cfg.abort_every > 0 && txn_no mod cfg.abort_every = 0 then begin
      Smc.Collection.abort tx;
      t.stats.aborts <- t.stats.aborts + 1;
      let got = coll_dump t.coll in
      if got <> pre then
        viol t "txn %d: abort changed visible state (%s)" txn_no (diff_summary ~got ~want:pre)
    end
    else begin
      let post = apply_effects_to_assoc pre effects in
      let probe_crash = cfg.crash_every > 0 && txn_no mod cfg.crash_every = 0 in
      let images = ref [] in
      let view =
        if cfg.view_every > 0 && txn_no mod cfg.view_every = 0 then begin
          let v = Smc.Collection.snapshot_view t.coll in
          let seen = view_dump v in
          if seen <> pre then
            viol t "txn %d: view opened before commit reads non-model state (%s)" txn_no
              (diff_summary ~got:seen ~want:pre);
          Some (v, seen)
        end
        else None
      in
      let result =
        if probe_crash then
          Chaos.with_txn_hook t.rt
            ~hook:(fun phase ->
              let img = tmp_file ".smcwal" in
              copy_file t.wal_path img;
              t.stats.crash_images <- t.stats.crash_images + 1;
              images := (phase, img) :: !images)
            (fun () -> Smc.Collection.commit tx)
        else Smc.Collection.commit tx
      in
      (match result with
      | Smc.Collection.Committed refs ->
        t.stats.commits <- t.stats.commits + 1;
        apply_effects_to_model t effects refs;
        let got = coll_dump t.coll in
        let want = model_dump t in
        if got <> want then
          viol t "txn %d: committed state diverges from model (%s)" txn_no
            (diff_summary ~got ~want);
        if want <> post then
          viol t "txn %d: model after commit diverges from predicted effects (%s)" txn_no
            (diff_summary ~got:want ~want:post)
      | Smc.Collection.Conflict ->
        (* Single mutator domain: nothing can invalidate the batch. *)
        viol t "txn %d: spurious Conflict with no concurrent writer" txn_no);
      (match view with
      | None -> ()
      | Some (v, seen) ->
        t.stats.views_checked <- t.stats.views_checked + 1;
        let after = view_dump v in
        if after <> seen then
          viol t "txn %d: snapshot view drifted across a commit (%s)" txn_no
            (diff_summary ~got:after ~want:seen);
        Smc.Collection.close_view v);
      List.iter
        (fun (phase, img) ->
          verify_crash_image t ~txn_no ~phase ~img ~pre ~post;
          (try Sys.remove img with Sys_error _ -> ()))
        (List.rev !images)
    end
  end;
  if cfg.compact_every > 0 && txn_no mod cfg.compact_every = 0 then begin
    (* Let grace periods lapse so compaction has limbo slots to take. *)
    for _ = 1 to 4 do
      ignore (Epoch.try_advance t.rt.Runtime.epoch : bool)
    done;
    let report = Smc.Collection.compact t.coll () in
    if not report.Compaction.aborted then t.stats.compactions <- t.stats.compactions + 1
  end

(* ---- Quiescent CSN-stamp invariants ----------------------------------- *)

(* Usable on any collection at a quiescent point (also from the stress
   harness): every valid slot's stamps are internally ordered and behind
   the frontier, and a view opened now is indistinguishable from the
   current-state enumeration. *)
let check_quiescent coll =
  let out = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let ctx = coll.Smc.Collection.ctx in
  let frontier = Context.csn_now ctx in
  let positions = Hashtbl.create 1024 in
  let n_valid = ref 0 in
  Smc.Collection.iter coll ~f:(fun blk slot ->
      incr n_valid;
      Hashtbl.replace positions (blk.Block.id, slot) ();
      let born = Bigarray.Array1.unsafe_get blk.Block.csn_born slot in
      let write = Bigarray.Array1.unsafe_get blk.Block.csn_write slot in
      if born < 0 || write < 0 then
        bad "slot (%d,%d): negative CSN stamp (born=%d write=%d)" blk.Block.id slot born write;
      if born > write then
        bad "slot (%d,%d): born CSN %d after last-write CSN %d" blk.Block.id slot born write;
      if write > frontier then
        bad "slot (%d,%d): write CSN %d ahead of the frontier %d" blk.Block.id slot write
          frontier);
  Smc.Collection.with_view coll (fun v ->
      if Smc.Collection.view_csn v < frontier then
        bad "view frontier %d behind quiescent CSN %d" (Smc.Collection.view_csn v) frontier;
      let n_view = ref 0 in
      Smc.Collection.view_iter v ~f:(fun blk slot ->
          incr n_view;
          if not (Hashtbl.mem positions (blk.Block.id, slot)) then
            bad "view at quiescent frontier sees slot (%d,%d) invisible to the current scan"
              blk.Block.id slot);
      if !n_view <> !n_valid then
        bad "view at quiescent frontier sees %d rows, current scan sees %d" !n_view !n_valid);
  List.rev !out

(* ---- Driver ----------------------------------------------------------- *)

let run t =
  if t.finished then invalid_arg "Txn_check.run: checker already finished";
  for txn_no = 1 to t.cfg.txns do
    drive_txn t ~txn_no
  done

let finish t =
  if not t.finished then begin
    t.finished <- true;
    List.iter (fun v -> viol t "final audit: %s" v)
      (Audit.check_runtime t.audit ~contexts:[ t.coll.Smc.Collection.ctx ]);
    List.iter (fun v -> viol t "final obs balance: %s" v)
      (Obs_check.check t.rt ~contexts:[ t.coll.Smc.Collection.ctx ]);
    List.iter (fun v -> viol t "final index sweep: %s" v)
      (Index_check.check [ t.index ]);
    List.iter (fun v -> viol t "final stamp sweep: %s" v) (check_quiescent t.coll);
    (* Whole-log recovery: the surviving state is exactly the model. *)
    Wal.flush t.wal;
    (match Persist_check.restore_verified ~wal:t.wal_path ~path:t.snap_path () with
    | exception Smc_persist.Pio.Corrupt msg -> viol t "final recovery: corrupt: %s" msg
    | restored, violations ->
      List.iter (fun v -> viol t "final recovery: %s" v) violations;
      let got = coll_dump restored.Snapshot.r_coll in
      let want = model_dump t in
      if got <> want then
        viol t "final recovery diverges from model (%s)" (diff_summary ~got ~want));
    Wal.close t.wal
  end;
  List.rev t.violations

let violations t = List.rev t.violations

let stats t =
  Printf.sprintf
    "commits=%d conflicts=%d aborts=%d bare=%d views=%d crash_images=%d recoveries=%d \
     compactions=%d live=%d"
    t.stats.commits t.stats.conflicts t.stats.aborts t.stats.bare_ops t.stats.views_checked
    t.stats.crash_images t.stats.crash_recoveries t.stats.compactions
    (Hashtbl.length t.live)

let run_violations ?config ?seed () =
  let t = create ?config ?seed () in
  run t;
  finish t
