(** Derived-invariant checks over the {!Smc_obs} counter layer.

    Cross-validates the runtime's event history (counters) against its
    structural state (blocks, queues, epoch manager): the live-object,
    limbo, reclamation-queue, quarantine, epoch and thread-slot balances.
    Complements {!Audit}, whose sweeps are point-in-time — a stall where
    events stop happening (recycles flat while fresh blocks climb) is
    visible here and invisible there. *)

val check : Smc_offheap.Runtime.t -> contexts:Smc_offheap.Context.t list -> string list
(** Violations found, empty when all balances hold. Call at a quiescent
    point. [contexts] is used for the reclamation-queue balance; the
    block-level balances sweep the runtime's registry directly. Returns []
    when [Smc_obs.enabled] is false — the balances integrate the runtime's
    whole history and only hold if counting was never switched off. *)

val check_exn : Smc_offheap.Runtime.t -> contexts:Smc_offheap.Context.t list -> unit
(** Raises {!Audit.Audit_failure} with the violations, if any. *)

val check_shard : Smc_obs.t -> string list
(** Balances over a shard coordinator's / serving front-end's own counter
    instance: every submitted sharded transaction commits or conflicts
    ([shard_txns = shard_txn_commits + shard_txn_conflicts], with
    multi-shard commits a subset of commits), and every decoded request
    frame is answered exactly one way ([srv_requests = srv_replies +
    srv_errors + srv_shed]). Call at a quiescent point; returns [] while
    {!Smc_obs.enabled} is off. *)
