(** Model-based stress testing.

    Runs a deterministic (seeded) random operation sequence against a real
    memory context and a plain OCaml-heap reference model in lock-step,
    checking single-operation postconditions as it goes, and a full
    invariant audit ({!Audit.check_runtime}) plus a whole-collection diff at
    every batch boundary. Single-domain; the multi-domain stress driver
    builds its own phased harness on the same context API. *)

open Smc_offheap

type config = {
  placement : Block.placement;
  mode : Context.mode;
  slots_per_block : int;
  reclaim_threshold : float;
  quarantine_limit : int option;  (** override [Runtime.inc_quarantine_limit] *)
}

val default_config : config
(** Row placement, indirect mode, 256 slots per block, 0.2 reclamation
    threshold (aggressive, to exercise recycling), no quarantine override. *)

val config_name : config -> string
(** e.g. ["row/indirect"] — for test labelling. *)

type stats = {
  mutable adds : int;
  mutable removes : int;
  mutable updates : int;
  mutable lookups : int;
  mutable stale_lookups : int;
  mutable queries : int;
  mutable advances : int;
  mutable compactions : int;
  mutable compactions_aborted : int;
  mutable objects_moved : int;
  mutable failed_allocs : int;  (** allocations killed by {!Chaos} *)
}

type t

val create : ?config:config -> seed:int64 -> unit -> t
(** Fresh runtime + context + auditor + model, all derived from [seed]. *)

val run : t -> ops:int -> batch_size:int -> unit
(** Applies [ops] random operations in batches, auditing and diffing after
    each batch. Violations accumulate; they never raise. *)

val apply_one : t -> unit
(** One random operation (exposed for custom drivers). *)

val op_add : t -> unit
val op_remove : t -> unit
(** Individual operations, exposed so chaos hooks can inject them at
    compaction phase boundaries. [op_add] treats {!Chaos.Injected_failure}
    from the allocator as a failed allocation and leaves the model
    unchanged. *)

val op_lookup : t -> unit
val op_compact : t -> unit

val check_agreement : t -> unit
(** Whole-collection diff: enumeration must yield exactly the model's live
    multiset. *)

val audit_now : t -> unit
(** Run the invariant audit immediately, folding violations into the model's
    list. *)

val violations : t -> string list
(** All recorded violations, oldest first; empty means the run was clean. *)

val stats : t -> stats
val live_count : t -> int
val context : t -> Context.t
val runtime : t -> Runtime.t
