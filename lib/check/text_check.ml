let check indexes = List.concat_map Smc_text.Sa_index.audit indexes

let check_exn indexes =
  match check indexes with [] -> () | vs -> raise (Audit.Audit_failure vs)
