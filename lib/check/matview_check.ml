(* See matview_check.mli. The per-view sweep lives with the view
   implementation ([Matview.audit] — it needs the internal tables); this
   module is the aggregation point the stress/bench gates call, shaped
   like the other checkers. *)

let check views = List.concat_map Smc_matview.Matview.audit views

let check_exn views =
  match check views with
  | [] -> ()
  | violations -> raise (Audit.Audit_failure violations)
