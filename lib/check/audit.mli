(** Whole-runtime invariant sweeps.

    An audit walks every registered block and every passed context and
    asserts that the independently-maintained pieces of manager state still
    agree:

    - slot-directory states vs. the per-block valid/limbo counters;
    - back-pointers vs. indirection entries (mutual agreement, injectivity,
      no reachable entry sitting in a free store, no duplicate free);
    - epoch safety: limbo removal stamps never ahead of the global epoch,
      reclamation-queue ready-epochs never beyond global + grace period,
      local epochs never ahead of global;
    - quarantine bounds: live incarnations strictly below the (mode-clamped)
      quarantine limit, directory quarantine counts consistent with the
      runtime counter;
    - incarnation monotonicity across successive audits (entry words and
      direct-mode slot words, keyed by never-reused block ids);
    - inventory: view/queue/local-block/queued-flag agreement, no live
      registered block missing from every audited view, compaction-phase
      flags at rest.

    Audits are valid only at quiescent points: no other domain mutating the
    runtime and the calling domain outside any critical section. Pass every
    context of the runtime to [check_runtime] — a live block in none of them
    is reported as a leak. *)

open Smc_offheap

type violation = string

exception Audit_failure of violation list

type t
(** Stateful auditor: remembers incarnation words, the global epoch and
    counters across sweeps to assert monotonicity. *)

val create : Runtime.t -> t

val check_runtime : t -> contexts:Context.t list -> violation list
(** Full sweep; [[]] means every invariant holds. *)

val check_exn : t -> contexts:Context.t list -> unit
(** Like {!check_runtime} but raises {!Audit_failure} on violations. *)

val check_once : Runtime.t -> contexts:Context.t list -> violation list
(** One-shot sweep without cross-audit monotonicity state. *)

val report : violation list -> string
(** Human-readable one-per-line rendering. *)
