(* Derived-invariant checks over the Obs counter layer.

   Where Audit proves structural state consistent with itself, these checks
   prove the *event history* consistent with the structural state: every
   allocation, retire, queue push and epoch advance since the runtime was
   created must balance against what the blocks, queues and epoch manager
   hold right now. A lifecycle bug that Audit's point-in-time sweep cannot
   see — e.g. the allocator minting fresh blocks while recycled blocks rot
   behind a dead queue head — shows up here as a counter imbalance.

   Same contract as Audit: call at a quiescent point (no other domain
   mutating, caller outside any critical section). The counters are summed
   across domain stripes, which is only exact when the writing domains are
   parked or joined. Because the balances integrate the runtime's whole
   history, they hold only when counters were enabled for the runtime's
   whole life; [check] returns no violations while [Smc_obs.enabled] is
   off. *)

open Smc_offheap

let vf out fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt

let check (rt : Runtime.t) ~(contexts : Context.t list) =
  if not !Smc_obs.enabled then []
  else begin
    let out = ref [] in
    let s = Smc_obs.snapshot rt.Runtime.obs in
    let g c = Smc_obs.get s c in
    let eq what lhs rhs =
      if lhs <> rhs then vf out "%s: counters say %d, runtime state says %d" what lhs rhs
    in
    (* Structural sums come from the registry, not the context list, so the
       block-level balances hold even when the caller audits a subset of the
       runtime's contexts. Dead blocks are excluded exactly as the context
       stats exclude them. *)
    let valid = ref 0 and limbo = ref 0 in
    Registry.iter_registered rt.Runtime.registry ~f:(fun (blk : Block.t) ->
        if not blk.Block.dead then begin
          valid := !valid + Atomic.get blk.Block.valid_count;
          limbo := !limbo + Atomic.get blk.Block.limbo_count
        end);
    eq "live-object balance (allocs - frees = sum of valid slots)"
      (g Smc_obs.c_allocs - g Smc_obs.c_frees)
      !valid;
    eq "limbo balance (retires - quarantines - recycles - drops = sum of limbo slots)"
      (g Smc_obs.c_retires - g Smc_obs.c_quarantines - g Smc_obs.c_slot_recycles
     - g Smc_obs.c_limbo_drops)
      !limbo;
    eq "free/retire agreement (every successful free retires exactly one slot)"
      (g Smc_obs.c_frees) (g Smc_obs.c_retires);
    eq "quarantine agreement (counter vs runtime quarantined_slots)"
      (g Smc_obs.c_quarantines)
      (Atomic.get rt.Runtime.quarantined_slots);
    (* Queue balance is per-context: every push is eventually popped by the
       allocator, drained as a dead head, or pulled out by the compactor —
       whatever remains must be sitting in a queue right now. A dead-head
       stall breaks this (pushes keep climbing, pops stay flat while the
       queue holds ready blocks and fresh_blocks grows). *)
    let queued =
      List.fold_left
        (fun acc ctx -> acc + List.length (Context.reclaim_queue_blocks ctx))
        0 contexts
    in
    eq "reclamation-queue balance (pushes - pops - dead drops - unqueues = queued blocks)"
      (g Smc_obs.c_rq_pushes - g Smc_obs.c_rq_pops - g Smc_obs.c_rq_dead_drops
     - g Smc_obs.c_rq_unqueues)
      queued;
    eq "epoch agreement (successful advances = global epoch)"
      (g Smc_obs.c_epoch_adv_ok)
      (Epoch.global rt.Runtime.epoch);
    eq "thread-slot balance (registers - releases = live threads)"
      (g Smc_obs.c_thread_registers - g Smc_obs.c_thread_releases)
      (Epoch.live_threads rt.Runtime.epoch);
    (* Every opened transaction ends exactly one way. At a quiescent point
       nothing is still staging, so the three outcomes partition begins. *)
    eq "transaction outcome balance (begins = commits + aborts + conflicts)"
      (g Smc_obs.c_txn_begins)
      (g Smc_obs.c_txn_commits + g Smc_obs.c_txn_aborts + g Smc_obs.c_txn_conflicts);
    eq "snapshot-view balance (opens - closes = runtime active_views)"
      (g Smc_obs.c_txn_views - g Smc_obs.c_txn_view_closes)
      (Atomic.get rt.Runtime.active_views);
    (* Vectorized filters partition their input: every row entering a
       filter either survives into the output selection or is cut. *)
    eq "vectorized-filter balance (rows in = rows kept + rows dropped)"
      (g Smc_obs.c_vec_filter_rows_in)
      (g Smc_obs.c_vec_filter_rows_kept + g Smc_obs.c_vec_filter_rows_dropped);
    (* Every compiled-plan request is resolved exactly one way: a fresh
       compile, a cache hit, or a fallback to the Fuse engine. *)
    eq "compiled-plan outcome balance (requests = compiles + cache hits + fallbacks)"
      (g Smc_obs.c_cg_requests)
      (g Smc_obs.c_cg_compiles + g Smc_obs.c_cg_cache_hits + g Smc_obs.c_cg_fallbacks);
    (* Text-index probes partition their candidate sightings: each one is
       emitted (hit), failed incarnation validation (stale), failed the
       text re-check (miss), or was suppressed as a duplicate. *)
    eq "text-probe candidate balance (candidates = hits + stale + misses + dups)"
      (g Smc_obs.c_txt_candidates)
      (g Smc_obs.c_txt_hits + g Smc_obs.c_txt_stale + g Smc_obs.c_txt_misses
     + g Smc_obs.c_txt_dups);
    (* Every materialized-view delta comes from exactly one mutation kind,
       and every view read is answered exactly one way: entirely from
       maintained state, or with a re-scan/re-derivation. *)
    eq "view delta balance (deltas applied = adds + removes + stores)"
      (g Smc_obs.c_mv_applied)
      (g Smc_obs.c_mv_adds + g Smc_obs.c_mv_removes + g Smc_obs.c_mv_stores);
    eq "view read balance (reads = hits + rescans)" (g Smc_obs.c_mv_reads)
      (g Smc_obs.c_mv_hits + g Smc_obs.c_mv_rescans);
    List.rev !out
  end

let check_exn rt ~contexts =
  match check rt ~contexts with
  | [] -> ()
  | violations -> raise (Audit.Audit_failure violations)

(* Balances over a shard coordinator's / serving front-end's own counter
   instance (not a runtime's). These are pure event-history partitions —
   every submitted sharded transaction and every decoded request frame ends
   exactly one way — so they need no structural state, just a quiescent
   point (no in-flight transaction or request while summing stripes). *)
let check_shard obs =
  if not !Smc_obs.enabled then []
  else begin
    let out = ref [] in
    let s = Smc_obs.snapshot obs in
    let g c = Smc_obs.get s c in
    let eq what lhs rhs =
      if lhs <> rhs then vf out "%s: %d vs %d" what lhs rhs
    in
    eq "sharded-transaction outcome balance (txns = commits + conflicts)"
      (g Smc_obs.c_shard_txns)
      (g Smc_obs.c_shard_txn_commits + g Smc_obs.c_shard_txn_conflicts);
    if g Smc_obs.c_shard_txn_multi > g Smc_obs.c_shard_txn_commits then
      vf out "multi-shard commits (%d) exceed total commits (%d)"
        (g Smc_obs.c_shard_txn_multi) (g Smc_obs.c_shard_txn_commits);
    eq "request outcome balance (requests = replies + errors + shed)"
      (g Smc_obs.c_srv_requests)
      (g Smc_obs.c_srv_replies + g Smc_obs.c_srv_errors + g Smc_obs.c_srv_shed);
    List.rev !out
  end
