(* Model-based stress testing.

   The reference model is a plain OCaml-heap collection with the same bag
   semantics as an SMC collection: a table of live handles, each carrying
   the packed reference the manager handed out and the payload last written
   through it. A deterministic op-sequence runner (seeded Prng) applies
   random add / remove / update / lookup / stale-lookup / query / epoch
   advance / compact operations to the model and the real memory context in
   lock-step, diffing observable state after every operation and running a
   full invariant audit plus a whole-collection diff after every batch.

   Objects have two int fields: [key] (the model handle, never 0) and
   [payload]. Writers store payload before key, so a concurrent enumerator
   that observes a non-zero key is guaranteed a complete object — the
   tolerance the multi-domain stress reader relies on. *)

open Smc_offheap

type config = {
  placement : Block.placement;
  mode : Context.mode;
  slots_per_block : int;
  reclaim_threshold : float;
  quarantine_limit : int option;
}

let default_config =
  {
    placement = Block.Row;
    mode = Context.Indirect;
    slots_per_block = 256;
    reclaim_threshold = 0.2;
    quarantine_limit = None;
  }

let config_name c =
  Printf.sprintf "%s/%s"
    (match c.placement with Block.Row -> "row" | Block.Columnar -> "columnar")
    (match c.mode with Context.Indirect -> "indirect" | Context.Direct -> "direct")

type stats = {
  mutable adds : int;
  mutable removes : int;
  mutable updates : int;
  mutable lookups : int;
  mutable stale_lookups : int;
  mutable queries : int;
  mutable advances : int;
  mutable compactions : int;
  mutable compactions_aborted : int;
  mutable objects_moved : int;
  mutable failed_allocs : int;
}

type t = {
  rt : Runtime.t;
  ctx : Context.t;
  audit : Audit.t;
  prng : Smc_util.Prng.t;
  live : (int, int * int) Hashtbl.t;  (* handle -> (packed ref, payload) *)
  mutable handles : int array;  (* live handles, dense prefix *)
  mutable n_live : int;
  pos : (int, int) Hashtbl.t;  (* handle -> index into [handles] *)
  dead : (int * int) array;  (* ring of (handle, stale packed ref) *)
  mutable n_dead : int;  (* total ever pushed *)
  mutable next_handle : int;
  key_word : int;
  payload_word : int;
  stats : stats;
  mutable violations : string list;
  mutable n_violations : int;
}

let max_recorded_violations = 200

let viol t fmt =
  Printf.ksprintf
    (fun s ->
      t.n_violations <- t.n_violations + 1;
      if t.n_violations <= max_recorded_violations then t.violations <- s :: t.violations)
    fmt

let layout =
  Layout.create ~name:"stress_obj" [ ("key", Layout.Int); ("payload", Layout.Int) ]

let create ?(config = default_config) ~seed () =
  let rt = Runtime.create () in
  (match config.quarantine_limit with None -> () | Some q -> rt.Runtime.inc_quarantine_limit <- q);
  let ctx =
    Context.create rt ~layout ~placement:config.placement ~mode:config.mode
      ~slots_per_block:config.slots_per_block ~reclaim_threshold:config.reclaim_threshold ()
  in
  {
    rt;
    ctx;
    audit = Audit.create rt;
    prng = Smc_util.Prng.create ~seed ();
    live = Hashtbl.create 4096;
    handles = Array.make 1024 0;
    n_live = 0;
    pos = Hashtbl.create 4096;
    dead = Array.make 1024 (0, Constants.null_ref);
    n_dead = 0;
    next_handle = 1;
    key_word = (Layout.field layout "key").Layout.word;
    payload_word = (Layout.field layout "payload").Layout.word;
    stats =
      {
        adds = 0;
        removes = 0;
        updates = 0;
        lookups = 0;
        stale_lookups = 0;
        queries = 0;
        advances = 0;
        compactions = 0;
        compactions_aborted = 0;
        objects_moved = 0;
        failed_allocs = 0;
      };
    violations = [];
    n_violations = 0;
  }

(* ---- model bookkeeping ---- *)

let push_handle t h =
  if t.n_live = Array.length t.handles then begin
    let bigger = Array.make (2 * t.n_live) 0 in
    Array.blit t.handles 0 bigger 0 t.n_live;
    t.handles <- bigger
  end;
  t.handles.(t.n_live) <- h;
  Hashtbl.replace t.pos h t.n_live;
  t.n_live <- t.n_live + 1

let drop_handle t h =
  let i = Hashtbl.find t.pos h in
  let last = t.handles.(t.n_live - 1) in
  t.handles.(i) <- last;
  Hashtbl.replace t.pos last i;
  t.n_live <- t.n_live - 1;
  Hashtbl.remove t.pos h

let push_dead t h r =
  t.dead.(t.n_dead mod Array.length t.dead) <- (h, r);
  t.n_dead <- t.n_dead + 1

let pick_live t = t.handles.(Smc_util.Prng.int t.prng t.n_live)

(* ---- operations ---- *)

let in_critical t f =
  let em = t.rt.Runtime.epoch in
  Epoch.enter_critical em;
  Fun.protect ~finally:(fun () -> Epoch.exit_critical em) f

let write_payload t blk slot payload = Block.set_word blk ~slot ~word:t.payload_word payload

let write_key t blk slot key = Block.set_word blk ~slot ~word:t.key_word key

let op_add t =
  match Context.alloc t.ctx with
  | exception Chaos.Injected_failure _ -> t.stats.failed_allocs <- t.stats.failed_allocs + 1
  | r ->
    let h = t.next_handle in
    t.next_handle <- h + 1;
    let payload = 1 + Smc_util.Prng.int t.prng 1_000_000 in
    in_critical t (fun () ->
        match Context.resolve t.ctx r with
        | None -> viol t "handle %d: freshly allocated reference does not resolve" h
        | Some (blk, slot) ->
          write_payload t blk slot payload;
          write_key t blk slot h);
    Hashtbl.replace t.live h (r, payload);
    push_handle t h;
    t.stats.adds <- t.stats.adds + 1

let op_remove t =
  if t.n_live > 0 then begin
    let h = pick_live t in
    let r, _ = Hashtbl.find t.live h in
    if not (Context.free t.ctx r) then
      viol t "handle %d: free of a live reference reported already-dead" h;
    Hashtbl.remove t.live h;
    drop_handle t h;
    push_dead t h r;
    t.stats.removes <- t.stats.removes + 1
  end

let op_update t =
  if t.n_live > 0 then begin
    let h = pick_live t in
    let r, _ = Hashtbl.find t.live h in
    let payload = 1 + Smc_util.Prng.int t.prng 1_000_000 in
    in_critical t (fun () ->
        match Context.resolve t.ctx r with
        | None -> viol t "handle %d: live reference does not resolve for update" h
        | Some (blk, slot) -> write_payload t blk slot payload);
    Hashtbl.replace t.live h (r, payload);
    t.stats.updates <- t.stats.updates + 1
  end

let op_lookup t =
  if t.n_live > 0 then begin
    let h = pick_live t in
    let r, expected = Hashtbl.find t.live h in
    in_critical t (fun () ->
        match Context.resolve t.ctx r with
        | None -> viol t "handle %d: live reference does not resolve" h
        | Some (blk, slot) ->
          let k = Block.get_word blk ~slot ~word:t.key_word in
          let p = Block.get_word blk ~slot ~word:t.payload_word in
          if k <> h then viol t "handle %d: key field reads %d" h k;
          if p <> expected then viol t "handle %d: payload %d, model says %d" h p expected);
    t.stats.lookups <- t.stats.lookups + 1
  end

let op_stale_lookup t =
  let n = min t.n_dead (Array.length t.dead) in
  if n > 0 then begin
    let h, r = t.dead.(Smc_util.Prng.int t.prng n) in
    in_critical t (fun () ->
        match Context.resolve t.ctx r with
        | None -> ()
        | Some _ -> viol t "handle %d: removed reference still resolves" h);
    if Context.free t.ctx r then
      viol t "handle %d: double free of a removed reference succeeded" h;
    t.stats.stale_lookups <- t.stats.stale_lookups + 1
  end

(* Full-collection diff: enumerate the context and require the exact live
   multiset of the model — every slot maps to a live handle with matching
   payload, no handle seen twice, none missing. *)
let check_agreement t =
  let seen = Hashtbl.create (max 16 t.n_live) in
  in_critical t (fun () ->
      Context.iter_valid t.ctx ~f:(fun blk slot ->
          let k = Block.get_word blk ~slot ~word:t.key_word in
          let p = Block.get_word blk ~slot ~word:t.payload_word in
          match Hashtbl.find_opt t.live k with
          | None -> viol t "enumeration yields key %d that the model does not contain" k
          | Some (_, expected) ->
            if p <> expected then
              viol t "enumeration: key %d has payload %d, model says %d" k p expected;
            if Hashtbl.mem seen k then viol t "enumeration yields key %d twice" k;
            Hashtbl.replace seen k ()));
  if Hashtbl.length seen <> t.n_live then
    Hashtbl.iter
      (fun h _ ->
        if not (Hashtbl.mem seen h) then viol t "live handle %d missing from enumeration" h)
      t.live;
  let vc = Context.valid_count t.ctx in
  if vc <> t.n_live then
    viol t "context valid_count %d but the model holds %d objects" vc t.n_live

let op_query t =
  check_agreement t;
  t.stats.queries <- t.stats.queries + 1

let op_advance t =
  ignore (Epoch.try_advance t.rt.Runtime.epoch : bool);
  t.stats.advances <- t.stats.advances + 1

let op_compact t =
  let threshold = if Smc_util.Prng.bool t.prng then 0.3 else 0.5 in
  (* Single-domain: phase waits succeed immediately, so a small spin budget
     suffices — and keeps chaos runs (starved epochs abort the pass) fast. *)
  let report = Compaction.run t.ctx ~occupancy_threshold:threshold ~max_wait_spins:10_000 () in
  t.stats.compactions <- t.stats.compactions + 1;
  t.stats.objects_moved <- t.stats.objects_moved + report.Compaction.objects_moved;
  if report.Compaction.aborted then
    t.stats.compactions_aborted <- t.stats.compactions_aborted + 1;
  (* Every live reference must survive a pass, wherever its object landed. *)
  Hashtbl.iter
    (fun h (r, expected) ->
      in_critical t (fun () ->
          match Context.resolve t.ctx r with
          | None -> viol t "handle %d: live reference lost by compaction" h
          | Some (blk, slot) ->
            let p = Block.get_word blk ~slot ~word:t.payload_word in
            if p <> expected then
              viol t "handle %d: payload %d after compaction, model says %d" h p expected))
    t.live

let apply_one t =
  let d = Smc_util.Prng.int t.prng 100 in
  if d < 30 then op_add t
  else if d < 52 then op_remove t
  else if d < 64 then op_update t
  else if d < 79 then op_lookup t
  else if d < 85 then op_stale_lookup t
  else if d < 93 then op_query t
  else if d < 98 then op_advance t
  else op_compact t

(* ---- batch runner ---- *)

let audit_now t =
  List.iter (fun v -> viol t "audit: %s" v) (Audit.check_runtime t.audit ~contexts:[ t.ctx ]);
  List.iter (fun v -> viol t "obs: %s" v) (Obs_check.check t.rt ~contexts:[ t.ctx ])

let run t ~ops ~batch_size =
  if batch_size <= 0 then invalid_arg "Model.run";
  let remaining = ref ops in
  while !remaining > 0 do
    let n = min batch_size !remaining in
    for _ = 1 to n do
      apply_one t
    done;
    remaining := !remaining - n;
    audit_now t;
    check_agreement t
  done

let violations t =
  let vs = List.rev t.violations in
  if t.n_violations > max_recorded_violations then
    vs @ [ Printf.sprintf "... and %d more violations" (t.n_violations - max_recorded_violations) ]
  else vs

let stats t = t.stats
let live_count t = t.n_live
let context t = t.ctx
let runtime t = t.rt
