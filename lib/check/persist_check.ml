open Smc_offheap
module Snapshot = Smc_persist.Snapshot
module Wal = Smc_persist.Wal
module BA1 = Bigarray.Array1

let sweep (r : Snapshot.restored) =
  let rt = r.Snapshot.r_rt in
  let ctx = r.Snapshot.r_coll.Smc.Collection.ctx in
  Audit.check_once rt ~contexts:[ ctx ]
  @ Obs_check.check rt ~contexts:[ ctx ]
  @ Index_check.check (List.map snd r.Snapshot.r_indexes)

let restore_verified ?wal ~path () =
  let r = Snapshot.restore ?wal ~path () in
  (r, sweep r)

(* Words excluded from the row comparison: foreign Ref fields always (the
   format nulls them), self Refs only in direct mode (block ids are
   reassigned on restore, so the raw words legitimately differ). *)
let masked_words (coll : Smc.Collection.t) =
  let layout = coll.Smc.Collection.layout in
  let direct = coll.Smc.Collection.ctx.Context.mode = Context.Direct in
  Array.to_list layout.Layout.fields
  |> List.filter_map (fun (f : Layout.field) ->
         match f.Layout.ftype with
         | Layout.Ref target ->
           if String.equal target layout.Layout.type_name then
             if direct then Some f.Layout.word else None
           else Some f.Layout.word
         | _ -> None)

(* Multiset of live rows keyed by raw slot words (masked words zeroed); in
   indirect mode the key is prefixed with the row's indirection entry and
   incarnation, making the comparison identity-exact, not just value-exact. *)
let population (coll : Smc.Collection.t) ~mask =
  let layout = coll.Smc.Collection.layout in
  let sw = layout.Layout.slot_words in
  let indirect = coll.Smc.Collection.ctx.Context.mode = Context.Indirect in
  let ind = coll.Smc.Collection.rt.Runtime.ind in
  let tbl = Hashtbl.create 4096 in
  let buf = Buffer.create 256 in
  Smc.Collection.iter coll ~f:(fun blk slot ->
      Buffer.clear buf;
      if indirect then begin
        let entry = BA1.get blk.Block.backptr slot in
        Buffer.add_string buf (string_of_int entry);
        Buffer.add_char buf '@';
        Buffer.add_string buf
          (string_of_int (Indirection.inc_word ind entry land Constants.inc_mask));
        Buffer.add_char buf '|'
      end;
      for w = 0 to sw - 1 do
        let v = if List.mem w mask then 0 else Block.get_word blk ~slot ~word:w in
        Buffer.add_string buf (string_of_int v);
        Buffer.add_char buf ','
      done;
      let k = Buffer.contents buf in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)));
  tbl

let diff_populations ~orig ~restored =
  let mismatches = ref 0 in
  let samples = ref [] in
  let note k have want =
    incr mismatches;
    if !mismatches <= 5 then
      samples :=
        Printf.sprintf
          "round-trip: row [%s] appears %d time(s) in the original but %d restored" k want
          have
        :: !samples
  in
  Hashtbl.iter
    (fun k want ->
      let have = Option.value ~default:0 (Hashtbl.find_opt restored k) in
      if have <> want then note k have want)
    orig;
  Hashtbl.iter (fun k have -> if not (Hashtbl.mem orig k) then note k have 0) restored;
  if !mismatches = 0 then []
  else
    Printf.sprintf "round-trip: %d row multiset mismatches" !mismatches
    :: List.rev !samples

let round_trip ?wal ?indexes ~path (coll : Smc.Collection.t) =
  let (_ : Snapshot.manifest * int) = Snapshot.write ?wal ?indexes ~path coll in
  (match wal with Some w -> Wal.flush w | None -> ());
  let r = Snapshot.restore ?wal:(Option.map Wal.path wal) ~path () in
  let mask = masked_words coll in
  let orig = population coll ~mask in
  let restored = population r.Snapshot.r_coll ~mask in
  diff_populations ~orig ~restored @ sweep r
