(** Quiescent-point invariant audit over materialized views.

    Same contract as {!Audit} and {!Index_check}: call while no other
    domain is mutating the backing collections. Each view's contribution
    table is cross-checked against the live filter-passing rows (catching
    mutation paths that missed or double-fired the maintenance hooks),
    group row counts against the contribution table, and the maintained
    result against a from-scratch evaluation of the reified plan. *)

val check : Smc_matview.Matview.t list -> string list
(** One message per violation across all given views; [[]] when clean. *)

val check_exn : Smc_matview.Matview.t list -> unit
(** Raises {!Audit.Audit_failure} with the violations, if any. *)
