(** TPC-H refresh streams (§7, Figure 8).

    Two stream kinds run continuously with equal frequency: an insert stream
    adds fresh lineitem objects (0.1% of the initial population per stream),
    and a remove stream enumerates the lineitem collection once and removes
    the 0.1% of objects whose orderkey is in a provided hash set. The [ops]
    record abstracts the backing collection so the same driver measures
    SMCs, vectors and concurrent dictionaries. *)

type ops = {
  kind : string;
  insert_batch : count:int -> unit;
  remove_batch : keys:(int, unit) Hashtbl.t -> int;
      (** single enumeration; returns number removed *)
  size : unit -> int;
  random_orderkey : Smc_util.Prng.t -> int;
      (** an orderkey from the initial population, for building remove sets *)
}

val smc_ops : Db_smc.t -> Row.dataset -> ops
(** Thread-safe. *)

val smc_txn_ops : Db_smc.t -> Row.dataset -> ops
(** Like {!smc_ops}, but each refresh half runs as one atomic multi-op
    transaction ([Collection.transact], see docs/transactions.md): a crash
    replays all of a half-stream or none of it, and snapshot views never
    observe a half-applied stream. When two remove streams race for the
    same victims, the conflict loser falls back to bare removes.
    Thread-safe. *)

val vector_ops : Row.dataset -> ops
(** Backed by {!Smc_managed.Vector}; NOT thread-safe — callers serialise
    (the benchmark wraps it in a mutex, as using [List<T>] from multiple
    threads would require). *)

val dict_ops : Row.dataset -> ops
(** Backed by {!Smc_managed.Concurrent_dictionary}; thread-safe. *)

val fresh_lineitem_row : Smc_util.Prng.t -> Row.dataset -> Row.lineitem
(** A synthetic insert-stream lineitem referencing random existing rows. *)

val run_stream_pair : ops -> prng:Smc_util.Prng.t -> batch:int -> unit
(** One insert stream followed by one remove stream of [batch] objects
    each — the unit of work Figure 8 counts per minute. *)
