module C = Smc.Collection
module F = Smc.Field
module D = Smc_decimal.Decimal
module Block = Smc_offheap.Block
module BA1 = Bigarray.Array1
module Par_scan = Smc_parallel.Par_scan

let ends_with ~suffix s =
  let n = String.length suffix and m = String.length s in
  m >= n && String.sub s (m - n) n = suffix

(* Reference access for the safe variant: build the application-level
   reference (back-pointer → ObjRef) and dereference it with the full
   incarnation check — the path managed-equivalent compiled code takes. *)
let safe_follow field ~target blk slot =
  let r = F.get_ref field ~target blk slot in
  C.deref_opt target r

(* Word-address helpers for the unsafe (raw block access) variants. Row
   placement resolves a slot's base once; columnar placement resolves a
   plane base per field. *)
let word_offset (f : Smc_offheap.Layout.field) = f.Smc_offheap.Layout.word

module Context = Smc_offheap.Context

(* Hoisted per-query target descriptors for the unsafe variants: the target
   collection's slot width and placement are compile-time constants of the
   generated query, so a resolved (block, slot) location reads fields with
   two loads instead of going through the generic accessor. *)
type target = { tctx : Context.t; tsw : int; trow : bool }

let target (c : C.t) =
  {
    tctx = c.C.ctx;
    tsw = c.C.layout.Smc_offheap.Layout.slot_words;
    trow = c.C.ctx.Context.placement = Block.Row;
  }

let resolve_in t w =
  if w < 0 then -1
  else
    match t.tctx.Context.mode with
    | Context.Indirect -> Context.resolve_loc t.tctx w
    | Context.Direct -> Context.resolve_direct_loc t.tctx w

let tword t blk slot off =
  if t.trow then BA1.unsafe_get blk.Block.data ((slot * t.tsw) + off)
  else BA1.unsafe_get blk.Block.data ((off * blk.Block.nslots) + slot)

let tblock t loc = Context.block_of_loc t.tctx loc


type q1_acc = {
  mutable a_qty : D.t;
  mutable a_base : D.t;
  mutable a_disc_price : D.t;
  mutable a_charge : D.t;
  mutable a_disc : D.t;
  mutable a_count : int;
}

let q1_row rf ls ~qty ~base ~disc_price ~charge ~disc ~count =
  {
    Results.q1_returnflag = rf;
    q1_linestatus = ls;
    sum_qty = qty;
    sum_base_price = base;
    sum_disc_price = disc_price;
    sum_charge = charge;
    avg_qty = D.avg ~sum:qty ~count;
    avg_price = D.avg ~sum:base ~count;
    avg_disc = D.avg ~sum:disc ~count;
    count_order = count;
  }

(* ------------------------------------------------------------------ *)
(* Q1 — safe: managed-style hash aggregation over field accessors. *)

let q1_safe (db : Db_smc.t) cutoff =
  let lf = db.Db_smc.lf in
  let groups : (char * char, q1_acc) Hashtbl.t = Hashtbl.create 8 in
  C.iter db.Db_smc.lineitems ~f:(fun blk slot ->
      if F.get_date lf.Db_smc.l_shipdate blk slot <= cutoff then begin
        let key =
          (F.get_char lf.Db_smc.l_returnflag blk slot, F.get_char lf.Db_smc.l_linestatus blk slot)
        in
        let acc =
          match Hashtbl.find_opt groups key with
          | Some acc -> acc
          | None ->
            let acc =
              {
                a_qty = D.zero;
                a_base = D.zero;
                a_disc_price = D.zero;
                a_charge = D.zero;
                a_disc = D.zero;
                a_count = 0;
              }
            in
            Hashtbl.add groups key acc;
            acc
        in
        let price = F.get_dec lf.Db_smc.l_extendedprice blk slot in
        let disc = F.get_dec lf.Db_smc.l_discount blk slot in
        let disc_price = D.mul price (D.sub D.one disc) in
        acc.a_qty <- D.add acc.a_qty (F.get_dec lf.Db_smc.l_quantity blk slot);
        acc.a_base <- D.add acc.a_base price;
        acc.a_disc_price <- D.add acc.a_disc_price disc_price;
        acc.a_charge <-
          D.add acc.a_charge
            (D.mul disc_price (D.add D.one (F.get_dec lf.Db_smc.l_tax blk slot)));
        acc.a_disc <- D.add acc.a_disc disc;
        acc.a_count <- acc.a_count + 1
      end);
  Results.sort_q1
    (Hashtbl.fold
       (fun (rf, ls) acc rows ->
         q1_row rf ls ~qty:acc.a_qty ~base:acc.a_base ~disc_price:acc.a_disc_price
           ~charge:acc.a_charge ~disc:acc.a_disc ~count:acc.a_count
         :: rows)
       groups [])

(* Q1 — unsafe: raw block access with all offsets hoisted out of the slot
   loop, group accumulators in a pre-allocated flat region indexed by the
   (returnflag, linestatus) byte pair, decimal math in place. *)
let q1_unsafe (db : Db_smc.t) cutoff =
  let lf = db.Db_smc.lf in
  let o_ship = word_offset lf.Db_smc.l_shipdate
  and o_rf = word_offset lf.Db_smc.l_returnflag
  and o_ls = word_offset lf.Db_smc.l_linestatus
  and o_qty = word_offset lf.Db_smc.l_quantity
  and o_price = word_offset lf.Db_smc.l_extendedprice
  and o_disc = word_offset lf.Db_smc.l_discount
  and o_tax = word_offset lf.Db_smc.l_tax in
  let nslots = 512 in
  let qty = Array.make nslots 0
  and base = Array.make nslots 0
  and disc_price = Array.make nslots 0
  and charge = Array.make nslots 0
  and disc = Array.make nslots 0
  and count = Array.make nslots 0 in
  let consume g price d q tax =
    let dp = D.mul price (D.sub D.one d) in
    qty.(g) <- qty.(g) + q;
    base.(g) <- base.(g) + price;
    disc_price.(g) <- disc_price.(g) + dp;
    charge.(g) <- charge.(g) + D.mul dp (D.add D.one tax);
    disc.(g) <- disc.(g) + d;
    count.(g) <- count.(g) + 1
  in
  C.iter_scan db.Db_smc.lineitems ~on_block:(fun blk ->
      let data = blk.Block.data in
      match blk.Block.placement with
      | Block.Row ->
        let sw = blk.Block.layout.Smc_offheap.Layout.slot_words in
        fun slot ->
          let b = slot * sw in
          if BA1.unsafe_get data (b + o_ship) <= cutoff then begin
            let g =
              ((BA1.unsafe_get data (b + o_rf) land 0x7F) lsl 1)
              lor (BA1.unsafe_get data (b + o_ls) land 1)
            in
            consume g
              (BA1.unsafe_get data (b + o_price))
              (BA1.unsafe_get data (b + o_disc))
              (BA1.unsafe_get data (b + o_qty))
              (BA1.unsafe_get data (b + o_tax))
          end
      | Block.Columnar ->
        let n = blk.Block.nslots in
        let b_ship = o_ship * n
        and b_rf = o_rf * n
        and b_ls = o_ls * n
        and b_qty = o_qty * n
        and b_price = o_price * n
        and b_disc = o_disc * n
        and b_tax = o_tax * n in
        fun slot ->
          if BA1.unsafe_get data (b_ship + slot) <= cutoff then begin
            let g =
              ((BA1.unsafe_get data (b_rf + slot) land 0x7F) lsl 1)
              lor (BA1.unsafe_get data (b_ls + slot) land 1)
            in
            consume g
              (BA1.unsafe_get data (b_price + slot))
              (BA1.unsafe_get data (b_disc + slot))
              (BA1.unsafe_get data (b_qty + slot))
              (BA1.unsafe_get data (b_tax + slot))
          end);
  let rows = ref [] in
  for g = nslots - 1 downto 0 do
    if count.(g) > 0 then
      rows :=
        q1_row (Char.chr (g lsr 1))
          (if g land 1 = 1 then 'O' else 'F')
          ~qty:qty.(g) ~base:base.(g) ~disc_price:disc_price.(g) ~charge:charge.(g)
          ~disc:disc.(g) ~count:count.(g)
        :: !rows
  done;
  Results.sort_q1 !rows

let q1 ?(unsafe = false) db =
  let cutoff =
    Smc_util.Date.add_days (Smc_util.Date.of_ymd 1998 12 1) (-Results.q1_delta_days)
  in
  if unsafe then q1_unsafe db cutoff else q1_safe db cutoff

(* Q1 — parallel: the unsafe kernel run over a block-partitioned parallel
   scan. Every worker domain folds into its own flat accumulator region —
   no sharing, no atomics on the hot path — and the regions are merged
   element-wise on the calling domain once all workers finished. Blocks are
   claimed through the §5.2 group protocol and each is scanned inside its
   own epoch critical section. *)

let q1_groups = 512

type q1_flat = {
  p_qty : int array;
  p_base : int array;
  p_disc_price : int array;
  p_charge : int array;
  p_disc : int array;
  p_count : int array;
}

let q1_flat_make () =
  {
    p_qty = Array.make q1_groups 0;
    p_base = Array.make q1_groups 0;
    p_disc_price = Array.make q1_groups 0;
    p_charge = Array.make q1_groups 0;
    p_disc = Array.make q1_groups 0;
    p_count = Array.make q1_groups 0;
  }

let q1_flat_merge a b =
  for g = 0 to q1_groups - 1 do
    a.p_qty.(g) <- a.p_qty.(g) + b.p_qty.(g);
    a.p_base.(g) <- a.p_base.(g) + b.p_base.(g);
    a.p_disc_price.(g) <- a.p_disc_price.(g) + b.p_disc_price.(g);
    a.p_charge.(g) <- a.p_charge.(g) + b.p_charge.(g);
    a.p_disc.(g) <- a.p_disc.(g) + b.p_disc.(g);
    a.p_count.(g) <- a.p_count.(g) + b.p_count.(g)
  done;
  a

let q1_par ?pool ?domains (db : Db_smc.t) =
  let cutoff =
    Smc_util.Date.add_days (Smc_util.Date.of_ymd 1998 12 1) (-Results.q1_delta_days)
  in
  let lf = db.Db_smc.lf in
  let o_ship = word_offset lf.Db_smc.l_shipdate
  and o_rf = word_offset lf.Db_smc.l_returnflag
  and o_ls = word_offset lf.Db_smc.l_linestatus
  and o_qty = word_offset lf.Db_smc.l_quantity
  and o_price = word_offset lf.Db_smc.l_extendedprice
  and o_disc = word_offset lf.Db_smc.l_discount
  and o_tax = word_offset lf.Db_smc.l_tax in
  let acc =
    Par_scan.fold_hoisted_par ?pool ?domains db.Db_smc.lineitems.C.ctx ~init:q1_flat_make
      ~on_block:(fun acc blk ->
        let data = blk.Block.data in
        let consume g price d q tax =
          let dp = D.mul price (D.sub D.one d) in
          acc.p_qty.(g) <- acc.p_qty.(g) + q;
          acc.p_base.(g) <- acc.p_base.(g) + price;
          acc.p_disc_price.(g) <- acc.p_disc_price.(g) + dp;
          acc.p_charge.(g) <- acc.p_charge.(g) + D.mul dp (D.add D.one tax);
          acc.p_disc.(g) <- acc.p_disc.(g) + d;
          acc.p_count.(g) <- acc.p_count.(g) + 1
        in
        match blk.Block.placement with
        | Block.Row ->
          let sw = blk.Block.layout.Smc_offheap.Layout.slot_words in
          fun slot ->
            let b = slot * sw in
            if BA1.unsafe_get data (b + o_ship) <= cutoff then begin
              let g =
                ((BA1.unsafe_get data (b + o_rf) land 0x7F) lsl 1)
                lor (BA1.unsafe_get data (b + o_ls) land 1)
              in
              consume g
                (BA1.unsafe_get data (b + o_price))
                (BA1.unsafe_get data (b + o_disc))
                (BA1.unsafe_get data (b + o_qty))
                (BA1.unsafe_get data (b + o_tax))
            end
        | Block.Columnar ->
          let n = blk.Block.nslots in
          let b_ship = o_ship * n
          and b_rf = o_rf * n
          and b_ls = o_ls * n
          and b_qty = o_qty * n
          and b_price = o_price * n
          and b_disc = o_disc * n
          and b_tax = o_tax * n in
          fun slot ->
            if BA1.unsafe_get data (b_ship + slot) <= cutoff then begin
              let g =
                ((BA1.unsafe_get data (b_rf + slot) land 0x7F) lsl 1)
                lor (BA1.unsafe_get data (b_ls + slot) land 1)
              in
              consume g
                (BA1.unsafe_get data (b_price + slot))
                (BA1.unsafe_get data (b_disc + slot))
                (BA1.unsafe_get data (b_qty + slot))
                (BA1.unsafe_get data (b_tax + slot))
            end)
      ~combine:q1_flat_merge
  in
  let rows = ref [] in
  for g = q1_groups - 1 downto 0 do
    if acc.p_count.(g) > 0 then
      rows :=
        q1_row (Char.chr (g lsr 1))
          (if g land 1 = 1 then 'O' else 'F')
          ~qty:acc.p_qty.(g) ~base:acc.p_base.(g) ~disc_price:acc.p_disc_price.(g)
          ~charge:acc.p_charge.(g) ~disc:acc.p_disc.(g) ~count:acc.p_count.(g)
        :: !rows
  done;
  Results.sort_q1 !rows

(* ------------------------------------------------------------------ *)
(* Q2 — minimum-cost supplier. The scan is tiny relative to lineitem
   queries; both variants share structure, differing in join mechanics. *)

let q2 ?(unsafe = false) (db : Db_smc.t) =
  let psf = db.Db_smc.psf
  and pf = db.Db_smc.pf
  and sf_ = db.Db_smc.sf_
  and nf = db.Db_smc.nf
  and rf = db.Db_smc.rf in
  (* Pre-resolve the one EUROPE region object so the supplier filter is a
     location comparison, then evaluate eligibility per partsupp. *)
  let follow field ~target blk slot =
    if unsafe then begin
      let loc = F.follow_loc field ~target blk slot in
      if loc < 0 then None else Some (C.loc_block target loc, C.loc_slot loc)
    end
    else safe_follow field ~target blk slot
  in
  let region_eq =
    if unsafe then F.string_eq rf.Db_smc.r_name Results.q2_region
    else fun rb rs -> F.get_string rf.Db_smc.r_name rb rs = Results.q2_region
  in
  let eligible blk slot =
    match follow psf.Db_smc.ps_part ~target:db.Db_smc.parts blk slot with
    | None -> None
    | Some (pb, ps_) ->
      if
        F.get_int pf.Db_smc.p_size pb ps_ = Results.q2_size
        && ends_with ~suffix:Results.q2_type_suffix (F.get_string pf.Db_smc.p_type pb ps_)
      then begin
        match follow psf.Db_smc.ps_supplier ~target:db.Db_smc.suppliers blk slot with
        | None -> None
        | Some (sb, ss) -> (
          match follow sf_.Db_smc.s_nation ~target:db.Db_smc.nations sb ss with
          | None -> None
          | Some (nb, ns) -> (
            match follow nf.Db_smc.n_region ~target:db.Db_smc.regions nb ns with
            | None -> None
            | Some (rb, rs) ->
              if region_eq rb rs then
                Some
                  ( F.get_int pf.Db_smc.p_partkey pb ps_,
                    F.get_dec psf.Db_smc.ps_supplycost blk slot,
                    (sb, ss),
                    (pb, ps_),
                    (nb, ns) )
              else None))
      end
      else None
  in
  let min_cost : (int, D.t) Hashtbl.t = Hashtbl.create 64 in
  C.with_read db.Db_smc.partsupps (fun () ->
      C.iter db.Db_smc.partsupps ~f:(fun blk slot ->
          match eligible blk slot with
          | None -> ()
          | Some (pk, cost, _, _, _) -> (
            match Hashtbl.find_opt min_cost pk with
            | Some c when D.compare c cost <= 0 -> ()
            | _ -> Hashtbl.replace min_cost pk cost));
      let rows = ref [] in
      C.iter db.Db_smc.partsupps ~f:(fun blk slot ->
          match eligible blk slot with
          | None -> ()
          | Some (pk, cost, (sb, ss), (pb, ps_), (nb, ns)) -> (
            match Hashtbl.find_opt min_cost pk with
            | Some c when D.equal c cost ->
              rows :=
                {
                  Results.q2_acctbal = F.get_dec sf_.Db_smc.s_acctbal sb ss;
                  q2_s_name = F.get_string sf_.Db_smc.s_name sb ss;
                  q2_n_name = F.get_string nf.Db_smc.n_name nb ns;
                  q2_partkey = pk;
                  q2_mfgr = F.get_string pf.Db_smc.p_mfgr pb ps_;
                }
                :: !rows
            | _ -> ()));
      List.filteri (fun i _ -> i < 100) (Results.sort_q2 !rows))

(* ------------------------------------------------------------------ *)
(* Q3 — shipping priority *)

type q3_acc = {
  g_orderkey : int;
  g_orderdate : Smc_util.Date.t;
  g_shippriority : int;
  mutable g_revenue : D.t;
}

let q3_safe (db : Db_smc.t) =
  let lf = db.Db_smc.lf and orf = db.Db_smc.orf and cf = db.Db_smc.cf in
  let groups : (int, q3_acc) Hashtbl.t = Hashtbl.create 1024 in
  C.with_read db.Db_smc.lineitems (fun () ->
      C.iter db.Db_smc.lineitems ~f:(fun blk slot ->
          if F.get_date lf.Db_smc.l_shipdate blk slot > Results.q3_date then begin
            match safe_follow lf.Db_smc.l_order ~target:db.Db_smc.orders blk slot with
            | None -> ()
            | Some (ob, os) ->
              if F.get_date orf.Db_smc.o_orderdate ob os < Results.q3_date then begin
                match safe_follow orf.Db_smc.o_customer ~target:db.Db_smc.customers ob os with
                | None -> ()
                | Some (cb, cs) ->
                  if F.get_string cf.Db_smc.c_mktsegment cb cs = Results.q3_segment then begin
                    let orderkey = F.get_int orf.Db_smc.o_orderkey ob os in
                    let acc =
                      match Hashtbl.find_opt groups orderkey with
                      | Some acc -> acc
                      | None ->
                        let acc =
                          {
                            g_orderkey = orderkey;
                            g_orderdate = F.get_date orf.Db_smc.o_orderdate ob os;
                            g_shippriority = F.get_int orf.Db_smc.o_shippriority ob os;
                            g_revenue = D.zero;
                          }
                        in
                        Hashtbl.add groups orderkey acc;
                        acc
                    in
                    acc.g_revenue <-
                      D.add acc.g_revenue
                        (D.mul
                           (F.get_dec lf.Db_smc.l_extendedprice blk slot)
                           (D.sub D.one (F.get_dec lf.Db_smc.l_discount blk slot)))
                  end
              end
          end));
  groups

let q3_unsafe (db : Db_smc.t) =
  let lf = db.Db_smc.lf and orf = db.Db_smc.orf and cf = db.Db_smc.cf in
  let orders = db.Db_smc.orders and customers = db.Db_smc.customers in
  let segment_eq = F.string_eq cf.Db_smc.c_mktsegment Results.q3_segment in
  let o_ship = word_offset lf.Db_smc.l_shipdate
  and o_lorder = word_offset lf.Db_smc.l_order
  and o_price = word_offset lf.Db_smc.l_extendedprice
  and o_disc = word_offset lf.Db_smc.l_discount in
  let o_odate = word_offset orf.Db_smc.o_orderdate
  and o_okey = word_offset orf.Db_smc.o_orderkey
  and o_oprio = word_offset orf.Db_smc.o_shippriority
  and o_ocust = word_offset orf.Db_smc.o_customer in
  let t_ord = target orders and t_cust = target customers in
  let groups : (int, q3_acc) Hashtbl.t = Hashtbl.create 1024 in
  C.with_read db.Db_smc.lineitems (fun () ->
      C.iter_scan db.Db_smc.lineitems ~on_block:(fun blk ->
          let data = blk.Block.data in
          let row = blk.Block.placement = Block.Row in
          let sw = blk.Block.layout.Smc_offheap.Layout.slot_words in
          let n = blk.Block.nslots in
          let idx off slot = if row then (slot * sw) + off else (off * n) + slot in
          fun slot ->
            if BA1.unsafe_get data (idx o_ship slot) > Results.q3_date then begin
              let oloc = resolve_in t_ord (BA1.unsafe_get data (idx o_lorder slot)) in
              if oloc >= 0 then begin
                let ob = tblock t_ord oloc and os = C.loc_slot oloc in
                if tword t_ord ob os o_odate < Results.q3_date then begin
                  let cloc = resolve_in t_cust (tword t_ord ob os o_ocust) in
                  if cloc >= 0 then begin
                    let cb = tblock t_cust cloc and cs = C.loc_slot cloc in
                    if segment_eq cb cs then begin
                      let orderkey = tword t_ord ob os o_okey in
                      let acc =
                        match Hashtbl.find_opt groups orderkey with
                        | Some acc -> acc
                        | None ->
                          let acc =
                            {
                              g_orderkey = orderkey;
                              g_orderdate = tword t_ord ob os o_odate;
                              g_shippriority = tword t_ord ob os o_oprio;
                              g_revenue = D.zero;
                            }
                          in
                          Hashtbl.add groups orderkey acc;
                          acc
                      in
                      acc.g_revenue <-
                        D.add acc.g_revenue
                          (D.mul
                             (BA1.unsafe_get data (idx o_price slot))
                             (D.sub D.one (BA1.unsafe_get data (idx o_disc slot))))
                    end
                  end
                end
              end
            end));
  groups

let q3 ?(unsafe = false) (db : Db_smc.t) =
  let groups = if unsafe then q3_unsafe db else q3_safe db in
  let rows =
    Hashtbl.fold
      (fun _ acc rows ->
        {
          Results.q3_orderkey = acc.g_orderkey;
          q3_revenue = acc.g_revenue;
          q3_orderdate = acc.g_orderdate;
          q3_shippriority = acc.g_shippriority;
        }
        :: rows)
      groups []
  in
  List.filteri (fun i _ -> i < 10) (Results.sort_q3 rows)

(* ------------------------------------------------------------------ *)
(* Q4 — order priority checking *)

let q4 ?(unsafe = false) (db : Db_smc.t) =
  let lf = db.Db_smc.lf and orf = db.Db_smc.orf in
  let orders = db.Db_smc.orders in
  let lo = Results.q4_date in
  let hi = Smc_util.Date.add_months lo 3 in
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let counts : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let record ob os =
    let odate = F.get_date orf.Db_smc.o_orderdate ob os in
    if odate >= lo && odate < hi then begin
      let orderkey = F.get_int orf.Db_smc.o_orderkey ob os in
      if not (Hashtbl.mem seen orderkey) then begin
        Hashtbl.add seen orderkey ();
        let p = F.get_string orf.Db_smc.o_orderpriority ob os in
        match Hashtbl.find_opt counts p with
        | Some r -> incr r
        | None -> Hashtbl.add counts p (ref 1)
      end
    end
  in
  C.with_read db.Db_smc.lineitems (fun () ->
      if unsafe then begin
        let o_commit = word_offset lf.Db_smc.l_commitdate
        and o_receipt = word_offset lf.Db_smc.l_receiptdate
        and o_lorder = word_offset lf.Db_smc.l_order in
        let o_odate = word_offset orf.Db_smc.o_orderdate
        and o_okey = word_offset orf.Db_smc.o_orderkey in
        let t_ord = target orders in
        C.iter_scan db.Db_smc.lineitems ~on_block:(fun blk ->
            let data = blk.Block.data in
            let row = blk.Block.placement = Block.Row in
            let sw = blk.Block.layout.Smc_offheap.Layout.slot_words in
            let n = blk.Block.nslots in
            let idx off slot = if row then (slot * sw) + off else (off * n) + slot in
            fun slot ->
              if BA1.unsafe_get data (idx o_commit slot) < BA1.unsafe_get data (idx o_receipt slot)
              then begin
                let oloc = resolve_in t_ord (BA1.unsafe_get data (idx o_lorder slot)) in
                if oloc >= 0 then begin
                  let ob = tblock t_ord oloc and os = C.loc_slot oloc in
                  let odate = tword t_ord ob os o_odate in
                  if odate >= lo && odate < hi then begin
                    let orderkey = tword t_ord ob os o_okey in
                    if not (Hashtbl.mem seen orderkey) then begin
                      Hashtbl.add seen orderkey ();
                      let p = F.get_string orf.Db_smc.o_orderpriority ob os in
                      match Hashtbl.find_opt counts p with
                      | Some r -> incr r
                      | None -> Hashtbl.add counts p (ref 1)
                    end
                  end
                end
              end)
      end
      else
        C.iter db.Db_smc.lineitems ~f:(fun blk slot ->
            if
              F.get_date lf.Db_smc.l_commitdate blk slot
              < F.get_date lf.Db_smc.l_receiptdate blk slot
            then begin
              match safe_follow lf.Db_smc.l_order ~target:orders blk slot with
              | None -> ()
              | Some (ob, os) -> record ob os
            end));
  Results.sort_q4
    (Hashtbl.fold
       (fun p r rows -> { Results.q4_priority = p; q4_count = !r } :: rows)
       counts [])

(* ------------------------------------------------------------------ *)
(* Q5 — local supplier volume *)

let q5 ?(unsafe = false) (db : Db_smc.t) =
  let lf = db.Db_smc.lf
  and orf = db.Db_smc.orf
  and cf = db.Db_smc.cf
  and sf_ = db.Db_smc.sf_
  and nf = db.Db_smc.nf
  and rf = db.Db_smc.rf in
  let orders = db.Db_smc.orders
  and customers = db.Db_smc.customers
  and suppliers = db.Db_smc.suppliers
  and nations = db.Db_smc.nations
  and regions = db.Db_smc.regions in
  let lo = Results.q5_date in
  let hi = Smc_util.Date.add_months lo 12 in
  let revenue : (string, D.t ref) Hashtbl.t = Hashtbl.create 32 in
  let add_revenue name amount =
    match Hashtbl.find_opt revenue name with
    | Some r -> r := D.add !r amount
    | None -> Hashtbl.add revenue name (ref amount)
  in
  C.with_read db.Db_smc.lineitems (fun () ->
      if unsafe then begin
        let o_price = word_offset lf.Db_smc.l_extendedprice
        and o_disc = word_offset lf.Db_smc.l_discount
        and o_lorder = word_offset lf.Db_smc.l_order
        and o_lsupp = word_offset lf.Db_smc.l_supplier in
        let o_odate = word_offset orf.Db_smc.o_orderdate
        and o_ocust = word_offset orf.Db_smc.o_customer
        and o_snation = word_offset sf_.Db_smc.s_nation
        and o_cnation = word_offset cf.Db_smc.c_nation
        and o_nregion = word_offset nf.Db_smc.n_region
        and o_nkey = word_offset nf.Db_smc.n_nationkey in
        let t_ord = target orders
        and t_cust = target customers
        and t_supp = target suppliers
        and t_nat = target nations
        and t_reg = target regions in
        let region_eq = F.string_eq rf.Db_smc.r_name Results.q5_region in
        C.iter_scan db.Db_smc.lineitems ~on_block:(fun blk ->
            let data = blk.Block.data in
            let row = blk.Block.placement = Block.Row in
            let sw = blk.Block.layout.Smc_offheap.Layout.slot_words in
            let n = blk.Block.nslots in
            let idx off slot = if row then (slot * sw) + off else (off * n) + slot in
            fun slot ->
              let oloc = resolve_in t_ord (BA1.unsafe_get data (idx o_lorder slot)) in
              if oloc >= 0 then begin
                let ob = tblock t_ord oloc and os = C.loc_slot oloc in
                let odate = tword t_ord ob os o_odate in
                if odate >= lo && odate < hi then begin
                  let sloc = resolve_in t_supp (BA1.unsafe_get data (idx o_lsupp slot)) in
                  if sloc >= 0 then begin
                    let sb = tblock t_supp sloc and ss = C.loc_slot sloc in
                    let nloc = resolve_in t_nat (tword t_supp sb ss o_snation) in
                    if nloc >= 0 then begin
                      let nb = tblock t_nat nloc and ns = C.loc_slot nloc in
                      let rloc = resolve_in t_reg (tword t_nat nb ns o_nregion) in
                      if rloc >= 0 then begin
                        let rb = tblock t_reg rloc and rs = C.loc_slot rloc in
                        if region_eq rb rs then begin
                          let cloc = resolve_in t_cust (tword t_ord ob os o_ocust) in
                          if cloc >= 0 then begin
                            let cb = tblock t_cust cloc and cs = C.loc_slot cloc in
                            let cnloc = resolve_in t_nat (tword t_cust cb cs o_cnation) in
                            if
                              cnloc >= 0
                              && tword t_nat (tblock t_nat cnloc) (C.loc_slot cnloc) o_nkey
                                 = tword t_nat nb ns o_nkey
                            then
                              add_revenue
                                (F.get_string nf.Db_smc.n_name nb ns)
                                (D.mul
                                   (BA1.unsafe_get data (idx o_price slot))
                                   (D.sub D.one (BA1.unsafe_get data (idx o_disc slot))))
                          end
                        end
                      end
                    end
                  end
                end
              end)
      end
      else
        C.iter db.Db_smc.lineitems ~f:(fun blk slot ->
            match safe_follow lf.Db_smc.l_order ~target:orders blk slot with
            | None -> ()
            | Some (ob, os) ->
              let odate = F.get_date orf.Db_smc.o_orderdate ob os in
              if odate >= lo && odate < hi then begin
                match safe_follow lf.Db_smc.l_supplier ~target:suppliers blk slot with
                | None -> ()
                | Some (sb, ss) -> (
                  match safe_follow sf_.Db_smc.s_nation ~target:nations sb ss with
                  | None -> ()
                  | Some (nb, ns) -> (
                    match safe_follow nf.Db_smc.n_region ~target:regions nb ns with
                    | None -> ()
                    | Some (rb, rs) ->
                      if F.get_string rf.Db_smc.r_name rb rs = Results.q5_region then begin
                        match safe_follow orf.Db_smc.o_customer ~target:customers ob os with
                        | None -> ()
                        | Some (cb, cs) -> (
                          match safe_follow cf.Db_smc.c_nation ~target:nations cb cs with
                          | None -> ()
                          | Some (cnb, cns) ->
                            if
                              F.get_int nf.Db_smc.n_nationkey cnb cns
                              = F.get_int nf.Db_smc.n_nationkey nb ns
                            then
                              add_revenue
                                (F.get_string nf.Db_smc.n_name nb ns)
                                (D.mul
                                   (F.get_dec lf.Db_smc.l_extendedprice blk slot)
                                   (D.sub D.one (F.get_dec lf.Db_smc.l_discount blk slot))))
                      end))
              end));
  Results.sort_q5
    (Hashtbl.fold
       (fun n r rows -> { Results.q5_nation = n; q5_revenue = !r } :: rows)
       revenue [])

(* ------------------------------------------------------------------ *)
(* Extension queries (beyond the paper's Q1–Q6): shared follow helper
   choosing the managed-equivalent checked path or the allocation-free
   location path. *)

let follow_opt ~unsafe field ~target blk slot =
  if unsafe then begin
    let loc = F.follow_loc field ~target blk slot in
    if loc < 0 then None else Some (C.loc_block target loc, C.loc_slot loc)
  end
  else safe_follow field ~target blk slot

(* Q7 — volume shipping between two nations *)
let q7 ?(unsafe = false) (db : Db_smc.t) =
  let lf = db.Db_smc.lf
  and orf = db.Db_smc.orf
  and cf = db.Db_smc.cf
  and sf_ = db.Db_smc.sf_
  and nf = db.Db_smc.nf in
  let follow = follow_opt ~unsafe in
  let revenue : (string * string * int, D.t ref) Hashtbl.t = Hashtbl.create 16 in
  let n1 = Results.q7_nation1 and n2 = Results.q7_nation2 in
  C.with_read db.Db_smc.lineitems (fun () ->
      C.iter db.Db_smc.lineitems ~f:(fun blk slot ->
          let ship = F.get_date lf.Db_smc.l_shipdate blk slot in
          if ship >= Results.q7_date_lo && ship <= Results.q7_date_hi then begin
            match follow lf.Db_smc.l_supplier ~target:db.Db_smc.suppliers blk slot with
            | None -> ()
            | Some (sb, ss) -> (
              match follow sf_.Db_smc.s_nation ~target:db.Db_smc.nations sb ss with
              | None -> ()
              | Some (snb, sns) ->
                let supp_nation = F.get_string nf.Db_smc.n_name snb sns in
                if supp_nation = n1 || supp_nation = n2 then begin
                  match follow lf.Db_smc.l_order ~target:db.Db_smc.orders blk slot with
                  | None -> ()
                  | Some (ob, os) -> (
                    match follow orf.Db_smc.o_customer ~target:db.Db_smc.customers ob os with
                    | None -> ()
                    | Some (cb, cs) -> (
                      match follow cf.Db_smc.c_nation ~target:db.Db_smc.nations cb cs with
                      | None -> ()
                      | Some (cnb, cns) ->
                        let cust_nation = F.get_string nf.Db_smc.n_name cnb cns in
                        if
                          (supp_nation = n1 && cust_nation = n2)
                          || (supp_nation = n2 && cust_nation = n1)
                        then begin
                          let year, _, _ = Smc_util.Date.to_ymd ship in
                          let amount =
                            D.mul
                              (F.get_dec lf.Db_smc.l_extendedprice blk slot)
                              (D.sub D.one (F.get_dec lf.Db_smc.l_discount blk slot))
                          in
                          let key = (supp_nation, cust_nation, year) in
                          match Hashtbl.find_opt revenue key with
                          | Some r -> r := D.add !r amount
                          | None -> Hashtbl.add revenue key (ref amount)
                        end))
                end)
          end));
  Results.sort_q7
    (Hashtbl.fold
       (fun (sn, cn, year) r rows ->
         { Results.q7_supp_nation = sn; q7_cust_nation = cn; q7_year = year; q7_revenue = !r }
         :: rows)
       revenue [])

(* Q10 — returned item reporting *)
type q10_acc = {
  x_custkey : int;
  x_name : string;
  x_acctbal : D.t;
  x_nation : string;
  mutable x_rev : D.t;
}

let q10 ?(unsafe = false) (db : Db_smc.t) =
  let lf = db.Db_smc.lf and orf = db.Db_smc.orf and cf = db.Db_smc.cf and nf = db.Db_smc.nf in
  let follow = follow_opt ~unsafe in
  let lo = Results.q10_date in
  let hi = Smc_util.Date.add_months lo 3 in
  let groups : (int, q10_acc) Hashtbl.t = Hashtbl.create 1024 in
  C.with_read db.Db_smc.lineitems (fun () ->
      C.iter db.Db_smc.lineitems ~f:(fun blk slot ->
          if F.get_char lf.Db_smc.l_returnflag blk slot = 'R' then begin
            match follow lf.Db_smc.l_order ~target:db.Db_smc.orders blk slot with
            | None -> ()
            | Some (ob, os) ->
              let odate = F.get_date orf.Db_smc.o_orderdate ob os in
              if odate >= lo && odate < hi then begin
                match follow orf.Db_smc.o_customer ~target:db.Db_smc.customers ob os with
                | None -> ()
                | Some (cb, cs) ->
                  let custkey = F.get_int cf.Db_smc.c_custkey cb cs in
                  let acc =
                    match Hashtbl.find_opt groups custkey with
                    | Some acc -> acc
                    | None ->
                      let nation =
                        match follow cf.Db_smc.c_nation ~target:db.Db_smc.nations cb cs with
                        | Some (nb, ns) -> F.get_string nf.Db_smc.n_name nb ns
                        | None -> ""
                      in
                      let acc =
                        {
                          x_custkey = custkey;
                          x_name = F.get_string cf.Db_smc.c_name cb cs;
                          x_acctbal = F.get_dec cf.Db_smc.c_acctbal cb cs;
                          x_nation = nation;
                          x_rev = D.zero;
                        }
                      in
                      Hashtbl.add groups custkey acc;
                      acc
                  in
                  acc.x_rev <-
                    D.add acc.x_rev
                      (D.mul
                         (F.get_dec lf.Db_smc.l_extendedprice blk slot)
                         (D.sub D.one (F.get_dec lf.Db_smc.l_discount blk slot)))
              end
          end));
  let rows =
    Hashtbl.fold
      (fun _ acc rows ->
        {
          Results.q10_custkey = acc.x_custkey;
          q10_name = acc.x_name;
          q10_revenue = acc.x_rev;
          q10_acctbal = acc.x_acctbal;
          q10_nation = acc.x_nation;
        }
        :: rows)
      groups []
  in
  List.filteri (fun i _ -> i < 20) (Results.sort_q10 rows)

(* Q12 — shipping modes and order priority *)
let q12 ?(unsafe = false) (db : Db_smc.t) =
  let lf = db.Db_smc.lf and orf = db.Db_smc.orf in
  let follow = follow_opt ~unsafe in
  let mode1, mode2 = Results.q12_modes in
  let is_mode1 = F.string_eq lf.Db_smc.l_shipmode mode1 in
  let is_mode2 = F.string_eq lf.Db_smc.l_shipmode mode2 in
  let is_urgent = F.string_eq orf.Db_smc.o_orderpriority "1-URGENT" in
  let is_high = F.string_eq orf.Db_smc.o_orderpriority "2-HIGH" in
  let lo = Results.q12_date in
  let hi = Smc_util.Date.add_months lo 12 in
  let high1 = ref 0 and low1 = ref 0 and high2 = ref 0 and low2 = ref 0 in
  C.with_read db.Db_smc.lineitems (fun () ->
      C.iter db.Db_smc.lineitems ~f:(fun blk slot ->
          let m1 = is_mode1 blk slot in
          if m1 || is_mode2 blk slot then begin
            let receipt = F.get_date lf.Db_smc.l_receiptdate blk slot in
            if
              receipt >= lo && receipt < hi
              && F.get_date lf.Db_smc.l_commitdate blk slot < receipt
              && F.get_date lf.Db_smc.l_shipdate blk slot
                 < F.get_date lf.Db_smc.l_commitdate blk slot
            then begin
              match follow lf.Db_smc.l_order ~target:db.Db_smc.orders blk slot with
              | None -> ()
              | Some (ob, os) ->
                let is_hi = is_urgent ob os || is_high ob os in
                if m1 then (if is_hi then incr high1 else incr low1)
                else if is_hi then incr high2
                else incr low2
            end
          end));
  Results.sort_q12
    [
      { Results.q12_shipmode = mode1; q12_high = !high1; q12_low = !low1 };
      { Results.q12_shipmode = mode2; q12_high = !high2; q12_low = !low2 };
    ]

(* Q14 — promotion effect *)
let q14 ?(unsafe = false) (db : Db_smc.t) =
  let lf = db.Db_smc.lf and pf = db.Db_smc.pf in
  let follow = follow_opt ~unsafe in
  let lo = Results.q14_date in
  let hi = Smc_util.Date.add_months lo 1 in
  let promo = D.Acc.make () and total = D.Acc.make () in
  C.with_read db.Db_smc.lineitems (fun () ->
      C.iter db.Db_smc.lineitems ~f:(fun blk slot ->
          let ship = F.get_date lf.Db_smc.l_shipdate blk slot in
          if ship >= lo && ship < hi then begin
            let amount =
              D.mul
                (F.get_dec lf.Db_smc.l_extendedprice blk slot)
                (D.sub D.one (F.get_dec lf.Db_smc.l_discount blk slot))
            in
            D.Acc.add total amount;
            match follow lf.Db_smc.l_part ~target:db.Db_smc.parts blk slot with
            | None -> ()
            | Some (pb, ps_) ->
              (* PROMO prefix: first five bytes of p_type *)
              let t = F.get_string pf.Db_smc.p_type pb ps_ in
              if String.length t >= 5 && String.sub t 0 5 = "PROMO" then
                D.Acc.add promo amount
          end));
  if D.Acc.get total = D.zero then D.zero
  else D.div (D.mul (D.of_int 100) (D.Acc.get promo)) (D.Acc.get total)

(* Q19 — discounted revenue *)
let q19 ?(unsafe = false) (db : Db_smc.t) =
  let lf = db.Db_smc.lf and pf = db.Db_smc.pf in
  let follow = follow_opt ~unsafe in
  let is_air = F.string_eq lf.Db_smc.l_shipmode "AIR" in
  let is_regair = F.string_eq lf.Db_smc.l_shipmode "REG AIR" in
  let in_person = F.string_eq lf.Db_smc.l_shipinstruct "DELIVER IN PERSON" in
  let brand12 = F.string_eq pf.Db_smc.p_brand "Brand#12" in
  let brand23 = F.string_eq pf.Db_smc.p_brand "Brand#23" in
  let brand34 = F.string_eq pf.Db_smc.p_brand "Brand#34" in
  let acc = D.Acc.make () in
  C.with_read db.Db_smc.lineitems (fun () ->
      C.iter db.Db_smc.lineitems ~f:(fun blk slot ->
          if (is_air blk slot || is_regair blk slot) && in_person blk slot then begin
            match follow lf.Db_smc.l_part ~target:db.Db_smc.parts blk slot with
            | None -> ()
            | Some (pb, ps_) ->
              let qty = F.get_dec lf.Db_smc.l_quantity blk slot in
              let size = F.get_int pf.Db_smc.p_size pb ps_ in
              let container = F.get_string pf.Db_smc.p_container pb ps_ in
              let between a b =
                D.compare qty (D.of_int a) >= 0 && D.compare qty (D.of_int b) <= 0
              in
              let matches =
                (brand12 pb ps_
                && (container = "SM CASE" || container = "SM BOX" || container = "SM PACK"
                  || container = "SM PKG")
                && between 1 11 && size >= 1 && size <= 5)
                || (brand23 pb ps_
                   && (container = "MED BAG" || container = "MED BOX"
                     || container = "MED PKG" || container = "MED PACK")
                   && between 10 20 && size >= 1 && size <= 10)
                || (brand34 pb ps_
                   && (container = "LG CASE" || container = "LG BOX" || container = "LG PACK"
                     || container = "LG PKG")
                   && between 20 30 && size >= 1 && size <= 15)
              in
              if matches then
                D.Acc.add_mul acc
                  (F.get_int lf.Db_smc.l_extendedprice blk slot)
                  (D.sub D.one (F.get_int lf.Db_smc.l_discount blk slot))
          end));
  D.Acc.get acc

(* ------------------------------------------------------------------ *)
(* Q6 — forecasting revenue change *)

let q6 ?(unsafe = false) (db : Db_smc.t) =
  let lf = db.Db_smc.lf in
  let lo = Results.q6_date in
  let hi = Smc_util.Date.add_months lo 12 in
  if unsafe then begin
    (* Raw block access: hoisted data pointer and offsets, in-place decimal
       accumulation — the paper's unsafe compiled Q6. *)
    let o_ship = word_offset lf.Db_smc.l_shipdate
    and o_disc = word_offset lf.Db_smc.l_discount
    and o_qty = word_offset lf.Db_smc.l_quantity
    and o_price = word_offset lf.Db_smc.l_extendedprice in
    let acc = D.Acc.make () in
    let d_lo = Results.q6_disc_lo and d_hi = Results.q6_disc_hi and q_max = Results.q6_qty in
    C.iter_scan db.Db_smc.lineitems ~on_block:(fun blk ->
        let data = blk.Block.data in
        match blk.Block.placement with
        | Block.Row ->
          let sw = blk.Block.layout.Smc_offheap.Layout.slot_words in
          fun slot ->
            let b = slot * sw in
            let ship = BA1.unsafe_get data (b + o_ship) in
            if ship >= lo && ship < hi then begin
              let disc = BA1.unsafe_get data (b + o_disc) in
              if
                disc >= d_lo && disc <= d_hi
                && BA1.unsafe_get data (b + o_qty) < q_max
              then D.Acc.add_mul acc (BA1.unsafe_get data (b + o_price)) disc
            end
        | Block.Columnar ->
          let n = blk.Block.nslots in
          let b_ship = o_ship * n
          and b_disc = o_disc * n
          and b_qty = o_qty * n
          and b_price = o_price * n in
          fun slot ->
            let ship = BA1.unsafe_get data (b_ship + slot) in
            if ship >= lo && ship < hi then begin
              let disc = BA1.unsafe_get data (b_disc + slot) in
              if
                disc >= d_lo && disc <= d_hi
                && BA1.unsafe_get data (b_qty + slot) < q_max
              then D.Acc.add_mul acc (BA1.unsafe_get data (b_price + slot)) disc
            end);
    D.Acc.get acc
  end
  else begin
    let f_ship = lf.Db_smc.l_shipdate
    and f_disc = lf.Db_smc.l_discount
    and f_qty = lf.Db_smc.l_quantity
    and f_price = lf.Db_smc.l_extendedprice in
    let total = ref D.zero in
    C.iter db.Db_smc.lineitems ~f:(fun blk slot ->
        let ship = F.get_date f_ship blk slot in
        if
          ship >= lo && ship < hi
          && D.compare (F.get_dec f_disc blk slot) Results.q6_disc_lo >= 0
          && D.compare (F.get_dec f_disc blk slot) Results.q6_disc_hi <= 0
          && D.compare (F.get_dec f_qty blk slot) Results.q6_qty < 0
        then
          total :=
            D.add !total (D.mul (F.get_dec f_price blk slot) (F.get_dec f_disc blk slot)));
    !total
  end

(* Q6 — parallel: the unsafe kernel with one in-place decimal accumulator
   per worker domain, summed on the caller at the end. *)
let q6_par ?pool ?domains (db : Db_smc.t) =
  let lf = db.Db_smc.lf in
  let lo = Results.q6_date in
  let hi = Smc_util.Date.add_months lo 12 in
  let o_ship = word_offset lf.Db_smc.l_shipdate
  and o_disc = word_offset lf.Db_smc.l_discount
  and o_qty = word_offset lf.Db_smc.l_quantity
  and o_price = word_offset lf.Db_smc.l_extendedprice in
  let d_lo = Results.q6_disc_lo and d_hi = Results.q6_disc_hi and q_max = Results.q6_qty in
  let acc =
    Par_scan.fold_hoisted_par ?pool ?domains db.Db_smc.lineitems.C.ctx ~init:D.Acc.make
      ~on_block:(fun acc blk ->
        let data = blk.Block.data in
        match blk.Block.placement with
        | Block.Row ->
          let sw = blk.Block.layout.Smc_offheap.Layout.slot_words in
          fun slot ->
            let b = slot * sw in
            let ship = BA1.unsafe_get data (b + o_ship) in
            if ship >= lo && ship < hi then begin
              let disc = BA1.unsafe_get data (b + o_disc) in
              if
                disc >= d_lo && disc <= d_hi
                && BA1.unsafe_get data (b + o_qty) < q_max
              then D.Acc.add_mul acc (BA1.unsafe_get data (b + o_price)) disc
            end
        | Block.Columnar ->
          let n = blk.Block.nslots in
          let b_ship = o_ship * n
          and b_disc = o_disc * n
          and b_qty = o_qty * n
          and b_price = o_price * n in
          fun slot ->
            let ship = BA1.unsafe_get data (b_ship + slot) in
            if ship >= lo && ship < hi then begin
              let disc = BA1.unsafe_get data (b_disc + slot) in
              if
                disc >= d_lo && disc <= d_hi
                && BA1.unsafe_get data (b_qty + slot) < q_max
              then D.Acc.add_mul acc (BA1.unsafe_get data (b_price + slot)) disc
            end)
      ~combine:(fun a b ->
        D.Acc.add a (D.Acc.get b);
        a)
  in
  D.Acc.get acc
