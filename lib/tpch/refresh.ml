module C = Smc.Collection
module F = Smc.Field
module V = Smc_managed.Vector
module CD = Smc_managed.Concurrent_dictionary
module D = Smc_decimal.Decimal
open Smc_util

type ops = {
  kind : string;
  insert_batch : count:int -> unit;
  remove_batch : keys:(int, unit) Hashtbl.t -> int;
  size : unit -> int;
  random_orderkey : Prng.t -> int;
}

let fresh_lineitem_values g =
  let quantity = Prng.int_in g 1 50 in
  ( quantity,
    D.of_cents (Prng.int_in g 100000 10000000),
    D.of_cents (Prng.int_in g 0 10),
    D.of_cents (Prng.int_in g 0 8) )

let init_fresh_lineitem (db : Db_smc.t) g blk slot =
  let lf = db.Db_smc.lf in
  let oidx = Prng.int g (Array.length db.Db_smc.order_refs) in
  let quantity, price, disc, tax = fresh_lineitem_values g in
  F.set_ref lf.Db_smc.l_order ~target:db.Db_smc.orders blk slot
    db.Db_smc.order_refs.(oidx);
  F.set_int lf.Db_smc.l_linenumber blk slot 0;
  F.set_dec lf.Db_smc.l_quantity blk slot (D.of_int quantity);
  F.set_dec lf.Db_smc.l_extendedprice blk slot price;
  F.set_dec lf.Db_smc.l_discount blk slot disc;
  F.set_dec lf.Db_smc.l_tax blk slot tax;
  F.set_string lf.Db_smc.l_returnflag blk slot "N";
  F.set_string lf.Db_smc.l_linestatus blk slot "O";
  F.set_date lf.Db_smc.l_shipdate blk slot Spec.current_date;
  F.set_date lf.Db_smc.l_commitdate blk slot Spec.current_date;
  F.set_date lf.Db_smc.l_receiptdate blk slot Spec.current_date

(* Single enumeration with allocation-free reference navigation, as the
   compiled removal stream would be generated; [f] gets the reference of
   every lineitem whose order key is in [keys]. *)
let iter_matching_lineitems (db : Db_smc.t) ~keys ~f =
  let lf = db.Db_smc.lf in
  let orders = db.Db_smc.orders in
  let f_key = db.Db_smc.orf.Db_smc.o_orderkey in
  let o_key = f_key.Smc_offheap.Layout.word in
  let o_sw = orders.C.layout.Smc_offheap.Layout.slot_words in
  let row_major = orders.C.ctx.Smc_offheap.Context.placement = Smc_offheap.Block.Row in
  C.with_read db.Db_smc.lineitems (fun () ->
      C.iter db.Db_smc.lineitems ~f:(fun blk slot ->
          let loc = F.follow_loc lf.Db_smc.l_order ~target:orders blk slot in
          if loc >= 0 then begin
            let ob = C.loc_block orders loc and os = C.loc_slot loc in
            let orderkey =
              if row_major then
                Bigarray.Array1.unsafe_get ob.Smc_offheap.Block.data ((os * o_sw) + o_key)
              else F.get_int f_key ob os
            in
            if Hashtbl.mem keys orderkey then f (C.ref_of_slot db.Db_smc.lineitems blk slot)
          end))

let collect_victims db ~keys =
  let victims = ref [] in
  iter_matching_lineitems db ~keys ~f:(fun r -> victims := r :: !victims);
  !victims

(* Bare removes skip already-dead references individually, so this is safe
   against concurrent streams racing for the same victims. *)
let bare_remove_all (db : Db_smc.t) victims =
  List.fold_left
    (fun acc r -> if C.remove db.Db_smc.lineitems r then acc + 1 else acc)
    0 victims

(* Both SMC variants run the same stream bodies over the same enumeration;
   they differ only in the commit discipline: [`Bare] applies each op as
   its own single-op unit, [`Txn] stages the half-stream through the public
   transaction API ([Collection.transact]) and publishes it atomically. *)
let smc_refresh_ops discipline (db : Db_smc.t) (ds : Row.dataset) =
  let insert_batch ~count =
    let g = Prng.create ~seed:(Int64.of_int count) () in
    match discipline with
    | `Bare ->
      for _ = 1 to count do
        ignore (C.add db.Db_smc.lineitems ~init:(init_fresh_lineitem db g) : Smc.Ref.t)
      done
    | `Txn -> (
      match
        C.transact db.Db_smc.lineitems (fun tx ->
            for _ = 1 to count do
              C.stage_add tx ~init:(init_fresh_lineitem db g)
            done)
      with
      | C.Committed _ -> ()
      | C.Conflict -> assert false (* add-only transactions never conflict *))
  in
  let remove_batch ~keys =
    let victims = collect_victims db ~keys in
    match discipline with
    | `Bare -> bare_remove_all db victims
    | `Txn -> (
      match
        C.transact db.Db_smc.lineitems (fun tx ->
            List.iter (fun r -> C.stage_remove tx r) victims)
      with
      | C.Committed _ -> List.length victims
      | C.Conflict ->
        (* A concurrent stream won the race for one of our victims; fall
           back to per-op removal. *)
        bare_remove_all db victims)
  in
  {
    kind = (match discipline with `Bare -> "smc" | `Txn -> "smc_txn");
    insert_batch;
    remove_batch;
    size = (fun () -> C.count db.Db_smc.lineitems);
    random_orderkey = (fun g -> ds.Row.orders.(Prng.int g (Array.length ds.Row.orders)).Row.o_orderkey);
  }

let smc_ops db ds = smc_refresh_ops `Bare db ds
let smc_txn_ops db ds = smc_refresh_ops `Txn db ds

let fresh_lineitem_row g (ds : Row.dataset) =
  let order = ds.Row.orders.(Prng.int g (Array.length ds.Row.orders)) in
  let part = ds.Row.parts.(Prng.int g (Array.length ds.Row.parts)) in
  let supplier = ds.Row.suppliers.(Prng.int g (Array.length ds.Row.suppliers)) in
  let quantity, price, disc, tax = fresh_lineitem_values g in
  {
    Row.l_order = order;
    l_part = part;
    l_supplier = supplier;
    l_linenumber = 0;
    l_quantity = D.of_int quantity;
    l_extendedprice = price;
    l_discount = disc;
    l_tax = tax;
    l_returnflag = 'N';
    l_linestatus = 'O';
    l_shipdate = Spec.current_date;
    l_commitdate = Spec.current_date;
    l_receiptdate = Spec.current_date;
    l_shipinstruct = "NONE";
    l_shipmode = "MAIL";
    l_comment = "refresh";
  }

let vector_ops (ds : Row.dataset) =
  let v = V.create ~capacity:(Array.length ds.Row.lineitems) () in
  Array.iter (fun li -> V.add v li) ds.Row.lineitems;
  let insert_batch ~count =
    let g = Prng.create ~seed:(Int64.of_int count) () in
    for _ = 1 to count do
      V.add v (fresh_lineitem_row g ds)
    done
  in
  let remove_batch ~keys =
    V.remove_bulk v ~pred:(fun (li : Row.lineitem) ->
        Hashtbl.mem keys li.Row.l_order.Row.o_orderkey)
  in
  {
    kind = "list";
    insert_batch;
    remove_batch;
    size = (fun () -> V.length v);
    random_orderkey = (fun g -> ds.Row.orders.(Prng.int g (Array.length ds.Row.orders)).Row.o_orderkey);
  }

let dict_ops (ds : Row.dataset) =
  let d = CD.create ~capacity:(Array.length ds.Row.lineitems) () in
  Array.iter (fun li -> CD.add d ~key:(Dbgen.lineitem_key li) li) ds.Row.lineitems;
  let next_key = Atomic.make (1 lsl 40) in
  let insert_batch ~count =
    let g = Prng.create ~seed:(Int64.of_int count) () in
    for _ = 1 to count do
      CD.add d ~key:(Atomic.fetch_and_add next_key 1) (fresh_lineitem_row g ds)
    done
  in
  let remove_batch ~keys =
    (* Single enumeration collecting the matching dictionary keys, then
       targeted removals — the ConcurrentDictionary idiom. *)
    let to_remove = ref [] in
    CD.iter d ~f:(fun k (li : Row.lineitem) ->
        if Hashtbl.mem keys li.Row.l_order.Row.o_orderkey then to_remove := k :: !to_remove);
    List.fold_left (fun acc k -> if CD.remove d ~key:k then acc + 1 else acc) 0 !to_remove
  in
  {
    kind = "dict";
    insert_batch;
    remove_batch;
    size = (fun () -> CD.length d);
    random_orderkey = (fun g -> ds.Row.orders.(Prng.int g (Array.length ds.Row.orders)).Row.o_orderkey);
  }

let run_stream_pair ops ~prng ~batch =
  ops.insert_batch ~count:batch;
  let keys = Hashtbl.create batch in
  (* Order keys cluster ~4 lineitems each; selecting batch/4 keys removes
     roughly [batch] objects, matching the insert volume. *)
  for _ = 1 to max 1 (batch / 4) do
    Hashtbl.replace keys (ops.random_orderkey prng) ()
  done;
  ignore (ops.remove_batch ~keys : int)
