(** TPC-H Q1–Q6 as compiled queries over self-managed collections.

    Two variants reproduce Figure 11's distinction:

    - [unsafe:false] — "SMC (C#)": block-order enumeration plus the same
      managed-style intermediates as the baseline queries (hash tables with
      boxed group keys, per-row key allocation, reference access through the
      fully checked application-reference path).
    - [unsafe:true] — "SMC (unsafe C#)": optimisations only possible with
      raw access to the collection's memory: single-check stored-pointer
      joins ({!Smc.Field.follow}), in-place decimal accumulation
      ({!Smc_decimal.Decimal.Acc}) and pre-allocated flat accumulator
      regions instead of per-row managed intermediates (the paper's memory
      regions [16]).

    All variants run inside one epoch critical section per query (§4). *)

val q1 : ?unsafe:bool -> Db_smc.t -> Results.q1
val q2 : ?unsafe:bool -> Db_smc.t -> Results.q2
val q3 : ?unsafe:bool -> Db_smc.t -> Results.q3
val q4 : ?unsafe:bool -> Db_smc.t -> Results.q4
val q5 : ?unsafe:bool -> Db_smc.t -> Results.q5
val q6 : ?unsafe:bool -> Db_smc.t -> Results.q6

(** Extension queries beyond the paper's evaluation set (same safe/unsafe
    treatment; string predicates compile to pre-packed word compares in both
    variants where the collection layer provides them). *)

(** Parallel variants of the unsafe Q1/Q6 kernels: the context's block view
    is partitioned across the pool's worker domains (see
    {!Smc_parallel.Par_scan}); each worker folds into a private flat
    accumulator region ([q1]) or in-place decimal accumulator ([q6]) that
    is merged on the calling domain once all workers finished. Results are
    identical to the sequential unsafe variants on a quiescent collection.
    [?domains] caps the workers used for one call; [?pool] defaults to the
    process-wide pool. *)

val q1_par : ?pool:Smc_parallel.Pool.t -> ?domains:int -> Db_smc.t -> Results.q1
val q6_par : ?pool:Smc_parallel.Pool.t -> ?domains:int -> Db_smc.t -> Results.q6

val q7 : ?unsafe:bool -> Db_smc.t -> Results.q7
val q10 : ?unsafe:bool -> Db_smc.t -> Results.q10
val q12 : ?unsafe:bool -> Db_smc.t -> Results.q12
val q14 : ?unsafe:bool -> Db_smc.t -> Results.q14
val q19 : ?unsafe:bool -> Db_smc.t -> Results.q19
