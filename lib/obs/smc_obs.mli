(** Low-overhead runtime observability counters.

    A [t] holds one padded counter stripe per domain that touches it, so
    hot-path increments are plain stores into domain-private memory.
    Snapshots merge the stripes: exact at quiescent points, approximate
    while writers run (same contract as {!Smc_check}'s audit). *)

(** {1 Counter ids}

    Dense ints in [0, n_counters). *)

val c_allocs : int
val c_frees : int
val c_retires : int
val c_quarantines : int
val c_slot_recycles : int
val c_limbo_drops : int
val c_blocks_created : int
val c_fresh_blocks : int
val c_rq_pushes : int
val c_rq_pops : int
val c_rq_dead_drops : int
val c_rq_unqueues : int
val c_epoch_adv_ok : int
val c_epoch_adv_fail : int
val c_crit_enters : int
val c_thread_registers : int
val c_thread_releases : int
val c_entries_minted : int
val c_entries_recycled : int
val c_entries_freed : int
val c_compaction_passes : int
val c_compaction_aborts : int
val c_compaction_phases : int
val c_groups_formed : int
val c_groups_skipped : int
val c_objects_moved : int
val c_blocks_retired : int
val c_reloc_helps : int
val c_reloc_bails : int
val c_pool_tasks : int
val c_par_scans : int
val c_par_workers : int
val c_idx_inserts : int
val c_idx_probes : int
val c_idx_hits : int
val c_idx_stale : int
val c_idx_tombstones : int
val c_idx_rebuilds : int
val c_persist_snapshots : int
val c_persist_snapshot_bytes : int
val c_persist_restores : int
val c_persist_restore_bytes : int
val c_persist_wal_appends : int
val c_persist_wal_syncs : int
val c_persist_wal_replayed : int
val c_persist_torn_drops : int
val c_txn_begins : int
val c_txn_commits : int
val c_txn_aborts : int
val c_txn_conflicts : int
val c_txn_replayed : int
val c_txn_replay_skips : int
val c_txn_views : int
val c_txn_view_closes : int
val c_bare_stores : int
val c_vec_batches : int
val c_vec_batch_rows : int
val c_vec_filter_rows_in : int
val c_vec_filter_rows_kept : int
val c_vec_filter_rows_dropped : int
val c_cg_requests : int
val c_cg_compiles : int
val c_cg_cache_hits : int
val c_cg_fallbacks : int
val c_shard_routes : int
val c_shard_txns : int
val c_shard_txn_commits : int
val c_shard_txn_conflicts : int
val c_shard_txn_multi : int
val c_shard_fanouts : int
val c_srv_conns : int
val c_srv_requests : int
val c_srv_replies : int
val c_srv_errors : int
val c_srv_shed : int
val c_txt_adds : int
val c_txt_removes : int
val c_txt_probes : int
val c_txt_candidates : int
val c_txt_hits : int
val c_txt_stale : int
val c_txt_misses : int
val c_txt_dups : int
val c_txt_rebuilds : int
val c_txt_dropped : int
val c_mv_builds : int
val c_mv_adds : int
val c_mv_removes : int
val c_mv_stores : int
val c_mv_applied : int
val c_mv_reads : int
val c_mv_hits : int
val c_mv_rescans : int
val c_mv_invalidations : int

val n_counters : int
val name : int -> string

(** {1 Instances} *)

type t

val enabled : bool ref
(** Global increment toggle. Initialised from [SMC_OBS] ([0]/[false]
    disables). Derived invariants only hold for instances whose whole
    lifetime ran with counters enabled. *)

val create : ?label:string -> unit -> t
(** Fresh instance, registered for {!process_snapshot}. *)

val incr : t -> int -> unit
(** [incr t c] bumps counter [c] on the calling domain's stripe. No-op
    when [enabled] is false. *)

val add : t -> int -> int -> unit
(** [add t c n] bumps counter [c] by [n]. *)

(** {1 Snapshots} *)

type snapshot = { src : string; counts : int array }

val snapshot : t -> snapshot
(** Merge all stripes of [t]. *)

val get : snapshot -> int -> int
val diff : snapshot -> snapshot -> snapshot
val merge : snapshot -> snapshot -> snapshot

val process_snapshot : unit -> snapshot
(** Merged snapshot of every live instance in the process. *)

val to_table : ?title:string -> ?zeros:bool -> snapshot -> Smc_util.Table.t
(** Render as a two-column table (counter, count). Zero counters are
    omitted unless [zeros] is true. *)
