(* Low-overhead runtime observability counters.

   One [t] is a set of monotonic event counters owned by one subsystem
   instance (a runtime, a domain pool). Each domain that touches the
   instance gets its own *stripe* — a padded int array reached through
   domain-local state — so hot-path increments are a plain load/store into
   domain-private memory: no atomics, no cross-domain cache-line sharing.
   Reads ([snapshot]) merge the stripes; they are exact at quiescent points
   (every writing domain parked or joined) and approximate otherwise, which
   is the same contract the invariant audit already has.

   Counters are process-visible through a registry of live instances
   ([process_snapshot]), so a bench run can attach one counter table to its
   artifact without threading instances through every layer. *)

(* Counter ids: dense ints so a stripe is one array and an increment is one
   indexed store. [names] must stay in sync — [all] below is the single
   source of truth. *)

let c_allocs = 0 (* slot allocations handed out by Context.alloc *)
let c_frees = 1 (* successful Context.free calls *)
let c_retires = 2 (* retire_slot calls (limbo + quarantine) *)
let c_quarantines = 3 (* slots quarantined at the incarnation bound *)
let c_slot_recycles = 4 (* limbo slots reclaimed by the allocation scan *)
let c_limbo_drops = 5 (* limbo slots discarded with dead compaction sources *)
let c_blocks_created = 6 (* blocks minted, including compaction targets *)
let c_fresh_blocks = 7 (* blocks minted by the allocator (queue was dry) *)
let c_rq_pushes = 8 (* reclamation-queue pushes *)
let c_rq_pops = 9 (* reclamation-queue pops (block recycles) *)
let c_rq_dead_drops = 10 (* dead blocks drained from the queue head *)
let c_rq_unqueues = 11 (* queued blocks pulled out by the compactor *)
let c_epoch_adv_ok = 12 (* successful Epoch.try_advance calls *)
let c_epoch_adv_fail = 13 (* failed Epoch.try_advance calls *)
let c_crit_enters = 14 (* outermost critical-section entries *)
let c_thread_registers = 15 (* epoch thread-slot registrations *)
let c_thread_releases = 16 (* epoch thread-slot releases (explicit + GC) *)
let c_entries_minted = 17 (* never-used indirection entries bumped *)
let c_entries_recycled = 18 (* indirection entries reused from free stores *)
let c_entries_freed = 19 (* indirection entries returned for reuse *)
let c_compaction_passes = 20 (* compaction passes that formed groups *)
let c_compaction_aborts = 21 (* passes aborted at an epoch boundary *)
let c_compaction_phases = 22 (* compaction phase transitions *)
let c_groups_formed = 23
let c_groups_skipped = 24
let c_objects_moved = 25
let c_blocks_retired = 26
let c_reloc_helps = 27 (* readers helping a relocation (§5.1 case c) *)
let c_reloc_bails = 28 (* readers bailing an object out (§5.1 case b) *)
let c_pool_tasks = 29 (* tasks submitted to a domain pool *)
let c_par_scans = 30 (* parallel enumerations started *)
let c_par_workers = 31 (* worker activations across parallel enumerations *)
let c_idx_inserts = 32 (* entries inserted into hash indexes *)
let c_idx_probes = 33 (* index probe operations *)
let c_idx_hits = 34 (* validated (live) entries yielded by probes *)
let c_idx_stale = 35 (* stale entries observed (probe sightings + purges) *)
let c_idx_tombstones = 36 (* stale entries tombstoned or dropped by sweeps/rebuilds *)
let c_idx_rebuilds = 37 (* index rebuilds (load-factor or churn triggered) *)
let c_persist_snapshots = 38 (* snapshot files written *)
let c_persist_snapshot_bytes = 39 (* bytes streamed into snapshot files *)
let c_persist_restores = 40 (* collections restored from snapshot files *)
let c_persist_restore_bytes = 41 (* bytes read back while restoring *)
let c_persist_wal_appends = 42 (* records appended to write-ahead logs *)
let c_persist_wal_syncs = 43 (* fsync batches issued by write-ahead logs *)
let c_persist_wal_replayed = 44 (* records replayed during recovery *)
let c_persist_torn_drops = 45 (* torn final WAL records discarded at recovery *)
let c_txn_begins = 46 (* transactions opened by Collection.txn *)
let c_txn_commits = 47 (* transactions committed (validation passed) *)
let c_txn_aborts = 48 (* transactions explicitly aborted *)
let c_txn_conflicts = 49 (* commits refused by write-write validation *)
let c_txn_replayed = 50 (* committed transactions re-applied at recovery *)
let c_txn_replay_skips = 51 (* uncommitted transaction bodies discarded at recovery *)
let c_txn_views = 52 (* snapshot views opened *)
let c_txn_view_closes = 53 (* snapshot views closed *)
let c_bare_stores = 54 (* CSN-stamped in-place Collection.store writes *)
let c_vec_batches = 55 (* batches produced by vectorized SMC scans *)
let c_vec_batch_rows = 56 (* rows gathered into those batches *)
let c_vec_filter_rows_in = 57 (* rows entering vectorized filters *)
let c_vec_filter_rows_kept = 58 (* rows surviving vectorized filters *)
let c_vec_filter_rows_dropped = 59 (* rows cut by vectorized filters *)
let c_cg_requests = 60 (* compiled-plan executions requested *)
let c_cg_compiles = 61 (* plans compiled + dynlinked *)
let c_cg_cache_hits = 62 (* requests served from the compiled-plan cache *)
let c_cg_fallbacks = 63 (* requests that fell back to the Fuse engine *)
let c_shard_routes = 64 (* single operations routed to an owning shard *)
let c_shard_txns = 65 (* sharded transactions submitted for commit *)
let c_shard_txn_commits = 66 (* sharded transactions committed *)
let c_shard_txn_conflicts = 67 (* sharded transactions refused by validation *)
let c_shard_txn_multi = 68 (* committed transactions spanning > 1 shard *)
let c_shard_fanouts = 69 (* fan-out scans merged across all shards *)
let c_srv_conns = 70 (* connections accepted by the serving loop *)
let c_srv_requests = 71 (* request frames decoded *)
let c_srv_replies = 72 (* requests answered with an ok frame *)
let c_srv_errors = 73 (* requests answered with an error frame *)
let c_srv_shed = 74 (* requests shed by admission control *)
let c_txt_adds = 75 (* rows appended to text-index pending logs *)
let c_txt_removes = 76 (* row removals observed by text indexes *)
let c_txt_probes = 77 (* text-index probe operations *)
let c_txt_candidates = 78 (* candidate sightings surfaced by probes *)
let c_txt_hits = 79 (* validated (live, still-matching) candidates emitted *)
let c_txt_stale = 80 (* candidates whose ref no longer resolved *)
let c_txt_misses = 81 (* live candidates whose current text no longer matches *)
let c_txt_dups = 82 (* candidates suppressed by per-probe deduplication *)
let c_txt_rebuilds = 83 (* suffix-array merge-rebuilds *)
let c_txt_dropped = 84 (* entries dropped (stale/dead) by rebuilds *)
let c_mv_builds = 85 (* materialized-view full builds (attach + invalidation recovery) *)
let c_mv_adds = 86 (* +delta applications from row adds *)
let c_mv_removes = 87 (* -delta applications from row removes *)
let c_mv_stores = 88 (* remove+add delta applications from in-place stores *)
let c_mv_applied = 89 (* total deltas applied (= adds + removes + stores) *)
let c_mv_reads = 90 (* view read operations *)
let c_mv_hits = 91 (* reads served entirely from maintained state *)
let c_mv_rescans = 92 (* reads that re-derived dirty groups by bounded re-scan *)
let c_mv_invalidations = 93 (* whole-view invalidations (non-incrementalizable delta) *)

let all =
  [|
    ("allocs", c_allocs);
    ("frees", c_frees);
    ("retires", c_retires);
    ("quarantines", c_quarantines);
    ("slot_recycles", c_slot_recycles);
    ("limbo_drops", c_limbo_drops);
    ("blocks_created", c_blocks_created);
    ("fresh_blocks", c_fresh_blocks);
    ("rq_pushes", c_rq_pushes);
    ("rq_pops", c_rq_pops);
    ("rq_dead_drops", c_rq_dead_drops);
    ("rq_unqueues", c_rq_unqueues);
    ("epoch_adv_ok", c_epoch_adv_ok);
    ("epoch_adv_fail", c_epoch_adv_fail);
    ("crit_enters", c_crit_enters);
    ("thread_registers", c_thread_registers);
    ("thread_releases", c_thread_releases);
    ("entries_minted", c_entries_minted);
    ("entries_recycled", c_entries_recycled);
    ("entries_freed", c_entries_freed);
    ("compaction_passes", c_compaction_passes);
    ("compaction_aborts", c_compaction_aborts);
    ("compaction_phases", c_compaction_phases);
    ("groups_formed", c_groups_formed);
    ("groups_skipped", c_groups_skipped);
    ("objects_moved", c_objects_moved);
    ("blocks_retired", c_blocks_retired);
    ("reloc_helps", c_reloc_helps);
    ("reloc_bails", c_reloc_bails);
    ("pool_tasks", c_pool_tasks);
    ("par_scans", c_par_scans);
    ("par_workers", c_par_workers);
    ("idx_inserts", c_idx_inserts);
    ("idx_probes", c_idx_probes);
    ("idx_hits", c_idx_hits);
    ("idx_stale", c_idx_stale);
    ("idx_tombstones", c_idx_tombstones);
    ("idx_rebuilds", c_idx_rebuilds);
    ("persist_snapshots", c_persist_snapshots);
    ("persist_snapshot_bytes", c_persist_snapshot_bytes);
    ("persist_restores", c_persist_restores);
    ("persist_restore_bytes", c_persist_restore_bytes);
    ("persist_wal_appends", c_persist_wal_appends);
    ("persist_wal_syncs", c_persist_wal_syncs);
    ("persist_wal_replayed", c_persist_wal_replayed);
    ("persist_torn_drops", c_persist_torn_drops);
    ("txn_begins", c_txn_begins);
    ("txn_commits", c_txn_commits);
    ("txn_aborts", c_txn_aborts);
    ("txn_conflicts", c_txn_conflicts);
    ("txn_replayed", c_txn_replayed);
    ("txn_replay_skips", c_txn_replay_skips);
    ("txn_views", c_txn_views);
    ("txn_view_closes", c_txn_view_closes);
    ("bare_stores", c_bare_stores);
    ("vec_batches", c_vec_batches);
    ("vec_batch_rows", c_vec_batch_rows);
    ("vec_filter_rows_in", c_vec_filter_rows_in);
    ("vec_filter_rows_kept", c_vec_filter_rows_kept);
    ("vec_filter_rows_dropped", c_vec_filter_rows_dropped);
    ("cg_requests", c_cg_requests);
    ("cg_compiles", c_cg_compiles);
    ("cg_cache_hits", c_cg_cache_hits);
    ("cg_fallbacks", c_cg_fallbacks);
    ("shard_routes", c_shard_routes);
    ("shard_txns", c_shard_txns);
    ("shard_txn_commits", c_shard_txn_commits);
    ("shard_txn_conflicts", c_shard_txn_conflicts);
    ("shard_txn_multi", c_shard_txn_multi);
    ("shard_fanouts", c_shard_fanouts);
    ("srv_conns", c_srv_conns);
    ("srv_requests", c_srv_requests);
    ("srv_replies", c_srv_replies);
    ("srv_errors", c_srv_errors);
    ("srv_shed", c_srv_shed);
    ("txt_adds", c_txt_adds);
    ("txt_removes", c_txt_removes);
    ("txt_probes", c_txt_probes);
    ("txt_candidates", c_txt_candidates);
    ("txt_hits", c_txt_hits);
    ("txt_stale", c_txt_stale);
    ("txt_misses", c_txt_misses);
    ("txt_dups", c_txt_dups);
    ("txt_rebuilds", c_txt_rebuilds);
    ("txt_dropped", c_txt_dropped);
    ("mv_builds", c_mv_builds);
    ("mv_adds", c_mv_adds);
    ("mv_removes", c_mv_removes);
    ("mv_stores", c_mv_stores);
    ("mv_applied", c_mv_applied);
    ("mv_reads", c_mv_reads);
    ("mv_hits", c_mv_hits);
    ("mv_rescans", c_mv_rescans);
    ("mv_invalidations", c_mv_invalidations);
  |]

let n_counters = Array.length all

let names =
  let a = Array.make n_counters "" in
  Array.iter (fun (n, c) -> a.(c) <- n) all;
  a

let name c = names.(c)

(* Runtime toggle. Off, increments cost one load+branch; the derived
   invariants only hold for instances whose whole life ran enabled, so the
   checker no-ops while disabled. SMC_OBS=0 turns counters off at start-up
   for overhead A/B runs. *)
let enabled =
  ref (match Sys.getenv_opt "SMC_OBS" with Some ("0" | "false") -> false | _ -> true)

(* A stripe is [pad | counters | pad]: the pads keep a stripe's hot words
   off the cache lines of whatever the allocator placed next to it. *)
let pad = 8

let stripe_len = pad + n_counters + pad

type t = {
  label : string;
  lock : Mutex.t; (* protects [stripes]; taken only on a domain's first use *)
  stripes : int array list ref;
  key : int array Domain.DLS.key;
}

let instances_lock = Mutex.create ()
let instances : t list ref = ref []

let create ?(label = "obs") () =
  let lock = Mutex.create () in
  let stripes = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let s = Array.make stripe_len 0 in
        Mutex.lock lock;
        stripes := s :: !stripes;
        Mutex.unlock lock;
        s)
  in
  let t = { label; lock; stripes; key } in
  Mutex.lock instances_lock;
  instances := t :: !instances;
  Mutex.unlock instances_lock;
  t

let incr t c =
  if !enabled then begin
    let s = Domain.DLS.get t.key in
    s.(pad + c) <- s.(pad + c) + 1
  end

let add t c n =
  if !enabled then begin
    let s = Domain.DLS.get t.key in
    s.(pad + c) <- s.(pad + c) + n
  end

type snapshot = { src : string; counts : int array }

let snapshot t =
  let counts = Array.make n_counters 0 in
  Mutex.lock t.lock;
  List.iter
    (fun s ->
      for c = 0 to n_counters - 1 do
        counts.(c) <- counts.(c) + s.(pad + c)
      done)
    !(t.stripes);
  Mutex.unlock t.lock;
  { src = t.label; counts }

let get s c = s.counts.(c)

let diff a b =
  { src = a.src; counts = Array.init n_counters (fun c -> a.counts.(c) - b.counts.(c)) }

let merge a b =
  { src = "merged"; counts = Array.init n_counters (fun c -> a.counts.(c) + b.counts.(c)) }

let process_snapshot () =
  Mutex.lock instances_lock;
  let ts = !instances in
  Mutex.unlock instances_lock;
  List.fold_left
    (fun acc t -> merge acc (snapshot t))
    { src = "process"; counts = Array.make n_counters 0 }
    ts

let to_table ?title ?(zeros = false) s =
  let title = match title with Some t -> t | None -> Printf.sprintf "Obs counters (%s)" s.src in
  let t = Smc_util.Table.create ~title ~columns:[ "counter"; "count" ] in
  for c = 0 to n_counters - 1 do
    if zeros || s.counts.(c) <> 0 then
      Smc_util.Table.add_row t [ names.(c); string_of_int s.counts.(c) ]
  done;
  t
