(* Tests for the Smc collection layer: semantics of §2 and §4. *)

open Smc_offheap

let check = Alcotest.check

let person_layout =
  Layout.create ~name:"person"
    [ ("name", Layout.Str 16); ("age", Layout.Int); ("salary", Layout.Dec) ]

let order_layout =
  Layout.create ~name:"order"
    [ ("customer", Layout.Ref "person"); ("price", Layout.Dec); ("qty", Layout.Int) ]

let f_name = Smc.Field.str person_layout "name"
let f_age = Smc.Field.int person_layout "age"
let f_salary = Smc.Field.dec person_layout "salary"
let f_customer = Smc.Field.ref_ order_layout "customer"
let f_price = Smc.Field.dec order_layout "price"

let make_persons ?placement ?mode () =
  let rt = Runtime.create () in
  let persons =
    Smc.Collection.create rt ~name:"persons" ~layout:person_layout ?placement ?mode
      ~slots_per_block:32 ()
  in
  (rt, persons)

let add_person persons ~name ~age =
  Smc.Collection.add persons ~init:(fun blk slot ->
      Smc.Field.set_string f_name blk slot name;
      Smc.Field.set_int f_age blk slot age;
      Smc.Field.set_dec f_salary blk slot (Smc_decimal.Decimal.of_int (age * 1000)))

(* ------------------------------------------------------------------ *)

let test_add_and_get () =
  let _rt, persons = make_persons () in
  let adam = add_person persons ~name:"Adam" ~age:27 in
  let blk, slot = Smc.Collection.deref persons adam in
  check Alcotest.string "name" "Adam" (Smc.Field.get_string f_name blk slot);
  check Alcotest.int "age" 27 (Smc.Field.get_int f_age blk slot);
  check Alcotest.int "count" 1 (Smc.Collection.count persons)

let test_remove_semantics () =
  (* The paper's §2 example: after persons.Remove(adam), dereferencing adam
     throws a null-reference exception. *)
  let _rt, persons = make_persons () in
  let adam = add_person persons ~name:"Adam" ~age:27 in
  check Alcotest.bool "remove" true (Smc.Collection.remove persons adam);
  check Alcotest.bool "mem is false" false (Smc.Collection.mem persons adam);
  Alcotest.check_raises "deref raises" Constants.Null_reference (fun () ->
      ignore (Smc.Collection.deref persons adam));
  check Alcotest.bool "double remove is false" false (Smc.Collection.remove persons adam)

let test_bag_enumeration_order () =
  (* Enumeration is in memory (insertion) order for a fresh collection. *)
  let _rt, persons = make_persons () in
  for i = 0 to 99 do
    ignore (add_person persons ~name:(Printf.sprintf "p%d" i) ~age:i : Smc.Ref.t)
  done;
  let ages = ref [] in
  Smc.Collection.iter persons ~f:(fun blk slot ->
      ages := Smc.Field.get_int f_age blk slot :: !ages);
  check (Alcotest.list Alcotest.int) "memory order" (List.init 100 Fun.id) (List.rev !ages)

let test_fold_and_iter_refs () =
  let _rt, persons = make_persons () in
  let refs = List.init 50 (fun i -> add_person persons ~name:"x" ~age:i) in
  let total = Smc.Collection.fold persons ~init:0 ~f:(fun acc blk slot ->
      acc + Smc.Field.get_int f_age blk slot) in
  check Alcotest.int "fold sums ages" (50 * 49 / 2) total;
  let seen = ref [] in
  Smc.Collection.iter_refs persons ~f:(fun r -> seen := r :: !seen);
  check Alcotest.int "iter_refs yields all" 50 (List.length !seen);
  List.iter
    (fun r -> check Alcotest.bool "yielded refs are live" true (Smc.Collection.mem persons r))
    !seen;
  List.iter (fun r -> ignore (Smc.Collection.remove persons r : bool)) refs

let test_ref_equality_and_hash () =
  let _rt, persons = make_persons () in
  let a = add_person persons ~name:"a" ~age:1 in
  let b = add_person persons ~name:"b" ~age:2 in
  check Alcotest.bool "distinct refs" false (Smc.Ref.equal a b);
  check Alcotest.bool "self equal" true (Smc.Ref.equal a a);
  check Alcotest.bool "null is null" true (Smc.Ref.is_null Smc.Ref.null);
  check Alcotest.bool "live ref not null" false (Smc.Ref.is_null a)

let test_inter_collection_refs_indirect () =
  let rt, persons = make_persons () in
  let orders =
    Smc.Collection.create rt ~name:"orders" ~layout:order_layout ~slots_per_block:32 ()
  in
  let adam = add_person persons ~name:"Adam" ~age:27 in
  let order =
    Smc.Collection.add orders ~init:(fun blk slot ->
        Smc.Field.set_ref f_customer ~target:persons blk slot adam;
        Smc.Field.set_dec f_price blk slot (Smc_decimal.Decimal.of_cents 999))
  in
  let oblk, oslot = Smc.Collection.deref orders order in
  (match Smc.Field.follow f_customer ~target:persons oblk oslot with
  | None -> Alcotest.fail "customer should resolve"
  | Some (pblk, pslot) ->
    check Alcotest.int "joined age" 27 (Smc.Field.get_int f_age pblk pslot));
  (* Removing the person nulls the stored reference on next follow. *)
  ignore (Smc.Collection.remove persons adam : bool);
  check Alcotest.bool "follow after removal is None" true
    (Smc.Field.follow f_customer ~target:persons oblk oslot = None);
  check Alcotest.bool "get_ref after removal is null" true
    (Smc.Ref.is_null (Smc.Field.get_ref f_customer ~target:persons oblk oslot))

let test_inter_collection_refs_direct () =
  let rt = Runtime.create () in
  let persons =
    Smc.Collection.create rt ~name:"persons" ~layout:person_layout ~mode:Context.Direct
      ~slots_per_block:32 ()
  in
  let orders =
    Smc.Collection.create rt ~name:"orders" ~layout:order_layout ~slots_per_block:32 ()
  in
  let adam = add_person persons ~name:"Adam" ~age:27 in
  let order =
    Smc.Collection.add orders ~init:(fun blk slot ->
        Smc.Field.set_ref f_customer ~target:persons blk slot adam)
  in
  let oblk, oslot = Smc.Collection.deref orders order in
  (match Smc.Field.follow f_customer ~target:persons oblk oslot with
  | None -> Alcotest.fail "customer should resolve through direct pointer"
  | Some (pblk, pslot) ->
    check Alcotest.int "joined age" 27 (Smc.Field.get_int f_age pblk pslot));
  let round = Smc.Field.get_ref f_customer ~target:persons oblk oslot in
  check Alcotest.bool "get_ref rebuilds an equivalent ref" true
    (Smc.Ref.equal round adam);
  ignore (Smc.Collection.remove persons adam : bool);
  check Alcotest.bool "direct follow after removal is None" true
    (Smc.Field.follow f_customer ~target:persons oblk oslot = None)

let test_columnar_collection_roundtrip () =
  let _rt, persons = make_persons ~placement:Block.Columnar () in
  let refs = List.init 40 (fun i -> add_person persons ~name:(Printf.sprintf "p%d" i) ~age:i) in
  List.iteri
    (fun i r ->
      let blk, slot = Smc.Collection.deref persons r in
      check Alcotest.int "columnar age" i (Smc.Field.get_int f_age blk slot);
      check Alcotest.string "columnar name" (Printf.sprintf "p%d" i)
        (Smc.Field.get_string f_name blk slot))
    refs

let test_collection_compact_through_api () =
  let _rt, persons = make_persons () in
  let refs = Array.init 320 (fun i -> add_person persons ~name:"x" ~age:i) in
  Array.iteri (fun i r -> if i mod 10 <> 0 then ignore (Smc.Collection.remove persons r : bool)) refs;
  let before = Smc.Collection.memory_words persons in
  let report = Smc.Collection.compact persons ~occupancy_threshold:0.5 () in
  check Alcotest.bool "ran" false report.Compaction.aborted;
  check Alcotest.bool "memory shrank" true (Smc.Collection.memory_words persons < before);
  Array.iteri
    (fun i r ->
      if i mod 10 = 0 then begin
        let blk, slot = Smc.Collection.deref persons r in
        check Alcotest.int "survivor intact" i (Smc.Field.get_int f_age blk slot)
      end)
    refs

let test_field_type_mismatch () =
  Alcotest.check_raises "wrong type"
    (Invalid_argument "Field: person.age is not a Str field") (fun () ->
      ignore (Smc.Field.str person_layout "age"))

let test_set_ref_tabular_typing () =
  (* A Ref "person" field must reject references into a non-person
     collection (§2's tabular-class typing rule). *)
  let rt, persons = make_persons () in
  let orders =
    Smc.Collection.create rt ~name:"orders" ~layout:order_layout ~slots_per_block:32 ()
  in
  let adam = add_person persons ~name:"Adam" ~age:27 in
  let o1 =
    Smc.Collection.add orders ~init:(fun blk slot ->
        Smc.Field.set_ref f_customer ~target:persons blk slot adam)
  in
  let ob, os = Smc.Collection.deref orders o1 in
  Alcotest.check_raises "cross-typed ref rejected"
    (Invalid_argument "Field.set_ref: field customer expects a person, got a order")
    (fun () -> Smc.Field.set_ref f_customer ~target:orders ob os o1)

let test_get_char () =
  let _rt, persons = make_persons () in
  let r = add_person persons ~name:"Zoe" ~age:1 in
  let blk, slot = Smc.Collection.deref persons r in
  check Alcotest.char "first char" 'Z' (Smc.Field.get_char f_name blk slot)

let test_iter_scan_matches_iter () =
  let _rt, persons = make_persons () in
  let refs = List.init 100 (fun i -> add_person persons ~name:"x" ~age:i) in
  List.iteri (fun i r -> if i mod 7 = 0 then ignore (Smc.Collection.remove persons r : bool)) refs;
  let via_iter = ref 0 and via_scan = ref 0 and via_per_block = ref 0 in
  Smc.Collection.iter persons ~f:(fun blk slot ->
      via_iter := !via_iter + Smc.Field.get_int f_age blk slot);
  Smc.Collection.iter_scan persons ~on_block:(fun blk ->
      fun slot -> via_scan := !via_scan + Smc.Field.get_int f_age blk slot);
  Smc.Collection.iter_per_block persons ~f:(fun blk slot ->
      via_per_block := !via_per_block + Smc.Field.get_int f_age blk slot);
  check Alcotest.int "iter_scan agrees" !via_iter !via_scan;
  check Alcotest.int "iter_per_block agrees" !via_iter !via_per_block

let test_string_eq_matcher () =
  let _rt, persons = make_persons () in
  ignore (add_person persons ~name:"Alice" ~age:1 : Smc.Ref.t);
  ignore (add_person persons ~name:"Bob" ~age:2 : Smc.Ref.t);
  ignore (add_person persons ~name:"Alic" ~age:3 : Smc.Ref.t);
  let is_alice = Smc.Field.string_eq f_name "Alice" in
  let hits = ref [] in
  Smc.Collection.iter persons ~f:(fun blk slot ->
      if is_alice blk slot then hits := Smc.Field.get_int f_age blk slot :: !hits);
  check (Alcotest.list Alcotest.int) "exact match only" [ 1 ] !hits

let test_follow_loc_agrees_with_follow () =
  let rt, persons = make_persons () in
  let orders =
    Smc.Collection.create rt ~name:"orders" ~layout:order_layout ~slots_per_block:32 ()
  in
  let people = Array.init 20 (fun i -> add_person persons ~name:"p" ~age:i) in
  let order_refs =
    Array.init 20 (fun i ->
        Smc.Collection.add orders ~init:(fun blk slot ->
            Smc.Field.set_ref f_customer ~target:persons blk slot people.(i)))
  in
  ignore (Smc.Collection.remove persons people.(7) : bool);
  Array.iter
    (fun r ->
      let ob, os = Smc.Collection.deref orders r in
      let via_follow = Smc.Field.follow f_customer ~target:persons ob os in
      let via_loc = Smc.Field.follow_loc f_customer ~target:persons ob os in
      match (via_follow, via_loc) with
      | None, loc -> check Alcotest.bool "both dead" true (loc < 0)
      | Some (pb, ps), loc ->
        check Alcotest.bool "both live" true (loc >= 0);
        let lb = Smc.Collection.loc_block persons loc and ls = Smc.Collection.loc_slot loc in
        check Alcotest.int "same block" pb.Smc_offheap.Block.id lb.Smc_offheap.Block.id;
        check Alcotest.int "same slot" ps ls)
    order_refs

let test_with_read_nesting () =
  let _rt, persons = make_persons () in
  ignore (add_person persons ~name:"a" ~age:1 : Smc.Ref.t);
  let result =
    Smc.Collection.with_read persons (fun () ->
        Smc.Collection.with_read persons (fun () -> Smc.Collection.count persons))
  in
  check Alcotest.int "nested read works" 1 result

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let prop_collection_models_set =
  (* Model-based test: a collection driven by random add/remove matches a
     reference implementation (int-keyed map). *)
  qtest "collection: model-based add/remove/count/iter"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 300) (QCheck.int_range 0 999))
    (fun ops ->
      let _rt, persons = make_persons () in
      let model = Hashtbl.create 64 in
      let next = ref 0 in
      List.iter
        (fun op ->
          if op < 600 || Hashtbl.length model = 0 then begin
            let id = !next in
            incr next;
            let r = add_person persons ~name:(string_of_int id) ~age:id in
            Hashtbl.replace model id r
          end
          else begin
            let keys = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
            let k = List.nth keys (op mod List.length keys) in
            ignore (Smc.Collection.remove persons (Hashtbl.find model k) : bool);
            Hashtbl.remove model k
          end)
        ops;
      (* count matches, and the enumerated bag equals the model's key set *)
      if Smc.Collection.count persons <> Hashtbl.length model then false
      else begin
        let seen = Hashtbl.create 64 in
        Smc.Collection.iter persons ~f:(fun blk slot ->
            Hashtbl.replace seen (Smc.Field.get_int f_age blk slot) ());
        Hashtbl.length seen = Hashtbl.length model
        && Hashtbl.fold (fun k _ acc -> acc && Hashtbl.mem seen k) model true
      end)

let () =
  Alcotest.run "smc_core"
    [
      ( "collection",
        [
          Alcotest.test_case "add and get" `Quick test_add_and_get;
          Alcotest.test_case "remove semantics" `Quick test_remove_semantics;
          Alcotest.test_case "bag enumeration order" `Quick test_bag_enumeration_order;
          Alcotest.test_case "fold and iter_refs" `Quick test_fold_and_iter_refs;
          Alcotest.test_case "ref equality and hash" `Quick test_ref_equality_and_hash;
          Alcotest.test_case "with_read nesting" `Quick test_with_read_nesting;
          Alcotest.test_case "iter variants agree" `Quick test_iter_scan_matches_iter;
          Alcotest.test_case "string_eq matcher" `Quick test_string_eq_matcher;
          Alcotest.test_case "follow_loc agrees with follow" `Quick
            test_follow_loc_agrees_with_follow;
          prop_collection_models_set;
        ] );
      ( "references",
        [
          Alcotest.test_case "inter-collection indirect" `Quick
            test_inter_collection_refs_indirect;
          Alcotest.test_case "inter-collection direct" `Quick
            test_inter_collection_refs_direct;
        ] );
      ( "variants",
        [
          Alcotest.test_case "columnar roundtrip" `Quick test_columnar_collection_roundtrip;
          Alcotest.test_case "compact through api" `Quick test_collection_compact_through_api;
        ] );
      ( "fields",
        [
          Alcotest.test_case "type mismatch" `Quick test_field_type_mismatch;
          Alcotest.test_case "tabular ref typing" `Quick test_set_ref_tabular_typing;
          Alcotest.test_case "get_char" `Quick test_get_char;
        ] );
    ]
