(* Tests for the managed baseline collections. *)

open Smc_managed

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Vector *)

let test_vector_add_get () =
  let v = Vector.create () in
  for i = 0 to 99 do
    Vector.add v (i * 2)
  done;
  check Alcotest.int "length" 100 (Vector.length v);
  check Alcotest.int "get" 84 (Vector.get v 42);
  Vector.set v 42 (-1);
  check Alcotest.int "set" (-1) (Vector.get v 42)

let test_vector_bounds () =
  let v = Vector.create () in
  Vector.add v 1;
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vector: index out of bounds")
    (fun () -> ignore (Vector.get v 1));
  Alcotest.check_raises "negative" (Invalid_argument "Vector: index out of bounds") (fun () ->
      ignore (Vector.get v (-1)))

let test_vector_remove_bulk () =
  let v = Vector.of_array (Array.init 100 Fun.id) in
  let removed = Vector.remove_bulk v ~pred:(fun x -> x mod 3 = 0) in
  check Alcotest.int "removed count" 34 removed;
  check Alcotest.int "length" 66 (Vector.length v);
  Vector.iter v ~f:(fun x -> if x mod 3 = 0 then Alcotest.fail "survivor matches pred");
  (* Order preserved. *)
  check Alcotest.int "first" 1 (Vector.get v 0);
  check Alcotest.int "second" 2 (Vector.get v 1)

let test_vector_remove_at () =
  let v = Vector.of_array [| 10; 20; 30; 40 |] in
  Vector.remove_at v 1;
  check (Alcotest.array Alcotest.int) "shifted" [| 10; 30; 40 |] (Vector.to_array v)

let test_vector_clear_and_fold () =
  let v = Vector.of_array (Array.init 10 Fun.id) in
  check Alcotest.int "fold sum" 45 (Vector.fold v ~init:0 ~f:( + ));
  Vector.clear v;
  check Alcotest.int "cleared" 0 (Vector.length v)

let prop_vector_models_list =
  qtest "vector: behaves like a list under add/remove_bulk"
    QCheck.(pair (list small_int) (int_range 0 10))
    (fun (xs, k) ->
      let v = Vector.create () in
      List.iter (Vector.add v) xs;
      let expected = List.filter (fun x -> x mod (k + 2) <> 0) xs in
      ignore (Vector.remove_bulk v ~pred:(fun x -> x mod (k + 2) = 0) : int);
      Array.to_list (Vector.to_array v) = expected)

(* ------------------------------------------------------------------ *)
(* Concurrent_dictionary *)

let test_dict_basics () =
  let d = Concurrent_dictionary.create () in
  Concurrent_dictionary.add d ~key:1 "one";
  Concurrent_dictionary.add d ~key:2 "two";
  check Alcotest.int "length" 2 (Concurrent_dictionary.length d);
  check (Alcotest.option Alcotest.string) "find" (Some "one")
    (Concurrent_dictionary.find d ~key:1);
  check Alcotest.bool "mem" true (Concurrent_dictionary.mem d ~key:2);
  check Alcotest.bool "remove" true (Concurrent_dictionary.remove d ~key:1);
  check Alcotest.bool "remove again" false (Concurrent_dictionary.remove d ~key:1);
  check (Alcotest.option Alcotest.string) "gone" None (Concurrent_dictionary.find d ~key:1)

let test_dict_replace () =
  let d = Concurrent_dictionary.create () in
  Concurrent_dictionary.add d ~key:7 "a";
  Concurrent_dictionary.add d ~key:7 "b";
  check Alcotest.int "no duplicate" 1 (Concurrent_dictionary.length d);
  check (Alcotest.option Alcotest.string) "replaced" (Some "b")
    (Concurrent_dictionary.find d ~key:7)

let test_dict_concurrent () =
  let d = Concurrent_dictionary.create () in
  let n_domains = 4 and per = 2_000 in
  let domains =
    List.init n_domains (fun i ->
        Domain.spawn (fun () ->
            for j = 0 to per - 1 do
              Concurrent_dictionary.add d ~key:((i * per) + j) j
            done))
  in
  List.iter Domain.join domains;
  check Alcotest.int "all inserted" (n_domains * per) (Concurrent_dictionary.length d);
  let sum = Concurrent_dictionary.fold d ~init:0 ~f:(fun acc _ v -> acc + v) in
  check Alcotest.int "values intact" (n_domains * (per * (per - 1) / 2)) sum

(* ------------------------------------------------------------------ *)
(* Concurrent_bag *)

let test_bag_basics () =
  let b = Concurrent_bag.create () in
  for i = 1 to 100 do
    Concurrent_bag.add b i
  done;
  check Alcotest.int "length" 100 (Concurrent_bag.length b);
  check Alcotest.int "fold" 5050 (Concurrent_bag.fold b ~init:0 ~f:( + ))

let test_bag_multidomain () =
  let b = Concurrent_bag.create () in
  let n_domains = 4 and per = 5_000 in
  let domains =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for j = 1 to per do
              Concurrent_bag.add b j
            done))
  in
  List.iter Domain.join domains;
  check Alcotest.int "all present" (n_domains * per) (Concurrent_bag.length b);
  check Alcotest.int "sum" (n_domains * (per * (per + 1) / 2))
    (Concurrent_bag.fold b ~init:0 ~f:( + ))

let () =
  Alcotest.run "smc_managed"
    [
      ( "vector",
        [
          Alcotest.test_case "add/get/set" `Quick test_vector_add_get;
          Alcotest.test_case "bounds" `Quick test_vector_bounds;
          Alcotest.test_case "remove_bulk" `Quick test_vector_remove_bulk;
          Alcotest.test_case "remove_at" `Quick test_vector_remove_at;
          Alcotest.test_case "clear and fold" `Quick test_vector_clear_and_fold;
          prop_vector_models_list;
        ] );
      ( "concurrent_dictionary",
        [
          Alcotest.test_case "basics" `Quick test_dict_basics;
          Alcotest.test_case "replace" `Quick test_dict_replace;
          Alcotest.test_case "concurrent adds" `Quick test_dict_concurrent;
        ] );
      ( "concurrent_bag",
        [
          Alcotest.test_case "basics" `Quick test_bag_basics;
          Alcotest.test_case "multi-domain adds" `Quick test_bag_multidomain;
        ] );
    ]
