(* Tests for the columnstore baseline: encodings, roundtrips, segment
   elimination, clustered range seeks. *)

open Smc_columnstore

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let encoding_name col =
  match col with
  | Column.Ints { enc = Column.Raw _; _ } -> "raw"
  | Column.Ints { enc = Column.Rle _; _ } -> "rle"
  | Column.Ints { enc = Column.Dict _; _ } -> "dict"
  | Column.Strs _ -> "strs"

(* ------------------------------------------------------------------ *)
(* Encoding selection *)

let test_rle_chosen_for_runs () =
  let xs = Array.init 10_000 (fun i -> i / 1000) in
  check Alcotest.string "runs pick RLE" "rle" (encoding_name (Column.encode_ints xs))

let test_dict_chosen_for_low_cardinality () =
  let xs = Array.init 10_000 (fun i -> (i * 37) mod 17 * 1000) in
  check Alcotest.string "few distinct pick dict" "dict" (encoding_name (Column.encode_ints xs))

let test_raw_chosen_for_random () =
  let g = Smc_util.Prng.create ~seed:5L () in
  let xs = Array.init 10_000 (fun _ -> Smc_util.Prng.int g 1_000_000_000) in
  check Alcotest.string "random picks raw" "raw" (encoding_name (Column.encode_ints xs))

let test_compression_shrinks () =
  let xs = Array.init 100_000 (fun i -> i / 5000) in
  let col = Column.encode_ints xs in
  check Alcotest.bool "rle much smaller than raw" true
    (Column.bytes_estimate col * 10 < 8 * Array.length xs)

(* ------------------------------------------------------------------ *)
(* Roundtrips *)

let roundtrip xs =
  let col = Column.encode_ints xs in
  Array.for_all Fun.id (Array.mapi (fun i x -> Column.get_int col i = x) xs)

let prop_roundtrip_random =
  qtest "column: random ints roundtrip" QCheck.(array_of_size (QCheck.Gen.int_range 1 500) int)
    (fun xs ->
      let xs = Array.map (fun x -> x land max_int) xs in
      roundtrip xs)

let prop_roundtrip_runs =
  qtest "column: runny ints roundtrip"
    QCheck.(pair (int_range 1 300) (int_range 1 20))
    (fun (n, runlen) ->
      let xs = Array.init n (fun i -> i / runlen) in
      roundtrip xs)

let test_string_roundtrip () =
  let xs = [| "alpha"; "beta"; "alpha"; "gamma"; "beta" |] in
  let col = Column.encode_strings xs in
  Array.iteri (fun i s -> check Alcotest.string "string" s (Column.get_string col i)) xs

(* ------------------------------------------------------------------ *)
(* Range iteration / segment elimination *)

let test_iter_range_matches_filter () =
  let g = Smc_util.Prng.create ~seed:9L () in
  let xs = Array.init 20_000 (fun _ -> Smc_util.Prng.int g 1000) in
  let col = Column.encode_ints xs in
  let expected = Array.to_list xs |> List.filteri (fun _ _ -> true)
                 |> List.filter (fun x -> x >= 100 && x <= 200) |> List.length in
  let seen = ref 0 in
  Column.iter_int_range col ~lo:100 ~hi:200 ~f:(fun row v ->
      if xs.(row) <> v then Alcotest.fail "wrong value for row";
      incr seen);
  check Alcotest.int "range count" expected !seen

let test_iter_range_eliminates_segments () =
  (* Sorted data: a narrow range must visit few rows; verified indirectly by
     matching the exact count (correctness) on RLE-coded sorted input. *)
  let xs = Array.init 50_000 (fun i -> i / 10) in
  let col = Column.encode_ints xs in
  let seen = ref 0 in
  Column.iter_int_range col ~lo:2_000 ~hi:2_001 ~f:(fun _ _ -> incr seen);
  check Alcotest.int "exactly the 20 matching rows" 20 !seen

let test_table_clustered_seek () =
  let g = Smc_util.Prng.create ~seed:4L () in
  let n = 10_000 in
  let dates = Array.init n (fun _ -> Smc_util.Prng.int g 2_000) in
  let vals = Array.init n (fun i -> i) in
  let t =
    Table.create ~name:"t" ~sort_by:"d"
      ~columns:[ ("d", `Ints dates); ("v", `Ints vals) ]
      ()
  in
  check (Alcotest.option Alcotest.string) "sort key" (Some "d") (Table.sort_key t);
  (* Range via clustered seek equals brute-force count over source. *)
  let expected = Array.fold_left (fun acc d -> if d >= 500 && d <= 700 then acc + 1 else acc) 0 dates in
  let seen = ref 0 in
  Table.iter_range t ~col:"d" ~lo:500 ~hi:700 ~f:(fun row ->
      let d = Table.get_int t "d" row in
      if d < 500 || d > 700 then Alcotest.fail "row outside range";
      incr seen);
  check Alcotest.int "clustered range count" expected !seen;
  (* Non-clustered column range still correct. *)
  let seen_v = ref 0 in
  Table.iter_range t ~col:"v" ~lo:0 ~hi:99 ~f:(fun _ -> incr seen_v);
  check Alcotest.int "non-clustered range count" 100 !seen_v

let test_table_validation () =
  Alcotest.check_raises "mismatched lengths"
    (Invalid_argument "Table.create: column b has 2 rows, expected 3") (fun () ->
      ignore
        (Table.create ~name:"t"
           ~columns:[ ("a", `Ints [| 1; 2; 3 |]); ("b", `Ints [| 1; 2 |]) ]
           ()));
  Alcotest.check_raises "no columns" (Invalid_argument "Table.create: no columns") (fun () ->
      ignore (Table.create ~name:"t" ~columns:[] ()))

let test_table_string_columns () =
  let t =
    Table.create ~name:"t"
      ~columns:[ ("k", `Ints [| 1; 2; 3 |]); ("s", `Strs [| "x"; "y"; "x" |]) ]
      ()
  in
  check Alcotest.string "string col" "y" (Table.get_string t "s" 1);
  check Alcotest.int "nrows" 3 (Table.nrows t)

let () =
  Alcotest.run "smc_columnstore"
    [
      ( "encodings",
        [
          Alcotest.test_case "rle for runs" `Quick test_rle_chosen_for_runs;
          Alcotest.test_case "dict for low cardinality" `Quick
            test_dict_chosen_for_low_cardinality;
          Alcotest.test_case "raw for random" `Quick test_raw_chosen_for_random;
          Alcotest.test_case "compression shrinks" `Quick test_compression_shrinks;
        ] );
      ( "roundtrips",
        [
          prop_roundtrip_random;
          prop_roundtrip_runs;
          Alcotest.test_case "strings" `Quick test_string_roundtrip;
        ] );
      ( "ranges",
        [
          Alcotest.test_case "iter_range matches filter" `Quick test_iter_range_matches_filter;
          Alcotest.test_case "segment elimination exact" `Quick
            test_iter_range_eliminates_segments;
          Alcotest.test_case "clustered seek" `Quick test_table_clustered_seek;
        ] );
      ( "tables",
        [
          Alcotest.test_case "validation" `Quick test_table_validation;
          Alcotest.test_case "string columns" `Quick test_table_string_columns;
        ] );
    ]
