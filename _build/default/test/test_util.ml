(* Unit and property tests for smc_util and smc_decimal. *)

open Smc_util

let check = Alcotest.check
let qtest ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42L () in
  let b = Prng.create ~seed:42L () in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create ~seed:7L () in
  let b = Prng.split a in
  check Alcotest.bool "split differs from parent"
    (Prng.next_int64 a <> Prng.next_int64 b)
    true

let test_prng_bounds () =
  let g = Prng.create () in
  for _ = 1 to 10_000 do
    let v = Prng.int g 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_prng_int_in () =
  let g = Prng.create () in
  for _ = 1 to 10_000 do
    let v = Prng.int_in g (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "out of range: %d" v
  done

let test_prng_shuffle_permutation () =
  let g = Prng.create ~seed:3L () in
  let arr = Array.init 100 Fun.id in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "still a permutation" (Array.init 100 Fun.id) sorted

let test_prng_float_range () =
  let g = Prng.create () in
  for _ = 1 to 10_000 do
    let v = Prng.float g 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of range: %f" v
  done

(* ------------------------------------------------------------------ *)
(* Date *)

let test_date_roundtrip_known () =
  List.iter
    (fun (y, m, d) ->
      let t = Date.of_ymd y m d in
      check (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int) "ymd roundtrip" (y, m, d)
        (Date.to_ymd t))
    [ (1970, 1, 1); (1992, 1, 1); (1998, 12, 31); (2000, 2, 29); (1996, 2, 29); (2024, 7, 4) ]

let test_date_epoch () =
  check Alcotest.int "1970-01-01 is day 0" 0 (Date.of_ymd 1970 1 1);
  check Alcotest.int "1970-01-02 is day 1" 1 (Date.of_ymd 1970 1 2)

let test_date_string () =
  check Alcotest.string "format" "1995-03-15" (Date.to_string (Date.of_string "1995-03-15"))

let test_date_add_months () =
  let t = Date.of_string "1995-01-31" in
  check Alcotest.string "clamps day" "1995-02-28" (Date.to_string (Date.add_months t 1));
  check Alcotest.string "adds across year" "1996-01-31" (Date.to_string (Date.add_months t 12))

let test_date_invalid () =
  Alcotest.check_raises "bad month" (Invalid_argument "Date.of_ymd: month") (fun () ->
      ignore (Date.of_ymd 1995 13 1));
  Alcotest.check_raises "bad day" (Invalid_argument "Date.of_ymd: day") (fun () ->
      ignore (Date.of_ymd 1995 2 30))

let prop_date_roundtrip =
  qtest "date: of_ymd/to_ymd roundtrip for all days 1990-2005"
    QCheck.(int_range 7305 13148)
    (fun t ->
      let y, m, d = Date.to_ymd t in
      Date.of_ymd y m d = t)

let prop_date_add_days_monotone =
  qtest "date: add_days is additive"
    QCheck.(pair (int_range 0 20000) (int_range (-500) 500))
    (fun (t, n) -> Date.add_days (Date.add_days t n) (-n) = t)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean_median () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean xs);
  check (Alcotest.float 1e-9) "median" 2.5 (Stats.median xs);
  check (Alcotest.float 1e-9) "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |])

let test_stats_stddev () =
  check (Alcotest.float 1e-9) "stddev" (sqrt 2.5) (Stats.stddev [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  check (Alcotest.float 1e-9) "single sample" 0.0 (Stats.stddev [| 42.0 |])

let test_stats_percentile () =
  let xs = Array.init 101 float_of_int in
  check (Alcotest.float 1e-9) "p0" 0.0 (Stats.percentile xs 0.0);
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile xs 50.0);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile xs 100.0)

let test_stats_empty () =
  check (Alcotest.float 1e-9) "empty mean" 0.0 (Stats.mean [||]);
  check (Alcotest.float 1e-9) "empty median" 0.0 (Stats.median [||])

(* ------------------------------------------------------------------ *)
(* Table *)

let string_contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_table_renders () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_rowf t "%d | %s" 3 "four";
  let s = Table.to_string t in
  check Alcotest.bool "contains title" true (string_contains ~needle:"demo" s);
  check Alcotest.bool "contains row" true (string_contains ~needle:"four" s)

let test_table_arity_check () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: 1 cells for 2 columns in \"demo\"") (fun () ->
      Table.add_row t [ "x" ])

(* ------------------------------------------------------------------ *)
(* Striped locks *)

let test_striped_lock_mutual_exclusion () =
  let locks = Striped_lock.create ~stripes:4 () in
  let counter = ref 0 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Striped_lock.with_lock locks 42 (fun () -> incr counter)
            done))
  in
  List.iter Domain.join domains;
  check Alcotest.int "no lost updates" 40_000 !counter

let test_striped_lock_releases_on_exception () =
  let locks = Striped_lock.create () in
  (try Striped_lock.with_lock locks 1 (fun () -> failwith "boom") with Failure _ -> ());
  (* If the stripe were still held this would deadlock. *)
  check Alcotest.int "reacquires" 7 (Striped_lock.with_lock locks 1 (fun () -> 7))

(* ------------------------------------------------------------------ *)
(* Decimal *)

module D = Smc_decimal.Decimal

let test_decimal_basics () =
  check Alcotest.int "1 + 2 = 3" (D.of_int 3) (D.add (D.of_int 1) (D.of_int 2));
  check Alcotest.string "to_string whole" "5.00" (D.to_string (D.of_int 5));
  check Alcotest.string "to_string cents" "5.25" (D.to_string (D.of_cents 525));
  check Alcotest.string "negative" "-5.25" (D.to_string (D.neg (D.of_cents 525)))

let test_decimal_mul () =
  (* 1.50 * 2.50 = 3.75 *)
  check Alcotest.string "mul" "3.75" (D.to_string (D.mul (D.of_cents 150) (D.of_cents 250)));
  (* price * (1 - discount): 100.00 * 0.94 = 94.00 *)
  check Alcotest.string "discount" "94.00"
    (D.to_string (D.mul (D.of_int 100) (D.sub D.one (D.of_cents 6))))

let test_decimal_div () =
  check Alcotest.string "div" "2.50" (D.to_string (D.div (D.of_int 5) (D.of_int 2)));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (D.div D.one D.zero))

let test_decimal_string_roundtrip () =
  List.iter
    (fun s -> check Alcotest.string "roundtrip" s (D.to_string (D.of_string s)))
    [ "0.00"; "1.00"; "123.45"; "-7.10"; "0.0001"; "99999.99" ]

let test_decimal_avg () =
  check Alcotest.int "avg" (D.of_cents 250) (D.avg ~sum:(D.of_int 10) ~count:4);
  check Alcotest.int "avg empty" D.zero (D.avg ~sum:(D.of_int 10) ~count:0)

let test_decimal_acc () =
  let acc = D.Acc.make () in
  D.Acc.add acc (D.of_int 2);
  D.Acc.add_mul acc (D.of_int 3) (D.of_cents 150);
  check Alcotest.string "acc total" "6.50" (D.to_string (D.Acc.get acc));
  D.Acc.reset acc;
  check Alcotest.int "reset" 0 (D.Acc.get acc)

let prop_decimal_add_comm =
  qtest "decimal: addition commutes"
    QCheck.(pair (int_range (-1000000) 1000000) (int_range (-1000000) 1000000))
    (fun (a, b) -> D.add a b = D.add b a)

let prop_decimal_mul_one =
  qtest "decimal: x * 1 = x"
    QCheck.(int_range (-100000000) 100000000)
    (fun x -> D.mul x D.one = x)

let prop_decimal_string_roundtrip =
  qtest "decimal: string roundtrip"
    QCheck.(int_range (-1000000000) 1000000000)
    (fun x -> D.of_string (D.to_string x) = x)

let prop_decimal_mul_sign =
  qtest "decimal: mul sign behaviour"
    QCheck.(pair (int_range 1 10000000) (int_range 1 10000000))
    (fun (a, b) -> D.mul (D.neg a) b = D.neg (D.mul a b))

let () =
  Alcotest.run "smc_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_prng_int_in;
          Alcotest.test_case "shuffle is permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
        ] );
      ( "date",
        [
          Alcotest.test_case "roundtrip known dates" `Quick test_date_roundtrip_known;
          Alcotest.test_case "epoch origin" `Quick test_date_epoch;
          Alcotest.test_case "string format" `Quick test_date_string;
          Alcotest.test_case "add_months clamps" `Quick test_date_add_months;
          Alcotest.test_case "invalid dates rejected" `Quick test_date_invalid;
          prop_date_roundtrip;
          prop_date_add_days_monotone;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/median" `Quick test_stats_mean_median;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "empty arrays" `Quick test_stats_empty;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "arity check" `Quick test_table_arity_check;
        ] );
      ( "striped_lock",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_striped_lock_mutual_exclusion;
          Alcotest.test_case "releases on exception" `Quick
            test_striped_lock_releases_on_exception;
        ] );
      ( "decimal",
        [
          Alcotest.test_case "basics" `Quick test_decimal_basics;
          Alcotest.test_case "mul" `Quick test_decimal_mul;
          Alcotest.test_case "div" `Quick test_decimal_div;
          Alcotest.test_case "string roundtrip" `Quick test_decimal_string_roundtrip;
          Alcotest.test_case "avg" `Quick test_decimal_avg;
          Alcotest.test_case "accumulator" `Quick test_decimal_acc;
          prop_decimal_add_comm;
          prop_decimal_mul_one;
          prop_decimal_string_roundtrip;
          prop_decimal_mul_sign;
        ] );
    ]
