(* A product catalogue that is continuously refreshed — the paper's §2
   use case for collection-owned object lifetime ("removing a product from
   the collection usually means the product is no longer relevant to any
   other part of the application") and the §5 compaction machinery for
   collections that shrink heavily.

   Run with: dune exec examples/product_catalog.exe *)

open Smc_offheap
module C = Smc.Collection
module F = Smc.Field
module D = Smc_decimal.Decimal

let () =
  let rt = Runtime.create () in
  let product =
    Layout.create ~name:"product"
      [
        ("sku", Layout.Int);
        ("name", Layout.Str 24);
        ("price", Layout.Dec);
        ("stock", Layout.Int);
        ("discontinued", Layout.Bool);
      ]
  in
  let f_sku = F.int product "sku"
  and f_name = F.str product "name"
  and f_price = F.dec product "price"
  and f_stock = F.int product "stock" in
  let products = C.create rt ~name:"products" ~layout:product ~slots_per_block:256 () in
  let g = Smc_util.Prng.create ~seed:2024L () in

  (* Seasonal catalogue load. *)
  let catalogue = Hashtbl.create 1024 in
  let add_product sku =
    let r =
      C.add products ~init:(fun blk slot ->
          F.set_int f_sku blk slot sku;
          F.set_string f_name blk slot (Printf.sprintf "product-%05d" sku);
          F.set_dec f_price blk slot (D.of_cents (Smc_util.Prng.int_in g 99 99999));
          F.set_int f_stock blk slot (Smc_util.Prng.int_in g 0 500))
    in
    Hashtbl.replace catalogue sku r
  in
  for sku = 1 to 5_000 do
    add_product sku
  done;
  Printf.printf "catalogue: %d products in %d blocks (%.1f KB off-heap)\n"
    (C.count products) (C.block_count products)
    (float_of_int (C.memory_words products * 8) /. 1024.0);

  (* End of season: 80%% of the range is delisted. Removal ends the object's
     lifetime; the catalogue map's stale references all read as null. *)
  Hashtbl.iter
    (fun sku r -> if sku mod 5 <> 0 then ignore (C.remove products r : bool))
    catalogue;
  Printf.printf "after delisting: %d products, %d limbo slots, %d blocks\n"
    (C.count products) (C.limbo_count products) (C.block_count products);

  let stale = Hashtbl.fold (fun _ r acc -> if C.mem products r then acc else acc + 1) catalogue 0 in
  Printf.printf "stale references now reading as null: %d\n" stale;

  (* Heavy shrinkage triggers compaction (§5): live products relocate into
     fresh blocks, emptied blocks are retired, references keep working. *)
  let before = C.memory_words products in
  let report = C.compact products ~occupancy_threshold:0.5 () in
  Printf.printf
    "compaction: %d candidate blocks, %d groups, %d objects moved, %d blocks retired\n"
    report.Compaction.candidates report.Compaction.groups_formed
    report.Compaction.objects_moved report.Compaction.blocks_retired;
  Printf.printf "memory: %d -> %d words\n" before (C.memory_words products);

  (* Surviving references still dereference to the right objects. *)
  let checked = ref 0 in
  Hashtbl.iter
    (fun sku r ->
      match C.deref_opt products r with
      | Some (blk, slot) ->
        assert (F.get_int f_sku blk slot = sku);
        incr checked
      | None -> assert (sku mod 5 <> 0))
    catalogue;
  Printf.printf "verified %d surviving references after relocation\n" !checked;

  (* Restock query over the compacted collection. *)
  let low = ref 0 in
  C.iter products ~f:(fun blk slot -> if F.get_int f_stock blk slot < 50 then incr low);
  Printf.printf "products needing restock: %d of %d\n" !low (C.count products)
