(* Quickstart: the paper's §2 example — a self-managed collection of
   persons, references that become null on removal, and a compiled
   enumeration query.

   Run with: dune exec examples/quickstart.exe *)

open Smc_offheap
module C = Smc.Collection
module F = Smc.Field

let () =
  (* A runtime hosts the epoch manager, indirection table and block
     registry — one per application. *)
  let rt = Runtime.create () in

  (* Tabular types are described by layouts: fixed-size fields, inline
     strings, references to other tabular types. *)
  let person =
    Layout.create ~name:"person" [ ("name", Layout.Str 16); ("age", Layout.Int) ]
  in
  let f_name = F.str person "name" and f_age = F.int person "age" in

  (* Collection<Person> persons = new Collection<Person>(); *)
  let persons = C.create rt ~name:"persons" ~layout:person () in

  (* Person adam = persons.Add("Adam", 27); *)
  let add name age =
    C.add persons ~init:(fun blk slot ->
        F.set_string f_name blk slot name;
        F.set_int f_age blk slot age)
  in
  let adam = add "Adam" 27 in
  List.iter
    (fun (n, a) -> ignore (add n a : Smc.Ref.t))
    [ ("Beth", 17); ("Carol", 35); ("Dan", 16); ("Eve", 42) ];

  (* A compiled query: enumerate the collection's memory blocks inside one
     critical section, filter on the age field, collect references —
     exactly the generated code shown in §4 of the paper. *)
  let adults = ref [] in
  C.iter persons ~f:(fun blk slot ->
      if F.get_int f_age blk slot > 17 then
        adults := C.ref_of_slot persons blk slot :: !adults);
  Printf.printf "adults: %d of %d\n" (List.length !adults) (C.count persons);
  List.iter
    (fun r ->
      let blk, slot = C.deref persons r in
      Printf.printf "  %-6s age %d\n" (F.get_string f_name blk slot) (F.get_int f_age blk slot))
    (List.rev !adults);

  (* persons.Remove(adam): the object's lifetime ends with its removal;
     every outstanding reference now reads as null. *)
  assert (C.remove persons adam);
  (match C.deref_opt persons adam with
  | None -> print_endline "adam removed: reference reads as null"
  | Some _ -> assert false);
  (try
     ignore (C.deref persons adam);
     assert false
   with Constants.Null_reference -> print_endline "dereferencing adam raises Null_reference");

  Printf.printf "remaining persons: %d\n" (C.count persons);
  Printf.printf "off-heap memory: %d words in %d block(s)\n"
    (C.memory_words persons) (C.block_count persons)
