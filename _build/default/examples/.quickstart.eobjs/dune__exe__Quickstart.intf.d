examples/quickstart.mli:
