examples/business_intelligence.mli:
