examples/product_catalog.ml: Compaction Hashtbl Layout Printf Runtime Smc Smc_decimal Smc_offheap Smc_util
