examples/gc_pressure.ml: Array Bytes Gc List Printf Smc Smc_tpch Sys Unix
