examples/quickstart.ml: Constants Layout List Printf Runtime Smc Smc_offheap
