examples/business_intelligence.ml: Array List Printf Smc Smc_decimal Smc_query Smc_tpch
