(* Demonstrates the scalability claim of §1/§7: data parked in self-managed
   collections adds no garbage-collection load, so application latency stays
   flat as the data volume grows — while the same data in managed objects
   makes GC work (and worst-case pauses) grow with the collection.

   Run with: dune exec examples/gc_pressure.exe *)

module C = Smc.Collection

let allocate_churn ~seconds =
  (* A foreground workload allocating short- and medium-lived objects. *)
  let deadline = Unix.gettimeofday () +. seconds in
  let window = Array.make 1024 [] in
  let i = ref 0 in
  let max_pause = ref 0.0 in
  while Unix.gettimeofday () < deadline do
    let t0 = Unix.gettimeofday () in
    window.(!i land 1023) <- List.init 20 (fun j -> Bytes.create (16 + j));
    incr i;
    let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
    if dt > !max_pause then max_pause := dt
  done;
  ignore (Sys.opaque_identity window);
  !max_pause

let gc_words () = (Gc.quick_stat ()).Gc.heap_words

let () =
  let n = 400_000 in
  Printf.printf "parking %d lineitem objects two ways, then running an allocation churn...\n%!" n;

  (* Managed: objects on the OCaml heap, traced by every major GC. *)
  let ds = Smc_tpch.Dbgen.generate ~sf:(float_of_int n /. 6_000_000.0) () in
  let managed = Smc_tpch.Db_managed.of_vectors ds in
  Gc.full_major ();
  let heap_managed = gc_words () in
  let pause_managed = allocate_churn ~seconds:2.0 in
  Printf.printf "managed:       heap %6.1f MB, worst churn pause %6.2f ms\n%!"
    (float_of_int (heap_managed * 8) /. 1e6)
    pause_managed;
  ignore (Sys.opaque_identity managed);

  (* Self-managed: same data off-heap; the OCaml heap stays small. *)
  let db = Smc_tpch.Db_smc.load ds in
  Gc.full_major ();
  let heap_smc = gc_words () in
  let pause_smc = allocate_churn ~seconds:2.0 in
  Printf.printf "self-managed:  heap %6.1f MB (+ %.1f MB off-heap), worst churn pause %6.2f ms\n%!"
    (float_of_int (heap_smc * 8) /. 1e6)
    (float_of_int (Smc_tpch.Db_smc.memory_words db * 8) /. 1e6)
    pause_smc;
  Printf.printf "lineitems still queryable: %d\n" (C.count db.Smc_tpch.Db_smc.lineitems)
