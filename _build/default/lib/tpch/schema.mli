(** SMC layouts for the TPC-H tables (tabular classes, §2).

    Strings are inline fixed-capacity fields (their lifetime matches the
    object's); every key relation is a [Ref] field; money/rates are [Dec];
    dates are [Date]. Field capacities cover the generator's value
    domains. *)

val region : Smc_offheap.Layout.t
val nation : Smc_offheap.Layout.t
val supplier : Smc_offheap.Layout.t
val part : Smc_offheap.Layout.t
val partsupp : Smc_offheap.Layout.t
val customer : Smc_offheap.Layout.t
val order : Smc_offheap.Layout.t
val lineitem : Smc_offheap.Layout.t
