module T = Smc_columnstore.Table
module D = Smc_decimal.Decimal

let date_min = Smc_util.Date.of_ymd 1990 1 1
let date_max = Smc_util.Date.of_ymd 2000 1 1

let ends_with ~suffix s =
  let n = String.length suffix and m = String.length s in
  m >= n && String.sub s (m - n) n = suffix

let q1 (db : Db_column.t) =
  let cutoff =
    Smc_util.Date.add_days (Smc_util.Date.of_ymd 1998 12 1) (-Results.q1_delta_days)
  in
  let t = db.Db_column.lineitem in
  let qty_c = T.column t "l_quantity"
  and price_c = T.column t "l_extendedprice"
  and disc_c = T.column t "l_discount"
  and tax_c = T.column t "l_tax"
  and rf_c = T.column t "l_returnflag"
  and ls_c = T.column t "l_linestatus" in
  let n = 512 in
  let qty = Array.make n 0
  and base = Array.make n 0
  and disc_price = Array.make n 0
  and charge = Array.make n 0
  and disc = Array.make n 0
  and count = Array.make n 0 in
  T.iter_range t ~col:"l_shipdate" ~lo:date_min ~hi:cutoff ~f:(fun row ->
      let g =
        ((Smc_columnstore.Column.get_int rf_c row land 0x7F) lsl 1)
        lor (Smc_columnstore.Column.get_int ls_c row land 1)
      in
      let price = Smc_columnstore.Column.get_int price_c row in
      let d = Smc_columnstore.Column.get_int disc_c row in
      let dp = D.mul price (D.sub D.one d) in
      qty.(g) <- qty.(g) + Smc_columnstore.Column.get_int qty_c row;
      base.(g) <- base.(g) + price;
      disc_price.(g) <- disc_price.(g) + dp;
      charge.(g) <- charge.(g) + D.mul dp (D.add D.one (Smc_columnstore.Column.get_int tax_c row));
      disc.(g) <- disc.(g) + d;
      count.(g) <- count.(g) + 1);
  let rows = ref [] in
  for g = n - 1 downto 0 do
    if count.(g) > 0 then
      rows :=
        {
          Results.q1_returnflag = Char.chr (g lsr 1);
          q1_linestatus = (if g land 1 = 1 then 'O' else 'F');
          sum_qty = qty.(g);
          sum_base_price = base.(g);
          sum_disc_price = disc_price.(g);
          sum_charge = charge.(g);
          avg_qty = D.avg ~sum:qty.(g) ~count:count.(g);
          avg_price = D.avg ~sum:base.(g) ~count:count.(g);
          avg_disc = D.avg ~sum:disc.(g) ~count:count.(g);
          count_order = count.(g);
        }
        :: !rows
  done;
  Results.sort_q1 !rows

let q2 (db : Db_column.t) =
  (* Eligible regions/nations/suppliers/parts resolved via value joins. *)
  let region_key = ref (-1) in
  let rt = db.Db_column.region in
  T.iter_all rt ~f:(fun row ->
      if T.get_string rt "r_name" row = Results.q2_region then
        region_key := T.get_int rt "r_regionkey" row);
  let nt = db.Db_column.nation in
  let nation_in_region = Hashtbl.create 32 in
  T.iter_all nt ~f:(fun row ->
      if T.get_int nt "n_regionkey" row = !region_key then
        Hashtbl.replace nation_in_region (T.get_int nt "n_nationkey" row)
          (T.get_string nt "n_name" row));
  let st = db.Db_column.supplier in
  let eligible_supp = Hashtbl.create 1024 in
  T.iter_all st ~f:(fun row ->
      let nk = T.get_int st "s_nationkey" row in
      match Hashtbl.find_opt nation_in_region nk with
      | Some nname ->
        Hashtbl.replace eligible_supp
          (T.get_int st "s_suppkey" row)
          (T.get_string st "s_name" row, nname, T.get_int st "s_acctbal" row)
      | None -> ());
  let pt = db.Db_column.part in
  let eligible_part = Hashtbl.create 1024 in
  T.iter_all pt ~f:(fun row ->
      if
        T.get_int pt "p_size" row = Results.q2_size
        && ends_with ~suffix:Results.q2_type_suffix (T.get_string pt "p_type" row)
      then
        Hashtbl.replace eligible_part
          (T.get_int pt "p_partkey" row)
          (T.get_string pt "p_mfgr" row));
  let pst = db.Db_column.partsupp in
  let min_cost = Hashtbl.create 256 in
  T.iter_all pst ~f:(fun row ->
      let pk = T.get_int pst "ps_partkey" row in
      if Hashtbl.mem eligible_part pk && Hashtbl.mem eligible_supp (T.get_int pst "ps_suppkey" row)
      then begin
        let cost = T.get_int pst "ps_supplycost" row in
        match Hashtbl.find_opt min_cost pk with
        | Some c when D.compare c cost <= 0 -> ()
        | _ -> Hashtbl.replace min_cost pk cost
      end);
  let rows = ref [] in
  T.iter_all pst ~f:(fun row ->
      let pk = T.get_int pst "ps_partkey" row in
      match (Hashtbl.find_opt eligible_part pk, Hashtbl.find_opt min_cost pk) with
      | Some mfgr, Some c when D.equal c (T.get_int pst "ps_supplycost" row) -> (
        match Hashtbl.find_opt eligible_supp (T.get_int pst "ps_suppkey" row) with
        | Some (sname, nname, acctbal) ->
          rows :=
            {
              Results.q2_acctbal = acctbal;
              q2_s_name = sname;
              q2_n_name = nname;
              q2_partkey = pk;
              q2_mfgr = mfgr;
            }
            :: !rows
        | None -> ())
      | _ -> ());
  List.filteri (fun i _ -> i < 100) (Results.sort_q2 !rows)

let q3 (db : Db_column.t) =
  let ct = db.Db_column.customer in
  let building = Hashtbl.create 1024 in
  T.iter_all ct ~f:(fun row ->
      if T.get_string ct "c_mktsegment" row = Results.q3_segment then
        Hashtbl.replace building (T.get_int ct "c_custkey" row) ());
  let ot = db.Db_column.orders in
  let eligible_orders = Hashtbl.create 4096 in
  (* Clustered seek: orders sorted by orderdate. *)
  T.iter_range ot ~col:"o_orderdate" ~lo:date_min ~hi:(Results.q3_date - 1) ~f:(fun row ->
      if Hashtbl.mem building (T.get_int ot "o_custkey" row) then
        Hashtbl.replace eligible_orders
          (T.get_int ot "o_orderkey" row)
          (T.get_int ot "o_orderdate" row, T.get_int ot "o_shippriority" row));
  let lt = db.Db_column.lineitem in
  let ok_c = T.column lt "l_orderkey"
  and price_c = T.column lt "l_extendedprice"
  and disc_c = T.column lt "l_discount" in
  let revenue = Hashtbl.create 4096 in
  T.iter_range lt ~col:"l_shipdate" ~lo:(Results.q3_date + 1) ~hi:date_max ~f:(fun row ->
      let ok = Smc_columnstore.Column.get_int ok_c row in
      if Hashtbl.mem eligible_orders ok then begin
        let amount =
          D.mul
            (Smc_columnstore.Column.get_int price_c row)
            (D.sub D.one (Smc_columnstore.Column.get_int disc_c row))
        in
        match Hashtbl.find_opt revenue ok with
        | Some r -> r := D.add !r amount
        | None -> Hashtbl.add revenue ok (ref amount)
      end);
  let rows =
    Hashtbl.fold
      (fun ok r rows ->
        let odate, oprio = Hashtbl.find eligible_orders ok in
        {
          Results.q3_orderkey = ok;
          q3_revenue = !r;
          q3_orderdate = odate;
          q3_shippriority = oprio;
        }
        :: rows)
      revenue []
  in
  List.filteri (fun i _ -> i < 10) (Results.sort_q3 rows)

let q4 (db : Db_column.t) =
  let lo = Results.q4_date in
  let hi = Smc_util.Date.add_months lo 3 in
  let ot = db.Db_column.orders in
  let candidates = Hashtbl.create 4096 in
  T.iter_range ot ~col:"o_orderdate" ~lo ~hi:(hi - 1) ~f:(fun row ->
      Hashtbl.replace candidates
        (T.get_int ot "o_orderkey" row)
        (T.get_string ot "o_orderpriority" row));
  let lt = db.Db_column.lineitem in
  let ok_c = T.column lt "l_orderkey"
  and commit_c = T.column lt "l_commitdate"
  and receipt_c = T.column lt "l_receiptdate" in
  let seen = Hashtbl.create 4096 in
  let counts = Hashtbl.create 8 in
  T.iter_all lt ~f:(fun row ->
      if
        Smc_columnstore.Column.get_int commit_c row
        < Smc_columnstore.Column.get_int receipt_c row
      then begin
        let ok = Smc_columnstore.Column.get_int ok_c row in
        match Hashtbl.find_opt candidates ok with
        | Some priority when not (Hashtbl.mem seen ok) ->
          Hashtbl.add seen ok ();
          (match Hashtbl.find_opt counts priority with
          | Some r -> incr r
          | None -> Hashtbl.add counts priority (ref 1))
        | _ -> ()
      end);
  Results.sort_q4
    (Hashtbl.fold
       (fun p r rows -> { Results.q4_priority = p; q4_count = !r } :: rows)
       counts [])

let q5 (db : Db_column.t) =
  let lo = Results.q5_date in
  let hi = Smc_util.Date.add_months lo 12 in
  let region_key = ref (-1) in
  let rt = db.Db_column.region in
  T.iter_all rt ~f:(fun row ->
      if T.get_string rt "r_name" row = Results.q5_region then
        region_key := T.get_int rt "r_regionkey" row);
  let nt = db.Db_column.nation in
  let nation_name = Hashtbl.create 32 in
  T.iter_all nt ~f:(fun row ->
      if T.get_int nt "n_regionkey" row = !region_key then
        Hashtbl.replace nation_name (T.get_int nt "n_nationkey" row)
          (T.get_string nt "n_name" row));
  let st = db.Db_column.supplier in
  let supp_nation = Hashtbl.create 1024 in
  T.iter_all st ~f:(fun row ->
      Hashtbl.replace supp_nation (T.get_int st "s_suppkey" row)
        (T.get_int st "s_nationkey" row));
  let ct = db.Db_column.customer in
  let cust_nation = Hashtbl.create 4096 in
  T.iter_all ct ~f:(fun row ->
      Hashtbl.replace cust_nation (T.get_int ct "c_custkey" row)
        (T.get_int ct "c_nationkey" row));
  let ot = db.Db_column.orders in
  let order_cust = Hashtbl.create 4096 in
  T.iter_range ot ~col:"o_orderdate" ~lo ~hi:(hi - 1) ~f:(fun row ->
      Hashtbl.replace order_cust (T.get_int ot "o_orderkey" row) (T.get_int ot "o_custkey" row));
  let lt = db.Db_column.lineitem in
  let ok_c = T.column lt "l_orderkey"
  and sk_c = T.column lt "l_suppkey"
  and price_c = T.column lt "l_extendedprice"
  and disc_c = T.column lt "l_discount" in
  let revenue = Hashtbl.create 32 in
  T.iter_all lt ~f:(fun row ->
      match Hashtbl.find_opt order_cust (Smc_columnstore.Column.get_int ok_c row) with
      | None -> ()
      | Some custkey -> (
        let snation = Hashtbl.find supp_nation (Smc_columnstore.Column.get_int sk_c row) in
        match Hashtbl.find_opt nation_name snation with
        | Some nname when Hashtbl.find cust_nation custkey = snation -> (
          let amount =
            D.mul
              (Smc_columnstore.Column.get_int price_c row)
              (D.sub D.one (Smc_columnstore.Column.get_int disc_c row))
          in
          match Hashtbl.find_opt revenue nname with
          | Some r -> r := D.add !r amount
          | None -> Hashtbl.add revenue nname (ref amount))
        | _ -> ()));
  Results.sort_q5
    (Hashtbl.fold
       (fun n r rows -> { Results.q5_nation = n; q5_revenue = !r } :: rows)
       revenue [])

let q6 (db : Db_column.t) =
  let lo = Results.q6_date in
  let hi = Smc_util.Date.add_months lo 12 in
  let lt = db.Db_column.lineitem in
  let qty_c = T.column lt "l_quantity"
  and price_c = T.column lt "l_extendedprice"
  and disc_c = T.column lt "l_discount" in
  let acc = D.Acc.make () in
  T.iter_range lt ~col:"l_shipdate" ~lo ~hi:(hi - 1) ~f:(fun row ->
      let d = Smc_columnstore.Column.get_int disc_c row in
      if
        d >= Results.q6_disc_lo && d <= Results.q6_disc_hi
        && Smc_columnstore.Column.get_int qty_c row < Results.q6_qty
      then D.Acc.add_mul acc (Smc_columnstore.Column.get_int price_c row) d);
  D.Acc.get acc
