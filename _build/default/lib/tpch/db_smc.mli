(** TPC-H stored in self-managed collections.

    [load] builds the eight collections from a generated dataset, wiring
    every key relation as a stored reference (indirect or direct per the
    chosen mode) and registering direct-referrer edges so compaction can fix
    up stored direct pointers (§6). Field accessors for all tables are
    pre-resolved once here — queries use them directly, like the paper's
    generated code addressing fixed offsets. *)

type lineitem_fields = {
  l_order : Smc_offheap.Layout.field;
  l_part : Smc_offheap.Layout.field;
  l_supplier : Smc_offheap.Layout.field;
  l_linenumber : Smc_offheap.Layout.field;
  l_quantity : Smc_offheap.Layout.field;
  l_extendedprice : Smc_offheap.Layout.field;
  l_discount : Smc_offheap.Layout.field;
  l_tax : Smc_offheap.Layout.field;
  l_returnflag : Smc_offheap.Layout.field;
  l_linestatus : Smc_offheap.Layout.field;
  l_shipdate : Smc_offheap.Layout.field;
  l_commitdate : Smc_offheap.Layout.field;
  l_receiptdate : Smc_offheap.Layout.field;
  l_shipinstruct : Smc_offheap.Layout.field;
  l_shipmode : Smc_offheap.Layout.field;
  l_comment : Smc_offheap.Layout.field;
}

type order_fields = {
  o_orderkey : Smc_offheap.Layout.field;
  o_customer : Smc_offheap.Layout.field;
  o_orderstatus : Smc_offheap.Layout.field;
  o_totalprice : Smc_offheap.Layout.field;
  o_orderdate : Smc_offheap.Layout.field;
  o_orderpriority : Smc_offheap.Layout.field;
  o_clerk : Smc_offheap.Layout.field;
  o_shippriority : Smc_offheap.Layout.field;
  o_comment : Smc_offheap.Layout.field;
}

type customer_fields = {
  c_custkey : Smc_offheap.Layout.field;
  c_name : Smc_offheap.Layout.field;
  c_address : Smc_offheap.Layout.field;
  c_nation : Smc_offheap.Layout.field;
  c_phone : Smc_offheap.Layout.field;
  c_acctbal : Smc_offheap.Layout.field;
  c_mktsegment : Smc_offheap.Layout.field;
  c_comment : Smc_offheap.Layout.field;
}

type supplier_fields = {
  s_suppkey : Smc_offheap.Layout.field;
  s_name : Smc_offheap.Layout.field;
  s_address : Smc_offheap.Layout.field;
  s_nation : Smc_offheap.Layout.field;
  s_phone : Smc_offheap.Layout.field;
  s_acctbal : Smc_offheap.Layout.field;
  s_comment : Smc_offheap.Layout.field;
}

type part_fields = {
  p_partkey : Smc_offheap.Layout.field;
  p_name : Smc_offheap.Layout.field;
  p_mfgr : Smc_offheap.Layout.field;
  p_brand : Smc_offheap.Layout.field;
  p_type : Smc_offheap.Layout.field;
  p_size : Smc_offheap.Layout.field;
  p_container : Smc_offheap.Layout.field;
  p_retailprice : Smc_offheap.Layout.field;
  p_comment : Smc_offheap.Layout.field;
}

type partsupp_fields = {
  ps_part : Smc_offheap.Layout.field;
  ps_supplier : Smc_offheap.Layout.field;
  ps_availqty : Smc_offheap.Layout.field;
  ps_supplycost : Smc_offheap.Layout.field;
  ps_comment : Smc_offheap.Layout.field;
}

type nation_fields = {
  n_nationkey : Smc_offheap.Layout.field;
  n_name : Smc_offheap.Layout.field;
  n_region : Smc_offheap.Layout.field;
  n_comment : Smc_offheap.Layout.field;
}

type region_fields = {
  r_regionkey : Smc_offheap.Layout.field;
  r_name : Smc_offheap.Layout.field;
  r_comment : Smc_offheap.Layout.field;
}

type t = {
  rt : Smc_offheap.Runtime.t;
  regions : Smc.Collection.t;
  nations : Smc.Collection.t;
  suppliers : Smc.Collection.t;
  parts : Smc.Collection.t;
  partsupps : Smc.Collection.t;
  customers : Smc.Collection.t;
  orders : Smc.Collection.t;
  lineitems : Smc.Collection.t;
  rf : region_fields;
  nf : nation_fields;
  sf_ : supplier_fields;
  pf : part_fields;
  psf : partsupp_fields;
  cf : customer_fields;
  orf : order_fields;
  lf : lineitem_fields;
  order_refs : Smc.Ref.t array;  (** indexed by orderkey - 1 *)
  lineitem_refs : Smc.Ref.t array;  (** aligned with the dataset's lineitem array *)
}

val region_fields : region_fields
val nation_fields : nation_fields
val supplier_fields : supplier_fields
val part_fields : part_fields
val partsupp_fields : partsupp_fields
val customer_fields : customer_fields
val order_fields : order_fields
val lineitem_fields : lineitem_fields

val load :
  ?mode:Smc_offheap.Context.mode ->
  ?placement:Smc_offheap.Block.placement ->
  ?slots_per_block:int ->
  ?reclaim_threshold:float ->
  Row.dataset ->
  t

val memory_words : t -> int
(** Total off-heap words across all eight collections. *)
