(** TPC-H queries written in LINQ-to-objects style over managed collections:
    lazy [Seq] pipelines with one closure application per element per
    operator and intermediate objects between stages — the evaluation model
    whose inefficiencies §1 of the paper describes, and the baseline behind
    its "using LINQ instead of compiled code costs 40–400% more"
    observation. Results are identical to {!Q_managed}'s (asserted by the
    test suite); only the evaluation model differs. *)

val q1 : Db_managed.t -> Results.q1
val q3 : Db_managed.t -> Results.q3
val q6 : Db_managed.t -> Results.q6

(** The LINQ-style operators themselves, exposed for reuse/examples. *)
module Operators : sig
  val where : ('a -> bool) -> 'a Seq.t -> 'a Seq.t
  val select : ('a -> 'b) -> 'a Seq.t -> 'b Seq.t

  val group_by : ('a -> 'k) -> 'a Seq.t -> ('k * 'a list) Seq.t
  (** Materialises, like LINQ's GroupBy. *)

  val order_by_desc : ('a -> 'b) -> 'a Seq.t -> 'a Seq.t
  val take : int -> 'a Seq.t -> 'a Seq.t
  val sum_by : ('a -> Smc_decimal.Decimal.t) -> 'a Seq.t -> Smc_decimal.Decimal.t
  val count : 'a Seq.t -> int
end
