module D = Smc_decimal.Decimal

type q1_row = {
  q1_returnflag : char;
  q1_linestatus : char;
  sum_qty : D.t;
  sum_base_price : D.t;
  sum_disc_price : D.t;
  sum_charge : D.t;
  avg_qty : D.t;
  avg_price : D.t;
  avg_disc : D.t;
  count_order : int;
}

type q2_row = {
  q2_acctbal : D.t;
  q2_s_name : string;
  q2_n_name : string;
  q2_partkey : int;
  q2_mfgr : string;
}

type q3_row = {
  q3_orderkey : int;
  q3_revenue : D.t;
  q3_orderdate : Smc_util.Date.t;
  q3_shippriority : int;
}

type q4_row = { q4_priority : string; q4_count : int }

type q5_row = { q5_nation : string; q5_revenue : D.t }

type q7_row = {
  q7_supp_nation : string;
  q7_cust_nation : string;
  q7_year : int;
  q7_revenue : D.t;
}

type q10_row = {
  q10_custkey : int;
  q10_name : string;
  q10_revenue : D.t;
  q10_acctbal : D.t;
  q10_nation : string;
}

type q12_row = { q12_shipmode : string; q12_high : int; q12_low : int }

type q1 = q1_row list
type q2 = q2_row list
type q3 = q3_row list
type q4 = q4_row list
type q5 = q5_row list
type q6 = D.t
type q7 = q7_row list
type q10 = q10_row list
type q12 = q12_row list
type q14 = D.t
type q19 = D.t

let sort_q1 rows =
  List.sort
    (fun a b ->
      match Char.compare a.q1_returnflag b.q1_returnflag with
      | 0 -> Char.compare a.q1_linestatus b.q1_linestatus
      | c -> c)
    rows

let sort_q2 rows =
  List.sort
    (fun a b ->
      match D.compare b.q2_acctbal a.q2_acctbal with
      | 0 -> (
        match String.compare a.q2_n_name b.q2_n_name with
        | 0 -> (
          match String.compare a.q2_s_name b.q2_s_name with
          | 0 -> Int.compare a.q2_partkey b.q2_partkey
          | c -> c)
        | c -> c)
      | c -> c)
    rows

let sort_q3 rows =
  List.sort
    (fun a b ->
      match D.compare b.q3_revenue a.q3_revenue with
      | 0 -> Int.compare a.q3_orderdate b.q3_orderdate
      | c -> c)
    rows

let sort_q4 rows = List.sort (fun a b -> String.compare a.q4_priority b.q4_priority) rows

let sort_q5 rows = List.sort (fun a b -> D.compare b.q5_revenue a.q5_revenue) rows

let sort_q7 rows =
  List.sort
    (fun a b ->
      match String.compare a.q7_supp_nation b.q7_supp_nation with
      | 0 -> (
        match String.compare a.q7_cust_nation b.q7_cust_nation with
        | 0 -> Int.compare a.q7_year b.q7_year
        | c -> c)
      | c -> c)
    rows

let sort_q10 rows =
  List.sort
    (fun a b ->
      match D.compare b.q10_revenue a.q10_revenue with
      | 0 -> Int.compare a.q10_custkey b.q10_custkey
      | c -> c)
    rows

let sort_q12 rows =
  List.sort (fun a b -> String.compare a.q12_shipmode b.q12_shipmode) rows

let equal_q7 = List.equal (fun (a : q7_row) b -> a = b)
let equal_q10 = List.equal (fun (a : q10_row) b -> a = b)
let equal_q12 = List.equal (fun (a : q12_row) b -> a = b)

let equal_q1 = List.equal (fun (a : q1_row) b -> a = b)
let equal_q2 = List.equal (fun (a : q2_row) b -> a = b)
let equal_q3 = List.equal (fun (a : q3_row) b -> a = b)
let equal_q4 = List.equal (fun (a : q4_row) b -> a = b)
let equal_q5 = List.equal (fun (a : q5_row) b -> a = b)

let pp_q1 rows =
  String.concat "\n"
    (List.map
       (fun r ->
         Printf.sprintf "%c|%c|%s|%s|%s|%s|%s|%s|%s|%d" r.q1_returnflag r.q1_linestatus
           (D.to_string r.sum_qty) (D.to_string r.sum_base_price)
           (D.to_string r.sum_disc_price) (D.to_string r.sum_charge)
           (D.to_string r.avg_qty) (D.to_string r.avg_price) (D.to_string r.avg_disc)
           r.count_order)
       rows)

let pp_q3 rows =
  String.concat "\n"
    (List.map
       (fun r ->
         Printf.sprintf "%d|%s|%s|%d" r.q3_orderkey (D.to_string r.q3_revenue)
           (Smc_util.Date.to_string r.q3_orderdate) r.q3_shippriority)
       rows)

let pp_q5 rows =
  String.concat "\n"
    (List.map (fun r -> Printf.sprintf "%s|%s" r.q5_nation (D.to_string r.q5_revenue)) rows)

let q1_delta_days = 90
let q2_size = 15
let q2_type_suffix = "BRASS"
let q2_region = "EUROPE"
let q3_segment = "BUILDING"
let q3_date = Smc_util.Date.of_ymd 1995 3 15
let q4_date = Smc_util.Date.of_ymd 1993 7 1
let q5_region = "ASIA"
let q5_date = Smc_util.Date.of_ymd 1994 1 1
let q6_date = Smc_util.Date.of_ymd 1994 1 1
let q6_disc_lo = D.of_cents 5
let q6_disc_hi = D.of_cents 7
let q6_qty = D.of_int 24
let q7_nation1 = "FRANCE"
let q7_nation2 = "GERMANY"
let q7_date_lo = Smc_util.Date.of_ymd 1995 1 1
let q7_date_hi = Smc_util.Date.of_ymd 1996 12 31
let q10_date = Smc_util.Date.of_ymd 1993 10 1
let q12_modes = ("MAIL", "SHIP")
let q12_date = Smc_util.Date.of_ymd 1994 1 1
let q14_date = Smc_util.Date.of_ymd 1995 9 1
