type region = { r_regionkey : int; r_name : string; r_comment : string }

type nation = {
  n_nationkey : int;
  n_name : string;
  n_region : region;
  n_comment : string;
}

type supplier = {
  s_suppkey : int;
  s_name : string;
  s_address : string;
  s_nation : nation;
  s_phone : string;
  s_acctbal : Smc_decimal.Decimal.t;
  s_comment : string;
}

type part = {
  p_partkey : int;
  p_name : string;
  p_mfgr : string;
  p_brand : string;
  p_type : string;
  p_size : int;
  p_container : string;
  p_retailprice : Smc_decimal.Decimal.t;
  p_comment : string;
}

type partsupp = {
  ps_part : part;
  ps_supplier : supplier;
  ps_availqty : int;
  ps_supplycost : Smc_decimal.Decimal.t;
  ps_comment : string;
}

type customer = {
  c_custkey : int;
  c_name : string;
  c_address : string;
  c_nation : nation;
  c_phone : string;
  c_acctbal : Smc_decimal.Decimal.t;
  c_mktsegment : string;
  c_comment : string;
}

type order = {
  o_orderkey : int;
  o_customer : customer;
  o_orderstatus : char;
  o_totalprice : Smc_decimal.Decimal.t;
  o_orderdate : Smc_util.Date.t;
  o_orderpriority : string;
  o_clerk : string;
  o_shippriority : int;
  o_comment : string;
}

type lineitem = {
  l_order : order;
  l_part : part;
  l_supplier : supplier;
  l_linenumber : int;
  l_quantity : Smc_decimal.Decimal.t;
  l_extendedprice : Smc_decimal.Decimal.t;
  l_discount : Smc_decimal.Decimal.t;
  l_tax : Smc_decimal.Decimal.t;
  l_returnflag : char;
  l_linestatus : char;
  l_shipdate : Smc_util.Date.t;
  l_commitdate : Smc_util.Date.t;
  l_receiptdate : Smc_util.Date.t;
  l_shipinstruct : string;
  l_shipmode : string;
  l_comment : string;
}

type dataset = {
  sf : float;
  regions : region array;
  nations : nation array;
  suppliers : supplier array;
  parts : part array;
  partsupps : partsupp array;
  customers : customer array;
  orders : order array;
  lineitems : lineitem array;
}
