open Row
module D = Smc_decimal.Decimal

let ends_with ~suffix s =
  let n = String.length suffix and m = String.length s in
  m >= n && String.sub s (m - n) n = suffix

(* Q1: pricing summary report. *)
type q1_acc = {
  mutable a_qty : D.t;
  mutable a_base : D.t;
  mutable a_disc_price : D.t;
  mutable a_charge : D.t;
  mutable a_disc : D.t;
  mutable a_count : int;
}

let q1 (db : Db_managed.t) =
  let cutoff = Smc_util.Date.add_days (Smc_util.Date.of_ymd 1998 12 1) (-Results.q1_delta_days) in
  let groups : (char * char, q1_acc) Hashtbl.t = Hashtbl.create 8 in
  db.Db_managed.iter_lineitems (fun li ->
      if li.l_shipdate <= cutoff then begin
        let key = (li.l_returnflag, li.l_linestatus) in
        let acc =
          match Hashtbl.find_opt groups key with
          | Some acc -> acc
          | None ->
            let acc =
              {
                a_qty = D.zero;
                a_base = D.zero;
                a_disc_price = D.zero;
                a_charge = D.zero;
                a_disc = D.zero;
                a_count = 0;
              }
            in
            Hashtbl.add groups key acc;
            acc
        in
        let disc_price = D.mul li.l_extendedprice (D.sub D.one li.l_discount) in
        acc.a_qty <- D.add acc.a_qty li.l_quantity;
        acc.a_base <- D.add acc.a_base li.l_extendedprice;
        acc.a_disc_price <- D.add acc.a_disc_price disc_price;
        acc.a_charge <- D.add acc.a_charge (D.mul disc_price (D.add D.one li.l_tax));
        acc.a_disc <- D.add acc.a_disc li.l_discount;
        acc.a_count <- acc.a_count + 1
      end);
  Results.sort_q1
    (Hashtbl.fold
       (fun (rf, ls) acc rows ->
         {
           Results.q1_returnflag = rf;
           q1_linestatus = ls;
           sum_qty = acc.a_qty;
           sum_base_price = acc.a_base;
           sum_disc_price = acc.a_disc_price;
           sum_charge = acc.a_charge;
           avg_qty = D.avg ~sum:acc.a_qty ~count:acc.a_count;
           avg_price = D.avg ~sum:acc.a_base ~count:acc.a_count;
           avg_disc = D.avg ~sum:acc.a_disc ~count:acc.a_count;
           count_order = acc.a_count;
         }
         :: rows)
       groups [])

(* Q2: minimum-cost supplier. *)
let q2 (db : Db_managed.t) =
  let eligible (ps : partsupp) =
    ps.ps_part.p_size = Results.q2_size
    && ends_with ~suffix:Results.q2_type_suffix ps.ps_part.p_type
    && ps.ps_supplier.s_nation.n_region.r_name = Results.q2_region
  in
  let min_cost : (int, D.t) Hashtbl.t = Hashtbl.create 64 in
  db.Db_managed.iter_partsupps (fun ps ->
      if eligible ps then begin
        let k = ps.ps_part.p_partkey in
        match Hashtbl.find_opt min_cost k with
        | Some c when D.compare c ps.ps_supplycost <= 0 -> ()
        | _ -> Hashtbl.replace min_cost k ps.ps_supplycost
      end);
  let rows = ref [] in
  db.Db_managed.iter_partsupps (fun ps ->
      if eligible ps then begin
        match Hashtbl.find_opt min_cost ps.ps_part.p_partkey with
        | Some c when D.equal c ps.ps_supplycost ->
          rows :=
            {
              Results.q2_acctbal = ps.ps_supplier.s_acctbal;
              q2_s_name = ps.ps_supplier.s_name;
              q2_n_name = ps.ps_supplier.s_nation.n_name;
              q2_partkey = ps.ps_part.p_partkey;
              q2_mfgr = ps.ps_part.p_mfgr;
            }
            :: !rows
        | _ -> ()
      end);
  let sorted = Results.sort_q2 !rows in
  List.filteri (fun i _ -> i < 100) sorted

(* Q3: shipping priority. *)
type q3_acc = { o : order; mutable revenue : D.t }

let q3 (db : Db_managed.t) =
  let groups : (int, q3_acc) Hashtbl.t = Hashtbl.create 1024 in
  db.Db_managed.iter_lineitems (fun li ->
      if li.l_shipdate > Results.q3_date then begin
        let o = li.l_order in
        if o.o_orderdate < Results.q3_date && o.o_customer.c_mktsegment = Results.q3_segment
        then begin
          let acc =
            match Hashtbl.find_opt groups o.o_orderkey with
            | Some acc -> acc
            | None ->
              let acc = { o; revenue = D.zero } in
              Hashtbl.add groups o.o_orderkey acc;
              acc
          in
          acc.revenue <-
            D.add acc.revenue (D.mul li.l_extendedprice (D.sub D.one li.l_discount))
        end
      end);
  let rows =
    Hashtbl.fold
      (fun _ acc rows ->
        {
          Results.q3_orderkey = acc.o.o_orderkey;
          q3_revenue = acc.revenue;
          q3_orderdate = acc.o.o_orderdate;
          q3_shippriority = acc.o.o_shippriority;
        }
        :: rows)
      groups []
  in
  List.filteri (fun i _ -> i < 10) (Results.sort_q3 rows)

(* Q4: order priority checking. *)
let q4 (db : Db_managed.t) =
  let lo = Results.q4_date in
  let hi = Smc_util.Date.add_months lo 3 in
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let counts : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  db.Db_managed.iter_lineitems (fun li ->
      if li.l_commitdate < li.l_receiptdate then begin
        let o = li.l_order in
        if o.o_orderdate >= lo && o.o_orderdate < hi && not (Hashtbl.mem seen o.o_orderkey)
        then begin
          Hashtbl.add seen o.o_orderkey ();
          match Hashtbl.find_opt counts o.o_orderpriority with
          | Some r -> incr r
          | None -> Hashtbl.add counts o.o_orderpriority (ref 1)
        end
      end);
  Results.sort_q4
    (Hashtbl.fold
       (fun p r rows -> { Results.q4_priority = p; q4_count = !r } :: rows)
       counts [])

(* Q5: local supplier volume. *)
let q5 (db : Db_managed.t) =
  let lo = Results.q5_date in
  let hi = Smc_util.Date.add_months lo 12 in
  let revenue : (string, D.t ref) Hashtbl.t = Hashtbl.create 32 in
  db.Db_managed.iter_lineitems (fun li ->
      let o = li.l_order in
      if o.o_orderdate >= lo && o.o_orderdate < hi then begin
        let snation = li.l_supplier.s_nation in
        if
          snation.n_region.r_name = Results.q5_region
          && o.o_customer.c_nation == snation
        then begin
          let amount = D.mul li.l_extendedprice (D.sub D.one li.l_discount) in
          match Hashtbl.find_opt revenue snation.n_name with
          | Some r -> r := D.add !r amount
          | None -> Hashtbl.add revenue snation.n_name (ref amount)
        end
      end);
  Results.sort_q5
    (Hashtbl.fold
       (fun n r rows -> { Results.q5_nation = n; q5_revenue = !r } :: rows)
       revenue [])

(* Q7: volume shipping between two nations. *)
let q7 (db : Db_managed.t) =
  let n1 = Results.q7_nation1 and n2 = Results.q7_nation2 in
  let revenue : (string * string * int, D.t ref) Hashtbl.t = Hashtbl.create 16 in
  db.Db_managed.iter_lineitems (fun li ->
      if li.l_shipdate >= Results.q7_date_lo && li.l_shipdate <= Results.q7_date_hi then begin
        let supp_nation = li.l_supplier.s_nation.n_name in
        let cust_nation = li.l_order.o_customer.c_nation.n_name in
        if
          (supp_nation = n1 && cust_nation = n2) || (supp_nation = n2 && cust_nation = n1)
        then begin
          let year, _, _ = Smc_util.Date.to_ymd li.l_shipdate in
          let amount = D.mul li.l_extendedprice (D.sub D.one li.l_discount) in
          let key = (supp_nation, cust_nation, year) in
          match Hashtbl.find_opt revenue key with
          | Some r -> r := D.add !r amount
          | None -> Hashtbl.add revenue key (ref amount)
        end
      end);
  Results.sort_q7
    (Hashtbl.fold
       (fun (sn, cn, year) r rows ->
         { Results.q7_supp_nation = sn; q7_cust_nation = cn; q7_year = year; q7_revenue = !r }
         :: rows)
       revenue [])

(* Q10: returned item reporting. *)
type q10_acc = { q10_c : customer; mutable q10_rev : D.t }

let q10 (db : Db_managed.t) =
  let lo = Results.q10_date in
  let hi = Smc_util.Date.add_months lo 3 in
  let groups : (int, q10_acc) Hashtbl.t = Hashtbl.create 1024 in
  db.Db_managed.iter_lineitems (fun li ->
      if li.l_returnflag = 'R' then begin
        let o = li.l_order in
        if o.o_orderdate >= lo && o.o_orderdate < hi then begin
          let c = o.o_customer in
          let acc =
            match Hashtbl.find_opt groups c.c_custkey with
            | Some acc -> acc
            | None ->
              let acc = { q10_c = c; q10_rev = D.zero } in
              Hashtbl.add groups c.c_custkey acc;
              acc
          in
          acc.q10_rev <- D.add acc.q10_rev (D.mul li.l_extendedprice (D.sub D.one li.l_discount))
        end
      end);
  let rows =
    Hashtbl.fold
      (fun _ acc rows ->
        {
          Results.q10_custkey = acc.q10_c.c_custkey;
          q10_name = acc.q10_c.c_name;
          q10_revenue = acc.q10_rev;
          q10_acctbal = acc.q10_c.c_acctbal;
          q10_nation = acc.q10_c.c_nation.n_name;
        }
        :: rows)
      groups []
  in
  List.filteri (fun i _ -> i < 20) (Results.sort_q10 rows)

(* Q12: shipping modes and order priority. *)
let q12 (db : Db_managed.t) =
  let mode1, mode2 = Results.q12_modes in
  let lo = Results.q12_date in
  let hi = Smc_util.Date.add_months lo 12 in
  let high : (string, int ref) Hashtbl.t = Hashtbl.create 4 in
  let low : (string, int ref) Hashtbl.t = Hashtbl.create 4 in
  let bump tbl k = match Hashtbl.find_opt tbl k with
    | Some r -> incr r
    | None -> Hashtbl.add tbl k (ref 1)
  in
  db.Db_managed.iter_lineitems (fun li ->
      if
        (li.l_shipmode = mode1 || li.l_shipmode = mode2)
        && li.l_commitdate < li.l_receiptdate
        && li.l_shipdate < li.l_commitdate
        && li.l_receiptdate >= lo && li.l_receiptdate < hi
      then begin
        let p = li.l_order.o_orderpriority in
        if p = "1-URGENT" || p = "2-HIGH" then bump high li.l_shipmode
        else bump low li.l_shipmode
      end);
  let modes = List.sort_uniq compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) high (Hashtbl.fold (fun k _ acc -> k :: acc) low []))
  in
  Results.sort_q12
    (List.map
       (fun m ->
         {
           Results.q12_shipmode = m;
           q12_high = (match Hashtbl.find_opt high m with Some r -> !r | None -> 0);
           q12_low = (match Hashtbl.find_opt low m with Some r -> !r | None -> 0);
         })
       modes)

(* Q14: promotion effect. *)
let q14 (db : Db_managed.t) =
  let lo = Results.q14_date in
  let hi = Smc_util.Date.add_months lo 1 in
  let promo = ref D.zero and total = ref D.zero in
  db.Db_managed.iter_lineitems (fun li ->
      if li.l_shipdate >= lo && li.l_shipdate < hi then begin
        let amount = D.mul li.l_extendedprice (D.sub D.one li.l_discount) in
        total := D.add !total amount;
        if String.length li.l_part.p_type >= 5 && String.sub li.l_part.p_type 0 5 = "PROMO"
        then promo := D.add !promo amount
      end);
  if !total = D.zero then D.zero else D.div (D.mul (D.of_int 100) !promo) !total

(* Q19: discounted revenue (three brand/container/quantity disjuncts). *)
let q19_match (li : lineitem) =
  let p = li.l_part in
  let qty = li.l_quantity in
  let between v a b = D.compare v (D.of_int a) >= 0 && D.compare v (D.of_int b) <= 0 in
  let air = li.l_shipmode = "AIR" || li.l_shipmode = "REG AIR" in
  let in_person = li.l_shipinstruct = "DELIVER IN PERSON" in
  air && in_person
  && ((p.p_brand = "Brand#12"
       && (p.p_container = "SM CASE" || p.p_container = "SM BOX" || p.p_container = "SM PACK"
         || p.p_container = "SM PKG")
       && between qty 1 11 && p.p_size >= 1 && p.p_size <= 5)
     || (p.p_brand = "Brand#23"
        && (p.p_container = "MED BAG" || p.p_container = "MED BOX" || p.p_container = "MED PKG"
          || p.p_container = "MED PACK")
        && between qty 10 20 && p.p_size >= 1 && p.p_size <= 10)
     || (p.p_brand = "Brand#34"
        && (p.p_container = "LG CASE" || p.p_container = "LG BOX" || p.p_container = "LG PACK"
          || p.p_container = "LG PKG")
        && between qty 20 30 && p.p_size >= 1 && p.p_size <= 15))

let q19 (db : Db_managed.t) =
  let total = ref D.zero in
  db.Db_managed.iter_lineitems (fun li ->
      if q19_match li then
        total := D.add !total (D.mul li.l_extendedprice (D.sub D.one li.l_discount)));
  !total

(* Q6: forecasting revenue change. *)
let q6 (db : Db_managed.t) =
  let lo = Results.q6_date in
  let hi = Smc_util.Date.add_months lo 12 in
  let total = ref D.zero in
  db.Db_managed.iter_lineitems (fun li ->
      if
        li.l_shipdate >= lo && li.l_shipdate < hi
        && D.compare li.l_discount Results.q6_disc_lo >= 0
        && D.compare li.l_discount Results.q6_disc_hi <= 0
        && D.compare li.l_quantity Results.q6_qty < 0
      then total := D.add !total (D.mul li.l_extendedprice li.l_discount));
  !total
