(** TPC-H stored in managed (garbage-collected) collections — the paper's
    baselines. One wrapper type exposes enumeration over whichever backing
    collection is used, so the compiled queries in {!Q_managed} run
    unchanged against [List<T>]-style vectors, [ConcurrentDictionary] or
    [ConcurrentBag] analogues. *)

type backing =
  | Vectors of {
      lineitems : Row.lineitem Smc_managed.Vector.t;
      orders : Row.order Smc_managed.Vector.t;
      customers : Row.customer Smc_managed.Vector.t;
      partsupps : Row.partsupp Smc_managed.Vector.t;
    }
  | Dicts of {
      lineitems : Row.lineitem Smc_managed.Concurrent_dictionary.t;
      orders : Row.order Smc_managed.Concurrent_dictionary.t;
      customers : Row.customer Smc_managed.Concurrent_dictionary.t;
      partsupps : Row.partsupp Smc_managed.Concurrent_dictionary.t;
    }
  | Bags of {
      lineitems : Row.lineitem Smc_managed.Concurrent_bag.t;
      orders : Row.order Smc_managed.Concurrent_bag.t;
      customers : Row.customer Smc_managed.Concurrent_bag.t;
      partsupps : Row.partsupp Smc_managed.Concurrent_bag.t;
    }

type t = {
  kind : string;  (** "list" / "dict" / "bag" *)
  backing : backing;
  iter_lineitems : (Row.lineitem -> unit) -> unit;
  iter_orders : (Row.order -> unit) -> unit;
  iter_customers : (Row.customer -> unit) -> unit;
  iter_partsupps : (Row.partsupp -> unit) -> unit;
}

val of_vectors : Row.dataset -> t
val of_dicts : Row.dataset -> t
val of_bags : Row.dataset -> t

val lineitem_count : t -> int
