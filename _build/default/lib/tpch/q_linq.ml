open Row
module D = Smc_decimal.Decimal

module Operators = struct
  let where = Seq.filter
  let select = Seq.map

  let group_by key seq =
    let groups : ('k, 'a list ref) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    Seq.iter
      (fun x ->
        let k = key x in
        match Hashtbl.find_opt groups k with
        | Some cell -> cell := x :: !cell
        | None ->
          Hashtbl.add groups k (ref [ x ]);
          order := k :: !order)
      seq;
    List.to_seq
      (List.rev_map (fun k -> (k, List.rev !(Hashtbl.find groups k))) !order)

  let order_by_desc key seq =
    let xs = List.of_seq seq in
    List.to_seq (List.sort (fun a b -> compare (key b) (key a)) xs)

  let take = Seq.take

  let sum_by f seq = Seq.fold_left (fun acc x -> D.add acc (f x)) D.zero seq

  let count seq = Seq.fold_left (fun acc _ -> acc + 1) 0 seq
end

open Operators

(* Enumerate a managed store lazily, as foreach over IEnumerable does. The
   underlying stores iterate by push; LINQ-to-objects pulls, so the source
   adapter materialises the enumeration order once per query — the cost an
   IEnumerable avoids but whose per-element interface calls it pays instead;
   both models charge per element. *)
let lineitems_seq (db : Db_managed.t) =
  let buf = ref [] in
  db.Db_managed.iter_lineitems (fun li -> buf := li :: !buf);
  List.to_seq (List.rev !buf)

let q1 (db : Db_managed.t) =
  let cutoff =
    Smc_util.Date.add_days (Smc_util.Date.of_ymd 1998 12 1) (-Results.q1_delta_days)
  in
  lineitems_seq db
  |> where (fun li -> li.l_shipdate <= cutoff)
  |> group_by (fun li -> (li.l_returnflag, li.l_linestatus))
  |> select (fun ((rf, ls), lis) ->
         let lis = List.to_seq lis in
         let count = count lis in
         let sum_qty = sum_by (fun li -> li.l_quantity) lis in
         let sum_base = sum_by (fun li -> li.l_extendedprice) lis in
         let sum_disc_price =
           sum_by (fun li -> D.mul li.l_extendedprice (D.sub D.one li.l_discount)) lis
         in
         let sum_charge =
           sum_by
             (fun li ->
               D.mul
                 (D.mul li.l_extendedprice (D.sub D.one li.l_discount))
                 (D.add D.one li.l_tax))
             lis
         in
         let sum_disc = sum_by (fun li -> li.l_discount) lis in
         {
           Results.q1_returnflag = rf;
           q1_linestatus = ls;
           sum_qty;
           sum_base_price = sum_base;
           sum_disc_price;
           sum_charge;
           avg_qty = D.avg ~sum:sum_qty ~count;
           avg_price = D.avg ~sum:sum_base ~count;
           avg_disc = D.avg ~sum:sum_disc ~count;
           count_order = count;
         })
  |> List.of_seq |> Results.sort_q1

let q3 (db : Db_managed.t) =
  lineitems_seq db
  |> where (fun li -> li.l_shipdate > Results.q3_date)
  |> where (fun li -> li.l_order.o_orderdate < Results.q3_date)
  |> where (fun li -> li.l_order.o_customer.c_mktsegment = Results.q3_segment)
  |> group_by (fun li -> li.l_order.o_orderkey)
  |> select (fun (orderkey, lis) ->
         let o = (List.hd lis).l_order in
         {
           Results.q3_orderkey = orderkey;
           q3_revenue =
             sum_by
               (fun li -> D.mul li.l_extendedprice (D.sub D.one li.l_discount))
               (List.to_seq lis);
           q3_orderdate = o.o_orderdate;
           q3_shippriority = o.o_shippriority;
         })
  |> List.of_seq |> Results.sort_q3
  |> List.filteri (fun i _ -> i < 10)

let q6 (db : Db_managed.t) =
  let lo = Results.q6_date in
  let hi = Smc_util.Date.add_months lo 12 in
  lineitems_seq db
  |> where (fun li -> li.l_shipdate >= lo && li.l_shipdate < hi)
  |> where (fun li ->
         D.compare li.l_discount Results.q6_disc_lo >= 0
         && D.compare li.l_discount Results.q6_disc_hi <= 0)
  |> where (fun li -> D.compare li.l_quantity Results.q6_qty < 0)
  |> select (fun li -> D.mul li.l_extendedprice li.l_discount)
  |> Seq.fold_left D.add D.zero
