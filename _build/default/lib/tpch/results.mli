(** Result row types for TPC-H Q1–Q6.

    Every engine (managed records, SMC safe/unsafe/direct/columnar,
    columnstore, and the generic plan evaluators) produces these same
    types, so the test suite can assert bit-exact agreement across engines
    — the strongest correctness check the reproduction has. *)

module D := Smc_decimal.Decimal

type q1_row = {
  q1_returnflag : char;
  q1_linestatus : char;
  sum_qty : D.t;
  sum_base_price : D.t;
  sum_disc_price : D.t;
  sum_charge : D.t;
  avg_qty : D.t;
  avg_price : D.t;
  avg_disc : D.t;
  count_order : int;
}

type q2_row = {
  q2_acctbal : D.t;
  q2_s_name : string;
  q2_n_name : string;
  q2_partkey : int;
  q2_mfgr : string;
}

type q3_row = {
  q3_orderkey : int;
  q3_revenue : D.t;
  q3_orderdate : Smc_util.Date.t;
  q3_shippriority : int;
}

type q4_row = { q4_priority : string; q4_count : int }

type q5_row = { q5_nation : string; q5_revenue : D.t }

type q7_row = {
  q7_supp_nation : string;
  q7_cust_nation : string;
  q7_year : int;
  q7_revenue : D.t;
}

type q10_row = {
  q10_custkey : int;
  q10_name : string;
  q10_revenue : D.t;
  q10_acctbal : D.t;
  q10_nation : string;
}

type q12_row = { q12_shipmode : string; q12_high : int; q12_low : int }

type q1 = q1_row list
type q2 = q2_row list
type q3 = q3_row list
type q4 = q4_row list
type q5 = q5_row list
type q6 = D.t
type q7 = q7_row list
type q10 = q10_row list
type q12 = q12_row list

type q14 = D.t
(** promo revenue percentage, decimal-scaled *)

type q19 = D.t

val sort_q1 : q1 -> q1
(** Order by returnflag, linestatus (the query's ORDER BY). *)

val sort_q2 : q2 -> q2
(** Order by acctbal desc, n_name, s_name, partkey; callers apply LIMIT. *)

val sort_q3 : q3 -> q3
(** Order by revenue desc, orderdate asc. *)

val sort_q4 : q4 -> q4
val sort_q5 : q5 -> q5

val sort_q7 : q7 -> q7
(** Order by supp_nation, cust_nation, year. *)

val sort_q10 : q10 -> q10
(** Order by revenue desc; callers apply LIMIT 20. *)

val sort_q12 : q12 -> q12
(** Order by shipmode. *)

val equal_q1 : q1 -> q1 -> bool
val equal_q2 : q2 -> q2 -> bool
val equal_q3 : q3 -> q3 -> bool
val equal_q4 : q4 -> q4 -> bool
val equal_q5 : q5 -> q5 -> bool
val equal_q7 : q7 -> q7 -> bool
val equal_q10 : q10 -> q10 -> bool
val equal_q12 : q12 -> q12 -> bool

val pp_q1 : q1 -> string
val pp_q3 : q3 -> string
val pp_q5 : q5 -> string

(** Query parameters (the spec's validation values). *)

val q1_delta_days : int  (** 90: shipdate <= 1998-12-01 - 90 days *)

val q2_size : int  (** 15 *)

val q2_type_suffix : string  (** "BRASS" *)

val q2_region : string  (** "EUROPE" *)

val q3_segment : string  (** "BUILDING" *)

val q3_date : Smc_util.Date.t  (** 1995-03-15 *)

val q4_date : Smc_util.Date.t  (** 1993-07-01, range is +3 months *)

val q5_region : string  (** "ASIA" *)

val q5_date : Smc_util.Date.t  (** 1994-01-01, range is +1 year *)

val q6_date : Smc_util.Date.t  (** 1994-01-01, range is +1 year *)

val q6_disc_lo : D.t  (** 0.05 *)

val q6_disc_hi : D.t  (** 0.07 *)

val q6_qty : D.t  (** 24 *)

val q7_nation1 : string  (** "FRANCE" *)

val q7_nation2 : string  (** "GERMANY" *)

val q7_date_lo : Smc_util.Date.t  (** 1995-01-01 *)

val q7_date_hi : Smc_util.Date.t  (** 1996-12-31, inclusive *)

val q10_date : Smc_util.Date.t  (** 1993-10-01, range is +3 months *)

val q12_modes : string * string  (** ("MAIL", "SHIP") *)

val q12_date : Smc_util.Date.t  (** 1994-01-01, receiptdate range is +1 year *)

val q14_date : Smc_util.Date.t  (** 1995-09-01, range is +1 month *)
