lib/tpch/schema.ml: Smc_offheap
