lib/tpch/db_column.ml: Array Char Row Smc_columnstore
