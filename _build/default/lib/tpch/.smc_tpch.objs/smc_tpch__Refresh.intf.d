lib/tpch/refresh.mli: Db_smc Hashtbl Row Smc_util
