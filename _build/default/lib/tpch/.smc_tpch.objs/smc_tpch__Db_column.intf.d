lib/tpch/db_column.mli: Row Smc_columnstore
