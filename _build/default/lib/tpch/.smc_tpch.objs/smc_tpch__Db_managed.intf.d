lib/tpch/db_managed.mli: Row Smc_managed
