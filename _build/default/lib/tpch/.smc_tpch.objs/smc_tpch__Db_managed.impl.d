lib/tpch/db_managed.ml: Array Dbgen Row Smc_managed
