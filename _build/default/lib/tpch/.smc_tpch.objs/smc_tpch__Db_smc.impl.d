lib/tpch/db_smc.ml: Array Block Context Layout Row Runtime Schema Smc Smc_offheap String
