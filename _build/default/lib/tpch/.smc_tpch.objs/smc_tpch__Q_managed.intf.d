lib/tpch/q_managed.mli: Db_managed Results
