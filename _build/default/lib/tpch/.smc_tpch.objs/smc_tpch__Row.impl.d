lib/tpch/row.ml: Smc_decimal Smc_util
