lib/tpch/refresh.ml: Array Atomic Bigarray Db_smc Dbgen Hashtbl Int64 List Prng Row Smc Smc_decimal Smc_managed Smc_offheap Smc_util Spec
