lib/tpch/q_linq.ml: Db_managed Hashtbl List Results Row Seq Smc_decimal Smc_util
