lib/tpch/results.mli: Smc_decimal Smc_util
