lib/tpch/q_smc.mli: Db_smc Results
