lib/tpch/schema.mli: Smc_offheap
