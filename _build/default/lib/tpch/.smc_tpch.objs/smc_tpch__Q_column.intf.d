lib/tpch/q_column.mli: Db_column Results
