lib/tpch/row.mli: Smc_decimal Smc_util
