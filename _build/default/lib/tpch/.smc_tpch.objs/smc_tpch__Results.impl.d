lib/tpch/results.ml: Char Int List Printf Smc_decimal Smc_util String
