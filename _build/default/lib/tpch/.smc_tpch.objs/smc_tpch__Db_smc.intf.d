lib/tpch/db_smc.mli: Row Smc Smc_offheap
