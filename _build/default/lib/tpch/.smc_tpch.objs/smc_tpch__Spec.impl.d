lib/tpch/spec.ml: Array Printf Smc_decimal Smc_util
