lib/tpch/dbgen.ml: Array Buffer Date List Printf Prng Row Smc_decimal Smc_util Spec
