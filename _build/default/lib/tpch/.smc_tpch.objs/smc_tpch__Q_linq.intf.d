lib/tpch/q_linq.mli: Db_managed Results Seq Smc_decimal
