lib/tpch/q_smc.ml: Array Bigarray Char Db_smc Hashtbl List Results Smc Smc_decimal Smc_offheap Smc_util String
