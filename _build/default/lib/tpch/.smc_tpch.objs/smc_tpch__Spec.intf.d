lib/tpch/spec.mli: Smc_decimal Smc_util
