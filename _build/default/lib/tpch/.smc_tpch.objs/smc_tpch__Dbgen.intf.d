lib/tpch/dbgen.mli: Row
