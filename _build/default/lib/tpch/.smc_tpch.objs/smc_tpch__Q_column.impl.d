lib/tpch/q_column.ml: Array Char Db_column Hashtbl List Results Smc_columnstore Smc_decimal Smc_util String
