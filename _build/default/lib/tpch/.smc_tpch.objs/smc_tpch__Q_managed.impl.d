lib/tpch/q_managed.ml: Db_managed Hashtbl List Results Row Smc_decimal Smc_util String
