(** TPC-H Q1–Q6 as compiled imperative code over managed objects — the
    hand-specialised equivalent of [13]'s generated C# with reference-based
    joins, which Figure 11 uses for its List and ConcurrentDictionary
    baselines. Joins chase record references; aggregation uses hash tables
    keyed by group values. *)

val q1 : Db_managed.t -> Results.q1
val q2 : Db_managed.t -> Results.q2
val q3 : Db_managed.t -> Results.q3
val q4 : Db_managed.t -> Results.q4
val q5 : Db_managed.t -> Results.q5
val q6 : Db_managed.t -> Results.q6

(** Extension queries beyond the paper's Q1–Q6 evaluation set: the other
    enumeration-heavy TPC-H queries expressible over the object schema. *)

val q7 : Db_managed.t -> Results.q7
val q10 : Db_managed.t -> Results.q10
val q12 : Db_managed.t -> Results.q12
val q14 : Db_managed.t -> Results.q14
val q19 : Db_managed.t -> Results.q19
