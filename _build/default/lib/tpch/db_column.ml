open Row
module T = Smc_columnstore.Table

type t = {
  lineitem : T.t;
  orders : T.t;
  customer : T.t;
  supplier : T.t;
  part : T.t;
  partsupp : T.t;
  nation : T.t;
  region : T.t;
}


let load (ds : dataset) =
  let li = ds.lineitems in
  let lineitem =
    T.create ~name:"lineitem" ~sort_by:"l_shipdate"
      ~columns:
        [
          ("l_orderkey", `Ints (Array.map (fun l -> l.l_order.o_orderkey) li));
          ("l_partkey", `Ints (Array.map (fun l -> l.l_part.p_partkey) li));
          ("l_suppkey", `Ints (Array.map (fun l -> l.l_supplier.s_suppkey) li));
          ("l_quantity", `Ints (Array.map (fun l -> l.l_quantity) li));
          ("l_extendedprice", `Ints (Array.map (fun l -> l.l_extendedprice) li));
          ("l_discount", `Ints (Array.map (fun l -> l.l_discount) li));
          ("l_tax", `Ints (Array.map (fun l -> l.l_tax) li));
          ("l_returnflag", `Ints (Array.map (fun l -> Char.code l.l_returnflag) li));
          ("l_linestatus", `Ints (Array.map (fun l -> Char.code l.l_linestatus) li));
          ("l_shipdate", `Ints (Array.map (fun l -> l.l_shipdate) li));
          ("l_commitdate", `Ints (Array.map (fun l -> l.l_commitdate) li));
          ("l_receiptdate", `Ints (Array.map (fun l -> l.l_receiptdate) li));
        ]
      ()
  in
  let os = ds.orders in
  let orders =
    T.create ~name:"orders" ~sort_by:"o_orderdate"
      ~columns:
        [
          ("o_orderkey", `Ints (Array.map (fun o -> o.o_orderkey) os));
          ("o_custkey", `Ints (Array.map (fun o -> o.o_customer.c_custkey) os));
          ("o_orderdate", `Ints (Array.map (fun o -> o.o_orderdate) os));
          ("o_orderpriority", `Strs (Array.map (fun o -> o.o_orderpriority) os));
          ("o_shippriority", `Ints (Array.map (fun o -> o.o_shippriority) os));
        ]
      ()
  in
  let cs = ds.customers in
  let customer =
    T.create ~name:"customer"
      ~columns:
        [
          ("c_custkey", `Ints (Array.map (fun c -> c.c_custkey) cs));
          ("c_nationkey", `Ints (Array.map (fun c -> c.c_nation.n_nationkey) cs));
          ("c_mktsegment", `Strs (Array.map (fun c -> c.c_mktsegment) cs));
        ]
      ()
  in
  let ss = ds.suppliers in
  let supplier =
    T.create ~name:"supplier"
      ~columns:
        [
          ("s_suppkey", `Ints (Array.map (fun s -> s.s_suppkey) ss));
          ("s_nationkey", `Ints (Array.map (fun s -> s.s_nation.n_nationkey) ss));
          ("s_name", `Strs (Array.map (fun s -> s.s_name) ss));
          ("s_acctbal", `Ints (Array.map (fun s -> s.s_acctbal) ss));
        ]
      ()
  in
  let ps = ds.parts in
  let part =
    T.create ~name:"part"
      ~columns:
        [
          ("p_partkey", `Ints (Array.map (fun p -> p.p_partkey) ps));
          ("p_size", `Ints (Array.map (fun p -> p.p_size) ps));
          ("p_type", `Strs (Array.map (fun p -> p.p_type) ps));
          ("p_mfgr", `Strs (Array.map (fun p -> p.p_mfgr) ps));
        ]
      ()
  in
  let pss = ds.partsupps in
  let partsupp =
    T.create ~name:"partsupp"
      ~columns:
        [
          ("ps_partkey", `Ints (Array.map (fun p -> p.ps_part.p_partkey) pss));
          ("ps_suppkey", `Ints (Array.map (fun p -> p.ps_supplier.s_suppkey) pss));
          ("ps_supplycost", `Ints (Array.map (fun p -> p.ps_supplycost) pss));
        ]
      ()
  in
  let ns = ds.nations in
  let nation =
    T.create ~name:"nation"
      ~columns:
        [
          ("n_nationkey", `Ints (Array.map (fun n -> n.n_nationkey) ns));
          ("n_regionkey", `Ints (Array.map (fun n -> n.n_region.r_regionkey) ns));
          ("n_name", `Strs (Array.map (fun n -> n.n_name) ns));
        ]
      ()
  in
  let rs = ds.regions in
  let region =
    T.create ~name:"region"
      ~columns:
        [
          ("r_regionkey", `Ints (Array.map (fun r -> r.r_regionkey) rs));
          ("r_name", `Strs (Array.map (fun r -> r.r_name) rs));
        ]
      ()
  in
  { lineitem; orders; customer; supplier; part; partsupp; nation; region }

let bytes_estimate t =
  T.bytes_estimate t.lineitem + T.bytes_estimate t.orders + T.bytes_estimate t.customer
  + T.bytes_estimate t.supplier + T.bytes_estimate t.part + T.bytes_estimate t.partsupp
  + T.bytes_estimate t.nation + T.bytes_estimate t.region
