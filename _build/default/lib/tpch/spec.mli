(** TPC-H value domains: the constant pools the generator draws from.

    Cardinality ratios, date ranges and categorical domains follow the TPC-H
    specification so query selectivities and join fan-outs match the
    official workload; text is drawn from a small lexicon rather than the
    spec's grammar (irrelevant to the queries, which never parse comments). *)

val regions : (string * string) array
(** (name, comment) — the five official regions in key order. *)

val nations : (string * int) array
(** (name, region key) — the 25 official nations in key order. *)

val segments : string array
val priorities : string array
val instructs : string array
val modes : string array
val containers : string array
val types : string array
val colors : string array
val brands : string array
val lexicon : string array

val orders_per_sf : int  (** 1_500_000 *)

val customers_per_sf : int
val parts_per_sf : int
val suppliers_per_sf : int

val start_date : Smc_util.Date.t  (** 1992-01-01 *)

val end_date : Smc_util.Date.t  (** 1998-12-31 *)

val current_date : Smc_util.Date.t  (** 1995-06-17, used for returnflag/linestatus *)

val retail_price : int -> Smc_decimal.Decimal.t
(** Official partkey → retail price formula. *)
