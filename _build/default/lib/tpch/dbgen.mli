(** Deterministic TPC-H data generator.

    Produces a {!Row.dataset} with the official cardinality ratios
    (orders = 1.5M·SF, lineitems ≈ 4·orders, customers = 150k·SF,
    parts = 200k·SF, suppliers = 10k·SF, partsupp = 4·parts, 25 nations,
    5 regions), official value domains and date arithmetic, seeded so every
    run over the same (sf, seed) is identical. *)

val generate : ?seed:int64 -> sf:float -> unit -> Row.dataset
(** [sf] may be fractional; minimum table cardinalities are 1. *)

val lineitem_key : Row.lineitem -> int
(** Unique integer identity for a lineitem (orderkey * 8 + linenumber),
    used as the key for dictionary-based storage. *)
