open Smc_offheap
module C = Smc.Collection
module F = Smc.Field

type lineitem_fields = {
  l_order : Layout.field;
  l_part : Layout.field;
  l_supplier : Layout.field;
  l_linenumber : Layout.field;
  l_quantity : Layout.field;
  l_extendedprice : Layout.field;
  l_discount : Layout.field;
  l_tax : Layout.field;
  l_returnflag : Layout.field;
  l_linestatus : Layout.field;
  l_shipdate : Layout.field;
  l_commitdate : Layout.field;
  l_receiptdate : Layout.field;
  l_shipinstruct : Layout.field;
  l_shipmode : Layout.field;
  l_comment : Layout.field;
}

type order_fields = {
  o_orderkey : Layout.field;
  o_customer : Layout.field;
  o_orderstatus : Layout.field;
  o_totalprice : Layout.field;
  o_orderdate : Layout.field;
  o_orderpriority : Layout.field;
  o_clerk : Layout.field;
  o_shippriority : Layout.field;
  o_comment : Layout.field;
}

type customer_fields = {
  c_custkey : Layout.field;
  c_name : Layout.field;
  c_address : Layout.field;
  c_nation : Layout.field;
  c_phone : Layout.field;
  c_acctbal : Layout.field;
  c_mktsegment : Layout.field;
  c_comment : Layout.field;
}

type supplier_fields = {
  s_suppkey : Layout.field;
  s_name : Layout.field;
  s_address : Layout.field;
  s_nation : Layout.field;
  s_phone : Layout.field;
  s_acctbal : Layout.field;
  s_comment : Layout.field;
}

type part_fields = {
  p_partkey : Layout.field;
  p_name : Layout.field;
  p_mfgr : Layout.field;
  p_brand : Layout.field;
  p_type : Layout.field;
  p_size : Layout.field;
  p_container : Layout.field;
  p_retailprice : Layout.field;
  p_comment : Layout.field;
}

type partsupp_fields = {
  ps_part : Layout.field;
  ps_supplier : Layout.field;
  ps_availqty : Layout.field;
  ps_supplycost : Layout.field;
  ps_comment : Layout.field;
}

type nation_fields = {
  n_nationkey : Layout.field;
  n_name : Layout.field;
  n_region : Layout.field;
  n_comment : Layout.field;
}

type region_fields = {
  r_regionkey : Layout.field;
  r_name : Layout.field;
  r_comment : Layout.field;
}

type t = {
  rt : Runtime.t;
  regions : C.t;
  nations : C.t;
  suppliers : C.t;
  parts : C.t;
  partsupps : C.t;
  customers : C.t;
  orders : C.t;
  lineitems : C.t;
  rf : region_fields;
  nf : nation_fields;
  sf_ : supplier_fields;
  pf : part_fields;
  psf : partsupp_fields;
  cf : customer_fields;
  orf : order_fields;
  lf : lineitem_fields;
  order_refs : Smc.Ref.t array;
  lineitem_refs : Smc.Ref.t array;
}

let region_fields =
  {
    r_regionkey = F.int Schema.region "r_regionkey";
    r_name = F.str Schema.region "r_name";
    r_comment = F.str Schema.region "r_comment";
  }

let nation_fields =
  {
    n_nationkey = F.int Schema.nation "n_nationkey";
    n_name = F.str Schema.nation "n_name";
    n_region = F.ref_ Schema.nation "n_region";
    n_comment = F.str Schema.nation "n_comment";
  }

let supplier_fields =
  {
    s_suppkey = F.int Schema.supplier "s_suppkey";
    s_name = F.str Schema.supplier "s_name";
    s_address = F.str Schema.supplier "s_address";
    s_nation = F.ref_ Schema.supplier "s_nation";
    s_phone = F.str Schema.supplier "s_phone";
    s_acctbal = F.dec Schema.supplier "s_acctbal";
    s_comment = F.str Schema.supplier "s_comment";
  }

let part_fields =
  {
    p_partkey = F.int Schema.part "p_partkey";
    p_name = F.str Schema.part "p_name";
    p_mfgr = F.str Schema.part "p_mfgr";
    p_brand = F.str Schema.part "p_brand";
    p_type = F.str Schema.part "p_type";
    p_size = F.int Schema.part "p_size";
    p_container = F.str Schema.part "p_container";
    p_retailprice = F.dec Schema.part "p_retailprice";
    p_comment = F.str Schema.part "p_comment";
  }

let partsupp_fields =
  {
    ps_part = F.ref_ Schema.partsupp "ps_part";
    ps_supplier = F.ref_ Schema.partsupp "ps_supplier";
    ps_availqty = F.int Schema.partsupp "ps_availqty";
    ps_supplycost = F.dec Schema.partsupp "ps_supplycost";
    ps_comment = F.str Schema.partsupp "ps_comment";
  }

let customer_fields =
  {
    c_custkey = F.int Schema.customer "c_custkey";
    c_name = F.str Schema.customer "c_name";
    c_address = F.str Schema.customer "c_address";
    c_nation = F.ref_ Schema.customer "c_nation";
    c_phone = F.str Schema.customer "c_phone";
    c_acctbal = F.dec Schema.customer "c_acctbal";
    c_mktsegment = F.str Schema.customer "c_mktsegment";
    c_comment = F.str Schema.customer "c_comment";
  }

let order_fields =
  {
    o_orderkey = F.int Schema.order "o_orderkey";
    o_customer = F.ref_ Schema.order "o_customer";
    o_orderstatus = F.str Schema.order "o_orderstatus";
    o_totalprice = F.dec Schema.order "o_totalprice";
    o_orderdate = F.date Schema.order "o_orderdate";
    o_orderpriority = F.str Schema.order "o_orderpriority";
    o_clerk = F.str Schema.order "o_clerk";
    o_shippriority = F.int Schema.order "o_shippriority";
    o_comment = F.str Schema.order "o_comment";
  }

let lineitem_fields =
  {
    l_order = F.ref_ Schema.lineitem "l_order";
    l_part = F.ref_ Schema.lineitem "l_part";
    l_supplier = F.ref_ Schema.lineitem "l_supplier";
    l_linenumber = F.int Schema.lineitem "l_linenumber";
    l_quantity = F.dec Schema.lineitem "l_quantity";
    l_extendedprice = F.dec Schema.lineitem "l_extendedprice";
    l_discount = F.dec Schema.lineitem "l_discount";
    l_tax = F.dec Schema.lineitem "l_tax";
    l_returnflag = F.str Schema.lineitem "l_returnflag";
    l_linestatus = F.str Schema.lineitem "l_linestatus";
    l_shipdate = F.date Schema.lineitem "l_shipdate";
    l_commitdate = F.date Schema.lineitem "l_commitdate";
    l_receiptdate = F.date Schema.lineitem "l_receiptdate";
    l_shipinstruct = F.str Schema.lineitem "l_shipinstruct";
    l_shipmode = F.str Schema.lineitem "l_shipmode";
    l_comment = F.str Schema.lineitem "l_comment";
  }

let load ?(mode = Context.Indirect) ?(placement = Block.Row) ?(slots_per_block = 4096)
    ?reclaim_threshold (ds : Row.dataset) =
  let rt = Runtime.create () in
  let mk name layout =
    C.create rt ~name ~layout ~placement ~mode ~slots_per_block ?reclaim_threshold ()
  in
  let regions = mk "regions" Schema.region in
  let nations = mk "nations" Schema.nation in
  let suppliers = mk "suppliers" Schema.supplier in
  let parts = mk "parts" Schema.part in
  let partsupps = mk "partsupps" Schema.partsupp in
  let customers = mk "customers" Schema.customer in
  let orders = mk "orders" Schema.order in
  let lineitems = mk "lineitems" Schema.lineitem in
  let rf = region_fields
  and nf = nation_fields
  and sf_ = supplier_fields
  and pf = part_fields
  and psf = partsupp_fields
  and cf = customer_fields
  and orf = order_fields
  and lf = lineitem_fields in
  (* Direct-pointer fixup edges (§6): who stores direct refs into whom. *)
  if mode = Context.Direct then begin
    Context.add_direct_referrer regions.C.ctx ~from:nations.C.ctx nf.n_region;
    Context.add_direct_referrer nations.C.ctx ~from:suppliers.C.ctx sf_.s_nation;
    Context.add_direct_referrer nations.C.ctx ~from:customers.C.ctx cf.c_nation;
    Context.add_direct_referrer parts.C.ctx ~from:partsupps.C.ctx psf.ps_part;
    Context.add_direct_referrer suppliers.C.ctx ~from:partsupps.C.ctx psf.ps_supplier;
    Context.add_direct_referrer customers.C.ctx ~from:orders.C.ctx orf.o_customer;
    Context.add_direct_referrer orders.C.ctx ~from:lineitems.C.ctx lf.l_order;
    Context.add_direct_referrer parts.C.ctx ~from:lineitems.C.ctx lf.l_part;
    Context.add_direct_referrer suppliers.C.ctx ~from:lineitems.C.ctx lf.l_supplier
  end;
  let region_refs =
    Array.map
      (fun (r : Row.region) ->
        C.add regions ~init:(fun blk slot ->
            F.set_int rf.r_regionkey blk slot r.Row.r_regionkey;
            F.set_string rf.r_name blk slot r.Row.r_name;
            F.set_string rf.r_comment blk slot r.Row.r_comment))
      ds.Row.regions
  in
  let nation_refs =
    Array.map
      (fun (n : Row.nation) ->
        C.add nations ~init:(fun blk slot ->
            F.set_int nf.n_nationkey blk slot n.Row.n_nationkey;
            F.set_string nf.n_name blk slot n.Row.n_name;
            F.set_ref nf.n_region ~target:regions blk slot
              region_refs.(n.Row.n_region.Row.r_regionkey);
            F.set_string nf.n_comment blk slot n.Row.n_comment))
      ds.Row.nations
  in
  let supplier_refs =
    Array.map
      (fun (s : Row.supplier) ->
        C.add suppliers ~init:(fun blk slot ->
            F.set_int sf_.s_suppkey blk slot s.Row.s_suppkey;
            F.set_string sf_.s_name blk slot s.Row.s_name;
            F.set_string sf_.s_address blk slot s.Row.s_address;
            F.set_ref sf_.s_nation ~target:nations blk slot
              nation_refs.(s.Row.s_nation.Row.n_nationkey);
            F.set_string sf_.s_phone blk slot s.Row.s_phone;
            F.set_dec sf_.s_acctbal blk slot s.Row.s_acctbal;
            F.set_string sf_.s_comment blk slot s.Row.s_comment))
      ds.Row.suppliers
  in
  let part_refs =
    Array.map
      (fun (p : Row.part) ->
        C.add parts ~init:(fun blk slot ->
            F.set_int pf.p_partkey blk slot p.Row.p_partkey;
            F.set_string pf.p_name blk slot p.Row.p_name;
            F.set_string pf.p_mfgr blk slot p.Row.p_mfgr;
            F.set_string pf.p_brand blk slot p.Row.p_brand;
            F.set_string pf.p_type blk slot p.Row.p_type;
            F.set_int pf.p_size blk slot p.Row.p_size;
            F.set_string pf.p_container blk slot p.Row.p_container;
            F.set_dec pf.p_retailprice blk slot p.Row.p_retailprice;
            F.set_string pf.p_comment blk slot p.Row.p_comment))
      ds.Row.parts
  in
  Array.iter
    (fun (ps : Row.partsupp) ->
      ignore
        (C.add partsupps ~init:(fun blk slot ->
             F.set_ref psf.ps_part ~target:parts blk slot
               part_refs.(ps.Row.ps_part.Row.p_partkey - 1);
             F.set_ref psf.ps_supplier ~target:suppliers blk slot
               supplier_refs.(ps.Row.ps_supplier.Row.s_suppkey - 1);
             F.set_int psf.ps_availqty blk slot ps.Row.ps_availqty;
             F.set_dec psf.ps_supplycost blk slot ps.Row.ps_supplycost;
             F.set_string psf.ps_comment blk slot ps.Row.ps_comment)
          : Smc.Ref.t))
    ds.Row.partsupps;
  let customer_refs =
    Array.map
      (fun (c : Row.customer) ->
        C.add customers ~init:(fun blk slot ->
            F.set_int cf.c_custkey blk slot c.Row.c_custkey;
            F.set_string cf.c_name blk slot c.Row.c_name;
            F.set_string cf.c_address blk slot c.Row.c_address;
            F.set_ref cf.c_nation ~target:nations blk slot
              nation_refs.(c.Row.c_nation.Row.n_nationkey);
            F.set_string cf.c_phone blk slot c.Row.c_phone;
            F.set_dec cf.c_acctbal blk slot c.Row.c_acctbal;
            F.set_string cf.c_mktsegment blk slot c.Row.c_mktsegment;
            F.set_string cf.c_comment blk slot c.Row.c_comment))
      ds.Row.customers
  in
  let order_refs =
    Array.map
      (fun (o : Row.order) ->
        C.add orders ~init:(fun blk slot ->
            F.set_int orf.o_orderkey blk slot o.Row.o_orderkey;
            F.set_ref orf.o_customer ~target:customers blk slot
              customer_refs.(o.Row.o_customer.Row.c_custkey - 1);
            F.set_string orf.o_orderstatus blk slot (String.make 1 o.Row.o_orderstatus);
            F.set_dec orf.o_totalprice blk slot o.Row.o_totalprice;
            F.set_date orf.o_orderdate blk slot o.Row.o_orderdate;
            F.set_string orf.o_orderpriority blk slot o.Row.o_orderpriority;
            F.set_string orf.o_clerk blk slot o.Row.o_clerk;
            F.set_int orf.o_shippriority blk slot o.Row.o_shippriority;
            F.set_string orf.o_comment blk slot o.Row.o_comment))
      ds.Row.orders
  in
  let lineitem_refs =
    Array.map
      (fun (li : Row.lineitem) ->
        C.add lineitems ~init:(fun blk slot ->
            F.set_ref lf.l_order ~target:orders blk slot
              order_refs.(li.Row.l_order.Row.o_orderkey - 1);
            F.set_ref lf.l_part ~target:parts blk slot
              part_refs.(li.Row.l_part.Row.p_partkey - 1);
            F.set_ref lf.l_supplier ~target:suppliers blk slot
              supplier_refs.(li.Row.l_supplier.Row.s_suppkey - 1);
            F.set_int lf.l_linenumber blk slot li.Row.l_linenumber;
            F.set_dec lf.l_quantity blk slot li.Row.l_quantity;
            F.set_dec lf.l_extendedprice blk slot li.Row.l_extendedprice;
            F.set_dec lf.l_discount blk slot li.Row.l_discount;
            F.set_dec lf.l_tax blk slot li.Row.l_tax;
            F.set_string lf.l_returnflag blk slot (String.make 1 li.Row.l_returnflag);
            F.set_string lf.l_linestatus blk slot (String.make 1 li.Row.l_linestatus);
            F.set_date lf.l_shipdate blk slot li.Row.l_shipdate;
            F.set_date lf.l_commitdate blk slot li.Row.l_commitdate;
            F.set_date lf.l_receiptdate blk slot li.Row.l_receiptdate;
            F.set_string lf.l_shipinstruct blk slot li.Row.l_shipinstruct;
            F.set_string lf.l_shipmode blk slot li.Row.l_shipmode;
            F.set_string lf.l_comment blk slot li.Row.l_comment))
      ds.Row.lineitems
  in
  {
    rt;
    regions;
    nations;
    suppliers;
    parts;
    partsupps;
    customers;
    orders;
    lineitems;
    rf;
    nf;
    sf_;
    pf;
    psf;
    cf;
    orf;
    lf;
    order_refs;
    lineitem_refs;
  }

let memory_words t =
  C.memory_words t.regions + C.memory_words t.nations + C.memory_words t.suppliers
  + C.memory_words t.parts + C.memory_words t.partsupps + C.memory_words t.customers
  + C.memory_words t.orders + C.memory_words t.lineitems
