open Smc_util
module D = Smc_decimal.Decimal

let scaled per_sf sf = max 1 (int_of_float (float_of_int per_sf *. sf))

let words g n =
  let buf = Buffer.create 32 in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Prng.pick g Spec.lexicon)
  done;
  Buffer.contents buf

let phone g nationkey =
  Printf.sprintf "%d-%03d-%03d-%04d" (10 + nationkey) (Prng.int_in g 100 999)
    (Prng.int_in g 100 999) (Prng.int_in g 1000 9999)

let money g lo_cents hi_cents = D.of_cents (Prng.int_in g lo_cents hi_cents)

let generate ?(seed = 19920101L) ~sf () =
  let g = Prng.create ~seed () in
  let regions =
    Array.mapi
      (fun i (name, comment) -> { Row.r_regionkey = i; r_name = name; r_comment = comment })
      Spec.regions
  in
  let nations =
    Array.mapi
      (fun i (name, rk) ->
        {
          Row.n_nationkey = i;
          n_name = name;
          n_region = regions.(rk);
          n_comment = words g 3;
        })
      Spec.nations
  in
  let n_suppliers = scaled Spec.suppliers_per_sf sf in
  let suppliers =
    Array.init n_suppliers (fun i ->
        let key = i + 1 in
        let nation = nations.(Prng.int g (Array.length nations)) in
        {
          Row.s_suppkey = key;
          s_name = Printf.sprintf "Supplier#%09d" key;
          s_address = words g 2;
          s_nation = nation;
          s_phone = phone g nation.Row.n_nationkey;
          s_acctbal = money g (-99999) 999999;
          s_comment = words g 4;
        })
  in
  let n_parts = scaled Spec.parts_per_sf sf in
  let parts =
    Array.init n_parts (fun i ->
        let key = i + 1 in
        {
          Row.p_partkey = key;
          p_name =
            Printf.sprintf "%s %s %s" (Prng.pick g Spec.colors) (Prng.pick g Spec.colors)
              (Prng.pick g Spec.colors);
          p_mfgr = Printf.sprintf "Manufacturer#%d" (Prng.int_in g 1 5);
          p_brand = Prng.pick g Spec.brands;
          p_type = Prng.pick g Spec.types;
          p_size = Prng.int_in g 1 50;
          p_container = Prng.pick g Spec.containers;
          p_retailprice = Spec.retail_price key;
          p_comment = words g 2;
        })
  in
  let partsupps =
    Array.init (4 * n_parts) (fun i ->
        let part = parts.(i / 4) in
        (* The spec spreads the four suppliers of a part deterministically;
           a seeded uniform choice preserves the join fan-out. *)
        let supp = suppliers.(Prng.int g n_suppliers) in
        {
          Row.ps_part = part;
          ps_supplier = supp;
          ps_availqty = Prng.int_in g 1 9999;
          ps_supplycost = money g 100 100000;
          ps_comment = words g 4;
        })
  in
  let n_customers = scaled Spec.customers_per_sf sf in
  let customers =
    Array.init n_customers (fun i ->
        let key = i + 1 in
        let nation = nations.(Prng.int g (Array.length nations)) in
        {
          Row.c_custkey = key;
          c_name = Printf.sprintf "Customer#%09d" key;
          c_address = words g 2;
          c_nation = nation;
          c_phone = phone g nation.Row.n_nationkey;
          c_acctbal = money g (-99999) 999999;
          c_mktsegment = Prng.pick g Spec.segments;
          c_comment = words g 5;
        })
  in
  let n_orders = scaled Spec.orders_per_sf sf in
  let max_orderdate = Date.add_days Spec.end_date (-151) in
  let date_span = max_orderdate - Spec.start_date in
  let lineitems_acc = ref [] in
  let n_lineitems = ref 0 in
  let orders =
    Array.init n_orders (fun i ->
        let key = i + 1 in
        let orderdate = Date.add_days Spec.start_date (Prng.int g (date_span + 1)) in
        let customer = customers.(Prng.int g n_customers) in
        let n_lines = Prng.int_in g 1 7 in
        (* Build lineitems eagerly so order status can be derived from them. *)
        let total = ref D.zero in
        let statuses = ref [] in
        let lines =
          List.init n_lines (fun ln ->
              let part = parts.(Prng.int g n_parts) in
              let supplier = suppliers.(Prng.int g n_suppliers) in
              let quantity = Prng.int_in g 1 50 in
              let extendedprice = D.mul (D.of_int quantity) part.Row.p_retailprice in
              let shipdate = Date.add_days orderdate (Prng.int_in g 1 121) in
              let commitdate = Date.add_days orderdate (Prng.int_in g 30 90) in
              let receiptdate = Date.add_days shipdate (Prng.int_in g 1 30) in
              let returnflag =
                if receiptdate <= Spec.current_date then (if Prng.bool g then 'R' else 'A')
                else 'N'
              in
              let linestatus = if shipdate > Spec.current_date then 'O' else 'F' in
              statuses := linestatus :: !statuses;
              total := D.add !total extendedprice;
              fun order ->
                {
                  Row.l_order = order;
                  l_part = part;
                  l_supplier = supplier;
                  l_linenumber = ln + 1;
                  l_quantity = D.of_int quantity;
                  l_extendedprice = extendedprice;
                  l_discount = D.of_cents (Prng.int_in g 0 10);
                  l_tax = D.of_cents (Prng.int_in g 0 8);
                  l_returnflag = returnflag;
                  l_linestatus = linestatus;
                  l_shipdate = shipdate;
                  l_commitdate = commitdate;
                  l_receiptdate = receiptdate;
                  l_shipinstruct = Prng.pick g Spec.instructs;
                  l_shipmode = Prng.pick g Spec.modes;
                  l_comment = words g 3;
                })
        in
        let orderstatus =
          if List.for_all (fun s -> s = 'F') !statuses then 'F'
          else if List.for_all (fun s -> s = 'O') !statuses then 'O'
          else 'P'
        in
        let order =
          {
            Row.o_orderkey = key;
            o_customer = customer;
            o_orderstatus = orderstatus;
            o_totalprice = !total;
            o_orderdate = orderdate;
            o_orderpriority = Prng.pick g Spec.priorities;
            o_clerk = Printf.sprintf "Clerk#%09d" (Prng.int_in g 1 (max 1 (n_orders / 1000)));
            o_shippriority = 0;
            o_comment = words g 4;
          }
        in
        List.iter
          (fun mk ->
            lineitems_acc := mk order :: !lineitems_acc;
            incr n_lineitems)
          lines;
        order)
  in
  let lineitems = Array.of_list (List.rev !lineitems_acc) in
  {
    Row.sf;
    regions;
    nations;
    suppliers;
    parts;
    partsupps;
    customers;
    orders;
    lineitems;
  }

let lineitem_key (li : Row.lineitem) = (li.Row.l_order.Row.o_orderkey * 8) + li.Row.l_linenumber
