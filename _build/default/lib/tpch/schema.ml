open Smc_offheap.Layout

let region =
  create ~name:"region"
    [ ("r_regionkey", Int); ("r_name", Str 25); ("r_comment", Str 40) ]

let nation =
  create ~name:"nation"
    [
      ("n_nationkey", Int);
      ("n_name", Str 25);
      ("n_region", Ref "region");
      ("n_comment", Str 40);
    ]

let supplier =
  create ~name:"supplier"
    [
      ("s_suppkey", Int);
      ("s_name", Str 25);
      ("s_address", Str 30);
      ("s_nation", Ref "nation");
      ("s_phone", Str 15);
      ("s_acctbal", Dec);
      ("s_comment", Str 40);
    ]

let part =
  create ~name:"part"
    [
      ("p_partkey", Int);
      ("p_name", Str 40);
      ("p_mfgr", Str 25);
      ("p_brand", Str 10);
      ("p_type", Str 25);
      ("p_size", Int);
      ("p_container", Str 10);
      ("p_retailprice", Dec);
      ("p_comment", Str 20);
    ]

let partsupp =
  create ~name:"partsupp"
    [
      ("ps_part", Ref "part");
      ("ps_supplier", Ref "supplier");
      ("ps_availqty", Int);
      ("ps_supplycost", Dec);
      ("ps_comment", Str 40);
    ]

let customer =
  create ~name:"customer"
    [
      ("c_custkey", Int);
      ("c_name", Str 25);
      ("c_address", Str 30);
      ("c_nation", Ref "nation");
      ("c_phone", Str 15);
      ("c_acctbal", Dec);
      ("c_mktsegment", Str 10);
      ("c_comment", Str 40);
    ]

let order =
  create ~name:"order"
    [
      ("o_orderkey", Int);
      ("o_customer", Ref "customer");
      ("o_orderstatus", Str 1);
      ("o_totalprice", Dec);
      ("o_orderdate", Date);
      ("o_orderpriority", Str 15);
      ("o_clerk", Str 15);
      ("o_shippriority", Int);
      ("o_comment", Str 40);
    ]

let lineitem =
  create ~name:"lineitem"
    [
      ("l_order", Ref "order");
      ("l_part", Ref "part");
      ("l_supplier", Ref "supplier");
      ("l_linenumber", Int);
      ("l_quantity", Dec);
      ("l_extendedprice", Dec);
      ("l_discount", Dec);
      ("l_tax", Dec);
      ("l_returnflag", Str 1);
      ("l_linestatus", Str 1);
      ("l_shipdate", Date);
      ("l_commitdate", Date);
      ("l_receiptdate", Date);
      ("l_shipinstruct", Str 25);
      ("l_shipmode", Str 10);
      ("l_comment", Str 27);
    ]
