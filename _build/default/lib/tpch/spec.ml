let regions =
  [|
    ("AFRICA", "special pinto beans");
    ("AMERICA", "even deposits wake");
    ("ASIA", "silent requests cajole");
    ("EUROPE", "furiously express accounts");
    ("MIDDLE EAST", "slyly ruthless requests");
  |]

let nations =
  [|
    ("ALGERIA", 0); ("ARGENTINA", 1); ("BRAZIL", 1); ("CANADA", 1); ("EGYPT", 4);
    ("ETHIOPIA", 0); ("FRANCE", 3); ("GERMANY", 3); ("INDIA", 2); ("INDONESIA", 2);
    ("IRAN", 4); ("IRAQ", 4); ("JAPAN", 2); ("JORDAN", 4); ("KENYA", 0);
    ("MOROCCO", 0); ("MOZAMBIQUE", 0); ("PERU", 1); ("CHINA", 2); ("ROMANIA", 3);
    ("SAUDI ARABIA", 4); ("VIETNAM", 2); ("RUSSIA", 3); ("UNITED KINGDOM", 3);
    ("UNITED STATES", 1);
  |]

let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]

let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

let instructs = [| "DELIVER IN PERSON"; "COLLECT COD"; "NONE"; "TAKE BACK RETURN" |]

let modes = [| "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" |]

let containers =
  [|
    "SM CASE"; "SM BOX"; "SM PACK"; "SM PKG"; "MED BAG"; "MED BOX"; "MED PKG";
    "MED PACK"; "LG CASE"; "LG BOX"; "LG PACK"; "LG PKG"; "JUMBO JAR"; "WRAP DRUM";
  |]

(* type = syllable1 syllable2 syllable3, as in the spec *)
let type_syl1 = [| "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" |]
let type_syl2 = [| "ANODIZED"; "BURNISHED"; "PLATED"; "POLISHED"; "BRUSHED" |]
let type_syl3 = [| "TIN"; "NICKEL"; "BRASS"; "STEEL"; "COPPER" |]

let types =
  Array.init
    (Array.length type_syl1 * Array.length type_syl2 * Array.length type_syl3)
    (fun i ->
      let a = i / (Array.length type_syl2 * Array.length type_syl3) in
      let b = i / Array.length type_syl3 mod Array.length type_syl2 in
      let c = i mod Array.length type_syl3 in
      Printf.sprintf "%s %s %s" type_syl1.(a) type_syl2.(b) type_syl3.(c))

let colors =
  [|
    "almond"; "antique"; "aquamarine"; "azure"; "beige"; "bisque"; "black"; "blanched";
    "blue"; "blush"; "brown"; "burlywood"; "burnished"; "chartreuse"; "chiffon";
    "chocolate"; "coral"; "cornflower"; "cream"; "cyan"; "dark"; "deep"; "dim";
    "dodger"; "drab"; "firebrick"; "floral"; "forest"; "frosted"; "gainsboro";
    "ghost"; "goldenrod"; "green"; "grey"; "honeydew"; "hot"; "indian"; "ivory";
    "khaki"; "lace"; "lavender"; "lawn"; "lemon"; "light"; "lime"; "linen";
  |]

let brands = Array.init 25 (fun i -> Printf.sprintf "Brand#%d%d" ((i / 5) + 1) ((i mod 5) + 1))

let lexicon =
  [|
    "furiously"; "quickly"; "slyly"; "carefully"; "blithely"; "express"; "regular";
    "special"; "pending"; "final"; "ironic"; "even"; "bold"; "silent"; "unusual";
    "accounts"; "packages"; "deposits"; "requests"; "instructions"; "foxes";
    "pinto"; "beans"; "theodolites"; "platelets"; "dependencies"; "excuses";
    "ideas"; "asymptotes"; "dolphins"; "sleep"; "wake"; "cajole"; "nag"; "haggle";
    "dazzle"; "integrate"; "boost"; "engage"; "detect"; "among"; "above"; "against";
  |]

let orders_per_sf = 1_500_000
let customers_per_sf = 150_000
let parts_per_sf = 200_000
let suppliers_per_sf = 10_000

let start_date = Smc_util.Date.of_ymd 1992 1 1
let end_date = Smc_util.Date.of_ymd 1998 12 31
let current_date = Smc_util.Date.of_ymd 1995 6 17

let retail_price partkey =
  (* (90000 + ((partkey/10) mod 20001) + 100 * (partkey mod 1000)) / 100 *)
  Smc_decimal.Decimal.of_cents
    (90000 + (partkey / 10 mod 20001) + (100 * (partkey mod 1000)))
