(** TPC-H Q1–Q6 over the columnstore baseline: compressed columnar scans
    with segment elimination, clustered-index range seeks on
    lineitem.shipdate / orders.orderdate, and value-based hash joins — the
    execution style of the paper's SQL Server comparison (Figure 13). *)

val q1 : Db_column.t -> Results.q1
val q2 : Db_column.t -> Results.q2
val q3 : Db_column.t -> Results.q3
val q4 : Db_column.t -> Results.q4
val q5 : Db_column.t -> Results.q5
val q6 : Db_column.t -> Results.q6
