module V = Smc_managed.Vector
module CD = Smc_managed.Concurrent_dictionary
module CB = Smc_managed.Concurrent_bag

type backing =
  | Vectors of {
      lineitems : Row.lineitem V.t;
      orders : Row.order V.t;
      customers : Row.customer V.t;
      partsupps : Row.partsupp V.t;
    }
  | Dicts of {
      lineitems : Row.lineitem CD.t;
      orders : Row.order CD.t;
      customers : Row.customer CD.t;
      partsupps : Row.partsupp CD.t;
    }
  | Bags of {
      lineitems : Row.lineitem CB.t;
      orders : Row.order CB.t;
      customers : Row.customer CB.t;
      partsupps : Row.partsupp CB.t;
    }

type t = {
  kind : string;
  backing : backing;
  iter_lineitems : (Row.lineitem -> unit) -> unit;
  iter_orders : (Row.order -> unit) -> unit;
  iter_customers : (Row.customer -> unit) -> unit;
  iter_partsupps : (Row.partsupp -> unit) -> unit;
}

let of_vectors (ds : Row.dataset) =
  let vec arr =
    let v = V.create ~capacity:(Array.length arr) () in
    Array.iter (fun x -> V.add v x) arr;
    v
  in
  let lineitems = vec ds.Row.lineitems
  and orders = vec ds.Row.orders
  and customers = vec ds.Row.customers
  and partsupps = vec ds.Row.partsupps in
  {
    kind = "list";
    backing = Vectors { lineitems; orders; customers; partsupps };
    iter_lineitems = (fun f -> V.iter lineitems ~f);
    iter_orders = (fun f -> V.iter orders ~f);
    iter_customers = (fun f -> V.iter customers ~f);
    iter_partsupps = (fun f -> V.iter partsupps ~f);
  }

let of_dicts (ds : Row.dataset) =
  let dict key arr =
    let d = CD.create ~capacity:(Array.length arr) () in
    Array.iteri (fun i x -> CD.add d ~key:(key i x) x) arr;
    d
  in
  let lineitems = dict (fun _ li -> Dbgen.lineitem_key li) ds.Row.lineitems
  and orders = dict (fun _ (o : Row.order) -> o.Row.o_orderkey) ds.Row.orders
  and customers = dict (fun _ (c : Row.customer) -> c.Row.c_custkey) ds.Row.customers
  and partsupps = dict (fun i _ -> i) ds.Row.partsupps in
  {
    kind = "dict";
    backing = Dicts { lineitems; orders; customers; partsupps };
    iter_lineitems = (fun f -> CD.iter lineitems ~f:(fun _ x -> f x));
    iter_orders = (fun f -> CD.iter orders ~f:(fun _ x -> f x));
    iter_customers = (fun f -> CD.iter customers ~f:(fun _ x -> f x));
    iter_partsupps = (fun f -> CD.iter partsupps ~f:(fun _ x -> f x));
  }

let of_bags (ds : Row.dataset) =
  let bag arr =
    let b = CB.create () in
    Array.iter (fun x -> CB.add b x) arr;
    b
  in
  let lineitems = bag ds.Row.lineitems
  and orders = bag ds.Row.orders
  and customers = bag ds.Row.customers
  and partsupps = bag ds.Row.partsupps in
  {
    kind = "bag";
    backing = Bags { lineitems; orders; customers; partsupps };
    iter_lineitems = (fun f -> CB.iter lineitems ~f);
    iter_orders = (fun f -> CB.iter orders ~f);
    iter_customers = (fun f -> CB.iter customers ~f);
    iter_partsupps = (fun f -> CB.iter partsupps ~f);
  }

let lineitem_count t =
  match t.backing with
  | Vectors { lineitems; _ } -> V.length lineitems
  | Dicts { lineitems; _ } -> CD.length lineitems
  | Bags { lineitems; _ } -> CB.length lineitems
