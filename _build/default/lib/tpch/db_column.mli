(** TPC-H stored in the compressed columnstore — the RDBMS baseline of
    Figure 13. Lineitem is clustered on [shipdate] and orders on
    [orderdate] (the paper's clustered indexes); joins are value-based on
    integer keys, not references. *)

type t = {
  lineitem : Smc_columnstore.Table.t;
  orders : Smc_columnstore.Table.t;
  customer : Smc_columnstore.Table.t;
  supplier : Smc_columnstore.Table.t;
  part : Smc_columnstore.Table.t;
  partsupp : Smc_columnstore.Table.t;
  nation : Smc_columnstore.Table.t;
  region : Smc_columnstore.Table.t;
}

val load : Row.dataset -> t

val bytes_estimate : t -> int
(** Total compressed size across tables. *)
