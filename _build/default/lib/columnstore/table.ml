type t = {
  name : string;
  nrows : int;
  columns : (string * Column.t) list;
  sort_key : string option;
  sorted_values : int array option; (* clustered key values, ascending *)
}

let create ~name ?sort_by ~columns () =
  let nrows =
    match columns with
    | [] -> invalid_arg "Table.create: no columns"
    | (_, `Ints xs) :: _ -> Array.length xs
    | (_, `Strs xs) :: _ -> Array.length xs
  in
  List.iter
    (fun (cname, data) ->
      let len = match data with `Ints xs -> Array.length xs | `Strs xs -> Array.length xs in
      if len <> nrows then
        invalid_arg (Printf.sprintf "Table.create: column %s has %d rows, expected %d" cname len nrows))
    columns;
  let perm =
    match sort_by with
    | None -> None
    | Some key ->
      let keydata =
        match List.assoc_opt key columns with
        | Some (`Ints xs) -> xs
        | Some (`Strs _) -> invalid_arg "Table.create: sort_by must be an integer column"
        | None -> invalid_arg ("Table.create: unknown sort column " ^ key)
      in
      let idx = Array.init nrows Fun.id in
      Array.sort (fun a b -> Int.compare keydata.(a) keydata.(b)) idx;
      Some idx
  in
  let apply_perm_int xs =
    match perm with None -> xs | Some p -> Array.map (fun i -> xs.(i)) p
  in
  let apply_perm_str xs =
    match perm with None -> xs | Some p -> Array.map (fun i -> xs.(i)) p
  in
  let sorted_values =
    match (sort_by, perm) with
    | Some key, Some _ ->
      (match List.assoc key columns with
      | `Ints xs -> Some (apply_perm_int xs)
      | `Strs _ -> None)
    | _ -> None
  in
  let encoded =
    List.map
      (fun (cname, data) ->
        ( cname,
          match data with
          | `Ints xs -> Column.encode_ints (apply_perm_int xs)
          | `Strs xs -> Column.encode_strings (apply_perm_str xs) ))
      columns
  in
  { name; nrows; columns = encoded; sort_key = sort_by; sorted_values }

let name t = t.name
let nrows t = t.nrows
let column t cname = List.assoc cname t.columns
let sort_key t = t.sort_key

let get_int t cname row = Column.get_int (column t cname) row
let get_string t cname row = Column.get_string (column t cname) row

(* First index with value >= x in the ascending clustered key. *)
let lower_bound xs x =
  let lo = ref 0 and hi = ref (Array.length xs) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if xs.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let iter_range t ~col ~lo ~hi ~f =
  match (t.sort_key, t.sorted_values) with
  | Some key, Some values when String.equal key col ->
    (* Clustered index seek: contiguous row range. *)
    let first = lower_bound values lo in
    let last = lower_bound values (hi + 1) - 1 in
    for row = first to last do
      f row
    done
  | _ -> Column.iter_int_range (column t col) ~lo ~hi ~f:(fun row _ -> f row)

let iter_all t ~f =
  for row = 0 to t.nrows - 1 do
    f row
  done

let bytes_estimate t =
  List.fold_left (fun acc (_, col) -> acc + Column.bytes_estimate col) 0 t.columns
