(** Columnstore tables: named compressed columns plus an optional clustered
    sort order. The paper's RDBMS baseline stores all TPC-H tables in the
    column store with clustered indexes on [shipdate] and [orderdate]; a
    table sorted by a column turns range predicates on it into contiguous
    row-id ranges (binary search on the RLE/sorted data), the analogue of a
    clustered-index seek. *)

type t

val create :
  name:string -> ?sort_by:string -> columns:(string * [ `Ints of int array | `Strs of string array ]) list -> unit -> t
(** All column arrays must have equal length. When [sort_by] is given, all
    columns are reordered by ascending value of that (integer) column before
    encoding. *)

val name : t -> string
val nrows : t -> int
val column : t -> string -> Column.t
(** Raises [Not_found]. *)

val sort_key : t -> string option

val get_int : t -> string -> int -> int
val get_string : t -> string -> int -> string

val iter_range : t -> col:string -> lo:int -> hi:int -> f:(int -> unit) -> unit
(** Rows whose [col] value lies within [\[lo, hi\]]. If [col] is the
    clustered sort key, only the matching contiguous row range is visited
    (index seek); otherwise segment-eliminated scan. *)

val iter_all : t -> f:(int -> unit) -> unit

val bytes_estimate : t -> int
