(** Compressed columns for the in-memory columnstore baseline.

    The paper's Figure 13 compares SMCs against SQL Server 2014's compressed
    in-memory columnstore; this module provides the equivalent storage
    characteristics: integer columns choose between raw, run-length and
    dictionary encodings by measured size; string columns are
    dictionary-encoded. Integer columns carry per-segment min/max metadata
    so scans can eliminate whole segments against range predicates (the
    columnstore's "segment elimination"). *)

type int_encoding =
  | Raw of int array
  | Rle of { starts : int array; values : int array }
      (** [starts.(i)] is the first row of run [i]; runs cover all rows *)
  | Dict of { dict : int array; codes : Bytes.t; width : int }
      (** [width]-byte little-endian codes into [dict] *)

type t =
  | Ints of { enc : int_encoding; length : int; seg_min : int array; seg_max : int array }
  | Strs of { dict : string array; codes : int array }

val segment_size : int

val encode_ints : int array -> t
(** Picks the smallest of raw / RLE / dictionary encodings. *)

val encode_strings : string array -> t

val length : t -> int

val get_int : t -> int -> int
(** Raises [Invalid_argument] on a string column. *)

val get_string : t -> int -> string

val iter_int_range : t -> lo:int -> hi:int -> f:(int -> int -> unit) -> unit
(** [iter_int_range col ~lo ~hi ~f] calls [f row value] for every row whose
    value is within [\[lo, hi\]], skipping segments whose min/max metadata
    excludes the range. *)

val bytes_estimate : t -> int
(** Approximate compressed size, for compression-ratio reporting. *)
