type int_encoding =
  | Raw of int array
  | Rle of { starts : int array; values : int array }
  | Dict of { dict : int array; codes : Bytes.t; width : int }

type t =
  | Ints of { enc : int_encoding; length : int; seg_min : int array; seg_max : int array }
  | Strs of { dict : string array; codes : int array }

let segment_size = 4096

let segment_stats xs =
  let n = Array.length xs in
  let nseg = (n + segment_size - 1) / segment_size in
  let mins = Array.make (max nseg 1) max_int in
  let maxs = Array.make (max nseg 1) min_int in
  Array.iteri
    (fun i x ->
      let s = i / segment_size in
      if x < mins.(s) then mins.(s) <- x;
      if x > maxs.(s) then maxs.(s) <- x)
    xs;
  (mins, maxs)

let run_count xs =
  let n = Array.length xs in
  if n = 0 then 0
  else begin
    let runs = ref 1 in
    for i = 1 to n - 1 do
      if xs.(i) <> xs.(i - 1) then incr runs
    done;
    !runs
  end

let code_width ndistinct =
  if ndistinct <= 0x100 then 1 else if ndistinct <= 0x10000 then 2 else if ndistinct <= 0x1000000 then 3 else 8

let write_code codes width i v =
  for b = 0 to width - 1 do
    Bytes.unsafe_set codes ((i * width) + b) (Char.unsafe_chr ((v lsr (b * 8)) land 0xFF))
  done

let read_code codes width i =
  let v = ref 0 in
  for b = width - 1 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.unsafe_get codes ((i * width) + b))
  done;
  !v

let encode_ints xs =
  let n = Array.length xs in
  let seg_min, seg_max = segment_stats xs in
  let distinct = Hashtbl.create 1024 in
  Array.iter (fun x -> if not (Hashtbl.mem distinct x) then Hashtbl.add distinct x ()) xs;
  let ndistinct = Hashtbl.length distinct in
  let runs = run_count xs in
  let raw_bytes = 8 * n in
  let rle_bytes = 16 * runs in
  let width = code_width ndistinct in
  let dict_bytes = (8 * ndistinct) + (width * n) in
  let enc =
    if rle_bytes <= dict_bytes && rle_bytes < raw_bytes then begin
      let starts = Array.make runs 0 and values = Array.make runs 0 in
      let r = ref (-1) in
      Array.iteri
        (fun i x ->
          if i = 0 || x <> xs.(i - 1) then begin
            incr r;
            starts.(!r) <- i;
            values.(!r) <- x
          end)
        xs;
      Rle { starts; values }
    end
    else if dict_bytes < raw_bytes && width < 8 then begin
      let dict = Array.make ndistinct 0 in
      let index = Hashtbl.create ndistinct in
      let next = ref 0 in
      Array.iter
        (fun x ->
          if not (Hashtbl.mem index x) then begin
            dict.(!next) <- x;
            Hashtbl.add index x !next;
            incr next
          end)
        xs;
      let codes = Bytes.create (width * n) in
      Array.iteri (fun i x -> write_code codes width i (Hashtbl.find index x)) xs;
      Dict { dict; codes; width }
    end
    else Raw (Array.copy xs)
  in
  Ints { enc; length = n; seg_min; seg_max }

let encode_strings xs =
  let index = Hashtbl.create 1024 in
  let dict_rev = ref [] in
  let next = ref 0 in
  let codes =
    Array.map
      (fun s ->
        match Hashtbl.find_opt index s with
        | Some c -> c
        | None ->
          let c = !next in
          Hashtbl.add index s c;
          dict_rev := s :: !dict_rev;
          incr next;
          c)
      xs
  in
  Strs { dict = Array.of_list (List.rev !dict_rev); codes }

let length = function
  | Ints { length; _ } -> length
  | Strs { codes; _ } -> Array.length codes

(* Binary search for the run containing [row]. *)
let rle_find starts row =
  let lo = ref 0 and hi = ref (Array.length starts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if starts.(mid) <= row then lo := mid else hi := mid - 1
  done;
  !lo

let get_int col row =
  match col with
  | Strs _ -> invalid_arg "Column.get_int: string column"
  | Ints { enc; _ } ->
    (match enc with
    | Raw xs -> Array.unsafe_get xs row
    | Rle { starts; values } -> values.(rle_find starts row)
    | Dict { dict; codes; width } -> dict.(read_code codes width row))

let get_string col row =
  match col with
  | Strs { dict; codes } -> dict.(codes.(row))
  | Ints _ as col -> string_of_int (get_int col row)

let iter_int_range col ~lo ~hi ~f =
  match col with
  | Strs _ -> invalid_arg "Column.iter_int_range: string column"
  | Ints { enc; length; seg_min; seg_max } ->
    let nseg = Array.length seg_min in
    for s = 0 to nseg - 1 do
      (* Segment elimination: skip segments that cannot match. *)
      if seg_max.(s) >= lo && seg_min.(s) <= hi then begin
        let first = s * segment_size in
        let last = min (first + segment_size) length - 1 in
        match enc with
        | Raw xs ->
          for row = first to last do
            let v = Array.unsafe_get xs row in
            if v >= lo && v <= hi then f row v
          done
        | Dict { dict; codes; width } ->
          for row = first to last do
            let v = dict.(read_code codes width row) in
            if v >= lo && v <= hi then f row v
          done
        | Rle { starts; values } ->
          (* Walk runs overlapping the segment. *)
          let r0 = rle_find starts first in
          let r = ref r0 in
          let nruns = Array.length starts in
          while !r < nruns && starts.(!r) <= last do
            let v = values.(!r) in
            if v >= lo && v <= hi then begin
              let run_start = max starts.(!r) first in
              let run_end =
                min last (if !r + 1 < nruns then starts.(!r + 1) - 1 else length - 1)
              in
              for row = run_start to run_end do
                f row v
              done
            end;
            incr r
          done
      end
    done

let bytes_estimate = function
  | Ints { enc; seg_min; _ } ->
    16 * Array.length seg_min
    + (match enc with
      | Raw xs -> 8 * Array.length xs
      | Rle { starts; values } -> 8 * (Array.length starts + Array.length values)
      | Dict { dict; codes; _ } -> (8 * Array.length dict) + Bytes.length codes)
  | Strs { dict; codes } ->
    (8 * Array.length codes)
    + Array.fold_left (fun acc s -> acc + String.length s + 24) 0 dict
