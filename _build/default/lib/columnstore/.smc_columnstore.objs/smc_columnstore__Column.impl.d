lib/columnstore/column.ml: Array Bytes Char Hashtbl List String
