lib/columnstore/table.ml: Array Column Fun Int List Printf String
