lib/columnstore/table.mli: Column
