lib/columnstore/column.mli: Bytes
