(** References to self-managed objects.

    A reference names an object for as long as the object lives in its
    collection; once the object is removed, every outstanding reference to
    it implicitly becomes null and dereferencing raises
    {!Smc_offheap.Constants.Null_reference} — the semantics of §2 of the
    paper. A reference packs the indirection-table entry and the low bits of
    the incarnation number into a single immediate integer, so references
    are free to copy and add no garbage-collection load. *)

type t = private int

val null : t
val is_null : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val of_packed : int -> t
(** Internal: wraps a packed reference produced by the memory manager. *)

val to_packed : t -> int
