lib/core/ref.mli:
