lib/core/field.ml: Array Bigarray Block Char Collection Constants Context Layout Printf Ref Smc_offheap String
