lib/core/ref.ml: Hashtbl Int Smc_offheap
