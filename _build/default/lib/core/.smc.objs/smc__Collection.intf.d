lib/core/collection.mli: Ref Smc_offheap
