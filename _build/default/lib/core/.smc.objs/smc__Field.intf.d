lib/core/field.mli: Collection Ref Smc_decimal Smc_offheap Smc_util
