lib/core/collection.ml: Compaction Constants Context Epoch Fun Layout Ref Runtime Smc_offheap
