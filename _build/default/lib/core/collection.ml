open Smc_offheap

type t = {
  name : string;
  layout : Layout.t;
  ctx : Context.t;
  rt : Runtime.t;
}

let create rt ~name ~layout ?placement ?mode ?slots_per_block ?reclaim_threshold () =
  let ctx = Context.create rt ~layout ?placement ?mode ?slots_per_block ?reclaim_threshold () in
  { name; layout; ctx; rt }

let add t ~init =
  let packed = Context.alloc t.ctx in
  (match Context.resolve t.ctx packed with
  | Some (blk, slot) -> init blk slot
  | None -> assert false (* a freshly allocated object cannot be dead *));
  Ref.of_packed packed

let remove t r = Context.free t.ctx (Ref.to_packed r)

let deref_opt t r = Context.resolve t.ctx (Ref.to_packed r)

let deref t r =
  match deref_opt t r with
  | Some loc -> loc
  | None -> raise Constants.Null_reference

let mem t r = deref_opt t r <> None

let with_read t f =
  Epoch.enter_critical t.rt.Runtime.epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit_critical t.rt.Runtime.epoch) f

let iter t ~f = with_read t (fun () -> Context.iter_valid t.ctx ~f)

let iter_per_block t ~f = Context.iter_valid_per_block t.ctx ~f

let iter_scan t ~on_block = with_read t (fun () -> Context.iter_valid_hoisted t.ctx ~on_block)

let loc_block t loc = Context.block_of_loc t.ctx loc
let loc_slot loc = Constants.ptr_slot loc

let ref_of_slot t blk slot = Ref.of_packed (Context.indirect_ref_of_slot t.ctx blk slot)

let iter_refs t ~f = iter t ~f:(fun blk slot -> f (ref_of_slot t blk slot))

let fold t ~init ~f =
  let acc = ref init in
  iter t ~f:(fun blk slot -> acc := f !acc blk slot);
  !acc

let count t = Context.valid_count t.ctx

let compact t ?occupancy_threshold () = Compaction.run t.ctx ?occupancy_threshold ()

let memory_words t = Context.off_heap_words t.ctx
let block_count t = Context.block_count t.ctx
let limbo_count t = Context.stats_limbo t.ctx
