type t = int

let null = Smc_offheap.Constants.null_ref
let is_null t = t < 0
let equal = Int.equal
let compare = Int.compare
let hash t = Hashtbl.hash t
let of_packed t = t
let to_packed t = t
