(** Fixed-point decimal arithmetic.

    TPC-H money values have two fractional digits and the paper's C# port
    uses the 16-byte [decimal] type; exact decimal math dominates Q1's cost.
    We represent decimals as [int] values scaled by 10^4 (four fractional
    digits), which is exact for every TPC-H quantity, price, discount and tax
    value and for the products appearing in Q1's aggregates
    (price * (1-disc) and price * (1-disc) * (1+tax) round to the scale).

    The module also exposes an in-place accumulator mirroring the paper's
    "unsafe" optimisation of passing direct pointers to decimal values so
    arithmetic happens in place rather than via copied operands. *)

type t = int
(** Scaled by {!scale}. OCaml 63-bit ints give head-room past 10^14 whole
    units, far above any TPC-H aggregate at the scale factors used here. *)

val scale : int
(** 10_000: four fractional digits. *)

val zero : t
val one : t

val of_int : int -> t
(** Whole units to decimal. *)

val of_cents : int -> t
(** Hundredths (TPC-H native money granularity) to decimal. *)

val of_float : float -> t
(** Rounded to the nearest representable value; for test input only. *)

val to_float : t -> float

val of_string : string -> t
(** Parses ["123.45"], up to four fractional digits. *)

val to_string : t -> string

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

val mul : t -> t -> t
(** Rounded to nearest (half away from zero). *)

val div : t -> t -> t
(** Rounded to nearest; raises [Division_by_zero] on a zero divisor. *)

val avg : sum:t -> count:int -> t

val compare : t -> t -> int
val equal : t -> t -> bool

(** {1 In-place accumulation}

    [Acc] is a one-cell mutable accumulator. The fused SMC query code sums
    into these without allocating intermediate boxes — the stand-in for the
    paper's by-pointer decimal math in unsafe C#. *)
module Acc : sig
  type nonrec t = { mutable v : t }

  val make : unit -> t
  val add : t -> int -> unit
  val add_mul : t -> int -> int -> unit
  (** [add_mul a x y] accumulates [mul x y] with a single rounding. *)

  val get : t -> int
  val reset : t -> unit
end
