type t = int

let scale = 10_000
let zero = 0
let one = scale

let of_int n = n * scale
let of_cents c = c * (scale / 100)

let of_float f =
  let scaled = f *. float_of_int scale in
  int_of_float (Float.round scaled)

let to_float t = float_of_int t /. float_of_int scale

let add = ( + )
let sub = ( - )
let neg x = -x

(* Round half away from zero, like C# decimal's default midpoint rounding
   direction for these workloads. *)
let round_div num den =
  let q = num / den and r = num mod den in
  if abs (2 * r) >= den then q + (if (num >= 0) = (den >= 0) then 1 else -1)
  else q

let mul x y = round_div (x * y) scale

let div x y =
  if y = 0 then raise Division_by_zero;
  round_div (x * scale) y

let avg ~sum ~count = if count = 0 then 0 else round_div sum count

let compare = Int.compare
let equal = Int.equal

let of_string s =
  let negative = String.length s > 0 && s.[0] = '-' in
  let s = if negative then String.sub s 1 (String.length s - 1) else s in
  let whole, frac =
    match String.index_opt s '.' with
    | None -> (s, "")
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  if String.length frac > 4 then invalid_arg ("Decimal.of_string: too many digits: " ^ s);
  let frac_padded = frac ^ String.make (4 - String.length frac) '0' in
  let whole_v = if whole = "" then 0 else int_of_string whole in
  let v = (whole_v * scale) + int_of_string ("0" ^ frac_padded) in
  if negative then -v else v

let to_string t =
  let sign = if t < 0 then "-" else "" in
  let t = abs t in
  let whole = t / scale and frac = t mod scale in
  if frac = 0 then Printf.sprintf "%s%d.00" sign whole
  else if frac mod 100 = 0 then Printf.sprintf "%s%d.%02d" sign whole (frac / 100)
  else Printf.sprintf "%s%d.%04d" sign whole frac

module Acc = struct
  type nonrec t = { mutable v : t }

  let make () = { v = 0 }
  let add a x = a.v <- a.v + x
  let add_mul a x y = a.v <- a.v + round_div (x * y) scale
  let get a = a.v
  let reset a = a.v <- 0
end
