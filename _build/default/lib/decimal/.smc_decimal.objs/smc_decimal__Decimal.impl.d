lib/decimal/decimal.ml: Float Int Printf String
