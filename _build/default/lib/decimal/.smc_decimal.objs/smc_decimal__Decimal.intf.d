lib/decimal/decimal.mli:
