(** Extension workload: the additional enumeration-heavy TPC-H queries
    (Q7, Q10, Q12, Q14, Q19) that a production user of the library would run
    beyond the paper's Q1–Q6 evaluation set. Same engines and baseline
    normalisation as Figure 11. *)

type point = { engine : string; query : string; relative_pct : float; absolute_ms : float }

val run : ?sf:float -> unit -> point list
val table : point list -> Smc_util.Table.t
