(** Figure 7 — batch allocation throughput.

    Allocates lineitem objects from 1/2/4 threads and reports millions of
    allocations per second for: pure managed allocation (records kept
    reachable in pre-allocated thread-local arrays), ConcurrentBag adds,
    ConcurrentDictionary adds — each under the default ("interactive") and a
    throughput-tuned ("batch") garbage collector — and SMC adds (one shared
    collection, thread-local blocks). *)

type point = { variant : string; threads : int; mallocs_per_sec : float }

val run : ?per_thread:int -> ?thread_counts:int list -> unit -> point list
(** [per_thread] allocations per thread (default 300_000). *)

val table : point list -> Smc_util.Table.t
