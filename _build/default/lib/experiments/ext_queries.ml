type point = { engine : string; query : string; relative_pct : float; absolute_ms : float }

let names = [| "Q7"; "Q10"; "Q12"; "Q14"; "Q19" |]

let queries_for_managed db =
  [|
    (fun () -> Obj.repr (Smc_tpch.Q_managed.q7 db));
    (fun () -> Obj.repr (Smc_tpch.Q_managed.q10 db));
    (fun () -> Obj.repr (Smc_tpch.Q_managed.q12 db));
    (fun () -> Obj.repr (Smc_tpch.Q_managed.q14 db));
    (fun () -> Obj.repr (Smc_tpch.Q_managed.q19 db));
  |]

let queries_for_smc ~unsafe db =
  [|
    (fun () -> Obj.repr (Smc_tpch.Q_smc.q7 ~unsafe db));
    (fun () -> Obj.repr (Smc_tpch.Q_smc.q10 ~unsafe db));
    (fun () -> Obj.repr (Smc_tpch.Q_smc.q12 ~unsafe db));
    (fun () -> Obj.repr (Smc_tpch.Q_smc.q14 ~unsafe db));
    (fun () -> Obj.repr (Smc_tpch.Q_smc.q19 ~unsafe db));
  |]

let run ?(sf = 0.05) () =
  let ds = Smc_tpch.Dbgen.generate ~sf () in
  let list_db = Smc_tpch.Db_managed.of_vectors ds in
  let dict_db = Smc_tpch.Db_managed.of_dicts ds in
  let smc_db = Smc_tpch.Db_smc.load ds in
  let points =
    Fig11.measure
      [
        ("List", queries_for_managed list_db);
        ("C. Dictionary", queries_for_managed dict_db);
        ("SMC (safe)", queries_for_smc ~unsafe:false smc_db);
        ("SMC (unsafe)", queries_for_smc ~unsafe:true smc_db);
      ]
  in
  List.map
    (fun (p : Fig11.point) ->
      {
        engine = p.Fig11.engine;
        query = names.(p.Fig11.query - 1);
        relative_pct = p.Fig11.relative_pct;
        absolute_ms = p.Fig11.absolute_ms;
      })
    points

let table points =
  let t =
    Smc_util.Table.create
      ~title:"Extension queries Q7/Q10/Q12/Q14/Q19, relative to List (%)"
      ~columns:[ "engine"; "query"; "relative to List (%)"; "absolute (ms)" ]
  in
  List.iter
    (fun p ->
      Smc_util.Table.add_row t
        [
          p.engine;
          p.query;
          Printf.sprintf "%.1f" p.relative_pct;
          Printf.sprintf "%.2f" p.absolute_ms;
        ])
    points;
  t
