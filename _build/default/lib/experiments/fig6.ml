open Smc_util

type point = {
  threshold_pct : int;
  alloc_remove_norm : float;
  query_norm : float;
  memory_norm : float;
}

type raw = { pct : int; ops_ms : float; query_ms : float; memory : int }

let measure ~n pct =
  let threshold = float_of_int pct /. 100.0 in
  let _rt, coll =
    Workload.lineitem_collection ~slots_per_block:1024 ~reclaim_threshold:threshold ()
  in
  let g = Prng.create ~seed:66L () in
  let refs = Array.init n (fun _ -> Workload.add_lineitem coll g) in
  (* Wear the collection so limbo slots exist, then measure a churn round
     (allocation/removal performance), a full enumeration (query
     performance) and the footprint. *)
  Workload.churn coll ~refs ~prng:g ~fraction:0.2 ~rounds:2;
  let ops_ms =
    Timing.time_ms (fun () -> Workload.churn coll ~refs ~prng:g ~fraction:0.2 ~rounds:2)
  in
  let query_ms =
    let samples = Timing.repeat ~warmup:1 3 (fun () -> ignore (Workload.scan_sum coll : int)) in
    Stats.median samples
  in
  { pct; ops_ms; query_ms; memory = Smc.Collection.memory_words coll }

let run ?(n = 200_000) ?(thresholds = [ 1; 2; 5; 10; 20; 30; 50; 75; 100 ]) () =
  let raws = List.map (measure ~n) thresholds in
  let max_by f = List.fold_left (fun acc r -> Float.max acc (f r)) 0.0 raws in
  (* Throughput = 1/ops_ms; normalise each curve to its own maximum. *)
  let max_tput = max_by (fun r -> 1.0 /. r.ops_ms) in
  let max_query = max_by (fun r -> r.query_ms) in
  let max_mem = max_by (fun r -> float_of_int r.memory) in
  List.map
    (fun r ->
      {
        threshold_pct = r.pct;
        alloc_remove_norm = 1.0 /. r.ops_ms /. max_tput;
        query_norm = r.query_ms /. max_query;
        memory_norm = float_of_int r.memory /. max_mem;
      })
    raws

let table points =
  let t =
    Table.create ~title:"Figure 6: varying the relocation (reclamation) threshold"
      ~columns:
        [ "threshold %"; "alloc/removal perf (norm)"; "query time (norm)"; "memory (norm)" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          string_of_int p.threshold_pct;
          Printf.sprintf "%.3f" p.alloc_remove_norm;
          Printf.sprintf "%.3f" p.query_norm;
          Printf.sprintf "%.3f" p.memory_norm;
        ])
    points;
  t
