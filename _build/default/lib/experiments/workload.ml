open Smc_util
module C = Smc.Collection
module F = Smc.Field
module D = Smc_decimal.Decimal

let fields = lazy (Smc_tpch.Db_smc.lineitem_fields)

let lineitem_collection ?mode ?slots_per_block ?reclaim_threshold () =
  let rt = Smc_offheap.Runtime.create () in
  let coll =
    C.create rt ~name:"lineitems" ~layout:Smc_tpch.Schema.lineitem ?mode ?slots_per_block
      ?reclaim_threshold ()
  in
  (rt, coll)

let add_lineitem coll g =
  let lf = Lazy.force fields in
  let qty = Prng.int_in g 1 50 in
  let price = D.of_cents (Prng.int_in g 100000 10000000) in
  C.add coll ~init:(fun blk slot ->
      F.set_int lf.Smc_tpch.Db_smc.l_linenumber blk slot (Prng.int_in g 1 7);
      F.set_dec lf.Smc_tpch.Db_smc.l_quantity blk slot (D.of_int qty);
      F.set_dec lf.Smc_tpch.Db_smc.l_extendedprice blk slot price;
      F.set_dec lf.Smc_tpch.Db_smc.l_discount blk slot (D.of_cents (Prng.int_in g 0 10));
      F.set_dec lf.Smc_tpch.Db_smc.l_tax blk slot (D.of_cents (Prng.int_in g 0 8));
      F.set_string lf.Smc_tpch.Db_smc.l_returnflag blk slot "N";
      F.set_string lf.Smc_tpch.Db_smc.l_linestatus blk slot "O";
      F.set_date lf.Smc_tpch.Db_smc.l_shipdate blk slot
        (Smc_tpch.Spec.start_date + Prng.int g 2000);
      F.set_date lf.Smc_tpch.Db_smc.l_commitdate blk slot
        (Smc_tpch.Spec.start_date + Prng.int g 2000);
      F.set_date lf.Smc_tpch.Db_smc.l_receiptdate blk slot
        (Smc_tpch.Spec.start_date + Prng.int g 2000);
      F.set_string lf.Smc_tpch.Db_smc.l_shipmode blk slot "MAIL";
      F.set_string lf.Smc_tpch.Db_smc.l_comment blk slot "synthetic workload row")

let churn coll ~refs ~prng ~fraction ~rounds =
  let n = Array.length refs in
  let per_round = int_of_float (float_of_int n *. fraction) in
  for _ = 1 to rounds do
    for _ = 1 to per_round do
      let i = Prng.int prng n in
      if not (Smc.Ref.is_null refs.(i)) then begin
        ignore (C.remove coll refs.(i) : bool);
        refs.(i) <- add_lineitem coll prng
      end
    done;
    (* Advance epochs so limbo slots become reclaimable between rounds. *)
    let epoch = coll.C.rt.Smc_offheap.Runtime.epoch in
    ignore
      (Smc_offheap.Epoch.advance_until epoch
         ~target:(Smc_offheap.Epoch.global epoch + 2)
         ~max_spins:1000
        : bool)
  done

let scan_sum coll =
  let lf = Lazy.force fields in
  let f_qty = lf.Smc_tpch.Db_smc.l_quantity in
  let total = ref 0 in
  C.iter coll ~f:(fun blk slot -> total := !total + F.get_int f_qty blk slot);
  !total

let domains_run n body =
  if n <= 1 then body 0
  else begin
    let domains = List.init n (fun i -> Domain.spawn (fun () -> body i)) in
    List.iter Domain.join domains
  end

let with_gc_settings ~minor_heap_words ~space_overhead f =
  let saved = Gc.get () in
  Gc.set { saved with Gc.minor_heap_size = minor_heap_words; space_overhead };
  Fun.protect ~finally:(fun () -> Gc.set saved) f
