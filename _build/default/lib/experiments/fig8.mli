(** Figure 8 — refresh stream throughput.

    Each thread alternately runs an insert stream (adds 0.1% of the initial
    lineitem population) and a remove stream (one enumeration removing 0.1%
    by orderkey predicate); reported as streams per minute for the
    Vector/List baseline (externally locked, as List<T> would need),
    ConcurrentDictionary and SMC. *)

type point = { variant : string; threads : int; streams_per_min : float }

val run : ?sf:float -> ?pairs_per_thread:int -> ?thread_counts:int list -> unit -> point list

val table : point list -> Smc_util.Table.t
