(** Figure 6 — sensitivity to the reclamation threshold.

    Loads a lineitem SMC, churns it, and sweeps the limbo-slot reclamation
    threshold, reporting allocation/removal throughput, enumeration-query
    time and total memory size, each normalised to its maximum over the
    sweep — the same three normalised curves the paper plots. *)

type point = {
  threshold_pct : int;
  alloc_remove_norm : float;  (** throughput, higher is better *)
  query_norm : float;  (** evaluation time, lower is better *)
  memory_norm : float;  (** total memory size *)
}

val run : ?n:int -> ?thresholds:int list -> unit -> point list
(** [n] objects (default 200_000); thresholds in percent
    (default 1,2,5,10,20,30,50,75,100). *)

val table : point list -> Smc_util.Table.t
