open Smc_util

type point = {
  variant : string;
  size : int;
  max_timeout_ms : float;
  full_gc_ms : float;
  workload_ms : float;
}

(* The paper pairs an allocating thread with a 1 ms-sleeper thread and
   records the sleeper's overshoot. On this reproduction's single-core
   container, cross-thread sleep overshoot measures scheduler preemption
   rather than garbage collection, so the adaptation times the allocating
   workload itself: the workload runs in fixed small units, and the longest
   unit is the observed worst-case stall. GC pauses (growing with the number
   of heap-resident objects) dominate that maximum exactly as they dominate
   the paper's timer overshoot. *)

let churn_unit window g i =
  for k = 0 to 199 do
    let n = 1 + ((i + k) mod 20) in
    let cell = List.init n (fun j -> Bytes.create (16 + ((j * 7) mod 48))) in
    window.((i + k) land 4095) <- cell
  done;
  ignore g

(* Runs a fixed number of allocation units and, at the midpoint, one full
   (blocking) major collection — the deterministic equivalent of .NET's
   batch-mode gen2 collection, whose duration the paper's Figure 9 tracks.
   Reports the longest single unit (worst-case incremental stall), the
   duration of the forced full collection (growing with the traced heap),
   and the total elapsed time (the throughput stolen by collection — the
   paper's "interactive" effect). *)
let measure_spikes ~batch ~units =
  let saved = Gc.get () in
  if batch then
    Gc.set { saved with Gc.minor_heap_size = 8 * 1024 * 1024; space_overhead = 200 };
  Fun.protect
    ~finally:(fun () -> Gc.set saved)
    (fun () ->
      let window = Array.make 4096 [] in
      let g = Prng.create ~seed:9L () in
      let max_ms = ref 0.0 in
      (* Three forced majors spaced across the workload; the minimum is the
         noise-robust estimate of the blocking-collection duration. *)
      let full_ms = ref infinity in
      let q1 = units / 4 and q2 = units / 2 and q3 = 3 * units / 4 in
      let start = Unix.gettimeofday () in
      for u = 0 to units - 1 do
        let t0 = Unix.gettimeofday () in
        churn_unit window g (u * 200);
        let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
        if dt > !max_ms then max_ms := dt;
        if u = q1 || u = q2 || u = q3 then begin
          let t1 = Unix.gettimeofday () in
          Gc.major ();
          let gc_ms = (Unix.gettimeofday () -. t1) *. 1000.0 in
          if gc_ms < !full_ms then full_ms := gc_ms
        end
      done;
      let total = (Unix.gettimeofday () -. start) *. 1000.0 in
      ignore (Sys.opaque_identity window);
      (!max_ms, !full_ms, total))

let measure_managed ~batch ~size ~units =
  let order, part, supplier = Dbgen_shared.make () in
  let g = Prng.create ~seed:31L () in
  let population =
    Array.init size (fun _ : Smc_tpch.Row.lineitem ->
        {
          Smc_tpch.Row.l_order = order;
          l_part = part;
          l_supplier = supplier;
          l_linenumber = 1;
          l_quantity = Prng.int_in g 1 50;
          l_extendedprice = Prng.int_in g 100000 10000000;
          l_discount = 0;
          l_tax = 0;
          l_returnflag = 'N';
          l_linestatus = 'O';
          l_shipdate = 0;
          l_commitdate = 0;
          l_receiptdate = 0;
          l_shipinstruct = "NONE";
          l_shipmode = "MAIL";
          l_comment = Printf.sprintf "row %d" (Prng.int g 1000000);
        })
  in
  Gc.compact ();
  let result = measure_spikes ~batch ~units in
  ignore (Sys.opaque_identity population);
  result

let measure_smc ~batch ~size ~units =
  let _rt, coll = Workload.lineitem_collection () in
  let g = Prng.create ~seed:31L () in
  for _ = 1 to size do
    ignore (Workload.add_lineitem coll g : Smc.Ref.t)
  done;
  Gc.compact ();
  let result = measure_spikes ~batch ~units in
  ignore (Sys.opaque_identity coll);
  result

let run ?(sizes = [ 100_000; 400_000; 1_600_000 ]) ?(duration_s = 2.0) () =
  (* duration_s sets the workload size: units calibrated at roughly 0.5 ms
     of allocation work each. *)
  let units = max 200 (int_of_float (duration_s *. 2000.0)) in
  List.concat_map
    (fun size ->
      List.map
        (fun (variant, f) ->
          Gc.compact ();
          let max_timeout_ms, full_gc_ms, workload_ms = f ~size ~units in
          { variant; size; max_timeout_ms; full_gc_ms; workload_ms })
        [
          ("Managed (batch)", measure_managed ~batch:true);
          ("Managed (interactive)", measure_managed ~batch:false);
          ("Self-managed (batch)", measure_smc ~batch:true);
          ("Self-managed (interactive)", measure_smc ~batch:false);
        ])
    sizes

let table points =
  let t =
    Table.create
      ~title:"Figure 9: GC impact of parked objects (fixed allocation workload)"
      ~columns:
        [ "variant"; "collection size"; "max stall (ms)"; "full major GC (ms)";
          "workload total (ms)" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.variant;
          string_of_int p.size;
          Printf.sprintf "%.2f" p.max_timeout_ms;
          Printf.sprintf "%.2f" p.full_gc_ms;
          Printf.sprintf "%.1f" p.workload_ms;
        ])
    points;
  t
