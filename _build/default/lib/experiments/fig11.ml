open Smc_util

type point = { engine : string; query : int; relative_pct : float; absolute_ms : float }

(* Minimum of several runs: the most noise-robust point estimate for a
   deterministic computation on a shared machine. *)
let best_ms f = Stats.min (Timing.repeat ~warmup:2 5 (fun () -> ignore (Sys.opaque_identity (f ()))))

let queries_for_managed db =
  [|
    (fun () -> Obj.repr (Smc_tpch.Q_managed.q1 db));
    (fun () -> Obj.repr (Smc_tpch.Q_managed.q2 db));
    (fun () -> Obj.repr (Smc_tpch.Q_managed.q3 db));
    (fun () -> Obj.repr (Smc_tpch.Q_managed.q4 db));
    (fun () -> Obj.repr (Smc_tpch.Q_managed.q5 db));
    (fun () -> Obj.repr (Smc_tpch.Q_managed.q6 db));
  |]

let queries_for_smc ~unsafe db =
  [|
    (fun () -> Obj.repr (Smc_tpch.Q_smc.q1 ~unsafe db));
    (fun () -> Obj.repr (Smc_tpch.Q_smc.q2 ~unsafe db));
    (fun () -> Obj.repr (Smc_tpch.Q_smc.q3 ~unsafe db));
    (fun () -> Obj.repr (Smc_tpch.Q_smc.q4 ~unsafe db));
    (fun () -> Obj.repr (Smc_tpch.Q_smc.q5 ~unsafe db));
    (fun () -> Obj.repr (Smc_tpch.Q_smc.q6 ~unsafe db));
  |]

let measure engines =
  (* engines: (name, query array); first engine is the 100% baseline. Every
     engine is measured exactly once so the baseline reads exactly 100. *)
  let timed =
    List.map (fun (name, queries) -> (name, Array.map best_ms queries)) engines
  in
  match timed with
  | [] -> []
  | (_, baseline) :: _ ->
    List.concat_map
      (fun (name, times) ->
        List.init (Array.length times) (fun q ->
            {
              engine = name;
              query = q + 1;
              relative_pct = 100.0 *. times.(q) /. baseline.(q);
              absolute_ms = times.(q);
            }))
      timed

let run ?(sf = 0.05) () =
  let ds = Smc_tpch.Dbgen.generate ~sf () in
  let list_db = Smc_tpch.Db_managed.of_vectors ds in
  let dict_db = Smc_tpch.Db_managed.of_dicts ds in
  let smc_db = Smc_tpch.Db_smc.load ds in
  measure
    [
      ("List", queries_for_managed list_db);
      ("C. Dictionary", queries_for_managed dict_db);
      ("SMC (safe)", queries_for_smc ~unsafe:false smc_db);
      ("SMC (unsafe)", queries_for_smc ~unsafe:true smc_db);
    ]

let table points =
  let t =
    Table.create ~title:"Figure 11: TPC-H Q1-Q6, evaluation time relative to List (%)"
      ~columns:[ "engine"; "query"; "relative to List (%)"; "absolute (ms)" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.engine;
          Printf.sprintf "Q%d" p.query;
          Printf.sprintf "%.1f" p.relative_pct;
          Printf.sprintf "%.2f" p.absolute_ms;
        ])
    points;
  t
