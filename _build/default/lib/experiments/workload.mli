(** Shared workload helpers for the experiment drivers. *)

val lineitem_collection :
  ?mode:Smc_offheap.Context.mode ->
  ?slots_per_block:int ->
  ?reclaim_threshold:float ->
  unit ->
  Smc_offheap.Runtime.t * Smc.Collection.t
(** Fresh runtime plus an empty lineitem-layout collection. *)

val add_lineitem :
  Smc.Collection.t -> Smc_util.Prng.t -> Smc.Ref.t
(** Adds one synthetic lineitem (all scalar fields populated, refs null). *)

val churn :
  Smc.Collection.t ->
  refs:Smc.Ref.t array ->
  prng:Smc_util.Prng.t ->
  fraction:float ->
  rounds:int ->
  unit
(** Wears a collection: each round removes [fraction] of the refs at random
    and inserts replacements, advancing epochs so limbo slots recycle. *)

val scan_sum : Smc.Collection.t -> int
(** Full enumeration summing the quantity field — the simple function of the
    enumeration benchmarks. *)

val domains_run : int -> (int -> unit) -> unit
(** [domains_run n body] runs [body i] on [n] domains and joins them. *)

val with_gc_settings : minor_heap_words:int -> space_overhead:int -> (unit -> 'a) -> 'a
(** Temporarily overrides GC parameters (the batch/interactive analogue). *)
