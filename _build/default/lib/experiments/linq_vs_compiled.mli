(** §7's LINQ-vs-compiled observation (E9 in DESIGN.md).

    The paper notes that evaluating the queries through LINQ instead of
    compiled C# costs 40–400% more. The closest analogue here is
    {!Smc_tpch.Q_linq}: lazy Seq pipelines over the managed List, compared
    against the compiled managed queries — the same collections, only the
    evaluation model differs. The table also reports the generic engines
    over an SMC source (fused push pipeline and the tagged-value Volcano
    interpreter, which bounds the interpreted cost model from above). *)

type point = { query : string; engine : string; ms : float; vs_compiled_pct : float }

val run : ?sf:float -> unit -> point list
val table : point list -> Smc_util.Table.t
