(** Figure 11 — TPC-H queries 1–6, evaluation time relative to List.

    Engines: compiled queries over List (Vector) and ConcurrentDictionary,
    and over SMCs in the managed-equivalent ("SMC (C#)") and raw-access
    ("SMC (unsafe C#)") variants. Values are percentages of the List time
    (List = 100). *)

type point = { engine : string; query : int; relative_pct : float; absolute_ms : float }

val run : ?sf:float -> unit -> point list
val table : point list -> Smc_util.Table.t

(** Reusable pieces for the other query figures. *)

val queries_for_managed : Smc_tpch.Db_managed.t -> (unit -> Obj.t) array
val queries_for_smc : unsafe:bool -> Smc_tpch.Db_smc.t -> (unit -> Obj.t) array

val measure : (string * (unit -> Obj.t) array) list -> point list
(** Times every engine's six queries (median of three runs); the first
    engine is the 100% baseline. *)
