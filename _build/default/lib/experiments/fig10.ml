open Smc_util
module C = Smc.Collection
module F = Smc.Field
module V = Smc_managed.Vector
module CB = Smc_managed.Concurrent_bag
module CD = Smc_managed.Concurrent_dictionary
module R = Smc_tpch.Row

type point = {
  variant : string;
  worn : bool;
  enumeration_ms : float;
  nested_ms : float;
}

let median_ms f = Stats.median (Timing.repeat ~warmup:1 3 f)

let managed_times iter_lineitems =
  let enumeration =
    median_ms (fun () ->
        let acc = ref 0 in
        iter_lineitems (fun (li : R.lineitem) -> acc := !acc + li.R.l_quantity);
        ignore (Sys.opaque_identity !acc))
  in
  let nested =
    median_ms (fun () ->
        let acc = ref 0 in
        iter_lineitems (fun (li : R.lineitem) ->
            acc := !acc + li.R.l_order.R.o_customer.R.c_acctbal);
        ignore (Sys.opaque_identity !acc))
  in
  (enumeration, nested)

(* SMC enumeration in compiled-query style: hoisted offsets, raw block
   reads, allocation-free reference navigation. *)
let smc_times (db : Smc_tpch.Db_smc.t) =
  let module Context = Smc_offheap.Context in
  let module Block = Smc_offheap.Block in
  let module BA1 = Bigarray.Array1 in
  let lf = db.Smc_tpch.Db_smc.lf
  and orf = db.Smc_tpch.Db_smc.orf
  and cf = db.Smc_tpch.Db_smc.cf in
  let o_qty = lf.Smc_tpch.Db_smc.l_quantity.Smc_offheap.Layout.word in
  let o_lorder = lf.Smc_tpch.Db_smc.l_order.Smc_offheap.Layout.word in
  let o_ocust = orf.Smc_tpch.Db_smc.o_customer.Smc_offheap.Layout.word in
  let o_bal = cf.Smc_tpch.Db_smc.c_acctbal.Smc_offheap.Layout.word in
  let orders = db.Smc_tpch.Db_smc.orders and customers = db.Smc_tpch.Db_smc.customers in
  let octx = orders.C.ctx and cctx = customers.C.ctx in
  let o_sw = orders.C.layout.Smc_offheap.Layout.slot_words in
  let c_sw = customers.C.layout.Smc_offheap.Layout.slot_words in
  let resolve ctx w =
    if w < 0 then -1
    else
      match ctx.Context.mode with
      | Context.Indirect -> Context.resolve_loc ctx w
      | Context.Direct -> Context.resolve_direct_loc ctx w
  in
  let enumeration =
    median_ms (fun () ->
        let acc = ref 0 in
        C.iter_scan db.Smc_tpch.Db_smc.lineitems ~on_block:(fun blk ->
            let data = blk.Block.data in
            let sw = blk.Block.layout.Smc_offheap.Layout.slot_words in
            fun slot -> acc := !acc + BA1.unsafe_get data ((slot * sw) + o_qty));
        ignore (Sys.opaque_identity !acc))
  in
  let nested =
    median_ms (fun () ->
        let acc = ref 0 in
        C.iter_scan db.Smc_tpch.Db_smc.lineitems ~on_block:(fun blk ->
            let data = blk.Block.data in
            let sw = blk.Block.layout.Smc_offheap.Layout.slot_words in
            fun slot ->
              let oloc = resolve octx (BA1.unsafe_get data ((slot * sw) + o_lorder)) in
              if oloc >= 0 then begin
                let ob = Context.block_of_loc octx oloc in
                let os = Smc_offheap.Constants.ptr_slot oloc in
                let cloc =
                  resolve cctx (BA1.unsafe_get ob.Block.data ((os * o_sw) + o_ocust))
                in
                if cloc >= 0 then begin
                  let cb = Context.block_of_loc cctx cloc in
                  let cs = Smc_offheap.Constants.ptr_slot cloc in
                  acc := !acc + BA1.unsafe_get cb.Block.data ((cs * c_sw) + o_bal)
                end
              end);
        ignore (Sys.opaque_identity !acc))
  in
  (enumeration, nested)

(* Wear a vector with insert/remove churn: removed records leave, their
   replacements are allocated late (scattered across the heap) — the
   fragmentation the paper's "worn" state captures. *)
let churn_vector v (ds : R.dataset) ~prng ~pairs ~batch =
  for _ = 1 to pairs do
    for _ = 1 to batch do
      V.add v (Smc_tpch.Refresh.fresh_lineitem_row prng ds)
    done;
    let keys = Hashtbl.create 16 in
    for _ = 1 to max 1 (batch / 4) do
      Hashtbl.replace keys
        ds.R.orders.(Prng.int prng (Array.length ds.R.orders)).R.o_orderkey ()
    done;
    ignore (V.remove_bulk v ~pred:(fun (li : R.lineitem) -> Hashtbl.mem keys li.R.l_order.R.o_orderkey) : int)
  done

let fresh_vector (ds : R.dataset) =
  let v = V.create ~capacity:(Array.length ds.R.lineitems) () in
  Array.iter (fun li -> V.add v li) ds.R.lineitems;
  v

let bag_of_vector v =
  let b = CB.create () in
  V.iter v ~f:(fun li -> CB.add b li);
  b

let dict_of_vector v =
  let d = CD.create ~capacity:(V.length v) () in
  let i = ref 0 in
  V.iter v ~f:(fun li ->
      CD.add d ~key:!i li;
      incr i);
  d

let run ?(sf = 0.05) ?(wear_pairs = 20) () =
  let ds = Smc_tpch.Dbgen.generate ~sf () in
  let batch = max 1 (Array.length ds.R.lineitems / 1000) in
  let prng = Prng.create ~seed:77L () in
  (* Managed stores share one fresh and one worn record population. *)
  let fresh_v = fresh_vector ds in
  let worn_v = fresh_vector ds in
  churn_vector worn_v ds ~prng ~pairs:wear_pairs ~batch;
  let fresh_bag = bag_of_vector fresh_v and worn_bag = bag_of_vector worn_v in
  let fresh_dict = dict_of_vector fresh_v and worn_dict = dict_of_vector worn_v in
  (* SMC stores: indirect and direct; worn copies churned via refresh ops. *)
  let smc_fresh = Smc_tpch.Db_smc.load ds in
  let smc_worn = Smc_tpch.Db_smc.load ds in
  let smc_direct_fresh = Smc_tpch.Db_smc.load ~mode:Smc_offheap.Context.Direct ds in
  let smc_direct_worn = Smc_tpch.Db_smc.load ~mode:Smc_offheap.Context.Direct ds in
  let wear_smc db =
    let ops = Smc_tpch.Refresh.smc_ops db ds in
    let p = Prng.create ~seed:78L () in
    for _ = 1 to wear_pairs do
      Smc_tpch.Refresh.run_stream_pair ops ~prng:p ~batch
    done
  in
  wear_smc smc_worn;
  wear_smc smc_direct_worn;
  let results =
    [
      ("List", false, managed_times (fun f -> V.iter fresh_v ~f));
      ("List", true, managed_times (fun f -> V.iter worn_v ~f));
      ("C. Bag", false, managed_times (fun f -> CB.iter fresh_bag ~f));
      ("C. Bag", true, managed_times (fun f -> CB.iter worn_bag ~f));
      ("C. Dictionary", false, managed_times (fun f -> CD.iter fresh_dict ~f:(fun _ x -> f x)));
      ("C. Dictionary", true, managed_times (fun f -> CD.iter worn_dict ~f:(fun _ x -> f x)));
      ("SMC", false, smc_times smc_fresh);
      ("SMC", true, smc_times smc_worn);
      ("SMC (direct)", false, smc_times smc_direct_fresh);
      ("SMC (direct)", true, smc_times smc_direct_worn);
    ]
  in
  List.map
    (fun (variant, worn, (enumeration_ms, nested_ms)) ->
      { variant; worn; enumeration_ms; nested_ms })
    results

let table points =
  let t =
    Table.create ~title:"Figure 10: enumeration performance (ms)"
      ~columns:[ "variant"; "state"; "enumeration"; "nested enumeration" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.variant;
          (if p.worn then "worn" else "fresh");
          Printf.sprintf "%.2f" p.enumeration_ms;
          Printf.sprintf "%.2f" p.nested_ms;
        ])
    points;
  t
