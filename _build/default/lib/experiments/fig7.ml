open Smc_util

type point = { variant : string; threads : int; mallocs_per_sec : float }

(* Shared referents so a fresh lineitem record only allocates the record
   itself plus its strings, as in the paper's default-constructor test. *)
let dummy_rows = lazy (Dbgen_shared.make ())

(* The batch collector analogue: a large minor heap and relaxed space
   overhead trade pause frequency for throughput. Settings are applied
   inside each domain (OCaml 5 GC parameters are per-domain). *)
let gc_batch () = Gc.set { (Gc.get ()) with minor_heap_size = 8 * 1024 * 1024; space_overhead = 200 }

let make_lineitem g : Smc_tpch.Row.lineitem =
  let order, part, supplier = Lazy.force dummy_rows in
  {
    Smc_tpch.Row.l_order = order;
    l_part = part;
    l_supplier = supplier;
    l_linenumber = Prng.int_in g 1 7;
    l_quantity = Smc_decimal.Decimal.of_int (Prng.int_in g 1 50);
    l_extendedprice = Smc_decimal.Decimal.of_cents (Prng.int_in g 100000 10000000);
    l_discount = Smc_decimal.Decimal.of_cents (Prng.int_in g 0 10);
    l_tax = Smc_decimal.Decimal.of_cents (Prng.int_in g 0 8);
    l_returnflag = 'N';
    l_linestatus = 'O';
    l_shipdate = Smc_tpch.Spec.start_date + Prng.int g 2000;
    l_commitdate = Smc_tpch.Spec.start_date + Prng.int g 2000;
    l_receiptdate = Smc_tpch.Spec.start_date + Prng.int g 2000;
    l_shipinstruct = "NONE";
    l_shipmode = "MAIL";
    l_comment = "batch allocation bench row";
  }

let timed_domains threads body =
  let t0 = Unix.gettimeofday () in
  Workload.domains_run threads body;
  (Unix.gettimeofday () -. t0) *. 1000.0

let pure_alloc ~batch ~threads ~per_thread =
  let sinks = Array.make threads [||] in
  let ms =
    timed_domains threads (fun i ->
        if batch then gc_batch ();
        let g = Prng.create ~seed:(Int64.of_int (i + 1)) () in
        let sink = Array.make per_thread (make_lineitem g) in
        for j = 0 to per_thread - 1 do
          Array.unsafe_set sink j (make_lineitem g)
        done;
        sinks.(i) <- sink)
  in
  ignore (Sys.opaque_identity sinks);
  ms

let bag_alloc ~batch ~threads ~per_thread =
  let bag = Smc_managed.Concurrent_bag.create () in
  timed_domains threads (fun i ->
      if batch then gc_batch ();
      let g = Prng.create ~seed:(Int64.of_int (i + 1)) () in
      for _ = 1 to per_thread do
        Smc_managed.Concurrent_bag.add bag (make_lineitem g)
      done)

let dict_alloc ~batch ~threads ~per_thread =
  let dict = Smc_managed.Concurrent_dictionary.create ~capacity:(threads * per_thread) () in
  timed_domains threads (fun i ->
      if batch then gc_batch ();
      let g = Prng.create ~seed:(Int64.of_int (i + 1)) () in
      let base = i * per_thread in
      for j = 0 to per_thread - 1 do
        Smc_managed.Concurrent_dictionary.add dict ~key:(base + j) (make_lineitem g)
      done)

let smc_alloc ~threads ~per_thread =
  let _rt, coll = Workload.lineitem_collection () in
  timed_domains threads (fun i ->
      let g = Prng.create ~seed:(Int64.of_int (i + 1)) () in
      for _ = 1 to per_thread do
        ignore (Workload.add_lineitem coll g : Smc.Ref.t)
      done)

let run ?(per_thread = 300_000) ?(thread_counts = [ 1; 2; 4 ]) () =
  let variants =
    [
      ("pure alloc (interactive)", fun threads -> pure_alloc ~batch:false ~threads ~per_thread);
      ("pure alloc (batch)", fun threads -> pure_alloc ~batch:true ~threads ~per_thread);
      ("C. Bag (interactive)", fun threads -> bag_alloc ~batch:false ~threads ~per_thread);
      ("C. Bag (batch)", fun threads -> bag_alloc ~batch:true ~threads ~per_thread);
      ("C. Dictionary (interactive)", fun threads -> dict_alloc ~batch:false ~threads ~per_thread);
      ("C. Dictionary (batch)", fun threads -> dict_alloc ~batch:true ~threads ~per_thread);
      ("SMC (any)", fun threads -> smc_alloc ~threads ~per_thread);
    ]
  in
  List.concat_map
    (fun threads ->
      List.map
        (fun (variant, f) ->
          Gc.full_major ();
          let ms = f threads in
          let total = threads * per_thread in
          { variant; threads; mallocs_per_sec = Timing.throughput_per_sec ~ops:total ~ms })
        variants)
    thread_counts

let table points =
  let t =
    Table.create ~title:"Figure 7: batch allocation throughput (millions of allocations/s)"
      ~columns:[ "variant"; "threads"; "M allocs/s" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [ p.variant; string_of_int p.threads; Printf.sprintf "%.2f" (p.mallocs_per_sec /. 1e6) ])
    points;
  t
