open Smc_util
module C = Smc.Collection
module F = Smc.Field
module Block = Smc_offheap.Block
module BA1 = Bigarray.Array1

let best_ms f = Stats.min (Timing.repeat ~warmup:1 5 f)

(* ------------------------------------------------------------------ *)
(* Block size sweep *)

let block_size_table () =
  let t =
    Table.create ~title:"Ablation: slots per block"
      ~columns:[ "slots/block"; "alloc (M/s)"; "enumeration (ms)"; "blocks" ]
  in
  List.iter
    (fun slots_per_block ->
      let _rt, coll = Workload.lineitem_collection ~slots_per_block () in
      let g = Prng.create ~seed:12L () in
      let n = 200_000 in
      let alloc_ms =
        Timing.time_ms (fun () ->
            for _ = 1 to n do
              ignore (Workload.add_lineitem coll g : Smc.Ref.t)
            done)
      in
      let scan_ms = best_ms (fun () -> ignore (Workload.scan_sum coll : int)) in
      Table.add_row t
        [
          string_of_int slots_per_block;
          Printf.sprintf "%.2f" (float_of_int n /. alloc_ms /. 1000.0);
          Printf.sprintf "%.2f" scan_ms;
          string_of_int (C.block_count coll);
        ])
    [ 256; 1024; 4096; 16384 ];
  t

(* ------------------------------------------------------------------ *)
(* Reference mechanics: checked refs vs fused locations vs direct pointers *)

let deref_table ~sf =
  let ds = Smc_tpch.Dbgen.generate ~sf () in
  let t =
    Table.create ~title:"Ablation: reference dereference mechanics (lineitem -> order scan)"
      ~columns:[ "mechanism"; "ms / full scan"; "ns / dereference" ]
  in
  let n = Array.length ds.Smc_tpch.Row.lineitems in
  let run_mode name db measure =
    let ms = best_ms (fun () -> measure db) in
    Table.add_row t
      [ name; Printf.sprintf "%.2f" ms; Printf.sprintf "%.1f" (ms *. 1e6 /. float_of_int n) ]
  in
  let scan_with db per_loc =
    let lf = (db : Smc_tpch.Db_smc.t).Smc_tpch.Db_smc.lf in
    let orders = db.Smc_tpch.Db_smc.orders in
    let acc = ref 0 in
    C.iter db.Smc_tpch.Db_smc.lineitems ~f:(fun blk slot ->
        acc := !acc + per_loc lf orders blk slot);
    ignore (Sys.opaque_identity !acc)
  in
  let indirect_db = Smc_tpch.Db_smc.load ds in
  let direct_db = Smc_tpch.Db_smc.load ~mode:Smc_offheap.Context.Direct ds in
  run_mode "checked app reference (get_ref + deref)" indirect_db (fun db ->
      scan_with db (fun lf orders blk slot ->
          let r = F.get_ref lf.Smc_tpch.Db_smc.l_order ~target:orders blk slot in
          match C.deref_opt orders r with
          | Some (ob, os) ->
            F.get_int (Smc_tpch.Db_smc.order_fields : Smc_tpch.Db_smc.order_fields).Smc_tpch.Db_smc.o_orderkey ob os
          | None -> 0));
  run_mode "indirect location (follow_loc)" indirect_db (fun db ->
      scan_with db (fun lf orders blk slot ->
          let loc = F.follow_loc lf.Smc_tpch.Db_smc.l_order ~target:orders blk slot in
          if loc < 0 then 0
          else
            F.get_int Smc_tpch.Db_smc.order_fields.Smc_tpch.Db_smc.o_orderkey
              (C.loc_block orders loc) (C.loc_slot loc)));
  run_mode "direct pointer (follow_loc, direct mode)" direct_db (fun db ->
      scan_with db (fun lf orders blk slot ->
          let loc = F.follow_loc lf.Smc_tpch.Db_smc.l_order ~target:orders blk slot in
          if loc < 0 then 0
          else
            F.get_int Smc_tpch.Db_smc.order_fields.Smc_tpch.Db_smc.o_orderkey
              (C.loc_block orders loc) (C.loc_slot loc)));
  t

(* ------------------------------------------------------------------ *)
(* Critical-section granularity *)

let granularity_table ~sf =
  let ds = Smc_tpch.Dbgen.generate ~sf () in
  let db = Smc_tpch.Db_smc.load ds in
  let lf = db.Smc_tpch.Db_smc.lf in
  let f_qty = lf.Smc_tpch.Db_smc.l_quantity in
  let t =
    Table.create ~title:"Ablation: critical-section granularity (full enumeration)"
      ~columns:[ "granularity"; "ms" ]
  in
  let whole =
    best_ms (fun () ->
        let acc = ref 0 in
        C.iter db.Smc_tpch.Db_smc.lineitems ~f:(fun blk slot ->
            acc := !acc + F.get_int f_qty blk slot);
        ignore (Sys.opaque_identity !acc))
  in
  let per_block =
    best_ms (fun () ->
        let acc = ref 0 in
        C.iter_per_block db.Smc_tpch.Db_smc.lineitems ~f:(fun blk slot ->
            acc := !acc + F.get_int f_qty blk slot);
        ignore (Sys.opaque_identity !acc))
  in
  Table.add_row t [ "whole query (one section)"; Printf.sprintf "%.2f" whole ];
  Table.add_row t [ "per memory block"; Printf.sprintf "%.2f" per_block ];
  t

(* ------------------------------------------------------------------ *)
(* String predicates *)

let string_predicate_table ~sf =
  let ds = Smc_tpch.Dbgen.generate ~sf () in
  let db = Smc_tpch.Db_smc.load ds in
  let lf = db.Smc_tpch.Db_smc.lf in
  let f_mode = lf.Smc_tpch.Db_smc.l_shipmode in
  let t =
    Table.create ~title:"Ablation: string equality predicate (shipmode = 'MAIL')"
      ~columns:[ "mechanism"; "ms"; "matches" ]
  in
  let allocating =
    let count = ref 0 in
    let ms =
      best_ms (fun () ->
          count := 0;
          C.iter db.Smc_tpch.Db_smc.lineitems ~f:(fun blk slot ->
              if F.get_string f_mode blk slot = "MAIL" then incr count))
    in
    (ms, !count)
  in
  let packed =
    let matcher = F.string_eq f_mode "MAIL" in
    let count = ref 0 in
    let ms =
      best_ms (fun () ->
          count := 0;
          C.iter db.Smc_tpch.Db_smc.lineitems ~f:(fun blk slot ->
              if matcher blk slot then incr count))
    in
    (ms, !count)
  in
  let (ms_a, n_a) = allocating and (ms_p, n_p) = packed in
  assert (n_a = n_p);
  Table.add_row t [ "get_string + compare"; Printf.sprintf "%.2f" ms_a; string_of_int n_a ];
  Table.add_row t [ "pre-packed word compare"; Printf.sprintf "%.2f" ms_p; string_of_int n_p ];
  t

let run ?(sf = 0.02) () =
  [ block_size_table (); deref_table ~sf; granularity_table ~sf; string_predicate_table ~sf ]

let print_all ?sf () = List.iter Table.print (run ?sf ())
