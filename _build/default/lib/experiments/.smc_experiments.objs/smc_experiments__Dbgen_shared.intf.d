lib/experiments/dbgen_shared.mli: Smc_tpch
