lib/experiments/fig10.ml: Array Bigarray Hashtbl List Printf Prng Smc Smc_managed Smc_offheap Smc_tpch Smc_util Stats Sys Table Timing
