lib/experiments/fig6.mli: Smc_util
