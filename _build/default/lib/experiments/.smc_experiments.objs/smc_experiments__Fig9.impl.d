lib/experiments/fig9.ml: Array Bytes Dbgen_shared Fun Gc List Printf Prng Smc Smc_tpch Smc_util Sys Table Unix Workload
