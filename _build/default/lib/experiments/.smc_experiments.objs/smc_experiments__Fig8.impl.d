lib/experiments/fig8.ml: Array Fun Gc Int64 List Mutex Printf Prng Smc_tpch Smc_util Table Unix Workload
