lib/experiments/workload.mli: Smc Smc_offheap Smc_util
