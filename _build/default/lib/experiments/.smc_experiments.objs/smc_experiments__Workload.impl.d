lib/experiments/workload.ml: Array Domain Fun Gc Lazy List Prng Smc Smc_decimal Smc_offheap Smc_tpch Smc_util
