lib/experiments/fig6.ml: Array Float List Printf Prng Smc Smc_util Stats Table Timing Workload
