lib/experiments/fig11.ml: Array List Obj Printf Smc_tpch Smc_util Stats Sys Table Timing
