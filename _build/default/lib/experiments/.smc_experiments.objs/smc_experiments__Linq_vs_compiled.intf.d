lib/experiments/linq_vs_compiled.mli: Smc_util
