lib/experiments/fig13.ml: Fig11 List Obj Printf Smc_offheap Smc_tpch Smc_util
