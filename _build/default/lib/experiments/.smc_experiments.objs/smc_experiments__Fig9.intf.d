lib/experiments/fig9.mli: Smc_util
