lib/experiments/fig12.ml: Fig11 List Printf Smc_offheap Smc_tpch Smc_util
