lib/experiments/ext_queries.mli: Smc_util
