lib/experiments/fig7.mli: Smc_util
