lib/experiments/fig13.mli: Smc_util
