lib/experiments/fig7.ml: Array Dbgen_shared Gc Int64 Lazy List Printf Prng Smc Smc_decimal Smc_managed Smc_tpch Smc_util Sys Table Timing Unix Workload
