lib/experiments/ablations.ml: Array Bigarray List Printf Prng Smc Smc_offheap Smc_tpch Smc_util Stats Sys Table Timing Workload
