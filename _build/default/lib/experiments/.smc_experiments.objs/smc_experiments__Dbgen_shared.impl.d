lib/experiments/dbgen_shared.ml: Array Smc_tpch
