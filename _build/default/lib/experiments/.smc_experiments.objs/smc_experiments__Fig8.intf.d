lib/experiments/fig8.mli: Smc_util
