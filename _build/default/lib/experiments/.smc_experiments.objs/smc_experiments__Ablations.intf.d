lib/experiments/ablations.mli: Smc_util
