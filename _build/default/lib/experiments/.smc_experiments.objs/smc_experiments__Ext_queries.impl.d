lib/experiments/ext_queries.ml: Array Fig11 List Obj Printf Smc_tpch Smc_util
