lib/experiments/fig12.mli: Smc_util
