lib/experiments/fig11.mli: Obj Smc_tpch Smc_util
