lib/experiments/linq_vs_compiled.ml: List Obj Printf Smc Smc_query Smc_tpch Smc_util Stats String Sys Table Timing
