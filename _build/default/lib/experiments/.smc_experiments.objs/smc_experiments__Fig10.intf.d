lib/experiments/fig10.mli: Smc_util
