(** Figure 13 — comparison to an RDBMS columnstore.

    Q1–Q6 over the compressed columnstore (clustered on shipdate/orderdate,
    value-based joins — the SQL Server 2014 stand-in) versus SMC (direct)
    and SMC (columnar); percentages relative to the columnstore (= 100). *)

type point = { engine : string; query : int; relative_pct : float; absolute_ms : float }

val run : ?sf:float -> unit -> point list
val table : point list -> Smc_util.Table.t
