(** Figure 9 — worst-case stalls caused by garbage collection.

    Populates a collection with N lineitem objects (managed records vs
    SMC), then runs an allocation workload in fixed small units and records
    the longest unit — the worst-case stall the application observes. It
    grows with the number of heap-resident objects for managed collections
    (the collector must trace them) and stays flat for SMCs, whose objects
    the collector never scans.

    The paper's version measures a 1 ms sleeper thread's overshoot next to
    an allocator thread; on this reproduction's single-core container that
    measures scheduler preemption, so the stall is timed inside the
    allocating workload itself (same phenomenon, single-threaded probe).
    The paper's batch/interactive .NET collector modes map to the OCaml
    collector in a throughput-tuned configuration (large minor heap,
    relaxed space overhead) vs its default. *)

type point = {
  variant : string;
  size : int;
  max_timeout_ms : float;  (** longest single workload unit *)
  full_gc_ms : float;
      (** duration of a forced full major collection mid-workload — the
          deterministic analogue of .NET's batch gen2 pause *)
  workload_ms : float;  (** total time for the fixed workload *)
}

val run : ?sizes:int list -> ?duration_s:float -> unit -> point list
(** Default sizes 100k/400k/1.6M; [duration_s] calibrates the fixed
    workload size per configuration (default 2.0). *)

val table : point list -> Smc_util.Table.t
