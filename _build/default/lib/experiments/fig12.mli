(** Figure 12 — direct pointers and columnar storage.

    Q1–Q6 over three SMC configurations — indirect row store, direct
    pointers (§6), columnar placement (§4.1) — relative to the indirect
    unsafe baseline ("SMC (unsafe C#)" = 100). *)

type point = { engine : string; query : int; relative_pct : float; absolute_ms : float }

val run : ?sf:float -> unit -> point list
val table : point list -> Smc_util.Table.t
