type point = { engine : string; query : int; relative_pct : float; absolute_ms : float }

let queries_for_column db =
  [|
    (fun () -> Obj.repr (Smc_tpch.Q_column.q1 db));
    (fun () -> Obj.repr (Smc_tpch.Q_column.q2 db));
    (fun () -> Obj.repr (Smc_tpch.Q_column.q3 db));
    (fun () -> Obj.repr (Smc_tpch.Q_column.q4 db));
    (fun () -> Obj.repr (Smc_tpch.Q_column.q5 db));
    (fun () -> Obj.repr (Smc_tpch.Q_column.q6 db));
  |]

let run ?(sf = 0.05) () =
  let ds = Smc_tpch.Dbgen.generate ~sf () in
  let column_db = Smc_tpch.Db_column.load ds in
  let direct = Smc_tpch.Db_smc.load ~mode:Smc_offheap.Context.Direct ds in
  let columnar = Smc_tpch.Db_smc.load ~placement:Smc_offheap.Block.Columnar ds in
  let points =
    Fig11.measure
      [
        ("Columnstore (SQL Server)", queries_for_column column_db);
        ("SMC (direct)", Fig11.queries_for_smc ~unsafe:true direct);
        ("SMC (columnar)", Fig11.queries_for_smc ~unsafe:true columnar);
      ]
  in
  List.map
    (fun (p : Fig11.point) ->
      {
        engine = p.Fig11.engine;
        query = p.Fig11.query;
        relative_pct = p.Fig11.relative_pct;
        absolute_ms = p.Fig11.absolute_ms;
      })
    points

let table points =
  let t =
    Smc_util.Table.create
      ~title:"Figure 13: comparison to the RDBMS columnstore, relative to columnstore (%)"
      ~columns:[ "engine"; "query"; "relative to columnstore (%)"; "absolute (ms)" ]
  in
  List.iter
    (fun p ->
      Smc_util.Table.add_row t
        [
          p.engine;
          Printf.sprintf "Q%d" p.query;
          Printf.sprintf "%.1f" p.relative_pct;
          Printf.sprintf "%.2f" p.absolute_ms;
        ])
    points;
  t
