let make () =
  let ds = Smc_tpch.Dbgen.generate ~sf:0.0001 () in
  (ds.Smc_tpch.Row.orders.(0), ds.Smc_tpch.Row.parts.(0), ds.Smc_tpch.Row.suppliers.(0))
