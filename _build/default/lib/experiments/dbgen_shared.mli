(** Tiny shared referents for allocation benchmarks: one order, part and
    supplier record reused by every synthetic lineitem so only the lineitem
    object itself is being allocated. *)

val make : unit -> Smc_tpch.Row.order * Smc_tpch.Row.part * Smc_tpch.Row.supplier
