(** Figure 10 — enumeration performance, fresh vs worn.

    Two query shapes: (a) enumerate the lineitem collection applying a cheap
    function to each object; (b) enumerate and additionally follow the order
    reference and the order's customer reference (nested access). Each runs
    against freshly-loaded collections and against collections worn by
    repeated refresh streams (removals + insertions), for the managed
    baselines, SMCs with indirection, and SMCs with direct pointers (§6). *)

type point = {
  variant : string;
  worn : bool;
  enumeration_ms : float;
  nested_ms : float;
}

val run : ?sf:float -> ?wear_pairs:int -> unit -> point list

val table : point list -> Smc_util.Table.t
