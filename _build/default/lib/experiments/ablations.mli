(** Ablation benchmarks for the implementation's own design choices
    (complementing the paper's figures):

    - block size: slots-per-block vs allocation and enumeration performance;
    - reference mechanics: the checked application-reference path vs the
      allocation-free indirect location path vs direct pointers (§6);
    - critical-section granularity: one section per query vs per block (§4);
    - string predicates: allocating reads vs pre-packed word comparison. *)

val run : ?sf:float -> unit -> Smc_util.Table.t list
val print_all : ?sf:float -> unit -> unit
