module D = Smc_decimal.Decimal

type t =
  | Int of int
  | Dec of D.t
  | Str of string
  | Date of Smc_util.Date.t
  | Bool of bool
  | Null

let type_error op a b =
  invalid_arg
    (Printf.sprintf "Value.%s: incompatible operands (%s, %s)" op
       (match a with
       | Int _ -> "int" | Dec _ -> "dec" | Str _ -> "str"
       | Date _ -> "date" | Bool _ -> "bool" | Null -> "null")
       (match b with
       | Int _ -> "int" | Dec _ -> "dec" | Str _ -> "str"
       | Date _ -> "date" | Bool _ -> "bool" | Null -> "null"))

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Int x, Int y -> Int.compare x y
  | Dec x, Dec y -> D.compare x y
  | Int x, Dec y -> D.compare (D.of_int x) y
  | Dec x, Int y -> D.compare x (D.of_int y)
  | Str x, Str y -> String.compare x y
  | Date x, Date y -> Int.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | (Int _ | Dec _ | Str _ | Date _ | Bool _), _ -> type_error "compare" a b

let equal a b = compare a b = 0

let arith name int_op dec_op a b =
  match (a, b) with
  | Int x, Int y -> Int (int_op x y)
  | Dec x, Dec y -> Dec (dec_op x y)
  | Int x, Dec y -> Dec (dec_op (D.of_int x) y)
  | Dec x, Int y -> Dec (dec_op x (D.of_int y))
  | _ -> type_error name a b

let add = arith "add" ( + ) D.add
let sub = arith "sub" ( - ) D.sub
let mul = arith "mul" ( * ) D.mul

let div a b =
  match (a, b) with
  | Int x, Int y -> Int (x / y)
  | Dec x, Dec y -> Dec (D.div x y)
  | Int x, Dec y -> Dec (D.div (D.of_int x) y)
  | Dec x, Int y -> Dec (D.div x (D.of_int y))
  | _ -> type_error "div" a b

let neg = function
  | Int x -> Int (-x)
  | Dec x -> Dec (D.neg x)
  | v -> type_error "neg" v v

let to_bool = function
  | Bool b -> b
  | Null -> false
  | v -> type_error "to_bool" v v

let to_string = function
  | Int x -> string_of_int x
  | Dec x -> D.to_string x
  | Str s -> s
  | Date d -> Smc_util.Date.to_string d
  | Bool b -> string_of_bool b
  | Null -> "null"
