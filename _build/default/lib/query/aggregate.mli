(** Shared aggregate-state machinery for the two plan evaluators. *)

type cell

val compile :
  schema:string array ->
  Plan.agg ->
  (unit -> cell) * (cell -> Value.t array -> unit) * (cell -> Value.t)
(** [(fresh, update, finish)] for one aggregate compiled against a schema. *)
