type cell = { mutable count : int; mutable acc : Value.t }

let promote_dec = function
  | Value.Int x -> Value.Dec (Smc_decimal.Decimal.of_int x)
  | v -> v

let compile ~schema agg =
  let fresh () = { count = 0; acc = Value.Null } in
  match agg with
  | Plan.Count ->
    (fresh, (fun c _ -> c.count <- c.count + 1), fun c -> Value.Int c.count)
  | Plan.Sum e ->
    let f = Expr.compile ~schema e in
    ( fresh,
      (fun c row ->
        let v = f row in
        c.acc <- (if c.acc = Value.Null then v else Value.add c.acc v)),
      fun c -> c.acc )
  | Plan.Min e ->
    let f = Expr.compile ~schema e in
    ( fresh,
      (fun c row ->
        let v = f row in
        if c.acc = Value.Null || Value.compare v c.acc < 0 then c.acc <- v),
      fun c -> c.acc )
  | Plan.Max e ->
    let f = Expr.compile ~schema e in
    ( fresh,
      (fun c row ->
        let v = f row in
        if c.acc = Value.Null || Value.compare v c.acc > 0 then c.acc <- v),
      fun c -> c.acc )
  | Plan.Avg e ->
    let f = Expr.compile ~schema e in
    ( fresh,
      (fun c row ->
        let v = f row in
        c.count <- c.count + 1;
        c.acc <- (if c.acc = Value.Null then v else Value.add c.acc v)),
      fun c ->
        if c.count = 0 then Value.Null
        else Value.div (promote_dec c.acc) (Value.Int c.count) )
