type dir = Asc | Desc

type agg =
  | Count
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Avg of Expr.t

type t =
  | Scan of Source.t
  | Where of Expr.t * t
  | Select of (string * Expr.t) list * t
  | HashJoin of { left : t; right : t; on : (string * string) list }
  | GroupBy of { keys : (string * Expr.t) list; aggs : (string * agg) list; input : t }
  | OrderBy of (Expr.t * dir) list * t
  | Limit of int * t
  | Distinct of t

let rec schema = function
  | Scan src -> src.Source.schema
  | Where (_, p) | OrderBy (_, p) | Limit (_, p) | Distinct p -> schema p
  | Select (cols, _) -> Array.of_list (List.map fst cols)
  | GroupBy { keys; aggs; _ } ->
    Array.of_list (List.map fst keys @ List.map fst aggs)
  | HashJoin { left; right; _ } ->
    let ls = schema left and rs = schema right in
    let combined = Array.append ls rs in
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun c ->
        if Hashtbl.mem seen c then
          invalid_arg ("Plan.schema: duplicate column in join output: " ^ c);
        Hashtbl.add seen c ())
      combined;
    combined

let scan src = Scan src
let where e p = Where (e, p)
let select cols p = Select (cols, p)
let join ~on left right = HashJoin { left; right; on }
let group_by ~keys ~aggs input = GroupBy { keys; aggs; input }
let order_by specs p = OrderBy (specs, p)
let limit n p = Limit (n, p)
let distinct p = Distinct p
