type t = {
  name : string;
  schema : string array;
  scan : (Value.t array -> unit) -> unit;
}

let of_smc coll ~columns =
  let schema = Array.of_list (List.map fst columns) in
  let extractors = Array.of_list (List.map snd columns) in
  let scan emit =
    Smc.Collection.iter coll ~f:(fun blk slot ->
        emit (Array.map (fun extract -> extract blk slot) extractors))
  in
  { name = coll.Smc.Collection.name; schema; scan }

let of_array ~name ~schema rows =
  { name; schema = Array.of_list schema; scan = (fun emit -> Array.iter emit rows) }

let of_fun ~name ~schema scan = { name; schema = Array.of_list schema; scan }

let column_index t col =
  let rec go i =
    if i >= Array.length t.schema then raise Not_found
    else if String.equal t.schema.(i) col then i
    else go (i + 1)
  in
  go 0
