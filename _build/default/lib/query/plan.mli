(** Logical query plans — the language-integrated query AST.

    The structure mirrors the LINQ operator set used by the paper's TPC-H
    adaptation: scans over collections, predicate filters, projections,
    equi hash joins, grouped aggregation, ordering, and limits. A plan can
    be evaluated by {!Interp} (pull-based Volcano iterators — the
    LINQ-to-objects comparison point) or {!Fuse} (a fused push pipeline —
    the query-compilation analogue), and rendered as imperative source by
    {!Codegen}. *)

type dir = Asc | Desc

type agg =
  | Count
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Avg of Expr.t  (** decimal average regardless of input tag *)

type t =
  | Scan of Source.t
  | Where of Expr.t * t
  | Select of (string * Expr.t) list * t
  | HashJoin of { left : t; right : t; on : (string * string) list }
      (** inner equi-join; result schema is left columns then right columns *)
  | GroupBy of { keys : (string * Expr.t) list; aggs : (string * agg) list; input : t }
  | OrderBy of (Expr.t * dir) list * t
  | Limit of int * t
  | Distinct of t  (** duplicate elimination over whole rows *)

val schema : t -> string array
(** Output column names. Raises [Invalid_argument] on name collisions in a
    join's combined schema. *)

val scan : Source.t -> t
val where : Expr.t -> t -> t
val select : (string * Expr.t) list -> t -> t
val join : on:(string * string) list -> t -> t -> t
val group_by : keys:(string * Expr.t) list -> aggs:(string * agg) list -> t -> t
val order_by : (Expr.t * dir) list -> t -> t
val limit : int -> t -> t
val distinct : t -> t
