(** Fused push-pipeline evaluation — the query-compilation analogue.

    [Fuse] composes the whole plan into a single closure pipeline at
    query-build time: each non-blocking operator becomes straight-line code
    in its upstream's loop body (filters and projections fuse into the scan
    loop), and blocking operators (join build, group-by, sort) materialise
    once and push onward. This removes the per-row cursor indirection and
    intermediate result objects of the Volcano/LINQ model, which is the
    essence of the code the paper's query compiler generates [12, 13]. *)

val run : Plan.t -> f:(Value.t array -> unit) -> unit
val collect : Plan.t -> Value.t array list
