(** Pull-based Volcano evaluation of query plans.

    Every operator is a cursor closure returning one row per call — the
    evaluation model of LINQ-to-objects whose per-row virtual calls and
    intermediate objects the paper identifies as the main performance
    problem (§1). This engine is the baseline for the LINQ-vs-compiled
    comparison (§7 reports 40–400% slowdowns versus compiled code). *)

val run : Plan.t -> f:(Value.t array -> unit) -> unit
val collect : Plan.t -> Value.t array list
