(** Query-plan → imperative source rendering.

    The paper's system modifies the C# compiler to expand LINQ queries over
    SMCs into generated imperative functions. A staged compiler is not
    available in this container (MetaOCaml is out of scope), so execution
    uses {!Fuse}'s closure pipelines — but this module emits the imperative
    OCaml a staging compiler would produce for a plan, both as documentation
    of the transformation (compare the paper's §4 listing) and for test
    assertions about plan shape. *)

val to_ocaml_source : Plan.t -> string
(** Readable imperative OCaml (nested loops over memory blocks with inlined
    predicates/projections, hash tables for joins and aggregation). *)

val operator_count : Plan.t -> int
(** Number of operators in the plan (for tests and plan statistics). *)
