(** Query sources: anything that can produce rows of tagged values.

    A source wraps a scan over an SMC collection (inside a critical section,
    in block order) or over any in-memory sequence — the query engine is
    agnostic, like LINQ-to-objects. *)

type t = {
  name : string;
  schema : string array;
  scan : (Value.t array -> unit) -> unit;  (** push a full scan *)
}

val of_smc :
  Smc.Collection.t ->
  columns:(string * (Smc_offheap.Block.t -> int -> Value.t)) list ->
  t
(** Scans the collection inside one critical section, extracting the named
    columns from each valid slot. *)

val of_array : name:string -> schema:string list -> Value.t array array -> t

val of_fun : name:string -> schema:string list -> ((Value.t array -> unit) -> unit) -> t

val column_index : t -> string -> int
(** Raises [Not_found]. *)
