(** Runtime-tagged values for the generic query engine.

    The generic engine exists to reproduce the paper's LINQ-to-objects
    comparison point (dynamically dispatched operators over boxed
    intermediate values); the fast path for TPC-H is hand-fused code over
    raw field accessors, as in the paper's generated queries. *)

type t =
  | Int of int
  | Dec of Smc_decimal.Decimal.t
  | Str of string
  | Date of Smc_util.Date.t
  | Bool of bool
  | Null

val compare : t -> t -> int
(** Total order within a tag; [Null] sorts first; cross-tag comparisons on
    numeric tags coerce Dec/Int; anything else raises [Invalid_argument]. *)

val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Numeric arithmetic: Int op Int is integer; any Dec operand promotes to
    decimal arithmetic (scaled fixed-point). *)

val div : t -> t -> t
val neg : t -> t

val to_bool : t -> bool
(** Raises [Invalid_argument] unless [Bool] or [Null] (false). *)

val to_string : t -> string
(** Display form used by the harness output. *)
