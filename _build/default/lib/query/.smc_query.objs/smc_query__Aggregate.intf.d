lib/query/aggregate.mli: Plan Value
