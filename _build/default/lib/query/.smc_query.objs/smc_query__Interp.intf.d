lib/query/interp.mli: Plan Value
