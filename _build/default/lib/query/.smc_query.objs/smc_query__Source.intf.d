lib/query/source.mli: Smc Smc_offheap Value
