lib/query/interp.ml: Aggregate Array Expr Hashtbl List Option Plan Source Value
