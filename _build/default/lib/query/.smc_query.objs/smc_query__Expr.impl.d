lib/query/expr.ml: Array List Printf Smc_decimal Smc_util String Value
