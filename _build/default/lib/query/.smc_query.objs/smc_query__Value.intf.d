lib/query/value.mli: Smc_decimal Smc_util
