lib/query/plan.mli: Expr Source
