lib/query/fuse.ml: Aggregate Array Expr Hashtbl List Plan Source Value
