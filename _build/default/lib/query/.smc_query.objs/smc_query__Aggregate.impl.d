lib/query/aggregate.ml: Expr Plan Smc_decimal Value
