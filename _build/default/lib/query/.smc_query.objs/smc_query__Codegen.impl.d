lib/query/codegen.ml: Buffer Expr List Plan Printf Source String
