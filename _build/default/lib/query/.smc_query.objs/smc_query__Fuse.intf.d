lib/query/fuse.mli: Plan Value
