lib/query/codegen.mli: Plan
