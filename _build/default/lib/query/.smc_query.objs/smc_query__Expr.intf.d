lib/query/expr.mli: Value
