lib/query/source.ml: Array List Smc String Value
