lib/query/plan.ml: Array Expr Hashtbl List Source
