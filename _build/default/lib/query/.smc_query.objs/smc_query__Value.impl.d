lib/query/value.ml: Bool Int Printf Smc_decimal Smc_util String
