type t = {
  epoch : Epoch.t;
  ind : Indirection.t;
  registry : Registry.t;
  locks : Smc_util.Striped_lock.t;
  next_relocation_epoch : int Atomic.t;
  in_moving_phase : bool Atomic.t;
  next_context_id : int Atomic.t;
  mutable inc_quarantine_limit : int;
  quarantined_slots : int Atomic.t;
}

let create ?max_threads () =
  {
    epoch = Epoch.create ?max_threads ();
    ind = Indirection.create ();
    registry = Registry.create ();
    locks = Smc_util.Striped_lock.create ~stripes:256 ();
    next_relocation_epoch = Atomic.make (-1);
    in_moving_phase = Atomic.make false;
    next_context_id = Atomic.make 0;
    inc_quarantine_limit = Constants.inc_mask;
    quarantined_slots = Atomic.make 0;
  }

let tid t = Epoch.thread_id t.epoch

let with_entry_lock t entry f = Smc_util.Striped_lock.with_lock t.locks entry f

let with_slot_lock t ~block ~slot f =
  Smc_util.Striped_lock.with_lock t.locks ((block lsl 20) lxor slot) f
