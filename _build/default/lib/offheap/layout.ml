type field_type =
  | Int
  | Dec
  | Date
  | Bool
  | Float
  | Str of int
  | Ref of string

type field = {
  name : string;
  ftype : field_type;
  index : int;
  word : int;
  words : int;
}

type t = {
  type_name : string;
  fields : field array;
  slot_words : int;
}

(* Strings pack 7 bytes per word: an OCaml int is 63 bits wide, so a full
   8-byte payload would lose the top bit. *)
let str_bytes_per_word = 7

let words_of_type = function
  | Int | Dec | Date | Bool | Float | Ref _ -> 1
  | Str n ->
    if n <= 0 then invalid_arg "Layout: string capacity must be positive";
    (n + str_bytes_per_word - 1) / str_bytes_per_word

let create ~name spec =
  if spec = [] then invalid_arg "Layout.create: no fields";
  let seen = Hashtbl.create 16 in
  let offset = ref 0 in
  let fields =
    List.mapi
      (fun index (fname, ftype) ->
        if Hashtbl.mem seen fname then
          invalid_arg ("Layout.create: duplicate field " ^ fname);
        Hashtbl.add seen fname ();
        let words = words_of_type ftype in
        let field = { name = fname; ftype; index; word = !offset; words } in
        offset := !offset + words;
        field)
      spec
  in
  { type_name = name; fields = Array.of_list fields; slot_words = !offset }

let field_opt t fname =
  Array.find_opt (fun f -> String.equal f.name fname) t.fields

let field t fname =
  match field_opt t fname with
  | Some f -> f
  | None -> raise Not_found

let str_capacity f =
  match f.ftype with
  | Str n -> n
  | Int | Dec | Date | Bool | Float | Ref _ ->
    invalid_arg ("Layout.str_capacity: " ^ f.name ^ " is not a string field")
