(** The shared runtime state of one memory manager instance: the epoch
    manager, the indirection table, the block registry, the striped locks
    serialising incarnation-word read-modify-writes, and the global
    compaction-phase flags of §5.1 ([nextRelocationEpoch], [inMovingPhase]).

    One [Runtime.t] corresponds to the paper's per-process runtime extension;
    every memory context and collection hangs off one. *)

type t = {
  epoch : Epoch.t;
  ind : Indirection.t;
  registry : Registry.t;
  locks : Smc_util.Striped_lock.t;
  next_relocation_epoch : int Atomic.t;  (** -1 when no compaction pending *)
  in_moving_phase : bool Atomic.t;
  next_context_id : int Atomic.t;
  mutable inc_quarantine_limit : int;
      (** incarnation value beyond which a slot is quarantined instead of
          reused (§3.1's overflow rule); defaults to the reference-visible
          incarnation width, lowered in tests to exercise the path *)
  quarantined_slots : int Atomic.t;
}

val create : ?max_threads:int -> unit -> t

val tid : t -> int
(** The calling domain's thread slot (registers on first use). *)

val with_entry_lock : t -> int -> (unit -> 'a) -> 'a
(** Serialises read-modify-write on indirection entry [entry]. *)

val with_slot_lock : t -> block:int -> slot:int -> (unit -> 'a) -> 'a
(** Serialises read-modify-write on a block slot's incarnation word. *)
