lib/offheap/registry.ml: Array Atomic Bigarray Block Constants Fun Layout Mutex Printf
