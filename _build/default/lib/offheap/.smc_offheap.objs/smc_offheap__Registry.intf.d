lib/offheap/registry.mli: Block
