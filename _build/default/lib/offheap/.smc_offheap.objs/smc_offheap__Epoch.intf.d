lib/offheap/epoch.mli:
