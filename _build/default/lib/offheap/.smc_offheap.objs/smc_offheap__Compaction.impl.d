lib/offheap/compaction.ml: Array Atomic Bigarray Block Constants Context Domain Epoch Fun Hashtbl Indirection Layout List Mutex Registry Runtime Unix
