lib/offheap/compaction.mli: Atomic Context Domain
