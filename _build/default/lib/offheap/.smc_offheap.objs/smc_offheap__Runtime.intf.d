lib/offheap/runtime.mli: Atomic Epoch Indirection Registry Smc_util
