lib/offheap/block.mli: Atomic Bigarray Layout
