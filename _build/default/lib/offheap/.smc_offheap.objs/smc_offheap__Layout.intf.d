lib/offheap/layout.mli:
