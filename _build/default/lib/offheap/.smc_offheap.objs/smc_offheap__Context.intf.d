lib/offheap/context.mli: Atomic Block Layout Mutex Runtime
