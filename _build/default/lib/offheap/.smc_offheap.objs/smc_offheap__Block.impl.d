lib/offheap/block.ml: Array Atomic Bigarray Bytes Char Constants Int64 Layout String
