lib/offheap/indirection.mli:
