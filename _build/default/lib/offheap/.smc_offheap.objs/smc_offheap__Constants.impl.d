lib/offheap/constants.ml:
