lib/offheap/runtime.ml: Atomic Constants Epoch Indirection Registry Smc_util
