lib/offheap/epoch.ml: Array Atomic Domain
