lib/offheap/context.ml: Array Atomic Bigarray Block Constants Domain Epoch Fun Indirection Layout List Mutex Registry Runtime
