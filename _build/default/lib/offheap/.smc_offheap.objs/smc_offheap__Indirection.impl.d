lib/offheap/indirection.ml: Array Atomic Bigarray Constants Fun Mutex
