lib/offheap/layout.ml: Array Hashtbl List String
