(** Compaction (§5 of the paper) and direct-pointer fixup (§6).

    A compaction pass empties under-occupied blocks by moving their live
    objects into fresh target blocks, one target per compaction group. The
    pass walks the paper's epoch choreography:

    - the driver pins itself in a critical section at epoch [e], publishes
      [nextRelocationEpoch = e + 2], and sets the frozen bit on every
      scheduled object's incarnation word;
    - it then steps the global epoch through the freezing epoch [e + 1] into
      the relocation epoch [e + 2], waiting at each boundary for all
      in-critical threads to arrive (readers seeing frozen objects before
      the relocation epoch simply keep using the old location — case (a));
    - the waiting phase ends when every in-critical thread has entered the
      relocation epoch; the driver flips [inMovingPhase] and, group by
      group, drains the group's pre-relocation readers and performs the
      relocations (readers arriving now help — case (c); readers that raced
      the transition bailed objects out — case (b) — and the sweep retries
      them under the entry lock);
    - finally sources are marked dead, limbo entries are recycled, stored
      direct pointers into the compacted blocks are rewritten (accelerated
      by a hash table of compacted block ids, as §6 prescribes), and the
      emptied blocks are retired.

    The pass aborts cleanly (unfreezing everything) if other threads fail to
    reach a phase boundary within the spin budget. *)

type report = {
  candidates : int;  (** blocks considered for compaction *)
  groups_formed : int;
  objects_moved : int;
  groups_skipped : int;  (** groups abandoned because readers held them *)
  blocks_retired : int;
  fixed_pointers : int;  (** stored direct pointers rewritten (§6) *)
  aborted : bool;  (** whole pass abandoned at an epoch boundary *)
}

val empty_report : report

val run :
  Context.t -> ?occupancy_threshold:float -> ?max_wait_spins:int -> unit -> report
(** Runs one compaction pass over the context. [occupancy_threshold]
    (default 0.3, the paper's example) selects blocks whose valid-slot
    fraction is at or below it; group size is [floor 1/threshold].
    [max_wait_spins] bounds each phase-boundary wait. Must not be called
    from inside a critical section of the same runtime. *)

val run_if_requested : Context.t -> report option
(** Runs a pass iff {!Context.request_compaction} was called since the last
    pass. *)

val daemon :
  poll_contexts:(unit -> Context.t list) ->
  stop:bool Atomic.t ->
  ?interval_s:float ->
  unit ->
  int Domain.t
(** The background compaction thread: polls the given contexts for
    compaction requests until [stop] flips, running one pass per request.
    Joining the domain yields the number of successful passes. *)
