(** Record layouts for tabular types.

    A layout describes the off-heap representation of one tabular class
    (§2 of the paper): a fixed sequence of fixed-size fields. All objects of
    a collection share one layout, which is what makes type-stable blocks
    (§3.1) possible. Layouts are word-granular: every field occupies one or
    more 8-byte words of the block's object store, so a scalar access is a
    single indexed load.

    Strings are fixed-capacity, NUL-padded and stored inline — the paper
    treats strings referenced by tabular classes as part of the object, with
    matching lifetime. Floats are stored with the low mantissa bit dropped
    (63-bit payload); exact numerics should use [Dec] (scaled fixed-point),
    which is what the TPC-H substrate does. *)

type field_type =
  | Int  (** 63-bit integer, one word *)
  | Dec  (** fixed-point decimal ({!Smc_decimal.Decimal.t}), one word *)
  | Date  (** calendar date as epoch days, one word *)
  | Bool  (** one word *)
  | Float  (** IEEE double with 1-ulp mantissa truncation, one word *)
  | Str of int
      (** fixed capacity in bytes, NUL-padded, ceil(n/7) words (7 bytes per
          63-bit word) *)
  | Ref of string
      (** reference to an object of the named tabular type, one word; stored
          as a packed indirect or direct reference depending on the
          referenced context's mode *)

type field = private {
  name : string;
  ftype : field_type;
  index : int;  (** position in the declaration order *)
  word : int;  (** first word offset within the slot *)
  words : int;  (** number of words occupied *)
}

type t = private {
  type_name : string;
  fields : field array;
  slot_words : int;  (** total words per object slot *)
}

val create : name:string -> (string * field_type) list -> t
(** [create ~name spec] computes word offsets in declaration order.
    Raises [Invalid_argument] on duplicate field names, empty field lists,
    or non-positive string capacities. *)

val field : t -> string -> field
(** Lookup by name; raises [Not_found]. *)

val field_opt : t -> string -> field option

val words_of_type : field_type -> int

val str_bytes_per_word : int
(** 7: string bytes packed per 63-bit word. *)

val str_capacity : field -> int
(** Byte capacity of a [Str] field; raises [Invalid_argument] otherwise. *)
