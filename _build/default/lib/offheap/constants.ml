(* Shared bit-level encodings for the manual memory manager.

   Incarnation words (stored in the indirection table in indirect mode, in
   the block's slot-incarnation plane in direct mode) reserve three high bits
   for the compaction/direct-pointer protocol of §5 and §6 of the paper:

     bit 60  forward   - slot is a tombstone; follow the back-pointer
     bit 59  lock      - relocation in progress on this object
     bit 58  frozen    - object scheduled for relocation this epoch

   References carry the low 31 bits of the incarnation so a reference plus
   incarnation packs into a single OCaml int (63 bits) both for indirect
   references (entry index + inc) and direct references (block + slot + inc).
*)

exception Null_reference
(* Raised when dereferencing a reference whose object has been removed from
   its collection — the paper's NullReferenceException semantics. *)

let frozen_bit = 1 lsl 58
let lock_bit = 1 lsl 59
let forward_bit = 1 lsl 60
let flags_mask = frozen_bit lor lock_bit lor forward_bit

let inc_bits = 31
let inc_mask = (1 lsl inc_bits) - 1

(* Indirect reference packing: [entry:31][inc:31]. *)
let packed_entry_shift = inc_bits
let null_ref = -1

let pack_ref ~entry ~inc = (entry lsl packed_entry_shift) lor (inc land inc_mask)
let ref_entry r = r lsr packed_entry_shift
let ref_inc r = r land inc_mask

(* Direct reference packing: [block:20][slot:16][inc:27]. *)
let direct_inc_bits = 27
let direct_inc_mask = (1 lsl direct_inc_bits) - 1
let direct_slot_bits = 16
let direct_slot_mask = (1 lsl direct_slot_bits) - 1
let max_direct_slots = 1 lsl direct_slot_bits
let max_direct_blocks = 1 lsl 20

let pack_direct ~block ~slot ~inc =
  (block lsl (direct_slot_bits + direct_inc_bits))
  lor (slot lsl direct_inc_bits)
  lor (inc land direct_inc_mask)

let direct_block r = r lsr (direct_slot_bits + direct_inc_bits)
let direct_slot r = (r lsr direct_inc_bits) land direct_slot_mask
let direct_inc r = r land direct_inc_mask

(* Indirection-table pointer packing: [block:30][slot:20]. The paper stores a
   raw address for row layouts and block+slot identifiers for columnar
   layouts (§4.1); in OCaml a raw address is not addressable, so block+slot
   is the uniform pointer representation. *)
let ptr_slot_bits = 20
let ptr_slot_mask = (1 lsl ptr_slot_bits) - 1
let pack_ptr ~block ~slot = (block lsl ptr_slot_bits) lor slot
let ptr_block p = p lsr ptr_slot_bits
let ptr_slot p = p land ptr_slot_mask

(* Slot-directory states, 2 low bits; the rest of the word is the removal
   epoch stamp for limbo slots (§3.5). *)
let state_free = 0
let state_valid = 1
let state_limbo = 2

let state_quarantined = 3
(* §3.1: if an incarnation number would overflow its reference-visible
   width, the slot stops being reused ("we stop reusing these memory slots
   until a background thread has scanned all manually managed objects") —
   quarantined slots are permanently skipped by the allocator. *)
let state_bits = 2
let state_mask = (1 lsl state_bits) - 1
let dir_entry ~state ~stamp = (stamp lsl state_bits) lor state
let dir_state e = e land state_mask
let dir_stamp e = e lsr state_bits
