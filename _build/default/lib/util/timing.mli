(** Wall-clock timing helpers for the benchmark harness. *)

val now_ns : unit -> int64
(** Monotonic clock reading in nanoseconds. *)

val time_it : (unit -> 'a) -> 'a * float
(** [time_it f] runs [f ()] and returns its result together with the elapsed
    wall-clock time in milliseconds. *)

val time_ms : (unit -> unit) -> float
(** Elapsed milliseconds of running the thunk once. *)

val repeat : ?warmup:int -> int -> (unit -> unit) -> float array
(** [repeat ~warmup n f] runs [f] [warmup] times unmeasured, then [n] times
    measured, returning the per-run milliseconds. *)

val throughput_per_sec : ops:int -> ms:float -> float
(** Operations per second given an operation count and elapsed ms. *)
