lib/util/stats.mli:
