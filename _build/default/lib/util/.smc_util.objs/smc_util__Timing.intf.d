lib/util/timing.mli:
