lib/util/striped_lock.ml: Array Atomic Domain
