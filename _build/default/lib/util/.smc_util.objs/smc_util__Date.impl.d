lib/util/date.ml: Printf String
