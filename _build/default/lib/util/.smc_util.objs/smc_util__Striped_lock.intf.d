lib/util/striped_lock.mli:
