lib/util/timing.ml: Array Int64 Unix
