lib/util/date.mli:
