lib/util/table.mli:
