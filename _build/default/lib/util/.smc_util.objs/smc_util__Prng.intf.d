lib/util/prng.mli:
